package innet

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
)

// TestEndToEndBatcher walks the full life of the paper's Fig. 4
// module: controller verification and placement, registration on the
// hosting platform, on-the-fly VM boot, runtime filtering, rewriting
// and batching.
func TestEndToEndBatcher(t *testing.T) {
	topo, err := Fig3Topology()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := ctl.Deploy(Request{
		Tenant:     "alice",
		ModuleName: "Batcher",
		Config: `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(2,100)
-> dst::ToNetfront()
`,
		Requirements: "reach from internet udp -> Batcher:dst:0 dst 10.1.15.133 -> client dst port 1500 const payload",
		Trust:        TrustClient,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hand the deployment to the hosting platform, as innetd's
	// integration would.
	sim := netsim.New(1)
	pl := platform.New(sim, platform.DefaultModel(), 16*1024)
	if err := pl.Register(dep.PlatformSpec()); err != nil {
		t.Fatal(err)
	}

	var out []*packet.Packet
	send := func(proto packet.Proto, dport uint16) {
		pl.Deliver(&packet.Packet{
			Protocol: proto,
			SrcIP:    packet.MustParseIP("8.8.8.8"),
			DstIP:    dep.Addr,
			SrcPort:  4000, DstPort: dport, TTL: 64,
			Payload: []byte("notification"),
		}, func(iface int, p *packet.Packet) { out = append(out, p) })
	}
	send(packet.ProtoUDP, 1500)
	send(packet.ProtoUDP, 1500)
	send(packet.ProtoTCP, 1500) // filtered by the module
	send(packet.ProtoUDP, 99)   // wrong port, filtered
	sim.Run()

	if len(out) != 2 {
		t.Fatalf("module emitted %d packets, want 2", len(out))
	}
	for _, p := range out {
		if got := packet.IPString(p.DstIP); got != "10.1.15.133" {
			t.Errorf("emitted dst = %s", got)
		}
		if string(p.Payload) != "notification" {
			t.Error("payload modified (the const payload invariant)")
		}
		// The batch released after the TimedUnqueue interval.
		if p.Timestamp == 0 && sim.Now() < netsim.Seconds(2) {
			t.Error("batch released before the batching interval")
		}
	}
	if sim.Now() < netsim.Seconds(2) {
		t.Errorf("simulation ended at %v, before the batch interval", sim.Now())
	}
}

// TestEndToEndSandboxEnforcement proves the runtime keeps the promise
// static analysis could not: a sandboxed tunnel module can
// decapsulate traffic to its whitelisted destinations, but the
// injected ChangeEnforcer drops decapsulated packets aimed anywhere
// else (§4.4, §7.1's tunnel row).
func TestEndToEndSandboxEnforcement(t *testing.T) {
	topo, err := Fig3Topology()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := ctl.Deploy(Request{
		Tenant:     "bob",
		ModuleName: "tun",
		Config: `
in :: FromNetfront();
dec :: IPDecap();
snat :: SetIPSrc($MODULE_IP);
out :: ToNetfront();
in -> dec -> snat -> out;
`,
		Trust:     TrustThirdParty,
		Whitelist: []string{"192.0.2.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Sandboxed {
		t.Fatal("tunnel must be sandboxed")
	}
	if !strings.Contains(dep.Config, "ChangeEnforcer") {
		t.Fatal("sandbox element missing from deployed config")
	}

	sim := netsim.New(1)
	pl := platform.New(sim, platform.DefaultModel(), 16*1024)
	if err := pl.Register(dep.PlatformSpec()); err != nil {
		t.Fatal(err)
	}

	encap := func(innerDst string) *packet.Packet {
		inner := &packet.Packet{
			Protocol: packet.ProtoUDP,
			SrcIP:    packet.MustParseIP("10.9.9.9"),
			DstIP:    packet.MustParseIP(innerDst),
			SrcPort:  7, DstPort: 7, TTL: 64,
			Payload: []byte("tunneled"),
		}
		return &packet.Packet{
			Protocol: packet.ProtoUDP,
			SrcIP:    packet.MustParseIP("8.8.4.4"),
			DstIP:    dep.Addr,
			SrcPort:  5000, DstPort: 5000, TTL: 64,
			Payload: inner.Serialize(nil),
		}
	}
	var out []*packet.Packet
	sink := func(iface int, p *packet.Packet) { out = append(out, p) }

	// Whitelisted inner destination: the enforcer lets it out.
	pl.Deliver(encap("192.0.2.1"), sink)
	sim.Run()
	if len(out) != 1 || packet.IPString(out[0].DstIP) != "192.0.2.1" {
		t.Fatalf("whitelisted decap blocked: %v", out)
	}
	// Unauthorized inner destination: dropped by the enforcer even
	// though the module itself would forward it.
	pl.Deliver(encap("203.0.113.9"), sink)
	sim.Run()
	if len(out) != 1 {
		t.Fatalf("unauthorized decap escaped the sandbox: %v", out[len(out)-1])
	}
	// Implicit authorization: replying to the outer source works.
	pl.Deliver(encap("8.8.4.4"), sink)
	sim.Run()
	if len(out) != 2 || packet.IPString(out[1].DstIP) != "8.8.4.4" {
		t.Fatalf("implicitly-authorized reply blocked: %v", out)
	}
}

// TestEndToEndOperatorRejectionNeverRuns checks the negative path: a
// module the controller rejects is never registered, so its traffic
// dies at the platform switch.
func TestEndToEndOperatorRejectionNeverRuns(t *testing.T) {
	topo, err := Fig3Topology()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctl.Deploy(Request{
		Tenant: "mallory", ModuleName: "cannon", Trust: TrustThirdParty,
		Config: `
in :: FromNetfront();
atk :: SetIPDst(203.0.113.99);
out :: ToNetfront();
in -> atk -> out;
`,
	})
	if err == nil {
		t.Fatal("cannon deployed")
	}
	sim := netsim.New(1)
	pl := platform.New(sim, platform.DefaultModel(), 16*1024)
	pl.Deliver(&packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("1.2.3.4"),
		DstIP:    packet.MustParseIP("198.51.100.1"),
		TTL:      64,
	}, func(int, *packet.Packet) { t.Fatal("traffic processed for a rejected module") })
	sim.Run()
	if pl.DroppedNoModule != 1 {
		t.Error("traffic not dropped")
	}
}
