#!/usr/bin/env bash
# CI bench regression gate: fail when the newest BENCH_HISTORY.jsonl
# entry dropped more than the threshold vs the previous entry from the
# same environment. The comparison itself lives in internal/bench
# (bench.Gate); this wrapper just names the invocation for CI and
# `make bench-gate`.
#
#   scripts/bench_gate.sh [HISTORY_FILE] [THRESHOLD]
#
# HISTORY_FILE defaults to BENCH_HISTORY.jsonl; THRESHOLD is the
# relative drop that fails the build (default 0.15 = 15%). Gated
# metrics: dispatch_batch_pps, admission_cold_ops_per_sec,
# pipeline_compiled_pps. A history with fewer than two comparable
# entries passes vacuously (first run on a fresh environment).
set -euo pipefail

cd "$(dirname "$0")/.."

HISTORY="${1:-BENCH_HISTORY.jsonl}"
THRESHOLD="${2:-0.15}"

if [ ! -f "$HISTORY" ]; then
    echo "bench gate: no history file $HISTORY (nothing to gate)" >&2
    exit 0
fi

exec go run ./cmd/innet-bench -gate -history "$HISTORY" -gate-threshold "$THRESHOLD"
