#!/usr/bin/env bash
# End-to-end observability smoke: boot innetd in simulate mode, deploy
# a module, push packets through it, then assert /v1/metrics serves
# every required metric family and /v1/traces shows the admission with
# all pipeline stages. Run from the repository root (CI and `make
# smoke-telemetry` both do).
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:8642}"
BASE="http://$ADDR"
BIN="$(mktemp -d)"
DAEMON=""
trap '[ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null; [ -n "$DAEMON" ] && wait "$DAEMON" 2>/dev/null; rm -rf "$BIN"' EXIT

go build -o "$BIN/innetd" ./cmd/innetd
go build -o "$BIN/innetctl" ./cmd/innetctl

"$BIN/innetd" -listen "$ADDR" -simulate &
DAEMON=$!

for _ in $(seq 1 50); do
    if curl -fsS "$BASE/v1/health" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$DAEMON" 2>/dev/null; then
        echo "smoke: innetd died before serving" >&2
        exit 1
    fi
    sleep 0.1
done

# "deployed d-1 on Platform3 at 198.51.100.10 (...)" — field 6 is the addr.
DEPLOYED="$("$BIN/innetctl" -s "$BASE" deploy -tenant smoke -name smokedns \
    -stock geo-dns -trust third-party)"
echo "$DEPLOYED"
MODADDR="$(awk '{print $6}' <<<"$DEPLOYED")"
"$BIN/innetctl" -s "$BASE" inject -dst "$MODADDR" -dport 53 -count 3

METRICS="$(curl -fsS "$BASE/v1/metrics")"
fail=0
for family in \
    innet_admission_stage_seconds \
    innet_admission_verdicts_total \
    innet_admission_seconds \
    innet_controller_placed_total \
    innet_controller_deployments \
    innet_vswitch_dispatched_total \
    innet_platform_boots_total \
    innet_platform_dropped_total \
    innet_api_requests_total \
    innet_api_request_seconds
do
    if ! grep -q "$family" <<<"$METRICS"; then
        echo "smoke: /v1/metrics missing family $family" >&2
        fail=1
    fi
done

TRACES="$(curl -fsS "$BASE/v1/traces?n=5")"
for stage in canonicalize cache-lookup security-symexec policy-check placement journal-append; do
    if ! grep -q "\"$stage\"" <<<"$TRACES"; then
        echo "smoke: /v1/traces missing stage $stage" >&2
        fail=1
    fi
done
grep -q '"verdict":"admitted"' <<<"$TRACES" || {
    echo "smoke: /v1/traces has no admitted deploy trace" >&2
    fail=1
}

"$BIN/innetctl" -s "$BASE" stats >/dev/null
"$BIN/innetctl" -s "$BASE" trace smokedns

if [ "$fail" -ne 0 ]; then
    echo "smoke: FAILED" >&2
    exit 1
fi
echo "smoke: telemetry endpoints OK"
