#!/usr/bin/env bash
# End-to-end observability smoke: boot innetd in simulate mode, deploy
# a module, push packets through it, then assert /v1/metrics serves
# every required metric family and /v1/traces shows the admission with
# all pipeline stages. Run from the repository root (CI and `make
# smoke-telemetry` both do).
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:8642}"
BASE="http://$ADDR"
BIN="$(mktemp -d)"
DAEMON=""
trap '[ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null; [ -n "$DAEMON" ] && wait "$DAEMON" 2>/dev/null; rm -rf "$BIN"' EXIT

go build -o "$BIN/innetd" ./cmd/innetd
go build -o "$BIN/innetctl" ./cmd/innetctl

"$BIN/innetd" -listen "$ADDR" -simulate &
DAEMON=$!

for _ in $(seq 1 50); do
    if curl -fsS "$BASE/v1/health" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$DAEMON" 2>/dev/null; then
        echo "smoke: innetd died before serving" >&2
        exit 1
    fi
    sleep 0.1
done

# "deployed d-1 on Platform3 at 198.51.100.10 (...)" — field 6 is the addr.
# trace_every=1 samples every flow so the inject below must leave a
# complete path trace.
DEPLOYED="$("$BIN/innetctl" -s "$BASE" deploy -tenant smoke -name smokedns \
    -stock geo-dns -trust third-party -trace-every 1)"
echo "$DEPLOYED"
MODADDR="$(awk '{print $6}' <<<"$DEPLOYED")"
"$BIN/innetctl" -s "$BASE" inject -dst "$MODADDR" -dport 53 -count 3

METRICS="$(curl -fsS "$BASE/v1/metrics")"
fail=0
for family in \
    innet_admission_stage_seconds \
    innet_admission_verdicts_total \
    innet_admission_seconds \
    innet_controller_placed_total \
    innet_controller_deployments \
    innet_vswitch_dispatched_total \
    innet_platform_boots_total \
    innet_platform_dropped_total \
    innet_api_requests_total \
    innet_api_request_seconds
do
    if ! grep -q "$family" <<<"$METRICS"; then
        echo "smoke: /v1/metrics missing family $family" >&2
        fail=1
    fi
done

TRACES="$(curl -fsS "$BASE/v1/traces?n=5")"
for stage in canonicalize cache-lookup security-symexec policy-check placement journal-append; do
    if ! grep -q "\"$stage\"" <<<"$TRACES"; then
        echo "smoke: /v1/traces missing stage $stage" >&2
        fail=1
    fi
done
grep -q '"verdict":"admitted"' <<<"$TRACES" || {
    echo "smoke: /v1/traces has no admitted deploy trace" >&2
    fail=1
}

# A complete per-flow path trace: stage hops plus a terminal verdict
# (tx:N out an interface, a drop:reason, or parked in a queue).
PATHTRACE="$(curl -fsS "$BASE/v1/pathtrace?module=smokedns&n=3")"
grep -q '"hops":\[' <<<"$PATHTRACE" || {
    echo "smoke: /v1/pathtrace has no hops for smokedns" >&2
    fail=1
}
grep -qE '"verdict":"(tx:[0-9]+|drop:[a-z_]+|queued)"' <<<"$PATHTRACE" || {
    echo "smoke: /v1/pathtrace trace has no terminal verdict" >&2
    fail=1
}

# An attributed drop: a deploy of an unknown stock is rejected at
# admission, which must surface in the unified drop rollup and in the
# innet_drops_total exposition.
if "$BIN/innetctl" -s "$BASE" deploy -tenant smoke -name smokebad \
    -stock no-such-stock -trust third-party >/dev/null 2>&1; then
    echo "smoke: bogus-stock deploy unexpectedly succeeded" >&2
    fail=1
fi
HEALTH="$(curl -fsS "$BASE/v1/health")"
grep -q '"admission":{"rejected":[1-9]' <<<"$HEALTH" || {
    echo "smoke: /v1/health drop_reasons has no admission rejection" >&2
    fail=1
}
METRICS2="$(curl -fsS "$BASE/v1/metrics")"
grep -qE 'innet_drops_total\{[^}]*site="admission"[^}]*\} [1-9]' <<<"$METRICS2" || {
    echo "smoke: innet_drops_total has no attributed admission drop" >&2
    fail=1
}

# Flight recorder: the deploys above must have left structured events.
EVENTS="$(curl -fsS "$BASE/v1/events?n=10")"
grep -q '"type":' <<<"$EVENTS" || {
    echo "smoke: /v1/events is empty after deploys" >&2
    fail=1
}

"$BIN/innetctl" -s "$BASE" stats >/dev/null
"$BIN/innetctl" -s "$BASE" trace smokedns
"$BIN/innetctl" -s "$BASE" pathtrace smokedns >/dev/null
"$BIN/innetctl" -s "$BASE" events >/dev/null

if [ "$fail" -ne 0 ]; then
    echo "smoke: FAILED" >&2
    exit 1
fi
echo "smoke: telemetry endpoints OK"
