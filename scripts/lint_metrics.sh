#!/usr/bin/env bash
# Metric-name lint: every metric name the code registers must follow
# the innet_[a-z0-9_]+ convention (FORMATS.md §9) and appear in the §9
# metrics table, so the exposition and its documentation cannot drift
# apart silently. Run from the repository root (CI and `make
# lint-metrics` both do).
set -euo pipefail

FORMATS=docs/FORMATS.md

# Metric names as the code registers them: innet_* string literals in
# non-test Go sources. A literal ending in `_` is a family prefix the
# code completes at runtime (innet_platform_<suffix>_total); its
# expansions are covered by table shorthand rows and cannot be linted
# literally, so prefixes are skipped.
code="$(grep -rhoE '"innet_[a-zA-Z0-9_]*"' --include='*.go' --exclude='*_test.go' cmd internal |
    tr -d '"' | grep -v '_$' | sort -u)"
if [ -z "$code" ]; then
    echo "lint-metrics: found no metric literals — grep broken?" >&2
    exit 1
fi

fail=0
while read -r name; do
    if ! [[ "$name" =~ ^innet_[a-z0-9_]+$ ]]; then
        echo "lint-metrics: $name violates innet_[a-z0-9_]+ naming" >&2
        fail=1
    fi
done <<<"$code"

# Documented names: backtick code spans in the §9 table. Label groups
# ({reason=...}, recognizable by the `=`) are stripped; name shorthand
# groups ({hits,misses}) are brace-expanded by the shell.
docs="$(sed -n '/^## 9\./,/^## 10\./p' "$FORMATS" |
    grep -oE '`innet_[^`]*`' | tr -d '`' |
    sed -E 's/\{[^}]*=[^}]*\}//g' |
    grep -E '^innet_[a-z0-9_{},]+$' |
    while read -r pat; do eval "printf '%s\n' $pat"; done | sort -u)"

while read -r name; do
    if ! grep -qxF "$name" <<<"$docs"; then
        echo "lint-metrics: $name missing from $FORMATS §9 metrics table" >&2
        fail=1
    fi
done <<<"$code"

if [ "$fail" -ne 0 ]; then
    echo "lint-metrics: FAILED" >&2
    exit 1
fi
echo "lint-metrics: $(wc -l <<<"$code" | tr -d ' ') metric names OK"
