// Quickstart: deploy the paper's Fig. 4 processing module — a UDP
// port-forwarding batcher — through the public API, end to end:
//
//  1. Build the operator network of the paper's Fig. 3.
//  2. Start a controller with the operator's HTTP-via-optimizer
//     policy.
//  3. Submit the client request (Click configuration + reachability
//     and invariant requirements).
//  4. Show the controller's placement decision and static-analysis
//     verdicts, then demonstrate that a provably-unsafe module is
//     refused.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	innet "github.com/in-net/innet"
)

// The client request of the paper's Fig. 4: batch UDP notifications
// arriving on port 1500 and forward them to the client's address.
const batcherConfig = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

const batcherRequirements = `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`

func main() {
	topo, err := innet.Fig3Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo,
		"reach from internet tcp src port 80 -> HTTPOptimizer -> client")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operator platforms:", topo.Platforms())

	dep, err := ctl.Deploy(innet.Request{
		Tenant:       "alice",
		ModuleName:   "Batcher",
		Config:       batcherConfig,
		Requirements: batcherRequirements,
		Trust:        innet.TrustClient,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s on %s (the paper's §4.5: 'only Platform 3 applies')\n",
		dep.ID, dep.Platform)
	fmt.Printf("  sandboxed: %v\n", dep.Sandboxed)
	fmt.Printf("  static analysis: compile %v, check %v\n",
		dep.Timings.Compile, dep.Timings.Check)
	for _, r := range dep.Security.Reasons {
		fmt.Printf("  security: %s\n", r)
	}

	// A DoS cannon is refused before it ever runs (§2.1 default-off).
	_, err = ctl.Deploy(innet.Request{
		Tenant:     "mallory",
		ModuleName: "cannon",
		Trust:      innet.TrustThirdParty,
		Config: `
in :: FromNetfront();
atk :: SetIPDst(203.0.113.99);
out :: ToNetfront();
in -> atk -> out;
`,
	})
	fmt.Printf("\nattack module: %v\n", err)

	if err := ctl.Kill(dep.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nkilled", dep.ID)
}
