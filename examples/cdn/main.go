// Mini-CDN — the paper's final use case (§8, Fig. 16): a small
// content provider runs legacy squid caches as sandboxed x86 VM stock
// modules on In-Net platforms in three countries and spreads clients
// to the nearest replica with geolocation DNS. The x86 VMs are opaque
// to static analysis, so the controller wraps each in a
// ChangeEnforcer sandbox — this is the "safe legacy code" path.
//
// Run with: go run ./examples/cdn
package main

import (
	"fmt"
	"log"

	innet "github.com/in-net/innet"
	"github.com/in-net/innet/internal/traffic"
)

func main() {
	topo, err := innet.Fig3Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo, "")
	if err != nil {
		log.Fatal(err)
	}
	// Three caches (Romania, Germany, Italy in the paper), plus the
	// geolocation DNS stock module that spreads clients.
	for _, site := range []string{"cache-ro", "cache-de", "cache-it"} {
		dep, err := ctl.Deploy(innet.Request{
			Tenant:     "smallcontent",
			ModuleName: site,
			Stock:      innet.StockX86VM,
			Trust:      innet.TrustThirdParty,
			Whitelist:  []string{"192.0.2.10"}, // the origin, for cache fills
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s on %s, sandboxed=%v (x86 VMs are always sandboxed)\n",
			site, dep.ID, dep.Platform, dep.Sandboxed)
	}
	dns, err := ctl.Deploy(innet.Request{
		Tenant:     "smallcontent",
		ModuleName: "geodns",
		Stock:      innet.StockGeoDNS,
		Trust:      innet.TrustThirdParty,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geo DNS: %s on %s, sandboxed=%v\n\n", dns.ID, dns.Platform, dns.Sandboxed)

	// 75 clients download a 1 KB file from the origin and from their
	// nearest cache.
	res := traffic.CDNScenario(traffic.DefaultCDNConfig())
	fmt.Println("download delay of a 1 KB file (75 clients, 20 downloads each):")
	fmt.Printf("%12s  %10s  %8s\n", "percentile", "origin-ms", "cdn-ms")
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		fmt.Printf("%12.0f  %10.0f  %8.0f\n", p,
			traffic.Percentile(res.OriginMS, p),
			traffic.Percentile(res.CDNMS, p))
	}
	med := traffic.Percentile(res.OriginMS, 50) / traffic.Percentile(res.CDNMS, 50)
	p90 := traffic.Percentile(res.OriginMS, 90) / traffic.Percentile(res.CDNMS, 90)
	fmt.Printf("\nmedian %.1fx lower, p90 %.1fx lower (paper: median halved, p90 four times lower)\n", med, p90)
}
