// Push notifications for mobiles — the paper's unifying example
// (§4.5) and energy evaluation (Fig. 13). A mobile client deploys the
// Fig. 4 batcher module; UDP notifications sent to the module are
// released in batches, and the handset's 3G radio model shows the
// energy saving: the radio's DCH/FACH tails are paid once per batch
// instead of once per message.
//
// Run with: go run ./examples/pushnotify
package main

import (
	"fmt"
	"log"

	innet "github.com/in-net/innet"
	"github.com/in-net/innet/internal/energy"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
)

func main() {
	// 1. Deploy the batcher through the controller.
	topo, err := innet.Fig3Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo, "")
	if err != nil {
		log.Fatal(err)
	}
	const interval = 120 // seconds between batch releases
	dep, err := ctl.Deploy(innet.Request{
		Tenant:     "mobile-7",
		ModuleName: "Batcher",
		Config: fmt.Sprintf(`
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(%d,100)
-> dst::ToNetfront()
`, interval),
		Requirements: "reach from internet udp -> Batcher:dst:0 dst 10.1.15.133 -> client dst port 1500 const payload",
		Trust:        innet.TrustClient,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batcher deployed: %s on %s at %s\n",
		dep.ID, dep.Platform, packet.IPString(dep.Addr))

	// 2. Run the module on a simulated platform: one 1 KB
	// notification every 30 s for an hour; record when batches reach
	// the handset.
	sim := netsim.New(1)
	pl := platform.New(sim, platform.DefaultModel(), 16*1024)
	if err := pl.Register(platform.ModuleSpec{
		Addr:     dep.Addr,
		Config:   dep.Config,
		Stateful: true, // the batcher buffers packets
	}); err != nil {
		log.Fatal(err)
	}
	horizon := netsim.Seconds(3600)
	var arrivals []netsim.Time
	for t := netsim.Seconds(30); t <= horizon; t += netsim.Seconds(30) {
		t := t
		sim.At(t, func() {
			pk := &packet.Packet{
				Protocol: packet.ProtoUDP,
				SrcIP:    packet.MustParseIP("192.0.2.50"), // app server
				DstIP:    dep.Addr,
				SrcPort:  4000, DstPort: 1500, TTL: 64,
				Payload: make([]byte, 1024),
			}
			pl.Deliver(pk, func(iface int, out *packet.Packet) {
				arrivals = append(arrivals, sim.Now())
			})
		})
	}
	sim.RunUntil(horizon)
	// Distinct wake-ups: bursts of packets separated by >1 s.
	wakeups := 0
	var last netsim.Time = -netsim.Seconds(10)
	for _, t := range arrivals {
		if t-last > netsim.Second {
			wakeups++
		}
		last = t
	}
	fmt.Printf("sent %d notifications, delivered %d in %d batches (radio wake-ups)\n",
		int(horizon/netsim.Seconds(30)), len(arrivals), wakeups)

	// 3. Energy comparison (the paper's Fig. 13 effect).
	radio := energy.DefaultRadio()
	unbatched := energy.BatchedArrivals(netsim.Seconds(30), netsim.Seconds(30), horizon)
	fmt.Printf("\naverage handset power:\n")
	fmt.Printf("  unbatched (every 30 s): %6.1f mW\n", radio.AveragePowerMW(unbatched, horizon))
	fmt.Printf("  batched (every %3d s):  %6.1f mW\n", interval, radio.AveragePowerMW(arrivals, horizon))
	fmt.Println("\n(paper Fig. 13: ≈240 mW unbatched down to ≈140 mW at 240 s batches)")
}
