// Protocol tunneling — the paper's §8 use case (Fig. 14). Deploying a
// new transport like SCTP natively is hopeless (middleboxes drop
// non-TCP/UDP), so it must be tunneled. UDP tunnels perform best but
// may be firewalled; TCP tunnels always work but the stacked
// congestion-control loops interact badly under loss. Instead of
// burning a 3-second transport timeout to discover whether UDP works,
// the sender asks the In-Net controller a reachability question and
// picks the optimal tunnel immediately.
//
// Run with: go run ./examples/protocoltunnel
package main

import (
	"fmt"
	"log"

	innet "github.com/in-net/innet"
	"github.com/in-net/innet/internal/tunnel"
)

func main() {
	// An operator whose client-side stateful firewall allows only
	// outgoing UDP (the paper's Fig. 1 network).
	topo, err := innet.Fig1Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo, "")
	if err != nil {
		log.Fatal(err)
	}

	// The sender probes the network instead of timing out.
	udpOK, err := ctl.Query("reach from client udp -> internet const payload")
	if err != nil {
		log.Fatal(err)
	}
	tcpOK, err := ctl.Query("reach from client tcp -> internet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachability probe (took %v + %v):\n",
		udpOK.Timings.Compile+udpOK.Timings.Check,
		tcpOK.Timings.Compile+tcpOK.Timings.Check)
	fmt.Printf("  udp to internet, payload intact: %v\n", udpOK.Satisfied)
	fmt.Printf("  tcp to internet:                 %v (%s)\n", tcpOK.Satisfied, tcpOK.Reason)

	choice := "TCP"
	if udpOK.Satisfied {
		choice = "UDP"
	}
	fmt.Printf("\n=> tunnel SCTP over %s\n", choice)
	fmt.Println("   (the paper: probing takes ~200 ms vs a 3 s SCTP timeout)")

	// Why the choice matters: the Fig. 14 sweep.
	fmt.Println("\nSCTP goodput over each tunnel (100 Mb/s link, 20 ms RTT):")
	fmt.Printf("%8s  %10s  %10s  %8s\n", "loss-%", "udp-Mbps", "tcp-Mbps", "ratio")
	for _, row := range tunnel.Sweep(tunnel.DefaultParams(), []float64{0, 1, 2, 5}, 8) {
		ratio := 0.0
		if row[2] > 0 {
			ratio = row[1] / row[2]
		}
		fmt.Printf("%8.1f  %10.1f  %10.1f  %8.2f\n", row[0], row[1], row[2], ratio)
	}
	fmt.Println("\n(paper Fig. 14: the TCP tunnel gives 2-5x less throughput at 1-5% loss)")
}
