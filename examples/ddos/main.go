// DoS protection — the paper's Slowloris defense use case (§8,
// Fig. 15). A web origin under a Slowloris attack deploys In-Net
// reverse-proxy stock modules at remote operators and redirects new
// connections to them via geolocation DNS; the proxies' aggressive
// slow-request timeouts starve the attack while valid requests flow.
//
// Run with: go run ./examples/ddos
package main

import (
	"fmt"
	"log"
	"strings"

	innet "github.com/in-net/innet"
	"github.com/in-net/innet/internal/traffic"
)

func main() {
	// The origin operator deploys the reverse-proxy stock module on
	// an In-Net platform (sandbox-free: the mirror-style proxy is
	// statically safe, Table 1).
	topo, err := innet.Fig3Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo, "")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		dep, err := ctl.Deploy(innet.Request{
			Tenant:     "webshop",
			ModuleName: fmt.Sprintf("rproxy-%d", i),
			Stock:      innet.StockReverseProxy,
			Trust:      innet.TrustThirdParty,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reverse proxy %s on %s (sandboxed=%v)\n", dep.ID, dep.Platform, dep.Sandboxed)
	}

	// Timeline: valid clients at ~300 req/s; attack from t=180 s to
	// t=630 s; the defended origin redirects at t=240 s.
	single := traffic.SlowlorisScenario(traffic.DefaultSlowlorisConfig(false))
	defended := traffic.SlowlorisScenario(traffic.DefaultSlowlorisConfig(true))

	fmt.Println("\nvalid requests served per second:")
	fmt.Printf("%8s  %14s  %12s\n", "time(s)", "single-server", "with-In-Net")
	for sec := 0; sec < len(single); sec += 60 {
		marker := ""
		switch {
		case sec == 180:
			marker = "   <- attack starts"
		case sec == 240:
			marker = "   <- In-Net proxies take over"
		case sec == 660:
			marker = "   <- attack over"
		}
		fmt.Printf("%8d  %14.0f  %12.0f%s\n", sec, single[sec], defended[sec], marker)
	}

	window := func(s []float64, from, to int) float64 {
		var sum float64
		for i := from; i < to; i++ {
			sum += s[i]
		}
		return sum / float64(to-from)
	}
	fmt.Println("\nsummary (avg req/s during the attack, t=400..600):")
	fmt.Printf("  single server: %6.0f\n", window(single, 400, 600))
	fmt.Printf("  with In-Net:   %6.0f\n", window(defended, 400, 600))
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("paper Fig. 15: In-Net quickly instantiates processing and diverts traffic, restoring the served-request rate")
}
