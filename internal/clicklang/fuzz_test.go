package clicklang

import "testing"

// FuzzParse runs the parser over hostile inputs; with plain `go test`
// it exercises the seed corpus, and `go test -fuzz=FuzzParse` explores
// further. The invariant: never panic, and a successful parse must
// re-parse from its own String() rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"a :: Discard();",
		"FromNetfront() -> Discard();",
		"a :: IPFilter(allow udp, deny all); b :: FromNetfront(); b -> a;",
		"x[1] -> [2]y;",
		"a :: B(c(d,e), \"f,g\");",
		"/* comment */ a :: Discard(); // end",
		"a :: Discard( unterminated",
		"name :: Class(args) -> other :: Class2() -> third;",
		"\x00\x01\x02",
		"a::b();a->a;",
		"🎉 :: Discard();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(cfg.String()); err != nil {
			t.Fatalf("String() of a valid config does not re-parse: %v\noriginal: %q\nrendered: %q",
				err, src, cfg.String())
		}
	})
}

// FuzzSplitArgs checks SplitArgs never panics and never fabricates
// content longer than its input.
func FuzzSplitArgs(f *testing.F) {
	for _, s := range []string{"", "a,b", "f(x,y),z", `"a,b",c`, "((((", ",,,,", `"unterminated`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		parts := SplitArgs(raw)
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		if total > len(raw) {
			t.Fatalf("SplitArgs(%q) fabricated content: %q", raw, parts)
		}
	})
}
