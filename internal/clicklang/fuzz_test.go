package clicklang

import "testing"

// FuzzParse runs the parser over hostile inputs; with plain `go test`
// it exercises the seed corpus, and `go test -fuzz=FuzzParse` explores
// further. The invariant: never panic, and a successful parse must
// re-parse from its own String() rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"a :: Discard();",
		"FromNetfront() -> Discard();",
		"a :: IPFilter(allow udp, deny all); b :: FromNetfront(); b -> a;",
		"x[1] -> [2]y;",
		"a :: B(c(d,e), \"f,g\");",
		"/* comment */ a :: Discard(); // end",
		"a :: Discard( unterminated",
		"name :: Class(args) -> other :: Class2() -> third;",
		"\x00\x01\x02",
		"a::b();a->a;",
		"🎉 :: Discard();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(cfg.String()); err != nil {
			t.Fatalf("String() of a valid config does not re-parse: %v\noriginal: %q\nrendered: %q",
				err, src, cfg.String())
		}
	})
}

// FuzzSplitArgs checks SplitArgs never panics and never fabricates
// content longer than its input.
func FuzzSplitArgs(f *testing.F) {
	for _, s := range []string{"", "a,b", "f(x,y),z", `"a,b",c`, "((((", ",,,,", `"unterminated`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		parts := SplitArgs(raw)
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		if total > len(raw) {
			t.Fatalf("SplitArgs(%q) fabricated content: %q", raw, parts)
		}
	})
}

// FuzzCanonicalConfig asserts the properties the controller's
// admission cache builds on: canonicalization never panics on
// parser-accepted input, is idempotent (Canonical(Canonical(x)) ==
// Canonical(x) — semantically equal sources share one cache key), and
// its output always re-parses to the same canonical form.
func FuzzCanonicalConfig(f *testing.F) {
	seeds := []string{
		"",
		"a :: Discard();",
		"FromNetfront() -> Discard();",
		"FromNetfront() -> IPFilter(allow udp port 1500) -> ToNetfront();",
		"a :: IPFilter(allow udp, deny all); b :: FromNetfront(); b -> a;",
		"x[1] -> [2]y;",
		"a :: B(c(d,e), \"f,g\");",
		"/* comment */ a :: Discard(); // end",
		"name :: Class(args) -> other :: Class2() -> third;",
		"a::b();a->a;",
		// Whitespace/comment variants of the same graph must
		// canonicalize identically.
		"  a :: Discard() ;  ",
		"a /*x*/ :: Discard();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c1, err := Canonical(src)
		if err != nil {
			// Not parser-accepted: nothing to guarantee beyond "no
			// panic", which reaching this line already proves.
			return
		}
		c2, err := Canonical(c1)
		if err != nil {
			t.Fatalf("canonical form does not re-canonicalize: %v\noriginal: %q\ncanonical: %q", err, src, c1)
		}
		if c1 != c2 {
			t.Fatalf("canonicalization is not idempotent:\noriginal: %q\nfirst:  %q\nsecond: %q", src, c1, c2)
		}
	})
}
