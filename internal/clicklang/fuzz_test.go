package clicklang

import (
	"strings"
	"testing"
)

// FuzzParse runs the parser over hostile inputs; with plain `go test`
// it exercises the seed corpus, and `go test -fuzz=FuzzParse` explores
// further. The invariant: never panic, and a successful parse must
// re-parse from its own String() rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"a :: Discard();",
		"FromNetfront() -> Discard();",
		"a :: IPFilter(allow udp, deny all); b :: FromNetfront(); b -> a;",
		"x[1] -> [2]y;",
		"a :: B(c(d,e), \"f,g\");",
		"/* comment */ a :: Discard(); // end",
		"a :: Discard( unterminated",
		"name :: Class(args) -> other :: Class2() -> third;",
		"\x00\x01\x02",
		"a::b();a->a;",
		"🎉 :: Discard();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(cfg.String()); err != nil {
			t.Fatalf("String() of a valid config does not re-parse: %v\noriginal: %q\nrendered: %q",
				err, src, cfg.String())
		}
	})
}

// FuzzSplitArgs checks SplitArgs never panics and never fabricates
// content longer than its input.
func FuzzSplitArgs(f *testing.F) {
	for _, s := range []string{"", "a,b", "f(x,y),z", `"a,b",c`, "((((", ",,,,", `"unterminated`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		parts := SplitArgs(raw)
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		if total > len(raw) {
			t.Fatalf("SplitArgs(%q) fabricated content: %q", raw, parts)
		}
	})
}

// FuzzCanonicalConfig asserts the properties the controller's
// admission cache builds on: canonicalization never panics on
// parser-accepted input, is idempotent (Canonical(Canonical(x)) ==
// Canonical(x) — semantically equal sources share one cache key), and
// its output always re-parses to the same canonical form.
func FuzzCanonicalConfig(f *testing.F) {
	seeds := []string{
		"",
		"a :: Discard();",
		"FromNetfront() -> Discard();",
		"FromNetfront() -> IPFilter(allow udp port 1500) -> ToNetfront();",
		"a :: IPFilter(allow udp, deny all); b :: FromNetfront(); b -> a;",
		"x[1] -> [2]y;",
		"a :: B(c(d,e), \"f,g\");",
		"/* comment */ a :: Discard(); // end",
		"name :: Class(args) -> other :: Class2() -> third;",
		"a::b();a->a;",
		// Whitespace/comment variants of the same graph must
		// canonicalize identically.
		"  a :: Discard() ;  ",
		"a /*x*/ :: Discard();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c1, err := Canonical(src)
		if err != nil {
			// Not parser-accepted: nothing to guarantee beyond "no
			// panic", which reaching this line already proves.
			return
		}
		c2, err := Canonical(c1)
		if err != nil {
			t.Fatalf("canonical form does not re-canonicalize: %v\noriginal: %q\ncanonical: %q", err, src, c1)
		}
		if c1 != c2 {
			t.Fatalf("canonicalization is not idempotent:\noriginal: %q\nfirst:  %q\nsecond: %q", src, c1, c2)
		}
	})
}

// FuzzMemoKey asserts the two properties the per-element symexec memo
// key (symexec.Memo) builds on FragmentCanonical for:
//
//  1. Equivalence: two raw argument strings that split into the same
//     argument list — i.e. differ only in inter-argument whitespace,
//     exactly what Configure never sees — canonicalize identically,
//     so structurally shared elements across tenants share one memo
//     entry.
//  2. Injectivity: distinct (class, argument-list) pairs never render
//     to the same canonical string (the length-prefixed encoding
//     leaves no byte sequence ambiguous), so a memo hit can never
//     replay the recipe of a differently-configured element.
func FuzzMemoKey(f *testing.F) {
	add := func(classA, argsA, classB, argsB string) { f.Add(classA, argsA, classB, argsB) }
	add("IPFilter", "allow udp port 1500, deny all", "IPFilter", "allow udp port 1500 ,  deny all")
	add("IPFilter", "allow udp port 1500", "IPFilter", "allow udp port 1501")
	add("SetIPDst", "192.0.2.1", "SetIPSrc", "192.0.2.1")
	add("Tee", "2", "Tee", " 2 ")
	add("A", "x,y", "A", "x,,y")
	add("A", `"a,b"`, "A", "a,b")
	add("A", "ab", "B", "a,b")
	add("A", "1:x", "A", "1:,x")
	add("A", "", "A", " ")
	f.Fuzz(func(t *testing.T, classA, argsA, classB, argsB string) {
		ca := FragmentCanonical(classA, argsA)
		cb := FragmentCanonical(classB, argsB)
		sameInput := classA == classB &&
			strings.Join(SplitArgs(argsA), "\x00") == strings.Join(SplitArgs(argsB), "\x00")
		// NUL can appear inside a fuzzed argument, making the joined
		// comparison ambiguous; resolve exactly.
		if sameInput {
			a, b := SplitArgs(argsA), SplitArgs(argsB)
			if len(a) != len(b) {
				sameInput = false
			} else {
				for i := range a {
					if a[i] != b[i] {
						sameInput = false
						break
					}
				}
			}
		}
		if sameInput && ca != cb {
			t.Fatalf("equal Configure input canonicalizes differently:\n(%q, %q) -> %q\n(%q, %q) -> %q",
				classA, argsA, ca, classB, argsB, cb)
		}
		// Injectivity is claimed only for parser-shaped class names
		// (identifiers). An adversarial "class" embedding '(' and a
		// length prefix could forge the rendering's class/args
		// boundary, but the parser can never produce one.
		if !identLike(classA) || !identLike(classB) {
			return
		}
		if !sameInput && ca == cb {
			t.Fatalf("distinct Configure inputs collide on %q:\n(%q, %q) args %q\n(%q, %q) args %q",
				ca, classA, argsA, SplitArgs(argsA), classB, argsB, SplitArgs(argsB))
		}
	})
}

// identLike reports whether s could have come out of the parser as an
// element class name (conservatively: non-empty, no argument-list
// metacharacters).
func identLike(s string) bool {
	return s != "" && !strings.ContainsAny(s, "(): \t\n,\"")
}
