package clicklang

import (
	"fmt"
	"strings"
)

// Canonical parses src and renders it back in the parser's canonical
// form: one declaration per line (`name :: Class(raw-args);`) in
// declaration order, then one connection per line with explicit port
// indices (`from[p] -> [q]to;`). Whitespace, comments, chained
// connection sugar and implicit port indices all normalize away, so
// two sources with the same parse tree canonicalize to the same
// bytes — the property the controller's admission cache keys rely on
// (same semantics → same cache key).
//
// Canonical is idempotent: Canonical(Canonical(x)) == Canonical(x)
// for every parser-accepted x (anonymous elements are named
// deterministically by position during the first parse and survive
// re-parsing verbatim). FuzzCanonicalConfig enforces both properties.
func Canonical(src string) (string, error) {
	cfg, err := Parse(src)
	if err != nil {
		return "", err
	}
	return cfg.String(), nil
}

// FragmentCanonical renders a single element declaration's
// behaviour-relevant content: the class plus the argument list exactly
// as element Configure implementations receive it (split on top-level
// commas, each argument whitespace-trimmed). The element's instance
// name, its wiring, and argument-list whitespace are all excluded —
// none of them reach Configure — so two fragments canonicalize
// equally if and only if they configure identical element behaviour.
// This is the element half of the per-element memo key (the other
// half is the canonicalized entry state; see symexec.Memo).
func FragmentCanonical(class, rawArgs string) string {
	args := SplitArgs(rawArgs)
	var b strings.Builder
	b.WriteString(class)
	b.WriteByte('(')
	for _, a := range args {
		// Length-prefixed so arbitrary argument bytes can never make
		// two distinct argument lists render identically.
		fmt.Fprintf(&b, "%d:", len(a))
		b.WriteString(a)
	}
	b.WriteByte(')')
	return b.String()
}
