package clicklang

// Canonical parses src and renders it back in the parser's canonical
// form: one declaration per line (`name :: Class(raw-args);`) in
// declaration order, then one connection per line with explicit port
// indices (`from[p] -> [q]to;`). Whitespace, comments, chained
// connection sugar and implicit port indices all normalize away, so
// two sources with the same parse tree canonicalize to the same
// bytes — the property the controller's admission cache keys rely on
// (same semantics → same cache key).
//
// Canonical is idempotent: Canonical(Canonical(x)) == Canonical(x)
// for every parser-accepted x (anonymous elements are named
// deterministically by position during the first parse and survive
// re-parsing verbatim). FuzzCanonicalConfig enforces both properties.
func Canonical(src string) (string, error) {
	cfg, err := Parse(src)
	if err != nil {
		return "", err
	}
	return cfg.String(), nil
}
