package clicklang

import (
	"reflect"
	"strings"
	"testing"
)

// The batcher module from the paper's Fig. 4.
const fig4 = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 172.16.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

func TestParseFig4(t *testing.T) {
	cfg, err := Parse(fig4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 5 {
		t.Fatalf("decls = %d want 5: %+v", len(cfg.Decls), cfg.Decls)
	}
	classes := make([]string, len(cfg.Decls))
	for i, d := range cfg.Decls {
		classes[i] = d.Class
	}
	want := []string{"FromNetfront", "IPFilter", "IPRewriter", "TimedUnqueue", "ToNetfront"}
	if !reflect.DeepEqual(classes, want) {
		t.Errorf("classes = %v want %v", classes, want)
	}
	if len(cfg.Conns) != 4 {
		t.Fatalf("conns = %d want 4", len(cfg.Conns))
	}
	// The last element is explicitly named "dst".
	if cfg.Decl("dst") == nil || cfg.Decl("dst").Class != "ToNetfront" {
		t.Error("named inline declaration dst::ToNetfront missing")
	}
	// TimedUnqueue args split on commas.
	var tu *Decl
	for i := range cfg.Decls {
		if cfg.Decls[i].Class == "TimedUnqueue" {
			tu = &cfg.Decls[i]
		}
	}
	if tu == nil || !reflect.DeepEqual(tu.Args, []string{"120", "100"}) {
		t.Errorf("TimedUnqueue args = %+v", tu)
	}
}

func TestParseDeclarationAndChain(t *testing.T) {
	src := `
// A firewall module.
fw :: IPFilter(allow tcp dst port 80, deny all);
in :: FromNetfront();
out :: ToNetfront();
in -> fw -> out;
`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 3 || len(cfg.Conns) != 2 {
		t.Fatalf("got %d decls %d conns", len(cfg.Decls), len(cfg.Conns))
	}
	fw := cfg.Decl("fw")
	if fw == nil {
		t.Fatal("fw not declared")
	}
	if want := []string{"allow tcp dst port 80", "deny all"}; !reflect.DeepEqual(fw.Args, want) {
		t.Errorf("fw args = %v want %v", fw.Args, want)
	}
}

func TestParsePortIndices(t *testing.T) {
	src := `
cl :: Classifier(a, b);
q0 :: Queue();
q1 :: Queue();
cl[0] -> q0;
cl[1] -> [0]q1;
`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Conns) != 2 {
		t.Fatalf("conns = %d", len(cfg.Conns))
	}
	if cfg.Conns[0].FromPort != 0 || cfg.Conns[1].FromPort != 1 {
		t.Errorf("from ports: %+v", cfg.Conns)
	}
	if cfg.Conns[1].ToPort != 0 {
		t.Errorf("to port: %+v", cfg.Conns[1])
	}
}

func TestParsePortInChain(t *testing.T) {
	src := `c :: Classifier(x, y); d :: Discard(); c[1] -> d;`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Conns[0].FromPort != 1 {
		t.Errorf("FromPort = %d", cfg.Conns[0].FromPort)
	}
}

func TestFanInAllowed(t *testing.T) {
	src := `
a :: FromNetfront(); b :: FromNetfront(); d :: Discard();
a -> d; b -> d;`
	if _, err := Parse(src); err != nil {
		t.Fatalf("fan-in should be legal: %v", err)
	}
}

func TestDuplicateOutputRejected(t *testing.T) {
	src := `
a :: FromNetfront(); d :: Discard(); e :: Discard();
a -> d; a -> e;`
	if _, err := Parse(src); err == nil {
		t.Fatal("duplicate output connection should be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undeclared", `a -> b;`},
		{"redeclared", `a :: Discard(); a :: Discard();`},
		{"bad token", `a :: : Discard();`},
		{"unterminated args", `a :: Discard(foo`},
		{"unterminated comment", `/* hello`},
		{"unterminated string", `a :: Discard("abc`},
		{"dangling arrow", `a :: Discard(); a -> ;`},
		{"dangling port", `a :: Discard(); a[1];`},
		{"bad port", `a :: Discard(); b :: Discard(); a[x] -> b;`},
		{"missing semicolon", `a :: Discard() b :: Discard()`},
		{"stray char", `a %% b`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error lacks position: %v", c.name, err)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
/* block
   comment */
a :: FromNetfront(); // trailing
// full line
a -> Discard();
`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 2 || len(cfg.Conns) != 1 {
		t.Errorf("decls=%d conns=%d", len(cfg.Decls), len(cfg.Conns))
	}
}

func TestAnonymousNamesAreUnique(t *testing.T) {
	src := `FromNetfront() -> Discard(); FromNetfront() -> Discard();`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range cfg.Decls {
		if seen[d.Name] {
			t.Fatalf("duplicate generated name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestStringRoundTrip(t *testing.T) {
	cfg, err := Parse(fig4)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("reparse of String(): %v\n%s", err, cfg.String())
	}
	if len(re.Decls) != len(cfg.Decls) || len(re.Conns) != len(cfg.Conns) {
		t.Errorf("round trip changed shape: %d/%d vs %d/%d",
			len(re.Decls), len(re.Conns), len(cfg.Decls), len(cfg.Conns))
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a, b, c", []string{"a", "b", "c"}},
		{"f(x, y), b", []string{"f(x, y)", "b"}},
		{`"a,b", c`, []string{`"a,b"`, "c"}},
		{"pattern - - 172.16.15.133 - 0 0", []string{"pattern - - 172.16.15.133 - 0 0"}},
		{" spaced , out ", []string{"spaced", "out"}},
	}
	for _, c := range cases {
		got := SplitArgs(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitArgs(%q) = %#v want %#v", c.in, got, c.want)
		}
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	src := "a :: Discard();\n\n\nb -> a;\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 4 {
		t.Errorf("line = %d want 4 (%v)", pe.Line, err)
	}
}

func BenchmarkParseFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(fig4); err != nil {
			b.Fatal(err)
		}
	}
}
