// Package clicklang parses the Click modular-router configuration
// language used by In-Net clients to describe processing modules
// (paper §4.1). The supported grammar covers the subset the paper
// exercises: element declarations, inline/anonymous declarations and
// connection chains with optional port indices:
//
//	src :: FromNetfront();
//	src -> IPFilter(allow udp port 1500)
//	    -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
//	    -> TimedUnqueue(120, 100)
//	    -> dst :: ToNetfront();
//	a[1] -> [0]b;
//
// Comments use // and /* */. Statements are terminated by ';'.
package clicklang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokColonColon // ::
	tokArrow      // ->
	tokLBracket
	tokRBracket
	tokSemicolon
	tokArgs // raw text between balanced parentheses
	tokNumber
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokColonColon:
		return "'::'"
	case tokArrow:
		return "'->'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokSemicolon:
		return "';'"
	case tokArgs:
		return "argument list"
	case tokNumber:
		return "number"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// Error is a parse error with position information.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("clicklang: line %d: %s", e.Line, e.Msg) }

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			start := l.line
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return &Error{Line: start, Msg: "unterminated /* comment"}
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || unicode.IsLetter(rune(c))
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '@' || c == '/' || c == '.' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: l.line}, nil
	}
	switch {
	case c == ';':
		l.pos++
		return token{kind: tokSemicolon, text: ";", line: l.line}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", line: l.line}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", line: l.line}, nil
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			l.pos += 2
			return token{kind: tokColonColon, text: "::", line: l.line}, nil
		}
		return token{}, l.errf("unexpected ':'")
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{kind: tokArrow, text: "->", line: l.line}, nil
		}
		return token{}, l.errf("unexpected '-'")
	case c == '(':
		return l.lexArgs()
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", string(rune(c)))
	}
}

// lexArgs captures raw text between balanced parentheses, honoring
// nested parens and double-quoted strings.
func (l *lexer) lexArgs() (token, error) {
	startLine := l.line
	l.pos++ // consume '('
	depth := 1
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\n':
			l.line++
			b.WriteByte(c)
			l.pos++
		case '(':
			depth++
			b.WriteByte(c)
			l.pos++
		case ')':
			depth--
			l.pos++
			if depth == 0 {
				return token{kind: tokArgs, text: b.String(), line: startLine}, nil
			}
			b.WriteByte(c)
		case '"':
			b.WriteByte(c)
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return token{}, &Error{Line: startLine, Msg: "unterminated string"}
			}
			b.WriteByte('"')
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, &Error{Line: startLine, Msg: "unterminated argument list"}
}

// SplitArgs splits a raw Click argument string on top-level commas,
// trimming whitespace, honoring nested parentheses and quotes. An
// empty input yields no arguments.
func SplitArgs(raw string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(raw[start:end])
		if s != "" || len(out) > 0 || end < len(raw) {
			out = append(out, s)
		}
	}
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	if s := strings.TrimSpace(raw[start:]); s != "" {
		out = append(out, s)
	} else if len(out) > 0 {
		out = append(out, "")
	}
	return out
}
