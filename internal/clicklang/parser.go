package clicklang

import (
	"fmt"
	"strconv"
	"strings"
)

// Decl is one element declaration: name :: Class(args).
type Decl struct {
	Name  string
	Class string
	// Args are the comma-separated configuration arguments.
	Args []string
	// RawArgs is the unsplit argument text.
	RawArgs string
	Line    int
}

// Conn is a directed edge from one element output port to another
// element input port.
type Conn struct {
	From     string
	FromPort int
	To       string
	ToPort   int
	Line     int
}

// Config is a parsed Click configuration.
type Config struct {
	Decls []Decl
	Conns []Conn

	byName map[string]*Decl
}

// Decl returns the declaration with the given element name, or nil.
func (c *Config) Decl(name string) *Decl {
	if d, ok := c.byName[name]; ok {
		return d
	}
	return nil
}

// String renders the configuration back to (canonical) Click syntax.
func (c *Config) String() string {
	var b strings.Builder
	for _, d := range c.Decls {
		fmt.Fprintf(&b, "%s :: %s(%s);\n", d.Name, d.Class, d.RawArgs)
	}
	for _, cn := range c.Conns {
		fmt.Fprintf(&b, "%s[%d] -> [%d]%s;\n", cn.From, cn.FromPort, cn.ToPort, cn.To)
	}
	return b.String()
}

type parser struct {
	lx    *lexer
	tok   token
	anonN int
	cfg   *Config
}

// Parse parses Click configuration source.
func Parse(src string) (*Config, error) {
	p := &parser{
		lx:  newLexer(src),
		cfg: &Config{byName: make(map[string]*Decl)},
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p.cfg, nil
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

// statement parses either a standalone declaration or a connection
// chain (whose endpoints may be inline declarations).
func (p *parser) statement() error {
	first, outPort, err := p.endpoint()
	if err != nil {
		return err
	}
	if p.tok.kind != tokArrow {
		// Standalone declaration; nothing more to do.
		if outPort >= 0 {
			return p.errf("dangling output port on %s", first)
		}
		return p.expectEnd()
	}
	prev, prevPort := first, outPort
	for p.tok.kind == tokArrow {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return err
		}
		inPort := -1
		if p.tok.kind == tokLBracket {
			inPort, err = p.portIndex()
			if err != nil {
				return err
			}
		}
		name, nextOut, err := p.endpoint()
		if err != nil {
			return err
		}
		fp, tp := prevPort, inPort
		if fp < 0 {
			fp = 0
		}
		if tp < 0 {
			tp = 0
		}
		p.cfg.Conns = append(p.cfg.Conns, Conn{
			From: prev, FromPort: fp, To: name, ToPort: tp, Line: line,
		})
		prev, prevPort = name, nextOut
	}
	if prevPort >= 0 {
		return p.errf("dangling output port on %s", prev)
	}
	return p.expectEnd()
}

func (p *parser) expectEnd() error {
	switch p.tok.kind {
	case tokSemicolon:
		return p.advance()
	case tokEOF:
		return nil
	default:
		return p.errf("expected ';', got %v", p.tok.kind)
	}
}

// portIndex parses "[n]" with the '[' as current token.
func (p *parser) portIndex() (int, error) {
	if err := p.advance(); err != nil {
		return 0, err
	}
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected port number, got %v", p.tok.kind)
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil || n < 0 || n > 255 {
		return 0, p.errf("bad port index %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if p.tok.kind != tokRBracket {
		return 0, p.errf("expected ']', got %v", p.tok.kind)
	}
	return n, p.advance()
}

// endpoint parses one element reference and returns its name plus the
// trailing output port index (or -1). Forms:
//
//	name
//	name [n]
//	name :: Class(args)
//	Class(args)            (anonymous; class must start upper-case)
func (p *parser) endpoint() (name string, outPort int, err error) {
	outPort = -1
	if p.tok.kind != tokIdent {
		return "", 0, p.errf("expected element name or class, got %v", p.tok.kind)
	}
	ident := p.tok.text
	line := p.tok.line
	if err := p.advance(); err != nil {
		return "", 0, err
	}
	switch p.tok.kind {
	case tokColonColon:
		// name :: Class(args)
		if err := p.advance(); err != nil {
			return "", 0, err
		}
		if p.tok.kind != tokIdent {
			return "", 0, p.errf("expected class after '::'")
		}
		class := p.tok.text
		if err := p.advance(); err != nil {
			return "", 0, err
		}
		raw := ""
		if p.tok.kind == tokArgs {
			raw = p.tok.text
			if err := p.advance(); err != nil {
				return "", 0, err
			}
		}
		if err := p.declare(ident, class, raw, line); err != nil {
			return "", 0, err
		}
		name = ident
	case tokArgs:
		// Class(args) anonymous declaration.
		raw := p.tok.text
		if err := p.advance(); err != nil {
			return "", 0, err
		}
		p.anonN++
		name = fmt.Sprintf("%s@%d", ident, p.anonN)
		if err := p.declare(name, ident, raw, line); err != nil {
			return "", 0, err
		}
	default:
		name = ident
	}
	if p.tok.kind == tokLBracket {
		n, err := p.portIndex()
		if err != nil {
			return "", 0, err
		}
		outPort = n
	}
	return name, outPort, nil
}

func (p *parser) declare(name, class, rawArgs string, line int) error {
	if _, dup := p.cfg.byName[name]; dup {
		return &Error{Line: line, Msg: fmt.Sprintf("element %q redeclared", name)}
	}
	d := Decl{
		Name: name, Class: class,
		Args: SplitArgs(rawArgs), RawArgs: rawArgs, Line: line,
	}
	p.cfg.Decls = append(p.cfg.Decls, d)
	p.cfg.byName[name] = &p.cfg.Decls[len(p.cfg.Decls)-1]
	return nil
}

// validate checks that every connection references a declared element
// and that no output port is doubly connected (push outputs connect to
// exactly one input; fan-in to a shared input port is legal Click).
func (p *parser) validate() error {
	type portKey struct {
		name string
		port int
	}
	outs := make(map[portKey]int)
	for _, c := range p.cfg.Conns {
		if p.cfg.Decl(c.From) == nil {
			return &Error{Line: c.Line, Msg: fmt.Sprintf("connection from undeclared element %q", c.From)}
		}
		if p.cfg.Decl(c.To) == nil {
			return &Error{Line: c.Line, Msg: fmt.Sprintf("connection to undeclared element %q", c.To)}
		}
		ok := portKey{c.From, c.FromPort}
		if prev, dup := outs[ok]; dup {
			return &Error{Line: c.Line, Msg: fmt.Sprintf("output %s[%d] already connected at line %d", c.From, c.FromPort, prev)}
		}
		outs[ok] = c.Line
	}
	return nil
}
