package elements

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("IPRewriter", func() click.Element { return &IPRewriter{} })
	click.Register("DecIPTTL", func() click.Element { return &DecIPTTL{} })
	click.Register("LookupIPRoute", func() click.Element { return &LookupIPRoute{} })
}

// rewritePattern is one "pattern SADDR SPORT DADDR DPORT FOUT ROUT"
// mapping. Nil pointers mean "-" (leave unchanged).
type rewritePattern struct {
	srcIP, dstIP     *uint32
	srcPort, dstPort *uint16
	fwdOut, revOut   int
}

// IPRewriter rewrites packet addresses/ports according to patterns,
// the element NATs and the paper's Fig. 4 batcher are built from:
//
//	IPRewriter(pattern - - 172.16.15.133 - 0 0)
//
// Input port 0 takes forward-direction traffic; input port 1, if
// used, takes reply traffic which is rewritten back using the
// recorded flow mappings (stateful, like a NAT's reverse path).
type IPRewriter struct {
	click.Base
	patterns []rewritePattern
	// mappings records forward rewrites: rewritten reverse tuple ->
	// original forward tuple, for the reply path.
	mappings map[packet.FiveTuple]packet.FiveTuple
	maxOut   int
}

// Class implements click.Element.
func (e *IPRewriter) Class() string { return "IPRewriter" }

// Configure implements click.Element.
func (e *IPRewriter) Configure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("IPRewriter: need at least one pattern")
	}
	e.mappings = make(map[packet.FiveTuple]packet.FiveTuple)
	for _, a := range args {
		f := strings.Fields(a)
		if len(f) != 7 || strings.ToLower(f[0]) != "pattern" {
			return fmt.Errorf("IPRewriter: want 'pattern SADDR SPORT DADDR DPORT FOUT ROUT', got %q", a)
		}
		var p rewritePattern
		var err error
		if p.srcIP, err = parseAddrArg(f[1]); err != nil {
			return fmt.Errorf("IPRewriter: SADDR: %v", err)
		}
		if p.srcPort, err = parsePortArg(f[2]); err != nil {
			return fmt.Errorf("IPRewriter: SPORT: %v", err)
		}
		if p.dstIP, err = parseAddrArg(f[3]); err != nil {
			return fmt.Errorf("IPRewriter: DADDR: %v", err)
		}
		if p.dstPort, err = parsePortArg(f[4]); err != nil {
			return fmt.Errorf("IPRewriter: DPORT: %v", err)
		}
		if p.fwdOut, err = strconv.Atoi(f[5]); err != nil || p.fwdOut < 0 {
			return fmt.Errorf("IPRewriter: bad FOUTPUT %q", f[5])
		}
		if p.revOut, err = strconv.Atoi(f[6]); err != nil || p.revOut < 0 {
			return fmt.Errorf("IPRewriter: bad ROUTPUT %q", f[6])
		}
		if p.fwdOut > e.maxOut {
			e.maxOut = p.fwdOut
		}
		if p.revOut > e.maxOut {
			e.maxOut = p.revOut
		}
		e.patterns = append(e.patterns, p)
	}
	return nil
}

func parseAddrArg(s string) (*uint32, error) {
	if s == "-" {
		return nil, nil
	}
	ip, err := packet.ParseIP(s)
	if err != nil {
		return nil, err
	}
	return &ip, nil
}

func parsePortArg(s string) (*uint16, error) {
	if s == "-" {
		return nil, nil
	}
	n, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("bad port %q", s)
	}
	p := uint16(n)
	return &p, nil
}

// InPorts implements click.Element.
func (e *IPRewriter) InPorts() int { return 2 }

// OutPorts implements click.Element.
func (e *IPRewriter) OutPorts() int { return e.maxOut + 1 }

// Rewrite applies the NAT to one packet arriving on the given input
// port, returning the output port and whether the packet survives
// (reply packets with no recorded mapping are dropped). Shared by
// Push and the compiled pipeline kernel.
func (e *IPRewriter) Rewrite(port int, p *packet.Packet) (int, bool) {
	if port == 1 {
		// Reply direction: restore the recorded original tuple.
		orig, ok := e.mappings[p.Tuple()]
		if !ok {
			return 0, false
		}
		p.SrcIP, p.DstIP = orig.DstIP, orig.SrcIP
		p.SrcPort, p.DstPort = orig.DstPort, orig.SrcPort
		return e.patterns[0].revOut, true
	}
	pat := e.patterns[0]
	orig := p.Tuple()
	if pat.srcIP != nil {
		p.SrcIP = *pat.srcIP
	}
	if pat.srcPort != nil {
		p.SrcPort = *pat.srcPort
	}
	if pat.dstIP != nil {
		p.DstIP = *pat.dstIP
	}
	if pat.dstPort != nil {
		p.DstPort = *pat.dstPort
	}
	e.mappings[p.Tuple().Reverse()] = orig
	return pat.fwdOut, true
}

// Push implements click.Element.
func (e *IPRewriter) Push(ctx *click.Context, port int, p *packet.Packet) {
	out, ok := e.Rewrite(port, p)
	if !ok {
		ctx.Drop(p)
		return
	}
	e.Out(ctx, out, p)
}

// Sym implements symexec.Model. The forward direction assigns the
// configured constants; the reply direction restores values that are
// only known at runtime, so rewritten fields become fresh variables.
func (e *IPRewriter) Sym(port int, s *symexec.State) []symexec.Transition {
	pat := e.patterns[0]
	if port == 1 {
		if pat.srcIP != nil || pat.dstIP != nil {
			s.AssignFresh(symexec.FieldSrcIP)
			s.AssignFresh(symexec.FieldDstIP)
		}
		if pat.srcPort != nil || pat.dstPort != nil {
			s.AssignFresh(symexec.FieldSrcPort)
			s.AssignFresh(symexec.FieldDstPort)
		}
		return []symexec.Transition{{Port: pat.revOut, S: s}}
	}
	if pat.srcIP != nil {
		s.Assign(symexec.FieldSrcIP, symexec.Const(uint64(*pat.srcIP)))
	}
	if pat.srcPort != nil {
		s.Assign(symexec.FieldSrcPort, symexec.Const(uint64(*pat.srcPort)))
	}
	if pat.dstIP != nil {
		s.Assign(symexec.FieldDstIP, symexec.Const(uint64(*pat.dstIP)))
	}
	if pat.dstPort != nil {
		s.Assign(symexec.FieldDstPort, symexec.Const(uint64(*pat.dstPort)))
	}
	return []symexec.Transition{{Port: pat.fwdOut, S: s}}
}

// DecIPTTL decrements the TTL, dropping expired packets (or emitting
// them on port 1 when wired).
type DecIPTTL struct {
	click.Base
	Expired uint64
}

// Class implements click.Element.
func (e *DecIPTTL) Class() string { return "DecIPTTL" }

// Configure implements click.Element.
func (e *DecIPTTL) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("DecIPTTL: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *DecIPTTL) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *DecIPTTL) OutPorts() int { return 2 }

// Push implements click.Element.
func (e *DecIPTTL) Push(ctx *click.Context, port int, p *packet.Packet) {
	if p.TTL <= 1 {
		e.Expired++
		if e.Connected(1) {
			e.Out(ctx, 1, p)
		} else {
			ctx.Drop(p)
		}
		return
	}
	p.TTL--
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: the live branch gets a fresh TTL
// variable constrained to [1, 254] (symbolic arithmetic on the old
// value is out of model scope, matching SymNet's abstractions).
func (e *DecIPTTL) Sym(port int, s *symexec.State) []symexec.Transition {
	expired := s.Clone()
	var out []symexec.Transition
	if s.Constrain(symexec.FieldTTL, symexec.Span(2, 255)) {
		s.AssignFresh(symexec.FieldTTL)
		s.Constrain(symexec.FieldTTL, symexec.Span(1, 254))
		out = append(out, symexec.Transition{Port: 0, S: s})
	}
	if expired.Constrain(symexec.FieldTTL, symexec.Span(0, 1)) {
		out = append(out, symexec.Transition{Port: 1, S: expired})
	}
	return out
}

// routeEntry is one LPM route.
type routeEntry struct {
	prefix packet.Prefix
	port   int
}

// LookupIPRoute performs longest-prefix-match routing on the
// destination address:
//
//	LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1)
//
// Each argument is "PREFIX PORT". It is the element at the core of
// the IP Router row of Table 1 — a transparent middlebox that only
// the operator may run.
type LookupIPRoute struct {
	click.Base
	routes []routeEntry
	maxOut int
	Misses uint64
}

// Class implements click.Element.
func (e *LookupIPRoute) Class() string { return "LookupIPRoute" }

// Configure implements click.Element.
func (e *LookupIPRoute) Configure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("LookupIPRoute: need at least one route")
	}
	for _, a := range args {
		f := strings.Fields(a)
		if len(f) != 2 {
			return fmt.Errorf("LookupIPRoute: want 'PREFIX PORT', got %q", a)
		}
		pfx, err := packet.ParsePrefix(f[0])
		if err != nil {
			return fmt.Errorf("LookupIPRoute: %v", err)
		}
		port, err := strconv.Atoi(f[1])
		if err != nil || port < 0 {
			return fmt.Errorf("LookupIPRoute: bad port %q", f[1])
		}
		if port > e.maxOut {
			e.maxOut = port
		}
		e.routes = append(e.routes, routeEntry{prefix: pfx, port: port})
	}
	// Longest prefix first for both runtime and symbolic LPM.
	sort.SliceStable(e.routes, func(i, j int) bool {
		return e.routes[i].prefix.Bits > e.routes[j].prefix.Bits
	})
	return nil
}

// InPorts implements click.Element.
func (e *LookupIPRoute) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *LookupIPRoute) OutPorts() int { return e.maxOut + 1 }

// Lookup returns the LPM output port for the destination, or -1 on a
// routing miss (counted; the packet should be dropped). Shared by
// Push and the compiled pipeline kernel.
func (e *LookupIPRoute) Lookup(p *packet.Packet) int {
	for _, r := range e.routes {
		if r.prefix.Contains(p.DstIP) {
			return r.port
		}
	}
	e.Misses++
	return -1
}

// Push implements click.Element.
func (e *LookupIPRoute) Push(ctx *click.Context, port int, p *packet.Packet) {
	if out := e.Lookup(p); out >= 0 {
		e.Out(ctx, out, p)
		return
	}
	ctx.Drop(p)
}

// Sym implements symexec.Model: LPM splits the flow per route, with
// each later (shorter) prefix refined by the complement of all
// earlier ones.
func (e *LookupIPRoute) Sym(port int, s *symexec.State) []symexec.Transition {
	var out []symexec.Transition
	pending := []*symexec.State{s}
	for _, r := range e.routes {
		lo, hi := r.prefix.Range()
		in := symexec.Span(uint64(lo), uint64(hi))
		notIn := in.Complement(32)
		var next []*symexec.State
		for _, st := range pending {
			m := st.Clone()
			if m.Constrain(symexec.FieldDstIP, in) {
				out = append(out, symexec.Transition{Port: r.port, S: m})
			}
			if st.Constrain(symexec.FieldDstIP, notIn) {
				next = append(next, st)
			}
		}
		pending = next
		if len(pending) == 0 {
			break
		}
	}
	return out
}
