package elements

import (
	"fmt"
	"strconv"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("Unqueue", func() click.Element { return &Unqueue{} })
}

// kicker is how an upstream Queue wakes a pull-input element when new
// packets arrive (the analogue of Click's task notifiers).
type kicker interface {
	Kick(ctx *click.Context)
}

// Unqueue is Click's push/pull converter: its input is a pull port
// wired to a Queue's output, and it eagerly drains the queue into its
// push output (up to BURST packets per wake-up, default unlimited):
//
//	q :: Queue(1000);
//	... -> q -> Unqueue() -> out;
type Unqueue struct {
	click.Base
	Burst    int
	upstream click.Puller
	upPort   int
	// Pulled counts forwarded packets.
	Pulled uint64
}

// Class implements click.Element.
func (e *Unqueue) Class() string { return "Unqueue" }

// Configure implements click.Element.
func (e *Unqueue) Configure(args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("Unqueue: want at most [BURST]")
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("Unqueue: bad burst %q", args[0])
		}
		e.Burst = n
	}
	return nil
}

// InPorts implements click.Element.
func (e *Unqueue) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *Unqueue) OutPorts() int { return 1 }

// SetUpstream implements click.UpstreamSetter.
func (e *Unqueue) SetUpstream(port int, up click.Puller, upPort int) error {
	if e.upstream != nil {
		return fmt.Errorf("Unqueue: pull input already wired")
	}
	e.upstream = up
	e.upPort = upPort
	return nil
}

// Push implements click.Element. A pull input cannot be pushed to;
// misdirected packets are dropped (real Click fails the configuration
// at parse time; we lack push/pull type inference, so this is the
// runtime guard).
func (e *Unqueue) Push(ctx *click.Context, port int, p *packet.Packet) {
	ctx.Drop(p)
}

// Kick drains the upstream queue (the notifier wake-up).
func (e *Unqueue) Kick(ctx *click.Context) {
	if e.upstream == nil {
		return
	}
	n := 0
	for {
		if e.Burst > 0 && n >= e.Burst {
			return
		}
		p := e.upstream.Pull(ctx, e.upPort)
		if p == nil {
			return
		}
		e.Pulled++
		n++
		e.Out(ctx, 0, p)
	}
}

// Tick implements click.Ticker: a safety net that drains anything the
// notifier missed (e.g. packets enqueued before wiring completed).
func (e *Unqueue) Tick(ctx *click.Context) int64 {
	e.Kick(ctx)
	return -1
}

// Sym implements symexec.Model: scheduling does not change headers.
func (e *Unqueue) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}
