// Package elements implements the standard Click element classes the
// In-Net platform offers to tenants (paper §4.1: "hundreds of
// elements"; we implement the set the paper's configurations and
// evaluation exercise, plus supporting classes).
//
// Every element provides both a runtime implementation (Push) and a
// symbolic model (Sym) so that the exact same configured instance is
// used by the dataplane and by the controller's static checking.
package elements

import (
	"fmt"
	"hash/crc32"
	"strconv"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("FromNetfront", func() click.Element { return &FromNetfront{} })
	click.Register("FromDevice", func() click.Element { return &FromNetfront{} })
	click.Register("ToNetfront", func() click.Element { return &ToNetfront{} })
	click.Register("ToDevice", func() click.Element { return &ToNetfront{} })
	click.Register("Discard", func() click.Element { return &Discard{} })
	click.Register("Counter", func() click.Element { return &Counter{} })
	click.Register("Tee", func() click.Element { return &Tee{} })
	click.Register("Paint", func() click.Element { return &Paint{} })
	click.Register("CheckPaint", func() click.Element { return &CheckPaint{} })
	click.Register("SetIPSrc", func() click.Element { return &SetIPField{field: symexec.FieldSrcIP} })
	click.Register("SetIPDst", func() click.Element { return &SetIPField{field: symexec.FieldDstIP} })
	click.Register("SetTOS", func() click.Element { return &SetTOS{} })
	click.Register("SetCRC32", func() click.Element { return &SetCRC32{} })
	click.Register("CheckIPHeader", func() click.Element { return &CheckIPHeader{} })
}

// FromNetfront is the module's ingress: packets arriving from the
// platform's back-end switch enter the configuration here. The
// optional argument is the interface index.
type FromNetfront struct {
	click.Base
	Iface int
}

// Class implements click.Element.
func (e *FromNetfront) Class() string { return "FromNetfront" }

// Configure implements click.Element.
func (e *FromNetfront) Configure(args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("FromNetfront: want at most 1 arg, got %d", len(args))
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return fmt.Errorf("FromNetfront: bad interface %q", args[0])
		}
		e.Iface = n
	}
	return nil
}

// InPorts implements click.Element.
func (e *FromNetfront) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *FromNetfront) OutPorts() int { return 1 }

// InjectionPoint marks this element as a module entry.
func (e *FromNetfront) InjectionPoint() bool { return true }

// Push implements click.Element.
func (e *FromNetfront) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *FromNetfront) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// ToNetfront is the module's egress: packets leaving here are handed
// to the platform's back-end switch. The optional argument is the
// interface index.
type ToNetfront struct {
	click.Base
	Iface int
	// TxCount counts transmitted packets.
	TxCount uint64
}

// Class implements click.Element.
func (e *ToNetfront) Class() string { return "ToNetfront" }

// Configure implements click.Element.
func (e *ToNetfront) Configure(args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("ToNetfront: want at most 1 arg, got %d", len(args))
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return fmt.Errorf("ToNetfront: bad interface %q", args[0])
		}
		e.Iface = n
	}
	return nil
}

// InPorts implements click.Element.
func (e *ToNetfront) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *ToNetfront) OutPorts() int { return 0 }

// Push implements click.Element.
func (e *ToNetfront) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.TxCount++
	if ctx.Transmit != nil {
		ctx.Transmit(e.Iface, p)
		return
	}
	ctx.Drop(p)
}

// Sym implements symexec.Model: flows exit the module here, so the
// transition leaves through (unwired) port 0 and becomes an egress.
func (e *ToNetfront) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// Discard drops every packet.
type Discard struct {
	click.Base
	// Count counts discarded packets.
	Count uint64
}

// Class implements click.Element.
func (e *Discard) Class() string { return "Discard" }

// Configure implements click.Element.
func (e *Discard) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("Discard: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *Discard) InPorts() int { return click.AnyPorts }

// OutPorts implements click.Element.
func (e *Discard) OutPorts() int { return 0 }

// Push implements click.Element.
func (e *Discard) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Count++
	ctx.Drop(p)
}

// Sym implements symexec.Model.
func (e *Discard) Sym(port int, s *symexec.State) []symexec.Transition { return nil }

// Counter counts packets and bytes passing through.
type Counter struct {
	click.Base
	Packets uint64
	Bytes   uint64
}

// Class implements click.Element.
func (e *Counter) Class() string { return "Counter" }

// Configure implements click.Element.
func (e *Counter) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("Counter: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *Counter) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *Counter) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *Counter) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Packets++
	e.Bytes += uint64(p.Len())
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *Counter) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// Tee duplicates each packet to N output ports (the paper's multicast
// row in Table 1). The argument is N (default 2).
type Tee struct {
	click.Base
	N int
}

// Class implements click.Element.
func (e *Tee) Class() string { return "Tee" }

// Configure implements click.Element.
func (e *Tee) Configure(args []string) error {
	e.N = 2
	if len(args) > 1 {
		return fmt.Errorf("Tee: want at most 1 arg")
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 || n > 256 {
			return fmt.Errorf("Tee: bad branch count %q", args[0])
		}
		e.N = n
	}
	return nil
}

// InPorts implements click.Element.
func (e *Tee) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *Tee) OutPorts() int { return e.N }

// Push implements click.Element.
func (e *Tee) Push(ctx *click.Context, port int, p *packet.Packet) {
	for i := 1; i < e.N; i++ {
		if e.Connected(i) {
			e.Out(ctx, i, p.Clone())
		}
	}
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *Tee) Sym(port int, s *symexec.State) []symexec.Transition {
	out := make([]symexec.Transition, 0, e.N)
	for i := 0; i < e.N; i++ {
		st := s
		if i < e.N-1 {
			st = s.Clone()
		}
		out = append(out, symexec.Transition{Port: i, S: st})
	}
	return out
}

// Paint sets the paint annotation.
type Paint struct {
	click.Base
	Color uint8
}

// Class implements click.Element.
func (e *Paint) Class() string { return "Paint" }

// Configure implements click.Element.
func (e *Paint) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Paint: want exactly 1 arg")
	}
	n, err := strconv.ParseUint(args[0], 10, 8)
	if err != nil {
		return fmt.Errorf("Paint: bad color %q", args[0])
	}
	e.Color = uint8(n)
	return nil
}

// InPorts implements click.Element.
func (e *Paint) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *Paint) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *Paint) Push(ctx *click.Context, port int, p *packet.Packet) {
	p.Paint = e.Color
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *Paint) Sym(port int, s *symexec.State) []symexec.Transition {
	s.Assign(symexec.FieldPaint, symexec.Const(uint64(e.Color)))
	return []symexec.Transition{{Port: 0, S: s}}
}

// CheckPaint forwards packets with the configured paint to port 0 and
// all others to port 1 (or drops them if port 1 is unwired).
type CheckPaint struct {
	click.Base
	Color uint8
}

// Class implements click.Element.
func (e *CheckPaint) Class() string { return "CheckPaint" }

// Configure implements click.Element.
func (e *CheckPaint) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("CheckPaint: want exactly 1 arg")
	}
	n, err := strconv.ParseUint(args[0], 10, 8)
	if err != nil {
		return fmt.Errorf("CheckPaint: bad color %q", args[0])
	}
	e.Color = uint8(n)
	return nil
}

// InPorts implements click.Element.
func (e *CheckPaint) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *CheckPaint) OutPorts() int { return 2 }

// Push implements click.Element.
func (e *CheckPaint) Push(ctx *click.Context, port int, p *packet.Packet) {
	if p.Paint == e.Color {
		e.Out(ctx, 0, p)
		return
	}
	e.Out(ctx, 1, p)
}

// Sym implements symexec.Model.
func (e *CheckPaint) Sym(port int, s *symexec.State) []symexec.Transition {
	match := s.Clone()
	var out []symexec.Transition
	if match.Constrain(symexec.FieldPaint, symexec.Single(uint64(e.Color))) {
		out = append(out, symexec.Transition{Port: 0, S: match})
	}
	if s.Constrain(symexec.FieldPaint, symexec.Single(uint64(e.Color)).Complement(8)) {
		out = append(out, symexec.Transition{Port: 1, S: s})
	}
	return out
}

// SetIPField overwrites the source or destination IP address.
// Registered as SetIPSrc and SetIPDst.
type SetIPField struct {
	click.Base
	field symexec.Field
	Addr  uint32
}

// Class implements click.Element.
func (e *SetIPField) Class() string {
	if e.field == symexec.FieldSrcIP {
		return "SetIPSrc"
	}
	return "SetIPDst"
}

// Configure implements click.Element.
func (e *SetIPField) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("%s: want exactly 1 arg", e.Class())
	}
	ip, err := packet.ParseIP(args[0])
	if err != nil {
		return fmt.Errorf("%s: %v", e.Class(), err)
	}
	e.Addr = ip
	return nil
}

// InPorts implements click.Element.
func (e *SetIPField) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *SetIPField) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *SetIPField) Push(ctx *click.Context, port int, p *packet.Packet) {
	if e.field == symexec.FieldSrcIP {
		p.SrcIP = e.Addr
	} else {
		p.DstIP = e.Addr
	}
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *SetIPField) Sym(port int, s *symexec.State) []symexec.Transition {
	s.Assign(e.field, symexec.Const(uint64(e.Addr)))
	return []symexec.Transition{{Port: 0, S: s}}
}

// SetTOS overwrites the IP TOS byte.
type SetTOS struct {
	click.Base
	TOS uint8
}

// Class implements click.Element.
func (e *SetTOS) Class() string { return "SetTOS" }

// Configure implements click.Element.
func (e *SetTOS) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("SetTOS: want exactly 1 arg")
	}
	n, err := strconv.ParseUint(args[0], 0, 8)
	if err != nil {
		return fmt.Errorf("SetTOS: bad value %q", args[0])
	}
	e.TOS = uint8(n)
	return nil
}

// InPorts implements click.Element.
func (e *SetTOS) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *SetTOS) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *SetTOS) Push(ctx *click.Context, port int, p *packet.Packet) {
	p.TOS = e.TOS
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *SetTOS) Sym(port int, s *symexec.State) []symexec.Transition {
	s.Assign(symexec.FieldTOS, symexec.Const(uint64(e.TOS)))
	return []symexec.Transition{{Port: 0, S: s}}
}

// SetCRC32 computes a CRC over the payload, touching every payload
// byte (used by the sandboxing-cost experiment to give packets a
// realistic per-byte processing cost).
type SetCRC32 struct {
	click.Base
	// Last holds the most recent CRC (handler-readable).
	Last uint32
}

// Class implements click.Element.
func (e *SetCRC32) Class() string { return "SetCRC32" }

// Configure implements click.Element.
func (e *SetCRC32) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("SetCRC32: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *SetCRC32) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *SetCRC32) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *SetCRC32) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Last = crc32.ChecksumIEEE(p.Payload)
	p.FlowTag = e.Last
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: the payload itself is unchanged.
func (e *SetCRC32) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// CheckIPHeader drops malformed packets (TTL 0, zero addresses) and
// forwards the rest; invalid packets go to port 1 if wired.
type CheckIPHeader struct {
	click.Base
	Drops uint64
}

// Class implements click.Element.
func (e *CheckIPHeader) Class() string { return "CheckIPHeader" }

// Configure implements click.Element.
func (e *CheckIPHeader) Configure(args []string) error { return nil }

// InPorts implements click.Element.
func (e *CheckIPHeader) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *CheckIPHeader) OutPorts() int { return 2 }

// Push implements click.Element.
func (e *CheckIPHeader) Push(ctx *click.Context, port int, p *packet.Packet) {
	if p.TTL == 0 || p.SrcIP == 0 || p.DstIP == 0 {
		e.Drops++
		if e.Connected(1) {
			e.Out(ctx, 1, p)
		} else {
			ctx.Drop(p)
		}
		return
	}
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *CheckIPHeader) Sym(port int, s *symexec.State) []symexec.Transition {
	bad := s.Clone()
	var out []symexec.Transition
	if s.Constrain(symexec.FieldTTL, symexec.Span(1, 255)) {
		out = append(out, symexec.Transition{Port: 0, S: s})
	}
	if bad.Constrain(symexec.FieldTTL, symexec.Single(0)) {
		out = append(out, symexec.Transition{Port: 1, S: bad})
	}
	return out
}
