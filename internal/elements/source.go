package elements

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("TimedSource", func() click.Element { return &TimedSource{} })
	click.Register("Meter", func() click.Element { return &Meter{} })
	click.Register("RandomSample", func() click.Element { return &RandomSample{} })
}

// TimedSource emits a fresh UDP packet every INTERVAL seconds:
//
//	TimedSource(5, "keepalive")
//
// The emitted source address is unspecified (zero) unless a
// downstream SetIPSrc pins it — which is exactly what the security
// checker demands: a tenant module containing a TimedSource is
// rejected for spoofing unless the module stamps its own address on
// the generated traffic.
type TimedSource struct {
	click.Base
	IntervalNS int64
	Payload    []byte
	next       int64
	// Emitted counts generated packets.
	Emitted uint64
}

// Class implements click.Element.
func (e *TimedSource) Class() string { return "TimedSource" }

// Configure implements click.Element.
func (e *TimedSource) Configure(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("TimedSource: want INTERVAL [DATA]")
	}
	sec, err := strconv.ParseFloat(args[0], 64)
	if err != nil || sec <= 0 {
		return fmt.Errorf("TimedSource: bad interval %q", args[0])
	}
	e.IntervalNS = int64(sec * 1e9)
	if len(args) == 2 {
		e.Payload = []byte(strings.Trim(args[1], `"`))
	}
	return nil
}

// InPorts implements click.Element.
func (e *TimedSource) InPorts() int { return 0 }

// OutPorts implements click.Element.
func (e *TimedSource) OutPorts() int { return 1 }

// Push implements click.Element (sources take no input).
func (e *TimedSource) Push(ctx *click.Context, port int, p *packet.Packet) {
	ctx.Drop(p)
}

// Tick implements click.Ticker: emit when due.
func (e *TimedSource) Tick(ctx *click.Context) int64 {
	now := ctx.Now()
	if e.next == 0 {
		e.next = now + e.IntervalNS
		return e.IntervalNS
	}
	if now < e.next {
		return e.next - now
	}
	e.Emitted++
	pk := &packet.Packet{
		Protocol: packet.ProtoUDP,
		TTL:      64,
		Payload:  append([]byte(nil), e.Payload...),
	}
	e.Out(ctx, 0, pk)
	e.next = now + e.IntervalNS
	return e.IntervalNS
}

// Sym implements symexec.Model. A source's output fields are fresh
// (runtime-chosen) values; in particular ip_src is NOT the ingress
// source variable, so the anti-spoofing rule fails unless the module
// pins it afterwards.
func (e *TimedSource) Sym(port int, s *symexec.State) []symexec.Transition {
	for _, f := range []symexec.Field{
		symexec.FieldSrcIP, symexec.FieldDstIP, symexec.FieldSrcPort,
		symexec.FieldDstPort, symexec.FieldPayload,
	} {
		s.AssignFresh(f)
	}
	s.Assign(symexec.FieldProto, symexec.Const(uint64(packet.ProtoUDP)))
	s.Assign(symexec.FieldTTL, symexec.Const(64))
	return []symexec.Transition{{Port: 0, S: s}}
}

// Meter classifies by measured rate: traffic under RATE packets/s
// exits port 0, excess exits port 1 (Click's Meter):
//
//	Meter(1000)
type Meter struct {
	click.Base
	PPS     float64
	tokens  float64
	last    int64
	started bool
	// Over counts packets classified over-rate.
	Over uint64
}

// Class implements click.Element.
func (e *Meter) Class() string { return "Meter" }

// Configure implements click.Element.
func (e *Meter) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Meter: want RATE")
	}
	r, err := strconv.ParseFloat(args[0], 64)
	if err != nil || r <= 0 {
		return fmt.Errorf("Meter: bad rate %q", args[0])
	}
	e.PPS = r
	e.tokens = r
	return nil
}

// InPorts implements click.Element.
func (e *Meter) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *Meter) OutPorts() int { return 2 }

// Classify charges the token bucket at time now and returns the
// output port: 0 under rate, 1 over rate (counted). Shared by Push
// and the compiled pipeline kernel.
func (e *Meter) Classify(now int64, p *packet.Packet) int {
	if e.started {
		e.tokens += float64(now-e.last) / 1e9 * e.PPS
		if e.tokens > e.PPS {
			e.tokens = e.PPS
		}
	}
	e.started = true
	e.last = now
	if e.tokens >= 1 {
		e.tokens--
		return 0
	}
	e.Over++
	return 1
}

// Push implements click.Element.
func (e *Meter) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Out(ctx, e.Classify(ctx.Now(), p), p)
}

// Sym implements symexec.Model: rate is a runtime property, so the
// flow may take either port (headers unchanged).
func (e *Meter) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{
		{Port: 0, S: s.Clone()},
		{Port: 1, S: s},
	}
}

// RandomSample forwards a random fraction of traffic to port 0 (the
// sample) and the rest to port 1 (or drops it when port 1 is
// unwired) — the monitoring-tap element:
//
//	RandomSample(0.01)
type RandomSample struct {
	click.Base
	P float64
	// lcg is a tiny deterministic PRNG so the dataplane needs no
	// shared rand state.
	lcg uint64
	// Sampled counts sampled packets.
	Sampled uint64
}

// Class implements click.Element.
func (e *RandomSample) Class() string { return "RandomSample" }

// Configure implements click.Element.
func (e *RandomSample) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("RandomSample: want P")
	}
	p, err := strconv.ParseFloat(args[0], 64)
	if err != nil || p < 0 || p > 1 {
		return fmt.Errorf("RandomSample: bad probability %q", args[0])
	}
	e.P = p
	e.lcg = 0x2545F4914F6CDD1D
	return nil
}

// InPorts implements click.Element.
func (e *RandomSample) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *RandomSample) OutPorts() int { return 2 }

// Push implements click.Element.
func (e *RandomSample) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.lcg = e.lcg*6364136223846793005 + 1442695040888963407
	u := float64(e.lcg>>11) / float64(1<<53)
	if u < e.P {
		e.Sampled++
		e.Out(ctx, 0, p)
		return
	}
	if e.Connected(1) {
		e.Out(ctx, 1, p)
		return
	}
	ctx.Drop(p)
}

// Sym implements symexec.Model: a may-branch.
func (e *RandomSample) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{
		{Port: 0, S: s.Clone()},
		{Port: 1, S: s},
	}
}
