package elements

import (
	"fmt"
	"strconv"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("UDPIPEncap", func() click.Element { return &UDPIPEncap{} })
	click.Register("IPDecap", func() click.Element { return &IPDecap{} })
}

// UDPIPEncap encapsulates the entire packet as the payload of a new
// UDP/IP packet with configured outer headers:
//
//	UDPIPEncap(10.0.0.1 5000 192.0.2.9 5000)
type UDPIPEncap struct {
	click.Base
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
}

// Class implements click.Element.
func (e *UDPIPEncap) Class() string { return "UDPIPEncap" }

// Configure implements click.Element.
func (e *UDPIPEncap) Configure(args []string) error {
	fields := args
	if len(args) == 1 {
		fields = splitWS(args[0])
	}
	if len(fields) != 4 {
		return fmt.Errorf("UDPIPEncap: want SRC SPORT DST DPORT")
	}
	var err error
	if e.SrcIP, err = packet.ParseIP(fields[0]); err != nil {
		return fmt.Errorf("UDPIPEncap: %v", err)
	}
	sp, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return fmt.Errorf("UDPIPEncap: bad sport %q", fields[1])
	}
	if e.DstIP, err = packet.ParseIP(fields[2]); err != nil {
		return fmt.Errorf("UDPIPEncap: %v", err)
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return fmt.Errorf("UDPIPEncap: bad dport %q", fields[3])
	}
	e.SrcPort, e.DstPort = uint16(sp), uint16(dp)
	return nil
}

func splitWS(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\t' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// InPorts implements click.Element.
func (e *UDPIPEncap) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *UDPIPEncap) OutPorts() int { return 1 }

// Push implements click.Element: the inner packet is serialized into
// the outer payload.
func (e *UDPIPEncap) Push(ctx *click.Context, port int, p *packet.Packet) {
	inner := p.Serialize(nil)
	p.Payload = inner
	p.SrcIP, p.DstIP = e.SrcIP, e.DstIP
	p.SrcPort, p.DstPort = e.SrcPort, e.DstPort
	p.Protocol = packet.ProtoUDP
	p.TTL = 64
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: the outer headers become constants
// and the payload is redefined (it now carries the whole inner
// packet).
func (e *UDPIPEncap) Sym(port int, s *symexec.State) []symexec.Transition {
	s.Assign(symexec.FieldSrcIP, symexec.Const(uint64(e.SrcIP)))
	s.Assign(symexec.FieldDstIP, symexec.Const(uint64(e.DstIP)))
	s.Assign(symexec.FieldSrcPort, symexec.Const(uint64(e.SrcPort)))
	s.Assign(symexec.FieldDstPort, symexec.Const(uint64(e.DstPort)))
	s.Assign(symexec.FieldProto, symexec.Const(uint64(packet.ProtoUDP)))
	s.AssignFresh(symexec.FieldPayload)
	return []symexec.Transition{{Port: 0, S: s}}
}

// IPDecap decapsulates: the payload is parsed as a full IP packet
// which replaces the outer one. This is the element behind Table 1's
// tunnel row: the inner destination is only known at runtime, so
// static checking must flag the module for sandboxing.
type IPDecap struct {
	click.Base
	Malformed uint64
}

// Class implements click.Element.
func (e *IPDecap) Class() string { return "IPDecap" }

// Configure implements click.Element.
func (e *IPDecap) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("IPDecap: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *IPDecap) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *IPDecap) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *IPDecap) Push(ctx *click.Context, port int, p *packet.Packet) {
	var inner packet.Packet
	if err := inner.Parse(p.Payload); err != nil {
		e.Malformed++
		ctx.Drop(p)
		return
	}
	inner.Timestamp = p.Timestamp
	inner.UserID = p.UserID
	*p = *inner.Clone()
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: every header of the decapsulated
// packet comes from the (opaque) payload, so all fields become fresh
// free variables. In particular ip_dst is neither a whitelist
// constant nor bound to the ingress source — the "sometimes
// conforming" case that forces sandboxing (§7.1).
func (e *IPDecap) Sym(port int, s *symexec.State) []symexec.Transition {
	for _, f := range []symexec.Field{
		symexec.FieldSrcIP, symexec.FieldDstIP, symexec.FieldProto,
		symexec.FieldSrcPort, symexec.FieldDstPort, symexec.FieldTTL,
		symexec.FieldTOS, symexec.FieldPayload,
	} {
		s.AssignFresh(f)
	}
	return []symexec.Transition{{Port: 0, S: s}}
}
