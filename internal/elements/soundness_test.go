package elements

import (
	"math/rand"
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

// TestSymbolicModelsSoundness is the property the whole architecture
// rests on (paper §3): the symbolic models must over-approximate the
// runtime. For random concrete packets pushed through a module, every
// packet the module actually emits must be explained by at least one
// symbolic egress flow whose constraints the emitted packet satisfies.
// If this fails, the controller could certify a module as safe while
// the dataplane does something else.
func TestSymbolicModelsSoundness(t *testing.T) {
	configs := []struct {
		name string
		src  string
	}{
		{"filter", `
in :: FromNetfront();
f :: IPFilter(allow udp port 1500, deny net 10.0.0.0/8, allow tcp);
out :: ToNetfront();
in -> f -> out;
`},
		{"classifier-chain", `
in :: FromNetfront();
c :: IPClassifier(udp, tcp dst port 80, -);
u :: SetIPDst(192.0.2.1);
h :: SetIPDst(192.0.2.2);
d :: Discard();
out :: ToNetfront();
in -> c;
c[0] -> u -> out;
c[1] -> h -> out;
c[2] -> d;
`},
		{"rewriter", `
in :: FromNetfront();
rw :: IPRewriter(pattern 198.51.100.77 5000 - - 0 0);
out :: ToNetfront();
in -> rw -> out;
`},
		{"mirror", `
in :: FromNetfront();
f :: IPFilter(allow udp dst port 53);
m :: IPMirror();
out :: ToNetfront();
in -> f -> m -> out;
`},
		{"ttl", `
in :: FromNetfront();
d :: DecIPTTL();
out :: ToNetfront();
in -> d -> out;
`},
		{"paint-branch", `
in :: FromNetfront();
p :: Paint(5);
cp :: CheckPaint(5);
a :: SetIPDst(192.0.2.1);
out :: ToNetfront();
drop :: Discard();
in -> p -> cp;
cp[0] -> a -> out;
cp[1] -> drop;
`},
		{"icmp-responder", `
in :: FromNetfront();
r :: ICMPPingResponder();
out :: ToNetfront();
pass :: Discard();
in -> r;
r[0] -> out;
r[1] -> pass;
`},
	}
	fields := []symexec.Field{
		symexec.FieldSrcIP, symexec.FieldDstIP, symexec.FieldProto,
		symexec.FieldSrcPort, symexec.FieldDstPort, symexec.FieldTTL,
	}
	rng := rand.New(rand.NewSource(99))
	protos := []packet.Proto{packet.ProtoUDP, packet.ProtoTCP, packet.ProtoICMP, packet.ProtoSCTP}

	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			router := click.MustBuildString(cfg.src)
			net, entries, exits, err := topology.CompileStandaloneModule("m", router)
			if err != nil {
				t.Fatal(err)
			}
			entry := entries[0] // these configs enter via FromNetfront
			exitSet := map[string]bool{}
			for _, e := range exits {
				exitSet[e] = true
			}
			for trial := 0; trial < 200; trial++ {
				in := &packet.Packet{
					Protocol: protos[rng.Intn(len(protos))],
					SrcIP:    rng.Uint32(),
					DstIP:    rng.Uint32(),
					SrcPort:  uint16(rng.Intn(4000)),
					DstPort:  uint16([]int{53, 80, 1500, int(rng.Intn(65536))}[rng.Intn(4)]),
					TTL:      uint8(rng.Intn(4)), // bias toward TTL edge cases
				}
				if rng.Intn(2) == 0 {
					in.TTL = uint8(1 + rng.Intn(255))
				}
				if rng.Intn(4) == 0 {
					in.DstIP = packet.MustParseIP("10.1.2.3") // hit the 10/8 rules
				}

				// Runtime.
				var emitted []*packet.Packet
				ctx := &click.Context{
					Now:      func() int64 { return 0 },
					Transmit: func(iface int, p *packet.Packet) { emitted = append(emitted, p.Clone()) },
				}
				router.Inject(ctx, 0, in.Clone())

				// Symbolic, constrained to the concrete input.
				st := symexec.NewState()
				for _, f := range fields {
					v, _ := concreteField(in, f)
					st.Assign(f, symexec.Const(v))
				}
				res, err := net.Run(symexec.Injection{Node: entry, State: st})
				if err != nil {
					t.Fatal(err)
				}
				var flows []*symexec.State
				for _, eg := range res.Egress {
					if exitSet[eg.Node] {
						flows = append(flows, eg.S)
					}
				}
				for _, out := range emitted {
					if !explainedBy(out, flows, fields) {
						t.Fatalf("trial %d: emitted packet %v not explained by any of %d symbolic flows (input %v)",
							trial, out, len(flows), in)
					}
				}
			}
		})
	}
}

func concreteField(p *packet.Packet, f symexec.Field) (uint64, bool) {
	switch f {
	case symexec.FieldSrcIP:
		return uint64(p.SrcIP), true
	case symexec.FieldDstIP:
		return uint64(p.DstIP), true
	case symexec.FieldProto:
		return uint64(p.Protocol), true
	case symexec.FieldSrcPort:
		return uint64(p.SrcPort), true
	case symexec.FieldDstPort:
		return uint64(p.DstPort), true
	case symexec.FieldTTL:
		return uint64(p.TTL), true
	}
	return 0, false
}

// explainedBy reports whether some symbolic flow's constraints admit
// the concrete output packet.
func explainedBy(out *packet.Packet, flows []*symexec.State, fields []symexec.Field) bool {
	for _, fl := range flows {
		ok := true
		for _, f := range fields {
			v, _ := concreteField(out, f)
			if !fl.Values(f).Contains(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
