package elements

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/flowspec"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("IPFilter", func() click.Element { return &IPFilter{} })
	click.Register("IPClassifier", func() click.Element { return &IPClassifier{} })
	click.Register("Classifier", func() click.Element { return &IPClassifier{alias: "Classifier"} })
	click.Register("DPI", func() click.Element { return &DPI{} })
}

// filterRule is one allow/deny rule with its complement precomputed
// for symbolic fall-through.
type filterRule struct {
	allow bool
	spec  *flowspec.Spec
	neg   *flowspec.Spec
}

// IPFilter filters packets with an ordered allow/deny rule list, e.g.
//
//	IPFilter(allow udp port 1500, deny net 10.0.0.0/8, allow all)
//
// The first matching rule decides; packets matching no rule are
// dropped (Click's IPFilter semantics). "drop" is a synonym of
// "deny".
type IPFilter struct {
	click.Base
	rules []filterRule
	// Dropped counts denied packets.
	Dropped uint64
}

// Class implements click.Element.
func (e *IPFilter) Class() string { return "IPFilter" }

// Configure implements click.Element.
func (e *IPFilter) Configure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("IPFilter: need at least one rule")
	}
	for _, a := range args {
		fields := strings.Fields(a)
		if len(fields) == 0 {
			return fmt.Errorf("IPFilter: empty rule")
		}
		var allow bool
		switch strings.ToLower(fields[0]) {
		case "allow", "accept", "pass":
			allow = true
		case "deny", "drop", "reject":
			allow = false
		default:
			return fmt.Errorf("IPFilter: rule must start with allow/deny: %q", a)
		}
		rest := strings.Join(fields[1:], " ")
		spec, err := flowspec.Parse(rest)
		if err != nil {
			return fmt.Errorf("IPFilter: %v", err)
		}
		neg, err := spec.Negated()
		if err != nil {
			return fmt.Errorf("IPFilter: %v", err)
		}
		e.rules = append(e.rules, filterRule{allow: allow, spec: spec, neg: neg})
	}
	return nil
}

// InPorts implements click.Element.
func (e *IPFilter) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *IPFilter) OutPorts() int { return 1 }

// Decide applies the rule list to one packet: true means forward,
// false means drop (the drop is counted). It is the single source of
// truth shared by Push and the compiled pipeline kernel.
func (e *IPFilter) Decide(p *packet.Packet) bool {
	for i := range e.rules {
		if e.rules[i].spec.Match(p) {
			if e.rules[i].allow {
				return true
			}
			e.Dropped++
			return false
		}
	}
	e.Dropped++
	return false
}

// Push implements click.Element.
func (e *IPFilter) Push(ctx *click.Context, port int, p *packet.Packet) {
	if e.Decide(p) {
		e.Out(ctx, 0, p)
		return
	}
	ctx.Drop(p)
}

// Sym implements symexec.Model: each rule splits the incoming flow
// into a matched part (allowed or dropped) and a fall-through part
// refined by the rule's complement.
func (e *IPFilter) Sym(port int, s *symexec.State) []symexec.Transition {
	var out []symexec.Transition
	pending := []*symexec.State{s}
	for i := range e.rules {
		var next []*symexec.State
		for _, st := range pending {
			matched := e.rules[i].spec.Refine(st.Clone())
			if e.rules[i].allow {
				for _, m := range matched {
					out = append(out, symexec.Transition{Port: 0, S: m})
				}
			}
			next = append(next, e.rules[i].neg.Refine(st)...)
		}
		pending = next
		if len(pending) == 0 {
			break
		}
	}
	return out
}

// IPClassifier routes packets to the output port of the first
// matching pattern:
//
//	IPClassifier(dst host 10.0.0.1, udp, -)
//
// "-" matches everything (the default branch). Packets matching no
// pattern are dropped. Classifier is registered as an alias.
type IPClassifier struct {
	click.Base
	alias    string
	patterns []*flowspec.Spec
	negs     []*flowspec.Spec
	// Matched counts per-port matches.
	Matched []uint64
}

// Class implements click.Element.
func (e *IPClassifier) Class() string {
	if e.alias != "" {
		return e.alias
	}
	return "IPClassifier"
}

// Configure implements click.Element.
func (e *IPClassifier) Configure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s: need at least one pattern", e.Class())
	}
	for _, a := range args {
		a = strings.TrimSpace(a)
		var spec *flowspec.Spec
		var err error
		if a == "-" {
			spec = flowspec.MatchAll()
		} else if spec, err = flowspec.Parse(a); err != nil {
			return fmt.Errorf("%s: %v", e.Class(), err)
		}
		neg, err := spec.Negated()
		if err != nil {
			return fmt.Errorf("%s: %v", e.Class(), err)
		}
		e.patterns = append(e.patterns, spec)
		e.negs = append(e.negs, neg)
	}
	e.Matched = make([]uint64, len(e.patterns))
	return nil
}

// InPorts implements click.Element.
func (e *IPClassifier) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *IPClassifier) OutPorts() int { return len(e.patterns) }

// Route returns the output port for p (counting the match) or -1 when
// no pattern matches and the packet should be dropped. Shared by Push
// and the compiled pipeline kernel.
func (e *IPClassifier) Route(p *packet.Packet) int {
	for i, spec := range e.patterns {
		if spec.Match(p) {
			e.Matched[i]++
			return i
		}
	}
	return -1
}

// Push implements click.Element.
func (e *IPClassifier) Push(ctx *click.Context, port int, p *packet.Packet) {
	if i := e.Route(p); i >= 0 {
		e.Out(ctx, i, p)
		return
	}
	ctx.Drop(p)
}

// Sym implements symexec.Model.
func (e *IPClassifier) Sym(port int, s *symexec.State) []symexec.Transition {
	var out []symexec.Transition
	pending := []*symexec.State{s}
	for i, spec := range e.patterns {
		var next []*symexec.State
		for _, st := range pending {
			for _, m := range spec.Refine(st.Clone()) {
				out = append(out, symexec.Transition{Port: i, S: m})
			}
			next = append(next, e.negs[i].Refine(st)...)
		}
		pending = next
		if len(pending) == 0 {
			break
		}
	}
	return out
}

// DPI inspects payloads for a byte pattern: matching packets exit
// port 1 (or are dropped when port 1 is unwired, firewall-style),
// clean packets exit port 0.
//
//	DPI("attack-signature")
type DPI struct {
	click.Base
	Pattern []byte
	// Hits counts matched packets.
	Hits uint64
}

// Class implements click.Element.
func (e *DPI) Class() string { return "DPI" }

// Configure implements click.Element.
func (e *DPI) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("DPI: want exactly 1 pattern")
	}
	pat := strings.Trim(args[0], `"`)
	if pat == "" {
		return fmt.Errorf("DPI: empty pattern")
	}
	e.Pattern = []byte(pat)
	return nil
}

// InPorts implements click.Element.
func (e *DPI) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *DPI) OutPorts() int { return 2 }

// Inspect reports whether the payload carries the pattern, counting a
// hit when it does. Shared by Push and the compiled pipeline kernel.
func (e *DPI) Inspect(p *packet.Packet) bool {
	if bytes.Contains(p.Payload, e.Pattern) {
		e.Hits++
		return true
	}
	return false
}

// Push implements click.Element.
func (e *DPI) Push(ctx *click.Context, port int, p *packet.Packet) {
	if e.Inspect(p) {
		if e.Connected(1) {
			e.Out(ctx, 1, p)
		} else {
			ctx.Drop(p)
		}
		return
	}
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: payload contents are opaque to the
// symbolic engine, so DPI is a may-branch — the flow can take either
// port, with headers unchanged. This is a sound over-approximation.
func (e *DPI) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{
		{Port: 0, S: s.Clone()},
		{Port: 1, S: s},
	}
}
