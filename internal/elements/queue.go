package elements

import (
	"fmt"
	"strconv"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("Queue", func() click.Element { return &Queue{} })
	click.Register("TimedUnqueue", func() click.Element { return &TimedUnqueue{} })
	click.Register("RatedUnqueue", func() click.Element { return &RatedUnqueue{} })
	click.Register("RateLimiter", func() click.Element { return &RateLimiter{} })
	click.Register("BandwidthShaper", func() click.Element { return &RateLimiter{bytes: true} })
}

// Queue is a FIFO buffer. When its output feeds a pull-input element
// (Unqueue), the downstream drains it through Pull, exactly like
// Click's pull path; otherwise the driver's tick releases everything
// buffered. The argument is the capacity (default 1000); overflowing
// packets are dropped.
type Queue struct {
	click.Base
	Capacity int
	buf      []*packet.Packet
	Drops    uint64
}

// Class implements click.Element.
func (e *Queue) Class() string { return "Queue" }

// Configure implements click.Element.
func (e *Queue) Configure(args []string) error {
	e.Capacity = 1000
	if len(args) > 1 {
		return fmt.Errorf("Queue: want at most 1 arg")
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("Queue: bad capacity %q", args[0])
		}
		e.Capacity = n
	}
	return nil
}

// InPorts implements click.Element.
func (e *Queue) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *Queue) OutPorts() int { return 1 }

// Len returns the number of buffered packets.
func (e *Queue) Len() int { return len(e.buf) }

// Enqueue buffers one packet, returning false on overflow (counted;
// the packet should be dropped). Shared by Push and the compiled
// pipeline kernel — the pipeline never compiles pull-path wiring, so
// the kick stays in Push.
func (e *Queue) Enqueue(p *packet.Packet) bool {
	if len(e.buf) >= e.Capacity {
		e.Drops++
		return false
	}
	e.buf = append(e.buf, p)
	return true
}

// Push implements click.Element.
func (e *Queue) Push(ctx *click.Context, port int, p *packet.Packet) {
	if !e.Enqueue(p) {
		ctx.Drop(p)
		return
	}
	// Wake a pull-side consumer, if one claimed this queue (the
	// notifier of Click's pull path).
	if k, ok := e.downstream().(kicker); ok {
		k.Kick(ctx)
	}
}

// Pull implements click.Puller.
func (e *Queue) Pull(ctx *click.Context, port int) *packet.Packet {
	if len(e.buf) == 0 {
		return nil
	}
	p := e.buf[0]
	e.buf = e.buf[1:]
	return p
}

// downstream returns the element wired to output 0, or nil.
func (e *Queue) downstream() click.Element {
	if !e.Connected(0) {
		return nil
	}
	return e.Target(0).Elem
}

// Tick implements click.Ticker: drain everything buffered — unless a
// pull-side consumer owns the queue, in which case draining is its
// job.
func (e *Queue) Tick(ctx *click.Context) int64 {
	if _, pulled := e.downstream().(kicker); pulled {
		return -1
	}
	for _, p := range e.buf {
		e.Out(ctx, 0, p)
	}
	e.buf = e.buf[:0]
	return -1
}

// Sym implements symexec.Model: queueing does not change headers.
func (e *Queue) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// TimedUnqueue buffers packets and releases up to BURST of them every
// INTERVAL seconds — the batching element of the paper's Fig. 4 push
// notification module:
//
//	TimedUnqueue(120, 100)
type TimedUnqueue struct {
	click.Base
	// IntervalNS is the batching interval in nanoseconds.
	IntervalNS int64
	// Burst is the max packets released per interval (0 = all).
	Burst int
	buf   []*packet.Packet
	next  int64 // next release time; 0 = unscheduled
	// Released counts released packets.
	Released uint64
}

// Class implements click.Element.
func (e *TimedUnqueue) Class() string { return "TimedUnqueue" }

// Configure implements click.Element.
func (e *TimedUnqueue) Configure(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("TimedUnqueue: want INTERVAL [BURST]")
	}
	sec, err := strconv.ParseFloat(args[0], 64)
	if err != nil || sec <= 0 {
		return fmt.Errorf("TimedUnqueue: bad interval %q", args[0])
	}
	e.IntervalNS = int64(sec * 1e9)
	if len(args) == 2 {
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 {
			return fmt.Errorf("TimedUnqueue: bad burst %q", args[1])
		}
		e.Burst = n
	}
	return nil
}

// InPorts implements click.Element.
func (e *TimedUnqueue) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *TimedUnqueue) OutPorts() int { return 1 }

// Pending returns the number of buffered packets.
func (e *TimedUnqueue) Pending() int { return len(e.buf) }

// Enqueue buffers one packet at time now, scheduling the release
// interval if idle. Shared by Push and the compiled pipeline kernel.
func (e *TimedUnqueue) Enqueue(now int64, p *packet.Packet) {
	e.buf = append(e.buf, p)
	if e.next == 0 {
		e.next = now + e.IntervalNS
	}
}

// Push implements click.Element.
func (e *TimedUnqueue) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Enqueue(ctx.Now(), p)
}

// Tick implements click.Ticker: release a batch when the interval
// elapsed; returns the delay until the next due release.
func (e *TimedUnqueue) Tick(ctx *click.Context) int64 {
	now := ctx.Now()
	if len(e.buf) == 0 {
		e.next = 0
		return -1
	}
	if now < e.next {
		return e.next - now
	}
	n := len(e.buf)
	if e.Burst > 0 && e.Burst < n {
		n = e.Burst
	}
	for _, p := range e.buf[:n] {
		e.Released++
		e.Out(ctx, 0, p)
	}
	e.buf = append(e.buf[:0], e.buf[n:]...)
	if len(e.buf) == 0 {
		e.next = 0
		return -1
	}
	e.next = now + e.IntervalNS
	return e.IntervalNS
}

// Sym implements symexec.Model: batching delays but never rewrites.
func (e *TimedUnqueue) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// RatedUnqueue buffers packets and releases them at a fixed rate in
// packets per second:
//
//	RatedUnqueue(1000)
type RatedUnqueue struct {
	click.Base
	// PPS is the release rate.
	PPS  float64
	buf  []*packet.Packet
	next int64
}

// Class implements click.Element.
func (e *RatedUnqueue) Class() string { return "RatedUnqueue" }

// Configure implements click.Element.
func (e *RatedUnqueue) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("RatedUnqueue: want RATE")
	}
	r, err := strconv.ParseFloat(args[0], 64)
	if err != nil || r <= 0 {
		return fmt.Errorf("RatedUnqueue: bad rate %q", args[0])
	}
	e.PPS = r
	return nil
}

// InPorts implements click.Element.
func (e *RatedUnqueue) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *RatedUnqueue) OutPorts() int { return 1 }

// Enqueue buffers one packet at time now. Shared by Push and the
// compiled pipeline kernel.
func (e *RatedUnqueue) Enqueue(now int64, p *packet.Packet) {
	e.buf = append(e.buf, p)
	if e.next == 0 {
		e.next = now
	}
}

// Push implements click.Element.
func (e *RatedUnqueue) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Enqueue(ctx.Now(), p)
}

// Tick implements click.Ticker.
func (e *RatedUnqueue) Tick(ctx *click.Context) int64 {
	gap := int64(1e9 / e.PPS)
	now := ctx.Now()
	for len(e.buf) > 0 && now >= e.next {
		p := e.buf[0]
		e.buf = e.buf[1:]
		e.next += gap
		e.Out(ctx, 0, p)
	}
	if len(e.buf) == 0 {
		e.next = 0
		return -1
	}
	return e.next - now
}

// Sym implements symexec.Model.
func (e *RatedUnqueue) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// RateLimiter polices traffic with a token bucket, dropping packets
// over the configured rate. Registered both as RateLimiter (rate in
// packets/s) and BandwidthShaper (rate in bytes/s):
//
//	RateLimiter(10000)         // 10 kpps
//	BandwidthShaper(3125000)   // 25 Mbit/s
type RateLimiter struct {
	click.Base
	bytes bool
	// Rate is tokens per second (packets or bytes).
	Rate float64
	// BurstTokens is the bucket depth (defaults to one second's
	// worth).
	BurstTokens float64
	tokens      float64
	last        int64
	started     bool
	Dropped     uint64
}

// Class implements click.Element.
func (e *RateLimiter) Class() string {
	if e.bytes {
		return "BandwidthShaper"
	}
	return "RateLimiter"
}

// Configure implements click.Element.
func (e *RateLimiter) Configure(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("%s: want RATE [BURST]", e.Class())
	}
	r, err := strconv.ParseFloat(args[0], 64)
	if err != nil || r <= 0 {
		return fmt.Errorf("%s: bad rate %q", e.Class(), args[0])
	}
	e.Rate = r
	e.BurstTokens = r
	if len(args) == 2 {
		b, err := strconv.ParseFloat(args[1], 64)
		if err != nil || b <= 0 {
			return fmt.Errorf("%s: bad burst %q", e.Class(), args[1])
		}
		e.BurstTokens = b
	}
	e.tokens = e.BurstTokens
	return nil
}

// InPorts implements click.Element.
func (e *RateLimiter) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *RateLimiter) OutPorts() int { return 1 }

// Admit charges one packet against the token bucket at time now,
// returning false when it is over rate (counted; the packet should be
// dropped). Shared by Push and the compiled pipeline kernel.
func (e *RateLimiter) Admit(now int64, p *packet.Packet) bool {
	if e.started {
		e.tokens += float64(now-e.last) / 1e9 * e.Rate
		if e.tokens > e.BurstTokens {
			e.tokens = e.BurstTokens
		}
	}
	e.started = true
	e.last = now
	cost := 1.0
	if e.bytes {
		cost = float64(p.Len())
	}
	if e.tokens < cost {
		e.Dropped++
		return false
	}
	e.tokens -= cost
	return true
}

// Push implements click.Element.
func (e *RateLimiter) Push(ctx *click.Context, port int, p *packet.Packet) {
	if !e.Admit(ctx.Now(), p) {
		ctx.Drop(p)
		return
	}
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: policing drops or forwards unchanged;
// the forwarded flow is what reachability must consider.
func (e *RateLimiter) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}
