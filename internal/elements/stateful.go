package elements

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/flowspec"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("StatefulFirewall", func() click.Element { return &StatefulFirewall{} })
	click.Register("FlowMeter", func() click.Element { return &FlowMeter{} })
	click.Register("ChangeEnforcer", func() click.Element { return &ChangeEnforcer{} })
}

// StatefulFirewall is the firewall of the paper's Figs. 1-2: outbound
// traffic matching the policy is forwarded and its flow recorded;
// inbound traffic passes only if it belongs to a recorded flow.
//
//	StatefulFirewall(allow udp)
//
// Input/output port 0 is the outbound direction, port 1 inbound.
// Symbolically, flow state is pushed into the packet itself via the
// fw_tag field, exactly as Fig. 2 shows, so SymNet-style execution
// stays oblivious to flow arrival order.
type StatefulFirewall struct {
	click.Base
	policy *flowspec.Spec
	flows  map[packet.FiveTuple]int64
	// TimeoutNS expires idle flows (0 = never).
	TimeoutNS int64
	Blocked   uint64
}

// Class implements click.Element.
func (e *StatefulFirewall) Class() string { return "StatefulFirewall" }

// Configure implements click.Element.
func (e *StatefulFirewall) Configure(args []string) error {
	e.flows = make(map[packet.FiveTuple]int64)
	e.policy = flowspec.MatchAll()
	for _, a := range args {
		f := strings.Fields(a)
		if len(f) == 0 {
			continue
		}
		switch strings.ToLower(f[0]) {
		case "allow":
			spec, err := flowspec.Parse(strings.Join(f[1:], " "))
			if err != nil {
				return fmt.Errorf("StatefulFirewall: %v", err)
			}
			e.policy = spec
		case "timeout":
			if len(f) != 2 {
				return fmt.Errorf("StatefulFirewall: timeout wants seconds")
			}
			sec, err := strconv.ParseFloat(f[1], 64)
			if err != nil || sec < 0 {
				return fmt.Errorf("StatefulFirewall: bad timeout %q", f[1])
			}
			e.TimeoutNS = int64(sec * 1e9)
		default:
			return fmt.Errorf("StatefulFirewall: unknown option %q", a)
		}
	}
	return nil
}

// InPorts implements click.Element.
func (e *StatefulFirewall) InPorts() int { return 2 }

// OutPorts implements click.Element.
func (e *StatefulFirewall) OutPorts() int { return 2 }

// ActiveFlows returns the number of tracked flows.
func (e *StatefulFirewall) ActiveFlows() int { return len(e.flows) }

// Admit runs the firewall decision for a packet arriving on the given
// input port at time now, returning the output port and whether the
// packet passes (blocked packets are counted and should be dropped).
// Shared by Push and the compiled pipeline kernel.
func (e *StatefulFirewall) Admit(now int64, port int, p *packet.Packet) (int, bool) {
	if port == 0 {
		// Outbound: policy check, then record the flow.
		if !e.policy.Match(p) {
			e.Blocked++
			return 0, false
		}
		e.flows[p.Tuple()] = now
		p.FlowTag = 1
		return 0, true
	}
	// Inbound: only related response traffic.
	t, ok := e.flows[p.Tuple().Reverse()]
	if !ok || (e.TimeoutNS > 0 && now-t > e.TimeoutNS) {
		if ok {
			delete(e.flows, p.Tuple().Reverse())
		}
		e.Blocked++
		return 0, false
	}
	e.flows[p.Tuple().Reverse()] = now
	return 1, true
}

// LastSeen reports when the given (forward-direction) tuple was last
// refreshed, for state introspection in tests.
func (e *StatefulFirewall) LastSeen(t packet.FiveTuple) (int64, bool) {
	ts, ok := e.flows[t]
	return ts, ok
}

// Push implements click.Element.
func (e *StatefulFirewall) Push(ctx *click.Context, port int, p *packet.Packet) {
	out, ok := e.Admit(ctx.Now(), port, p)
	if !ok {
		ctx.Drop(p)
		return
	}
	e.Out(ctx, out, p)
}

// Sym implements symexec.Model, mirroring the paper's Fig. 2:
// outbound flows matching the policy are tagged; inbound flows pass
// only when tagged.
func (e *StatefulFirewall) Sym(port int, s *symexec.State) []symexec.Transition {
	if port == 0 {
		out := e.policy.Refine(s)
		trs := make([]symexec.Transition, 0, len(out))
		for _, st := range out {
			st.Assign(symexec.FieldFWTag, symexec.Const(1))
			trs = append(trs, symexec.Transition{Port: 0, S: st})
		}
		return trs
	}
	if !s.Constrain(symexec.FieldFWTag, symexec.Single(1)) {
		return nil
	}
	return []symexec.Transition{{Port: 1, S: s}}
}

// flowStats aggregates one flow's counters.
type flowStats struct {
	Packets uint64
	Bytes   uint64
	First   int64
	Last    int64
}

// FlowMeter passively accounts per-flow packets and bytes (the flow
// meter row of Table 1 — read-only, hence safe for any requester).
type FlowMeter struct {
	click.Base
	stats map[packet.FiveTuple]*flowStats
}

// Class implements click.Element.
func (e *FlowMeter) Class() string { return "FlowMeter" }

// Configure implements click.Element.
func (e *FlowMeter) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("FlowMeter: takes no arguments")
	}
	e.stats = make(map[packet.FiveTuple]*flowStats)
	return nil
}

// InPorts implements click.Element.
func (e *FlowMeter) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *FlowMeter) OutPorts() int { return 1 }

// Flows returns the number of distinct flows observed.
func (e *FlowMeter) Flows() int { return len(e.stats) }

// Stats returns the counters for a flow, or nil.
func (e *FlowMeter) Stats(t packet.FiveTuple) (packets, bytes uint64, ok bool) {
	st, found := e.stats[t]
	if !found {
		return 0, 0, false
	}
	return st.Packets, st.Bytes, true
}

// Record accounts one packet at time now. Shared by Push and the
// compiled pipeline kernel.
func (e *FlowMeter) Record(now int64, p *packet.Packet) {
	st := e.stats[p.Tuple()]
	if st == nil {
		st = &flowStats{First: now}
		e.stats[p.Tuple()] = st
	}
	st.Packets++
	st.Bytes += uint64(p.Len())
	st.Last = now
}

// Push implements click.Element.
func (e *FlowMeter) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Record(ctx.Now(), p)
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: pure observation.
func (e *FlowMeter) Sym(port int, s *symexec.State) []symexec.Transition {
	return []symexec.Transition{{Port: 0, S: s}}
}

// ChangeEnforcer is the In-Net sandboxing element (§4.4, §7.2). It
// wraps a processing module like a stateful firewall: traffic from
// the outside world to the module always passes (input 0 → output 0);
// traffic from the module to the world (input 1 → output 1) passes
// only if it is response traffic of a recorded inbound flow — the
// implicit authorization rule — or its destination is whitelisted.
//
//	ChangeEnforcer(whitelist 192.0.2.1 192.0.2.2, timeout 60)
type ChangeEnforcer struct {
	click.Base
	whitelist map[uint32]bool
	// inbound records remote endpoints that initiated traffic to the
	// module, keyed by remote address, valued by last-seen time.
	inbound map[uint32]int64
	// TimeoutNS revokes implicit authorization after idleness
	// (default 60s) — the paper's §7 notes real firewalls do this.
	TimeoutNS int64
	Blocked   uint64
}

// Class implements click.Element.
func (e *ChangeEnforcer) Class() string { return "ChangeEnforcer" }

// Configure implements click.Element.
func (e *ChangeEnforcer) Configure(args []string) error {
	e.whitelist = make(map[uint32]bool)
	e.inbound = make(map[uint32]int64)
	e.TimeoutNS = int64(60 * 1e9)
	for _, a := range args {
		f := strings.Fields(a)
		if len(f) == 0 {
			continue
		}
		switch strings.ToLower(f[0]) {
		case "whitelist":
			for _, addr := range f[1:] {
				ip, err := packet.ParseIP(addr)
				if err != nil {
					return fmt.Errorf("ChangeEnforcer: %v", err)
				}
				e.whitelist[ip] = true
			}
		case "timeout":
			if len(f) != 2 {
				return fmt.Errorf("ChangeEnforcer: timeout wants seconds")
			}
			sec, err := strconv.ParseFloat(f[1], 64)
			if err != nil || sec <= 0 {
				return fmt.Errorf("ChangeEnforcer: bad timeout %q", f[1])
			}
			e.TimeoutNS = int64(sec * 1e9)
		default:
			return fmt.Errorf("ChangeEnforcer: unknown option %q", a)
		}
	}
	return nil
}

// Whitelist returns the configured whitelist addresses.
func (e *ChangeEnforcer) Whitelist() []uint32 {
	out := make([]uint32, 0, len(e.whitelist))
	for ip := range e.whitelist {
		out = append(out, ip)
	}
	return out
}

// InPorts implements click.Element.
func (e *ChangeEnforcer) InPorts() int { return 2 }

// OutPorts implements click.Element.
func (e *ChangeEnforcer) OutPorts() int { return 2 }

// Admit runs the enforcement decision for a packet arriving on the
// given input port at time now: true means forward on the same-numbered
// output, false means drop (counted). Shared by Push and the compiled
// pipeline kernel.
func (e *ChangeEnforcer) Admit(now int64, port int, p *packet.Packet) bool {
	if port == 0 {
		// Toward the module: record the remote source as implicitly
		// authorized, then pass.
		e.inbound[p.SrcIP] = now
		return true
	}
	// From the module: whitelist or implicit authorization.
	if e.whitelist[p.DstIP] {
		return true
	}
	t, ok := e.inbound[p.DstIP]
	if !ok || now-t > e.TimeoutNS {
		if ok {
			delete(e.inbound, p.DstIP)
		}
		e.Blocked++
		return false
	}
	return true
}

// Push implements click.Element.
func (e *ChangeEnforcer) Push(ctx *click.Context, port int, p *packet.Packet) {
	if !e.Admit(ctx.Now(), port, p) {
		ctx.Drop(p)
		return
	}
	e.Out(ctx, port, p)
}

// Sym implements symexec.Model. Implicit authorization is pushed into
// the flow: the inbound direction aliases a synthetic field to the
// source variable; the outbound direction passes flows whose
// destination is whitelisted or aliases that field.
func (e *ChangeEnforcer) Sym(port int, s *symexec.State) []symexec.Transition {
	const authField = symexec.Field("ce_auth_src")
	if port == 0 {
		s.Assign(authField, s.Get(symexec.FieldSrcIP))
		return []symexec.Transition{{Port: 0, S: s}}
	}
	var out []symexec.Transition
	if s.SameVar(symexec.FieldDstIP, authField) {
		return []symexec.Transition{{Port: 1, S: s}}
	}
	wl := symexec.Empty
	for ip := range e.whitelist {
		wl = wl.Union(symexec.Single(uint64(ip)))
	}
	if !wl.IsEmpty() {
		m := s.Clone()
		if m.Constrain(symexec.FieldDstIP, wl) {
			out = append(out, symexec.Transition{Port: 1, S: m})
		}
	}
	return out
}
