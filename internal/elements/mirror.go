package elements

import (
	"fmt"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("IPMirror", func() click.Element { return &IPMirror{} })
}

// IPMirror swaps source and destination addresses and ports — the
// respond-to-sender primitive used by server-style modules (DNS
// server, reverse proxy, the paper's §3 server that "responds to
// customers with the same packet, by flipping the source and
// destination addresses").
type IPMirror struct {
	click.Base
}

// Class implements click.Element.
func (e *IPMirror) Class() string { return "IPMirror" }

// Configure implements click.Element.
func (e *IPMirror) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("IPMirror: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *IPMirror) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *IPMirror) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *IPMirror) Push(ctx *click.Context, port int, p *packet.Packet) {
	p.SrcIP, p.DstIP = p.DstIP, p.SrcIP
	p.SrcPort, p.DstPort = p.DstPort, p.SrcPort
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model: the swap is the exact aliasing trick
// of the paper's Fig. 2 — after it, ip_dst is bound to the variable
// ip_src was bound to, which is how the controller later proves the
// implicit-authorization rule holds.
func (e *IPMirror) Sym(port int, s *symexec.State) []symexec.Transition {
	oldSrc, oldDst := s.Get(symexec.FieldSrcIP), s.Get(symexec.FieldDstIP)
	s.Assign(symexec.FieldSrcIP, oldDst)
	s.Assign(symexec.FieldDstIP, oldSrc)
	oldSP, oldDP := s.Get(symexec.FieldSrcPort), s.Get(symexec.FieldDstPort)
	s.Assign(symexec.FieldSrcPort, oldDP)
	s.Assign(symexec.FieldDstPort, oldSP)
	return []symexec.Transition{{Port: 0, S: s}}
}
