package elements

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
)

func TestQueueUnqueuePullPath(t *testing.T) {
	r := click.MustBuildString(`
in :: FromNetfront();
q :: Queue(100);
u :: Unqueue();
out :: ToNetfront();
in -> q -> u -> out;
`)
	var got []*packet.Packet
	ctx := &click.Context{
		Now:      func() int64 { return 0 },
		Transmit: func(iface int, p *packet.Packet) { got = append(got, p) },
	}
	for i := 0; i < 5; i++ {
		r.Inject(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	// The notifier drains the queue synchronously — no tick needed.
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5 via the pull path", len(got))
	}
	// FIFO order preserved.
	for i, p := range got {
		if p.DstPort != uint16(i) {
			t.Fatalf("reordered: got[%d].DstPort = %d", i, p.DstPort)
		}
	}
	u := r.Element("u").(*Unqueue)
	if u.Pulled != 5 {
		t.Errorf("Pulled = %d", u.Pulled)
	}
	// The queue must not double-deliver on the driver tick.
	r.Tick(ctx)
	if len(got) != 5 {
		t.Errorf("tick double-delivered: %d", len(got))
	}
}

func TestUnqueueBurstLimit(t *testing.T) {
	q := &Queue{}
	configure(t, q, "100")
	u := &Unqueue{}
	configure(t, u, "2")
	out := wire(t, u, 0)
	if err := q.SetOutput(0, click.Target{Elem: u, Port: 0}); err != nil {
		t.Fatal(err)
	}
	if err := u.SetUpstream(0, q, 0); err != nil {
		t.Fatal(err)
	}
	ctx, _, _ := testCtx()
	for i := 0; i < 5; i++ {
		q.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	// Each Push kicks; burst 2 per kick, so everything still drains
	// (kick per arrival), but a manual refill shows the limit.
	if len(out.got) != 5 {
		t.Fatalf("drained = %d", len(out.got))
	}
	// Refill silently (bypassing Push's kick), then one kick moves at
	// most 2.
	q.buf = append(q.buf, udpPkt("1.1.1.1", "2.2.2.2", 1, 10), udpPkt("1.1.1.1", "2.2.2.2", 1, 11), udpPkt("1.1.1.1", "2.2.2.2", 1, 12))
	u.Kick(ctx)
	if len(out.got) != 7 {
		t.Errorf("burst-limited kick moved %d", len(out.got)-5)
	}
	// The safety-net tick drains the rest.
	if d := u.Tick(ctx); d != -1 {
		t.Errorf("tick = %d", d)
	}
	if len(out.got) != 8 {
		t.Errorf("after tick = %d", len(out.got))
	}
}

func TestUnqueueGuards(t *testing.T) {
	u := &Unqueue{}
	configure(t, u)
	// Pushing into a pull input drops.
	drops := 0
	ctx := &click.Context{Now: func() int64 { return 0 }, DropHook: func(p *packet.Packet) { drops++ }}
	u.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	if drops != 1 {
		t.Error("push into pull input not dropped")
	}
	// Kick with no upstream is a no-op.
	u.Kick(ctx)
	// Double upstream wiring is rejected.
	q := &Queue{}
	configure(t, q, "10")
	if err := u.SetUpstream(0, q, 0); err != nil {
		t.Fatal(err)
	}
	if err := u.SetUpstream(0, q, 0); err == nil {
		t.Error("double upstream accepted")
	}
	// Config validation.
	if err := (&Unqueue{}).Configure([]string{"0"}); err == nil {
		t.Error("bad burst accepted")
	}
	if err := (&Unqueue{}).Configure([]string{"1", "2"}); err == nil {
		t.Error("extra args accepted")
	}
}

func TestQueueStillSelfDrainsWithoutPuller(t *testing.T) {
	// Push-only downstream: the old behaviour is preserved.
	q := &Queue{}
	configure(t, q, "10")
	out := wire(t, q, 0)
	ctx, _, _ := testCtx()
	q.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	if len(out.got) != 0 {
		t.Fatal("queue leaked before tick")
	}
	q.Tick(ctx)
	if len(out.got) != 1 {
		t.Fatal("self-drain broken")
	}
}
