package elements

import (
	"fmt"
	"strconv"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func init() {
	click.Register("RoundRobinSwitch", func() click.Element { return &RoundRobinSwitch{} })
	click.Register("HashSwitch", func() click.Element { return &HashSwitch{} })
	click.Register("ICMPPingResponder", func() click.Element { return &ICMPPingResponder{} })
	click.Register("SetSrcPort", func() click.Element { return &SetPort{src: true} })
	click.Register("SetDstPort", func() click.Element { return &SetPort{} })
	click.Register("SetIPTTL", func() click.Element { return &SetIPTTL{} })
}

// RoundRobinSwitch spreads packets across N outputs in rotation — the
// fan-out stage of software load balancers:
//
//	RoundRobinSwitch(4)
type RoundRobinSwitch struct {
	click.Base
	N    int
	next int
}

// Class implements click.Element.
func (e *RoundRobinSwitch) Class() string { return "RoundRobinSwitch" }

// Configure implements click.Element.
func (e *RoundRobinSwitch) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("RoundRobinSwitch: want N")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > 256 {
		return fmt.Errorf("RoundRobinSwitch: bad N %q", args[0])
	}
	e.N = n
	return nil
}

// InPorts implements click.Element.
func (e *RoundRobinSwitch) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *RoundRobinSwitch) OutPorts() int { return e.N }

// Push implements click.Element.
func (e *RoundRobinSwitch) Push(ctx *click.Context, port int, p *packet.Packet) {
	out := e.next
	e.next = (e.next + 1) % e.N
	e.Out(ctx, out, p)
}

// Sym implements symexec.Model: which output a packet takes depends
// on arrival order, which the static model cannot know — a may-branch
// to every output (sound over-approximation).
func (e *RoundRobinSwitch) Sym(port int, s *symexec.State) []symexec.Transition {
	out := make([]symexec.Transition, 0, e.N)
	for i := 0; i < e.N; i++ {
		st := s
		if i < e.N-1 {
			st = s.Clone()
		}
		out = append(out, symexec.Transition{Port: i, S: st})
	}
	return out
}

// HashSwitch spreads packets across N outputs by five-tuple hash, so
// a flow's packets stay on one output:
//
//	HashSwitch(4)
type HashSwitch struct {
	click.Base
	N int
}

// Class implements click.Element.
func (e *HashSwitch) Class() string { return "HashSwitch" }

// Configure implements click.Element.
func (e *HashSwitch) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("HashSwitch: want N")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > 256 {
		return fmt.Errorf("HashSwitch: bad N %q", args[0])
	}
	e.N = n
	return nil
}

// InPorts implements click.Element.
func (e *HashSwitch) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *HashSwitch) OutPorts() int { return e.N }

// PortOf returns the output port the five-tuple hashes to. Shared by
// Push and the compiled pipeline kernel.
func (e *HashSwitch) PortOf(p *packet.Packet) int {
	t := p.Tuple()
	// FNV-1a over the tuple fields.
	h := uint32(2166136261)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= 16777619
			v >>= 8
		}
	}
	mix(t.SrcIP)
	mix(t.DstIP)
	mix(uint32(t.SrcPort)<<16 | uint32(t.DstPort))
	mix(uint32(t.Protocol))
	return int(h % uint32(e.N))
}

// Push implements click.Element.
func (e *HashSwitch) Push(ctx *click.Context, port int, p *packet.Packet) {
	e.Out(ctx, e.PortOf(p), p)
}

// Sym implements symexec.Model: a may-branch, like RoundRobinSwitch.
func (e *HashSwitch) Sym(port int, s *symexec.State) []symexec.Transition {
	out := make([]symexec.Transition, 0, e.N)
	for i := 0; i < e.N; i++ {
		st := s
		if i < e.N-1 {
			st = s.Clone()
		}
		out = append(out, symexec.Transition{Port: i, S: st})
	}
	return out
}

// ICMPPingResponder answers ICMP echo requests (swapping addresses);
// non-ICMP traffic passes through on port 1 if wired, else is
// dropped. This is the responder behind the Fig. 5 experiment's
// middle boxes.
type ICMPPingResponder struct {
	click.Base
	Replies uint64
}

// Class implements click.Element.
func (e *ICMPPingResponder) Class() string { return "ICMPPingResponder" }

// Configure implements click.Element.
func (e *ICMPPingResponder) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("ICMPPingResponder: takes no arguments")
	}
	return nil
}

// InPorts implements click.Element.
func (e *ICMPPingResponder) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *ICMPPingResponder) OutPorts() int { return 2 }

// Push implements click.Element.
func (e *ICMPPingResponder) Push(ctx *click.Context, port int, p *packet.Packet) {
	if p.Protocol != packet.ProtoICMP {
		if e.Connected(1) {
			e.Out(ctx, 1, p)
		} else {
			ctx.Drop(p)
		}
		return
	}
	e.Replies++
	p.SrcIP, p.DstIP = p.DstIP, p.SrcIP
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *ICMPPingResponder) Sym(port int, s *symexec.State) []symexec.Transition {
	rest := s.Clone()
	var out []symexec.Transition
	if s.Constrain(symexec.FieldProto, symexec.Single(uint64(packet.ProtoICMP))) {
		oldSrc, oldDst := s.Get(symexec.FieldSrcIP), s.Get(symexec.FieldDstIP)
		s.Assign(symexec.FieldSrcIP, oldDst)
		s.Assign(symexec.FieldDstIP, oldSrc)
		out = append(out, symexec.Transition{Port: 0, S: s})
	}
	notICMP := symexec.Single(uint64(packet.ProtoICMP)).Complement(8)
	if rest.Constrain(symexec.FieldProto, notICMP) {
		out = append(out, symexec.Transition{Port: 1, S: rest})
	}
	return out
}

// SetPort overwrites the source or destination transport port.
// Registered as SetSrcPort and SetDstPort.
type SetPort struct {
	click.Base
	src  bool
	Port uint16
}

// Class implements click.Element.
func (e *SetPort) Class() string {
	if e.src {
		return "SetSrcPort"
	}
	return "SetDstPort"
}

// Configure implements click.Element.
func (e *SetPort) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("%s: want exactly 1 arg", e.Class())
	}
	n, err := strconv.ParseUint(args[0], 10, 16)
	if err != nil {
		return fmt.Errorf("%s: bad port %q", e.Class(), args[0])
	}
	e.Port = uint16(n)
	return nil
}

// InPorts implements click.Element.
func (e *SetPort) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *SetPort) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *SetPort) Push(ctx *click.Context, port int, p *packet.Packet) {
	if e.src {
		p.SrcPort = e.Port
	} else {
		p.DstPort = e.Port
	}
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *SetPort) Sym(port int, s *symexec.State) []symexec.Transition {
	f := symexec.FieldDstPort
	if e.src {
		f = symexec.FieldSrcPort
	}
	s.Assign(f, symexec.Const(uint64(e.Port)))
	return []symexec.Transition{{Port: 0, S: s}}
}

// SetIPTTL overwrites the TTL (tunnel entry points do this).
type SetIPTTL struct {
	click.Base
	TTL uint8
}

// Class implements click.Element.
func (e *SetIPTTL) Class() string { return "SetIPTTL" }

// Configure implements click.Element.
func (e *SetIPTTL) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("SetIPTTL: want exactly 1 arg")
	}
	n, err := strconv.ParseUint(args[0], 10, 8)
	if err != nil || n == 0 {
		return fmt.Errorf("SetIPTTL: bad TTL %q", args[0])
	}
	e.TTL = uint8(n)
	return nil
}

// InPorts implements click.Element.
func (e *SetIPTTL) InPorts() int { return 1 }

// OutPorts implements click.Element.
func (e *SetIPTTL) OutPorts() int { return 1 }

// Push implements click.Element.
func (e *SetIPTTL) Push(ctx *click.Context, port int, p *packet.Packet) {
	p.TTL = e.TTL
	e.Out(ctx, 0, p)
}

// Sym implements symexec.Model.
func (e *SetIPTTL) Sym(port int, s *symexec.State) []symexec.Transition {
	s.Assign(symexec.FieldTTL, symexec.Const(uint64(e.TTL)))
	return []symexec.Transition{{Port: 0, S: s}}
}
