package elements

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
)

func TestTimedSourceEmits(t *testing.T) {
	ts := &TimedSource{}
	configure(t, ts, "5", `"keepalive"`)
	out := wire(t, ts, 0)
	ctx, now, _ := testCtx()
	if d := ts.Tick(ctx); d != 5e9 {
		t.Fatalf("first tick delay = %d", d)
	}
	*now += 5e9
	ts.Tick(ctx)
	*now += 5e9
	ts.Tick(ctx)
	if len(out.got) != 2 || ts.Emitted != 2 {
		t.Fatalf("emitted = %d", len(out.got))
	}
	if string(out.got[0].Payload) != "keepalive" {
		t.Errorf("payload = %q", out.got[0].Payload)
	}
	if out.got[0].Protocol != packet.ProtoUDP {
		t.Error("proto")
	}
	// A pushed packet is swallowed (sources have no inputs).
	drops := 0
	ctx2 := &click.Context{Now: func() int64 { return 0 }, DropHook: func(p *packet.Packet) { drops++ }}
	ts.Push(ctx2, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	if drops != 1 {
		t.Error("pushed packet not dropped")
	}
}

// TestTimedSourceSpoofingCaught is the security story behind source
// elements: a tenant module that originates traffic without stamping
// its own address is a spoofing risk and must be rejected; pinning
// the source to the module address (and an authorized destination)
// makes it deployable.
func TestTimedSourceSpoofingCaught(t *testing.T) {
	bad := click.MustBuildString(`
src :: TimedSource(5);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
src -> fwd -> out;
`)
	rep, err := security.Check(security.Input{
		ModuleID: "m", Module: bad,
		Addr:  packet.MustParseIP("198.51.100.77"),
		Trust: security.ThirdParty,
		Whitelist: []uint32{
			packet.MustParseIP("192.0.2.1"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != security.Rejected {
		t.Errorf("unpinned source verdict = %v (%v)", rep.Verdict, rep.Reasons)
	}
	good := click.MustBuildString(`
src :: TimedSource(5);
snat :: SetIPSrc(198.51.100.77);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
src -> snat -> fwd -> out;
`)
	rep2, err := security.Check(security.Input{
		ModuleID: "m", Module: good,
		Addr:  packet.MustParseIP("198.51.100.77"),
		Trust: security.ThirdParty,
		Whitelist: []uint32{
			packet.MustParseIP("192.0.2.1"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verdict != security.Safe {
		t.Errorf("pinned source verdict = %v (%v)", rep2.Verdict, rep2.Reasons)
	}
}

func TestTimedSourceInModule(t *testing.T) {
	// A keepalive module ticking inside a click.Router.
	r := click.MustBuildString(`
src :: TimedSource(1);
snat :: SetIPSrc(198.51.100.77);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
src -> snat -> fwd -> out;
`)
	var got []*packet.Packet
	now := int64(0)
	ctx := &click.Context{
		Now:      func() int64 { return now },
		Transmit: func(iface int, p *packet.Packet) { got = append(got, p) },
	}
	r.Tick(ctx) // schedules
	for i := 0; i < 3; i++ {
		now += 1e9
		r.Tick(ctx)
	}
	if len(got) != 3 {
		t.Fatalf("keepalives = %d", len(got))
	}
	if packet.IPString(got[0].SrcIP) != "198.51.100.77" {
		t.Error("src not pinned")
	}
}

func TestMeter(t *testing.T) {
	m := &Meter{}
	configure(t, m, "2") // 2 pps
	under := wire(t, m, 0)
	over := wire(t, m, 1)
	ctx, now, _ := testCtx()
	for i := 0; i < 5; i++ {
		m.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	if len(under.got) != 2 || len(over.got) != 3 || m.Over != 3 {
		t.Errorf("under=%d over=%d", len(under.got), len(over.got))
	}
	*now += 1e9 // refill
	m.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 99))
	if len(under.got) != 3 {
		t.Error("refill")
	}
	if trs := m.Sym(0, symexec.NewState()); len(trs) != 2 {
		t.Error("meter sym must may-branch")
	}
}

func TestRandomSample(t *testing.T) {
	rs := &RandomSample{}
	configure(t, rs, "0.5")
	sampled := wire(t, rs, 0)
	rest := wire(t, rs, 1)
	ctx, _, _ := testCtx()
	for i := 0; i < 1000; i++ {
		rs.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	if len(sampled.got) < 400 || len(sampled.got) > 600 {
		t.Errorf("sampled = %d of 1000 at p=0.5", len(sampled.got))
	}
	if len(sampled.got)+len(rest.got) != 1000 {
		t.Error("packets lost")
	}
	// p=0: nothing sampled; unwired port 1 drops.
	rs0 := &RandomSample{}
	configure(t, rs0, "0")
	wire(t, rs0, 0)
	drops := 0
	ctx2 := &click.Context{Now: func() int64 { return 0 }, DropHook: func(p *packet.Packet) { drops++ }}
	rs0.Push(ctx2, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	if drops != 1 {
		t.Error("p=0 with unwired port 1 should drop")
	}
}

func TestSourceConfigErrors(t *testing.T) {
	cases := []struct {
		class string
		args  []string
	}{
		{"TimedSource", nil},
		{"TimedSource", []string{"0"}},
		{"TimedSource", []string{"1", "x", "y"}},
		{"Meter", nil},
		{"Meter", []string{"-1"}},
		{"RandomSample", nil},
		{"RandomSample", []string{"1.5"}},
		{"RandomSample", []string{"x"}},
	}
	for _, c := range cases {
		if err := click.Lookup(c.class)().Configure(c.args); err == nil {
			t.Errorf("%s.Configure(%v) accepted", c.class, c.args)
		}
	}
}
