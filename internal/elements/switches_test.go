package elements

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func TestRoundRobinSwitch(t *testing.T) {
	rr := &RoundRobinSwitch{}
	configure(t, rr, "3")
	outs := []*sink{wire(t, rr, 0), wire(t, rr, 1), wire(t, rr, 2)}
	ctx, _, _ := testCtx()
	for i := 0; i < 9; i++ {
		rr.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	for i, o := range outs {
		if len(o.got) != 3 {
			t.Errorf("out %d = %d packets", i, len(o.got))
		}
	}
	if trs := rr.Sym(0, symexec.NewState()); len(trs) != 3 {
		t.Errorf("sym fanout = %d", len(trs))
	}
}

func TestHashSwitchFlowAffinity(t *testing.T) {
	hs := &HashSwitch{}
	configure(t, hs, "4")
	outs := []*sink{wire(t, hs, 0), wire(t, hs, 1), wire(t, hs, 2), wire(t, hs, 3)}
	ctx, _, _ := testCtx()
	// Same flow -> same output.
	for i := 0; i < 10; i++ {
		hs.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1000, 2000))
	}
	nonEmpty := 0
	for _, o := range outs {
		if len(o.got) > 0 {
			nonEmpty++
			if len(o.got) != 10 {
				t.Errorf("flow split across outputs")
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("flow landed on %d outputs", nonEmpty)
	}
	// Many flows spread across outputs.
	for i := 0; i < 64; i++ {
		hs.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", uint16(1000+i), 2000))
	}
	spread := 0
	for _, o := range outs {
		if len(o.got) > 0 {
			spread++
		}
	}
	if spread < 3 {
		t.Errorf("flows spread over only %d outputs", spread)
	}
}

func TestICMPPingResponder(t *testing.T) {
	r := &ICMPPingResponder{}
	configure(t, r)
	echo := wire(t, r, 0)
	pass := wire(t, r, 1)
	ctx, _, _ := testCtx()
	ping := &packet.Packet{
		Protocol: packet.ProtoICMP,
		SrcIP:    packet.MustParseIP("10.0.0.1"),
		DstIP:    packet.MustParseIP("10.0.0.2"),
		TTL:      64,
	}
	r.Push(ctx, 0, ping)
	if len(echo.got) != 1 || r.Replies != 1 {
		t.Fatal("no echo")
	}
	if packet.IPString(ping.SrcIP) != "10.0.0.2" || packet.IPString(ping.DstIP) != "10.0.0.1" {
		t.Error("addresses not swapped")
	}
	r.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	if len(pass.got) != 1 {
		t.Error("udp not passed through")
	}
	// Symbolic: icmp branch has addresses aliased-swapped.
	trs := r.Sym(0, symexec.NewState())
	if len(trs) != 2 {
		t.Fatalf("sym transitions = %d", len(trs))
	}
	for _, tr := range trs {
		if tr.Port == 0 {
			if v, ok := tr.S.Values(symexec.FieldProto).IsSingle(); !ok || v != 1 {
				t.Error("echo branch not icmp")
			}
		}
	}
}

func TestSetPortsAndTTL(t *testing.T) {
	sp := click.Lookup("SetSrcPort")().(*SetPort)
	configure(t, sp, "8080")
	dp := click.Lookup("SetDstPort")().(*SetPort)
	configure(t, dp, "53")
	ttl := &SetIPTTL{}
	configure(t, ttl, "7")
	wire(t, sp, 0)
	wire(t, dp, 0)
	wire(t, ttl, 0)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	sp.Push(ctx, 0, p)
	dp.Push(ctx, 0, p)
	ttl.Push(ctx, 0, p)
	if p.SrcPort != 8080 || p.DstPort != 53 || p.TTL != 7 {
		t.Errorf("packet = %+v", p)
	}
	if sp.Class() != "SetSrcPort" || dp.Class() != "SetDstPort" {
		t.Error("classes")
	}
	s := symexec.NewState()
	sp.Sym(0, s)
	dp.Sym(0, s)
	ttl.Sym(0, s)
	if v, _ := s.Values(symexec.FieldSrcPort).IsSingle(); v != 8080 {
		t.Error("sym src port")
	}
	if v, _ := s.Values(symexec.FieldTTL).IsSingle(); v != 7 {
		t.Error("sym ttl")
	}
}

func TestSwitchConfigErrors(t *testing.T) {
	cases := []struct {
		class string
		args  []string
	}{
		{"RoundRobinSwitch", nil},
		{"RoundRobinSwitch", []string{"0"}},
		{"HashSwitch", []string{"abc"}},
		{"HashSwitch", []string{"999"}},
		{"ICMPPingResponder", []string{"x"}},
		{"SetSrcPort", []string{"70000"}},
		{"SetDstPort", nil},
		{"SetIPTTL", []string{"0"}},
		{"SetIPTTL", []string{"300"}},
	}
	for _, c := range cases {
		if err := click.Lookup(c.class)().Configure(c.args); err == nil {
			t.Errorf("%s.Configure(%v) accepted", c.class, c.args)
		}
	}
}

func TestLoadBalancerComposition(t *testing.T) {
	// A software load balancer: hash flows across two rewriters, each
	// pointing at a different backend — the kind of middlebox the
	// paper says NFV platforms must support.
	r := click.MustBuildString(`
in :: FromNetfront();
hs :: HashSwitch(2);
b0 :: SetIPDst(192.0.2.10);
b1 :: SetIPDst(192.0.2.11);
out :: ToNetfront();
in -> hs;
hs[0] -> b0 -> out;
hs[1] -> b1 -> out;
`)
	var got []*packet.Packet
	ctx := &click.Context{
		Now:      func() int64 { return 0 },
		Transmit: func(iface int, p *packet.Packet) { got = append(got, p) },
	}
	backends := map[uint32]int{}
	for i := 0; i < 50; i++ {
		p := udpPkt("8.8.8.8", "198.51.100.5", uint16(5000+i), 80)
		r.Inject(ctx, 0, p)
	}
	for _, p := range got {
		backends[p.DstIP]++
	}
	if len(got) != 50 || len(backends) != 2 {
		t.Errorf("balanced %d packets across %d backends", len(got), len(backends))
	}
}
