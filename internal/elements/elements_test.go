package elements

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

// sink collects packets pushed into it.
type sink struct {
	click.Base
	got []*packet.Packet
}

func (s *sink) Class() string                 { return "testSink" }
func (s *sink) Configure(args []string) error { return nil }
func (s *sink) InPorts() int                  { return click.AnyPorts }
func (s *sink) OutPorts() int                 { return 0 }
func (s *sink) Push(ctx *click.Context, port int, p *packet.Packet) {
	s.got = append(s.got, p)
}

func testCtx() (*click.Context, *int64, *int) {
	now := new(int64)
	drops := new(int)
	return &click.Context{
		Now:      func() int64 { return *now },
		DropHook: func(p *packet.Packet) { *drops++ },
	}, now, drops
}

// wire builds el -> sink on the given output port.
func wire(t *testing.T, el click.Element, port int) *sink {
	t.Helper()
	s := &sink{}
	if err := el.SetOutput(port, click.Target{Elem: s, Port: 0}); err != nil {
		t.Fatal(err)
	}
	return s
}

func configure(t *testing.T, el click.Element, args ...string) {
	t.Helper()
	if err := el.Configure(args); err != nil {
		t.Fatalf("Configure(%v): %v", args, err)
	}
}

func udpPkt(src, dst string, sp, dp uint16) *packet.Packet {
	return &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP(src),
		DstIP:    packet.MustParseIP(dst),
		SrcPort:  sp, DstPort: dp, TTL: 64,
		Payload: []byte("payload"),
	}
}

func TestIPFilterRuntime(t *testing.T) {
	f := &IPFilter{}
	configure(t, f, "allow udp port 1500", "deny all")
	out := wire(t, f, 0)
	ctx, _, drops := testCtx()
	f.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 5, 1500))
	f.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 5, 99))
	if len(out.got) != 1 || *drops != 1 || f.Dropped != 1 {
		t.Errorf("out=%d drops=%d", len(out.got), *drops)
	}
	// No matching rule at all -> drop.
	f2 := &IPFilter{}
	configure(t, f2, "allow tcp")
	wire(t, f2, 0)
	f2.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 5, 5))
	if f2.Dropped != 1 {
		t.Error("unmatched packet should drop")
	}
}

func TestIPFilterRuleOrder(t *testing.T) {
	f := &IPFilter{}
	configure(t, f, "deny dst port 80", "allow tcp")
	out := wire(t, f, 0)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 80)
	p.Protocol = packet.ProtoTCP
	f.Push(ctx, 0, p) // denied by first rule despite being tcp
	if len(out.got) != 0 {
		t.Error("first-match semantics violated")
	}
}

func TestIPFilterSym(t *testing.T) {
	f := &IPFilter{}
	configure(t, f, "allow udp port 1500", "deny all")
	trs := f.Sym(0, symexec.NewState())
	// "port 1500" splits into src/dst branches: 2 allowed flows.
	if len(trs) != 2 {
		t.Fatalf("transitions = %d", len(trs))
	}
	for _, tr := range trs {
		if v, ok := tr.S.Values(symexec.FieldProto).IsSingle(); !ok || v != 17 {
			t.Errorf("branch proto = %v", tr.S.Values(symexec.FieldProto))
		}
	}
	// A filter denying everything yields no flows.
	f2 := &IPFilter{}
	configure(t, f2, "deny all")
	if trs := f2.Sym(0, symexec.NewState()); len(trs) != 0 {
		t.Errorf("deny-all produced %d flows", len(trs))
	}
}

func TestIPFilterConfigErrors(t *testing.T) {
	for _, args := range [][]string{
		{}, {"frobnicate udp"}, {"allow not-a-primitive-xyz"}, {""},
	} {
		f := &IPFilter{}
		if err := f.Configure(args); err == nil {
			t.Errorf("Configure(%v) accepted", args)
		}
	}
}

func TestIPClassifierRuntimeAndSym(t *testing.T) {
	c := &IPClassifier{}
	configure(t, c, "udp", "tcp", "-")
	u := wire(t, c, 0)
	tc := wire(t, c, 1)
	rest := wire(t, c, 2)
	ctx, _, _ := testCtx()
	c.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p.Protocol = packet.ProtoTCP
	c.Push(ctx, 0, p)
	p2 := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p2.Protocol = packet.ProtoICMP
	c.Push(ctx, 0, p2)
	if len(u.got) != 1 || len(tc.got) != 1 || len(rest.got) != 1 {
		t.Errorf("classified %d/%d/%d", len(u.got), len(tc.got), len(rest.got))
	}
	if c.Matched[0] != 1 || c.Matched[1] != 1 || c.Matched[2] != 1 {
		t.Errorf("Matched = %v", c.Matched)
	}
	if c.OutPorts() != 3 {
		t.Errorf("OutPorts = %d", c.OutPorts())
	}

	trs := c.Sym(0, symexec.NewState())
	byPort := map[int]int{}
	for _, tr := range trs {
		byPort[tr.Port]++
	}
	if byPort[0] != 1 || byPort[1] != 1 || byPort[2] < 1 {
		t.Errorf("sym transitions per port = %v", byPort)
	}
	// Default branch must exclude udp and tcp.
	for _, tr := range trs {
		if tr.Port == 2 {
			v := tr.S.Values(symexec.FieldProto)
			if v.Contains(6) || v.Contains(17) {
				t.Errorf("default branch protos = %v", v)
			}
		}
	}
}

func TestDPIRuntimeAndSym(t *testing.T) {
	d := &DPI{}
	configure(t, d, `"attack"`)
	clean := wire(t, d, 0)
	bad := wire(t, d, 1)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p.Payload = []byte("normal traffic")
	d.Push(ctx, 0, p)
	p2 := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p2.Payload = []byte("an attack payload")
	d.Push(ctx, 0, p2)
	if len(clean.got) != 1 || len(bad.got) != 1 || d.Hits != 1 {
		t.Errorf("clean=%d bad=%d hits=%d", len(clean.got), len(bad.got), d.Hits)
	}
	if trs := d.Sym(0, symexec.NewState()); len(trs) != 2 {
		t.Errorf("DPI sym must may-branch, got %d", len(trs))
	}
	// Unwired port 1 drops.
	d2 := &DPI{}
	configure(t, d2, "x")
	wire(t, d2, 0)
	_, _, drops := testCtx()
	ctx2 := &click.Context{Now: func() int64 { return 0 }, DropHook: func(p *packet.Packet) { *drops++ }}
	p3 := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p3.Payload = []byte("xx")
	d2.Push(ctx2, 0, p3)
	if *drops != 1 {
		t.Error("matched packet with unwired port 1 should drop")
	}
}

func TestIPRewriterForwardAndReverse(t *testing.T) {
	rw := &IPRewriter{}
	configure(t, rw, "pattern - - 172.16.15.133 - 0 0")
	out := wire(t, rw, 0)
	ctx, _, _ := testCtx()
	p := udpPkt("8.8.8.8", "198.51.100.7", 4444, 1500)
	rw.Push(ctx, 0, p)
	if len(out.got) != 1 {
		t.Fatal("no forward output")
	}
	if got := packet.IPString(p.DstIP); got != "172.16.15.133" {
		t.Errorf("dst = %s", got)
	}
	if p.SrcIP != packet.MustParseIP("8.8.8.8") || p.DstPort != 1500 {
		t.Error("untouched fields changed")
	}
	// Reply direction restores the original destination.
	reply := &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("172.16.15.133"),
		DstIP:    packet.MustParseIP("8.8.8.8"),
		SrcPort:  1500, DstPort: 4444, TTL: 64,
	}
	rw.Push(ctx, 1, reply)
	if len(out.got) != 2 {
		t.Fatal("no reverse output")
	}
	if got := packet.IPString(reply.SrcIP); got != "198.51.100.7" {
		t.Errorf("restored src = %s", got)
	}
	// Unknown reply tuple drops.
	stray := udpPkt("9.9.9.9", "8.8.8.8", 1, 2)
	_, _, drops := testCtx()
	ctx2 := &click.Context{Now: func() int64 { return 0 }, DropHook: func(p *packet.Packet) { *drops++ }}
	rw.Push(ctx2, 1, stray)
	if *drops != 1 {
		t.Error("stray reply should drop")
	}
}

func TestIPRewriterSym(t *testing.T) {
	rw := &IPRewriter{}
	configure(t, rw, "pattern 10.0.0.1 5000 - - 0 0")
	s := symexec.NewState()
	trs := rw.Sym(0, s)
	if len(trs) != 1 {
		t.Fatal("want 1 transition")
	}
	st := trs[0].S
	if v, ok := st.Values(symexec.FieldSrcIP).IsSingle(); !ok || v != uint64(packet.MustParseIP("10.0.0.1")) {
		t.Errorf("src = %v", st.Values(symexec.FieldSrcIP))
	}
	if v, ok := st.Values(symexec.FieldSrcPort).IsSingle(); !ok || v != 5000 {
		t.Errorf("sport = %v", st.Values(symexec.FieldSrcPort))
	}
	// Destination untouched: still the original free var.
	if st.Binding(symexec.FieldDstIP).DefHop != -1 {
		t.Error("dst should not be redefined")
	}
	// Reverse direction rewrites to runtime-dependent values.
	s2 := symexec.NewState()
	s2.PushHop("rw", 1) // the walker records the hop before Sym runs
	trs2 := rw.Sym(1, s2)
	if len(trs2) != 1 {
		t.Fatal("want 1 reverse transition")
	}
	if trs2[0].S.Binding(symexec.FieldSrcIP).DefHop == -1 {
		t.Error("reverse path should redefine addresses")
	}
}

func TestIPRewriterConfigErrors(t *testing.T) {
	for _, args := range [][]string{
		{}, {"pattern - -"}, {"nopattern a b c d 0 0"},
		{"pattern bad - - - 0 0"}, {"pattern - 99999 - - 0 0"},
		{"pattern - - - - x 0"}, {"pattern - - - - 0 -1"},
	} {
		rw := &IPRewriter{}
		if err := rw.Configure(args); err == nil {
			t.Errorf("Configure(%v) accepted", args)
		}
	}
}

func TestDecIPTTL(t *testing.T) {
	d := &DecIPTTL{}
	configure(t, d)
	out := wire(t, d, 0)
	ctx, _, drops := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p.TTL = 2
	d.Push(ctx, 0, p)
	if p.TTL != 1 || len(out.got) != 1 {
		t.Errorf("ttl = %d", p.TTL)
	}
	d.Push(ctx, 0, p) // now TTL 1 -> expired
	if *drops != 1 || d.Expired != 1 {
		t.Error("expired packet not dropped")
	}
	trs := d.Sym(0, symexec.NewState())
	if len(trs) != 2 {
		t.Fatalf("sym transitions = %d", len(trs))
	}
	for _, tr := range trs {
		vals := tr.S.Values(symexec.FieldTTL)
		switch tr.Port {
		case 0:
			if vals.Contains(0) || vals.Contains(255) {
				t.Errorf("live ttl = %v", vals)
			}
		case 1:
			if !vals.SubsetOf(symexec.Span(0, 1)) {
				t.Errorf("expired ttl = %v", vals)
			}
		}
	}
}

func TestLookupIPRoute(t *testing.T) {
	r := &LookupIPRoute{}
	configure(t, r, "10.0.0.0/8 0", "10.1.0.0/16 1", "0.0.0.0/0 2")
	o0 := wire(t, r, 0)
	o1 := wire(t, r, 1)
	o2 := wire(t, r, 2)
	ctx, _, _ := testCtx()
	r.Push(ctx, 0, udpPkt("9.9.9.9", "10.2.3.4", 1, 2))   // /8
	r.Push(ctx, 0, udpPkt("9.9.9.9", "10.1.3.4", 1, 2))   // /16 (longest)
	r.Push(ctx, 0, udpPkt("9.9.9.9", "192.0.2.19", 1, 2)) // default
	if len(o0.got) != 1 || len(o1.got) != 1 || len(o2.got) != 1 {
		t.Errorf("routed %d/%d/%d", len(o0.got), len(o1.got), len(o2.got))
	}

	trs := r.Sym(0, symexec.NewState())
	// One flow per route; the /8 flow must exclude the /16.
	for _, tr := range trs {
		vals := tr.S.Values(symexec.FieldDstIP)
		if tr.Port == 0 && vals.Contains(uint64(packet.MustParseIP("10.1.0.1"))) {
			t.Error("/8 branch includes /16 addresses")
		}
		if tr.Port == 2 && vals.Contains(uint64(packet.MustParseIP("10.5.5.5"))) {
			t.Error("default branch includes /8 addresses")
		}
	}
}

func TestStatefulFirewall(t *testing.T) {
	fw := &StatefulFirewall{}
	configure(t, fw, "allow udp", "timeout 30")
	outb := wire(t, fw, 0)
	inb := wire(t, fw, 1)
	ctx, now, drops := testCtx()

	// TCP outbound violates policy.
	p := udpPkt("10.0.0.1", "8.8.8.8", 1111, 53)
	p.Protocol = packet.ProtoTCP
	fw.Push(ctx, 0, p)
	if *drops != 1 {
		t.Error("tcp outbound should drop")
	}
	// UDP outbound passes and records the flow.
	fw.Push(ctx, 0, udpPkt("10.0.0.1", "8.8.8.8", 1111, 53))
	if len(outb.got) != 1 || fw.ActiveFlows() != 1 {
		t.Error("udp outbound")
	}
	// Related response passes.
	fw.Push(ctx, 1, udpPkt("8.8.8.8", "10.0.0.1", 53, 1111))
	if len(inb.got) != 1 {
		t.Error("related response blocked")
	}
	// Unrelated inbound drops.
	fw.Push(ctx, 1, udpPkt("9.9.9.9", "10.0.0.1", 53, 1111))
	if len(inb.got) != 1 {
		t.Error("unrelated inbound passed")
	}
	// Timeout expiry revokes authorization.
	*now += int64(31 * 1e9)
	fw.Push(ctx, 1, udpPkt("8.8.8.8", "10.0.0.1", 53, 1111))
	if len(inb.got) != 1 {
		t.Error("expired flow passed")
	}
}

func TestStatefulFirewallSymFig2(t *testing.T) {
	fw := &StatefulFirewall{}
	configure(t, fw, "allow udp")
	// Outbound: tagged + constrained to udp.
	trs := fw.Sym(0, symexec.NewState())
	if len(trs) != 1 {
		t.Fatalf("outbound transitions = %d", len(trs))
	}
	st := trs[0].S
	if v, ok := st.Values(symexec.FieldFWTag).IsSingle(); !ok || v != 1 {
		t.Error("fw_tag not set")
	}
	// Inbound without tag: dropped.
	if trs := fw.Sym(1, symexec.NewState()); len(trs) != 0 {
		t.Error("untagged inbound passed symbolically")
	}
	// Inbound with tag: passes.
	tagged := symexec.NewState()
	tagged.Assign(symexec.FieldFWTag, symexec.Const(1))
	if trs := fw.Sym(1, tagged); len(trs) != 1 || trs[0].Port != 1 {
		t.Error("tagged inbound blocked")
	}
}

func TestFlowMeter(t *testing.T) {
	m := &FlowMeter{}
	configure(t, m)
	out := wire(t, m, 0)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 10, 20)
	m.Push(ctx, 0, p)
	m.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 10, 20))
	m.Push(ctx, 0, udpPkt("3.3.3.3", "2.2.2.2", 10, 20))
	if m.Flows() != 2 || len(out.got) != 3 {
		t.Errorf("flows = %d out = %d", m.Flows(), len(out.got))
	}
	pk, by, ok := m.Stats(p.Tuple())
	if !ok || pk != 2 || by == 0 {
		t.Errorf("stats = %d %d %v", pk, by, ok)
	}
	if _, _, ok := m.Stats(packet.FiveTuple{}); ok {
		t.Error("missing flow reported")
	}
}

func TestChangeEnforcer(t *testing.T) {
	ce := &ChangeEnforcer{}
	configure(t, ce, "whitelist 192.0.2.1", "timeout 60")
	toModule := wire(t, ce, 0)
	toWorld := wire(t, ce, 1)
	ctx, now, _ := testCtx()

	// Outside -> module always passes and authorizes the source.
	ce.Push(ctx, 0, udpPkt("8.8.8.8", "172.16.0.5", 1000, 2000))
	if len(toModule.got) != 1 {
		t.Fatal("inbound blocked")
	}
	// Module -> authorized destination passes.
	ce.Push(ctx, 1, udpPkt("172.16.0.5", "8.8.8.8", 2000, 1000))
	if len(toWorld.got) != 1 {
		t.Error("implicitly authorized reply blocked")
	}
	// Module -> whitelisted destination passes.
	ce.Push(ctx, 1, udpPkt("172.16.0.5", "192.0.2.1", 1, 2))
	if len(toWorld.got) != 2 {
		t.Error("whitelisted destination blocked")
	}
	// Module -> anything else drops.
	ce.Push(ctx, 1, udpPkt("172.16.0.5", "203.0.113.77", 1, 2))
	if len(toWorld.got) != 2 || ce.Blocked != 1 {
		t.Error("unauthorized destination passed")
	}
	// Authorization expires.
	*now += int64(61 * 1e9)
	ce.Push(ctx, 1, udpPkt("172.16.0.5", "8.8.8.8", 2000, 1000))
	if len(toWorld.got) != 2 {
		t.Error("expired authorization honored")
	}
}

func TestChangeEnforcerSym(t *testing.T) {
	ce := &ChangeEnforcer{}
	configure(t, ce, "whitelist 192.0.2.1 192.0.2.2")
	// Round trip: in, then module echoes back (dst := src), then out.
	s := symexec.NewState()
	in := ce.Sym(0, s)
	if len(in) != 1 {
		t.Fatal("inbound")
	}
	st := in[0].S
	// Module behavior: echo (dst := src).
	st.Assign(symexec.FieldDstIP, st.Get(symexec.FieldSrcIP))
	out := ce.Sym(1, st)
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatal("echo reply should pass the enforcer")
	}
	// A module that sets dst to a non-whitelisted constant is blocked.
	s2 := symexec.NewState()
	in2 := ce.Sym(0, s2)
	st2 := in2[0].S
	st2.Assign(symexec.FieldDstIP, symexec.Const(uint64(packet.MustParseIP("203.0.113.9"))))
	if out := ce.Sym(1, st2); len(out) != 0 {
		t.Error("non-whitelisted constant passed")
	}
	// Whitelisted constant passes.
	st2.Assign(symexec.FieldDstIP, symexec.Const(uint64(packet.MustParseIP("192.0.2.2"))))
	if out := ce.Sym(1, st2); len(out) != 1 {
		t.Error("whitelisted constant blocked")
	}
}

func TestTunnelEncapDecapRoundTrip(t *testing.T) {
	enc := &UDPIPEncap{}
	configure(t, enc, "10.0.0.1 5000 192.0.2.9 5000")
	dec := &IPDecap{}
	configure(t, dec)
	encOut := wire(t, enc, 0)
	decOut := wire(t, dec, 0)
	ctx, _, _ := testCtx()

	orig := udpPkt("172.16.0.5", "8.8.8.8", 1234, 53)
	inner := orig.Clone()
	enc.Push(ctx, 0, inner)
	if len(encOut.got) != 1 {
		t.Fatal("no encap output")
	}
	outer := encOut.got[0]
	if outer.DstIP != packet.MustParseIP("192.0.2.9") || outer.Protocol != packet.ProtoUDP {
		t.Errorf("outer headers: %v", outer)
	}
	dec.Push(ctx, 0, outer)
	if len(decOut.got) != 1 {
		t.Fatal("no decap output")
	}
	got := decOut.got[0]
	if got.SrcIP != orig.SrcIP || got.DstIP != orig.DstIP ||
		got.SrcPort != orig.SrcPort || got.DstPort != orig.DstPort {
		t.Errorf("decap mismatch: %v vs %v", got, orig)
	}
	if string(got.Payload) != string(orig.Payload) {
		t.Error("payload lost in tunnel")
	}
}

func TestIPDecapMalformed(t *testing.T) {
	dec := &IPDecap{}
	configure(t, dec)
	wire(t, dec, 0)
	ctx, _, drops := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	p.Payload = []byte{0xde, 0xad}
	dec.Push(ctx, 0, p)
	if *drops != 1 || dec.Malformed != 1 {
		t.Error("malformed inner packet not dropped")
	}
}

func TestIPDecapSymFreesAllFields(t *testing.T) {
	dec := &IPDecap{}
	configure(t, dec)
	s := symexec.NewState()
	s.PushHop("decap", 0) // the walker records the hop before Sym runs
	srcVar, _ := s.Get(symexec.FieldSrcIP).IsVar()
	trs := dec.Sym(0, s)
	if len(trs) != 1 {
		t.Fatal("transitions")
	}
	st := trs[0].S
	dstVar, ok := st.Get(symexec.FieldDstIP).IsVar()
	if !ok {
		t.Fatal("dst should be a var")
	}
	if dstVar == srcVar {
		t.Error("decapped dst must not alias the outer src")
	}
	if st.Binding(symexec.FieldDstIP).DefHop == -1 {
		t.Error("dst must be marked redefined")
	}
}

func TestTeeDuplicates(t *testing.T) {
	te := &Tee{}
	configure(t, te, "3")
	o0 := wire(t, te, 0)
	o1 := wire(t, te, 1)
	o2 := wire(t, te, 2)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	te.Push(ctx, 0, p)
	if len(o0.got) != 1 || len(o1.got) != 1 || len(o2.got) != 1 {
		t.Error("tee fanout")
	}
	if o0.got[0] == o1.got[0] {
		t.Error("clones must be distinct")
	}
	if trs := te.Sym(0, symexec.NewState()); len(trs) != 3 {
		t.Errorf("sym fanout = %d", len(trs))
	}
}

func TestPaintAndCheckPaint(t *testing.T) {
	pa := &Paint{}
	configure(t, pa, "7")
	cp := &CheckPaint{}
	configure(t, cp, "7")
	paOut := wire(t, pa, 0)
	match := wire(t, cp, 0)
	rest := wire(t, cp, 1)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	pa.Push(ctx, 0, p)
	if p.Paint != 7 || len(paOut.got) != 1 {
		t.Error("paint")
	}
	cp.Push(ctx, 0, p)
	q := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	cp.Push(ctx, 0, q)
	if len(match.got) != 1 || len(rest.got) != 1 {
		t.Error("checkpaint branch")
	}
	// Symbolic: painted flow takes port 0 only.
	s := symexec.NewState()
	pa.Sym(0, s)
	trs := cp.Sym(0, s)
	if len(trs) != 1 || trs[0].Port != 0 {
		t.Errorf("painted sym = %+v", trs)
	}
}

func TestSetIPFields(t *testing.T) {
	ss := click.Lookup("SetIPSrc")().(*SetIPField)
	configure(t, ss, "10.9.8.7")
	sd := click.Lookup("SetIPDst")().(*SetIPField)
	configure(t, sd, "1.2.3.4")
	so := wire(t, ss, 0)
	wire(t, sd, 0)
	ctx, _, _ := testCtx()
	p := udpPkt("5.5.5.5", "6.6.6.6", 1, 2)
	ss.Push(ctx, 0, p)
	sd.Push(ctx, 0, p)
	if packet.IPString(p.SrcIP) != "10.9.8.7" || packet.IPString(p.DstIP) != "1.2.3.4" {
		t.Errorf("set fields: %v", p)
	}
	if len(so.got) != 1 {
		t.Error("output")
	}
	s := symexec.NewState()
	sd.Sym(0, s)
	if v, ok := s.Values(symexec.FieldDstIP).IsSingle(); !ok || v != uint64(packet.MustParseIP("1.2.3.4")) {
		t.Error("SetIPDst sym")
	}
	if ss.Class() != "SetIPSrc" || sd.Class() != "SetIPDst" {
		t.Error("classes")
	}
}

func TestQueueAndTick(t *testing.T) {
	q := &Queue{}
	configure(t, q, "2")
	out := wire(t, q, 0)
	ctx, _, drops := testCtx()
	q.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	q.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 3))
	q.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 4)) // overflow
	if q.Len() != 2 || *drops != 1 || q.Drops != 1 {
		t.Errorf("len=%d drops=%d", q.Len(), *drops)
	}
	q.Tick(ctx)
	if len(out.got) != 2 || q.Len() != 0 {
		t.Error("drain")
	}
}

func TestTimedUnqueueBatching(t *testing.T) {
	tu := &TimedUnqueue{}
	configure(t, tu, "120", "100")
	if tu.IntervalNS != 120*1e9 || tu.Burst != 100 {
		t.Fatalf("config: %+v", tu)
	}
	out := wire(t, tu, 0)
	ctx, now, _ := testCtx()
	for i := 0; i < 5; i++ {
		tu.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	if d := tu.Tick(ctx); d != 120*1e9 {
		t.Errorf("tick delay = %d", d)
	}
	if len(out.got) != 0 {
		t.Error("released early")
	}
	*now += 120 * 1e9
	tu.Tick(ctx)
	if len(out.got) != 5 || tu.Released != 5 {
		t.Errorf("released = %d", len(out.got))
	}
	if d := tu.Tick(ctx); d != -1 {
		t.Errorf("idle = %d", d)
	}
}

func TestTimedUnqueueBurstLimit(t *testing.T) {
	tu := &TimedUnqueue{}
	configure(t, tu, "1", "2")
	out := wire(t, tu, 0)
	ctx, now, _ := testCtx()
	for i := 0; i < 5; i++ {
		tu.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	*now += 1e9
	tu.Tick(ctx)
	if len(out.got) != 2 || tu.Pending() != 3 {
		t.Errorf("burst: out=%d pending=%d", len(out.got), tu.Pending())
	}
	*now += 1e9
	tu.Tick(ctx)
	*now += 1e9
	tu.Tick(ctx)
	if len(out.got) != 5 {
		t.Errorf("total released = %d", len(out.got))
	}
}

func TestRatedUnqueue(t *testing.T) {
	ru := &RatedUnqueue{}
	configure(t, ru, "1000") // 1 pkt/ms
	out := wire(t, ru, 0)
	ctx, now, _ := testCtx()
	for i := 0; i < 3; i++ {
		ru.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	ru.Tick(ctx) // releases first immediately
	if len(out.got) != 1 {
		t.Errorf("first release = %d", len(out.got))
	}
	*now += 2e6 // 2 ms -> 2 more
	ru.Tick(ctx)
	if len(out.got) != 3 {
		t.Errorf("after 2ms = %d", len(out.got))
	}
}

func TestRateLimiterPolices(t *testing.T) {
	rl := &RateLimiter{}
	configure(t, rl, "10", "2") // 10 pps, burst 2
	out := wire(t, rl, 0)
	ctx, now, _ := testCtx()
	for i := 0; i < 5; i++ {
		rl.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, uint16(i)))
	}
	if len(out.got) != 2 || rl.Dropped != 3 {
		t.Errorf("burst pass = %d dropped = %d", len(out.got), rl.Dropped)
	}
	*now += 1e9 // refill 10 tokens, capped at 2
	rl.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 99))
	if len(out.got) != 3 {
		t.Error("refill failed")
	}
}

func TestBandwidthShaperBytes(t *testing.T) {
	bs := click.Lookup("BandwidthShaper")().(*RateLimiter)
	configure(t, bs, "100") // 100 B/s, burst 100 B
	out := wire(t, bs, 0)
	ctx, _, _ := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2) // 28 + 7 = 35 bytes
	bs.Push(ctx, 0, p)
	bs.Push(ctx, 0, p.Clone())
	bs.Push(ctx, 0, p.Clone()) // 105 bytes total > 100
	if len(out.got) != 2 || bs.Dropped != 1 {
		t.Errorf("passed = %d dropped = %d", len(out.got), bs.Dropped)
	}
	if bs.Class() != "BandwidthShaper" {
		t.Error("class")
	}
}

func TestCounterDiscardCRC(t *testing.T) {
	c := &Counter{}
	configure(t, c)
	crc := &SetCRC32{}
	configure(t, crc)
	d := &Discard{}
	configure(t, d)
	cOut := wire(t, c, 0)
	crcOut := wire(t, crc, 0)
	ctx, _, drops := testCtx()
	p := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	c.Push(ctx, 0, p)
	crc.Push(ctx, 0, p)
	d.Push(ctx, 0, p)
	if c.Packets != 1 || len(cOut.got) != 1 {
		t.Error("counter")
	}
	if crc.Last == 0 || len(crcOut.got) != 1 {
		t.Error("crc")
	}
	if d.Count != 1 || *drops != 1 {
		t.Error("discard")
	}
}

func TestCheckIPHeader(t *testing.T) {
	ch := &CheckIPHeader{}
	configure(t, ch)
	good := wire(t, ch, 0)
	ctx, _, drops := testCtx()
	ch.Push(ctx, 0, udpPkt("1.1.1.1", "2.2.2.2", 1, 2))
	bad := udpPkt("1.1.1.1", "2.2.2.2", 1, 2)
	bad.TTL = 0
	ch.Push(ctx, 0, bad)
	if len(good.got) != 1 || *drops != 1 || ch.Drops != 1 {
		t.Error("checkipheader")
	}
}

func TestConfigureArgValidation(t *testing.T) {
	cases := []struct {
		class string
		args  []string
	}{
		{"Paint", nil},
		{"Paint", []string{"300"}},
		{"CheckPaint", []string{"abc"}},
		{"Tee", []string{"0"}},
		{"Tee", []string{"1", "2"}},
		{"Queue", []string{"-5"}},
		{"TimedUnqueue", nil},
		{"TimedUnqueue", []string{"0"}},
		{"TimedUnqueue", []string{"5", "-1"}},
		{"RatedUnqueue", []string{"0"}},
		{"RateLimiter", nil},
		{"RateLimiter", []string{"abc"}},
		{"SetIPSrc", []string{"nope"}},
		{"SetIPDst", nil},
		{"SetTOS", []string{"999"}},
		{"Discard", []string{"x"}},
		{"Counter", []string{"x"}},
		{"SetCRC32", []string{"x"}},
		{"FromNetfront", []string{"-1"}},
		{"ToNetfront", []string{"a", "b"}},
		{"DPI", nil},
		{"DPI", []string{`""`}},
		{"LookupIPRoute", nil},
		{"LookupIPRoute", []string{"10.0.0.0/8"}},
		{"LookupIPRoute", []string{"bad 0"}},
		{"UDPIPEncap", []string{"10.0.0.1 99 192.0.2.1"}},
		{"UDPIPEncap", []string{"x 1 y 2"}},
		{"IPDecap", []string{"x"}},
		{"StatefulFirewall", []string{"bogus option"}},
		{"StatefulFirewall", []string{"timeout x"}},
		{"ChangeEnforcer", []string{"whitelist notanip"}},
		{"ChangeEnforcer", []string{"timeout -3"}},
		{"ChangeEnforcer", []string{"wat"}},
		{"DecIPTTL", []string{"x"}},
	}
	for _, c := range cases {
		f := click.Lookup(c.class)
		if f == nil {
			t.Fatalf("class %s missing", c.class)
		}
		if err := f().Configure(c.args); err == nil {
			t.Errorf("%s.Configure(%v) accepted", c.class, c.args)
		}
	}
}

func TestDefaultsAccepted(t *testing.T) {
	ok := []struct {
		class string
		args  []string
	}{
		{"Queue", nil},
		{"Queue", []string{""}},
		{"Tee", nil},
		{"FromNetfront", nil},
		{"FromNetfront", []string{"1"}},
		{"ToNetfront", []string{""}},
		{"StatefulFirewall", nil},
		{"ChangeEnforcer", nil},
		{"CheckIPHeader", nil},
	}
	for _, c := range ok {
		if err := click.Lookup(c.class)().Configure(c.args); err != nil {
			t.Errorf("%s.Configure(%v): %v", c.class, c.args, err)
		}
	}
}
