// Package vswitch implements the platform's back-end software switch
// (paper §4.3/§5): an OpenFlow-style rule table the controller
// programs so that traffic for a module's address/protocol/port
// reaches its processing module, plus the switch controller that
// detects new flows (a TCP SYN or a first UDP packet) — the trigger
// for on-the-fly VM instantiation.
//
// Dispatch is sharded: per-flow state (the flow cache, the new-flow
// set, the outage buffer and its drop counters) is split across N
// shards by a hash of the five-tuple, so concurrent senders contend
// only when their flows land on the same shard. The rule table itself
// is shared under a read-write lock — table changes are rare, packet
// dispatch is constant. Packets of one flow always hash to the same
// shard and each shard dispatches serially, so per-flow ordering is
// exactly that of the old single-lock switch (the package's property
// tests assert this equivalence).
package vswitch

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/in-net/innet/internal/packet"
)

// ActionKind says what to do with a matching packet.
type ActionKind int

// Actions.
const (
	// ActDrop discards the packet.
	ActDrop ActionKind = iota
	// ActToModule hands the packet to the platform datapath for the
	// rule's module address.
	ActToModule
	// ActOutput forwards through a switch port (pass-through).
	ActOutput
)

func (a ActionKind) String() string {
	switch a {
	case ActDrop:
		return "drop"
	case ActToModule:
		return "to-module"
	case ActOutput:
		return "output"
	default:
		return "unknown"
	}
}

// Match is a wildcard-capable OpenFlow-style match. Zero fields are
// wildcards (Proto: 0 is an invalid IP protocol in practice, so it
// serves as the wildcard).
type Match struct {
	DstIP   uint32
	Proto   packet.Proto
	DstPort uint16
}

// Covers reports whether the match accepts a packet.
func (m Match) Covers(p *packet.Packet) bool {
	if m.DstIP != 0 && p.DstIP != m.DstIP {
		return false
	}
	if m.Proto != 0 && p.Protocol != m.Proto {
		return false
	}
	if m.DstPort != 0 && p.DstPort != m.DstPort {
		return false
	}
	return true
}

// specificity orders overlapping rules (more fields = higher).
func (m Match) specificity() int {
	n := 0
	if m.DstIP != 0 {
		n++
	}
	if m.Proto != 0 {
		n++
	}
	if m.DstPort != 0 {
		n++
	}
	return n
}

// Rule is one flow-table entry.
type Rule struct {
	Priority int
	Match    Match
	Action   ActionKind
	// Module is the module address for ActToModule.
	Module uint32
	// Port is the output port for ActOutput.
	Port int
	// hits counts matched packets (accessed atomically: shards
	// dispatch concurrently; a plain word keeps Rule copyable for the
	// Install(Rule{...}) literal API).
	hits uint64
}

// Hits returns the number of packets this rule matched.
func (r *Rule) Hits() uint64 { return atomic.LoadUint64(&r.hits) }

// shard owns the per-flow dispatch state for one slice of the flow
// space. The maps and the buffer are guarded by mu, which is only
// ever acquired while holding the switch's table lock (read or
// write). The counters are atomics: they are written under the shard
// lock but read lock-free by the stats accessors (PerShard, Misses,
// DroppedDown, ...), so a telemetry scrape never blocks dispatch.
// (Audit note: the previous mutex-guarded counter reads were not racy
// — every writer held sh.mu — but a snapshot serialized against every
// shard's dispatch; see TestStatsRaceWithDispatch.)
type shard struct {
	mu        sync.Mutex
	flowCache map[packet.FiveTuple]*Rule
	seen      map[packet.FiveTuple]bool
	// buffer parks packets while the platform is down; replayed in
	// arrival order per shard on recovery.
	buffer []*packet.Packet
	// one is scratch for delivering a single packet through the batch
	// sink without allocating (guarded by mu like the maps).
	one [1]*packet.Packet
	// Per-shard counters; aggregated by the Switch accessors.
	// dispatched counts packets that reached a rule action (the
	// switch's throughput counter); buffered mirrors len(buffer).
	misses, newFlows, droppedDown, redispatched, dispatched atomic.Uint64
	buffered                                                atomic.Int64
}

// Switch is the software switch.
type Switch struct {
	// mu guards the rule table and the down flag. Dispatch takes it
	// shared; Install/Remove/SetDown take it exclusive.
	mu     sync.RWMutex
	rules  []*Rule
	down   bool
	shards []*shard
	// shardShift extracts the top log2(len(shards)) bits of the
	// mixed flow hash (shard counts are powers of two; 64 when there
	// is a single shard, which shifts everything out to index 0).
	shardShift uint

	// buffered is the total outage-buffer occupancy across shards
	// (BufferLimit bounds the total, not each shard, so sharding
	// never changes how many packets an outage can park).
	buffered atomic.Int64

	// OnNewFlow, if set, fires for each new flow (first UDP packet or
	// TCP SYN) before the action applies — the §5 switch controller
	// hook.
	OnNewFlow func(p *packet.Packet)
	// ToModule delivers ActToModule packets (the platform datapath).
	ToModule func(module uint32, p *packet.Packet)
	// ToModuleBatch, when set, takes precedence over ToModule: runs of
	// consecutive same-module packets inside a ProcessBatch call are
	// delivered as one slice (the compiled-pipeline fast path). The
	// slice is only valid for the duration of the call. Per-module
	// packet order is batch order, exactly as with ToModule.
	ToModuleBatch func(module uint32, pkts []*packet.Packet)
	// Output delivers ActOutput packets.
	Output func(port int, p *packet.Packet)

	// BufferLimit bounds the outage buffer across all shards (default
	// 512; overflow is counted in DroppedDown).
	BufferLimit int
}

// New returns an empty single-shard switch: dispatch behaves exactly
// like the historical single-lock implementation (global arrival
// order preserved across flows, one outage buffer).
func New() *Switch { return NewSharded(1) }

// DefaultShards is the shard count platforms use for the concurrent
// fast path.
const DefaultShards = 4

// NewSharded returns an empty switch whose per-flow dispatch state is
// split across n shards (n < 1 is treated as 1; other counts round up
// to a power of two so shard selection is a multiply and a shift).
// Per-flow ordering is preserved for any n; cross-flow arrival order
// is only defined per shard.
func NewSharded(n int) *Switch {
	if n < 1 {
		n = 1
	}
	for n&(n-1) != 0 {
		n++
	}
	s := &Switch{shards: make([]*shard, n), shardShift: uint(64 - bits.Len(uint(n-1)))}
	for i := range s.shards {
		s.shards[i] = &shard{
			flowCache: make(map[packet.FiveTuple]*Rule),
			seen:      make(map[packet.FiveTuple]bool),
		}
	}
	return s
}

// Shards returns the shard count.
func (s *Switch) Shards() int { return len(s.shards) }

// shardIndex hashes a five-tuple onto a shard slot (a Fibonacci
// multiplicative hash over the packed tuple — a handful of ALU ops,
// cheap enough to pay on every packet). The index is the TOP
// log2(shards) bits of the product: multiplication only carries
// upward, so the top bits are the ones every input bit influences.
// Every packet of a flow lands on the same shard.
func (s *Switch) shardIndex(t packet.FiveTuple) int {
	h := uint64(t.SrcIP)<<32 | uint64(t.DstIP)
	h ^= uint64(t.SrcPort)<<48 | uint64(t.DstPort)<<32 | uint64(t.Protocol)
	return int(h * 0x9e3779b97f4a7c15 >> s.shardShift)
}

func (s *Switch) shardFor(t packet.FiveTuple) *shard {
	return s.shards[s.shardIndex(t)]
}

// Install adds a rule and reorders the table (priority desc, then
// specificity desc). Every shard's flow cache is cleared.
func (s *Switch) Install(r Rule) *Rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	rule := &Rule{
		Priority: r.Priority, Match: r.Match, Action: r.Action,
		Module: r.Module, Port: r.Port,
	}
	s.rules = append(s.rules, rule)
	sort.SliceStable(s.rules, func(i, j int) bool {
		if s.rules[i].Priority != s.rules[j].Priority {
			return s.rules[i].Priority > s.rules[j].Priority
		}
		return s.rules[i].Match.specificity() > s.rules[j].Match.specificity()
	})
	s.clearFlowCachesLocked()
	return rule
}

// Remove deletes a rule.
func (s *Switch) Remove(rule *Rule) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rules {
		if r == rule {
			s.rules = append(s.rules[:i], s.rules[i+1:]...)
			s.clearFlowCachesLocked()
			return nil
		}
	}
	return fmt.Errorf("vswitch: rule not installed")
}

// clearFlowCachesLocked resets every shard's flow cache (table
// changed). Caller holds the table lock exclusively, so no shard is
// mid-dispatch.
func (s *Switch) clearFlowCachesLocked() {
	for _, sh := range s.shards {
		sh.flowCache = make(map[packet.FiveTuple]*Rule)
	}
}

// Rules returns the current table size.
func (s *Switch) Rules() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rules)
}

// SetDown marks the switch's platform as failed (true) or recovered
// (false). While down, Process buffers up to BufferLimit packets
// (total, across shards); recovery replays each shard's buffer in
// arrival order — so per-flow order survives the outage — before any
// concurrently arriving packet dispatches.
func (s *Switch) SetDown(down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down == down {
		return
	}
	s.down = down
	if down {
		return
	}
	// Replay under the exclusive table lock: packets racing SetDown
	// wait on the read lock, so everything buffered during the outage
	// dispatches before anything that arrives after recovery.
	var run *moduleRun
	if s.ToModuleBatch != nil {
		run = &moduleRun{}
	}
	for _, sh := range s.shards {
		buf := sh.buffer
		sh.buffer = nil
		sh.buffered.Store(0)
		s.buffered.Add(int64(-len(buf)))
		for _, p := range buf {
			sh.redispatched.Add(1)
			s.dispatch(sh, p, run)
		}
		s.flushRun(run)
	}
}

// IsDown reports whether the switch is buffering for a failed
// platform.
func (s *Switch) IsDown() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.down
}

// Buffered returns the number of packets parked in the outage buffers.
func (s *Switch) Buffered() int { return int(s.buffered.Load()) }

// Process runs one packet through the table. Safe for concurrent use;
// packets of the same flow are dispatched in call order provided their
// Process calls are themselves ordered (same sender goroutine).
func (s *Switch) Process(p *packet.Packet) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh := s.shardFor(p.Tuple())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.processOnShardLocked(sh, p, nil)
}

// moduleRun accumulates a run of consecutive same-module packets for
// one ToModuleBatch delivery.
type moduleRun struct {
	module uint32
	pkts   []*packet.Packet
}

// flushRun hands the accumulated run to the batch sink and resets it.
func (s *Switch) flushRun(run *moduleRun) {
	if run == nil || len(run.pkts) == 0 {
		return
	}
	s.ToModuleBatch(run.module, run.pkts)
	run.pkts = run.pkts[:0]
}

// dispatch matches and applies one packet on a shard. The caller
// holds the table lock (shared or exclusive) and the shard lock. run,
// when non-nil, is the caller's batch accumulator: to-module packets
// are parked there instead of delivered immediately (the caller
// flushes at batch end), so a burst for one module crosses into the
// datapath as a single batch.
func (s *Switch) dispatch(sh *shard, p *packet.Packet, run *moduleRun) {
	t := p.Tuple()
	if !sh.seen[t] {
		isNew := p.Protocol == packet.ProtoUDP ||
			(p.Protocol == packet.ProtoTCP && p.TCPFlags&packet.TCPSyn != 0 && p.TCPFlags&packet.TCPAck == 0) ||
			p.Protocol == packet.ProtoICMP
		if isNew {
			sh.seen[t] = true
			sh.newFlows.Add(1)
			if s.OnNewFlow != nil {
				s.OnNewFlow(p)
			}
		}
	}
	rule := sh.flowCache[t]
	if rule == nil {
		for _, r := range s.rules {
			if r.Match.Covers(p) {
				rule = r
				break
			}
		}
		if rule == nil {
			sh.misses.Add(1)
			return
		}
		sh.flowCache[t] = rule
	}
	sh.dispatched.Add(1)
	atomic.AddUint64(&rule.hits, 1)
	switch rule.Action {
	case ActDrop:
	case ActToModule:
		switch {
		case s.ToModuleBatch != nil && run != nil:
			if len(run.pkts) > 0 && run.module != rule.Module {
				s.flushRun(run)
			}
			run.module = rule.Module
			run.pkts = append(run.pkts, p)
		case s.ToModuleBatch != nil:
			sh.one[0] = p
			s.ToModuleBatch(rule.Module, sh.one[:1])
			sh.one[0] = nil
		case s.ToModule != nil:
			s.ToModule(rule.Module, p)
		}
	case ActOutput:
		// Keep output-vs-module ordering: anything parked for the
		// datapath leaves before this packet does.
		s.flushRun(run)
		if s.Output != nil {
			s.Output(rule.Port, p)
		}
	}
}

// ExpireFlow forgets a five-tuple (connection teardown), so a later
// packet counts as a new flow again.
func (s *Switch) ExpireFlow(t packet.FiveTuple) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh := s.shardFor(t)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.seen, t)
	delete(sh.flowCache, t)
}

// sumShards aggregates one per-shard counter. The shards slice is
// immutable after construction and the counters are atomics, so the
// sum is wait-free: a metrics scrape never serializes against
// dispatch (it may observe a burst mid-flight, which is fine for
// monotonic counters).
func (s *Switch) sumShards(f func(*shard) uint64) uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += f(sh)
	}
	return n
}

// Misses counts packets matching no rule (dropped), across shards.
func (s *Switch) Misses() uint64 {
	return s.sumShards(func(sh *shard) uint64 { return sh.misses.Load() })
}

// NewFlows counts detected flow starts, across shards.
func (s *Switch) NewFlows() uint64 {
	return s.sumShards(func(sh *shard) uint64 { return sh.newFlows.Load() })
}

// DroppedDown counts packets dropped because the outage buffer
// overflowed, across shards.
func (s *Switch) DroppedDown() uint64 {
	return s.sumShards(func(sh *shard) uint64 { return sh.droppedDown.Load() })
}

// Redispatched counts buffered packets replayed after a recovery,
// across shards.
func (s *Switch) Redispatched() uint64 {
	return s.sumShards(func(sh *shard) uint64 { return sh.redispatched.Load() })
}

// Dispatched counts packets that matched a rule and had its action
// applied, across shards — the switch's throughput counter.
func (s *Switch) Dispatched() uint64 {
	return s.sumShards(func(sh *shard) uint64 { return sh.dispatched.Load() })
}

// ShardStats reports one shard's accounting (for the per-shard
// counter-audit tests and operator introspection).
type ShardStats struct {
	Misses, NewFlows, DroppedDown, Redispatched, Dispatched uint64
	Buffered                                                int
}

// PerShard snapshots every shard's stats in shard order. The snapshot
// is wait-free: counters are atomics and the buffer occupancy is
// mirrored in an atomic, so PerShard is safe to call concurrently
// with ProcessBatch and never blocks a dispatching shard.
func (s *Switch) PerShard() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStats{
			Misses: sh.misses.Load(), NewFlows: sh.newFlows.Load(),
			DroppedDown: sh.droppedDown.Load(), Redispatched: sh.redispatched.Load(),
			Dispatched: sh.dispatched.Load(),
			Buffered:   int(sh.buffered.Load()),
		}
	}
	return out
}

// ProcessBatch runs a burst of packets through the table under one
// table-lock acquisition, holding each shard lock across runs of
// consecutive same-shard packets instead of re-taking it per packet.
// Packets dispatch in batch order, so the ordering guarantees are
// those of calling Process sequentially — the batch amortizes lock
// traffic, and with a ToModuleBatch sink it also coalesces runs of
// same-module packets into single datapath deliveries. Without a batch
// sink it allocates nothing; with one, at most one run buffer per
// call.
func (s *Switch) ProcessBatch(pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var run *moduleRun
	if s.ToModuleBatch != nil {
		run = &moduleRun{pkts: make([]*packet.Packet, 0, len(pkts))}
	}
	var held *shard
	for _, p := range pkts {
		sh := s.shardFor(p.Tuple())
		if sh != held {
			if held != nil {
				held.mu.Unlock()
			}
			sh.mu.Lock()
			held = sh
		}
		s.processOnShardLocked(sh, p, run)
	}
	if held != nil {
		held.mu.Unlock()
	}
	// The final run is flushed after the last shard lock is released:
	// the packets already dispatched (counters, flow cache) and only
	// delivery remains, so a slow datapath does not hold up the shard.
	s.flushRun(run)
}

// processOnShardLocked is Process's body after the locks are held:
// outage buffering or dispatch.
func (s *Switch) processOnShardLocked(sh *shard, p *packet.Packet, run *moduleRun) {
	if s.down {
		limit := s.BufferLimit
		if limit <= 0 {
			limit = 512
		}
		if n := s.buffered.Add(1); n > int64(limit) {
			s.buffered.Add(-1)
			sh.droppedDown.Add(1)
			return
		}
		sh.buffer = append(sh.buffer, p)
		sh.buffered.Add(1)
		return
	}
	s.dispatch(sh, p, run)
}

// ShardOf reports which shard a five-tuple dispatches on (stable for
// the life of the switch) — introspection for tests, benchmarks and
// RSS-style flow steering.
func (s *Switch) ShardOf(t packet.FiveTuple) int { return s.shardIndex(t) }
