// Package vswitch implements the platform's back-end software switch
// (paper §4.3/§5): an OpenFlow-style rule table the controller
// programs so that traffic for a module's address/protocol/port
// reaches its processing module, plus the switch controller that
// detects new flows (a TCP SYN or a first UDP packet) — the trigger
// for on-the-fly VM instantiation.
package vswitch

import (
	"fmt"
	"sort"

	"github.com/in-net/innet/internal/packet"
)

// ActionKind says what to do with a matching packet.
type ActionKind int

// Actions.
const (
	// ActDrop discards the packet.
	ActDrop ActionKind = iota
	// ActToModule hands the packet to the platform datapath for the
	// rule's module address.
	ActToModule
	// ActOutput forwards through a switch port (pass-through).
	ActOutput
)

func (a ActionKind) String() string {
	switch a {
	case ActDrop:
		return "drop"
	case ActToModule:
		return "to-module"
	case ActOutput:
		return "output"
	default:
		return "unknown"
	}
}

// Match is a wildcard-capable OpenFlow-style match. Zero fields are
// wildcards (Proto: 0 is an invalid IP protocol in practice, so it
// serves as the wildcard).
type Match struct {
	DstIP   uint32
	Proto   packet.Proto
	DstPort uint16
}

// Covers reports whether the match accepts a packet.
func (m Match) Covers(p *packet.Packet) bool {
	if m.DstIP != 0 && p.DstIP != m.DstIP {
		return false
	}
	if m.Proto != 0 && p.Protocol != m.Proto {
		return false
	}
	if m.DstPort != 0 && p.DstPort != m.DstPort {
		return false
	}
	return true
}

// specificity orders overlapping rules (more fields = higher).
func (m Match) specificity() int {
	n := 0
	if m.DstIP != 0 {
		n++
	}
	if m.Proto != 0 {
		n++
	}
	if m.DstPort != 0 {
		n++
	}
	return n
}

// Rule is one flow-table entry.
type Rule struct {
	Priority int
	Match    Match
	Action   ActionKind
	// Module is the module address for ActToModule.
	Module uint32
	// Port is the output port for ActOutput.
	Port int
	// Hits counts matched packets.
	Hits uint64
}

// Switch is the software switch.
type Switch struct {
	rules []*Rule
	// flowCache memoizes per-five-tuple decisions, cleared whenever
	// the rule table changes.
	flowCache map[packet.FiveTuple]*Rule
	seen      map[packet.FiveTuple]bool

	// OnNewFlow, if set, fires for each new flow (first UDP packet or
	// TCP SYN) before the action applies — the §5 switch controller
	// hook.
	OnNewFlow func(p *packet.Packet)
	// ToModule delivers ActToModule packets (the platform datapath).
	ToModule func(module uint32, p *packet.Packet)
	// Output delivers ActOutput packets.
	Output func(port int, p *packet.Packet)

	// Misses counts packets matching no rule (dropped).
	Misses uint64
	// NewFlows counts detected flow starts.
	NewFlows uint64

	// down buffers traffic while the attached platform is in an
	// outage; SetDown(false) re-dispatches the buffer through the
	// table so packets survive a recovery instead of vanishing.
	down   bool
	buffer []*packet.Packet
	// BufferLimit bounds the outage buffer (default 512; overflow is
	// counted in DroppedDown).
	BufferLimit int
	// DroppedDown counts packets dropped because the outage buffer
	// overflowed.
	DroppedDown uint64
	// Redispatched counts buffered packets replayed after a recovery.
	Redispatched uint64
}

// New returns an empty switch.
func New() *Switch {
	return &Switch{
		flowCache: make(map[packet.FiveTuple]*Rule),
		seen:      make(map[packet.FiveTuple]bool),
	}
}

// Install adds a rule and reorders the table (priority desc, then
// specificity desc).
func (s *Switch) Install(r Rule) *Rule {
	rule := &r
	s.rules = append(s.rules, rule)
	sort.SliceStable(s.rules, func(i, j int) bool {
		if s.rules[i].Priority != s.rules[j].Priority {
			return s.rules[i].Priority > s.rules[j].Priority
		}
		return s.rules[i].Match.specificity() > s.rules[j].Match.specificity()
	})
	s.flowCache = make(map[packet.FiveTuple]*Rule)
	return rule
}

// Remove deletes a rule.
func (s *Switch) Remove(rule *Rule) error {
	for i, r := range s.rules {
		if r == rule {
			s.rules = append(s.rules[:i], s.rules[i+1:]...)
			s.flowCache = make(map[packet.FiveTuple]*Rule)
			return nil
		}
	}
	return fmt.Errorf("vswitch: rule not installed")
}

// Rules returns the current table size.
func (s *Switch) Rules() int { return len(s.rules) }

// SetDown marks the switch's platform as failed (true) or recovered
// (false). While down, Process buffers up to BufferLimit packets;
// recovery replays them through the table in arrival order.
func (s *Switch) SetDown(down bool) {
	if s.down == down {
		return
	}
	s.down = down
	if down {
		return
	}
	buf := s.buffer
	s.buffer = nil
	for _, p := range buf {
		s.Redispatched++
		s.Process(p)
	}
}

// IsDown reports whether the switch is buffering for a failed
// platform.
func (s *Switch) IsDown() bool { return s.down }

// Buffered returns the number of packets parked in the outage buffer.
func (s *Switch) Buffered() int { return len(s.buffer) }

// Process runs one packet through the table.
func (s *Switch) Process(p *packet.Packet) {
	if s.down {
		limit := s.BufferLimit
		if limit <= 0 {
			limit = 512
		}
		if len(s.buffer) >= limit {
			s.DroppedDown++
			return
		}
		s.buffer = append(s.buffer, p)
		return
	}
	t := p.Tuple()
	if !s.seen[t] {
		isNew := p.Protocol == packet.ProtoUDP ||
			(p.Protocol == packet.ProtoTCP && p.TCPFlags&packet.TCPSyn != 0 && p.TCPFlags&packet.TCPAck == 0) ||
			p.Protocol == packet.ProtoICMP
		if isNew {
			s.seen[t] = true
			s.NewFlows++
			if s.OnNewFlow != nil {
				s.OnNewFlow(p)
			}
		}
	}
	rule := s.flowCache[t]
	if rule == nil {
		for _, r := range s.rules {
			if r.Match.Covers(p) {
				rule = r
				break
			}
		}
		if rule == nil {
			s.Misses++
			return
		}
		s.flowCache[t] = rule
	}
	rule.Hits++
	switch rule.Action {
	case ActDrop:
	case ActToModule:
		if s.ToModule != nil {
			s.ToModule(rule.Module, p)
		}
	case ActOutput:
		if s.Output != nil {
			s.Output(rule.Port, p)
		}
	}
}

// ExpireFlow forgets a five-tuple (connection teardown), so a later
// packet counts as a new flow again.
func (s *Switch) ExpireFlow(t packet.FiveTuple) {
	delete(s.seen, t)
	delete(s.flowCache, t)
}
