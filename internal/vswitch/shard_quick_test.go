package vswitch

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/in-net/innet/internal/packet"
)

// Property tests for the sharded dispatch path: sharding must be
// invisible per flow. Packets carry (flow, seq) in their payload so
// the delivery callbacks can audit ordering without trusting the
// switch's own bookkeeping.

func flowPacket(flow, seq int, dst uint32) *packet.Packet {
	return &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("8.8.8.8"),
		DstIP:    dst,
		SrcPort:  uint16(1024 + flow),
		DstPort:  1500, TTL: 64,
		Payload: []byte{byte(flow), byte(seq >> 8), byte(seq)},
	}
}

func payloadFlowSeq(p *packet.Packet) (int, int) {
	return int(p.Payload[0]), int(p.Payload[1])<<8 | int(p.Payload[2])
}

// TestShardedPerFlowOrderQuick: under concurrent senders and random
// per-sender schedules, every flow's packets are delivered exactly
// once and in send order, and flow starts are detected exactly once
// per flow. Run with -race in CI, this is also the data-race audit of
// the sharded path.
func TestShardedPerFlowOrderQuick(t *testing.T) {
	mod := packet.MustParseIP("198.51.100.10")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := []int{1, 2, 4, 8}[rng.Intn(4)]
		senders := 2 + rng.Intn(3)
		flowsPer := 1 + rng.Intn(3)
		perFlow := 20 + rng.Intn(60)

		s := NewSharded(shards)
		s.Install(Rule{Priority: 1, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
		var mu sync.Mutex
		got := make(map[int][]int) // flow -> delivered seqs
		s.ToModule = func(_ uint32, p *packet.Packet) {
			flow, seq := payloadFlowSeq(p)
			mu.Lock()
			got[flow] = append(got[flow], seq)
			mu.Unlock()
		}

		var wg sync.WaitGroup
		for w := 0; w < senders; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each sender owns its flows and interleaves them in a
				// random but per-flow-ordered schedule.
				seqs := make([]int, flowsPer)
				r := rand.New(rand.NewSource(int64(w)*7919 + 1))
				for sent := 0; sent < flowsPer*perFlow; sent++ {
					fl := r.Intn(flowsPer)
					for seqs[fl] >= perFlow {
						fl = (fl + 1) % flowsPer
					}
					flowID := w*flowsPer + fl
					s.Process(flowPacket(flowID, seqs[fl], mod))
					seqs[fl]++
				}
			}(w)
		}
		wg.Wait()

		totalFlows := senders * flowsPer
		if len(got) != totalFlows {
			t.Logf("seed %d: %d flows delivered, want %d", seed, len(got), totalFlows)
			return false
		}
		for flow, seqs := range got {
			if len(seqs) != perFlow {
				t.Logf("seed %d: flow %d delivered %d packets, want %d", seed, flow, len(seqs), perFlow)
				return false
			}
			for i, seq := range seqs {
				if seq != i {
					t.Logf("seed %d: flow %d out of order at %d: got seq %d", seed, flow, i, seq)
					return false
				}
			}
		}
		if int(s.NewFlows()) != totalFlows {
			t.Logf("seed %d: NewFlows = %d, want %d", seed, s.NewFlows(), totalFlows)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSingleLockQuick: the same random packet sequence,
// applied sequentially, produces identical per-flow delivery and
// identical counters on the single-shard switch and a sharded one —
// including across a down/up cycle (buffer replay).
func TestShardedMatchesSingleLockQuick(t *testing.T) {
	mod := packet.MustParseIP("198.51.100.10")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flows := 1 + rng.Intn(6)
		n := 40 + rng.Intn(120)
		downAt, upAt := -1, -1
		if rng.Intn(2) == 0 {
			downAt = rng.Intn(n)
			upAt = downAt + rng.Intn(n-downAt)
		}

		runOne := func(s *Switch) (map[int][]int, []uint64) {
			s.Install(Rule{Priority: 1, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
			got := make(map[int][]int)
			s.ToModule = func(_ uint32, p *packet.Packet) {
				flow, seq := payloadFlowSeq(p)
				got[flow] = append(got[flow], seq)
			}
			r := rand.New(rand.NewSource(seed + 1))
			seqs := make([]int, flows)
			for i := 0; i < n; i++ {
				if i == downAt {
					s.SetDown(true)
				}
				if i == upAt {
					s.SetDown(false)
				}
				fl := r.Intn(flows)
				s.Process(flowPacket(fl, seqs[fl], mod))
				seqs[fl]++
			}
			s.SetDown(false) // drain any remaining buffer
			return got, []uint64{s.Misses(), s.NewFlows(), s.DroppedDown(), s.Redispatched()}
		}

		gotSingle, countersSingle := runOne(New())
		gotSharded, countersSharded := runOne(NewSharded(4))

		for i := range countersSingle {
			if countersSingle[i] != countersSharded[i] {
				t.Logf("seed %d: counter %d: single=%d sharded=%d", seed, i, countersSingle[i], countersSharded[i])
				return false
			}
		}
		if len(gotSingle) != len(gotSharded) {
			t.Logf("seed %d: flow sets differ: %d vs %d", seed, len(gotSingle), len(gotSharded))
			return false
		}
		for flow, seqs := range gotSingle {
			other := gotSharded[flow]
			if len(seqs) != len(other) {
				t.Logf("seed %d: flow %d: single delivered %d, sharded %d", seed, flow, len(seqs), len(other))
				return false
			}
			for i := range seqs {
				if seqs[i] != other[i] {
					t.Logf("seed %d: flow %d diverges at %d: single seq %d, sharded seq %d", seed, flow, i, seqs[i], other[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestProcessBatchMatchesProcessQuick: ProcessBatch is Process called
// in batch order — same deliveries, same counters.
func TestProcessBatchMatchesProcessQuick(t *testing.T) {
	mod := packet.MustParseIP("198.51.100.10")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flows := 1 + rng.Intn(6)
		n := 30 + rng.Intn(100)
		batch := 1 + rng.Intn(16)

		build := func() []*packet.Packet {
			r := rand.New(rand.NewSource(seed + 2))
			seqs := make([]int, flows)
			pkts := make([]*packet.Packet, n)
			for i := range pkts {
				fl := r.Intn(flows)
				pkts[i] = flowPacket(fl, seqs[fl], mod)
				seqs[fl]++
			}
			return pkts
		}
		runOne := func(s *Switch, batched bool) (map[int][]int, []uint64) {
			s.Install(Rule{Priority: 1, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
			got := make(map[int][]int)
			s.ToModule = func(_ uint32, p *packet.Packet) {
				flow, seq := payloadFlowSeq(p)
				got[flow] = append(got[flow], seq)
			}
			pkts := build()
			if batched {
				for i := 0; i < len(pkts); i += batch {
					end := i + batch
					if end > len(pkts) {
						end = len(pkts)
					}
					s.ProcessBatch(pkts[i:end])
				}
			} else {
				for _, p := range pkts {
					s.Process(p)
				}
			}
			return got, []uint64{s.Misses(), s.NewFlows(), s.DroppedDown(), s.Redispatched()}
		}

		gotSeq, cSeq := runOne(NewSharded(4), false)
		gotBat, cBat := runOne(NewSharded(4), true)
		for i := range cSeq {
			if cSeq[i] != cBat[i] {
				t.Logf("seed %d: counter %d: seq=%d batch=%d", seed, i, cSeq[i], cBat[i])
				return false
			}
		}
		for flow, seqs := range gotSeq {
			other := gotBat[flow]
			if len(seqs) != len(other) {
				t.Logf("seed %d: flow %d: seq delivered %d, batch %d", seed, flow, len(seqs), len(other))
				return false
			}
			for i := range seqs {
				if seqs[i] != other[i] {
					t.Logf("seed %d: flow %d diverges at %d", seed, flow, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
