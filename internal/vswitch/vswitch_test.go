package vswitch

import (
	"testing"

	"github.com/in-net/innet/internal/packet"
)

func tcpSyn(dst string, dport uint16) *packet.Packet {
	return &packet.Packet{
		Protocol: packet.ProtoTCP,
		SrcIP:    packet.MustParseIP("8.8.8.8"),
		DstIP:    packet.MustParseIP(dst),
		SrcPort:  1234, DstPort: dport,
		TCPFlags: packet.TCPSyn, TTL: 64,
	}
}

func udpPkt(dst string, dport uint16) *packet.Packet {
	return &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("8.8.8.8"),
		DstIP:    packet.MustParseIP(dst),
		SrcPort:  1234, DstPort: dport, TTL: 64,
	}
}

func TestRuleMatchingAndActions(t *testing.T) {
	s := New()
	var toModule []uint32
	var output []int
	s.ToModule = func(m uint32, p *packet.Packet) { toModule = append(toModule, m) }
	s.Output = func(port int, p *packet.Packet) { output = append(output, port) }

	mod := packet.MustParseIP("198.51.100.10")
	s.Install(Rule{Priority: 10, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
	s.Install(Rule{Priority: 0, Match: Match{}, Action: ActOutput, Port: 1})

	s.Process(udpPkt("198.51.100.10", 1500))
	s.Process(udpPkt("9.9.9.9", 80))
	if len(toModule) != 1 || toModule[0] != mod {
		t.Errorf("toModule = %v", toModule)
	}
	if len(output) != 1 || output[0] != 1 {
		t.Errorf("output = %v", output)
	}
}

func TestPrioritiesAndSpecificity(t *testing.T) {
	s := New()
	var got []string
	s.Output = func(port int, p *packet.Packet) {
		got = append(got, map[int]string{1: "specific", 2: "general"}[port])
	}
	mod := packet.MustParseIP("198.51.100.10")
	// Same priority: the more specific match (ip+proto+port) wins.
	s.Install(Rule{Priority: 5, Match: Match{DstIP: mod}, Action: ActOutput, Port: 2})
	s.Install(Rule{Priority: 5, Match: Match{DstIP: mod, Proto: packet.ProtoUDP, DstPort: 1500}, Action: ActOutput, Port: 1})
	s.Process(udpPkt("198.51.100.10", 1500))
	s.Process(udpPkt("198.51.100.10", 99))
	if len(got) != 2 || got[0] != "specific" || got[1] != "general" {
		t.Errorf("got = %v", got)
	}
}

func TestMissCounted(t *testing.T) {
	s := New()
	s.Process(udpPkt("1.2.3.4", 5))
	if s.Misses() != 1 {
		t.Errorf("misses = %d", s.Misses())
	}
}

func TestDropAction(t *testing.T) {
	s := New()
	fired := false
	s.Output = func(int, *packet.Packet) { fired = true }
	s.Install(Rule{Priority: 1, Match: Match{}, Action: ActDrop})
	s.Process(udpPkt("1.2.3.4", 5))
	if fired {
		t.Error("dropped packet was forwarded")
	}
}

func TestNewFlowDetection(t *testing.T) {
	s := New()
	s.Install(Rule{Match: Match{}, Action: ActDrop})
	var newFlows []packet.FiveTuple
	s.OnNewFlow = func(p *packet.Packet) { newFlows = append(newFlows, p.Tuple()) }

	// First UDP packet: new flow; repeats are not.
	u := udpPkt("1.1.1.1", 53)
	s.Process(u)
	s.Process(u)
	if len(newFlows) != 1 {
		t.Fatalf("udp new flows = %d", len(newFlows))
	}
	// TCP SYN starts a flow; a non-SYN packet of an unknown flow does
	// not (mid-connection packets must not boot VMs).
	syn := tcpSyn("2.2.2.2", 80)
	s.Process(syn)
	if len(newFlows) != 2 {
		t.Fatalf("tcp new flows = %d", len(newFlows))
	}
	ack := tcpSyn("3.3.3.3", 80)
	ack.TCPFlags = packet.TCPAck
	s.Process(ack)
	if len(newFlows) != 2 {
		t.Errorf("plain ACK detected as a new flow")
	}
	if s.NewFlows() != 2 {
		t.Errorf("NewFlows = %d", s.NewFlows())
	}
}

func TestFlowCacheInvalidationOnInstall(t *testing.T) {
	s := New()
	var ports []int
	s.Output = func(port int, p *packet.Packet) { ports = append(ports, port) }
	s.Install(Rule{Priority: 1, Match: Match{}, Action: ActOutput, Port: 1})
	p := udpPkt("1.1.1.1", 53)
	s.Process(p)
	// A higher-priority rule must take effect for cached flows too.
	s.Install(Rule{Priority: 9, Match: Match{Proto: packet.ProtoUDP}, Action: ActOutput, Port: 2})
	s.Process(p)
	if len(ports) != 2 || ports[0] != 1 || ports[1] != 2 {
		t.Errorf("ports = %v", ports)
	}
}

func TestRemoveRule(t *testing.T) {
	s := New()
	r := s.Install(Rule{Match: Match{}, Action: ActDrop})
	if s.Rules() != 1 {
		t.Fatal("install")
	}
	if err := s.Remove(r); err != nil {
		t.Fatal(err)
	}
	if s.Rules() != 0 {
		t.Error("remove")
	}
	if err := s.Remove(r); err == nil {
		t.Error("double remove accepted")
	}
	s.Process(udpPkt("1.1.1.1", 5))
	if s.Misses() != 1 {
		t.Error("removed rule still matches")
	}
}

func TestExpireFlow(t *testing.T) {
	s := New()
	s.Install(Rule{Match: Match{}, Action: ActDrop})
	n := 0
	s.OnNewFlow = func(p *packet.Packet) { n++ }
	u := udpPkt("1.1.1.1", 53)
	s.Process(u)
	s.ExpireFlow(u.Tuple())
	s.Process(u)
	if n != 2 {
		t.Errorf("new flow events = %d", n)
	}
}

func TestRuleHits(t *testing.T) {
	s := New()
	r := s.Install(Rule{Match: Match{}, Action: ActDrop})
	for i := 0; i < 3; i++ {
		s.Process(udpPkt("1.1.1.1", uint16(i)))
	}
	if r.Hits() != 3 {
		t.Errorf("hits = %d", r.Hits())
	}
}

func TestActionStrings(t *testing.T) {
	if ActDrop.String() != "drop" || ActToModule.String() != "to-module" ||
		ActOutput.String() != "output" || ActionKind(9).String() != "unknown" {
		t.Error("action strings")
	}
}

func BenchmarkProcessCached(b *testing.B) {
	s := New()
	mod := packet.MustParseIP("198.51.100.10")
	s.Install(Rule{Priority: 10, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
	s.ToModule = func(uint32, *packet.Packet) {}
	p := udpPkt("198.51.100.10", 1500)
	s.Process(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(p)
	}
}
