package vswitch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/in-net/innet/internal/packet"
)

// TestProcessMatchesNaiveScanQuick checks, with random rule tables
// and random packets, that the switch's (cached) decision always
// equals a naive highest-priority-first scan — i.e. the flow cache
// never changes semantics.
func TestProcessMatchesNaiveScanQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		_ = seed
		s := New()
		var rules []*Rule
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			m := Match{}
			if rng.Intn(2) == 0 {
				m.DstIP = uint32(1 + rng.Intn(4))
			}
			if rng.Intn(2) == 0 {
				m.Proto = packet.ProtoUDP
			}
			if rng.Intn(2) == 0 {
				m.DstPort = uint16(1 + rng.Intn(3))
			}
			r := s.Install(Rule{
				Priority: rng.Intn(3),
				Match:    m,
				Action:   ActOutput,
				Port:     i,
			})
			rules = append(rules, r)
		}
		// Naive reference: priority desc, specificity desc, stable.
		naive := func(p *packet.Packet) int {
			best := -1
			bestPrio, bestSpec := -1, -1
			for idx, r := range rules {
				if !r.Match.Covers(p) {
					continue
				}
				spec := r.Match.specificity()
				if r.Priority > bestPrio ||
					(r.Priority == bestPrio && spec > bestSpec) {
					best, bestPrio, bestSpec = idx, r.Priority, spec
					_ = idx
				}
			}
			if best < 0 {
				return -1
			}
			return rules[best].Port
		}
		for trial := 0; trial < 40; trial++ {
			p := &packet.Packet{
				Protocol: []packet.Proto{packet.ProtoUDP, packet.ProtoTCP}[rng.Intn(2)],
				SrcIP:    rng.Uint32(),
				DstIP:    uint32(1 + rng.Intn(5)),
				DstPort:  uint16(rng.Intn(5)),
				SrcPort:  uint16(rng.Intn(65536)),
				TTL:      64,
			}
			got := -1
			s.Output = func(port int, pk *packet.Packet) { got = port }
			got = -1
			s.Process(p)
			// Process twice: the second hit uses the flow cache.
			got2 := -1
			s.Output = func(port int, pk *packet.Packet) { got2 = port }
			s.Process(p)
			want := naive(p)
			if got != want || got2 != want {
				t.Logf("rules=%d pkt=%v got=%d cached=%d want=%d", len(rules), p, got, got2, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
