package vswitch

import (
	"io"
	"sync"
	"testing"

	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/telemetry"
)

// TestStatsRaceWithDispatch is the satellite audit's regression test:
// PerShard, DroppedDown and the other aggregate accessors must be
// safe — and under -race, provably so — while ProcessBatch and
// Process are concurrently mutating per-shard counters, including
// during an outage (buffering/overflow) and recovery (replay). The
// accessors are wait-free atomics, so this also pins that a stats
// scrape cannot deadlock or serialize against dispatch.
func TestStatsRaceWithDispatch(t *testing.T) {
	s := NewSharded(4)
	s.BufferLimit = 64
	mod := packet.MustParseIP("198.51.100.10")
	s.Install(Rule{Priority: 10, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
	s.ToModule = func(uint32, *packet.Packet) {}

	reg := telemetry.New()
	s.RegisterMetrics(reg, "platform", "race-test")

	const (
		senders = 4
		rounds  = 300
		batch   = 32
	)
	var writers sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < senders; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			pkts := make([]*packet.Packet, batch)
			for i := range pkts {
				pkts[i] = &packet.Packet{
					Protocol: packet.ProtoUDP,
					SrcIP:    packet.MustParseIP("8.8.8.8"),
					DstIP:    mod,
					SrcPort:  uint16(1024 + w*batch + i),
					DstPort:  1500, TTL: 64,
				}
			}
			<-start
			for i := 0; i < rounds; i++ {
				if i%2 == 0 {
					s.ProcessBatch(pkts)
				} else {
					for _, p := range pkts {
						s.Process(p)
					}
				}
			}
		}(w)
	}
	// One goroutine flaps the outage state so buffering, overflow
	// drops and replay all run concurrently with the stats readers.
	writers.Add(1)
	go func() {
		defer writers.Done()
		<-start
		for i := 0; i < 50; i++ {
			s.SetDown(true)
			s.SetDown(false)
		}
	}()
	// Stats reader: raw accessors, the per-shard snapshot, and a full
	// telemetry scrape, hammered until every writer is done.
	stopReader := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		<-start
		for {
			select {
			case <-stopReader:
				return
			default:
			}
			_ = s.PerShard()
			_ = s.DroppedDown()
			_ = s.Misses()
			_ = s.NewFlows()
			_ = s.Redispatched()
			_ = s.Dispatched()
			_ = s.Buffered()
			_ = reg.WritePrometheus(io.Discard)
		}
	}()
	close(start)
	writers.Wait()
	close(stopReader)
	reader.Wait()
}

// TestPerShardAccountingStillConsistent re-checks, after the counters
// moved to atomics, that the per-shard figures still sum to the
// aggregates once dispatch has quiesced.
func TestPerShardAccountingStillConsistent(t *testing.T) {
	s := NewSharded(4)
	mod := packet.MustParseIP("198.51.100.10")
	s.Install(Rule{Priority: 10, Match: Match{DstIP: mod}, Action: ActToModule, Module: mod})
	var delivered uint64
	s.ToModule = func(uint32, *packet.Packet) { delivered++ }
	other := packet.MustParseIP("203.0.113.7")
	for i := 0; i < 200; i++ {
		s.Process(&packet.Packet{
			Protocol: packet.ProtoUDP,
			SrcIP:    packet.MustParseIP("8.8.8.8"),
			DstIP:    mod,
			SrcPort:  uint16(1024 + i), DstPort: 1500, TTL: 64,
		})
		// Every third packet targets an address with no rule: a miss.
		if i%3 == 0 {
			s.Process(&packet.Packet{
				Protocol: packet.ProtoUDP,
				SrcIP:    packet.MustParseIP("8.8.8.8"),
				DstIP:    other,
				SrcPort:  uint16(5000 + i), DstPort: 1500, TTL: 64,
			})
		}
	}
	var misses, newFlows, dispatched uint64
	for _, st := range s.PerShard() {
		misses += st.Misses
		newFlows += st.NewFlows
		dispatched += st.Dispatched
	}
	if misses != s.Misses() || misses != 67 {
		t.Errorf("misses: per-shard %d, aggregate %d, want 67", misses, s.Misses())
	}
	if newFlows != s.NewFlows() || newFlows != 267 {
		t.Errorf("new flows: per-shard %d, aggregate %d, want 267", newFlows, s.NewFlows())
	}
	if dispatched != s.Dispatched() || dispatched != delivered {
		t.Errorf("dispatched: per-shard %d, aggregate %d, delivered %d", dispatched, s.Dispatched(), delivered)
	}
}
