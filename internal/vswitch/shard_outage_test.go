package vswitch

import (
	"testing"

	"github.com/in-net/innet/internal/packet"
)

// Per-shard outage accounting: with the buffer and drop counters split
// across shards, every packet sent during an outage must be accounted
// exactly once — buffered or dropped, never both, never twice — and
// the per-shard stats must sum to the aggregate counters.
func TestShardOutageAccounting(t *testing.T) {
	s := NewSharded(4)
	s.BufferLimit = 8
	s.Install(Rule{Match: Match{}, Action: ActOutput, Port: 1})
	delivered := 0
	s.Output = func(int, *packet.Packet) { delivered++ }

	s.SetDown(true)
	const sent = 40
	for i := 0; i < sent; i++ {
		// Distinct flows spread across shards.
		s.Process(udpPkt("10.0.0.1", uint16(2000+i)))
	}

	if s.Buffered() != s.BufferLimit {
		t.Errorf("Buffered = %d, want %d", s.Buffered(), s.BufferLimit)
	}
	if got := s.DroppedDown(); got != sent-uint64(s.BufferLimit) {
		t.Errorf("DroppedDown = %d, want %d", got, sent-s.BufferLimit)
	}
	per := s.PerShard()
	if len(per) != 4 {
		t.Fatalf("PerShard len = %d", len(per))
	}
	var sumBuf int
	var sumDrop uint64
	for _, st := range per {
		sumBuf += st.Buffered
		sumDrop += st.DroppedDown
	}
	if sumBuf != s.Buffered() {
		t.Errorf("per-shard buffered sums to %d, aggregate %d", sumBuf, s.Buffered())
	}
	if sumDrop != s.DroppedDown() {
		t.Errorf("per-shard drops sum to %d, aggregate %d", sumDrop, s.DroppedDown())
	}
	if uint64(sumBuf)+sumDrop != sent {
		t.Errorf("buffered %d + dropped %d != sent %d", sumBuf, sumDrop, sent)
	}

	s.SetDown(false)
	if delivered != s.BufferLimit {
		t.Errorf("delivered %d after recovery, want %d", delivered, s.BufferLimit)
	}
	if got := s.Redispatched(); got != uint64(s.BufferLimit) {
		t.Errorf("Redispatched = %d, want %d", got, s.BufferLimit)
	}
	var sumRe uint64
	for _, st := range s.PerShard() {
		sumRe += st.Redispatched
		if st.Buffered != 0 {
			t.Errorf("shard still buffering %d after recovery", st.Buffered)
		}
	}
	if sumRe != s.Redispatched() {
		t.Errorf("per-shard redispatched sums to %d, aggregate %d", sumRe, s.Redispatched())
	}
	if s.Buffered() != 0 {
		t.Errorf("Buffered = %d after recovery", s.Buffered())
	}

	// A second outage keeps accounting exact — counters accumulate,
	// nothing is re-counted from the first round.
	s.SetDown(true)
	for i := 0; i < 4; i++ {
		s.Process(udpPkt("10.0.0.1", uint16(3000+i)))
	}
	s.SetDown(false)
	if got := s.Redispatched(); got != uint64(s.BufferLimit)+4 {
		t.Errorf("Redispatched after second outage = %d, want %d", got, s.BufferLimit+4)
	}
	if got := s.DroppedDown(); got != sent-uint64(s.BufferLimit) {
		t.Errorf("DroppedDown changed across outages: %d", got)
	}
}
