package vswitch

import (
	"testing"

	"github.com/in-net/innet/internal/packet"
)

func TestDownBuffersAndRedispatchesInOrder(t *testing.T) {
	s := New()
	var ports []uint16
	s.Output = func(port int, p *packet.Packet) { ports = append(ports, p.DstPort) }
	s.Install(Rule{Match: Match{}, Action: ActOutput, Port: 1})

	s.SetDown(true)
	for i := 0; i < 3; i++ {
		s.Process(udpPkt("10.0.0.1", uint16(1000+i)))
	}
	if len(ports) != 0 {
		t.Fatalf("processed %d packets while down", len(ports))
	}
	if s.Buffered() != 3 {
		t.Fatalf("buffered = %d", s.Buffered())
	}

	s.SetDown(false)
	if s.Buffered() != 0 {
		t.Errorf("buffered = %d after recovery", s.Buffered())
	}
	if s.Redispatched() != 3 {
		t.Errorf("redispatched = %d", s.Redispatched())
	}
	// Arrival order preserved.
	want := []uint16{1000, 1001, 1002}
	if len(ports) != 3 {
		t.Fatalf("delivered %d", len(ports))
	}
	for i, p := range want {
		if ports[i] != p {
			t.Errorf("ports[%d] = %d, want %d", i, ports[i], p)
		}
	}
}

func TestDownBufferBounded(t *testing.T) {
	s := New()
	s.BufferLimit = 2
	s.Install(Rule{Match: Match{}, Action: ActDrop})
	s.SetDown(true)
	for i := 0; i < 5; i++ {
		s.Process(udpPkt("10.0.0.1", 53))
	}
	if s.Buffered() != 2 {
		t.Errorf("buffered = %d, want 2", s.Buffered())
	}
	if s.DroppedDown() != 3 {
		t.Errorf("DroppedDown = %d, want 3", s.DroppedDown())
	}
}

func TestSetDownIdempotent(t *testing.T) {
	s := New()
	n := 0
	s.Output = func(int, *packet.Packet) { n++ }
	s.Install(Rule{Match: Match{}, Action: ActOutput, Port: 1})
	s.SetDown(true)
	s.SetDown(true)
	s.Process(udpPkt("10.0.0.1", 53))
	s.SetDown(false)
	s.SetDown(false) // second recovery must not replay again
	if n != 1 || s.Redispatched() != 1 {
		t.Errorf("delivered=%d redispatched=%d", n, s.Redispatched())
	}
	if s.IsDown() {
		t.Error("still down")
	}
}
