package vswitch

import (
	"fmt"
	"testing"

	"github.com/in-net/innet/internal/packet"
)

func sinkPkt(f uint32, i int, mod uint32) *packet.Packet {
	return &packet.Packet{
		SrcIP: 0x0a000000 + f, DstIP: mod,
		SrcPort: uint16(1000 + f), DstPort: 80,
		Protocol: packet.ProtoUDP, TTL: 64, UserID: f,
		Payload: []byte(fmt.Sprintf("f%d-p%d", f, i)),
	}
}

func twoModuleSwitch(t *testing.T, shards int) *Switch {
	t.Helper()
	s := NewSharded(shards)
	s.Install(Rule{Priority: 1, Match: Match{DstIP: 0xc0000201}, Action: ActToModule, Module: 0xc0000201})
	s.Install(Rule{Priority: 1, Match: Match{DstIP: 0xc0000202}, Action: ActToModule, Module: 0xc0000202})
	return s
}

// TestToModuleBatchEquivalence checks the batch sink sees exactly the
// per-module packet sequence the per-packet sink would, for both the
// single-packet and batched entry points.
func TestToModuleBatchEquivalence(t *testing.T) {
	mkBurst := func() []*packet.Packet {
		var pkts []*packet.Packet
		for i := 0; i < 12; i++ {
			for f := uint32(0); f < 5; f++ {
				mod := uint32(0xc0000201)
				if f%2 == 1 {
					mod = 0xc0000202
				}
				pkts = append(pkts, sinkPkt(f, i, mod))
			}
		}
		return pkts
	}

	perModule := func(s *Switch, batched bool) map[uint32][]string {
		got := make(map[uint32][]string)
		s.ToModule = nil
		s.ToModuleBatch = nil
		if batched {
			s.ToModuleBatch = func(mod uint32, pkts []*packet.Packet) {
				if len(pkts) == 0 {
					t.Error("empty batch delivered")
				}
				for _, p := range pkts {
					got[mod] = append(got[mod], string(p.Payload))
				}
			}
		} else {
			s.ToModule = func(mod uint32, p *packet.Packet) {
				got[mod] = append(got[mod], string(p.Payload))
			}
		}
		s.ProcessBatch(mkBurst())
		for _, p := range mkBurst()[:7] { // some single-packet traffic too
			s.Process(p)
		}
		return got
	}

	for _, shards := range []int{1, 4} {
		ref := perModule(twoModuleSwitch(t, shards), false)
		got := perModule(twoModuleSwitch(t, shards), true)
		if len(ref) != 2 || len(got) != 2 {
			t.Fatalf("shards=%d: modules ref=%d got=%d", shards, len(ref), len(got))
		}
		for mod, want := range ref {
			if len(got[mod]) != len(want) {
				t.Fatalf("shards=%d module %x: %d pkts, want %d", shards, mod, len(got[mod]), len(want))
			}
			for i := range want {
				if got[mod][i] != want[i] {
					t.Fatalf("shards=%d module %x pkt %d: got %q want %q",
						shards, mod, i, got[mod][i], want[i])
				}
			}
		}
	}
}

// TestToModuleBatchPrecedence: when both sinks are set, only the batch
// sink fires.
func TestToModuleBatchPrecedence(t *testing.T) {
	s := twoModuleSwitch(t, 1)
	var single, batched int
	s.ToModule = func(mod uint32, p *packet.Packet) { single++ }
	s.ToModuleBatch = func(mod uint32, pkts []*packet.Packet) { batched += len(pkts) }
	s.ProcessBatch([]*packet.Packet{sinkPkt(0, 0, 0xc0000201), sinkPkt(2, 0, 0xc0000201)})
	s.Process(sinkPkt(0, 1, 0xc0000201))
	if single != 0 || batched != 3 {
		t.Fatalf("single=%d batched=%d, want 0/3", single, batched)
	}
}

// TestToModuleBatchOutageReplay: packets buffered during an outage
// replay through the batch sink in per-flow order on recovery.
func TestToModuleBatchOutageReplay(t *testing.T) {
	s := twoModuleSwitch(t, 4)
	got := make(map[uint32][]string)
	s.ToModuleBatch = func(mod uint32, pkts []*packet.Packet) {
		for _, p := range pkts {
			got[p.UserID] = append(got[p.UserID], string(p.Payload))
		}
	}

	want := make(map[uint32][]string)
	push := func(i int) {
		for f := uint32(0); f < 6; f++ {
			mod := uint32(0xc0000201)
			if f%2 == 1 {
				mod = 0xc0000202
			}
			pk := sinkPkt(f, i, mod)
			want[f] = append(want[f], string(pk.Payload))
			s.ProcessBatch([]*packet.Packet{pk})
		}
	}

	push(0)
	s.SetDown(true)
	push(1)
	push(2)
	if s.Buffered() != 12 {
		t.Fatalf("buffered %d, want 12", s.Buffered())
	}
	s.SetDown(false)
	push(3)

	for f := uint32(0); f < 6; f++ {
		if len(got[f]) != len(want[f]) {
			t.Fatalf("flow %d: %d delivered, want %d", f, len(got[f]), len(want[f]))
		}
		for i := range want[f] {
			if got[f][i] != want[f][i] {
				t.Fatalf("flow %d pkt %d: got %q want %q", f, i, got[f][i], want[f][i])
			}
		}
	}
	if s.Redispatched() != 12 {
		t.Fatalf("redispatched %d, want 12", s.Redispatched())
	}
}
