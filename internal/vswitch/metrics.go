package vswitch

import (
	"github.com/in-net/innet/internal/telemetry"
)

// RegisterMetrics folds the switch's counters into a telemetry
// registry under the innet_vswitch_* families. The extra label pairs
// (e.g. "platform", name) distinguish switches when several are
// registered. Registration costs nothing on the dispatch path: the
// counters are the atomics dispatch already maintains, read by
// callback at scrape time.
func (s *Switch) RegisterMetrics(r *telemetry.Registry, labelPairs ...string) {
	if r == nil {
		return
	}
	r.CounterFunc("innet_vswitch_dispatched_total",
		"Packets that matched a rule and had its action applied.",
		func() float64 { return float64(s.Dispatched()) }, labelPairs...)
	r.CounterFunc("innet_vswitch_misses_total",
		"Packets matching no flow-table rule (dropped).",
		func() float64 { return float64(s.Misses()) }, labelPairs...)
	r.CounterFunc("innet_vswitch_new_flows_total",
		"Flow starts detected by the switch controller (first UDP packet or TCP SYN).",
		func() float64 { return float64(s.NewFlows()) }, labelPairs...)
	r.CounterFunc("innet_vswitch_dropped_down_total",
		"Packets dropped because the outage buffer overflowed while the platform was down.",
		func() float64 { return float64(s.DroppedDown()) }, labelPairs...)
	r.CounterFunc("innet_vswitch_redispatched_total",
		"Outage-buffered packets replayed after platform recovery.",
		func() float64 { return float64(s.Redispatched()) }, labelPairs...)
	r.GaugeFunc("innet_vswitch_buffered",
		"Packets currently parked in the outage buffers.",
		func() float64 { return float64(s.Buffered()) }, labelPairs...)
	r.GaugeFunc("innet_vswitch_rules",
		"Flow-table rules currently installed.",
		func() float64 { return float64(s.Rules()) }, labelPairs...)
	r.GaugeFunc("innet_vswitch_shards",
		"Dispatch shards in this switch.",
		func() float64 { return float64(s.Shards()) }, labelPairs...)
}

// RegisterDrops wires the switch's two drop classes into the unified
// drop-attribution hub under site "vswitch": flow-table misses
// (no_rule) and outage-buffer overflow (buffer_overflow). The readers
// are the lock-free shard sums dispatch already maintains.
func (s *Switch) RegisterDrops(d *telemetry.Drops) {
	if d == nil {
		return
	}
	d.Source("vswitch", "no_rule", s.Misses)
	d.Source("vswitch", "buffer_overflow", s.DroppedDown)
}
