// Package security implements the In-Net security rules (paper §2.1,
// §4.4, §7): anti-spoofing and "default-off" destination
// authorization, checked statically by symbolic execution of the
// processing module and enforced at three trust levels:
//
//   - Third parties may only send traffic to destinations that
//     explicitly agreed (a per-client whitelist) or implicitly agreed
//     (reply traffic to a host that contacted the module).
//   - The operator's own customers (clients) may send anywhere, but
//     are still subject to anti-spoofing.
//   - The operator's own modules are fully trusted; static analysis
//     only informs correctness.
//
// The verdicts mirror §4.4: a module is Safe (deploy as-is),
// NeedsSandbox (wrap in a ChangeEnforcer because conformance depends
// on runtime values), or Rejected (it provably violates the rules, or
// it demands transparent interposition the requester may not have).
package security

import (
	"fmt"
	"time"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

// TrustClass is who is asking for the deployment (Table 1 columns).
type TrustClass int

// Trust classes.
const (
	ThirdParty TrustClass = iota
	Client
	Operator
)

func (t TrustClass) String() string {
	switch t {
	case ThirdParty:
		return "third-party"
	case Client:
		return "client"
	case Operator:
		return "operator"
	default:
		return "unknown"
	}
}

// Verdict is the outcome of the security check.
type Verdict int

// Verdicts.
const (
	// Safe: deploy without runtime enforcement.
	Safe Verdict = iota
	// NeedsSandbox: deploy wrapped in a ChangeEnforcer (§4.4).
	NeedsSandbox
	// Rejected: provably violates the security rules.
	Rejected
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case NeedsSandbox:
		return "needs-sandbox"
	case Rejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Conformance classifies one egress flow's destination.
type Conformance int

// Per-flow conformance values.
const (
	// Always: the destination is provably authorized on every
	// concrete instantiation of this flow.
	Always Conformance = iota
	// Sometimes: authorization depends on runtime values.
	Sometimes
	// Never: the destination is provably unauthorized.
	Never
)

func (c Conformance) String() string {
	switch c {
	case Always:
		return "always"
	case Sometimes:
		return "sometimes"
	case Never:
		return "never"
	default:
		return "unknown"
	}
}

// Input describes one deployment to check.
type Input struct {
	// ModuleID names the module (element nodes get this prefix).
	ModuleID string
	// Module is the built Click configuration. Nil means an opaque
	// x86 VM stock module (always sandboxed for non-operators).
	Module *click.Router
	// Addr is the IP address the controller assigned to the module.
	Addr uint32
	// Trust is the requester's class.
	Trust TrustClass
	// Whitelist is the requester's explicitly-authorized destination
	// set (§2.1: "the user will keep its network operator updated
	// with a number of addresses that he owns and uses").
	Whitelist []uint32
	// Transparent is set when the deployment requests interposition
	// on traffic NOT addressed to the module (routers, NATs, DPI,
	// transparent proxies). Only the operator may interpose.
	Transparent bool
	// BanConnectionlessReplies implements the §7 amplification-attack
	// mitigation: implicit authorization can be forged by spoofing a
	// victim's source address on connectionless traffic (the DNS
	// amplification pattern), so under this policy a reply-to-sender
	// flow only counts as authorized when it is provably TCP — "in
	// fact, operators must choose between flexibility of client
	// processing and security."
	BanConnectionlessReplies bool
	// MaxSteps / Deadline bound the symbolic exploration (see
	// symexec.Injection); exhaustion surfaces as a symexec.ErrBudget
	// error so the controller can reject instead of hang.
	MaxSteps int
	Deadline time.Time
	// Workers fans path exploration across a worker pool and Memo
	// short-circuits per-element executions (see symexec.Injection).
	// Neither affects the Report in any way — parallel merge order is
	// deterministic and memo replay is exact — which the differential
	// battery in internal/controller enforces; they are therefore
	// excluded from admission cache keys.
	Workers int
	Memo    *symexec.Memo
}

// FlowFinding reports one egress flow's analysis.
type FlowFinding struct {
	ExitNode    string
	Conformance Conformance
	SpoofSafe   bool
	Detail      string
}

// Report is the full security-check result.
type Report struct {
	Verdict  Verdict
	Reasons  []string
	Findings []FlowFinding
	// Flows is the number of egress flows analyzed.
	Flows int
}

func (r *Report) addReason(format string, args ...any) {
	r.Reasons = append(r.Reasons, fmt.Sprintf(format, args...))
}

// Check statically verifies a deployment against the security rules.
func Check(in Input) (*Report, error) {
	rep := &Report{}

	// Rule 0: transparent interposition is an operator privilege —
	// tenants "can only process traffic destined to them" (§2.1).
	if in.Transparent && in.Trust != Operator {
		rep.Verdict = Rejected
		rep.addReason("%s tenants cannot interpose on traffic not addressed to their module", in.Trust)
		return rep, nil
	}

	// The operator's own modules generate traffic as they wish (§2.1).
	if in.Trust == Operator {
		rep.Verdict = Safe
		rep.addReason("operator modules are trusted; static analysis informs correctness only")
		return rep, nil
	}

	// Opaque x86 VMs cannot be analyzed: sandbox (§4.1, Table 1).
	if in.Module == nil {
		rep.Verdict = NeedsSandbox
		rep.addReason("x86 VM modules are opaque to static analysis")
		return rep, nil
	}

	net, entries, exits, err := topology.CompileStandaloneModule(in.ModuleID, in.Module)
	if err != nil {
		return nil, err
	}
	exitSet := make(map[string]bool, len(exits))
	for _, e := range exits {
		exitSet[e] = true
	}

	wl := symexec.Empty
	for _, ip := range in.Whitelist {
		wl = wl.Union(symexec.Single(uint64(ip)))
	}

	// Inject an unconstrained symbolic packet (§4.4) at every entry —
	// the FromNetfront ingress and any traffic generators — and
	// analyze all egress flows. The entry source variable feeds the
	// implicit-authorization and anti-spoofing rules. The platform
	// only delivers traffic addressed to the module, so ip_dst is
	// constrained (not rewritten) to the module address.
	var nAlways, nSometimes, nNever, nSpoof int
	for _, entry := range entries {
		init := symexec.NewState()
		srcVar, _ := init.Get(symexec.FieldSrcIP).IsVar()
		if !init.Constrain(symexec.FieldDstIP, symexec.Single(uint64(in.Addr))) {
			return nil, fmt.Errorf("security: module address constraint unsatisfiable")
		}
		res, err := net.Run(symexec.Injection{
			Node: entry, State: init,
			MaxSteps: in.MaxSteps, Deadline: in.Deadline,
			Workers: in.Workers, Memo: in.Memo,
		})
		if err != nil {
			return nil, err
		}
		if res.Truncated {
			rep.Verdict = NeedsSandbox
			rep.addReason("symbolic execution truncated; conformance undecidable")
			return rep, nil
		}
		for _, eg := range res.Egress {
			if !exitSet[eg.Node] {
				continue // dead branch of an element, not module egress
			}
			f := analyzeFlow(eg, srcVar, uint64(in.Addr), wl, in.Trust, in.BanConnectionlessReplies)
			rep.Findings = append(rep.Findings, f)
			rep.Flows++
			if !f.SpoofSafe {
				nSpoof++
			}
			switch f.Conformance {
			case Always:
				nAlways++
			case Sometimes:
				nSometimes++
			case Never:
				nNever++
			}
		}
	}

	// Aggregate (§4.4): spoofing is never tolerated; all-nonconforming
	// modules are refused; mixed or runtime-dependent conformance is
	// sandboxed; otherwise the module is safe.
	switch {
	case nSpoof > 0:
		rep.Verdict = Rejected
		rep.addReason("%d egress flow(s) can spoof the source address", nSpoof)
	case rep.Flows == 0:
		rep.Verdict = Safe
		rep.addReason("module generates no egress traffic")
	case nNever == rep.Flows:
		rep.Verdict = Rejected
		rep.addReason("all egress traffic is unauthorized")
	case nSometimes > 0 || nNever > 0:
		rep.Verdict = NeedsSandbox
		rep.addReason("%d flow(s) conform only for some runtime values", nSometimes+nNever)
	default:
		rep.Verdict = Safe
		rep.addReason("every egress flow is provably authorized")
	}
	return rep, nil
}

// analyzeFlow classifies one egress flow.
func analyzeFlow(eg symexec.Egress, entrySrcVar symexec.VarID, addr uint64, wl symexec.IntervalSet, trust TrustClass, banConnectionless bool) FlowFinding {
	s := eg.S
	f := FlowFinding{ExitNode: eg.Node}

	// Anti-spoofing (§2.1): the source leaving the platform is either
	// the platform-assigned address (checked on the value set, so a
	// mirrored entry-destination — constrained to the module address —
	// also qualifies) or unchanged from ingress.
	srcE := s.Get(symexec.FieldSrcIP)
	if v, ok := srcE.IsVar(); ok && v == entrySrcVar {
		f.SpoofSafe = true
	} else if v, single := s.Values(symexec.FieldSrcIP).IsSingle(); single && v == addr {
		f.SpoofSafe = true
	}
	if !f.SpoofSafe {
		f.Detail = "source address is neither the module address nor the ingress source"
	}

	// Clients may reach any destination (§2.1).
	if trust == Client {
		f.Conformance = Always
		return f
	}

	// Default-off destination authorization for third parties.
	dstE := s.Get(symexec.FieldDstIP)
	if v, ok := dstE.IsVar(); ok && v == entrySrcVar {
		// Implicit authorization: replying to the ingress source.
		if banConnectionless {
			protos := s.Values(symexec.FieldProto)
			if !protos.SubsetOf(symexec.Single(uint64(packet.ProtoTCP))) {
				// A spoofed connectionless packet could forge this
				// authorization (§7's amplification caveat).
				f.Conformance = Sometimes
				f.Detail = appendDetail(f.Detail,
					"reply-to-sender over a connectionless protocol; spoofable (amplification policy)")
				return f
			}
		}
		f.Conformance = Always
		f.Detail = appendDetail(f.Detail, "destination bound to ingress source (implicit authorization)")
		return f
	}
	vals := s.Values(symexec.FieldDstIP)
	switch {
	case !wl.IsEmpty() && vals.SubsetOf(wl):
		f.Conformance = Always
		f.Detail = appendDetail(f.Detail, "destination within the explicit whitelist")
	case !vals.Overlaps(wl):
		f.Conformance = Never
		f.Detail = appendDetail(f.Detail, "destination can never be authorized")
	default:
		f.Conformance = Sometimes
		f.Detail = appendDetail(f.Detail, "destination authorized only for some runtime values")
	}
	return f
}

func appendDetail(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "; " + extra
}
