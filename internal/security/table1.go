package security

import (
	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
)

// Table 1 of the paper: twelve middlebox functionalities checked for
// safety on behalf of third parties, clients and the operator. The
// catalog below holds a canonical Click configuration for each
// functionality (or nil for the opaque x86 VM) plus the verdicts the
// paper reports. Tests and the Table 1 harness replay the catalog
// through Check and compare.

// Addresses used by the canonical configurations.
const (
	// Table1ModuleAddr is the module's controller-assigned address.
	Table1ModuleAddr = "198.51.100.77"
	// Table1TenantServer and Table1TenantServer2 are the tenant's
	// whitelisted destinations.
	Table1TenantServer  = "192.0.2.1"
	Table1TenantServer2 = "192.0.2.2"
)

// Table1Row is one functionality of the paper's Table 1.
type Table1Row struct {
	Functionality string
	// Config is the canonical Click configuration; empty means an
	// opaque x86 VM.
	Config string
	// Transparent marks middleboxes that interpose on traffic not
	// addressed to them (routers, NATs, DPI, transparent proxies).
	Transparent bool
	// Expected verdicts per requester (Table 1 columns): 7 in the
	// paper is Rejected, X is Safe, X(s) is NeedsSandbox.
	ThirdParty Verdict
	Client     Verdict
	Operator   Verdict
}

// Table1 is the full catalog.
func Table1() []Table1Row {
	return []Table1Row{
		{
			Functionality: "IP Router",
			Config: `
in :: FromNetfront();
rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
in -> rt;
rt[0] -> out0;
rt[1] -> out1;
`,
			Transparent: true,
			ThirdParty:  Rejected, Client: Rejected, Operator: Safe,
		},
		{
			Functionality: "DPI",
			Config: `
in :: FromNetfront();
dpi :: DPI("attack-signature");
out :: ToNetfront();
bad :: Discard();
in -> dpi;
dpi[0] -> out;
dpi[1] -> bad;
`,
			Transparent: true,
			ThirdParty:  Rejected, Client: Rejected, Operator: Safe,
		},
		{
			Functionality: "NAT",
			Config: `
in :: FromNetfront();
nat :: IPRewriter(pattern 198.51.100.77 - - - 0 0);
out :: ToNetfront();
in -> nat -> out;
`,
			Transparent: true,
			ThirdParty:  Rejected, Client: Rejected, Operator: Safe,
		},
		{
			Functionality: "Transparent Proxy",
			Config: `
in :: FromNetfront();
f :: IPFilter(allow tcp dst port 80);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
			Transparent: true,
			ThirdParty:  Rejected, Client: Rejected, Operator: Safe,
		},
		{
			Functionality: "Flow meter",
			Config: `
in :: FromNetfront();
m :: FlowMeter();
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> m -> fwd -> out;
`,
			ThirdParty: Safe, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "Rate limiter",
			Config: `
in :: FromNetfront();
rl :: RateLimiter(1000);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> rl -> fwd -> out;
`,
			ThirdParty: Safe, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "Firewall",
			Config: `
in :: FromNetfront();
fw :: IPFilter(allow udp port 1500, deny all);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> fw -> fwd -> out;
`,
			ThirdParty: Safe, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "Tunnel",
			Config: `
in :: FromNetfront();
dec :: IPDecap();
snat :: SetIPSrc(198.51.100.77);
out :: ToNetfront();
in -> dec -> snat -> out;
`,
			// The inner destination is only known at run time: the
			// module might reach legitimate addresses, so it cannot be
			// denied — but it could also reach destinations it should
			// not. Sandbox (§7.1).
			ThirdParty: NeedsSandbox, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "Multicast",
			Config: `
in :: FromNetfront();
t :: Tee(2);
d1 :: SetIPDst(192.0.2.1);
d2 :: SetIPDst(192.0.2.2);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
in -> t;
t[0] -> d1 -> out0;
t[1] -> d2 -> out1;
`,
			ThirdParty: Safe, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "DNS Server (stock)",
			Config: `
in :: FromNetfront();
f :: IPFilter(allow udp dst port 53);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
			ThirdParty: Safe, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "Reverse proxy (stock)",
			Config: `
in :: FromNetfront();
f :: IPFilter(allow tcp dst port 80);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
			ThirdParty: Safe, Client: Safe, Operator: Safe,
		},
		{
			Functionality: "x86 VM",
			Config:        "",
			ThirdParty:    NeedsSandbox, Client: NeedsSandbox, Operator: Safe,
		},
	}
}

// CheckTable1Row runs the security check for one row and requester.
func CheckTable1Row(row Table1Row, trust TrustClass) (*Report, error) {
	var mod *click.Router
	if row.Config != "" {
		mod = click.MustBuildString(row.Config)
	}
	return Check(Input{
		ModuleID: "t1",
		Module:   mod,
		Addr:     packet.MustParseIP(Table1ModuleAddr),
		Trust:    trust,
		Whitelist: []uint32{
			packet.MustParseIP(Table1TenantServer),
			packet.MustParseIP(Table1TenantServer2),
		},
		Transparent: row.Transparent,
	})
}
