package security

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/click"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

var (
	modAddr = packet.MustParseIP(Table1ModuleAddr)
	wl      = []uint32{packet.MustParseIP(Table1TenantServer)}
)

func check(t *testing.T, cfg string, trust TrustClass, transparent bool) *Report {
	t.Helper()
	var mod *click.Router
	if cfg != "" {
		mod = click.MustBuildString(cfg)
	}
	rep, err := Check(Input{
		ModuleID: "m", Module: mod, Addr: modAddr,
		Trust: trust, Whitelist: wl, Transparent: transparent,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTable1Reproduction(t *testing.T) {
	for _, row := range Table1() {
		for _, col := range []struct {
			trust TrustClass
			want  Verdict
		}{
			{ThirdParty, row.ThirdParty},
			{Client, row.Client},
			{Operator, row.Operator},
		} {
			rep, err := CheckTable1Row(row, col.trust)
			if err != nil {
				t.Fatalf("%s/%s: %v", row.Functionality, col.trust, err)
			}
			if rep.Verdict != col.want {
				t.Errorf("%s for %s: verdict %v, paper says %v (reasons: %v)",
					row.Functionality, col.trust, rep.Verdict, col.want, rep.Reasons)
			}
		}
	}
}

func TestSpoofingRejected(t *testing.T) {
	// A module that forges its source address.
	rep := check(t, `
in :: FromNetfront();
sp :: SetIPSrc(203.0.113.66);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> sp -> fwd -> out;
`, ThirdParty, false)
	if rep.Verdict != Rejected {
		t.Errorf("spoofing module verdict = %v (%v)", rep.Verdict, rep.Reasons)
	}
	if len(rep.Findings) == 0 || rep.Findings[0].SpoofSafe {
		t.Error("finding should flag spoofing")
	}
	// Spoofing is rejected even for the operator's *clients*.
	rep2 := check(t, `
in :: FromNetfront();
sp :: SetIPSrc(203.0.113.66);
out :: ToNetfront();
in -> sp -> out;
`, Client, false)
	if rep2.Verdict != Rejected {
		t.Errorf("client spoofing verdict = %v", rep2.Verdict)
	}
}

func TestSettingSrcToModuleAddrIsNotSpoofing(t *testing.T) {
	rep := check(t, `
in :: FromNetfront();
sp :: SetIPSrc(198.51.100.77);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> sp -> fwd -> out;
`, ThirdParty, false)
	if rep.Verdict != Safe {
		t.Errorf("verdict = %v (%v)", rep.Verdict, rep.Reasons)
	}
}

func TestUnauthorizedConstantDestinationRejected(t *testing.T) {
	// Every flow goes to a non-whitelisted constant: a DoS cannon.
	rep := check(t, `
in :: FromNetfront();
atk :: SetIPDst(203.0.113.99);
out :: ToNetfront();
in -> atk -> out;
`, ThirdParty, false)
	if rep.Verdict != Rejected {
		t.Errorf("verdict = %v (%v)", rep.Verdict, rep.Reasons)
	}
	// The same module is fine for a residential client (default-off
	// does not apply; §2.1 extension) as long as it does not spoof.
	rep2 := check(t, `
in :: FromNetfront();
atk :: SetIPDst(203.0.113.99);
out :: ToNetfront();
in -> atk -> out;
`, Client, false)
	if rep2.Verdict != Safe {
		t.Errorf("client verdict = %v (%v)", rep2.Verdict, rep2.Reasons)
	}
}

func TestMixedConformanceSandboxed(t *testing.T) {
	// One branch whitelisted, one branch attacking: both allowed and
	// disallowed traffic -> sandbox per §4.4 case (ii).
	rep := check(t, `
in :: FromNetfront();
t :: Tee(2);
good :: SetIPDst(192.0.2.1);
bad :: SetIPDst(203.0.113.99);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
in -> t;
t[0] -> good -> out0;
t[1] -> bad -> out1;
`, ThirdParty, false)
	if rep.Verdict != NeedsSandbox {
		t.Errorf("verdict = %v (%v)", rep.Verdict, rep.Reasons)
	}
}

func TestImplicitAuthorizationViaMirror(t *testing.T) {
	rep := check(t, `
in :: FromNetfront();
mir :: IPMirror();
out :: ToNetfront();
in -> mir -> out;
`, ThirdParty, false)
	if rep.Verdict != Safe {
		t.Errorf("verdict = %v (%v)", rep.Verdict, rep.Reasons)
	}
	if len(rep.Findings) == 0 || !strings.Contains(rep.Findings[0].Detail, "implicit") {
		t.Errorf("findings = %+v", rep.Findings)
	}
}

func TestNoEgressIsSafe(t *testing.T) {
	rep := check(t, `
in :: FromNetfront();
m :: FlowMeter();
d :: Discard();
in -> m -> d;
`, ThirdParty, false)
	if rep.Verdict != Safe || rep.Flows != 0 {
		t.Errorf("verdict = %v flows = %d", rep.Verdict, rep.Flows)
	}
}

func TestTransparentInterpositionOnlyForOperator(t *testing.T) {
	cfg := `
in :: FromNetfront();
rt :: LookupIPRoute(0.0.0.0/0 0);
out :: ToNetfront();
in -> rt -> out;
`
	if rep := check(t, cfg, ThirdParty, true); rep.Verdict != Rejected {
		t.Errorf("third-party transparent = %v", rep.Verdict)
	}
	if rep := check(t, cfg, Client, true); rep.Verdict != Rejected {
		t.Errorf("client transparent = %v", rep.Verdict)
	}
	if rep := check(t, cfg, Operator, true); rep.Verdict != Safe {
		t.Errorf("operator transparent = %v", rep.Verdict)
	}
}

func TestX86VMNeedsSandbox(t *testing.T) {
	if rep := check(t, "", ThirdParty, false); rep.Verdict != NeedsSandbox {
		t.Errorf("x86 third-party = %v", rep.Verdict)
	}
	if rep := check(t, "", Client, false); rep.Verdict != NeedsSandbox {
		t.Errorf("x86 client = %v", rep.Verdict)
	}
	if rep := check(t, "", Operator, false); rep.Verdict != Safe {
		t.Errorf("x86 operator = %v", rep.Verdict)
	}
}

func TestAmplificationPolicy(t *testing.T) {
	// A UDP responder (the DNS-amplification shape of §7): fine under
	// the default rules, sandboxed under the connectionless ban.
	udpMirror := `
in :: FromNetfront();
f :: IPFilter(allow udp dst port 53);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`
	build := func(banned bool) *Report {
		rep, err := Check(Input{
			ModuleID: "m", Module: click.MustBuildString(udpMirror),
			Addr: modAddr, Trust: ThirdParty, Whitelist: wl,
			BanConnectionlessReplies: banned,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := build(false); rep.Verdict != Safe {
		t.Errorf("default policy: %v (%v)", rep.Verdict, rep.Reasons)
	}
	if rep := build(true); rep.Verdict != NeedsSandbox {
		t.Errorf("amplification policy: %v (%v)", rep.Verdict, rep.Reasons)
	}
	// A TCP responder is immune: the three-way handshake cannot be
	// spoofed, so implicit authorization stands.
	tcpMirror := `
in :: FromNetfront();
f :: IPFilter(allow tcp dst port 80);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`
	rep, err := Check(Input{
		ModuleID: "m", Module: click.MustBuildString(tcpMirror),
		Addr: modAddr, Trust: ThirdParty, Whitelist: wl,
		BanConnectionlessReplies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Errorf("tcp responder under amplification policy: %v (%v)", rep.Verdict, rep.Reasons)
	}
}

func TestStringers(t *testing.T) {
	if Safe.String() != "safe" || NeedsSandbox.String() != "needs-sandbox" ||
		Rejected.String() != "rejected" || Verdict(9).String() != "unknown" {
		t.Error("verdict strings")
	}
	if ThirdParty.String() != "third-party" || Client.String() != "client" ||
		Operator.String() != "operator" || TrustClass(9).String() != "unknown" {
		t.Error("trust strings")
	}
	if Always.String() != "always" || Sometimes.String() != "sometimes" ||
		Never.String() != "never" || Conformance(9).String() != "unknown" {
		t.Error("conformance strings")
	}
}

func BenchmarkSecurityCheckFirewall(b *testing.B) {
	mod := click.MustBuildString(`
in :: FromNetfront();
fw :: IPFilter(allow udp port 1500, deny all);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> fw -> fwd -> out;
`)
	in := Input{ModuleID: "m", Module: mod, Addr: modAddr, Trust: ThirdParty, Whitelist: wl}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Check(in); err != nil {
			b.Fatal(err)
		}
	}
}
