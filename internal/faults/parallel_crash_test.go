package faults

import (
	"testing"

	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/topology"
)

// Chaos regression for parallel + memoized admission: fanning the
// symbolic execution across a worker pool (and answering sub-chains
// from the element memo) must not open a crash window or perturb
// recovery. The scripted crash scenario from cache_crash_test.go —
// deploy, kill, a redeploy whose admit append dies mid-flight, crash,
// recover, redeploy for real, push traffic — runs on a sequential
// memo-free cluster and on one admitting with 8 workers plus the
// memo, and the end-to-end summaries must match byte for byte. The
// journal, not any in-memory verification state, is the only
// recovery input either way.

func newParallelCrashCluster(t *testing.T, opts controller.Options) *Cluster {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterWithOptions(5, topo, operatorHTTPPolicy, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestParallelAdmitCrashRecoversLikeSequential(t *testing.T) {
	seq := newParallelCrashCluster(t, controller.Options{AdmissionWorkers: -1, ElementMemo: -1})
	base, _ := crashBeforeAdmitScenario(t, seq)

	par := newParallelCrashCluster(t, controller.Options{AdmissionWorkers: 8})
	got, hits := crashBeforeAdmitScenario(t, par)
	// The doomed redeploy must have been answered from the admission
	// cache (the dangerous spot: no symexec re-run before the crash).
	if hits == 0 {
		t.Fatal("redeploy before the crash did not hit the admission cache")
	}
	// par.Ctl is the post-crash controller: its memo restarted cold
	// (verification state never rides through a crash; recovery
	// replays the journal only) and the final redeploy must have run
	// through it — proving the memo sits in the admission path of the
	// very deployment whose recovery we just diffed.
	if st := par.Ctl.MemoStats(); st.Hits+st.Misses+st.Unsupported == 0 {
		t.Fatal("element memo saw no traffic during the post-recovery parallel admission")
	}
	if got != base {
		t.Errorf("parallel+memo crash recovery diverged from sequential:\n--- sequential\n%s--- parallel\n%s", base, got)
	}
}
