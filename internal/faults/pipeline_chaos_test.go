package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
	"github.com/in-net/innet/internal/vswitch"
)

// The module chain behind the switch: validation, TTL, accounting —
// all flattenable, with real per-packet state (Counter, DecIPTTL).
const pipelineChaosChain = `
in :: FromNetfront();
chk :: CheckIPHeader;
ttl :: DecIPTTL;
cnt :: Counter;
out :: ToNetfront();
d :: Discard;
in -> chk -> ttl -> cnt -> out;
chk[1] -> d;
ttl[1] -> d;
`

const pipelineChaosModule = uint32(0xc0000205)

// chaosEgress records per-flow egress sequences; the engine's workers
// call Transmit concurrently, so appends are locked (per-flow order is
// still deterministic: a flow never leaves its worker).
type chaosEgress struct {
	mu   sync.Mutex
	flow map[uint32][]string
}

func (r *chaosEgress) record(iface int, p *packet.Packet) {
	r.mu.Lock()
	r.flow[p.UserID] = append(r.flow[p.UserID], fmt.Sprintf("i%d ttl=%d %s", iface, p.TTL, p.Payload))
	r.mu.Unlock()
}

// pipelineChaosSchedule builds a seeded traffic/outage script: bursts
// of flow-tagged packets with a platform outage opening mid-burst and
// closing a few bursts later, leaving the switch to buffer and replay.
type chaosEvent struct {
	pkts []*packet.Packet // nil for down/up events
	down bool
	up   bool
}

func pipelineChaosSchedule(seed int64) []chaosEvent {
	rng := rand.New(rand.NewSource(seed))
	nflows := 3 + rng.Intn(6)
	bursts := 8 + rng.Intn(6)
	downAt := 1 + rng.Intn(bursts-3)
	upAt := downAt + 1 + rng.Intn(bursts-downAt-1)
	var ev []chaosEvent
	seq := make([]int, nflows)
	burstPkts := func() []*packet.Packet {
		var pkts []*packet.Packet
		n := 4 + rng.Intn(13)
		for i := 0; i < n; i++ {
			f := uint32(rng.Intn(nflows))
			pkts = append(pkts, &packet.Packet{
				SrcIP: 0x0a000100 + f, DstIP: pipelineChaosModule,
				SrcPort: uint16(2000 + f), DstPort: 443,
				Protocol: packet.ProtoUDP,
				TTL:      uint8(1 + rng.Intn(5)), // some expire in DecIPTTL
				UserID:   f,
				Payload:  []byte(fmt.Sprintf("f%d-p%d", f, seq[f])),
			})
			seq[f]++
		}
		return pkts
	}
	for b := 0; b < bursts; b++ {
		if b == downAt {
			// Outage opens mid-burst: the first half dispatches, the
			// rest (and the following bursts) hit the down switch and
			// buffer.
			pk := burstPkts()
			half := len(pk) / 2
			ev = append(ev, chaosEvent{pkts: pk[:half]}, chaosEvent{down: true}, chaosEvent{pkts: pk[half:]})
			continue
		}
		if b == upAt {
			ev = append(ev, chaosEvent{up: true})
		}
		ev = append(ev, chaosEvent{pkts: burstPkts()})
	}
	if upAt >= bursts {
		ev = append(ev, chaosEvent{up: true})
	}
	return ev
}

// runPipelineChaosGraph replays the schedule through the per-packet
// sink and the ordinary graph walk (the reference semantics).
func runPipelineChaosGraph(t *testing.T, sched []chaosEvent) (map[uint32][]string, *elements.Counter) {
	t.Helper()
	r := click.MustBuildString(pipelineChaosChain)
	eg := &chaosEgress{flow: map[uint32][]string{}}
	ctx := &click.Context{Transmit: eg.record}
	s := vswitch.NewSharded(4)
	s.Install(vswitch.Rule{Priority: 1, Match: vswitch.Match{DstIP: pipelineChaosModule},
		Action: vswitch.ActToModule, Module: pipelineChaosModule})
	s.ToModule = func(mod uint32, p *packet.Packet) {
		_ = r.Inject(ctx, 0, p)
	}
	for _, e := range sched {
		switch {
		case e.down:
			s.SetDown(true)
		case e.up:
			s.SetDown(false)
		default:
			s.ProcessBatch(e.pkts)
		}
	}
	return eg.flow, r.Element("cnt").(*elements.Counter)
}

// runPipelineChaosEngine replays the same schedule in pipeline mode:
// the switch's batch sink feeds an affinity-partitioned engine.
func runPipelineChaosEngine(t *testing.T, sched []chaosEvent, workers int) (map[uint32][]string, *pipeline.Engine) {
	t.Helper()
	eg := &chaosEgress{flow: map[uint32][]string{}}
	eng, err := pipeline.NewEngineString(pipelineChaosChain, pipeline.Config{
		Workers: workers,
		Transmit: func(worker, iface int, p *packet.Packet) {
			eg.record(iface, p)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := vswitch.NewSharded(4)
	s.Install(vswitch.Rule{Priority: 1, Match: vswitch.Match{DstIP: pipelineChaosModule},
		Action: vswitch.ActToModule, Module: pipelineChaosModule})
	s.ToModuleBatch = func(mod uint32, pkts []*packet.Packet) {
		eng.Dispatch(0, pkts)
	}
	for _, e := range sched {
		switch {
		case e.down:
			// "Mid-batch": the engine may still be chewing the first
			// half of the burst when the outage opens. Drain so the
			// buffered-vs-processed split is the event boundary, as it
			// is for the synchronous graph walk.
			eng.Drain()
			s.SetDown(true)
		case e.up:
			s.SetDown(false)
		default:
			s.ProcessBatch(e.pkts)
		}
	}
	eng.Drain()
	return eg.flow, eng
}

// TestChaosPipelineOutageReplay drives seeded outage schedules through
// graph-walk and compiled-pipeline modes and requires identical
// per-flow egress (payload order and TTL rewrites) and element state.
// The switch buffers during the outage and replays on recovery in both
// modes; the pipeline engine must preserve that per-flow story at
// every worker width.
func TestChaosPipelineOutageReplay(t *testing.T) {
	seeds := []int64{1, 7, 23, 51, 94}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				// Same seed, fresh packet objects per run: both modes
				// mutate the packets they carry (DecIPTTL).
				wantFlows, wantCnt := runPipelineChaosGraph(t, pipelineChaosSchedule(seed))
				gotFlows, eng := runPipelineChaosEngine(t, pipelineChaosSchedule(seed), workers)
				defer eng.Close()

				if len(gotFlows) != len(wantFlows) {
					t.Fatalf("flows: got %d want %d", len(gotFlows), len(wantFlows))
				}
				for f, want := range wantFlows {
					got := gotFlows[f]
					if len(got) != len(want) {
						t.Fatalf("flow %d: %d egresses, want %d", f, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("flow %d egress %d: got %q want %q", f, i, got[i], want[i])
						}
					}
				}
				var pkts, bytes uint64
				for w := 0; w < eng.Workers(); w++ {
					c := eng.Router(w).Element("cnt").(*elements.Counter)
					pkts += c.Packets
					bytes += c.Bytes
				}
				if pkts != wantCnt.Packets || bytes != wantCnt.Bytes {
					t.Fatalf("counter: engine %d/%d, graph %d/%d", pkts, bytes, wantCnt.Packets, wantCnt.Bytes)
				}
			})
		}
	}
}
