package faults

import (
	"testing"

	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// A controller crash-and-recover mid-run must be invisible: the
// recovered deployment set, statuses and address allocations — and
// every workload counter — match a never-crashed run with the same
// seeds byte for byte.
func TestControllerCrashByteIdenticalToUncrashedRun(t *testing.T) {
	base, _ := chaosRun(t, 11, 42)
	crashed, _ := chaosRunIn(t, 11, 42, t.TempDir(),
		[]netsim.Time{3 * netsim.Second}, 0)
	if crashed.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", crashed.Recoveries)
	}
	if len(crashed.Errs) != 0 {
		t.Fatalf("recovery errors: %v", crashed.Errs)
	}
	if got, want := crashed.Summary(), base.Summary(); got != want {
		t.Errorf("crash-recover run diverged from uncrashed run:\n--- uncrashed\n%s--- crashed\n%s", want, got)
	}
}

// A crash during the platform outage window exercises recovery while
// part of the fleet is degraded and the platform-health state matters.
func TestControllerCrashDuringOutageByteIdentical(t *testing.T) {
	base, _ := chaosRun(t, 11, 42)
	// The outage lands in [1s, 2s) and lasts 500ms; 1.9s is inside it
	// for this seed (asserted below via the outage counter).
	crashed, _ := chaosRunIn(t, 11, 42, t.TempDir(),
		[]netsim.Time{netsim.Millis(1900)}, 0)
	if crashed.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", crashed.Recoveries)
	}
	if len(crashed.Errs) != 0 {
		t.Fatalf("recovery errors: %v", crashed.Errs)
	}
	if got, want := crashed.Summary(), base.Summary(); got != want {
		t.Errorf("outage-window crash diverged:\n--- uncrashed\n%s--- crashed\n%s", want, got)
	}
}

// When a module's platform registration vanished while the controller
// was down, recovery re-runs the placement step only and moves the
// dataplane: the module gets a new home, traffic follows it there.
func TestControllerCrashReplacesVanishedModule(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterWithState(7, topo, operatorHTTPPolicy, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if _, err := cl.Deploy(controller.Request{
			Tenant:     "t" + string(rune('a'+i)),
			ModuleName: "m" + string(rune('a'+i)),
			Config:     chaosStateless,
			Trust:      security.ThirdParty,
		}); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	victim := cl.dep(0)
	survivor := cl.dep(1)
	// The host lost the module while the controller was down.
	cl.Platform(victim.Platform).Unregister(victim.Addr)

	cl.CrashController()
	if len(cl.Errs) != 0 {
		t.Fatalf("recovery errors: %v", cl.Errs)
	}
	if cl.Recoveries != 1 {
		t.Fatalf("Recoveries = %d", cl.Recoveries)
	}
	rv, ok := cl.Ctl.Get(victim.ID)
	if !ok {
		t.Fatal("victim deployment lost")
	}
	if rv.Status() != controller.StatusActive {
		t.Errorf("victim status = %s", rv.Status())
	}
	// Placement may legitimately hand back the just-vacated address;
	// what must have happened is a re-placement (a recovery migration)
	// that re-registered the module on its platform.
	if cl.Ctl.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1 (recovery re-placement)", cl.Ctl.Migrations)
	}
	if !cl.Platform(rv.Platform).HasModule(rv.Addr) {
		t.Error("re-placed module not registered on its platform")
	}
	rs, _ := cl.Ctl.Get(survivor.ID)
	if rs == nil || rs.Platform != survivor.Platform || rs.Addr != survivor.Addr {
		t.Errorf("survivor moved: %+v", rs)
	}
	// Traffic reaches both modules at their post-recovery homes.
	before := cl.Received
	cl.Sim.At(cl.Sim.Now()+netsim.Millis(1), func() {
		cl.Send(0, probe(1))
		cl.Send(1, probe(2))
	})
	cl.Sim.Run()
	if cl.Received != before+2 {
		t.Errorf("received %d probes after recovery, want 2\n%s", cl.Received-before, cl.Summary())
	}
}

// Seeded controller-crash faults inside a full chaos run: the
// accounting identity holds, nothing is lost, and two identical seeds
// still produce byte-identical outcomes.
func TestChaosWithControllerCrashFaults(t *testing.T) {
	a, pa := chaosRunIn(t, 11, 42, t.TempDir(), nil, 2)
	b, pb := chaosRunIn(t, 11, 42, t.TempDir(), nil, 2)
	if pa.Signature() != pb.Signature() {
		t.Fatal("same plan seed, different fault schedules")
	}
	if a.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want 2", a.Recoveries)
	}
	if len(a.Errs) != 0 {
		t.Errorf("recovery errors: %v", a.Errs)
	}
	total := a.Received + a.DroppedTotal() + uint64(a.Buffered())
	if a.Sent != total {
		t.Errorf("accounting broken: sent=%d accounted=%d\n%s", a.Sent, total, a.Summary())
	}
	if a.Summary() != b.Summary() {
		t.Errorf("same seeds, divergent outcomes:\n--- run A\n%s--- run B\n%s",
			a.Summary(), b.Summary())
	}
	// The deployment set survives every crash.
	for m := 0; m < chaosModules; m++ {
		d := a.dep(m)
		if d == nil {
			t.Fatalf("module %d lost its deployment", m)
		}
		if d.Status() != controller.StatusActive {
			t.Errorf("module %d status = %s", m, d.Status())
		}
	}
}

// Without a state dir the fault degrades gracefully: it is recorded,
// not fatal.
func TestControllerCrashWithoutStateDirIsRecorded(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(3, topo, operatorHTTPPolicy)
	if err != nil {
		t.Fatal(err)
	}
	cl.CrashController()
	if cl.Recoveries != 0 {
		t.Errorf("Recoveries = %d", cl.Recoveries)
	}
	if len(cl.Errs) != 1 {
		t.Errorf("Errs = %v", cl.Errs)
	}
}
