package faults

import (
	"errors"
	"strings"
	"testing"

	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// Chaos regression for the admission cache: the cache must not open a
// new crash window. The dangerous spot is a cache-hit admission — the
// verdict and placement come back without re-running symexec, and if
// the process dies before the write-ahead admit record reaches disk,
// recovery must behave exactly as it would on a cache-disabled
// controller crashing at the same point. Both tests below run the
// identical scripted scenario against a cache-disabled and a
// cache-enabled cluster and require byte-identical summaries.

// admitDropJournal interposes on the controller's journal sink and
// fails the next EvAdmit append, modeling a process crash after
// admission completed but before the admit record was durable.
type admitDropJournal struct {
	inner   controller.Journal
	armed   bool
	dropped int
}

var errInjectedCrash = errors.New("injected: process crashed before admit append")

func (j *admitDropJournal) Append(r journal.Record) error {
	if j.armed && r.Type == journal.EvAdmit {
		j.armed = false
		j.dropped++
		return errInjectedCrash
	}
	return j.inner.Append(r)
}

func cacheCrashRequest() controller.Request {
	return controller.Request{
		Tenant:     "tenant-cc",
		ModuleName: "cache-crash",
		Config:     chaosStateless,
		Trust:      security.ThirdParty,
	}
}

func newCacheCrashCluster(t *testing.T, cacheSize int) *Cluster {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterWithOptions(5, topo, operatorHTTPPolicy, t.TempDir(),
		controller.Options{AdmissionCache: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// killModule tears a deployment down across all layers, so an
// identical redeploy exercises the cache-hit admission path.
func killModule(t *testing.T, cl *Cluster, idx int) {
	t.Helper()
	d := cl.dep(idx)
	if d == nil {
		t.Fatalf("module %d has no deployment", idx)
	}
	if err := cl.Ctl.Kill(d.ID); err != nil {
		t.Fatalf("kill %s: %v", d.ID, err)
	}
	cl.Platform(d.Platform).Unregister(d.Addr)
	if r := cl.rules[d.ID]; r != nil {
		if err := cl.switches[cl.ruleOn[d.ID]].Remove(r); err != nil {
			t.Fatalf("rule remove %s: %v", d.ID, err)
		}
	}
}

// crashBeforeAdmitScenario: deploy, kill, then attempt an identical
// redeploy whose admit append dies mid-flight (the crash point), crash
// and recover the controller, redeploy for real and push traffic.
// Returns the final summary plus cache hits observed before the crash.
func crashBeforeAdmitScenario(t *testing.T, cl *Cluster) (summary string, preCrashHits uint64) {
	t.Helper()
	if _, err := cl.Deploy(cacheCrashRequest()); err != nil {
		t.Fatalf("initial deploy: %v", err)
	}
	killModule(t, cl, 0)

	fj := &admitDropJournal{inner: cl.store, armed: true}
	cl.Ctl.AttachJournal(fj)
	if _, err := cl.Deploy(cacheCrashRequest()); err == nil {
		t.Fatal("deploy survived a failed admit append")
	} else if !strings.Contains(err.Error(), errInjectedCrash.Error()) {
		t.Fatalf("deploy failed for the wrong reason: %v", err)
	}
	if fj.dropped != 1 {
		t.Fatalf("admit append dropped %d times, want 1", fj.dropped)
	}
	preCrashHits = cl.Ctl.CacheStats().Hits

	cl.CrashController()
	if cl.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", cl.Recoveries)
	}
	if len(cl.Errs) != 0 {
		t.Fatalf("recovery errors: %v", cl.Errs)
	}
	// The un-journaled admission must not have leaked into recovery.
	if deps := cl.Ctl.Deployments(); len(deps) != 0 {
		t.Fatalf("recovered controller resurrected %d deployments", len(deps))
	}

	idx, err := cl.Deploy(cacheCrashRequest())
	if err != nil {
		t.Fatalf("post-recovery deploy: %v", err)
	}
	cl.Sim.At(netsim.Millis(1), func() {
		cl.Send(idx, probe(1))
		cl.Send(idx, probe(2))
	})
	cl.Sim.Run()
	return cl.Summary(), preCrashHits
}

func TestCacheHitAdmitCrashRecoversLikeUncached(t *testing.T) {
	uncached := newCacheCrashCluster(t, -1)
	base, baseHits := crashBeforeAdmitScenario(t, uncached)
	if baseHits != 0 {
		t.Fatalf("disabled cache recorded %d hits", baseHits)
	}

	cached := newCacheCrashCluster(t, 0)
	got, hits := crashBeforeAdmitScenario(t, cached)
	// The doomed redeploy must actually have been answered from cache —
	// otherwise this test is not exercising the window it claims to.
	if hits == 0 {
		t.Fatal("redeploy before the crash did not hit the admission cache")
	}
	if got != base {
		t.Errorf("cache-enabled crash recovery diverged from uncached:\n--- uncached\n%s--- cached\n%s", base, got)
	}
}

// The complementary window: the cache-hit admission IS journaled, and
// the controller crashes right after. Replay rebuilds the deployment
// from the admit record alone; whether the original admission came
// from cache or cold symexec must be indistinguishable on disk.
func TestCacheHitAdmitJournaledThenCrash(t *testing.T) {
	run := func(cacheSize int) (string, *Cluster) {
		cl := newCacheCrashCluster(t, cacheSize)
		if _, err := cl.Deploy(cacheCrashRequest()); err != nil {
			t.Fatalf("initial deploy: %v", err)
		}
		killModule(t, cl, 0)
		idx, err := cl.Deploy(cacheCrashRequest())
		if err != nil {
			t.Fatalf("redeploy: %v", err)
		}
		pre := cl.dep(idx)
		cl.CrashController()
		if len(cl.Errs) != 0 {
			t.Fatalf("recovery errors: %v", cl.Errs)
		}
		post := cl.dep(idx)
		if post == nil {
			t.Fatal("cache-hit deployment lost across crash")
		}
		if post.Platform != pre.Platform || post.Addr != pre.Addr {
			t.Fatalf("placement moved across crash: %s/%d -> %s/%d",
				pre.Platform, pre.Addr, post.Platform, post.Addr)
		}
		cl.Sim.At(netsim.Millis(1), func() {
			cl.Send(idx, probe(1))
			cl.Send(idx, probe(2))
		})
		cl.Sim.Run()
		return cl.Summary(), cl
	}

	base, _ := run(-1)
	got, cached := run(0)
	if cached.Ctl.CacheStats().Hits != 0 {
		// The restored controller starts cold: hits here would mean the
		// cache was journaled, which it must never be.
		t.Errorf("restored controller's cache is warm: %+v", cached.Ctl.CacheStats())
	}
	if got != base {
		t.Errorf("journaled cache-hit recovery diverged from uncached:\n--- uncached\n%s--- cached\n%s", base, got)
	}
}
