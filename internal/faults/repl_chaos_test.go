package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/replication"
	"github.com/in-net/innet/internal/security"
)

const replModule = `
in :: FromNetfront();
f :: IPFilter(allow udp);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`

func replRequest(i int) controller.Request {
	return controller.Request{
		Tenant:     fmt.Sprintf("tenant%d", i),
		ModuleName: fmt.Sprintf("chaos%d", i),
		Config:     replModule,
		Trust:      security.ThirdParty,
	}
}

func newReplPair(t *testing.T, opts ReplPairOptions) *ReplPair {
	t.Helper()
	opts.LeaderDir = t.TempDir()
	opts.StandbyDir = t.TempDir()
	opts.Logf = t.Logf
	p, err := NewReplPair(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func waitRepl(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// baselineCanonical runs the workload on an unfaulted pair and
// returns the canonical end state every chaos run must converge to.
// The workload is deploys 0..n-1 with deploy killIdx killed at the
// end (killIdx < 0 skips the kill).
func baselineCanonical(t *testing.T, n, killIdx int) []byte {
	t.Helper()
	p := newReplPair(t, ReplPairOptions{})
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		d, err := p.A.Ctl.Deploy(replRequest(i))
		if err != nil {
			t.Fatalf("baseline deploy %d: %v", i, err)
		}
		ids[i] = d.ID
	}
	if killIdx >= 0 {
		if err := p.A.Ctl.Kill(ids[killIdx]); err != nil {
			t.Fatalf("baseline kill: %v", err)
		}
	}
	return p.A.Store.State().Canonical()
}

// The seeded plan generator covers the replication kinds, keeps its
// determinism, and Schedule routes them only to ReplTarget
// implementations.
func TestReplPlanGenerationAndDispatch(t *testing.T) {
	cfg := Config{
		Horizon:            1_000_000,
		LeaderCrash:        true,
		Partitions:         2,
		PartitionDuration:  50_000,
		StandbyLags:        1,
		StandbyLagDuration: 30_000,
	}
	if Generate(7, cfg).Signature() != Generate(7, cfg).Signature() {
		t.Fatal("same seed produced different replication plans")
	}
	if Generate(7, cfg).Signature() == Generate(8, cfg).Signature() {
		t.Fatal("different seeds produced identical plans")
	}
	counts := map[Kind]int{}
	for _, f := range Generate(7, cfg).Faults {
		counts[f.Kind]++
		if f.At <= 0 || f.At > cfg.Horizon {
			t.Errorf("fault %s at %d outside horizon", f.Kind, f.At)
		}
	}
	if counts[KindLeaderCrash] != 1 || counts[KindPartition] != 2 || counts[KindStandbyLag] != 1 {
		t.Fatalf("kind counts = %v", counts)
	}

	// Dispatch: a ReplTarget sees the faults, a plain Target is skipped
	// (not crashed).
	rec := &recordingReplTarget{}
	sim := netsim.New(1)
	Generate(7, cfg).Schedule(sim, rec)
	sim.Run()
	if rec.leaderCrashes != 1 || rec.partitions != 2 || rec.lags != 1 {
		t.Fatalf("dispatched crashes=%d partitions=%d lags=%d", rec.leaderCrashes, rec.partitions, rec.lags)
	}
	sim2 := netsim.New(1)
	Generate(7, cfg).Schedule(sim2, &nopTarget{}) // must not panic
	sim2.Run()
}

type nopTarget struct{}

func (*nopTarget) CrashVM(int)                            {}
func (*nopTarget) FailNextBoot(int)                       {}
func (*nopTarget) PlatformDown(string)                    {}
func (*nopTarget) PlatformUp(string)                      {}
func (*nopTarget) LossBurst(string, float64, netsim.Time) {}
func (*nopTarget) CrashController()                       {}

type recordingReplTarget struct {
	nopTarget
	leaderCrashes, partitions, lags int
}

func (r *recordingReplTarget) CrashLeader()                { r.leaderCrashes++ }
func (r *recordingReplTarget) PartitionLeader(netsim.Time) { r.partitions++ }
func (r *recordingReplTarget) LagStandby(netsim.Time)      { r.lags++ }

// Kill the leader mid-deploy: the client saw no outcome for its last
// deploy, the standby auto-promotes, the client replays the ambiguous
// deploy and finishes the workload — and the survivor's state is
// byte-identical to a run where nothing crashed.
func TestReplLeaderCrashMidDeployConvergesWithBaseline(t *testing.T) {
	const n, killIdx = 6, 3
	want := baselineCanonical(t, n, killIdx)

	p := newReplPair(t, ReplPairOptions{FailoverAfter: 150 * time.Millisecond})
	ids := make([]string, n)
	for i := 0; i < 3; i++ {
		d, err := p.A.Ctl.Deploy(replRequest(i))
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		ids[i] = d.ID
	}

	// The crash: deploy 2's admission is journaled and replicated, but
	// the "client" never hears back — exactly the ambiguous window a
	// mid-deploy leader kill leaves behind.
	p.CrashLeader()

	waitRepl(t, "standby auto-promotion", func() bool {
		return p.B.Node.Role() == controller.RoleLeader
	})
	if p.Leader() != p.B {
		t.Fatal("survivor is not the current leader")
	}

	// Replay the ambiguous deploy: idempotent, same deployment.
	d, reused, err := p.B.Ctl.DeployIdempotent(replRequest(2))
	if err != nil {
		t.Fatalf("replay deploy 2: %v", err)
	}
	if !reused || d.ID != ids[2] {
		t.Fatalf("replay: reused=%v id=%s, want reuse of %s", reused, d.ID, ids[2])
	}

	for i := 3; i < n; i++ {
		d, err := p.B.Ctl.Deploy(replRequest(i))
		if err != nil {
			t.Fatalf("deploy %d on survivor: %v", i, err)
		}
		ids[i] = d.ID
	}
	if err := p.B.Ctl.Kill(ids[killIdx]); err != nil {
		t.Fatalf("kill on survivor: %v", err)
	}

	got := p.B.Store.State().Canonical()
	if !bytes.Equal(got, want) {
		t.Errorf("survivor state diverged from uncrashed baseline:\nbaseline:\n%s\nsurvivor:\n%s", want, got)
	}
}

// Partition the leader from its standby (clients still reach both):
// the leader must fence itself instead of forking history, the
// standby takes over, and after the heal the deposed leader's
// unreplicated suffix is discarded — both nodes converge on a state
// byte-identical to an unfaulted run.
func TestReplPartitionFencesLeaderAndConverges(t *testing.T) {
	const n = 3
	want := baselineCanonical(t, n, -1)

	p := newReplPair(t, ReplPairOptions{
		AckTimeout:    300 * time.Millisecond,
		FailoverAfter: 150 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		if _, err := p.A.Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}

	p.Partition()

	// The deploy on the isolated leader blocks on sync replication,
	// then fails as the leader fences itself.
	_, err := p.A.Ctl.Deploy(replRequest(2))
	if err == nil {
		t.Fatal("deploy on a partitioned leader succeeded; history may have forked")
	}
	if !errors.Is(err, replication.ErrFenced) {
		t.Fatalf("partitioned deploy error = %v, want ErrFenced", err)
	}
	waitRepl(t, "old leader fenced", func() bool { return p.A.Node.Fenced() })

	// The standby, hearing silence, promotes itself; the client
	// retries there.
	waitRepl(t, "standby auto-promotion", func() bool {
		return p.B.Node.Role() == controller.RoleLeader
	})
	if _, err := p.B.Ctl.Deploy(replRequest(2)); err != nil {
		t.Fatalf("retry on new leader: %v", err)
	}

	p.Heal()

	// The new leader resynchronizes the deposed one; its journaled-
	// but-unacknowledged deploy 2 is discarded for the survivor's.
	waitRepl(t, "deposed leader resync", func() bool {
		return bytes.Equal(p.A.Store.State().Canonical(), p.B.Store.State().Canonical())
	})
	got := p.B.Store.State().Canonical()
	if !bytes.Equal(got, want) {
		t.Errorf("converged state diverged from unfaulted baseline:\nbaseline:\n%s\nconverged:\n%s", want, got)
	}
	// And the fence holds after the heal: direct appends on the
	// deposed node still fail.
	if err := p.A.Node.Append(journal.Record{Type: journal.EvReject, Reason: "probe"}); !errors.Is(err, replication.ErrFenced) {
		t.Errorf("deposed leader Append = %v, want ErrFenced", err)
	}
}

// A lagged replication stream slows sync admissions but loses
// nothing: the standby converges once the lag lifts.
func TestReplStandbyLagCatchesUp(t *testing.T) {
	const n = 4
	want := baselineCanonical(t, n, -1)

	p := newReplPair(t, ReplPairOptions{AckTimeout: 5 * time.Second})
	p.SetLag(50 * time.Millisecond)
	for i := 0; i < n; i++ {
		if _, err := p.A.Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d under lag: %v", i, err)
		}
	}
	p.SetLag(0)

	waitRepl(t, "standby catch-up", func() bool {
		return p.B.Node.Info().LagRecords == 0 &&
			bytes.Equal(p.B.Store.State().Canonical(), p.A.Store.State().Canonical())
	})
	if got := p.A.Store.State().Canonical(); !bytes.Equal(got, want) {
		t.Errorf("lagged run diverged from baseline:\nbaseline:\n%s\ngot:\n%s", want, got)
	}
	if p.B.Ctl.Deployments(); len(p.B.Ctl.Deployments()) != n {
		t.Errorf("standby holds %d deployments, want %d", len(p.B.Ctl.Deployments()), n)
	}
}
