package faults

import (
	"fmt"
	"strings"
	"testing"

	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

const operatorHTTPPolicy = `
reach from internet tcp src port 80 -> HTTPOptimizer -> client
`

// Mirror-style chaos modules: every udp probe in yields exactly one
// packet out, so workload accounting is exact. Half the fleet carries
// a FlowMeter, exercising the stateful checkpoint/restore paths.
const chaosStateless = `
in :: FromNetfront();
f :: IPFilter(allow udp);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`

const chaosStateful = `
in :: FromNetfront();
f :: IPFilter(allow udp);
fm :: FlowMeter();
mir :: IPMirror();
out :: ToNetfront();
in -> f -> fm -> mir -> out;
`

const (
	chaosModules = 8
	probesPerMod = 100
	chaosHorizon = 4 * netsim.Second
)

var (
	probeSpacing   = netsim.Millis(40)
	checkpointEach = netsim.Millis(250)
)

func probe(flow int) *packet.Packet {
	return &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("8.8.8.8"),
		DstIP:    0, // Cluster.Send resolves the module's current address
		SrcPort:  uint16(10000 + flow),
		DstPort:  53,
		TTL:      64,
		Payload:  make([]byte, 100),
	}
}

// chaosRun builds a Fig.3 cluster, deploys the module fleet, arms a
// seeded fault plan plus a Fig.5-style probe workload, runs the
// simulation to quiescence and returns the cluster and plan.
func chaosRun(t *testing.T, clusterSeed, planSeed int64) (*Cluster, *Plan) {
	t.Helper()
	return chaosRunIn(t, clusterSeed, planSeed, "", nil, 0)
}

// chaosRunIn is chaosRun with controller persistence: a non-empty
// stateDir journals every controller transition there, crashAt kills
// and recovers the controller at fixed virtual times, and
// controllerCrashes adds seeded crash faults to the generated plan.
func chaosRunIn(t *testing.T, clusterSeed, planSeed int64, stateDir string, crashAt []netsim.Time, controllerCrashes int) (*Cluster, *Plan) {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterWithState(clusterSeed, topo, operatorHTTPPolicy, stateDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	for i := 0; i < chaosModules; i++ {
		cfg := chaosStateless
		if i%2 == 1 {
			cfg = chaosStateful
		}
		idx, err := cl.Deploy(controller.Request{
			Tenant:     fmt.Sprintf("tenant%d", i),
			ModuleName: fmt.Sprintf("chaos%d", i),
			Config:     cfg,
			Trust:      security.ThirdParty,
		})
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		if idx != i {
			t.Fatalf("module index %d != %d", idx, i)
		}
	}

	// Probe workload: staggered per module so arrivals interleave.
	for m := 0; m < chaosModules; m++ {
		m := m
		for k := 0; k < probesPerMod; k++ {
			k := k
			at := netsim.Time(k)*probeSpacing + netsim.Time(m)*netsim.Millis(1) + netsim.Millis(1)
			cl.Sim.At(at, func() { cl.Send(m, probe(m*probesPerMod+k)) })
		}
	}

	cl.ScheduleCheckpoints(checkpointEach, chaosHorizon)

	plan := Generate(planSeed, Config{
		Horizon:           chaosHorizon,
		VMCrashes:         6,
		BootFails:         2,
		Modules:           chaosModules,
		Platforms:         []string{"Platform1"},
		Outage:            true,
		OutageDuration:    netsim.Millis(500),
		LossBursts:        1,
		LossBurstLoss:     0.3,
		LossBurstDuration: netsim.Millis(200),
		ControllerCrashes: controllerCrashes,
	})
	plan.Schedule(cl.Sim, cl)
	for _, at := range crashAt {
		cl.Sim.At(at, cl.CrashController)
	}

	// One late probe per module proves eventual recovery end to end.
	var beforeFinal uint64
	cl.Sim.At(chaosHorizon+netsim.Second, func() { beforeFinal = cl.Received + cl.DroppedTotal() })
	for m := 0; m < chaosModules; m++ {
		m := m
		cl.Sim.At(chaosHorizon+netsim.Second, func() { cl.Send(m, probe(90000+m)) })
	}

	cl.Sim.Run()

	// Every in-horizon packet must be accounted before the late
	// probes fire: delivered, dropped or still buffered at that
	// instant — and the late probes themselves must all arrive (all
	// fault windows are long over).
	if lateSent := uint64(chaosModules); cl.Received+cl.DroppedTotal() < beforeFinal+lateSent {
		t.Errorf("late probes lost: received+dropped=%d, before=%d",
			cl.Received+cl.DroppedTotal(), beforeFinal)
	}
	return cl, plan
}

func TestChaosSeededRecovery(t *testing.T) {
	cl, _ := chaosRun(t, 11, 42)

	// No silent loss: every workload packet is delivered, counted in
	// an explicit drop counter, or still parked in a bounded buffer.
	total := cl.Received + cl.DroppedTotal() + uint64(cl.Buffered())
	if cl.Sent != total {
		t.Errorf("accounting broken: sent=%d but received+dropped+buffered=%d\n%s",
			cl.Sent, total, cl.Summary())
	}
	// Loss is bounded by the injected fault windows, not unbounded.
	if cl.DroppedTotal() > cl.Sent/4 {
		t.Errorf("dropped %d of %d sent — recovery not bounding loss\n%s",
			cl.DroppedTotal(), cl.Sent, cl.Summary())
	}
	// At quiescence nothing is stuck in a buffer.
	if cl.Buffered() != 0 {
		t.Errorf("%d packets still buffered at quiescence\n%s", cl.Buffered(), cl.Summary())
	}
	// Every recovery action succeeded and every deployment is back.
	if len(cl.Errs) != 0 {
		t.Errorf("recovery errors: %v", cl.Errs)
	}
	for m := 0; m < chaosModules; m++ {
		d := cl.dep(m)
		if d == nil {
			t.Fatalf("module %d lost its deployment", m)
		}
		if d.Status() != controller.StatusActive {
			t.Errorf("module %d status = %s", m, d.Status())
		}
	}
	// The plan actually exercised the machinery.
	sum := cl.Summary()
	p1 := cl.Platform("Platform1")
	if p1.Outages != 1 {
		t.Errorf("Platform1 outages = %d\n%s", p1.Outages, sum)
	}
	if cl.Ctl.Migrations == 0 {
		t.Errorf("no migrations despite a platform outage\n%s", sum)
	}
	crashes := uint64(0)
	for _, name := range cl.platformNames() {
		crashes += cl.Platform(name).Crashes
	}
	if crashes == 0 {
		t.Errorf("no VM crashes landed\n%s", sum)
	}
}

func TestChaosSameSeedByteIdentical(t *testing.T) {
	a, pa := chaosRun(t, 11, 42)
	b, pb := chaosRun(t, 11, 42)
	if pa.Signature() != pb.Signature() {
		t.Fatal("same plan seed, different fault schedules")
	}
	if a.Summary() != b.Summary() {
		t.Errorf("same seeds, divergent outcomes:\n--- run A\n%s--- run B\n%s",
			a.Summary(), b.Summary())
	}
}

func TestChaosDifferentSeedsDivergeButReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	seen := map[string]int64{}
	for _, seed := range []int64{1, 2, 3} {
		a, pa := chaosRun(t, seed, seed*100)
		b, pb := chaosRun(t, seed, seed*100)
		if pa.Signature() != pb.Signature() || a.Summary() != b.Summary() {
			t.Fatalf("seed %d not reproducible", seed)
		}
		if prev, dup := seen[pa.Signature()]; dup {
			t.Errorf("seeds %d and %d produced identical fault schedules", prev, seed)
		}
		seen[pa.Signature()] = seed
		// Each sweep run must also hold the no-silent-loss invariant.
		total := a.Received + a.DroppedTotal() + uint64(a.Buffered())
		if a.Sent != total {
			t.Errorf("seed %d accounting broken: sent=%d accounted=%d\n%s",
				seed, a.Sent, total, a.Summary())
		}
		if len(a.Errs) != 0 {
			t.Errorf("seed %d recovery errors: %v", seed, a.Errs)
		}
	}
}

func TestClusterSummaryShape(t *testing.T) {
	cl, _ := chaosRun(t, 11, 42)
	sum := cl.Summary()
	for _, want := range []string{"sent=", "platform Platform1:", "platform Platform2:", "platform Platform3:", "deployment pm-"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
