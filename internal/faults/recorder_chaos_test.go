package faults

import (
	"testing"
	"time"

	"github.com/in-net/innet/internal/telemetry"
)

// findEvent returns the lowest-Seq event of the given type recorded on
// rec, or nil.
func findEvent(rec *telemetry.Recorder, typ string) *telemetry.Event {
	var found *telemetry.Event
	for _, ev := range rec.Recent(0) {
		if ev.Type == typ && (found == nil || ev.Seq < found.Seq) {
			e := ev
			found = &e
		}
	}
	return found
}

// Crash the 3-node group's leader and drive a platform failover on the
// new leader: its flight recorder must tell the whole story in order —
// election won, platform marked down, module failed over — exactly the
// sequence a postmortem dump would show an operator.
func TestFlightRecorderLeaderCrashSequence(t *testing.T) {
	g := newReplGroup(t, 3, ReplGroupOptions{FailoverAfter: 150 * time.Millisecond})

	d, err := g.Nodes[0].Ctl.Deploy(replRequest(0))
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	platform := d.Platform

	g.Crash(0)

	idx := awaitLeader(t, g)
	if idx == 0 {
		t.Fatal("crashed node reported as leader")
	}
	rec := g.Nodes[idx].Rec

	// The election the crash forced must be on the new leader's record.
	waitRepl(t, "election-won event on new leader", func() bool {
		return findEvent(rec, "election-won") != nil
	})
	won := findEvent(rec, "election-won")
	if won.Source != "replication" {
		t.Fatalf("election-won source = %q, want replication", won.Source)
	}

	// Operator reacts to the dead platform on the new leader.
	lead := g.Nodes[idx].Ctl
	if marked := lead.MarkPlatformDown(platform); len(marked) == 0 {
		t.Fatalf("MarkPlatformDown(%s) marked no deployments", platform)
	}
	migrated, failed := lead.Failover(platform)
	if len(migrated) == 0 && len(failed) == 0 {
		t.Fatal("Failover produced neither migrations nor failures")
	}

	down := findEvent(rec, "platform-down")
	if down == nil {
		t.Fatal("no platform-down event recorded")
	}
	if down.Source != "controller" || down.Ref != platform {
		t.Fatalf("platform-down = source %q ref %q, want controller/%s",
			down.Source, down.Ref, platform)
	}
	move := findEvent(rec, "module-failover")
	if move == nil {
		move = findEvent(rec, "migration-failed")
	}
	if move == nil {
		t.Fatal("no module-failover or migration-failed event recorded")
	}

	// The recorder's sequence numbers must order the story correctly.
	if !(won.Seq < down.Seq && down.Seq < move.Seq) {
		t.Fatalf("event sequence out of order: election-won=%d platform-down=%d failover=%d",
			won.Seq, down.Seq, move.Seq)
	}
}
