package faults

import (
	"fmt"
	"sort"
	"strings"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
	"github.com/in-net/innet/internal/topology"
	"github.com/in-net/innet/internal/vswitch"
)

// Cluster binds the three recovery layers together for fault-injected
// runs: the controller (placement, health tracking, verified
// failover), one simulated platform per topology platform, and one
// back-end switch per platform (outage buffering). It implements
// Target, so a Plan can be scheduled straight onto it, and routes
// workload packets by deployment — not by address — so traffic
// follows modules across migrations.
type Cluster struct {
	Sim *netsim.Sim
	Ctl *controller.Controller

	// topo / policy / opts / stateDir let CrashController rebuild the
	// controller from scratch; store is the open journal (nil when the
	// cluster runs without persistence).
	topo     *topology.Topology
	policy   string
	opts     controller.Options
	stateDir string
	store    *journal.Store
	// Recoveries counts completed controller crash-recover cycles.
	Recoveries int

	platforms map[string]*platform.Platform
	switches  map[string]*vswitch.Switch
	// depIDs orders deployments; fault Module indexes resolve here.
	depIDs []string
	rules  map[string]*vswitch.Rule
	ruleOn map[string]string // deployment ID -> switch (platform) name

	lossUntil map[string]netsim.Time
	lossProb  map[string]float64

	// Sent / Received count workload packets in and module emissions
	// out. LostOnLink counts loss-burst drops. Errs records recovery
	// actions that failed (empty on a healthy run).
	Sent, Received, LostOnLink uint64
	Errs                       []string
}

// NewCluster builds a fault-injectable cluster over a topology. The
// seed drives the virtual clock's RNG (loss bursts); pair it with a
// Plan generated from the same or a different seed as the experiment
// demands.
func NewCluster(seed int64, topo *topology.Topology, operatorPolicy string) (*Cluster, error) {
	return NewClusterWithState(seed, topo, operatorPolicy, "")
}

// NewClusterWithState additionally journals every controller
// transition under stateDir (an existing directory), arming the
// cluster for KindControllerCrash faults. An empty stateDir disables
// persistence — CrashController then records an error and does
// nothing.
func NewClusterWithState(seed int64, topo *topology.Topology, operatorPolicy, stateDir string) (*Cluster, error) {
	return NewClusterWithOptions(seed, topo, operatorPolicy, stateDir, controller.Options{})
}

// NewClusterWithOptions is NewClusterWithState with explicit controller
// options — the options survive controller crashes, so a cluster built
// with (say) the admission cache disabled restores a controller with
// the cache disabled too.
func NewClusterWithOptions(seed int64, topo *topology.Topology, operatorPolicy, stateDir string, opts controller.Options) (*Cluster, error) {
	ctl, err := controller.NewWithOptions(topo, operatorPolicy, opts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Sim:       netsim.New(seed),
		Ctl:       ctl,
		topo:      topo,
		policy:    operatorPolicy,
		opts:      opts,
		stateDir:  stateDir,
		platforms: make(map[string]*platform.Platform),
		switches:  make(map[string]*vswitch.Switch),
		rules:     make(map[string]*vswitch.Rule),
		ruleOn:    make(map[string]string),
		lossUntil: make(map[string]netsim.Time),
		lossProb:  make(map[string]float64),
	}
	if stateDir != "" {
		store, err := journal.Open(stateDir, journal.Options{Sync: journal.SyncNone})
		if err != nil {
			return nil, err
		}
		c.store = store
		ctl.AttachJournal(store)
	}
	for _, name := range topo.Platforms() {
		p := platform.New(c.Sim, platform.DefaultModel(), 16*1024)
		sw := vswitch.NewSharded(vswitch.DefaultShards)
		sw.ToModule = func(module uint32, pk *packet.Packet) {
			p.Deliver(pk, c.recv)
		}
		c.platforms[name] = p
		c.switches[name] = sw
	}
	return c, nil
}

func (c *Cluster) recv(iface int, pk *packet.Packet) { c.Received++ }

// Platform returns a platform simulator by name (for assertions).
func (c *Cluster) Platform(name string) *platform.Platform { return c.platforms[name] }

// Switch returns a platform's back-end switch by name.
func (c *Cluster) Switch(name string) *vswitch.Switch { return c.switches[name] }

// Deploy verifies and places a request, registers the module on its
// hosting platform and installs the steering rule. The returned index
// identifies the module for Send and for fault plans.
func (c *Cluster) Deploy(req controller.Request) (int, error) {
	dep, err := c.Ctl.Deploy(req)
	if err != nil {
		return -1, err
	}
	if err := c.platforms[dep.Platform].Register(dep.PlatformSpec()); err != nil {
		return -1, err
	}
	c.installRule(dep)
	c.depIDs = append(c.depIDs, dep.ID)
	return len(c.depIDs) - 1, nil
}

func (c *Cluster) installRule(dep *controller.Deployment) {
	sw := c.switches[dep.Platform]
	r := sw.Install(vswitch.Rule{
		Match:  vswitch.Match{DstIP: dep.Addr},
		Action: vswitch.ActToModule,
		Module: dep.Addr,
	})
	c.rules[dep.ID] = r
	c.ruleOn[dep.ID] = dep.Platform
}

// dep resolves a module index to its current deployment (placements
// move on failover).
func (c *Cluster) dep(module int) *controller.Deployment {
	if module < 0 || module >= len(c.depIDs) {
		return nil
	}
	d, ok := c.Ctl.Get(c.depIDs[module])
	if !ok {
		return nil
	}
	return d
}

// Send pushes one workload packet toward a module at the current
// virtual time. The destination address is resolved now, so traffic
// follows the module to its post-failover home.
func (c *Cluster) Send(module int, pk *packet.Packet) {
	d := c.dep(module)
	if d == nil {
		return
	}
	c.Sent++
	name := d.Platform
	if until, ok := c.lossUntil[name]; ok && c.Sim.Now() < until {
		if c.Sim.Rand().Float64() < c.lossProb[name] {
			c.LostOnLink++
			return
		}
	}
	pk.DstIP = d.Addr
	c.switches[name].Process(pk)
}

// ---- Target ----------------------------------------------------------

// CrashVM kills the guest currently serving a module.
func (c *Cluster) CrashVM(module int) {
	if d := c.dep(module); d != nil {
		c.platforms[d.Platform].CrashVM(d.Addr)
	}
}

// FailNextBoot arms a boot failure for a module's next instantiation.
func (c *Cluster) FailNextBoot(module int) {
	if d := c.dep(module); d != nil {
		c.platforms[d.Platform].FailNextBoot(d.Addr)
	}
}

// PlatformDown simulates a platform outage end to end: the host dies,
// its switch starts buffering, the controller marks it unhealthy and
// every module hosted there is re-verified and migrated to an
// alternate platform (or marked failed).
func (c *Cluster) PlatformDown(name string) {
	c.platforms[name].Fail()
	c.switches[name].SetDown(true)
	c.Ctl.MarkPlatformDown(name)
	migrated, failed := c.Ctl.Failover(name)
	for _, m := range migrated {
		// Tear down the stale placement...
		c.platforms[m.From.Platform].Unregister(m.From.Addr)
		if r := c.rules[m.From.ID]; r != nil {
			if err := c.switches[c.ruleOn[m.From.ID]].Remove(r); err != nil {
				c.Errs = append(c.Errs, fmt.Sprintf("rule remove %s: %v", m.From.ID, err))
			}
		}
		// ...and stand up the verified replacement.
		if err := c.platforms[m.To.Platform].Register(m.To.PlatformSpec()); err != nil {
			c.Errs = append(c.Errs, fmt.Sprintf("register %s: %v", m.To.ID, err))
			continue
		}
		c.installRule(m.To)
	}
	for _, d := range failed {
		c.Errs = append(c.Errs, fmt.Sprintf("failover %s: no alternate platform", d.ID))
	}
}

// PlatformUp recovers a platform: buffered switch traffic is
// re-dispatched and the controller marks the platform healthy again.
func (c *Cluster) PlatformUp(name string) {
	c.platforms[name].Recover()
	c.Ctl.MarkPlatformUp(name)
	c.switches[name].SetDown(false)
}

// LossBurst degrades a platform's access link: packets sent toward it
// drop with probability loss until now+dur.
func (c *Cluster) LossBurst(name string, loss float64, dur netsim.Time) {
	c.lossProb[name] = loss
	c.lossUntil[name] = c.Sim.Now() + dur
}

// clusterInventory is the recovery re-attach probe: a deployment is
// still present when its platform simulator is up and reports a
// module spec at the journaled address.
type clusterInventory struct{ c *Cluster }

func (ci clusterInventory) HasModule(name string, addr uint32) bool {
	p := ci.c.platforms[name]
	return p != nil && !p.Down() && p.HasModule(addr)
}

// CrashController kills the controller process mid-run and restarts
// it: all in-memory controller state is discarded, a fresh store is
// opened over the state dir (exactly the restart path innetd takes),
// and the controller is rebuilt from snapshot + journal. Deployments
// whose platform vanished while the controller was down are re-placed
// and their dataplane rules moved. Without a state dir the fault is
// recorded in Errs and skipped.
func (c *Cluster) CrashController() {
	if c.store == nil {
		c.Errs = append(c.Errs, "controller-crash: no state dir; fault skipped")
		return
	}
	// Only the state dir survives the crash.
	old := make(map[string]*controller.Deployment)
	for _, d := range c.Ctl.Deployments() {
		old[d.ID] = d
	}
	if err := c.store.Close(); err != nil {
		c.Errs = append(c.Errs, fmt.Sprintf("controller-crash: close store: %v", err))
	}
	store, err := journal.Open(c.stateDir, journal.Options{Sync: journal.SyncNone})
	if err != nil {
		c.Errs = append(c.Errs, fmt.Sprintf("controller-crash: reopen journal: %v", err))
		return
	}
	ctl, rep, err := controller.Restore(c.topo, c.policy, c.opts, store.State(), clusterInventory{c}, store)
	if err != nil {
		store.Close()
		c.Errs = append(c.Errs, fmt.Sprintf("controller-crash: restore: %v", err))
		return
	}
	c.Ctl = ctl
	c.store = store
	// Move the dataplane for re-placed deployments: tear down the
	// stale registration and rule, stand up the recovered placement.
	for _, id := range rep.Replaced {
		nd, ok := ctl.Get(id)
		if !ok {
			continue
		}
		if od := old[id]; od != nil {
			c.platforms[od.Platform].Unregister(od.Addr)
			if r := c.rules[id]; r != nil {
				if err := c.switches[c.ruleOn[id]].Remove(r); err != nil {
					c.Errs = append(c.Errs, fmt.Sprintf("controller-crash: rule remove %s: %v", id, err))
				}
			}
		}
		if err := c.platforms[nd.Platform].Register(nd.PlatformSpec()); err != nil {
			c.Errs = append(c.Errs, fmt.Sprintf("controller-crash: register %s: %v", id, err))
			continue
		}
		c.installRule(nd)
	}
	c.Recoveries++
}

// Close releases the journal store (a no-op without persistence).
func (c *Cluster) Close() error {
	if c.store != nil {
		return c.store.Close()
	}
	return nil
}

// ---- Accounting ------------------------------------------------------

// ScheduleCheckpoints arms periodic suspend-image checkpoints of all
// stateful modules on every platform, every interval up to horizon
// (a finite schedule, so Sim.Run terminates).
func (c *Cluster) ScheduleCheckpoints(every, horizon netsim.Time) {
	for t := every; t <= horizon; t += every {
		c.Sim.At(t, func() {
			for _, name := range c.platformNames() {
				c.platforms[name].Checkpoint()
			}
		})
	}
}

func (c *Cluster) platformNames() []string {
	names := make([]string, 0, len(c.platforms))
	for name := range c.platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DroppedTotal sums every explicit drop counter across all layers.
func (c *Cluster) DroppedTotal() uint64 {
	n := c.LostOnLink
	for _, name := range c.platformNames() {
		n += c.platforms[name].DroppedTotal()
		n += c.switches[name].Misses() + c.switches[name].DroppedDown()
	}
	return n
}

// Buffered counts packets still parked in boot buffers, orphan queues
// and outage buffers.
func (c *Cluster) Buffered() int {
	n := 0
	for _, name := range c.platformNames() {
		n += c.platforms[name].PendingBuffered()
		n += c.switches[name].Buffered()
	}
	return n
}

// Summary renders the run's outcome deterministically: workload
// accounting, per-platform failure counters and final deployment
// statuses. Two runs with identical seeds must produce byte-identical
// summaries.
func (c *Cluster) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d received=%d dropped=%d buffered=%d lost-link=%d\n",
		c.Sent, c.Received, c.DroppedTotal(), c.Buffered(), c.LostOnLink)
	for _, name := range c.platformNames() {
		p := c.platforms[name]
		sw := c.switches[name]
		fmt.Fprintf(&b, "platform %s: boots=%d crashes=%d bootfails=%d respawns=%d outages=%d checkpoints=%d restores=%d drops[full=%d timeout=%d down=%d inflight=%d nomem=%d nomod=%d] sw[miss=%d down=%d redisp=%d]\n",
			name, p.Boots, p.Crashes, p.BootFailures, p.Respawns, p.Outages,
			p.Checkpoints, p.Restores,
			p.DroppedBufferFull, p.DroppedTimeout, p.DroppedDown, p.DroppedInFlight,
			p.DroppedNoMemory, p.DroppedNoModule,
			sw.Misses(), sw.DroppedDown(), sw.Redispatched())
	}
	deps := c.Ctl.Deployments()
	sort.Slice(deps, func(i, j int) bool { return deps[i].ID < deps[j].ID })
	for _, d := range deps {
		fmt.Fprintf(&b, "deployment %s: platform=%s addr=%s status=%s\n",
			d.ID, d.Platform, packet.IPString(d.Addr), d.Status())
	}
	for _, e := range c.Errs {
		fmt.Fprintf(&b, "err: %s\n", e)
	}
	return b.String()
}
