package faults

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/replication"
)

func newReplGroup(t *testing.T, n int, opts ReplGroupOptions) *ReplGroup {
	t.Helper()
	for i := 0; i < n; i++ {
		opts.Dirs = append(opts.Dirs, t.TempDir())
	}
	opts.Logf = t.Logf
	g, err := NewReplGroup(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// journalBytes reads a replica's raw journal file straight from disk.
func journalBytes(t *testing.T, g *ReplGroup, i int) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(g.Nodes[i].Dir, journal.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// requireIdenticalJournals asserts the given replicas hold
// byte-identical journal files — same frames, same CRCs, same order.
func requireIdenticalJournals(t *testing.T, g *ReplGroup, idx ...int) {
	t.Helper()
	want := journalBytes(t, g, idx[0])
	for _, i := range idx[1:] {
		if got := journalBytes(t, g, i); !bytes.Equal(want, got) {
			t.Fatalf("journal files of replicas %d and %d differ: %d vs %d bytes",
				idx[0], i, len(want), len(got))
		}
	}
}

// awaitLeader waits for the group to settle on exactly one live
// unfenced leader and returns its index.
func awaitLeader(t *testing.T, g *ReplGroup) int {
	t.Helper()
	waitRepl(t, "a settled leader", func() bool { return g.Leader() >= 0 })
	return g.Leader()
}

// Crash the 3-node group's leader mid-deploy: a majority survives, an
// election produces a term-2 leader, the ambiguous deploy replays
// idempotently, and the survivors end byte-identical to each other
// and state-identical to an unfaulted run.
func TestGroupLeaderCrashMidDeployConverges(t *testing.T) {
	const n, killIdx = 6, 3
	want := baselineCanonical(t, n, killIdx)

	g := newReplGroup(t, 3, ReplGroupOptions{FailoverAfter: 150 * time.Millisecond})
	ids := make([]string, n)
	for i := 0; i < 3; i++ {
		d, err := g.Nodes[0].Ctl.Deploy(replRequest(i))
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		ids[i] = d.ID
	}

	// The crash: deploy 2's admission is quorum-committed, but the
	// "client" never heard back — the ambiguous window a mid-deploy
	// leader kill leaves behind.
	g.Crash(0)

	idx := awaitLeader(t, g)
	if idx == 0 {
		t.Fatal("crashed node reported as leader")
	}
	lead := g.Nodes[idx].Ctl
	d, reused, err := lead.DeployIdempotent(replRequest(2))
	if err != nil {
		t.Fatalf("replay deploy 2: %v", err)
	}
	if !reused || d.ID != ids[2] {
		t.Fatalf("replay: reused=%v id=%s, want reuse of %s", reused, d.ID, ids[2])
	}
	for i := 3; i < n; i++ {
		d, err := lead.Deploy(replRequest(i))
		if err != nil {
			t.Fatalf("deploy %d on successor: %v", i, err)
		}
		ids[i] = d.ID
	}
	if err := lead.Kill(ids[killIdx]); err != nil {
		t.Fatalf("kill on successor: %v", err)
	}

	other := 3 - idx // the surviving follower (1 or 2)
	waitRepl(t, "survivor convergence", func() bool {
		return g.Nodes[other].Store.Seq() == g.Nodes[idx].Store.Seq()
	})
	if got := g.Nodes[idx].Store.State().Canonical(); !bytes.Equal(got, want) {
		t.Errorf("survivor state diverged from uncrashed baseline:\nbaseline:\n%s\nsurvivor:\n%s", want, got)
	}
	requireIdenticalJournals(t, g, idx, other)
}

// Isolate one follower of a 3-node group: strict appends keep
// committing on the remaining majority — the availability win a pair
// cannot offer — and the laggard converges byte-identically on heal.
func TestGroupFollowerIsolationDoesNotBlockQuorum(t *testing.T) {
	const n = 4
	want := baselineCanonical(t, n, -1)

	g := newReplGroup(t, 3, ReplGroupOptions{AckTimeout: 2 * time.Second})
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(0)); err != nil {
		t.Fatalf("deploy 0: %v", err)
	}
	g.Isolate(2)
	start := time.Now()
	for i := 1; i < n; i++ {
		if _, err := g.Nodes[0].Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d with follower isolated: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("majority commits took %v — blocked on the isolated follower?", elapsed)
	}
	if g.Nodes[0].Node.Fenced() {
		t.Fatal("leader fenced despite holding a majority")
	}
	g.Heal()
	waitRepl(t, "laggard catch-up", func() bool {
		return g.Nodes[2].Store.Seq() == g.Nodes[0].Store.Seq()
	})
	if got := g.Nodes[0].Store.State().Canonical(); !bytes.Equal(got, want) {
		t.Errorf("state diverged from baseline:\nbaseline:\n%s\ngot:\n%s", want, got)
	}
	requireIdenticalJournals(t, g, 0, 1, 2)
}

// A lagged stream toward one follower slows nothing: commits ride the
// faster follower, and the laggard converges once the lag lifts.
func TestGroupFollowerLagCatchesUp(t *testing.T) {
	const n = 4
	want := baselineCanonical(t, n, -1)

	g := newReplGroup(t, 3, ReplGroupOptions{AckTimeout: 5 * time.Second})
	g.SetLag(2, 50*time.Millisecond)
	for i := 0; i < n; i++ {
		if _, err := g.Nodes[0].Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d under lag: %v", i, err)
		}
	}
	g.SetLag(2, 0)
	waitRepl(t, "lagged follower catch-up", func() bool {
		return g.Nodes[2].Store.Seq() == g.Nodes[0].Store.Seq() &&
			g.Nodes[1].Store.Seq() == g.Nodes[0].Store.Seq()
	})
	if got := g.Nodes[0].Store.State().Canonical(); !bytes.Equal(got, want) {
		t.Errorf("state diverged from baseline:\nbaseline:\n%s\ngot:\n%s", want, got)
	}
	requireIdenticalJournals(t, g, 0, 1, 2)
}

// Isolate the LEADER of a 3-node group: it must fence within the ack
// timeout (no fork), the majority elects a successor that keeps
// serving, and on heal the deposed leader's unacknowledged suffix is
// discarded — every replica converges on the majority's history.
func TestGroupMinorityIsolatedLeaderFencesNoFork(t *testing.T) {
	const n = 3
	want := baselineCanonical(t, n, -1)

	g := newReplGroup(t, 3, ReplGroupOptions{
		AckTimeout:    300 * time.Millisecond,
		FailoverAfter: 150 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		if _, err := g.Nodes[0].Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	g.Isolate(0)

	// The deploy on the isolated leader journals locally, blocks on
	// quorum, then fails as the leader fences itself.
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(2)); !errors.Is(err, replication.ErrFenced) {
		t.Fatalf("isolated leader deploy = %v, want ErrFenced", err)
	}
	waitRepl(t, "old leader fenced", func() bool { return g.Nodes[0].Node.Fenced() })

	idx := awaitLeader(t, g)
	if idx == 0 {
		t.Fatal("fenced minority leader still counted as leader")
	}
	if _, err := g.Nodes[idx].Ctl.Deploy(replRequest(2)); err != nil {
		t.Fatalf("retry on successor: %v", err)
	}

	g.Heal()
	waitRepl(t, "deposed leader resync", func() bool {
		want := g.Nodes[idx].Store.Seq()
		return g.Nodes[0].Store.Seq() == want && g.Nodes[3-idx].Store.Seq() == want
	})
	for i := 0; i < 3; i++ {
		if got := g.Nodes[i].Store.State().Canonical(); !bytes.Equal(got, want) {
			t.Errorf("replica %d diverged from unfaulted baseline:\nbaseline:\n%s\ngot:\n%s", i, want, got)
		}
	}
	// The fence holds after the heal.
	if err := g.Nodes[0].Node.Append(journal.Record{Type: journal.EvReject, Reason: "probe"}); !errors.Is(err, replication.ErrFenced) {
		t.Errorf("deposed leader Append = %v, want ErrFenced", err)
	}
	// The majority pair never resynced: their journals stayed
	// byte-identical the whole way.
	other := 3 - idx
	requireIdenticalJournals(t, g, idx, other)
}

// Symmetric partition of a 5-node group (leader+1 vs 3): the minority
// leader fences, the 3-side elects and serves, and the heal folds the
// minority — including its discarded suffix — back into one history.
func TestGroupSymmetricPartitionFiveNodes(t *testing.T) {
	const n = 4
	want := baselineCanonical(t, n, -1)

	g := newReplGroup(t, 5, ReplGroupOptions{
		AckTimeout:    300 * time.Millisecond,
		FailoverAfter: 150 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		if _, err := g.Nodes[0].Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	g.SetPartition([][]int{{0, 1}, {2, 3, 4}})

	// Minority side: the leader (and the follower that acked its
	// doomed frame) cannot reach quorum — fence, no fork.
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(2)); !errors.Is(err, replication.ErrFenced) {
		t.Fatalf("minority leader deploy = %v, want ErrFenced", err)
	}

	// Majority side: elects among {2,3,4} and serves.
	var idx int
	waitRepl(t, "majority-side leader", func() bool {
		idx = g.Leader()
		return idx >= 2
	})
	for i := 2; i < n; i++ {
		if _, err := g.Nodes[idx].Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d on majority side: %v", i, err)
		}
	}

	g.Heal()
	waitRepl(t, "whole-group convergence", func() bool {
		want := g.Nodes[idx].Store.Seq()
		for i := 0; i < 5; i++ {
			if g.Nodes[i].Store.Seq() != want {
				return false
			}
		}
		return true
	})
	for i := 0; i < 5; i++ {
		if got := g.Nodes[i].Store.State().Canonical(); !bytes.Equal(got, want) {
			t.Errorf("replica %d diverged from unfaulted baseline", i)
		}
	}
	// The three majority replicas never diverged: byte-identical files.
	majority := []int{2, 3, 4}
	found := false
	for _, m := range majority {
		if m == idx {
			found = true
		}
	}
	if !found {
		t.Fatalf("leader %d is not on the majority side", idx)
	}
	requireIdenticalJournals(t, g, majority...)
}

// Rolling restarts: every follower (and finally the leader) crashes
// and rejoins; the group keeps serving throughout and ends with all
// three journal FILES byte-identical — restarts and failovers left no
// divergent bytes anywhere.
func TestGroupRollingRestartsConverge(t *testing.T) {
	const n = 5
	want := baselineCanonical(t, n, -1)

	g := newReplGroup(t, 3, ReplGroupOptions{
		FailoverAfter: 150 * time.Millisecond,
	})
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(0)); err != nil {
		t.Fatalf("deploy 0: %v", err)
	}

	// Roll follower 1.
	g.Crash(1)
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(1)); err != nil {
		t.Fatalf("deploy 1 with follower 1 down: %v", err)
	}
	if err := g.Restart(1); err != nil {
		t.Fatal(err)
	}
	waitRepl(t, "follower 1 rejoin", func() bool {
		return g.Nodes[1].Store.Seq() == g.Nodes[0].Store.Seq()
	})

	// Roll follower 2.
	g.Crash(2)
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(2)); err != nil {
		t.Fatalf("deploy 2 with follower 2 down: %v", err)
	}
	if err := g.Restart(2); err != nil {
		t.Fatal(err)
	}
	waitRepl(t, "follower 2 rejoin", func() bool {
		return g.Nodes[2].Store.Seq() == g.Nodes[0].Store.Seq()
	})

	// Roll the leader: crash, let the group elect, keep serving, then
	// bring the old leader back as a follower.
	g.Crash(0)
	idx := awaitLeader(t, g)
	if idx == 0 {
		t.Fatal("crashed leader still counted as leader")
	}
	for i := 3; i < n; i++ {
		if _, err := g.Nodes[idx].Ctl.Deploy(replRequest(i)); err != nil {
			t.Fatalf("deploy %d on successor: %v", i, err)
		}
	}
	if err := g.Restart(0); err != nil {
		t.Fatal(err)
	}
	waitRepl(t, "old leader rejoin as follower", func() bool {
		return g.Nodes[0].Store.Seq() == g.Nodes[idx].Store.Seq() &&
			g.Nodes[3-idx].Store.Seq() == g.Nodes[idx].Store.Seq()
	})
	if g.Nodes[0].Node.Role() == controller.RoleLeader {
		t.Fatal("restarted old leader came back as leader")
	}

	for i := 0; i < 3; i++ {
		if got := g.Nodes[i].Store.State().Canonical(); !bytes.Equal(got, want) {
			t.Errorf("replica %d diverged from unfaulted baseline:\nbaseline:\n%s\ngot:\n%s", i, want, got)
		}
	}
	// The strongest promise: every journal file in the group is
	// byte-identical — crashes, elections and rejoins included, the
	// replicated log IS the leader's log, bit for bit.
	requireIdenticalJournals(t, g, 0, 1, 2)
}

// A minority fragment must never elect: two nodes of five, even with
// automatic failover armed, stay followers forever.
func TestGroupMinorityFragmentCannotElect(t *testing.T) {
	g := newReplGroup(t, 5, ReplGroupOptions{
		AckTimeout:      200 * time.Millisecond,
		FailoverAfter:   100 * time.Millisecond,
		ElectionTimeout: 100 * time.Millisecond,
	})
	if _, err := g.Nodes[0].Ctl.Deploy(replRequest(0)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	// Cut followers 3 and 4 off together: they hear no leader, they
	// campaign — and with 2 of 5 votes they must never win.
	g.SetPartition([][]int{{0, 1, 2}, {3, 4}})
	time.Sleep(600 * time.Millisecond) // several failover+election cycles
	for _, i := range []int{3, 4} {
		if g.Nodes[i].Node.Role() == controller.RoleLeader {
			t.Fatalf("minority fragment node %d promoted itself", i)
		}
	}
	// The majority side never lost its leader.
	if g.Leader() != 0 {
		t.Fatalf("leader = %d, want 0 (undisturbed majority)", g.Leader())
	}
	g.Heal()
	waitRepl(t, "fragment rejoin", func() bool {
		return g.Nodes[3].Store.Seq() == g.Nodes[0].Store.Seq() &&
			g.Nodes[4].Store.Seq() == g.Nodes[0].Store.Seq()
	})
}
