// Package faults is the deterministic fault-injection and
// failure-recovery subsystem. The paper's operator "must handle
// failures" of platforms and processing modules (§4.3) and leans on
// ClickOS's fast boot and suspend/resume as the recovery primitives;
// this package supplies the other half of that story: a seeded
// FaultPlan scheduled on the netsim clock that kills guests, fails
// boots, takes platforms down and degrades links — reproducibly, so
// every chaos run is replayable bit for bit — and a Cluster harness
// that wires controller-driven failover to the simulated platforms
// and switches.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/in-net/innet/internal/netsim"
)

// Kind classifies one injected fault.
type Kind int

// Fault kinds.
const (
	// KindVMCrash kills the guest currently serving a module.
	KindVMCrash Kind = iota
	// KindBootFail arms the module's next VM boot to fail.
	KindBootFail
	// KindPlatformDown takes a whole platform (and its switch) down.
	KindPlatformDown
	// KindPlatformUp recovers a failed platform.
	KindPlatformUp
	// KindLossBurst degrades a platform's access link for a while.
	KindLossBurst
	// KindControllerCrash kills the controller process and restarts it
	// from its journal and snapshot (crash-safe controller recovery).
	KindControllerCrash
	// KindLeaderCrash kills the replication leader outright; the
	// standby must detect the silence, promote itself and take over.
	KindLeaderCrash
	// KindPartition isolates the leader from its standby — but not
	// from clients — for Duration. The leader must fence itself (sync
	// appends cannot be acknowledged) rather than fork history.
	KindPartition
	// KindStandbyLag delays the replication stream for Duration; the
	// standby falls behind and must catch up when the lag lifts.
	KindStandbyLag
)

func (k Kind) String() string {
	switch k {
	case KindVMCrash:
		return "vm-crash"
	case KindBootFail:
		return "boot-fail"
	case KindPlatformDown:
		return "platform-down"
	case KindPlatformUp:
		return "platform-up"
	case KindLossBurst:
		return "loss-burst"
	case KindControllerCrash:
		return "controller-crash"
	case KindLeaderCrash:
		return "leader-crash"
	case KindPartition:
		return "partition"
	case KindStandbyLag:
		return "standby-lag"
	default:
		return "unknown"
	}
}

// Fault is one scheduled failure event.
type Fault struct {
	// At is the injection time on the virtual clock.
	At netsim.Time
	// Kind selects the failure.
	Kind Kind
	// Module identifies the target module for VM-level faults (an
	// index the Target resolves; module addresses move on failover, so
	// plans never name raw addresses).
	Module int
	// Platform names the target for platform-level faults.
	Platform string
	// Loss is the drop probability of a KindLossBurst.
	Loss float64
	// Duration is the length of a KindLossBurst.
	Duration netsim.Time
}

// Target receives injected faults. Cluster implements it against the
// full controller + platform + vswitch stack; unit tests may
// implement it against a single layer.
type Target interface {
	CrashVM(module int)
	FailNextBoot(module int)
	PlatformDown(name string)
	PlatformUp(name string)
	LossBurst(name string, loss float64, dur netsim.Time)
	CrashController()
}

// ReplTarget optionally extends Target with replicated-controller
// faults. Schedule type-asserts for it, so targets without a
// replication pair silently skip these kinds and existing Target
// implementations keep compiling.
type ReplTarget interface {
	// CrashLeader kills the current leader outright.
	CrashLeader()
	// PartitionLeader cuts leader↔standby replication (clients keep
	// reaching both) for dur.
	PartitionLeader(dur netsim.Time)
	// LagStandby delays the replication stream for dur.
	LagStandby(dur netsim.Time)
}

// Plan is a deterministic fault schedule.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// Config shapes plan generation.
type Config struct {
	// Horizon bounds fault injection times: every fault (and outage
	// recovery) lands in (0, Horizon].
	Horizon netsim.Time
	// VMCrashes / BootFails are counts of VM-level faults spread over
	// Modules.
	VMCrashes, BootFails int
	// Modules is the number of deployed modules fault targets are
	// drawn from.
	Modules int
	// Platforms are the platform names outages and loss bursts pick
	// from.
	Platforms []string
	// Outage, when true, schedules one platform outage of
	// OutageDuration somewhere in the horizon's middle half.
	Outage         bool
	OutageDuration netsim.Time
	// LossBursts counts link-degradation windows (LossBurstLoss
	// probability for LossBurstDuration).
	LossBursts        int
	LossBurstLoss     float64
	LossBurstDuration netsim.Time
	// ControllerCrashes counts controller kill-and-recover events:
	// the controller process dies mid-run and is rebuilt from its
	// write-ahead journal and snapshot.
	ControllerCrashes int
	// LeaderCrash, when true, schedules one replication leader kill in
	// the horizon's middle half (at most one — a two-node pair has one
	// standby to fail over to).
	LeaderCrash bool
	// Partitions counts leader↔standby partition windows of
	// PartitionDuration each.
	Partitions        int
	PartitionDuration netsim.Time
	// StandbyLags counts replication-lag windows of
	// StandbyLagDuration each.
	StandbyLags        int
	StandbyLagDuration netsim.Time
}

// Generate derives a fault plan from a seed. Identical seeds and
// configs yield identical plans; different seeds yield different (but
// each reproducible) schedules.
func Generate(seed int64, cfg Config) *Plan {
	rng := rand.New(rand.NewSource(seed))
	pl := &Plan{Seed: seed}
	at := func(lo, hi float64) netsim.Time {
		span := float64(cfg.Horizon)
		return netsim.Time(span*lo + rng.Float64()*span*(hi-lo))
	}
	for i := 0; i < cfg.VMCrashes; i++ {
		pl.Faults = append(pl.Faults, Fault{
			At: at(0, 1), Kind: KindVMCrash, Module: rng.Intn(cfg.Modules),
		})
	}
	for i := 0; i < cfg.BootFails; i++ {
		pl.Faults = append(pl.Faults, Fault{
			At: at(0, 1), Kind: KindBootFail, Module: rng.Intn(cfg.Modules),
		})
	}
	if cfg.Outage && len(cfg.Platforms) > 0 {
		name := cfg.Platforms[rng.Intn(len(cfg.Platforms))]
		down := at(0.25, 0.5)
		pl.Faults = append(pl.Faults,
			Fault{At: down, Kind: KindPlatformDown, Platform: name},
			Fault{At: down + cfg.OutageDuration, Kind: KindPlatformUp, Platform: name},
		)
	}
	for i := 0; i < cfg.LossBursts && len(cfg.Platforms) > 0; i++ {
		pl.Faults = append(pl.Faults, Fault{
			At:       at(0, 0.9),
			Kind:     KindLossBurst,
			Platform: cfg.Platforms[rng.Intn(len(cfg.Platforms))],
			Loss:     cfg.LossBurstLoss,
			Duration: cfg.LossBurstDuration,
		})
	}
	// Controller crashes draw last so adding them to a config leaves
	// the rest of an existing seeded plan untouched.
	for i := 0; i < cfg.ControllerCrashes; i++ {
		pl.Faults = append(pl.Faults, Fault{At: at(0, 1), Kind: KindControllerCrash})
	}
	// Replication faults draw after everything that predates them, for
	// the same seeded-plan-stability reason.
	if cfg.LeaderCrash {
		pl.Faults = append(pl.Faults, Fault{At: at(0.25, 0.75), Kind: KindLeaderCrash})
	}
	for i := 0; i < cfg.Partitions; i++ {
		pl.Faults = append(pl.Faults, Fault{
			At: at(0, 0.75), Kind: KindPartition, Duration: cfg.PartitionDuration,
		})
	}
	for i := 0; i < cfg.StandbyLags; i++ {
		pl.Faults = append(pl.Faults, Fault{
			At: at(0, 0.75), Kind: KindStandbyLag, Duration: cfg.StandbyLagDuration,
		})
	}
	sort.SliceStable(pl.Faults, func(i, j int) bool { return pl.Faults[i].At < pl.Faults[j].At })
	return pl
}

// Schedule arms every fault on the simulator clock against a target.
// Replication kinds only fire when the target also implements
// ReplTarget.
func (pl *Plan) Schedule(sim *netsim.Sim, tgt Target) {
	rt, _ := tgt.(ReplTarget)
	for _, f := range pl.Faults {
		f := f
		sim.At(f.At, func() {
			switch f.Kind {
			case KindVMCrash:
				tgt.CrashVM(f.Module)
			case KindBootFail:
				tgt.FailNextBoot(f.Module)
			case KindPlatformDown:
				tgt.PlatformDown(f.Platform)
			case KindPlatformUp:
				tgt.PlatformUp(f.Platform)
			case KindLossBurst:
				tgt.LossBurst(f.Platform, f.Loss, f.Duration)
			case KindControllerCrash:
				tgt.CrashController()
			case KindLeaderCrash:
				if rt != nil {
					rt.CrashLeader()
				}
			case KindPartition:
				if rt != nil {
					rt.PartitionLeader(f.Duration)
				}
			case KindStandbyLag:
				if rt != nil {
					rt.LagStandby(f.Duration)
				}
			}
		})
	}
}

// Signature renders the schedule as a stable string — the chaos tests
// compare signatures to prove same-seed determinism and
// different-seed divergence.
func (pl *Plan) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", pl.Seed)
	for _, f := range pl.Faults {
		fmt.Fprintf(&b, "%012d %s mod=%d plat=%s loss=%.3f dur=%d\n",
			f.At, f.Kind, f.Module, f.Platform, f.Loss, f.Duration)
	}
	return b.String()
}
