package faults

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/replication"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
)

// ReplGroupOptions shapes an N-replica controller group. Zero values
// get chaos-suite-tight defaults.
type ReplGroupOptions struct {
	// Dirs are the N journal directories (required, one per replica;
	// len(Dirs) fixes the group size, N ≥ 3 for quorum semantics).
	Dirs []string
	// AckTimeout bounds sync replication: how long a deploy blocks
	// before a minority leader fences itself (default 500ms).
	AckTimeout time.Duration
	// FailoverAfter is a follower's silence threshold before it
	// campaigns; 0 disables automatic elections (manual Promote).
	FailoverAfter time.Duration
	// ElectionTimeout bounds one vote round and paces campaign
	// retries (default 200ms).
	ElectionTimeout time.Duration
	// HeartbeatEvery / RedialEvery pace the streams (defaults 20ms /
	// 10ms).
	HeartbeatEvery, RedialEvery time.Duration
	// Logf receives protocol events (nil = silent).
	Logf func(format string, args ...any)
}

func (o *ReplGroupOptions) defaults() {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 500 * time.Millisecond
	}
	if o.ElectionTimeout <= 0 {
		o.ElectionTimeout = 200 * time.Millisecond
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 20 * time.Millisecond
	}
	if o.RedialEvery <= 0 {
		o.RedialEvery = 10 * time.Millisecond
	}
}

// ReplGroup is an N-replica controller group over real loopback TCP
// with a per-link fault surface: crash any node (and restart it into
// the same listen address), partition the group into arbitrary sets,
// or lag the stream toward one node. It is the quorum analogue of
// ReplPair.
type ReplGroup struct {
	Nodes []*ReplNode
	opts  ReplGroupOptions
	gate  *meshGate

	mu      sync.Mutex
	crashed map[int]bool
	// addrs pins each replica's replication listen address so a
	// restarted node rebinds where its peers expect it.
	addrs []string
}

// NewReplGroup boots len(opts.Dirs) replicas: node 0 as the leader,
// the rest as followers, every node holding every other as a peer.
// All replication dials (streams and vote solicitations) go through a
// mesh gate the fault methods control.
func NewReplGroup(opts ReplGroupOptions) (*ReplGroup, error) {
	if len(opts.Dirs) < 2 {
		return nil, fmt.Errorf("faults: replication group needs ≥ 2 dirs, got %d", len(opts.Dirs))
	}
	opts.defaults()
	g := &ReplGroup{
		opts:    opts,
		gate:    newMeshGate(),
		crashed: make(map[int]bool),
		addrs:   make([]string, len(opts.Dirs)),
	}
	for i, dir := range opts.Dirs {
		role := controller.RoleStandby
		if i == 0 {
			role = controller.RoleLeader
		}
		node, err := g.bootReplica(i, dir, role, "127.0.0.1:0", false)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("faults: boot replica %d: %w", i, err)
		}
		g.Nodes = append(g.Nodes, node)
		g.addrs[i] = node.Node.Addr()
		g.gate.register(g.addrs[i], i)
	}
	g.wirePeers()
	return g, nil
}

// bootReplica builds one replica. restore=false boots a fresh
// controller (initial group bring-up); restore=true replays the
// journal dir through controller.Restore, exactly like a crashed
// innetd coming back.
func (g *ReplGroup) bootReplica(i int, dir string, role controller.Role, listen string, restore bool) (*ReplNode, error) {
	topo, err := topology.PaperFig3()
	if err != nil {
		return nil, err
	}
	store, err := journal.Open(dir, journal.Options{Sync: journal.SyncNone, CompactEvery: -1})
	if err != nil {
		return nil, err
	}
	var ctl *controller.Controller
	if restore {
		ctl, _, err = controller.Restore(topo, "", controller.Options{}, store.State(), nil, store)
	} else {
		ctl, err = controller.New(topo, "")
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	name := fmt.Sprintf("node%d", i)
	logf := g.opts.Logf
	rec := telemetry.NewRecorder(0)
	ctl.SetRecorder(rec)
	store.SetRecorder(rec)
	node, err := replication.NewNode(store, ctl, replication.Config{
		Role:            role,
		ListenAddr:      listen,
		AckTimeout:      g.opts.AckTimeout,
		FailoverAfter:   g.opts.FailoverAfter,
		ElectionTimeout: g.opts.ElectionTimeout,
		HeartbeatEvery:  g.opts.HeartbeatEvery,
		RedialEvery:     g.opts.RedialEvery,
		Dial:            g.gate.dialFrom(i),
		Rec:             rec,
		Logf: func(format string, args ...any) {
			if logf != nil {
				logf(name+": "+format, args...)
			}
		},
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	ctl.AttachJournal(node)
	if err := node.Start(); err != nil {
		node.Close()
		store.Close()
		return nil, err
	}
	return &ReplNode{Name: name, Dir: dir, Ctl: ctl, Store: store, Node: node, Rec: rec}, nil
}

// wirePeers gives every live replica every other replica's address.
// AddPeer is idempotent, so re-wiring after a restart is safe.
func (g *ReplGroup) wirePeers() {
	for i, n := range g.Nodes {
		if n == nil {
			continue
		}
		for j, addr := range g.addrs {
			if i != j {
				n.Node.AddPeer(addr)
			}
		}
	}
}

// Leader returns the index of the sole live unfenced leader, or -1
// (none, or a transient two-leader window an election is resolving).
func (g *ReplGroup) Leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := -1
	for i, n := range g.Nodes {
		if g.crashed[i] || n == nil {
			continue
		}
		if n.Node.Role() == controller.RoleLeader && !n.Node.Fenced() {
			if idx >= 0 {
				return -1
			}
			idx = i
		}
	}
	return idx
}

// Crash kills replica i outright: replication stack and store close,
// streams drop mid-flight, exactly like a process kill. The journal
// directory stays for post-mortems and Restart.
func (g *ReplGroup) Crash(i int) {
	g.mu.Lock()
	if g.crashed[i] {
		g.mu.Unlock()
		return
	}
	g.crashed[i] = true
	n := g.Nodes[i]
	g.mu.Unlock()
	n.Node.Close()
	n.Store.Close()
}

// Restart brings a crashed replica back as a follower on its original
// listen address, recovering controller state from its journal
// directory the way a restarted innetd would. The returned node
// replaces Nodes[i].
func (g *ReplGroup) Restart(i int) error {
	g.mu.Lock()
	if !g.crashed[i] {
		g.mu.Unlock()
		return fmt.Errorf("faults: replica %d is not crashed", i)
	}
	dir := g.Nodes[i].Dir
	addr := g.addrs[i]
	g.mu.Unlock()
	node, err := g.bootReplica(i, dir, controller.RoleStandby, addr, true)
	if err != nil {
		return fmt.Errorf("faults: restart replica %d: %w", i, err)
	}
	g.mu.Lock()
	g.Nodes[i] = node
	delete(g.crashed, i)
	g.mu.Unlock()
	g.wirePeers()
	return nil
}

// SetPartition splits the group into the given sets: traffic flows
// only within a set. Nodes not listed land in an implicit set of
// their own. Live connections crossing set boundaries are severed.
func (g *ReplGroup) SetPartition(sets [][]int) {
	g.gate.setPartition(sets)
}

// Isolate cuts replica i off from everyone else.
func (g *ReplGroup) Isolate(i int) {
	n := len(g.addrs)
	rest := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			rest = append(rest, j)
		}
	}
	g.SetPartition([][]int{{i}, rest})
}

// Heal reconnects the whole group; redial loops recover on their own.
func (g *ReplGroup) Heal() {
	g.gate.setPartition(nil)
}

// SetLag delays every replication write toward replica i by d (0
// lifts the lag). The stream stays up; the follower just falls
// behind.
func (g *ReplGroup) SetLag(i int, d time.Duration) {
	g.gate.setLag(i, d)
}

// Close tears the whole group down.
func (g *ReplGroup) Close() {
	g.mu.Lock()
	nodes := make([]*ReplNode, 0, len(g.Nodes))
	for i, n := range g.Nodes {
		if n != nil && !g.crashed[i] {
			nodes = append(nodes, n)
		}
	}
	g.mu.Unlock()
	for _, n := range nodes {
		n.Node.Close()
	}
	for _, n := range nodes {
		n.Store.Close()
	}
}

// meshGate is the fault-injection point for a replica group: every
// node's dials (frame streams and vote solicitations alike) resolve
// the target address to a node index, so partitions are expressed as
// node sets and lag as a per-target delay. Live connections remember
// their endpoints, letting a partition sever exactly the links that
// cross it.
type meshGate struct {
	mu     sync.Mutex
	addrTo map[string]int
	// group assigns each node a partition cell; nodes default to cell
	// 0 (fully connected).
	group map[int]int
	lag   map[int]time.Duration
	conns map[*meshConn]struct{}
}

func newMeshGate() *meshGate {
	return &meshGate{
		addrTo: make(map[string]int),
		group:  make(map[int]int),
		lag:    make(map[int]time.Duration),
		conns:  make(map[*meshConn]struct{}),
	}
}

func (m *meshGate) register(addr string, node int) {
	m.mu.Lock()
	m.addrTo[addr] = node
	m.mu.Unlock()
}

// reachableLocked reports whether from may talk to to under the
// current partition.
func (m *meshGate) reachableLocked(from, to int) bool {
	return m.group[from] == m.group[to]
}

func (m *meshGate) dialFrom(from int) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		m.mu.Lock()
		to, known := m.addrTo[addr]
		if !known {
			m.mu.Unlock()
			return nil, fmt.Errorf("faults: dial to unregistered address %s", addr)
		}
		if !m.reachableLocked(from, to) {
			m.mu.Unlock()
			return nil, fmt.Errorf("faults: partition separates node %d from node %d", from, to)
		}
		m.mu.Unlock()
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		mc := &meshConn{Conn: c, gate: m, from: from, to: to}
		m.mu.Lock()
		// A partition that raced the dial severs the conn immediately.
		if !m.reachableLocked(from, to) {
			m.mu.Unlock()
			c.Close()
			return nil, fmt.Errorf("faults: partition separates node %d from node %d", from, to)
		}
		m.conns[mc] = struct{}{}
		m.mu.Unlock()
		return mc, nil
	}
}

func (m *meshGate) setPartition(sets [][]int) {
	m.mu.Lock()
	m.group = make(map[int]int)
	for cell, set := range sets {
		for _, node := range set {
			// Cells start at 1 so unlisted nodes (implicit cell
			// -node-1) never share a cell with a listed one — or with
			// each other.
			m.group[node] = cell + 1
		}
	}
	if len(sets) > 0 {
		// Only with an explicit split do unlisted nodes land alone; an
		// empty split (Heal) leaves everyone in the common cell 0.
		for _, node := range m.addrTo {
			if _, listed := m.group[node]; !listed {
				m.group[node] = -node - 1
			}
		}
	}
	var cut []*meshConn
	for c := range m.conns {
		if !m.reachableLocked(c.from, c.to) {
			cut = append(cut, c)
			delete(m.conns, c)
		}
	}
	m.mu.Unlock()
	for _, c := range cut {
		c.Conn.Close()
	}
}

func (m *meshGate) setLag(node int, d time.Duration) {
	m.mu.Lock()
	if d > 0 {
		m.lag[node] = d
	} else {
		delete(m.lag, node)
	}
	m.mu.Unlock()
}

func (m *meshGate) lagFor(node int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lag[node]
}

func (m *meshGate) drop(c *meshConn) {
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// meshConn is a net.Conn the gate can sever (partition) and slow down
// (per-target lag).
type meshConn struct {
	net.Conn
	gate     *meshGate
	from, to int
}

func (c *meshConn) Write(b []byte) (int, error) {
	if d := c.gate.lagFor(c.to); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(b)
}

func (c *meshConn) Close() error {
	c.gate.drop(c)
	return c.Conn.Close()
}
