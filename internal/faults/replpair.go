package faults

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/replication"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
)

// ReplNode is one replica of a ReplPair: a controller, its journal
// store, and the replication node that binds them.
type ReplNode struct {
	Name  string
	Dir   string
	Ctl   *controller.Controller
	Store *journal.Store
	Node  *replication.Node
	// Rec is the node's flight recorder: controller, journal and
	// replication events all land here, so chaos tests can assert the
	// fault sequence a postmortem would show.
	Rec *telemetry.Recorder
}

// ReplPairOptions shapes a replicated pair. Zero values get
// chaos-suite-tight defaults.
type ReplPairOptions struct {
	// Dirs are the two journal directories (required).
	LeaderDir, StandbyDir string
	// AckTimeout is the leader's sync-replication ack bound; during a
	// partition this is how long a deploy blocks before the leader
	// fences itself (default 500ms).
	AckTimeout time.Duration
	// FailoverAfter is the standby's silence threshold before
	// auto-promotion; 0 disables the failure detector (manual
	// Promote).
	FailoverAfter time.Duration
	// HeartbeatEvery / RedialEvery pace the stream (defaults 20ms /
	// 10ms).
	HeartbeatEvery, RedialEvery time.Duration
	// Logf receives protocol events (nil = silent).
	Logf func(format string, args ...any)
}

// ReplPair is a leader/standby replicated controller pair over real
// loopback TCP, with a fault surface the chaos suite drives: crash
// the leader, partition the replication link (clients unaffected),
// or lag the stream. It is the replication analogue of Cluster.
type ReplPair struct {
	A, B *ReplNode // A boots as leader, B as standby
	gate *dialGate

	mu       sync.Mutex
	aCrashed bool
}

// NewReplPair boots the pair: B listens as a standby, A starts as the
// leader shipping to it; each holds the other as a peer so whichever
// side is leader after a failover can resynchronize the other. All
// replication dials go through a gate the fault methods control.
func NewReplPair(opts ReplPairOptions) (*ReplPair, error) {
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 500 * time.Millisecond
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 20 * time.Millisecond
	}
	if opts.RedialEvery <= 0 {
		opts.RedialEvery = 10 * time.Millisecond
	}
	p := &ReplPair{gate: newDialGate()}
	mk := func(name, dir string, role controller.Role) (*ReplNode, error) {
		topo, err := topology.PaperFig3()
		if err != nil {
			return nil, err
		}
		ctl, err := controller.New(topo, "")
		if err != nil {
			return nil, err
		}
		store, err := journal.Open(dir, journal.Options{Sync: journal.SyncNone, CompactEvery: -1})
		if err != nil {
			return nil, err
		}
		logf := opts.Logf
		rec := telemetry.NewRecorder(0)
		ctl.SetRecorder(rec)
		store.SetRecorder(rec)
		node, err := replication.NewNode(store, ctl, replication.Config{
			Role:           role,
			ListenAddr:     "127.0.0.1:0",
			AckTimeout:     opts.AckTimeout,
			FailoverAfter:  opts.FailoverAfter,
			HeartbeatEvery: opts.HeartbeatEvery,
			RedialEvery:    opts.RedialEvery,
			Dial:           p.gate.dial,
			Rec:            rec,
			Logf: func(format string, args ...any) {
				if logf != nil {
					logf(name+": "+format, args...)
				}
			},
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		ctl.AttachJournal(node)
		if err := node.Start(); err != nil {
			node.Close()
			store.Close()
			return nil, err
		}
		return &ReplNode{Name: name, Dir: dir, Ctl: ctl, Store: store, Node: node, Rec: rec}, nil
	}
	var err error
	if p.B, err = mk("standby", opts.StandbyDir, controller.RoleStandby); err != nil {
		return nil, fmt.Errorf("faults: boot standby: %w", err)
	}
	if p.A, err = mk("leader", opts.LeaderDir, controller.RoleLeader); err != nil {
		p.B.Node.Close()
		p.B.Store.Close()
		return nil, fmt.Errorf("faults: boot leader: %w", err)
	}
	// Cross-wire: the leader ships to the standby now; the standby
	// holds the leader as a dormant peer for after its promotion.
	p.A.Node.AddPeer(p.B.Node.Addr())
	p.B.Node.AddPeer(p.A.Node.Addr())
	return p, nil
}

// Leader returns the node currently acting as leader (nil during a
// failover window when neither side holds the role). A crashed node
// never counts, whatever role it died holding.
func (p *ReplPair) Leader() *ReplNode {
	p.mu.Lock()
	aCrashed := p.aCrashed
	p.mu.Unlock()
	for _, n := range []*ReplNode{p.A, p.B} {
		if n == p.A && aCrashed {
			continue
		}
		if n.Node.Role() == controller.RoleLeader && !n.Node.Fenced() {
			return n
		}
	}
	return nil
}

// CrashLeader kills node A's replication stack outright — streams
// drop mid-flight, exactly like a process kill. The store stays open
// so tests can post-mortem the crashed journal.
func (p *ReplPair) CrashLeader() {
	p.mu.Lock()
	p.aCrashed = true
	p.mu.Unlock()
	p.A.Node.Close()
}

// Partition cuts the replication link in both directions: every live
// gated connection drops and new dials fail until Heal. Client-facing
// controller calls on both nodes keep working (and on the leader,
// block on sync replication until it fences itself).
func (p *ReplPair) Partition() {
	p.gate.setPartitioned(true)
}

// Heal lifts the partition; redial loops reconnect on their own.
func (p *ReplPair) Heal() {
	p.gate.setPartitioned(false)
}

// SetLag delays every replication write by d (0 lifts the lag). The
// stream stays up; the standby just falls behind.
func (p *ReplPair) SetLag(d time.Duration) {
	p.gate.setDelay(d)
}

// Close tears both replicas down.
func (p *ReplPair) Close() {
	p.A.Node.Close()
	p.B.Node.Close()
	p.A.Store.Close()
	p.B.Store.Close()
}

// dialGate is the fault-injection point for replication streams: all
// peer dials go through it, so a partition can refuse new connections
// and sever live ones, and a lag window can delay writes.
type dialGate struct {
	mu          sync.Mutex
	partitioned bool
	delay       time.Duration
	conns       map[*gatedConn]struct{}
}

func newDialGate() *dialGate {
	return &dialGate{conns: make(map[*gatedConn]struct{})}
}

func (g *dialGate) dial(addr string) (net.Conn, error) {
	g.mu.Lock()
	if g.partitioned {
		g.mu.Unlock()
		return nil, fmt.Errorf("faults: replication link partitioned")
	}
	g.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	gc := &gatedConn{Conn: c, gate: g}
	g.mu.Lock()
	// A partition that raced the dial severs the conn immediately.
	if g.partitioned {
		g.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("faults: replication link partitioned")
	}
	g.conns[gc] = struct{}{}
	g.mu.Unlock()
	return gc, nil
}

func (g *dialGate) setPartitioned(on bool) {
	g.mu.Lock()
	g.partitioned = on
	var cut []*gatedConn
	if on {
		for c := range g.conns {
			cut = append(cut, c)
		}
		g.conns = make(map[*gatedConn]struct{})
	}
	g.mu.Unlock()
	for _, c := range cut {
		c.Conn.Close()
	}
}

func (g *dialGate) setDelay(d time.Duration) {
	g.mu.Lock()
	g.delay = d
	g.mu.Unlock()
}

func (g *dialGate) currentDelay() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.delay
}

func (g *dialGate) drop(c *gatedConn) {
	g.mu.Lock()
	delete(g.conns, c)
	g.mu.Unlock()
}

// gatedConn is a net.Conn the gate can sever (partition) and slow
// down (standby lag).
type gatedConn struct {
	net.Conn
	gate *dialGate
}

func (c *gatedConn) Write(b []byte) (int, error) {
	if d := c.gate.currentDelay(); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(b)
}

func (c *gatedConn) Close() error {
	c.gate.drop(c)
	return c.Conn.Close()
}
