package faults

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
)

func planConfig() Config {
	return Config{
		Horizon:           4 * netsim.Second,
		VMCrashes:         6,
		BootFails:         2,
		Modules:           8,
		Platforms:         []string{"Platform1"},
		Outage:            true,
		OutageDuration:    netsim.Millis(500),
		LossBursts:        1,
		LossBurstLoss:     0.3,
		LossBurstDuration: netsim.Millis(200),
	}
}

func TestGenerateSameSeedIdentical(t *testing.T) {
	a := Generate(42, planConfig())
	b := Generate(42, planConfig())
	if a.Signature() != b.Signature() {
		t.Errorf("same seed, different plans:\n%s\nvs\n%s", a.Signature(), b.Signature())
	}
}

func TestGenerateDifferentSeedsDiverge(t *testing.T) {
	a := Generate(1, planConfig())
	b := Generate(2, planConfig())
	if a.Signature() == b.Signature() {
		t.Error("different seeds produced identical plans")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := planConfig()
	pl := Generate(7, cfg)
	counts := map[Kind]int{}
	var last netsim.Time
	var downAt, upAt netsim.Time
	for _, f := range pl.Faults {
		counts[f.Kind]++
		if f.At < last {
			t.Fatalf("plan not time-ordered at %v", f.At)
		}
		last = f.At
		if f.At <= 0 || f.At > cfg.Horizon+cfg.OutageDuration {
			t.Errorf("fault at %d outside horizon", f.At)
		}
		switch f.Kind {
		case KindVMCrash, KindBootFail:
			if f.Module < 0 || f.Module >= cfg.Modules {
				t.Errorf("module %d out of range", f.Module)
			}
		case KindPlatformDown:
			downAt = f.At
		case KindPlatformUp:
			upAt = f.At
		}
	}
	want := map[Kind]int{
		KindVMCrash: cfg.VMCrashes, KindBootFail: cfg.BootFails,
		KindPlatformDown: 1, KindPlatformUp: 1, KindLossBurst: cfg.LossBursts,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s count = %d, want %d", k, counts[k], n)
		}
	}
	if upAt-downAt != cfg.OutageDuration {
		t.Errorf("outage window %d, want %d", upAt-downAt, cfg.OutageDuration)
	}
	if downAt < cfg.Horizon/4 || downAt > cfg.Horizon/2 {
		t.Errorf("outage at %d outside the horizon's middle half", downAt)
	}
}

type recordingTarget struct {
	events []Fault
	sim    *netsim.Sim
}

func (r *recordingTarget) record(f Fault) {
	f.At = r.sim.Now()
	r.events = append(r.events, f)
}
func (r *recordingTarget) CrashVM(m int)      { r.record(Fault{Kind: KindVMCrash, Module: m}) }
func (r *recordingTarget) FailNextBoot(m int) { r.record(Fault{Kind: KindBootFail, Module: m}) }
func (r *recordingTarget) PlatformDown(n string) {
	r.record(Fault{Kind: KindPlatformDown, Platform: n})
}
func (r *recordingTarget) PlatformUp(n string) { r.record(Fault{Kind: KindPlatformUp, Platform: n}) }
func (r *recordingTarget) LossBurst(n string, loss float64, d netsim.Time) {
	r.record(Fault{Kind: KindLossBurst, Platform: n, Loss: loss, Duration: d})
}
func (r *recordingTarget) CrashController() { r.record(Fault{Kind: KindControllerCrash}) }

func TestScheduleFiresEveryFaultAtItsTime(t *testing.T) {
	pl := Generate(3, planConfig())
	sim := netsim.New(3)
	tgt := &recordingTarget{sim: sim}
	pl.Schedule(sim, tgt)
	sim.Run()
	if len(tgt.events) != len(pl.Faults) {
		t.Fatalf("fired %d of %d faults", len(tgt.events), len(pl.Faults))
	}
	for i, f := range pl.Faults {
		got := tgt.events[i]
		if got.At != f.At || got.Kind != f.Kind || got.Module != f.Module || got.Platform != f.Platform {
			t.Errorf("event %d: got %+v, want %+v", i, got, f)
		}
	}
}
