// Batched measurement path: instead of injecting one template packet
// at a time from the measuring goroutine, a producer goroutine fills
// batches of pooled packets and hands them to the runner over a
// channel — the Go rendition of ClickOS's netfront burst ring. The
// channel handoff and the scheduler wakeups are per-BATCH, so their
// cost is amortized by the batch size; packets come from a
// packet.SyncPool so the steady state allocates nothing.
package dataplane

import (
	"time"

	"github.com/in-net/innet/internal/packet"
)

// DefaultBatchSize is the burst size used when callers pass 0 (the
// netfront ring burst of the paper's dataplane).
const DefaultBatchSize = 32

// MeasureBatched pushes n copies of the template through the router
// in batches of batchSize (0 = DefaultBatchSize), produced on a
// separate goroutine from a shared packet pool. batchSize 1
// degenerates to a per-packet handoff — the "before" configuration
// the batching is measured against.
func (r *Runner) MeasureBatched(template *packet.Packet, n, batchSize int) Result {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	pool := packet.NewSyncPool(cap(template.Payload))

	run := func(total int) {
		batches := make(chan []*packet.Packet, 4)
		go func() {
			sent := 0
			for sent < total {
				sz := batchSize
				if left := total - sent; sz > left {
					sz = left
				}
				b := make([]*packet.Packet, sz)
				for i := range b {
					pk := pool.Get()
					pk.CopyFrom(template)
					b[i] = pk
				}
				batches <- b
				sent += sz
			}
			close(batches)
		}()
		for b := range batches {
			for _, pk := range b {
				r.now += 1000
				r.router.Inject(r.ctx, 0, pk)
				pool.Put(pk)
			}
		}
	}

	// Warm up code paths, the pool and the channel.
	run(1000)
	r.tx = 0
	start := time.Now()
	run(n)
	elapsed := time.Since(start)
	res := Result{Packets: n, Elapsed: elapsed, Transmitted: r.tx}
	if elapsed > 0 {
		res.PPS = float64(n) / elapsed.Seconds()
		res.NsPerPacket = float64(elapsed.Nanoseconds()) / float64(n)
	}
	return res
}

// MeasureBatchedBest runs MeasureBatched trials times and keeps the
// fastest run, like MeasureBest.
func (r *Runner) MeasureBatchedBest(template *packet.Packet, n, batchSize, trials int) Result {
	var best Result
	for i := 0; i < trials; i++ {
		res := r.MeasureBatched(template, n, batchSize)
		if i == 0 || res.PPS > best.PPS {
			best = res
		}
	}
	return best
}
