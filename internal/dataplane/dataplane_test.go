package dataplane

import (
	"testing"

	_ "github.com/in-net/innet/internal/elements"
)

const plainChain = `
in :: FromNetfront();
f :: IPFilter(allow udp);
crc :: SetCRC32();
mir :: IPMirror();
out :: ToNetfront();
in -> f -> crc -> mir -> out;
`

const sandboxedChain = `
in :: FromNetfront();
f :: IPFilter(allow udp);
crc :: SetCRC32();
mir :: IPMirror();
ce :: ChangeEnforcer();
out :: ToNetfront();
in -> [0]ce;
ce[0] -> f;
f -> crc -> mir -> [1]ce;
ce[1] -> out;
`

func TestMeasureCountsAndRates(t *testing.T) {
	r, err := NewRunnerString(plainChain)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Measure(UDPTemplate(128), 10000)
	if res.Transmitted != 10000 {
		t.Errorf("transmitted = %d", res.Transmitted)
	}
	if res.PPS <= 0 || res.NsPerPacket <= 0 {
		t.Errorf("rates: %+v", res)
	}
}

func TestSandboxCostsMore(t *testing.T) {
	plain, err := NewRunnerString(plainChain)
	if err != nil {
		t.Fatal(err)
	}
	sandboxed, err := NewRunnerString(sandboxedChain)
	if err != nil {
		t.Fatal(err)
	}
	// The chain mirrors replies to the sender, so the enforcer's
	// implicit authorization passes them.
	p := UDPTemplate(64)
	a := plain.Measure(p, 20000)
	b := sandboxed.Measure(p, 20000)
	if b.Transmitted != 20000 {
		t.Fatalf("enforcer blocked traffic: transmitted = %d", b.Transmitted)
	}
	if b.NsPerPacket <= a.NsPerPacket*0.9 {
		t.Errorf("sandboxed path not slower: %.1f vs %.1f ns/pkt", b.NsPerPacket, a.NsPerPacket)
	}
}

func TestLineRateCap(t *testing.T) {
	// 1472 B at 10 GbE is ~836 kpps.
	lr := LineRatePPS(1472, 10e9)
	if lr < 800_000 || lr > 900_000 {
		t.Errorf("line rate for 1472B = %.0f", lr)
	}
	// 64 B is ~14.2 Mpps.
	lr64 := LineRatePPS(64, 10e9)
	if lr64 < 13e6 || lr64 > 15e6 {
		t.Errorf("line rate for 64B = %.0f", lr64)
	}
	if got := CapPPS(1e9, 64, 10e9); got != lr64 {
		t.Errorf("CapPPS above cap = %f", got)
	}
	if got := CapPPS(1000, 64, 10e9); got != 1000 {
		t.Errorf("CapPPS below cap = %f", got)
	}
}

func TestUDPTemplateSizes(t *testing.T) {
	for _, size := range []int{64, 128, 1472} {
		p := UDPTemplate(size)
		if p.Len() != size {
			t.Errorf("template %d -> %d", size, p.Len())
		}
	}
	if UDPTemplate(10).Len() != 28 {
		t.Error("sub-minimum template should clamp")
	}
}

func TestHotPathZeroAllocations(t *testing.T) {
	// The dataplane's per-packet path must not allocate: GC pauses
	// would otherwise dominate the microbenchmarks (the repro-band
	// concern about Go GC and packets).
	r, err := NewRunnerString(plainChain)
	if err != nil {
		t.Fatal(err)
	}
	tpl := UDPTemplate(64)
	work := tpl.Clone()
	r.Measure(tpl, 1000) // warm up maps and pools
	allocs := testing.AllocsPerRun(2000, func() {
		*work = *tpl
		r.now += 1000
		r.router.Inject(r.ctx, 0, work)
	})
	if allocs > 0 {
		t.Errorf("hot path allocates %.1f objects/packet, want 0", allocs)
	}
}

func TestRunnerErrors(t *testing.T) {
	if _, err := NewRunnerString("not a config ::"); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := NewRunnerString("d :: Discard();"); err == nil {
		t.Error("router without sources accepted")
	}
}

func BenchmarkPlainChain64(b *testing.B) {
	r, err := NewRunnerString(plainChain)
	if err != nil {
		b.Fatal(err)
	}
	p := UDPTemplate(64)
	work := p.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*work = *p
		r.router.Inject(r.ctx, 0, work)
	}
}

func BenchmarkSandboxedChain64(b *testing.B) {
	r, err := NewRunnerString(sandboxedChain)
	if err != nil {
		b.Fatal(err)
	}
	p := UDPTemplate(64)
	work := p.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*work = *p
		r.router.Inject(r.ctx, 0, work)
	}
}
