// Package dataplane drives Click configurations with real packets at
// wall-clock speed. It is the measurement harness behind the
// sandboxing-cost experiment (paper Fig. 11) and the per-element
// microbenchmarks: the processing cost is measured on this machine,
// then capped by the modeled 10 GbE line rate, so the *shape* of the
// paper's curves (fixed per-packet enforcer cost that vanishes into
// the line-rate cap as packets grow) is reproduced even though the
// absolute CPU differs from the authors' Xeon.
package dataplane

import (
	"fmt"
	"time"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
)

// Result is one throughput measurement.
type Result struct {
	// Packets pushed and elapsed wall time.
	Packets int
	Elapsed time.Duration
	// PPS is the measured packet rate.
	PPS float64
	// NsPerPacket is the average per-packet cost.
	NsPerPacket float64
	// Transmitted counts packets that exited through ToNetfront.
	Transmitted uint64
}

// Runner pushes packets through one Click router on one goroutine
// (one "core").
type Runner struct {
	router *click.Router
	ctx    *click.Context
	tx     uint64
	now    int64
}

// NewRunner prepares a router for measurement. The router's
// ToNetfront packets are counted and recycled.
func NewRunner(r *click.Router) (*Runner, error) {
	if r.NumSources() == 0 {
		return nil, fmt.Errorf("dataplane: router has no FromNetfront")
	}
	run := &Runner{router: r}
	run.ctx = &click.Context{
		Now:      func() int64 { return run.now },
		Transmit: func(iface int, p *packet.Packet) { run.tx++ },
	}
	return run, nil
}

// NewRunnerString parses, builds and prepares a configuration.
func NewRunnerString(src string) (*Runner, error) {
	cfg, err := buildRouter(src)
	if err != nil {
		return nil, err
	}
	return NewRunner(cfg)
}

func buildRouter(src string) (*click.Router, error) {
	r, err := func() (r *click.Router, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("dataplane: %v", rec)
			}
		}()
		return click.MustBuildString(src), nil
	}()
	return r, err
}

// Measure pushes n copies of the template packet through the router
// and measures wall-clock throughput. The template is reused (headers
// restored each iteration), so the loop allocates nothing.
func (r *Runner) Measure(template *packet.Packet, n int) Result {
	// Warm up code paths and caches.
	work := template.Clone()
	for i := 0; i < 1000; i++ {
		*work = *template
		r.now += 1000
		r.router.Inject(r.ctx, 0, work)
	}
	r.tx = 0
	start := time.Now()
	for i := 0; i < n; i++ {
		*work = *template
		r.now += 1000 // advancing virtual ns keeps token buckets sane
		r.router.Inject(r.ctx, 0, work)
	}
	elapsed := time.Since(start)
	res := Result{
		Packets:     n,
		Elapsed:     elapsed,
		Transmitted: r.tx,
	}
	if elapsed > 0 {
		res.PPS = float64(n) / elapsed.Seconds()
		res.NsPerPacket = float64(elapsed.Nanoseconds()) / float64(n)
	}
	return res
}

// MeasureBest runs Measure trials times and returns the fastest run
// (the standard way to strip scheduler noise from a CPU-bound
// microbenchmark).
func (r *Runner) MeasureBest(template *packet.Packet, n, trials int) Result {
	var best Result
	for i := 0; i < trials; i++ {
		res := r.Measure(template, n)
		if i == 0 || res.PPS > best.PPS {
			best = res
		}
	}
	return best
}

// LineRatePPS is the 10 GbE packet-rate cap for a given frame size
// (Ethernet preamble+IFG+CRC included).
func LineRatePPS(pktBytes int, lineRateBps float64) float64 {
	return lineRateBps / (float64(pktBytes+24) * 8)
}

// CapPPS caps a measured rate at line rate, as a receiving NIC would.
func CapPPS(pps float64, pktBytes int, lineRateBps float64) float64 {
	if cap := LineRatePPS(pktBytes, lineRateBps); pps > cap {
		return cap
	}
	return pps
}

// UDPTemplate builds a measurement packet with the given total IP
// length (header + payload).
func UDPTemplate(totalBytes int) *packet.Packet {
	payload := totalBytes - 28
	if payload < 0 {
		payload = 0
	}
	return &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("8.8.8.8"),
		DstIP:    packet.MustParseIP("198.51.100.10"),
		SrcPort:  1000,
		DstPort:  1500,
		TTL:      64,
		Payload:  make([]byte, payload),
	}
}
