package replication

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/topology"
)

// newGroup boots n replicas: replicas[0] the leader, the rest
// standbys, every node configured with every other as a peer (added
// after all listeners are bound). Timeouts are tightened for tests.
func newGroup(t *testing.T, n int, tweak func(i int, cfg *Config)) []*replica {
	t.Helper()
	group := make([]*replica, n)
	for i := range group {
		cfg := Config{
			Role:       controller.RoleStandby,
			ListenAddr: "127.0.0.1:0",
			AckTimeout: time.Second,
		}
		if i == 0 {
			cfg.Role = controller.RoleLeader
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		group[i] = newReplica(t, cfg)
	}
	for i, r := range group {
		for j, other := range group {
			if i != j {
				r.node.AddPeer(other.node.Addr())
			}
		}
	}
	return group
}

// leaderOf returns the index of the sole unfenced leader, or -1.
func leaderOf(group []*replica) int {
	idx := -1
	for i, r := range group {
		if r.node.Role() == controller.RoleLeader && !r.node.Fenced() {
			if idx >= 0 {
				return -1 // two leaders: not settled
			}
			idx = i
		}
	}
	return idx
}

func TestQuorumCommitWithOneFollowerDown(t *testing.T) {
	// 3-node group where one follower is dead from the start: strict
	// appends must still commit on leader + one follower — the
	// headline availability win over the pair's all-voter rule.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	follower := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	leader := newReplica(t, Config{
		Role:       controller.RoleLeader,
		ListenAddr: "127.0.0.1:0",
		AckTimeout: 2 * time.Second,
		Peers:      []string{follower.node.Addr(), deadAddr},
	})

	start := time.Now()
	if _, err := leader.ctl.Deploy(testRequest(0)); err != nil {
		t.Fatalf("deploy with one follower down: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("majority commit took %v — waited for the dead follower?", elapsed)
	}
	if got, want := follower.store.Seq(), leader.store.Seq(); got != want {
		t.Fatalf("live follower seq %d != leader seq %d", got, want)
	}
	info := leader.node.Info()
	if info.ClusterSize != 3 || info.Majority != 2 {
		t.Fatalf("info cluster/majority = %d/%d, want 3/2", info.ClusterSize, info.Majority)
	}
	if len(info.PeerDetail) != 2 {
		t.Fatalf("peer detail has %d entries, want 2", len(info.PeerDetail))
	}
	var connected, down int
	for _, ps := range info.PeerDetail {
		if ps.Connected {
			connected++
			if ps.AckedSeq != info.Seq || ps.Lag != 0 {
				t.Fatalf("connected peer %s: acked %d lag %d, want acked %d lag 0", ps.Addr, ps.AckedSeq, ps.Lag, info.Seq)
			}
		} else {
			down++
			if ps.Lag == 0 {
				t.Fatalf("dead peer %s reports zero lag", ps.Addr)
			}
		}
	}
	if connected != 1 || down != 1 {
		t.Fatalf("peer detail connected/down = %d/%d, want 1/1", connected, down)
	}
}

func TestQuorumLeaderFencesWithoutMajorityOnAppend(t *testing.T) {
	// Both followers dead: a strict append cannot reach a majority and
	// must fence the leader within the ack timeout.
	deadAddrs := make([]string, 2)
	for i := range deadAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddrs[i] = ln.Addr().String()
		ln.Close()
	}
	leader := newReplica(t, Config{
		Role:       controller.RoleLeader,
		ListenAddr: "127.0.0.1:0",
		AckTimeout: 300 * time.Millisecond,
		Peers:      deadAddrs,
	})
	if _, err := leader.ctl.Deploy(testRequest(0)); !errors.Is(err, ErrFenced) {
		t.Fatalf("minority leader Deploy = %v, want ErrFenced", err)
	}
	if !leader.node.Fenced() {
		t.Fatal("leader not fenced after quorumless append")
	}
}

func TestQuorumIdleLeaderWatchdogFences(t *testing.T) {
	// No appends at all: the supervisor's watchdog must still fence a
	// leader that cannot see a majority, inside the ack timeout — an
	// idle minority leader must not keep serving (stale) reads as a
	// leader indefinitely.
	deadAddrs := make([]string, 2)
	for i := range deadAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddrs[i] = ln.Addr().String()
		ln.Close()
	}
	leader := newReplica(t, Config{
		Role:       controller.RoleLeader,
		ListenAddr: "127.0.0.1:0",
		AckTimeout: 200 * time.Millisecond,
		Peers:      deadAddrs,
	})
	waitFor(t, "idle minority leader to fence", func() bool { return leader.node.Fenced() })
}

func TestQuorumElectionAfterLeaderCrash(t *testing.T) {
	// Manual promotion on a 3-node group runs an election: the
	// candidate needs the surviving follower's vote, wins term 2, and
	// the survivor catches up incrementally (no snapshot resync) to a
	// byte-identical journal file.
	group := newGroup(t, 3, nil)
	for i := 0; i < 3; i++ {
		if _, err := group[0].ctl.Deploy(testRequest(i)); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	group[0].node.Close()
	group[0].store.Close()

	if err := group[1].node.Promote(); err != nil {
		t.Fatalf("election: %v", err)
	}
	if got := group[1].node.Term(); got != 2 {
		t.Fatalf("elected term = %d, want 2", got)
	}
	if _, err := group[1].ctl.Deploy(testRequest(7)); err != nil {
		t.Fatalf("deploy on elected leader: %v", err)
	}
	waitFor(t, "survivor convergence", func() bool {
		return group[2].store.Seq() == group[1].store.Seq()
	})
	if group[2].node.resyncs.Load() != 0 {
		t.Fatalf("up-to-date survivor took %d snapshot resyncs, want incremental catch-up", group[2].node.resyncs.Load())
	}
	a, err := os.ReadFile(filepath.Join(group[1].dir, journal.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(group[2].dir, journal.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("journal files differ after failover: %d vs %d bytes", len(a), len(b))
	}
}

func TestQuorumElectionRequiresMajority(t *testing.T) {
	// A candidate that can reach no other replica must refuse to
	// promote — the "never-heard standby refuses" rule, subsumed by
	// the vote.
	deadAddrs := make([]string, 2)
	for i := range deadAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddrs[i] = ln.Addr().String()
		ln.Close()
	}
	lone := newReplica(t, Config{
		Role:            controller.RoleStandby,
		ListenAddr:      "127.0.0.1:0",
		ElectionTimeout: 200 * time.Millisecond,
		Peers:           deadAddrs,
	})
	err := lone.node.Promote()
	if !errors.Is(err, errElectionLost) {
		t.Fatalf("isolated candidate Promote = %v, want election lost", err)
	}
	if lone.node.Role() == controller.RoleLeader {
		t.Fatal("isolated candidate promoted without a majority")
	}
}

func TestQuorumColdGroupElectsExactlyOneLeader(t *testing.T) {
	// Three standbys, none of which has ever heard a leader, with
	// automatic failover armed: the group must elect exactly one
	// leader (term ≥ 2 — founding term 1 is reserved for configured
	// boot leaders) and serve writes. The pair-era everHeard guard
	// would have deadlocked this group forever.
	group := newGroup(t, 3, func(i int, cfg *Config) {
		cfg.Role = controller.RoleStandby
		cfg.FailoverAfter = 100 * time.Millisecond
		cfg.ElectionTimeout = 150 * time.Millisecond
		cfg.HeartbeatEvery = 20 * time.Millisecond
	})
	waitFor(t, "a settled leader", func() bool {
		idx := leaderOf(group)
		if idx < 0 {
			return false
		}
		// Settled: both followers on the leader's term and seq.
		info := group[idx].node.Info()
		for i, r := range group {
			if i != idx && (r.node.Term() != info.Term || r.store.Seq() != info.Seq) {
				return false
			}
		}
		return true
	})
	idx := leaderOf(group)
	if got := group[idx].node.Term(); got < 2 {
		t.Fatalf("elected term = %d, want ≥ 2", got)
	}
	if _, err := group[idx].ctl.Deploy(testRequest(0)); err != nil {
		t.Fatalf("deploy on elected leader: %v", err)
	}
	waitFor(t, "replication to both followers", func() bool {
		for i, r := range group {
			if i != idx && r.store.Seq() != group[idx].store.Seq() {
				return false
			}
		}
		return true
	})
}

// sendRaw writes one hello and reads one reply line.
func sendRaw(t *testing.T, addr string, h hello) helloReply {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	if err := writeJSONLine(conn, h); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var rep helloReply
	if err := json.Unmarshal(line, &rep); err != nil {
		t.Fatalf("bad reply %q: %v", line, err)
	}
	return rep
}

func TestVoteDeniedToStaleLog(t *testing.T) {
	// A voter must refuse a candidate whose journal is behind its own:
	// electing it could lose majority-committed records.
	follower := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	leader := newReplica(t, Config{Role: controller.RoleLeader, Peers: []string{follower.node.Addr()}})
	for i := 0; i < 3; i++ {
		if _, err := leader.ctl.Deploy(testRequest(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := follower.store.State()

	rep := sendRaw(t, follower.node.Addr(), hello{
		Proto: Proto2, Kind: helloKindVote, Term: st.Term + 1,
		Seq: st.Seq - 1, LastTerm: st.Term, Candidate: "stale",
	})
	if rep.Granted {
		t.Fatal("vote granted to a candidate one record behind")
	}
	rep = sendRaw(t, follower.node.Addr(), hello{
		Proto: Proto2, Kind: helloKindVote, Term: st.Term + 1,
		Seq: st.Seq, LastTerm: st.Term - 1, Candidate: "old-term",
	})
	if rep.Granted {
		t.Fatal("vote granted to a candidate with an older tail term")
	}
	// An up-to-date candidate gets the vote…
	rep = sendRaw(t, follower.node.Addr(), hello{
		Proto: Proto2, Kind: helloKindVote, Term: st.Term + 1,
		Seq: st.Seq, LastTerm: st.Term, Candidate: "fresh",
	})
	if !rep.Granted {
		t.Fatalf("vote denied to an up-to-date candidate: %s", rep.Reason)
	}
	// …and holds it: a rival in the same term is refused, while the
	// original re-solicitation is re-granted idempotently.
	rep = sendRaw(t, follower.node.Addr(), hello{
		Proto: Proto2, Kind: helloKindVote, Term: st.Term + 1,
		Seq: st.Seq + 9, LastTerm: st.Term, Candidate: "rival",
	})
	if rep.Granted {
		t.Fatal("double vote in one term")
	}
	rep = sendRaw(t, follower.node.Addr(), hello{
		Proto: Proto2, Kind: helloKindVote, Term: st.Term + 1,
		Seq: st.Seq, LastTerm: st.Term, Candidate: "fresh",
	})
	if !rep.Granted {
		t.Fatalf("idempotent re-grant refused: %s", rep.Reason)
	}
}

func TestVoteSurvivesRestart(t *testing.T) {
	// The vote ledger persists: after a crash-restart in the same
	// journal directory, the node still refuses a rival in the term it
	// voted in before the crash.
	dir := t.TempDir()
	boot := func() (*Node, func()) {
		topo, err := topology.PaperFig3()
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := controller.New(topo, "")
		if err != nil {
			t.Fatal(err)
		}
		store, err := journal.Open(dir, journal.Options{Sync: journal.SyncNone, CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(store, ctl, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0", Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		return node, func() { node.Close(); store.Close() }
	}
	node, shutdown := boot()
	rep := sendRaw(t, node.Addr(), hello{Proto: Proto2, Kind: helloKindVote, Term: 5, Candidate: "first"})
	if !rep.Granted {
		t.Fatalf("initial vote denied: %s", rep.Reason)
	}
	shutdown()

	node, shutdown = boot()
	defer shutdown()
	rep = sendRaw(t, node.Addr(), hello{Proto: Proto2, Kind: helloKindVote, Term: 5, Candidate: "second"})
	if rep.Granted {
		t.Fatal("restart forgot the persisted vote: double vote in term 5")
	}
	rep = sendRaw(t, node.Addr(), hello{Proto: Proto2, Kind: helloKindVote, Term: 5, Candidate: "first"})
	if !rep.Granted {
		t.Fatalf("persisted vote not re-granted to its candidate: %s", rep.Reason)
	}
}

func TestV1StreamHelloStillAccepted(t *testing.T) {
	// A v1 dialer (an un-upgraded leader) must still be able to open a
	// stream against a v2 node: the acceptor takes both protocols.
	follower := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	rep := sendRaw(t, follower.node.Addr(), hello{Proto: Proto, Term: 7, Seq: 0})
	if !rep.OK {
		t.Fatalf("v1 hello refused: %s", rep.Reason)
	}
	if rep.Proto != "" {
		t.Fatalf("v1 hello answered with proto %q — v1 clients would choke on surprises", rep.Proto)
	}
	// And a vote over v1 is refused: elections are v2 vocabulary.
	rep = sendRaw(t, follower.node.Addr(), hello{Proto: Proto, Kind: helloKindVote, Term: 9, Candidate: "x"})
	if rep.OK || rep.Granted {
		t.Fatal("v1 vote hello accepted")
	}
}

// ackRecorder collects the seqs a fake follower acknowledged.
type ackRecorder struct {
	mu   sync.Mutex
	seqs []uint64
}

func (a *ackRecorder) add(seq uint64) {
	a.mu.Lock()
	a.seqs = append(a.seqs, seq)
	a.mu.Unlock()
}

func (a *ackRecorder) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.seqs)
}

// v1OnlyStandby is a minimal innet-repl/1 acceptor: it refuses v2
// hellos with the v1 implementation's exact "bad protocol" reply,
// accepts v1 streams, ingests frames, and acks their seqs.
func v1OnlyStandby(t *testing.T, ln net.Listener, acked *ackRecorder, done chan<- struct{}) {
	defer close(done)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		func() {
			defer conn.Close()
			br := bufio.NewReader(conn)
			line, err := br.ReadBytes('\n')
			if err != nil {
				return
			}
			var h map[string]any
			if json.Unmarshal(line, &h) != nil || h["proto"] != Proto {
				writeJSONLine(conn, helloReply{OK: false, Reason: "bad protocol"})
				return
			}
			writeJSONLine(conn, helloReply{OK: true, Term: 0, Have: 0})
			ackBuf := make([]byte, 8)
			for {
				tag, err := br.ReadByte()
				if err != nil {
					return
				}
				switch tag {
				case 'H':
					if _, err := io.ReadFull(br, ackBuf); err != nil {
						return
					}
				case 'F':
					frame, err := readFrame(br)
					if err != nil {
						return
					}
					recs, _ := journal.DecodeAll(frame, 0)
					if len(recs) != 1 {
						return
					}
					acked.add(recs[0].Seq)
					binary.LittleEndian.PutUint64(ackBuf, recs[0].Seq)
					if _, err := conn.Write(ackBuf); err != nil {
						return
					}
				default:
					return
				}
			}
		}()
	}
}

func TestLeaderDowngradesToV1Peer(t *testing.T) {
	// A v2 leader shipping to a v1-only follower: the first (v2) hello
	// is refused "bad protocol", the leader pins the peer to v1 and
	// the next dial succeeds — 2-node configs keep working across a
	// rolling upgrade.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var acked ackRecorder
	done := make(chan struct{})
	go v1OnlyStandby(t, ln, &acked, done)
	// Registered before newReplica's cleanups, so this runs AFTER the
	// leader node closes (LIFO): the dead stream lets the fake's
	// single-threaded accept loop notice the closed listener and exit.
	t.Cleanup(func() { ln.Close(); <-done })

	leader := newReplica(t, Config{
		Role:       controller.RoleLeader,
		AckTimeout: 3 * time.Second,
		Peers:      []string{ln.Addr().String()},
	})
	// A strict append commits in pair mode only once the v1 follower
	// acks — proving the downgrade produced a working stream.
	if _, err := leader.ctl.Deploy(testRequest(0)); err != nil {
		t.Fatalf("deploy to v1-only follower: %v", err)
	}
	leader.node.mu.Lock()
	proto := leader.node.peers[0].proto
	leader.node.mu.Unlock()
	if proto != Proto {
		t.Fatalf("peer proto = %q, want pinned to %q", proto, Proto)
	}
	if acked.count() == 0 {
		t.Fatal("v1 follower acked nothing")
	}
}

func TestFencedNodeRefusesElection(t *testing.T) {
	deadAddrs := []string{"127.0.0.1:1", "127.0.0.1:2"}
	leader := newReplica(t, Config{
		Role:       controller.RoleLeader,
		ListenAddr: "127.0.0.1:0",
		AckTimeout: 150 * time.Millisecond,
		Peers:      deadAddrs,
	})
	waitFor(t, "watchdog fence", func() bool { return leader.node.Fenced() })
	if err := leader.node.Promote(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced Promote = %v, want ErrFenced", err)
	}
}
