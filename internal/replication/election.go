// Leader election for quorum groups (N ≥ 3).
//
// A candidate campaigns at a term one past the highest it has seen
// (journal term, observed term, or a term it already voted in), votes
// for itself, and solicits the rest of the group over short-lived v2
// connections (hello kind "vote"). A voter grants at most one vote
// per term — persisted to a side file before the reply leaves, so a
// crash-restart cannot double-vote — and only to a candidate whose
// journal is at least as up-to-date as its own (Raft's log-matching
// comparison on (last term, last seq)). The candidate promotes only
// with a majority including its own vote, journaling the EvTerm
// record at exactly the campaigned term.
//
// Safety: two leaders for one term would need two disjoint
// majorities; any two majorities intersect, and the intersection
// voted at most once in that term. The up-to-date check means the
// winner's journal holds every majority-committed record, so the new
// term extends — never rewrites — acknowledged history.
//
// A candidate does NOT adopt its campaigned term into n.term on
// candidacy: a follower stuck behind a partition may campaign (and
// lose) many times, and on heal it must rejoin the healthy leader's
// term rather than depose it with an inflated one. Terms advance only
// through won elections, granted votes, and observed streams.
package replication

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"github.com/in-net/innet/internal/controller"
)

// voteFileName is the per-term vote ledger kept next to the journal.
const voteFileName = "replvote.json"

// voteState is the persisted single-vote-per-term record.
type voteState struct {
	Term uint64 `json:"term"`
	For  string `json:"for"`
}

// errElectionLost reports a campaign that did not reach a majority.
var errElectionLost = errors.New("replication: election lost (no majority)")

func (n *Node) voteFilePath() string {
	return filepath.Join(n.store.Dir(), voteFileName)
}

// loadVote restores the vote ledger at boot (missing file = never
// voted). Corrupt files are treated as absent: the journal's term
// records still floor future campaign terms, so the worst case is a
// re-vote in a term this node already voted in — possible only after
// a torn write to the ledger itself, documented in FORMATS.md.
func (n *Node) loadVote() {
	data, err := os.ReadFile(n.voteFilePath())
	if err != nil {
		return
	}
	var v voteState
	if json.Unmarshal(data, &v) != nil {
		return
	}
	n.votedTerm, n.votedFor = v.Term, v.For
}

// persistVoteLocked durably records a vote before it takes effect.
// Write-temp + fsync + rename, like the journal's snapshots.
func (n *Node) persistVoteLocked(term uint64, candidate string) error {
	data, err := json.Marshal(voteState{Term: term, For: candidate})
	if err != nil {
		return err
	}
	path := n.voteFilePath()
	tmp, err := os.CreateTemp(n.store.Dir(), voteFileName+".tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	n.votedTerm, n.votedFor = term, candidate
	return nil
}

// candidateIDLocked is this node's identity on ballots: the
// advertised API URL when set, otherwise the bound replication
// listener address. Caller holds n.mu.
func (n *Node) candidateIDLocked() string {
	if n.cfg.AdvertiseURL != "" {
		return n.cfg.AdvertiseURL
	}
	if n.ln != nil {
		return n.ln.Addr().String()
	}
	return n.cfg.ListenAddr
}

// runElection campaigns for leadership: self-vote at a bumped term,
// solicit the group, promote on majority. Returns errElectionLost on
// a lost or timed-out vote — the supervisor retries after a jittered
// backoff.
func (n *Node) runElection() error {
	n.mu.Lock()
	if n.fenced {
		n.mu.Unlock()
		return ErrFenced
	}
	if n.closed || n.role == controller.RoleLeader {
		n.mu.Unlock()
		return nil
	}
	st := n.store.State()
	term := n.term
	if st.Term > term {
		term = st.Term
	}
	if n.votedTerm > term {
		term = n.votedTerm
	}
	term++
	// Term 1 is reserved for the configured boot leader's founding
	// record: an elected leader always carries term ≥ 2, so a
	// never-heard group electing among itself cannot collide with a
	// boot leader it has not met.
	if term < 2 {
		term = 2
	}
	id := n.candidateIDLocked()
	if err := n.persistVoteLocked(term, id); err != nil {
		n.mu.Unlock()
		return fmt.Errorf("replication: election: persist self-vote: %w", err)
	}
	req := hello{
		Proto:     Proto2,
		Kind:      helloKindVote,
		Term:      term,
		Seq:       st.Seq,
		LastTerm:  st.Term,
		Candidate: id,
		URL:       n.cfg.AdvertiseURL,
	}
	majority := n.majorityLocked()
	addrs := make([]string, len(n.peers))
	for i, p := range n.peers {
		addrs[i] = p.addr
	}
	down := time.Since(n.lastContact)
	timeout := n.cfg.ElectionTimeout
	n.mu.Unlock()

	n.electionsStarted.Add(1)
	n.logf("replication: campaigning for term %d (%d/%d votes needed)", term, majority, len(addrs)+1)

	type ballot struct {
		granted  bool
		peerTerm uint64
	}
	results := make(chan ballot, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			granted, peerTerm := n.solicitVote(addr, req, timeout)
			results <- ballot{granted, peerTerm}
		}(addr)
	}
	votes := 1 // self
	var maxSeen uint64
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for pending := len(addrs); pending > 0 && votes < majority; pending-- {
		select {
		case b := <-results:
			if b.granted {
				votes++
			}
			if b.peerTerm > maxSeen {
				maxSeen = b.peerTerm
			}
		case <-deadline.C:
			pending = 0
		case <-n.stop:
			return fmt.Errorf("replication: node closed")
		}
	}

	n.mu.Lock()
	if maxSeen > n.term {
		// A peer already lives in a higher term: adopt it so the next
		// campaign (if any) clears it.
		n.term = maxSeen
	}
	if votes < majority {
		n.mu.Unlock()
		n.electionsLost.Add(1)
		n.logf("replication: election for term %d lost (%d/%d votes)", term, votes, majority)
		return fmt.Errorf("%w: term %d, %d/%d votes", errElectionLost, term, votes, majority)
	}
	if n.fenced || n.closed || n.role == controller.RoleLeader || n.term > term {
		// The world moved while we were counting: a higher-term leader
		// surfaced, or a concurrent path already promoted us.
		n.mu.Unlock()
		n.electionsLost.Add(1)
		return fmt.Errorf("%w: term %d superseded during count", errElectionLost, term)
	}
	if err := n.promoteToTermLocked(term); err != nil {
		n.mu.Unlock()
		n.electionsLost.Add(1)
		return fmt.Errorf("replication: election: term record: %w", err)
	}
	n.mu.Unlock()
	n.electionsWon.Add(1)
	n.finishPromotion(term, down)
	return nil
}

// solicitVote asks one peer for its vote over a short-lived v2
// connection. Unreachable or v1-only peers simply do not vote.
func (n *Node) solicitVote(addr string, req hello, timeout time.Duration) (granted bool, peerTerm uint64) {
	conn, err := n.dial(addr)
	if err != nil {
		return false, 0
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := writeJSONLine(conn, req); err != nil {
		return false, 0
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return false, 0
	}
	var rep helloReply
	if err := json.Unmarshal(line, &rep); err != nil {
		return false, 0
	}
	return rep.Granted, rep.Term
}

// handleVote is the voter side of an election, dispatched from the
// accept path on a v2 hello with kind "vote". The connection carries
// exactly one reply line and closes.
func (n *Node) handleVote(conn net.Conn, h hello) {
	n.mu.Lock()
	st := n.store.State()
	var granted bool
	var reason string
	switch {
	case n.closed:
		reason = "node closed"
	case h.Candidate == "":
		reason = "no candidate identity"
	case h.Term < n.term:
		reason = fmt.Sprintf("stale term %d (current %d)", h.Term, n.term)
	case h.Term == n.term:
		// Re-grant idempotently to the candidate we already voted for
		// in this term (its first reply may have been lost); anyone
		// else is too late — this term is taken.
		granted = n.votedTerm == h.Term && n.votedFor == h.Candidate
		if !granted {
			reason = fmt.Sprintf("term %d already current", h.Term)
		}
	case n.votedTerm >= h.Term && n.votedFor != h.Candidate:
		reason = fmt.Sprintf("already voted in term %d", n.votedTerm)
	case h.LastTerm < st.Term || (h.LastTerm == st.Term && h.Seq < st.Seq):
		// The candidate's journal is behind ours: it cannot hold every
		// committed record, so electing it could lose acknowledged
		// history.
		reason = fmt.Sprintf("candidate log (term %d, seq %d) behind ours (term %d, seq %d)",
			h.LastTerm, h.Seq, st.Term, st.Seq)
	default:
		if err := n.persistVoteLocked(h.Term, h.Candidate); err != nil {
			reason = fmt.Sprintf("vote persistence failed: %v", err)
			n.logf("replication: %s", reason)
		} else {
			granted = true
		}
	}
	if granted && h.Term > n.term {
		// Adopting the candidate's term invalidates every inbound
		// stream: their handshakes were for the old term, and acking
		// an old-term frame after voting could let a deposed leader
		// count us toward its quorum. Cut them; the winner (old or
		// new) re-handshakes at its term.
		if n.role == controller.RoleLeader {
			n.fenceLocked(h.URL, fmt.Sprintf("deposed by election for term %d (own term %d)", h.Term, n.term))
		}
		n.term = h.Term
		for _, c := range n.ingests {
			c.Close()
		}
		n.ingests = nil
		n.votesGranted.Add(1)
		// Give the candidate its ElectionTimeout to establish before
		// this node considers campaigning itself.
		n.lastContact = time.Now()
	}
	rep := helloReply{OK: granted, Granted: granted, Proto: Proto2, Term: n.term, Reason: reason}
	n.mu.Unlock()
	if granted {
		n.logf("replication: granted vote to %s for term %d", h.Candidate, h.Term)
	}
	writeJSONLine(conn, rep)
}
