// The replication wire protocol (documented in docs/FORMATS.md §10).
//
// The leader dials each standby and sends one JSON "hello" line, the
// standby replies with one JSON line, and the stream switches to
// tagged binary messages:
//
//	'S' + uint32 LE length + snapshot JSON   full-state resync
//	'F' + journal frame (verbatim)           one replicated record
//	'H' + uint64 LE leader seq               heartbeat
//
// The standby acknowledges applied sequence numbers as bare uint64 LE
// values on the same connection. Journal frames are re-used exactly as
// written to the leader's journal file — same length prefix, same
// CRC, same JSON payload — so the standby can ingest them without
// re-encoding and both journal files stay byte-identical.
package replication

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
)

// handshakeTimeout bounds the hello exchange on both sides.
const handshakeTimeout = 5 * time.Second

// maxSnapshotBytes bounds a resync snapshot read off the wire.
const maxSnapshotBytes = 256 << 20

// Hello kinds (v2). A v1 hello has no kind and is always a stream.
const (
	helloKindStream = "stream"
	helloKindVote   = "vote"
)

// hello is the dialer's opening line: a leader opening a frame stream
// or (v2) a candidate soliciting a vote.
type hello struct {
	Proto string `json:"proto"`
	// Kind distinguishes a frame stream from a vote solicitation
	// (v2 only; empty means stream for v1 compatibility).
	Kind string `json:"kind,omitempty"`
	// Term and Seq describe the dialer's journal head; Start is the
	// sequence of the record that began its term.
	Term  uint64 `json:"term"`
	Seq   uint64 `json:"seq"`
	Start uint64 `json:"start"`
	// LastTerm is the term governing the record at Seq — the log
	// position voters compare against their own (v2 vote hellos).
	LastTerm uint64 `json:"last_term,omitempty"`
	// Candidate identifies the campaigner on a vote hello, so a voter
	// can re-grant idempotently and never double-vote in a term.
	Candidate string `json:"candidate,omitempty"`
	// URL is the dialer's advertised API base URL (clients of a
	// deposed node are redirected here).
	URL string `json:"url,omitempty"`
}

// helloReply is the acceptor's answer.
type helloReply struct {
	OK bool `json:"ok"`
	// Proto echoes the accepted protocol version (v2 acceptors only;
	// absent means a v1 acceptor).
	Proto string `json:"proto,omitempty"`
	// Term and Have describe the acceptor's journal head; the leader
	// uses them to choose incremental catch-up or a snapshot resync.
	Term uint64 `json:"term"`
	Have uint64 `json:"have"`
	// Granted reports a vote grant on a vote solicitation.
	Granted bool   `json:"granted,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

func writeJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// serve handles one inbound replication stream: handshake (term
// fencing happens here), then the ingest loop.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return
	}
	var h hello
	if err := json.Unmarshal(line, &h); err != nil || (h.Proto != Proto && h.Proto != Proto2) {
		writeJSONLine(conn, helloReply{OK: false, Reason: "bad protocol"})
		return
	}
	switch h.Kind {
	case "", helloKindStream:
	case helloKindVote:
		if h.Proto != Proto2 {
			writeJSONLine(conn, helloReply{OK: false, Reason: "vote requires " + Proto2})
			return
		}
		n.handleVote(conn, h)
		return
	default:
		writeJSONLine(conn, helloReply{OK: false, Reason: "unknown hello kind"})
		return
	}

	n.mu.Lock()
	switch {
	case h.Term < n.term:
		// A stale leader (or a peer that fell behind a promotion it
		// has not heard about). Refuse; our term in the reply fences it.
		rep := helloReply{OK: false, Term: n.term, Reason: fmt.Sprintf("stale term %d (current %d)", h.Term, n.term)}
		n.mu.Unlock()
		writeJSONLine(conn, rep)
		return
	case h.Term == n.term && n.role == controller.RoleLeader:
		// Two live leaders claiming the same term: never yield on a
		// tie — a split brain must lose on at least one side.
		rep := helloReply{OK: false, Term: n.term, Reason: "split brain: equal term from another leader"}
		n.mu.Unlock()
		n.logf("replication: refused equal-term leader hello (term %d)", h.Term)
		writeJSONLine(conn, rep)
		return
	}
	if h.Term > n.term {
		if n.role == controller.RoleLeader {
			n.fenceLocked(h.URL, fmt.Sprintf("deposed by term %d (own term %d)", h.Term, n.term))
		}
		n.term = h.Term
		// Advancing the term invalidates every other inbound stream:
		// their handshakes were for an older term, and acking an
		// old-term frame after this point could count toward a deposed
		// leader's quorum.
		for _, c := range n.ingests {
			c.Close()
		}
		n.ingests = nil
	}
	n.leaderURL = h.URL
	n.lastContact = time.Now()
	n.everHeard = true
	st := n.store.State()
	rep := helloReply{OK: true, Term: st.Term, Have: st.Seq}
	if h.Proto == Proto2 {
		rep.Proto = Proto2
	}
	n.ingests = append(n.ingests, conn)
	n.mu.Unlock()
	defer n.dropIngest(conn)

	if err := writeJSONLine(conn, rep); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	n.ingestLoop(conn, br)
}

func (n *Node) dropIngest(conn net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, c := range n.ingests {
		if c == conn {
			n.ingests = append(n.ingests[:i], n.ingests[i+1:]...)
			return
		}
	}
}

// ingestLoop applies the leader's tagged messages until the stream
// breaks, this node is promoted, or a gap forces a re-handshake.
func (n *Node) ingestLoop(conn net.Conn, br *bufio.Reader) {
	ackBuf := make([]byte, 8)
	ack := func(seq uint64) bool {
		binary.LittleEndian.PutUint64(ackBuf, seq)
		_, err := conn.Write(ackBuf)
		return err == nil
	}
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return
		}
		switch tag {
		case 'H':
			var b [8]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return
			}
			n.mu.Lock()
			n.leaderSeq = binary.LittleEndian.Uint64(b[:])
			n.lastContact = time.Now()
			n.mu.Unlock()

		case 'S':
			var lb [4]byte
			if _, err := io.ReadFull(br, lb[:]); err != nil {
				return
			}
			size := binary.LittleEndian.Uint32(lb[:])
			if size > maxSnapshotBytes {
				n.logf("replication: oversized snapshot (%d bytes), dropping stream", size)
				return
			}
			data := make([]byte, size)
			if _, err := io.ReadFull(br, data); err != nil {
				return
			}
			st := journal.NewState()
			if err := json.Unmarshal(data, st); err != nil {
				n.logf("replication: corrupt snapshot: %v", err)
				return
			}
			n.mu.Lock()
			if n.role != controller.RoleStandby {
				n.mu.Unlock()
				return
			}
			err := n.store.ResetTo(st)
			if err == nil {
				if st.Term > n.term {
					n.term = st.Term
				}
				n.lastContact = time.Now()
			}
			n.mu.Unlock()
			if err != nil {
				n.logf("replication: snapshot resync failed: %v", err)
				return
			}
			if err := n.ctl.ResetToState(st); err != nil {
				n.logf("replication: controller resync failed: %v", err)
				return
			}
			n.resyncs.Add(1)
			if !ack(st.Seq) {
				return
			}

		case 'F':
			frame, err := readFrame(br)
			if err != nil {
				return
			}
			recs, valid := journal.DecodeAll(frame, 0)
			if valid != int64(len(frame)) || len(recs) != 1 {
				n.logf("replication: corrupt frame off the wire, dropping stream")
				return
			}
			rec := recs[0]
			n.mu.Lock()
			if n.role != controller.RoleStandby {
				n.mu.Unlock()
				return
			}
			cur := n.store.Seq()
			if rec.Seq <= cur {
				// Duplicate from a reconnect replay: already durable.
				n.lastContact = time.Now()
				n.mu.Unlock()
				if !ack(rec.Seq) {
					return
				}
				continue
			}
			if rec.Seq != cur+1 {
				// Gap — the stream desynchronized; re-handshake resolves
				// the correct catch-up point.
				n.mu.Unlock()
				n.logf("replication: frame gap (have %d, got %d), dropping stream", cur, rec.Seq)
				return
			}
			if _, err := n.store.IngestFrame(frame); err != nil {
				n.mu.Unlock()
				n.logf("replication: ingest: %v", err)
				return
			}
			if rec.Type == journal.EvTerm && rec.Term > n.term {
				n.term = rec.Term
			}
			n.lastContact = time.Now()
			n.mu.Unlock()
			n.framesIngested.Add(1)
			if err := n.ctl.ApplyRecord(rec); err != nil {
				// The record is durable; only the warm replica is
				// stale. Surface loudly — a promotion would recover via
				// Restore from the (correct) journal.
				n.logf("replication: apply seq %d: %v", rec.Seq, err)
			}
			if n.cfg.OnApply != nil {
				n.cfg.OnApply(rec)
			}
			if !ack(rec.Seq) {
				return
			}

		default:
			n.logf("replication: unknown message tag %q, dropping stream", tag)
			return
		}
	}
}

// readFrame reads one length-prefixed journal frame (header + payload)
// off the stream, verbatim.
func readFrame(br *bufio.Reader) ([]byte, error) {
	header := make([]byte, 8)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(header[:4])
	if size == 0 || size > journal.MaxRecordSize {
		return nil, fmt.Errorf("replication: bad frame length %d", size)
	}
	frame := make([]byte, 8+int(size))
	copy(frame, header)
	if _, err := io.ReadFull(br, frame[8:]); err != nil {
		return nil, err
	}
	return frame, nil
}

// peerLoop keeps one standby stream alive while this node leads.
func (n *Node) peerLoop(p *peer) {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		stop := n.closed || n.fenced || n.role != controller.RoleLeader
		n.mu.Unlock()
		if stop {
			return
		}
		if err := n.runPeer(p); err != nil {
			n.logf("replication: peer %s: %v", p.addr, err)
		}
		select {
		case <-n.stop:
			return
		case <-time.After(n.cfg.RedialEvery):
		}
	}
}

func (n *Node) dial(addr string) (net.Conn, error) {
	if n.cfg.Dial != nil {
		return n.cfg.Dial(addr)
	}
	return net.DialTimeout("tcp", addr, handshakeTimeout)
}

// runPeer drives one connection: handshake, catch-up (incremental
// from disk, or a snapshot when the standby's history diverged or was
// compacted away), then live frames + heartbeats.
func (n *Node) runPeer(p *peer) error {
	conn, err := n.dial(p.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))

	n.mu.Lock()
	st := n.store.State()
	// Offer v2 until the peer proves to be v1-only ("bad protocol"
	// refusal), then stick to v1 for this peer. The stream format is
	// identical; only the hello vocabulary differs.
	proto := p.proto
	if proto == "" {
		proto = Proto2
	}
	h := hello{Proto: proto, Term: n.term, Seq: st.Seq, Start: st.TermStart, URL: n.cfg.AdvertiseURL}
	if proto == Proto2 {
		h.Kind = helloKindStream
		h.LastTerm = st.Term
	}
	n.mu.Unlock()
	if err := writeJSONLine(conn, h); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return err
	}
	var rep helloReply
	if err := json.Unmarshal(line, &rep); err != nil {
		return fmt.Errorf("bad hello reply: %v", err)
	}
	if !rep.OK {
		if proto == Proto2 && rep.Reason == "bad protocol" {
			n.mu.Lock()
			p.proto = Proto
			n.mu.Unlock()
			return fmt.Errorf("peer %s is %s-only, downgrading", p.addr, Proto)
		}
		n.mu.Lock()
		if rep.Term > n.term {
			n.fenceLocked("", fmt.Sprintf("refused by peer %s at term %d (own term %d)", p.addr, rep.Term, n.term))
		}
		n.mu.Unlock()
		return fmt.Errorf("peer refused: %s", rep.Reason)
	}
	n.mu.Lock()
	p.proto = proto
	n.mu.Unlock()
	conn.SetDeadline(time.Time{})

	// Choose the catch-up under the lock and register the live channel
	// in the same critical section: every append after this point goes
	// to the channel, everything before is in the backlog (or the
	// snapshot) — no gap, no overlap.
	n.mu.Lock()
	if n.closed || n.fenced || n.role != controller.RoleLeader {
		n.mu.Unlock()
		return nil
	}
	st = n.store.State()
	var backlog [][]byte
	var snap *journal.State
	incremental := false
	if rep.Have <= st.Seq {
		// Log matching: the follower's journal is a clean prefix of
		// ours iff the term governing its last record IN OUR HISTORY
		// equals the term its own tail claims — terms uniquely
		// identify a leader's history, so matching tails mean
		// matching prefixes. Term 0 (pre-replication records) proves
		// nothing: two independently booted journals share seqs but
		// not history, so only the empty position qualifies. States
		// predating term-history tracking fall back to the pair-era
		// check (same-term suffix only).
		incremental = rep.Have == 0
		if !incremental {
			if t, ok := st.TermAt(rep.Have); ok && t > 0 {
				incremental = t == rep.Term
			} else {
				incremental = rep.Term == st.Term && rep.Have >= st.TermStart
			}
		}
	}
	if incremental {
		recs, rerr := n.store.RecordsAfter(rep.Have)
		switch {
		case rerr == journal.ErrCompacted:
			snap = st
		case rerr != nil:
			n.mu.Unlock()
			return rerr
		default:
			for _, r := range recs {
				f, ferr := journal.EncodeRecord(r)
				if ferr != nil {
					n.mu.Unlock()
					return ferr
				}
				backlog = append(backlog, f)
			}
		}
	} else {
		// The follower is ahead (forked suffix), on a diverged term,
		// or at a position we cannot prove is a clean prefix: rewrite
		// it with the whole state.
		snap = st
	}
	p.ch = make(chan []byte, 1024)
	p.conn = conn
	p.acked = 0
	if snap == nil {
		// An incremental follower provably holds everything through
		// rep.Have: count it toward quorums immediately, so a
		// post-failover leader plus one up-to-date survivor can
		// commit without waiting for fresh traffic.
		p.acked = rep.Have
	}
	p.live = true
	// From here on this peer votes: sync appends in this term wait for
	// its acknowledgement.
	p.termConnected = n.term
	n.maybeResolveLocked()
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		if p.conn == conn {
			p.live = false
			p.conn = nil
		}
		n.mu.Unlock()
	}()

	// Ack reader: resolves AppendSync waiters as acknowledgements come
	// back. Exits when the connection dies.
	errc := make(chan error, 1)
	go func() {
		var b [8]byte
		for {
			if _, err := io.ReadFull(br, b[:]); err != nil {
				errc <- err
				return
			}
			seq := binary.LittleEndian.Uint64(b[:])
			n.mu.Lock()
			if p.conn == conn && seq > p.acked {
				p.acked = seq
				n.maybeResolveLocked()
			}
			n.mu.Unlock()
		}
	}()

	bw := bufio.NewWriter(conn)
	if snap != nil {
		data, merr := marshalState(snap)
		if merr != nil {
			return merr
		}
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(len(data)))
		bw.WriteByte('S')
		bw.Write(lb[:])
		if _, err := bw.Write(data); err != nil {
			return err
		}
		n.logf("replication: peer %s: snapshot resync at seq %d", p.addr, snap.Seq)
	}
	for _, f := range backlog {
		bw.WriteByte('F')
		if _, err := bw.Write(f); err != nil {
			return err
		}
		n.framesShipped.Add(1)
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	hb := time.NewTicker(n.cfg.HeartbeatEvery)
	defer hb.Stop()
	var hbBuf [9]byte
	hbBuf[0] = 'H'
	for {
		select {
		case <-n.stop:
			return nil
		case err := <-errc:
			return err
		case f := <-p.ch:
			bw.WriteByte('F')
			if _, err := bw.Write(f); err != nil {
				return err
			}
			// Drain whatever else is queued before flushing once.
		drain:
			for {
				select {
				case more := <-p.ch:
					bw.WriteByte('F')
					if _, err := bw.Write(more); err != nil {
						return err
					}
					n.framesShipped.Add(1)
				default:
					break drain
				}
			}
			n.framesShipped.Add(1)
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-hb.C:
			n.mu.Lock()
			seq := n.store.Seq()
			stale := n.fenced || n.role != controller.RoleLeader || n.closed
			n.mu.Unlock()
			if stale {
				return nil
			}
			binary.LittleEndian.PutUint64(hbBuf[1:], seq)
			if _, err := bw.Write(hbBuf[:]); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}
