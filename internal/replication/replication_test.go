package replication

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

const testModule = `
in :: FromNetfront();
f :: IPFilter(allow udp);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`

func testRequest(i int) controller.Request {
	return controller.Request{
		Tenant:     fmt.Sprintf("tenant%d", i),
		ModuleName: fmt.Sprintf("repl%d", i),
		Config:     testModule,
		Trust:      security.ThirdParty,
	}
}

type replica struct {
	dir   string
	store *journal.Store
	ctl   *controller.Controller
	node  *Node
}

// newReplica boots one controller + store + replication node. The
// config's Role/ListenAddr/Peers come from the caller; timeouts are
// tightened for tests.
func newReplica(t *testing.T, cfg Config) *replica {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := journal.Open(dir, journal.Options{Sync: journal.SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 3 * time.Second
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if cfg.RedialEvery == 0 {
		cfg.RedialEvery = 10 * time.Millisecond
	}
	cfg.Logf = t.Logf
	node, err := NewNode(store, ctl, cfg)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	ctl.AttachJournal(node)
	if err := node.Start(); err != nil {
		store.Close()
		t.Fatal(err)
	}
	r := &replica{dir: dir, store: store, ctl: ctl, node: node}
	t.Cleanup(func() {
		node.Close()
		store.Close()
	})
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func canonical(t *testing.T, s *journal.Store) []byte {
	t.Helper()
	return s.State().Canonical()
}

func TestLeaderShipsToStandby(t *testing.T) {
	standby := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	leader := newReplica(t, Config{Role: controller.RoleLeader, Peers: []string{standby.node.Addr()}})

	var killID string
	for i := 0; i < 3; i++ {
		d, err := leader.ctl.Deploy(testRequest(i))
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		if i == 2 {
			killID = d.ID
		}
	}
	if err := leader.ctl.Kill(killID); err != nil {
		t.Fatalf("kill: %v", err)
	}

	// Admissions and kills are synchronous: by the time Deploy/Kill
	// returned, the standby has the records durably — no polling.
	if got, want := standby.store.Seq(), leader.store.Seq(); got != want {
		t.Fatalf("standby seq %d != leader seq %d after sync appends", got, want)
	}
	if a, b := canonical(t, leader.store), canonical(t, standby.store); !bytes.Equal(a, b) {
		t.Fatalf("journal state diverged:\nleader:\n%s\nstandby:\n%s", a, b)
	}
	// The wire re-uses the journal frames verbatim, so the files are
	// byte-identical, CRCs included.
	lf, err := os.ReadFile(filepath.Join(leader.dir, journal.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := os.ReadFile(filepath.Join(standby.dir, journal.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lf, sf) {
		t.Fatalf("journal files differ: leader %d bytes, standby %d bytes", len(lf), len(sf))
	}
	// The standby's controller is warm: same deployments, live.
	if got := len(standby.ctl.Deployments()); got != 2 {
		t.Fatalf("standby holds %d deployments, want 2", got)
	}
	// And read-only: mutations are refused.
	if _, err := standby.ctl.Deploy(testRequest(9)); !errors.Is(err, controller.ErrNotLeader) {
		t.Fatalf("standby Deploy error = %v, want ErrNotLeader", err)
	}
}

func TestLateJoinCatchesUpIncrementally(t *testing.T) {
	standby := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	// Leader configured with the standby's address, but deploys before
	// the stream is necessarily caught up — the backlog path replays
	// records from disk on connect.
	leader := newReplica(t, Config{Role: controller.RoleLeader, Peers: []string{standby.node.Addr()}})
	for i := 0; i < 4; i++ {
		if _, err := leader.ctl.Deploy(testRequest(i)); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	waitFor(t, "standby catch-up", func() bool {
		return standby.store.Seq() == leader.store.Seq()
	})
	if a, b := canonical(t, leader.store), canonical(t, standby.store); !bytes.Equal(a, b) {
		t.Fatalf("states diverged after catch-up")
	}
	if standby.node.Info().LagRecords != 0 {
		t.Fatalf("standby reports lag %d after catch-up", standby.node.Info().LagRecords)
	}
}

func TestSnapshotResyncAfterCompaction(t *testing.T) {
	// The leader compacts its journal before the standby ever
	// connects: frame-by-frame catch-up is impossible (ErrCompacted)
	// and the leader must ship a snapshot.
	leaderDir := t.TempDir()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	store, err := journal.Open(leaderDir, journal.Options{Sync: journal.SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachJournal(store)
	for i := 0; i < 3; i++ {
		if _, err := ctl.Deploy(testRequest(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.RecordsAfter(0); err != journal.ErrCompacted {
		t.Fatalf("RecordsAfter(0) after compact = %v, want ErrCompacted", err)
	}

	standby := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	node, err := NewNode(store, ctl, Config{
		Role:           controller.RoleLeader,
		Peers:          []string{standby.node.Addr()},
		HeartbeatEvery: 20 * time.Millisecond,
		RedialEvery:    10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachJournal(node)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Close()
		store.Close()
	})

	waitFor(t, "snapshot resync", func() bool {
		return standby.store.Seq() >= store.Seq() && standby.node.resyncs.Load() > 0
	})
	// Post-snapshot appends flow as frames again.
	if _, err := ctl.Deploy(testRequest(7)); err != nil {
		t.Fatal(err)
	}
	if standby.store.Seq() != store.Seq() {
		t.Fatalf("standby seq %d != leader seq %d after post-resync deploy", standby.store.Seq(), store.Seq())
	}
	if a, b := store.State().Canonical(), standby.store.State().Canonical(); !bytes.Equal(a, b) {
		t.Fatalf("states diverged after snapshot resync")
	}
	if got := len(standby.ctl.Deployments()); got != 4 {
		t.Fatalf("standby holds %d deployments, want 4", got)
	}
}

func TestPromotionFencesOldLeader(t *testing.T) {
	// Two nodes, each listening, each configured with the other as a
	// peer — the stacked pair innetd would run.
	standby := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	leader := newReplica(t, Config{
		Role:       controller.RoleLeader,
		ListenAddr: "127.0.0.1:0",
		Peers:      []string{standby.node.Addr()},
	})
	// Tell the standby where the old leader listens so that, once
	// promoted, it ships (and thereby fences) backwards.
	standby.node.mu.Lock()
	standby.node.peers = append(standby.node.peers, &peer{addr: leader.node.Addr()})
	standby.node.mu.Unlock()

	if _, err := leader.ctl.Deploy(testRequest(0)); err != nil {
		t.Fatal(err)
	}
	if err := standby.node.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if standby.node.Term() != 2 {
		t.Fatalf("promoted term = %d, want 2", standby.node.Term())
	}

	// The new leader's handshake deposes the old one.
	waitFor(t, "old leader fenced", func() bool { return leader.node.Fenced() })
	if err := leader.node.Append(journal.Record{Type: journal.EvReject, ID: "late", Reason: "x"}); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed leader Append = %v, want ErrFenced", err)
	}
	waitFor(t, "old leader demoted", func() bool { return leader.ctl.Role() == controller.RoleStandby })
	if _, err := leader.ctl.Deploy(testRequest(5)); !errors.Is(err, controller.ErrNotLeader) {
		t.Fatalf("deposed leader Deploy = %v, want ErrNotLeader", err)
	}

	// New leader serves writes; the deposed node follows it and
	// converges (snapshot resync rewrites any divergence).
	if _, err := standby.ctl.Deploy(testRequest(1)); err != nil {
		t.Fatalf("new leader deploy: %v", err)
	}
	waitFor(t, "deposed node convergence", func() bool {
		return leader.store.Seq() == standby.store.Seq() &&
			bytes.Equal(canonical(t, leader.store), canonical(t, standby.store))
	})
	// The deposed node learned its successor's URL for redirects.
	if got := leader.node.Leader(); got == "" {
		t.Log("deposed node has no successor URL (advertise unset in test config) — tolerated")
	}
	if got := len(leader.ctl.Deployments()); got != 2 {
		t.Fatalf("deposed node holds %d deployments, want 2", got)
	}
}

func TestEqualTermHelloRefused(t *testing.T) {
	a := newReplica(t, Config{Role: controller.RoleLeader, ListenAddr: "127.0.0.1:0"})
	// A second leader at the same term must not be accepted — wire a
	// fake leader hello directly.
	conn, err := (&Node{cfg: Config{}}).dial(a.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeJSONLine(conn, hello{Proto: Proto, Term: a.node.Term(), Seq: 9}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	m, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf[:m], []byte(`"ok":false`)) {
		t.Fatalf("equal-term hello accepted: %s", buf[:m])
	}
	if a.node.Fenced() {
		t.Fatal("leader fenced itself on an equal-term hello")
	}
}

func TestDeployIdempotentAcrossLeaders(t *testing.T) {
	standby := newReplica(t, Config{Role: controller.RoleStandby, ListenAddr: "127.0.0.1:0"})
	leader := newReplica(t, Config{Role: controller.RoleLeader, Peers: []string{standby.node.Addr()}})

	d1, err := leader.ctl.Deploy(testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	// Crash the leader after the admission replicated; promote the
	// standby; the client's retry must be answered with the same
	// deployment, not a duplicate-module rejection.
	leader.node.Close()
	leader.store.Close()
	if err := standby.node.Promote(); err != nil {
		t.Fatal(err)
	}
	d2, reused, err := standby.ctl.DeployIdempotent(testRequest(0))
	if err != nil {
		t.Fatalf("retry after failover: %v", err)
	}
	if !reused {
		t.Fatal("retry was not recognized as a replay of the replicated admission")
	}
	if d2.ID != d1.ID || d2.Addr != d1.Addr || d2.Platform != d1.Platform {
		t.Fatalf("retry produced a different deployment: %s@%s vs %s@%s", d2.ID, d2.Platform, d1.ID, d1.Platform)
	}
	// A *different* request under the same module name still rejects.
	req := testRequest(0)
	req.Requirements = "" // identical so far; change the config
	req.Config = testModule + "\n// changed\n"
	if _, _, err := standby.ctl.DeployIdempotent(req); err == nil {
		t.Fatal("changed request under the same name was not rejected")
	}
}
