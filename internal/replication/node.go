// Package replication implements a replicated controller group: the
// leader streams write-ahead journal frames (the exact bytes it wrote
// to its own journal file) to followers over a minimal TCP protocol,
// and each follower ingests them verbatim and folds them through the
// controller's catch-up apply, holding a warm, fully-admitted
// replica. Failover is fenced: leadership terms are journal records,
// a deposed leader's late appends are rejected (wedging it read-only)
// rather than forking history, and clients are redirected to the new
// leader through the API layer's role routing.
//
// Consistency model. Strict (write-ahead) records — admissions and
// kills — replicate synchronously. In a group of N ≥ 3 replicas,
// AppendSync commits once a majority of the group (the leader plus
// ⌊N/2⌋ followers) holds the frame, so any future majority — and
// therefore any electable leader — intersects the committing one and
// holds every acknowledged record. Failover is an election: a
// candidate solicits votes at a bumped term, a voter grants at most
// one vote per term (persisted across restarts) and only to a
// candidate whose journal is at least as up-to-date as its own, and
// the candidate promotes only with a majority including itself. A
// leader cut off from a majority fences within the ack timeout
// (blocked append or idle-quorum watchdog), so the minority side
// wedges read-only while the majority side elects and proceeds.
//
// With N ≤ 2 the legacy pair semantics apply unchanged: AppendSync
// waits for every peer that connected during the current term,
// failover is silence-triggered direct promotion (a standby that has
// never heard any leader refuses), and the operator accepts the
// pair's split-brain-on-partition fencing tradeoffs documented in
// DESIGN.md. A majority of 2 would make a promoted pair-standby
// unable to commit alone, so quorum rules only engage at N ≥ 3.
//
// Best-effort records ship asynchronously in both modes. Records a
// dying leader appended locally but never replicated are discarded
// when it rejoins as a follower (snapshot or suffix resync) — exactly
// the records no client ever saw acknowledged.
package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/telemetry"
)

// Proto names the v1 wire protocol version carried in the handshake.
const Proto = "innet-repl/1"

// Proto2 is the v2 protocol: same stream format, but the hello gains
// a kind (stream vs vote solicitation) and log-position fields for
// elections. Dialers offer v2 and fall back per-peer when a v1
// acceptor refuses it; acceptors take both.
const Proto2 = "innet-repl/2"

// ErrFenced is returned by appends on a deposed (or self-fenced)
// leader: the node is read-only until an operator restarts it as a
// standby of the new leader.
var ErrFenced = errors.New("replication: node is fenced (deposed leader), read-only")

// Config shapes a replication node.
type Config struct {
	// Role is the boot role: RoleLeader or RoleStandby.
	Role controller.Role
	// ListenAddr accepts replication streams (standbys listen; leaders
	// listen too, so a successor can fence them after a partition
	// heals). Empty = no listener.
	ListenAddr string
	// Peers are the replication addresses this node ships frames to
	// when (and only while) it is the leader.
	Peers []string
	// AdvertiseURL is this node's client-facing API base URL,
	// announced in the handshake so a deposed leader can redirect
	// clients to its successor.
	AdvertiseURL string
	// AckTimeout bounds AppendSync's wait for standby acknowledgement;
	// on expiry the leader fences itself (default 5s).
	AckTimeout time.Duration
	// HeartbeatEvery paces leader heartbeats (default 250ms).
	HeartbeatEvery time.Duration
	// FailoverAfter, when positive, arms automatic failover for a
	// follower that has not heard from its leader for this long: at
	// N ≤ 2 it promotes directly, at N ≥ 3 it starts an election.
	// Zero = manual Promote.
	FailoverAfter time.Duration
	// ElectionTimeout bounds one election round (vote solicitation)
	// and paces the jittered retry after a lost or split vote
	// (default 1s). Only meaningful at N ≥ 3.
	ElectionTimeout time.Duration
	// RedialEvery paces reconnection attempts to a dead peer
	// (default 100ms).
	RedialEvery time.Duration
	// Dial replaces net.Dial for the peer streams — the chaos suite
	// injects partitions and lag here.
	Dial func(addr string) (net.Conn, error)
	// OnApply, when set, observes every record the standby applies —
	// innetd uses it to mirror admissions into its simulated dataplane.
	OnApply func(journal.Record)
	// Registry receives the replication telemetry families (nil = dark).
	Registry *telemetry.Registry
	// Rec, when set, receives flight-recorder events for fencings and
	// election wins.
	Rec *telemetry.Recorder
	// OnFence, when set, runs (asynchronously) after this node fences
	// itself — innetd dumps a postmortem from it.
	OnFence func(reason string)
	// Logf receives protocol events (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.RedialEvery <= 0 {
		c.RedialEvery = 100 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = time.Second
	}
}

// peer is one standby the leader ships to. All fields are guarded by
// Node.mu; the stream goroutine copies what it needs under the lock.
type peer struct {
	addr    string
	started bool
	// live marks an established stream; ch carries frames to its
	// writer goroutine, conn is closed to force a reconnect.
	live bool
	ch   chan []byte
	conn net.Conn
	// acked is the highest sequence number the standby acknowledged on
	// the current stream.
	acked uint64
	// termConnected is the leadership term in which this peer's stream
	// last went live. A peer that has never connected during the
	// current term is a catch-up candidate, not a voter: sync appends
	// do not wait for it (see minAckedLocked). This is the asymmetry
	// that lets a freshly promoted leader commit while its deposed
	// predecessor — whose peer WAS connected in its term and then
	// vanished — blocks and fences. At N ≥ 3 the same field scopes
	// majority counting to acks earned in the current term.
	termConnected uint64
	// proto is the negotiated wire protocol for this peer ("" = offer
	// v2 first; set to Proto after a v1-only acceptor refuses v2).
	proto string
}

// waiter is one AppendSync blocked until its seq is acknowledged by
// every peer (or the node fences).
type waiter struct {
	seq uint64
	ch  chan error
}

// Node replicates a journal store between controllers. It implements
// controller.Journal (plus the AppendSync extension), so attaching it
// in place of the bare *journal.Store makes every controller
// transition flow through replication.
type Node struct {
	store *journal.Store
	ctl   *controller.Controller
	cfg   Config

	mu     sync.Mutex
	role   controller.Role
	term   uint64
	fenced bool
	// leaderURL is the last advertised leader API URL (a standby
	// learns it from the handshake; a deposed leader from its
	// successor's fencing handshake).
	leaderURL string
	// leaderSeq / lastContact track the upstream leader for lag and
	// failure detection. everHeard records that at least one leader
	// handshake ever arrived: a standby that has never heard from any
	// leader has nothing to fail over FROM and must not auto-promote
	// over a boot leader it simply hasn't met yet.
	leaderSeq   uint64
	lastContact time.Time
	everHeard   bool
	peers       []*peer
	waiters     []*waiter
	// votedTerm / votedFor record the single vote this node may cast
	// per term, persisted to a side file in the journal directory so a
	// crash-restart cannot double-vote and elect two leaders for one
	// term. A candidate's self-vote lands here too — without bumping
	// n.term, so a failed candidacy cannot depose a healthy leader.
	votedTerm uint64
	votedFor  string
	// quorumLostSince marks when a quorum-mode leader last lost
	// contact with a majority; the supervisor fences it once the gap
	// exceeds AckTimeout even if no append is in flight.
	quorumLostSince time.Time
	// ingests are live inbound streams (closed on promote so a zombie
	// leader cannot keep feeding a new leader).
	ingests []net.Conn
	closed  bool

	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup

	framesShipped    atomic.Uint64
	framesIngested   atomic.Uint64
	resyncs          atomic.Uint64
	fencings         atomic.Uint64
	electionsStarted atomic.Uint64
	electionsWon     atomic.Uint64
	electionsLost    atomic.Uint64
	votesGranted     atomic.Uint64
	// fencedRefusals counts appends rejected because the node is
	// fenced — the replication entry in the drop-attribution hub.
	fencedRefusals atomic.Uint64
	failoverHist   *telemetry.Histogram
	reg            *telemetry.Registry
}

// record emits a flight-recorder event when a recorder is attached.
// The node's replication listen address serves as the ref.
func (n *Node) record(typ, detail string) {
	if n.cfg.Rec != nil {
		n.cfg.Rec.Record(typ, "replication", detail, n.cfg.ListenAddr)
	}
}

// RegisterDrops wires the node's fenced-append refusals into the
// unified drop-attribution hub under site "replication". These are
// refused writes, not packets, but they share the operator question
// drops answer: where did my request go.
func (n *Node) RegisterDrops(d *telemetry.Drops) {
	if d == nil {
		return
	}
	d.Source("replication", "fenced", n.fencedRefusals.Load)
}

// NewNode wires a replication node around a store and its controller.
// A boot leader whose journal has never seen a term appends the
// founding EvTerm record immediately, so term 0 only ever means
// "never replicated".
func NewNode(store *journal.Store, ctl *controller.Controller, cfg Config) (*Node, error) {
	cfg.defaults()
	if cfg.Role != controller.RoleLeader && cfg.Role != controller.RoleStandby {
		return nil, fmt.Errorf("replication: role must be leader or standby, got %s", cfg.Role)
	}
	n := &Node{
		store: store,
		ctl:   ctl,
		cfg:   cfg,
		role:  cfg.Role,
		term:  store.State().Term,
		stop:  make(chan struct{}),
	}
	n.loadVote()
	if cfg.Role == controller.RoleLeader && n.term == 0 {
		n.term = 1
		if err := store.Append(journal.Record{Type: journal.EvTerm, Term: 1}); err != nil {
			return nil, fmt.Errorf("replication: founding term record: %w", err)
		}
	}
	// Peers start as voters for the current term: a boot leader's sync
	// appends wait for them from the first record (strict by default).
	// A later promotion bumps the term past termConnected, turning
	// unreachable peers into non-voting catch-up candidates until they
	// reconnect.
	for _, addr := range cfg.Peers {
		n.peers = append(n.peers, &peer{addr: addr, termConnected: n.term})
	}
	ctl.SetRole(cfg.Role)
	n.registerMetrics(cfg.Registry)
	return n, nil
}

// Start opens the listener, begins shipping (leaders) and arms the
// failure detector (standbys with FailoverAfter set).
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", n.cfg.ListenAddr)
		if err != nil {
			return fmt.Errorf("replication: listen: %w", err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	n.lastContact = time.Now()
	if n.role == controller.RoleLeader {
		n.startPeersLocked()
	}
	// The supervisor always runs: it decides per-tick whether this is
	// a quorum group (N ≥ 3 — elections and the minority-leader
	// watchdog) or a legacy pair (direct silence-triggered promotion),
	// so peers registered after Start (harnesses bind ":0" first)
	// still flip the node into quorum behavior.
	n.wg.Add(1)
	go n.supervisor()
	return nil
}

// Addr returns the replication listener's address ("" if none) —
// tests listen on :0 and read the bound port here.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// AddPeer registers another replica's replication address. On an
// active leader the shipping stream starts immediately; on a standby
// the peer lies dormant until promotion. Harnesses use it when peer
// addresses are only known after both nodes have bound ":0"
// listeners. Sync appends wait on every registered peer, so adding a
// peer that is not actually listening will fence an active leader
// after one ack timeout.
func (n *Node) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || addr == "" {
		return
	}
	for _, p := range n.peers {
		if p.addr == addr {
			return
		}
	}
	p := &peer{addr: addr, termConnected: n.term}
	n.peers = append(n.peers, p)
	n.registerPeerLag(p)
	if n.role == controller.RoleLeader && !n.fenced {
		n.startPeersLocked()
	}
}

// SetAdvertiseURL updates the client-facing API URL announced in the
// replication handshake. Harnesses that bind test HTTP servers after
// the node is built set it before the first peer stream opens.
func (n *Node) SetAdvertiseURL(u string) {
	n.mu.Lock()
	n.cfg.AdvertiseURL = u
	n.mu.Unlock()
}

// Append journals a best-effort record and ships it asynchronously.
func (n *Node) Append(r journal.Record) error { return n.append(r, false) }

// AppendSync journals a strict record and blocks until every peer has
// acknowledged it (or the ack timeout fences this node). Admissions
// and kills use it through the controller's write-ahead path.
func (n *Node) AppendSync(r journal.Record) error { return n.append(r, true) }

func (n *Node) append(r journal.Record, syncAck bool) error {
	n.mu.Lock()
	if n.fenced {
		n.fencedRefusals.Add(1)
		n.mu.Unlock()
		return ErrFenced
	}
	if n.role != controller.RoleLeader {
		n.mu.Unlock()
		return controller.ErrNotLeader
	}
	if err := n.store.Append(r); err != nil {
		n.mu.Unlock()
		return err
	}
	r.Seq = n.store.Seq()
	// Re-encoding the record with its assigned Seq reproduces the
	// exact frame bytes the store just wrote (deterministic JSON), so
	// the standby's journal file stays byte-identical to the leader's.
	frame, err := journal.EncodeRecord(r)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	n.shipLocked(frame)
	if !syncAck {
		n.mu.Unlock()
		return nil
	}
	if !n.quorumLocked() && !n.hasVotersLocked() {
		// Pair mode with no peer connected during this term: nothing
		// can acknowledge, and nothing that could become leader holds
		// this term — commit locally (the catch-up stream replays it
		// later). At N ≥ 3 this shortcut would let a minority leader
		// commit, so quorum mode always waits for majority acks.
		n.mu.Unlock()
		return nil
	}
	w := &waiter{seq: r.Seq, ch: make(chan error, 1)}
	n.waiters = append(n.waiters, w)
	n.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-time.After(n.cfg.AckTimeout):
	}
	n.mu.Lock()
	select {
	case err := <-w.ch: // resolved while we were timing out
		n.mu.Unlock()
		return err
	default:
	}
	for i, other := range n.waiters {
		if other == w {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			break
		}
	}
	// Too few replicas acknowledged: fence rather than diverge. The
	// record stays in the local journal but was never acknowledged to
	// the client; the resync on rejoin discards it.
	n.fenceLocked("", fmt.Sprintf("no replication quorum for seq %d within %v", r.Seq, n.cfg.AckTimeout))
	n.mu.Unlock()
	return fmt.Errorf("%w: replication of seq %d timed out", ErrFenced, r.Seq)
}

// shipLocked hands a frame to every live peer stream. A peer whose
// buffer is full has its connection closed instead of blocking the
// append path — the reconnect catches it up from disk.
func (n *Node) shipLocked(frame []byte) {
	for _, p := range n.peers {
		if !p.live {
			continue
		}
		select {
		case p.ch <- frame:
		default:
			n.logf("replication: peer %s stream backlogged, dropping connection", p.addr)
			p.conn.Close()
			p.live = false
		}
	}
}

// clusterSizeLocked counts the replica group: this node plus every
// configured peer.
func (n *Node) clusterSizeLocked() int { return 1 + len(n.peers) }

// majorityLocked is the quorum size: ⌊N/2⌋+1 replicas.
func (n *Node) majorityLocked() int { return n.clusterSizeLocked()/2 + 1 }

// quorumLocked reports whether majority-quorum semantics govern this
// group. Pairs (and solo nodes) keep the legacy all-voter semantics:
// a majority of 2 is 2, which would leave a promoted pair-standby
// unable to commit alone — exactly the failover the pair exists for.
func (n *Node) quorumLocked() bool { return n.clusterSizeLocked() >= 3 }

// ackCountLocked counts the replicas known to hold the record at seq:
// this node (its journal wrote it) plus every current-term peer whose
// acknowledged watermark covers it. Acks earned under an older term
// do not count — only current-term streams prove the peer's journal
// is a prefix of ours.
func (n *Node) ackCountLocked(seq uint64) int {
	count := 1
	for _, p := range n.peers {
		if p.termConnected == n.term && p.acked >= seq {
			count++
		}
	}
	return count
}

// liveQuorumLocked reports whether this node plus its live
// current-term peers form a majority — the idle-leader health check
// the supervisor's watchdog enforces.
func (n *Node) liveQuorumLocked() bool {
	count := 1
	for _, p := range n.peers {
		if p.live && p.termConnected == n.term {
			count++
		}
	}
	return count >= n.majorityLocked()
}

// hasVotersLocked reports whether any peer has connected during the
// current term. Only such peers hold (or acknowledged) records of
// this term, so only they gate sync appends.
func (n *Node) hasVotersLocked() bool {
	for _, p := range n.peers {
		if p.termConnected == n.term {
			return true
		}
	}
	return false
}

// minAckedLocked is the lowest acknowledged seq across the peers that
// have connected during the current term — the watermark AppendSync
// waiters resolve against. Peers from older terms are catch-up
// candidates, not voters; with no voters at all everything resolves
// (^0).
func (n *Node) minAckedLocked() uint64 {
	min := ^uint64(0)
	for _, p := range n.peers {
		if p.termConnected == n.term && p.acked < min {
			min = p.acked
		}
	}
	return min
}

func (n *Node) maybeResolveLocked() {
	if len(n.waiters) == 0 {
		return
	}
	quorum := n.quorumLocked()
	min := uint64(0)
	if !quorum {
		min = n.minAckedLocked()
	}
	majority := n.majorityLocked()
	keep := n.waiters[:0]
	for _, w := range n.waiters {
		committed := false
		if quorum {
			committed = n.ackCountLocked(w.seq) >= majority
		} else {
			committed = w.seq <= min
		}
		if committed {
			w.ch <- nil
		} else {
			keep = append(keep, w)
		}
	}
	n.waiters = keep
}

// fenceLocked makes the node read-only: a higher term exists (or the
// standby is unreachable and is presumed promoting). Pending sync
// appends fail, peer streams close, and the controller drops to
// standby so the API layer starts redirecting.
func (n *Node) fenceLocked(successorURL, reason string) {
	if successorURL != "" {
		n.leaderURL = successorURL
	}
	if n.fenced {
		return
	}
	n.fenced = true
	n.fencings.Add(1)
	n.role = controller.RoleStandby
	for _, w := range n.waiters {
		w.ch <- ErrFenced
	}
	n.waiters = nil
	for _, p := range n.peers {
		if p.live {
			p.conn.Close()
			p.live = false
		}
	}
	n.logf("replication: fenced: %s", reason)
	n.record("fenced", reason)
	// Async: fencing can fire inside AppendSync while the controller's
	// own mutex is held; SetRole takes that mutex.
	go n.ctl.SetRole(controller.RoleStandby)
	if f := n.cfg.OnFence; f != nil {
		go f(reason)
	}
}

// Promote makes a follower the leader. In a pair this is direct: bump
// the term, journal the EvTerm fencing record, start shipping. At
// N ≥ 3 it runs an election and refuses to promote without a majority
// of votes — there is no unguarded promotion in quorum mode. The
// supervisor calls this automatically when FailoverAfter is set;
// tests and operators may call it directly.
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.fenced {
		n.mu.Unlock()
		return ErrFenced
	}
	if n.role == controller.RoleLeader {
		n.mu.Unlock()
		return nil
	}
	if n.quorumLocked() {
		n.mu.Unlock()
		return n.runElection()
	}
	down := time.Since(n.lastContact)
	if st := n.store.State(); st.Term > n.term {
		n.term = st.Term
	}
	term := n.term + 1
	if err := n.promoteToTermLocked(term); err != nil {
		n.mu.Unlock()
		return fmt.Errorf("replication: promote: term record: %w", err)
	}
	n.mu.Unlock()
	n.finishPromotion(term, down)
	return nil
}

// promoteToTermLocked performs the leadership switch at exactly term:
// journal the EvTerm fencing record, cut inbound streams (a
// not-yet-dead old leader must not keep feeding us frames from the
// deposed term), start shipping to peers. Caller holds n.mu, has
// verified the node is an unfenced follower, and follows up with
// finishPromotion outside the lock.
func (n *Node) promoteToTermLocked(term uint64) error {
	rec := journal.Record{Type: journal.EvTerm, Term: term}
	if err := n.store.Append(rec); err != nil {
		return err
	}
	rec.Seq = n.store.Seq()
	n.term = term
	n.role = controller.RoleLeader
	n.leaderURL = ""
	for _, c := range n.ingests {
		c.Close()
	}
	n.ingests = nil
	n.quorumLostSince = time.Time{}
	n.startPeersLocked()
	if frame, err := journal.EncodeRecord(rec); err == nil {
		n.shipLocked(frame)
	}
	return nil
}

// finishPromotion runs the out-of-lock tail of a promotion: flip the
// controller to leader, record the failover latency, log.
func (n *Node) finishPromotion(term uint64, down time.Duration) {
	n.ctl.SetRole(controller.RoleLeader)
	if n.failoverHist != nil {
		n.failoverHist.Observe(down.Seconds())
	}
	n.record("election-won", fmt.Sprintf("term %d after %v leader silence", term, down))
	n.logf("replication: promoted to leader, term %d (leader silent for %v)", term, down)
}

func (n *Node) startPeersLocked() {
	for _, p := range n.peers {
		if p.started {
			continue
		}
		p.started = true
		n.wg.Add(1)
		go n.peerLoop(p)
	}
}

// supervisor is the node's periodic health loop. For a follower with
// FailoverAfter armed it triggers failover when the leader goes
// silent — direct promotion in a pair, an election (with jittered
// retry to break split votes) at N ≥ 3. For a quorum-mode leader it
// is the idle watchdog: a leader continuously cut off from a majority
// for AckTimeout fences even with no append in flight, so a minority
// partition wedges read-only within the ack timeout as promised to
// clients.
func (n *Node) supervisor() {
	defer n.wg.Done()
	every := n.cfg.AckTimeout / 4
	if n.cfg.FailoverAfter > 0 && n.cfg.FailoverAfter/4 < every {
		every = n.cfg.FailoverAfter / 4
	}
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	var nextElection time.Time
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		quorum := n.quorumLocked()
		// Leader-side quorum watchdog.
		if quorum && n.role == controller.RoleLeader && !n.fenced {
			if n.liveQuorumLocked() {
				n.quorumLostSince = time.Time{}
			} else if n.quorumLostSince.IsZero() {
				n.quorumLostSince = time.Now()
			} else if time.Since(n.quorumLostSince) > n.cfg.AckTimeout {
				n.fenceLocked("", fmt.Sprintf("lost contact with the majority for %v", n.cfg.AckTimeout))
			}
		}
		// Follower-side failover trigger.
		silent := n.cfg.FailoverAfter > 0 && !n.fenced &&
			n.role == controller.RoleStandby &&
			time.Since(n.lastContact) > n.cfg.FailoverAfter
		// In a pair, a standby that has never heard from any leader has
		// nothing to fail over FROM and must not promote over a boot
		// leader it simply hasn't met. In quorum mode the vote itself
		// guards this: a candidate cannot win without a majority, so
		// the special case is subsumed.
		if !quorum {
			silent = silent && (n.everHeard || n.term > 0)
		}
		n.mu.Unlock()
		if !silent {
			continue
		}
		if quorum && time.Now().Before(nextElection) {
			continue
		}
		if err := n.Promote(); err != nil {
			n.logf("replication: auto-failover: %v", err)
		}
		if quorum {
			// Back off a jittered interval before the next campaign so
			// two simultaneous candidates do not split votes forever.
			nextElection = time.Now().Add(n.cfg.ElectionTimeout/2 +
				time.Duration(rand.Int63n(int64(n.cfg.ElectionTimeout))))
		}
	}
}

// Info is the node's replication status, surfaced in /v1/health.
type Info struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
	Seq  uint64 `json:"seq"`
	// Fenced marks a deposed leader (read-only until restarted).
	Fenced bool `json:"fenced,omitempty"`
	// LeaderURL is the advertised API URL of the current leader, when
	// this node is not it.
	LeaderURL string `json:"leader_url,omitempty"`
	// LagRecords is how many records this node is behind: the
	// leader's seq minus its own (standby), or its seq minus the
	// slowest peer's acknowledgement (leader).
	LagRecords uint64 `json:"lag_records"`
	// Peers counts configured replication peers.
	Peers int `json:"peers"`
	// ClusterSize and Majority describe the replica group: N replicas
	// (this node plus peers) and the ⌊N/2⌋+1 quorum strict appends
	// commit against at N ≥ 3.
	ClusterSize int `json:"cluster_size"`
	Majority    int `json:"majority"`
	// PeerDetail reports each configured peer's stream state — the
	// per-peer view an operator needs to debug a quorum stall.
	PeerDetail []PeerStatus `json:"peer_detail,omitempty"`
}

// PeerStatus is one peer's replication state as seen from this node.
type PeerStatus struct {
	Addr string `json:"addr"`
	// AckedSeq is the highest journal seq the peer acknowledged on its
	// current stream; Lag is this node's seq minus that.
	AckedSeq uint64 `json:"acked_seq"`
	Lag      uint64 `json:"lag"`
	// Connected marks a live stream; TermConnected is the leadership
	// term the stream last went live in (a peer whose TermConnected
	// trails the node's term is a catch-up candidate, not a voter).
	Connected     bool   `json:"connected"`
	TermConnected uint64 `json:"term_connected"`
}

// Info snapshots the node's replication status.
func (n *Node) Info() Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.infoLocked()
}

func (n *Node) infoLocked() Info {
	info := Info{
		Role:        n.role.String(),
		Term:        n.term,
		Seq:         n.store.Seq(),
		Fenced:      n.fenced,
		LeaderURL:   n.leaderURL,
		Peers:       len(n.peers),
		ClusterSize: n.clusterSizeLocked(),
		Majority:    n.majorityLocked(),
	}
	info.LagRecords = n.lagLocked(info.Seq)
	for _, p := range n.peers {
		ps := PeerStatus{
			Addr:          p.addr,
			AckedSeq:      p.acked,
			Connected:     p.live,
			TermConnected: p.termConnected,
		}
		if p.acked < info.Seq {
			ps.Lag = info.Seq - p.acked
		}
		info.PeerDetail = append(info.PeerDetail, ps)
	}
	return info
}

func (n *Node) lagLocked(seq uint64) uint64 {
	if n.role == controller.RoleLeader {
		if len(n.peers) == 0 {
			return 0
		}
		if min := n.minAckedLocked(); min < seq {
			return seq - min
		}
		return 0
	}
	if n.leaderSeq > seq {
		return n.leaderSeq - seq
	}
	return 0
}

// Leader returns the advertised API URL of the current leader ("" when
// this node is the leader or no leader is known).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderURL
}

// Role returns the node's current role (fenced nodes report standby).
func (n *Node) Role() controller.Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Fenced reports whether this node has been deposed.
func (n *Node) Fenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// Term returns the node's current leadership term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Close stops all streams, the listener and the failure detector.
// Pending sync appends fail. The store is not closed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	if n.ln != nil {
		n.ln.Close()
	}
	for _, p := range n.peers {
		if p.live {
			p.conn.Close()
			p.live = false
		}
	}
	for _, c := range n.ingests {
		c.Close()
	}
	n.ingests = nil
	for _, w := range n.waiters {
		w.ch <- fmt.Errorf("replication: node closed")
	}
	n.waiters = nil
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) registerMetrics(r *telemetry.Registry) {
	n.failoverHist = r.Histogram("innet_replication_failover_seconds",
		"Standby promotion latency: time from last leader contact to leadership.",
		telemetry.DefBuckets)
	if r == nil {
		return
	}
	n.reg = r
	for _, p := range n.peers {
		n.registerPeerLag(p)
	}
	r.GaugeFunc("innet_replication_term",
		"Current leadership term (0 = never replicated).",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(n.term)
		})
	r.GaugeFunc("innet_replication_lag_records",
		"Journal records this node is behind (leader: slowest peer; standby: vs leader heartbeat).",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(n.lagLocked(n.store.Seq()))
		})
	r.GaugeFunc("innet_replication_fenced",
		"1 when this node has been deposed and is read-only.",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.fenced {
				return 1
			}
			return 0
		})
	r.CounterFunc("innet_replication_frames_shipped_total",
		"Journal frames shipped to peers.",
		func() float64 { return float64(n.framesShipped.Load()) })
	r.CounterFunc("innet_replication_frames_ingested_total",
		"Journal frames ingested from the leader.",
		func() float64 { return float64(n.framesIngested.Load()) })
	r.CounterFunc("innet_replication_resyncs_total",
		"Full snapshot resyncs (incremental catch-up impossible).",
		func() float64 { return float64(n.resyncs.Load()) })
	r.CounterFunc("innet_replication_fencings_total",
		"Times this node fenced itself (deposed or standby unreachable).",
		func() float64 { return float64(n.fencings.Load()) })
	r.CounterFunc("innet_replication_elections_started_total",
		"Election campaigns this node started as a candidate.",
		func() float64 { return float64(n.electionsStarted.Load()) })
	r.CounterFunc("innet_replication_elections_won_total",
		"Election campaigns this node won (promoted with a majority).",
		func() float64 { return float64(n.electionsWon.Load()) })
	r.CounterFunc("innet_replication_elections_lost_total",
		"Election campaigns this node lost or timed out.",
		func() float64 { return float64(n.electionsLost.Load()) })
	r.CounterFunc("innet_replication_votes_granted_total",
		"Votes this node granted to candidates (excluding self-votes).",
		func() float64 { return float64(n.votesGranted.Load()) })
}

// registerPeerLag exports one peer's acknowledgement lag as
// innet_repl_peer_lag{peer=addr}: this node's journal seq minus the
// peer's acked watermark. AddPeer dedups addresses, so each peer
// registers exactly once.
func (n *Node) registerPeerLag(p *peer) {
	if n.reg == nil {
		return
	}
	n.reg.GaugeFunc("innet_repl_peer_lag",
		"Journal records a replication peer trails this node by.",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if seq := n.store.Seq(); p.acked < seq {
				return float64(seq - p.acked)
			}
			return 0
		}, "peer", p.addr)
}

// marshalState renders a snapshot for the resync message.
func marshalState(st *journal.State) ([]byte, error) {
	return json.Marshal(st)
}
