// Package replication implements a leader/standby controller pair:
// the leader streams write-ahead journal frames (the exact bytes it
// wrote to its own journal file) to standbys over a minimal TCP
// protocol, and each standby ingests them verbatim and folds them
// through the controller's catch-up apply, holding a warm,
// fully-admitted replica. Failover is fenced: leadership terms are
// journal records, a deposed leader's late appends are rejected
// (wedging it read-only) rather than forking history, and clients are
// redirected to the new leader through the API layer's role routing.
//
// Consistency model. Strict (write-ahead) records — admissions and
// kills — replicate synchronously: AppendSync blocks until every
// configured peer has acknowledged the frame, so an operation acked
// to a client exists on the standby that would take over. Best-effort
// records ship asynchronously. A leader that cannot reach its standby
// inside the ack timeout fences itself: it stops accepting writes and
// lets the standby's failure detector promote, trading availability
// on the deposed side for a history that never forks. Records a dying
// leader appended locally but never replicated are discarded when it
// rejoins as a standby (snapshot resync) — exactly the records no
// client ever saw acknowledged.
package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/telemetry"
)

// Proto names the wire protocol version carried in the handshake.
const Proto = "innet-repl/1"

// ErrFenced is returned by appends on a deposed (or self-fenced)
// leader: the node is read-only until an operator restarts it as a
// standby of the new leader.
var ErrFenced = errors.New("replication: node is fenced (deposed leader), read-only")

// Config shapes a replication node.
type Config struct {
	// Role is the boot role: RoleLeader or RoleStandby.
	Role controller.Role
	// ListenAddr accepts replication streams (standbys listen; leaders
	// listen too, so a successor can fence them after a partition
	// heals). Empty = no listener.
	ListenAddr string
	// Peers are the replication addresses this node ships frames to
	// when (and only while) it is the leader.
	Peers []string
	// AdvertiseURL is this node's client-facing API base URL,
	// announced in the handshake so a deposed leader can redirect
	// clients to its successor.
	AdvertiseURL string
	// AckTimeout bounds AppendSync's wait for standby acknowledgement;
	// on expiry the leader fences itself (default 5s).
	AckTimeout time.Duration
	// HeartbeatEvery paces leader heartbeats (default 250ms).
	HeartbeatEvery time.Duration
	// FailoverAfter, when positive, auto-promotes a standby that has
	// not heard from its leader for this long. Zero = manual Promote.
	FailoverAfter time.Duration
	// RedialEvery paces reconnection attempts to a dead peer
	// (default 100ms).
	RedialEvery time.Duration
	// Dial replaces net.Dial for the peer streams — the chaos suite
	// injects partitions and lag here.
	Dial func(addr string) (net.Conn, error)
	// OnApply, when set, observes every record the standby applies —
	// innetd uses it to mirror admissions into its simulated dataplane.
	OnApply func(journal.Record)
	// Registry receives the replication telemetry families (nil = dark).
	Registry *telemetry.Registry
	// Logf receives protocol events (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.RedialEvery <= 0 {
		c.RedialEvery = 100 * time.Millisecond
	}
}

// peer is one standby the leader ships to. All fields are guarded by
// Node.mu; the stream goroutine copies what it needs under the lock.
type peer struct {
	addr    string
	started bool
	// live marks an established stream; ch carries frames to its
	// writer goroutine, conn is closed to force a reconnect.
	live bool
	ch   chan []byte
	conn net.Conn
	// acked is the highest sequence number the standby acknowledged on
	// the current stream.
	acked uint64
	// termConnected is the leadership term in which this peer's stream
	// last went live. A peer that has never connected during the
	// current term is a catch-up candidate, not a voter: sync appends
	// do not wait for it (see minAckedLocked). This is the asymmetry
	// that lets a freshly promoted leader commit while its deposed
	// predecessor — whose peer WAS connected in its term and then
	// vanished — blocks and fences.
	termConnected uint64
}

// waiter is one AppendSync blocked until its seq is acknowledged by
// every peer (or the node fences).
type waiter struct {
	seq uint64
	ch  chan error
}

// Node replicates a journal store between controllers. It implements
// controller.Journal (plus the AppendSync extension), so attaching it
// in place of the bare *journal.Store makes every controller
// transition flow through replication.
type Node struct {
	store *journal.Store
	ctl   *controller.Controller
	cfg   Config

	mu     sync.Mutex
	role   controller.Role
	term   uint64
	fenced bool
	// leaderURL is the last advertised leader API URL (a standby
	// learns it from the handshake; a deposed leader from its
	// successor's fencing handshake).
	leaderURL string
	// leaderSeq / lastContact track the upstream leader for lag and
	// failure detection. everHeard records that at least one leader
	// handshake ever arrived: a standby that has never heard from any
	// leader has nothing to fail over FROM and must not auto-promote
	// over a boot leader it simply hasn't met yet.
	leaderSeq   uint64
	lastContact time.Time
	everHeard   bool
	peers       []*peer
	waiters     []*waiter
	// ingests are live inbound streams (closed on promote so a zombie
	// leader cannot keep feeding a new leader).
	ingests []net.Conn
	closed  bool

	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup

	framesShipped  atomic.Uint64
	framesIngested atomic.Uint64
	resyncs        atomic.Uint64
	fencings       atomic.Uint64
	failoverHist   *telemetry.Histogram
}

// NewNode wires a replication node around a store and its controller.
// A boot leader whose journal has never seen a term appends the
// founding EvTerm record immediately, so term 0 only ever means
// "never replicated".
func NewNode(store *journal.Store, ctl *controller.Controller, cfg Config) (*Node, error) {
	cfg.defaults()
	if cfg.Role != controller.RoleLeader && cfg.Role != controller.RoleStandby {
		return nil, fmt.Errorf("replication: role must be leader or standby, got %s", cfg.Role)
	}
	n := &Node{
		store: store,
		ctl:   ctl,
		cfg:   cfg,
		role:  cfg.Role,
		term:  store.State().Term,
		stop:  make(chan struct{}),
	}
	if cfg.Role == controller.RoleLeader && n.term == 0 {
		n.term = 1
		if err := store.Append(journal.Record{Type: journal.EvTerm, Term: 1}); err != nil {
			return nil, fmt.Errorf("replication: founding term record: %w", err)
		}
	}
	// Peers start as voters for the current term: a boot leader's sync
	// appends wait for them from the first record (strict by default).
	// A later promotion bumps the term past termConnected, turning
	// unreachable peers into non-voting catch-up candidates until they
	// reconnect.
	for _, addr := range cfg.Peers {
		n.peers = append(n.peers, &peer{addr: addr, termConnected: n.term})
	}
	ctl.SetRole(cfg.Role)
	n.registerMetrics(cfg.Registry)
	return n, nil
}

// Start opens the listener, begins shipping (leaders) and arms the
// failure detector (standbys with FailoverAfter set).
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", n.cfg.ListenAddr)
		if err != nil {
			return fmt.Errorf("replication: listen: %w", err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	n.lastContact = time.Now()
	if n.role == controller.RoleLeader {
		n.startPeersLocked()
	}
	if n.cfg.FailoverAfter > 0 {
		n.wg.Add(1)
		go n.failureDetector()
	}
	return nil
}

// Addr returns the replication listener's address ("" if none) —
// tests listen on :0 and read the bound port here.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// AddPeer registers another replica's replication address. On an
// active leader the shipping stream starts immediately; on a standby
// the peer lies dormant until promotion. Harnesses use it when peer
// addresses are only known after both nodes have bound ":0"
// listeners. Sync appends wait on every registered peer, so adding a
// peer that is not actually listening will fence an active leader
// after one ack timeout.
func (n *Node) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || addr == "" {
		return
	}
	for _, p := range n.peers {
		if p.addr == addr {
			return
		}
	}
	n.peers = append(n.peers, &peer{addr: addr, termConnected: n.term})
	if n.role == controller.RoleLeader && !n.fenced {
		n.startPeersLocked()
	}
}

// SetAdvertiseURL updates the client-facing API URL announced in the
// replication handshake. Harnesses that bind test HTTP servers after
// the node is built set it before the first peer stream opens.
func (n *Node) SetAdvertiseURL(u string) {
	n.mu.Lock()
	n.cfg.AdvertiseURL = u
	n.mu.Unlock()
}

// Append journals a best-effort record and ships it asynchronously.
func (n *Node) Append(r journal.Record) error { return n.append(r, false) }

// AppendSync journals a strict record and blocks until every peer has
// acknowledged it (or the ack timeout fences this node). Admissions
// and kills use it through the controller's write-ahead path.
func (n *Node) AppendSync(r journal.Record) error { return n.append(r, true) }

func (n *Node) append(r journal.Record, syncAck bool) error {
	n.mu.Lock()
	if n.fenced {
		n.mu.Unlock()
		return ErrFenced
	}
	if n.role != controller.RoleLeader {
		n.mu.Unlock()
		return controller.ErrNotLeader
	}
	if err := n.store.Append(r); err != nil {
		n.mu.Unlock()
		return err
	}
	r.Seq = n.store.Seq()
	// Re-encoding the record with its assigned Seq reproduces the
	// exact frame bytes the store just wrote (deterministic JSON), so
	// the standby's journal file stays byte-identical to the leader's.
	frame, err := journal.EncodeRecord(r)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	n.shipLocked(frame)
	if !syncAck || !n.hasVotersLocked() {
		// No peer has connected during this term yet: nothing can
		// acknowledge, and nothing that could become leader holds this
		// term — commit locally (the catch-up stream replays it later).
		n.mu.Unlock()
		return nil
	}
	w := &waiter{seq: r.Seq, ch: make(chan error, 1)}
	n.waiters = append(n.waiters, w)
	n.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-time.After(n.cfg.AckTimeout):
	}
	n.mu.Lock()
	select {
	case err := <-w.ch: // resolved while we were timing out
		n.mu.Unlock()
		return err
	default:
	}
	for i, other := range n.waiters {
		if other == w {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			break
		}
	}
	// The standby is unreachable: fence rather than diverge. The
	// record stays in the local journal but was never acknowledged to
	// the client; the snapshot resync on rejoin discards it.
	n.fenceLocked("", fmt.Sprintf("no standby acknowledgement for seq %d within %v", r.Seq, n.cfg.AckTimeout))
	n.mu.Unlock()
	return fmt.Errorf("%w: replication of seq %d timed out", ErrFenced, r.Seq)
}

// shipLocked hands a frame to every live peer stream. A peer whose
// buffer is full has its connection closed instead of blocking the
// append path — the reconnect catches it up from disk.
func (n *Node) shipLocked(frame []byte) {
	for _, p := range n.peers {
		if !p.live {
			continue
		}
		select {
		case p.ch <- frame:
		default:
			n.logf("replication: peer %s stream backlogged, dropping connection", p.addr)
			p.conn.Close()
			p.live = false
		}
	}
}

// hasVotersLocked reports whether any peer has connected during the
// current term. Only such peers hold (or acknowledged) records of
// this term, so only they gate sync appends.
func (n *Node) hasVotersLocked() bool {
	for _, p := range n.peers {
		if p.termConnected == n.term {
			return true
		}
	}
	return false
}

// minAckedLocked is the lowest acknowledged seq across the peers that
// have connected during the current term — the watermark AppendSync
// waiters resolve against. Peers from older terms are catch-up
// candidates, not voters; with no voters at all everything resolves
// (^0).
func (n *Node) minAckedLocked() uint64 {
	min := ^uint64(0)
	for _, p := range n.peers {
		if p.termConnected == n.term && p.acked < min {
			min = p.acked
		}
	}
	return min
}

func (n *Node) maybeResolveLocked() {
	if len(n.waiters) == 0 {
		return
	}
	min := n.minAckedLocked()
	keep := n.waiters[:0]
	for _, w := range n.waiters {
		if w.seq <= min {
			w.ch <- nil
		} else {
			keep = append(keep, w)
		}
	}
	n.waiters = keep
}

// fenceLocked makes the node read-only: a higher term exists (or the
// standby is unreachable and is presumed promoting). Pending sync
// appends fail, peer streams close, and the controller drops to
// standby so the API layer starts redirecting.
func (n *Node) fenceLocked(successorURL, reason string) {
	if successorURL != "" {
		n.leaderURL = successorURL
	}
	if n.fenced {
		return
	}
	n.fenced = true
	n.fencings.Add(1)
	n.role = controller.RoleStandby
	for _, w := range n.waiters {
		w.ch <- ErrFenced
	}
	n.waiters = nil
	for _, p := range n.peers {
		if p.live {
			p.conn.Close()
			p.live = false
		}
	}
	n.logf("replication: fenced: %s", reason)
	// Async: fencing can fire inside AppendSync while the controller's
	// own mutex is held; SetRole takes that mutex.
	go n.ctl.SetRole(controller.RoleStandby)
}

// Promote makes a standby the leader: bump the term, journal the
// EvTerm fencing record, start shipping to peers. The failure
// detector calls this automatically when FailoverAfter is set; tests
// and operators may call it directly.
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.fenced {
		n.mu.Unlock()
		return ErrFenced
	}
	if n.role == controller.RoleLeader {
		n.mu.Unlock()
		return nil
	}
	down := time.Since(n.lastContact)
	if st := n.store.State(); st.Term > n.term {
		n.term = st.Term
	}
	n.term++
	rec := journal.Record{Type: journal.EvTerm, Term: n.term}
	if err := n.store.Append(rec); err != nil {
		n.term--
		n.mu.Unlock()
		return fmt.Errorf("replication: promote: term record: %w", err)
	}
	rec.Seq = n.store.Seq()
	n.role = controller.RoleLeader
	n.leaderURL = ""
	// Cut inbound streams: a not-yet-dead old leader must not keep
	// feeding us frames from the deposed term.
	for _, c := range n.ingests {
		c.Close()
	}
	n.ingests = nil
	n.startPeersLocked()
	if frame, err := journal.EncodeRecord(rec); err == nil {
		n.shipLocked(frame)
	}
	term := n.term
	n.mu.Unlock()
	n.ctl.SetRole(controller.RoleLeader)
	if n.failoverHist != nil {
		n.failoverHist.Observe(down.Seconds())
	}
	n.logf("replication: promoted to leader, term %d (leader silent for %v)", term, down)
	return nil
}

func (n *Node) startPeersLocked() {
	for _, p := range n.peers {
		if p.started {
			continue
		}
		p.started = true
		n.wg.Add(1)
		go n.peerLoop(p)
	}
}

// failureDetector promotes a standby whose leader has gone silent.
func (n *Node) failureDetector() {
	defer n.wg.Done()
	every := n.cfg.FailoverAfter / 4
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		heard := n.everHeard || n.term > 0
		promote := heard && !n.fenced && n.role == controller.RoleStandby &&
			time.Since(n.lastContact) > n.cfg.FailoverAfter
		n.mu.Unlock()
		if promote {
			if err := n.Promote(); err != nil {
				n.logf("replication: auto-promotion failed: %v", err)
			}
		}
	}
}

// Info is the node's replication status, surfaced in /v1/health.
type Info struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
	Seq  uint64 `json:"seq"`
	// Fenced marks a deposed leader (read-only until restarted).
	Fenced bool `json:"fenced,omitempty"`
	// LeaderURL is the advertised API URL of the current leader, when
	// this node is not it.
	LeaderURL string `json:"leader_url,omitempty"`
	// LagRecords is how many records this node is behind: the
	// leader's seq minus its own (standby), or its seq minus the
	// slowest peer's acknowledgement (leader).
	LagRecords uint64 `json:"lag_records"`
	// Peers counts configured replication peers.
	Peers int `json:"peers"`
}

// Info snapshots the node's replication status.
func (n *Node) Info() Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.infoLocked()
}

func (n *Node) infoLocked() Info {
	info := Info{
		Role:      n.role.String(),
		Term:      n.term,
		Seq:       n.store.Seq(),
		Fenced:    n.fenced,
		LeaderURL: n.leaderURL,
		Peers:     len(n.peers),
	}
	info.LagRecords = n.lagLocked(info.Seq)
	return info
}

func (n *Node) lagLocked(seq uint64) uint64 {
	if n.role == controller.RoleLeader {
		if len(n.peers) == 0 {
			return 0
		}
		if min := n.minAckedLocked(); min < seq {
			return seq - min
		}
		return 0
	}
	if n.leaderSeq > seq {
		return n.leaderSeq - seq
	}
	return 0
}

// Leader returns the advertised API URL of the current leader ("" when
// this node is the leader or no leader is known).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderURL
}

// Role returns the node's current role (fenced nodes report standby).
func (n *Node) Role() controller.Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Fenced reports whether this node has been deposed.
func (n *Node) Fenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// Term returns the node's current leadership term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Close stops all streams, the listener and the failure detector.
// Pending sync appends fail. The store is not closed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	if n.ln != nil {
		n.ln.Close()
	}
	for _, p := range n.peers {
		if p.live {
			p.conn.Close()
			p.live = false
		}
	}
	for _, c := range n.ingests {
		c.Close()
	}
	n.ingests = nil
	for _, w := range n.waiters {
		w.ch <- fmt.Errorf("replication: node closed")
	}
	n.waiters = nil
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) registerMetrics(r *telemetry.Registry) {
	n.failoverHist = r.Histogram("innet_replication_failover_seconds",
		"Standby promotion latency: time from last leader contact to leadership.",
		telemetry.DefBuckets)
	if r == nil {
		return
	}
	r.GaugeFunc("innet_replication_term",
		"Current leadership term (0 = never replicated).",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(n.term)
		})
	r.GaugeFunc("innet_replication_lag_records",
		"Journal records this node is behind (leader: slowest peer; standby: vs leader heartbeat).",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(n.lagLocked(n.store.Seq()))
		})
	r.GaugeFunc("innet_replication_fenced",
		"1 when this node has been deposed and is read-only.",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.fenced {
				return 1
			}
			return 0
		})
	r.CounterFunc("innet_replication_frames_shipped_total",
		"Journal frames shipped to peers.",
		func() float64 { return float64(n.framesShipped.Load()) })
	r.CounterFunc("innet_replication_frames_ingested_total",
		"Journal frames ingested from the leader.",
		func() float64 { return float64(n.framesIngested.Load()) })
	r.CounterFunc("innet_replication_resyncs_total",
		"Full snapshot resyncs (incremental catch-up impossible).",
		func() float64 { return float64(n.resyncs.Load()) })
	r.CounterFunc("innet_replication_fencings_total",
		"Times this node fenced itself (deposed or standby unreachable).",
		func() float64 { return float64(n.fencings.Load()) })
}

// marshalState renders a snapshot for the resync message.
func marshalState(st *journal.State) ([]byte, error) {
	return json.Marshal(st)
}
