package topology

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/in-net/innet/internal/packet"
)

// Parse reads an operator network description — the snapshot the
// paper's controller is "provided with at startup" (§4.3) — in a
// line-oriented text format:
//
//	# the access network of Fig. 3
//	name fig3
//	client-net 10.1.0.0/16
//
//	endpoint internet
//	endpoint client
//
//	router r1 {
//	  route 10.1.0.0/16 1
//	  route 198.51.100.0/24 2
//	  route 0.0.0.0/0 0
//	}
//
//	middlebox natfw {
//	  in :: FromNetfront();
//	  f :: IPFilter(allow all);
//	  out :: ToNetfront();
//	  in -> f -> out;
//	}
//
//	platform Platform3 {
//	  pool 198.51.100.0/24
//	  uplink r2 0
//	}
//
//	link internet:0 -> r1:0
//	link r2:0 <-> client:0
//
// "#" starts a comment. "->" links are unidirectional, "<->"
// bidirectional. Router/middlebox/platform bodies end with a line
// containing only "}".
func Parse(src string) (*Topology, error) {
	lines := strings.Split(src, "\n")
	name := "operator"
	clientNet := packet.Prefix{}
	haveClientNet := false

	type pendingLink struct {
		line int
		text string
	}
	type routerDecl struct {
		line   int
		name   string
		routes []Route
	}
	type mbDecl struct {
		line, bodyStart int
		name, body      string
	}
	type platDecl struct {
		line       int
		name       string
		pool       packet.Prefix
		havePool   bool
		uplink     string
		uplinkPort int
	}
	var endpoints []string
	var routers []routerDecl
	var middleboxes []mbDecl
	var platforms []platDecl
	var links []pendingLink

	i := 0
	errAt := func(line int, format string, args ...any) error {
		return fmt.Errorf("topology: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	next := func() (string, int, bool) {
		for i < len(lines) {
			ln := strings.TrimSpace(lines[i])
			i++
			if ln == "" || strings.HasPrefix(ln, "#") {
				continue
			}
			return ln, i, true
		}
		return "", i, false
	}
	// collectBlock gathers raw lines until a line that is exactly "}".
	collectBlock := func(startLine int) (string, error) {
		var body []string
		for i < len(lines) {
			raw := lines[i]
			i++
			if strings.TrimSpace(raw) == "}" {
				return strings.Join(body, "\n"), nil
			}
			body = append(body, raw)
		}
		return "", errAt(startLine, "unterminated block")
	}

	for {
		ln, lineNo, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(ln)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, errAt(lineNo, "name wants one word")
			}
			name = fields[1]
		case "client-net":
			if len(fields) != 2 {
				return nil, errAt(lineNo, "client-net wants a prefix")
			}
			pfx, err := packet.ParsePrefix(fields[1])
			if err != nil {
				return nil, errAt(lineNo, "%v", err)
			}
			clientNet = pfx
			haveClientNet = true
		case "endpoint":
			if len(fields) != 2 {
				return nil, errAt(lineNo, "endpoint wants a name")
			}
			endpoints = append(endpoints, fields[1])
		case "router":
			if len(fields) != 3 || fields[2] != "{" {
				return nil, errAt(lineNo, "want 'router <name> {'")
			}
			body, err := collectBlock(lineNo)
			if err != nil {
				return nil, err
			}
			rd := routerDecl{line: lineNo, name: fields[1]}
			for off, rl := range strings.Split(body, "\n") {
				rl = strings.TrimSpace(rl)
				if rl == "" || strings.HasPrefix(rl, "#") {
					continue
				}
				rf := strings.Fields(rl)
				if len(rf) != 3 || rf[0] != "route" {
					return nil, errAt(lineNo+off+1, "want 'route <prefix> <port>'")
				}
				pfx, err := packet.ParsePrefix(rf[1])
				if err != nil {
					return nil, errAt(lineNo+off+1, "%v", err)
				}
				port, err := strconv.Atoi(rf[2])
				if err != nil || port < 0 {
					return nil, errAt(lineNo+off+1, "bad port %q", rf[2])
				}
				rd.routes = append(rd.routes, Route{Prefix: pfx, Port: port})
			}
			routers = append(routers, rd)
		case "middlebox":
			if len(fields) != 3 || fields[2] != "{" {
				return nil, errAt(lineNo, "want 'middlebox <name> {'")
			}
			body, err := collectBlock(lineNo)
			if err != nil {
				return nil, err
			}
			middleboxes = append(middleboxes, mbDecl{line: lineNo, name: fields[1], body: body})
		case "platform":
			if len(fields) != 3 || fields[2] != "{" {
				return nil, errAt(lineNo, "want 'platform <name> {'")
			}
			body, err := collectBlock(lineNo)
			if err != nil {
				return nil, err
			}
			pd := platDecl{line: lineNo, name: fields[1]}
			for off, pl := range strings.Split(body, "\n") {
				pl = strings.TrimSpace(pl)
				if pl == "" || strings.HasPrefix(pl, "#") {
					continue
				}
				pf := strings.Fields(pl)
				switch pf[0] {
				case "pool":
					if len(pf) != 2 {
						return nil, errAt(lineNo+off+1, "pool wants a prefix")
					}
					pfx, err := packet.ParsePrefix(pf[1])
					if err != nil {
						return nil, errAt(lineNo+off+1, "%v", err)
					}
					pd.pool, pd.havePool = pfx, true
				case "uplink":
					if len(pf) != 3 {
						return nil, errAt(lineNo+off+1, "want 'uplink <node> <port>'")
					}
					port, err := strconv.Atoi(pf[2])
					if err != nil || port < 0 {
						return nil, errAt(lineNo+off+1, "bad port %q", pf[2])
					}
					pd.uplink, pd.uplinkPort = pf[1], port
				default:
					return nil, errAt(lineNo+off+1, "unknown platform key %q", pf[0])
				}
			}
			if !pd.havePool {
				return nil, errAt(lineNo, "platform %q needs a pool", pd.name)
			}
			platforms = append(platforms, pd)
		case "link":
			links = append(links, pendingLink{line: lineNo, text: strings.Join(fields[1:], " ")})
		default:
			return nil, errAt(lineNo, "unknown directive %q", fields[0])
		}
	}
	if !haveClientNet {
		return nil, fmt.Errorf("topology: missing client-net")
	}

	t := New(name, clientNet)
	for _, e := range endpoints {
		if err := t.AddEndpoint(e); err != nil {
			return nil, err
		}
	}
	for _, r := range routers {
		if err := t.AddRouter(r.name, r.routes...); err != nil {
			return nil, fmt.Errorf("topology: line %d: %v", r.line, err)
		}
	}
	for _, m := range middleboxes {
		if err := t.AddMiddlebox(m.name, m.body); err != nil {
			return nil, fmt.Errorf("topology: line %d: %v", m.line, err)
		}
	}
	for _, p := range platforms {
		if err := t.AddPlatform(p.name, p.pool, p.uplink, p.uplinkPort); err != nil {
			return nil, fmt.Errorf("topology: line %d: %v", p.line, err)
		}
	}
	for _, l := range links {
		if err := parseLink(t, l.text); err != nil {
			return nil, fmt.Errorf("topology: line %d: %v", l.line, err)
		}
	}
	// Cross-references that only resolve once everything is declared.
	for _, p := range platforms {
		if p.uplink != "" && t.Node(p.uplink) == nil {
			return nil, errAt(p.line, "platform %q uplink references unknown node %q", p.name, p.uplink)
		}
	}
	return t, nil
}

// parseLink handles "a:0 -> b:1" and "a:0 <-> b:1".
func parseLink(t *Topology, text string) error {
	bidir := strings.Contains(text, "<->")
	sep := "->"
	if bidir {
		sep = "<->"
	}
	parts := strings.SplitN(text, sep, 2)
	if len(parts) != 2 {
		return fmt.Errorf("want '<node>:<port> %s <node>:<port>', got %q", sep, text)
	}
	from, fromPort, err := parseEndpointRef(parts[0])
	if err != nil {
		return err
	}
	to, toPort, err := parseEndpointRef(parts[1])
	if err != nil {
		return err
	}
	if bidir {
		return t.ConnectBoth(from, fromPort, to, toPort)
	}
	return t.Connect(from, fromPort, to, toPort)
}

func parseEndpointRef(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	node, portStr, ok := strings.Cut(s, ":")
	if !ok || node == "" {
		return "", 0, fmt.Errorf("bad link endpoint %q (want node:port)", s)
	}
	port, err := strconv.Atoi(strings.TrimSpace(portStr))
	if err != nil || port < 0 {
		return "", 0, fmt.Errorf("bad port in %q", s)
	}
	return strings.TrimSpace(node), port, nil
}
