package topology

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

// batcherModule is the paper's Fig. 4 configuration.
const batcherModule = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

func TestBuilderValidation(t *testing.T) {
	tp := New("t", packet.MustParsePrefix("10.1.0.0/16"))
	if err := tp.AddEndpoint("a"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("a"); err == nil {
		t.Error("duplicate accepted")
	}
	if err := tp.AddEndpoint(""); err == nil {
		t.Error("empty name accepted")
	}
	if err := tp.AddRouter("r"); err == nil {
		t.Error("router without routes accepted")
	}
	if err := tp.AddMiddlebox("m", "not click at all ::"); err == nil {
		t.Error("bad click accepted")
	}
	if err := tp.AddMiddlebox("m", `d :: Discard();`); err == nil {
		t.Error("middlebox without FromNetfront accepted")
	}
	if err := tp.AddMiddlebox("m", `f :: FromNetfront() -> Discard();`); err == nil {
		t.Error("middlebox without ToNetfront accepted")
	}
	if err := tp.Connect("a", 0, "nope", 0); err == nil {
		t.Error("link to unknown accepted")
	}
	if err := tp.Connect("nope", 0, "a", 0); err == nil {
		t.Error("link from unknown accepted")
	}
}

func TestFig3CompilesAndRoutes(t *testing.T) {
	tp, err := PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.Platforms(); len(got) != 3 {
		t.Fatalf("platforms = %v", got)
	}
	net, nm, err := tp.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nm.EntryNode("internet"); !ok {
		t.Fatal("no internet entry")
	}

	// HTTP response traffic from the internet to a client must
	// traverse the HTTP optimizer (the operator policy of §2.2).
	st := symexec.NewState()
	st.Constrain(symexec.FieldProto, symexec.Single(6))
	st.Constrain(symexec.FieldSrcPort, symexec.Single(80))
	lo, hi := packet.MustParsePrefix(FixtureClientNet).Range()
	st.Constrain(symexec.FieldDstIP, symexec.Span(uint64(lo), uint64(hi)))
	res, err := net.Run(symexec.Injection{Node: "internet", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtNode["HTTPOptimizer/cnt"]) == 0 {
		t.Error("http traffic did not traverse the optimizer")
	}
	if len(res.AtNode["client"]) == 0 {
		t.Error("http traffic did not reach the client")
	}
	if len(res.AtNode["natfw/f"]) != 0 {
		t.Error("http traffic leaked onto the top path")
	}

	// Non-HTTP traffic takes the top path.
	st2 := symexec.NewState()
	st2.Constrain(symexec.FieldProto, symexec.Single(17))
	st2.Constrain(symexec.FieldDstIP, symexec.Span(uint64(lo), uint64(hi)))
	res2, err := net.Run(symexec.Injection{Node: "internet", State: st2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.AtNode["natfw/f"]) == 0 || len(res2.AtNode["client"]) == 0 {
		t.Error("udp traffic did not take the top path to the client")
	}
	if len(res2.AtNode["HTTPOptimizer/cnt"]) != 0 {
		t.Error("udp traffic traversed the optimizer")
	}

	// Traffic to anywhere else egresses at the internet endpoint.
	st3 := symexec.NewState()
	st3.Constrain(symexec.FieldDstIP, symexec.Single(uint64(packet.MustParseIP("8.8.8.8"))))
	res3, err := net.Run(symexec.Injection{Node: "client", State: st3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res3.Egress {
		if e.Node == "internet" {
			found = true
		}
	}
	if !found {
		t.Error("client traffic to 8.8.8.8 did not egress at internet")
	}
}

func TestHostedModuleReachability(t *testing.T) {
	tp, err := PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	mod := click.MustBuildString(batcherModule)
	addr := packet.MustParseIP("198.51.100.10")
	net, nm, err := tp.Compile([]HostedModule{{
		ID: "batcher", Platform: "Platform3", Addr: addr, Router: mod,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Module("batcher") == nil {
		t.Fatal("module not registered")
	}

	// Internet UDP to the module address on port 1500 reaches the
	// module and then, rewritten to the client's address, the client.
	st := symexec.NewState()
	st.Constrain(symexec.FieldProto, symexec.Single(17))
	st.Constrain(symexec.FieldDstIP, symexec.Single(uint64(addr)))
	st.Constrain(symexec.FieldDstPort, symexec.Single(1500))
	res, err := net.Run(symexec.Injection{Node: "internet", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtNode[nm.ModuleElem("batcher", "dst")]) == 0 {
		t.Fatalf("flow never reached the module's ToNetfront; nodes: %v", keys(res.AtNode))
	}
	cl := res.AtNode["client"]
	if len(cl) == 0 {
		t.Fatal("rewritten flow did not reach the client")
	}
	if v, ok := cl[0].Values(symexec.FieldDstIP).IsSingle(); !ok || v != uint64(packet.MustParseIP("10.1.15.133")) {
		t.Errorf("client-side dst = %v", cl[0].Values(symexec.FieldDstIP))
	}
	// Payload must be untouched end to end (the Fig. 4 invariant).
	if cl[0].Binding(symexec.FieldPayload).DefHop != -1 {
		t.Error("payload redefined en-route")
	}

	// TCP to the module address is filtered inside the module.
	st2 := symexec.NewState()
	st2.Constrain(symexec.FieldProto, symexec.Single(6))
	st2.Constrain(symexec.FieldDstIP, symexec.Single(uint64(addr)))
	res2, err := net.Run(symexec.Injection{Node: "internet", State: st2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.AtNode["client"]) != 0 {
		t.Error("tcp to the module leaked through to the client")
	}
}

func TestModulesOnInternalPlatformsUnreachableFromInternet(t *testing.T) {
	tp, err := PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	mod := click.MustBuildString(batcherModule)
	addr := packet.MustParseIP("10.200.1.10") // Platform1 pool
	net, nm, err := tp.Compile([]HostedModule{{
		ID: "batcher", Platform: "Platform1", Addr: addr, Router: mod,
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := symexec.NewState()
	st.Constrain(symexec.FieldDstIP, symexec.Single(uint64(addr)))
	res, err := net.Run(symexec.Injection{Node: "internet", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtNode[nm.ModuleElem("batcher", "dst")]) != 0 {
		t.Error("internet traffic reached a module on an internal platform (Fig. 3 says only Platform 3 applies)")
	}
}

func TestFig1FirewallSemantics(t *testing.T) {
	tp, err := PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := tp.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Outbound UDP from client reaches the internet with payload
	// intact (the §3 example: "the data will not change en-route").
	st := symexec.NewState()
	res, err := net.Run(symexec.Injection{Node: "client", State: st})
	if err != nil {
		t.Fatal(err)
	}
	inet := res.AtNode["internet"]
	if len(inet) == 0 {
		t.Fatal("nothing reached the internet")
	}
	for _, s := range inet {
		if v, ok := s.Values(symexec.FieldProto).IsSingle(); !ok || v != 17 {
			t.Errorf("non-udp flow passed the firewall: %v", s.Values(symexec.FieldProto))
		}
		if s.Binding(symexec.FieldPayload).DefHop != -1 {
			t.Error("payload modified en-route")
		}
	}
	// Unsolicited inbound traffic never reaches the client.
	res2, err := net.Run(symexec.Injection{Node: "internet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.AtNode["client"]) != 0 {
		t.Error("unsolicited inbound reached the client through the stateful firewall")
	}
}

func TestGrownScalesLinearly(t *testing.T) {
	for _, n := range []int{0, 5, 20} {
		tp, err := Grown(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := tp.NumMiddleboxes(); got != n {
			t.Errorf("Grown(%d) has %d middleboxes", n, got)
		}
		net, _, err := tp.Compile(nil)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := packet.MustParsePrefix(FixtureClientNet).Range()
		st := symexec.NewState()
		st.Constrain(symexec.FieldDstIP, symexec.Span(uint64(lo), uint64(hi)))
		res, err := net.Run(symexec.Injection{Node: "internet", State: st})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.AtNode["client"]) == 0 {
			t.Errorf("Grown(%d): client unreachable", n)
		}
		if res.Truncated {
			t.Errorf("Grown(%d): truncated", n)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	tp, err := PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	mod := click.MustBuildString(batcherModule)
	if _, _, err := tp.Compile([]HostedModule{{ID: "x", Platform: "nope", Addr: 1, Router: mod}}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, _, err := tp.Compile([]HostedModule{
		{ID: "x", Platform: "Platform3", Addr: 1, Router: mod},
		{ID: "x", Platform: "Platform3", Addr: 2, Router: click.MustBuildString(batcherModule)},
	}); err == nil {
		t.Error("duplicate module id accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindRouter.String() != "router" || KindPlatform.String() != "platform" ||
		KindEndpoint.String() != "endpoint" || KindMiddlebox.String() != "middlebox" ||
		Kind(99).String() != "unknown" {
		t.Error("Kind strings")
	}
}

func keys(m map[string][]*symexec.State) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkCompileFig3(b *testing.B) {
	tp, err := PaperFig3()
	if err != nil {
		b.Fatal(err)
	}
	mod := click.MustBuildString(batcherModule)
	hm := []HostedModule{{ID: "batcher", Platform: "Platform3", Addr: packet.MustParseIP("198.51.100.10"), Router: mod}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := tp.Compile(hm); err != nil {
			b.Fatal(err)
		}
	}
}
