package topology

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

// fig3Text describes the Fig. 3 network in the text format.
const fig3Text = `
# The paper's Fig. 3 access network.
name fig3-from-text
client-net 10.1.0.0/16

endpoint internet
endpoint client

router r1 {
  route 10.1.0.0/16 1
  route 198.51.100.0/24 2
  route 0.0.0.0/0 0
}
router r2 {
  route 10.1.0.0/16 0
  route 0.0.0.0/0 1
}

middlebox pbr {
  in :: FromNetfront();
  cls :: IPClassifier(tcp src port 80, -);
  http :: ToNetfront(0);
  rest :: ToNetfront(1);
  in -> cls;
  cls[0] -> http;
  cls[1] -> rest;
}
middlebox HTTPOptimizer {
  in :: FromNetfront();
  cnt :: Counter();
  out :: ToNetfront();
  in -> cnt -> out;
}

platform Platform3 {
  pool 198.51.100.0/24
  uplink r2 0
}

link internet:0 -> r1:0
link client:0 -> r1:0
link r1:0 -> internet:0
link r1:1 -> pbr:0
link r1:2 -> Platform3:0
link pbr:0 -> HTTPOptimizer:0
link pbr:1 -> r2:0
link HTTPOptimizer:0 -> r2:0
link Platform3:0 -> r2:0
link r2:0 -> client:0
link r2:1 -> r1:0
`

func TestParseTopologyText(t *testing.T) {
	tp, err := Parse(fig3Text)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name != "fig3-from-text" {
		t.Errorf("name = %s", tp.Name)
	}
	if got := tp.Platforms(); len(got) != 1 || got[0] != "Platform3" {
		t.Errorf("platforms = %v", got)
	}
	if tp.NumMiddleboxes() != 2 {
		t.Errorf("middleboxes = %d", tp.NumMiddleboxes())
	}
	if tp.Node("r1") == nil || tp.Node("r1").Kind != KindRouter {
		t.Error("r1 missing")
	}
	// The parsed network behaves: HTTP from the internet traverses
	// the optimizer to the client.
	net, _, err := tp.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	st := symexec.NewState()
	st.Constrain(symexec.FieldProto, symexec.Single(6))
	st.Constrain(symexec.FieldSrcPort, symexec.Single(80))
	lo, hi := packet.MustParsePrefix("10.1.0.0/16").Range()
	st.Constrain(symexec.FieldDstIP, symexec.Span(uint64(lo), uint64(hi)))
	res, err := net.Run(symexec.Injection{Node: "internet", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtNode["HTTPOptimizer/cnt"]) == 0 || len(res.AtNode["client"]) == 0 {
		t.Error("parsed topology does not route like Fig. 3")
	}
}

func TestParseBidirectionalLink(t *testing.T) {
	tp, err := Parse(`
client-net 10.0.0.0/8
endpoint a
endpoint b
link a:0 <-> b:0
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.links) != 2 {
		t.Errorf("links = %d", len(tp.links))
	}
}

func TestParseErrorsWithLineNumbers(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no client-net", "endpoint a"},
		{"bad client-net", "client-net banana"},
		{"bad directive", "client-net 10.0.0.0/8\nfrobnicate x"},
		{"router no brace", "client-net 10.0.0.0/8\nrouter r"},
		{"router bad route", "client-net 10.0.0.0/8\nrouter r {\n  route bad 0\n}"},
		{"router bad port", "client-net 10.0.0.0/8\nrouter r {\n  route 10.0.0.0/8 x\n}"},
		{"unterminated block", "client-net 10.0.0.0/8\nrouter r {\n  route 10.0.0.0/8 0"},
		{"platform no pool", "client-net 10.0.0.0/8\nplatform p {\n  uplink r 0\n}"},
		{"platform bad key", "client-net 10.0.0.0/8\nplatform p {\n  colour blue\n}"},
		{"bad middlebox click", "client-net 10.0.0.0/8\nmiddlebox m {\n  ::::\n}"},
		{"bad link", "client-net 10.0.0.0/8\nendpoint a\nlink a -> b"},
		{"link unknown node", "client-net 10.0.0.0/8\nendpoint a\nlink a:0 -> b:0"},
		{"bad endpoint decl", "client-net 10.0.0.0/8\nendpoint"},
		{"name extra", "client-net 10.0.0.0/8\nname a b"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), "topology") {
			t.Errorf("%s: error %v lacks context", c.name, err)
		}
	}
}

func TestParsedEqualsFixtureBehavior(t *testing.T) {
	// The text form and the programmatic Fig. 3 fixture must agree on
	// the basic placement property: module pools on Platform3 are the
	// only internet-reachable ones.
	tp, err := Parse(fig3Text)
	if err != nil {
		t.Fatal(err)
	}
	addr := packet.MustParseIP("198.51.100.50")
	mod := HostedModule{ID: "m", Platform: "Platform3", Addr: addr, Router: mustRouter(t)}
	net, nm, err := tp.Compile([]HostedModule{mod})
	if err != nil {
		t.Fatal(err)
	}
	st := symexec.NewState()
	st.Constrain(symexec.FieldDstIP, symexec.Single(uint64(addr)))
	res, err := net.Run(symexec.Injection{Node: "internet", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtNode[nm.ModuleElem("m", "out")]) == 0 {
		t.Error("module unreachable in parsed topology")
	}
}

func mustRouter(t *testing.T) *click.Router {
	t.Helper()
	return click.MustBuildString(`
in :: FromNetfront();
f :: IPFilter(allow all);
out :: ToNetfront();
in -> f -> out;
`)
}
