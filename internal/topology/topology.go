// Package topology models the in-network cloud operator's network:
// routers with longest-prefix-match tables, operator middleboxes
// (Click configurations), processing platforms and the special
// "internet" and "client" endpoints (paper Figs. 1 and 3).
//
// A Topology plus a set of hosted (or candidate) processing modules
// compiles into a symexec.Network — the snapshot the controller runs
// static checks over (§4.3: "routing and switch tables, middlebox
// configurations, tunnels, etc.").
package topology

import (
	"fmt"
	"sort"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/packet"
)

// Well-known endpoint names from the requirements API (§4.2).
const (
	NodeInternet = "internet"
	NodeClient   = "client"
)

// Kind classifies topology nodes.
type Kind int

// Node kinds.
const (
	KindEndpoint Kind = iota
	KindRouter
	KindMiddlebox
	KindPlatform
)

func (k Kind) String() string {
	switch k {
	case KindEndpoint:
		return "endpoint"
	case KindRouter:
		return "router"
	case KindMiddlebox:
		return "middlebox"
	case KindPlatform:
		return "platform"
	default:
		return "unknown"
	}
}

// Route is one LPM routing table entry: traffic to Prefix leaves
// through output Port.
type Route struct {
	Prefix packet.Prefix
	Port   int
}

// Node is a vertex in the operator topology.
type Node struct {
	Name string
	Kind Kind
	// Routes is the routing table (routers only).
	Routes []Route
	// Config is Click source (middleboxes only).
	Config string
	// Pool is the public address pool for hosted modules (platforms
	// only).
	Pool packet.Prefix
	// Uplink is the node that traffic leaving hosted modules is
	// forwarded to (platforms only).
	Uplink     string
	UplinkPort int

	router *click.Router // built middlebox instance
	// digest is the precomputed model content digest (routers only;
	// routes are immutable after AddRouter, and Compile runs on every
	// admission).
	digest string
}

// Link is a unidirectional edge between topology nodes.
type Link struct {
	From     string
	FromPort int
	To       string
	ToPort   int
}

// Topology is the operator's network graph.
type Topology struct {
	Name string
	// ClientNet is the operator's residential client subnet (the
	// "client" endpoint of the requirements language).
	ClientNet packet.Prefix

	nodes map[string]*Node
	order []string
	links []Link
}

// New returns an empty topology with the given residential client
// subnet.
func New(name string, clientNet packet.Prefix) *Topology {
	return &Topology{
		Name:      name,
		ClientNet: clientNet,
		nodes:     make(map[string]*Node),
	}
}

func (t *Topology) add(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("topology: empty node name")
	}
	if _, dup := t.nodes[n.Name]; dup {
		return fmt.Errorf("topology: node %q already exists", n.Name)
	}
	t.nodes[n.Name] = n
	t.order = append(t.order, n.Name)
	return nil
}

// AddEndpoint adds an endpoint node ("internet", "client", a content
// provider's origin, ...).
func (t *Topology) AddEndpoint(name string) error {
	return t.add(&Node{Name: name, Kind: KindEndpoint})
}

// AddRouter adds a router with its routing table.
func (t *Topology) AddRouter(name string, routes ...Route) error {
	if len(routes) == 0 {
		return fmt.Errorf("topology: router %q needs at least one route", name)
	}
	sorted := append([]Route(nil), routes...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Prefix.Bits > sorted[j].Prefix.Bits
	})
	return t.add(&Node{Name: name, Kind: KindRouter, Routes: sorted, digest: lpmDigest(sorted)})
}

// AddMiddlebox adds an operator middlebox defined by Click source.
// The configuration must contain at least one FromNetfront and one
// ToNetfront.
func (t *Topology) AddMiddlebox(name, config string) error {
	cfg, err := clicklang.Parse(config)
	if err != nil {
		return fmt.Errorf("topology: middlebox %q: %v", name, err)
	}
	r, err := click.Build(cfg)
	if err != nil {
		return fmt.Errorf("topology: middlebox %q: %v", name, err)
	}
	if r.NumSources() == 0 {
		return fmt.Errorf("topology: middlebox %q has no FromNetfront", name)
	}
	if len(exitsOf(r)) == 0 {
		return fmt.Errorf("topology: middlebox %q has no ToNetfront", name)
	}
	return t.add(&Node{Name: name, Kind: KindMiddlebox, Config: config, router: r})
}

// AddPlatform adds a processing platform with a module address pool
// and the uplink node that module egress traffic is handed to.
func (t *Topology) AddPlatform(name string, pool packet.Prefix, uplink string, uplinkPort int) error {
	return t.add(&Node{
		Name: name, Kind: KindPlatform, Pool: pool,
		Uplink: uplink, UplinkPort: uplinkPort,
	})
}

// Connect adds a unidirectional link.
func (t *Topology) Connect(from string, fromPort int, to string, toPort int) error {
	if _, ok := t.nodes[from]; !ok {
		return fmt.Errorf("topology: unknown node %q", from)
	}
	if _, ok := t.nodes[to]; !ok {
		return fmt.Errorf("topology: unknown node %q", to)
	}
	t.links = append(t.links, Link{From: from, FromPort: fromPort, To: to, ToPort: toPort})
	return nil
}

// ConnectBoth adds a bidirectional link as two unidirectional ones
// using the same port numbers on both sides.
func (t *Topology) ConnectBoth(a string, aPort int, b string, bPort int) error {
	if err := t.Connect(a, aPort, b, bPort); err != nil {
		return err
	}
	return t.Connect(b, bPort, a, aPort)
}

// Node returns the named node, or nil.
func (t *Topology) Node(name string) *Node { return t.nodes[name] }

// Platforms returns the names of all platform nodes, in insertion
// order.
func (t *Topology) Platforms() []string {
	var out []string
	for _, n := range t.order {
		if t.nodes[n].Kind == KindPlatform {
			out = append(out, n)
		}
	}
	return out
}

// Nodes returns all node names in insertion order.
func (t *Topology) Nodes() []string { return append([]string(nil), t.order...) }

// NumMiddleboxes counts middlebox nodes.
func (t *Topology) NumMiddleboxes() int {
	c := 0
	for _, n := range t.nodes {
		if n.Kind == KindMiddlebox {
			c++
		}
	}
	return c
}

// exitsOf returns the ToNetfront elements of a built click router in
// declaration order.
func exitsOf(r *click.Router) []click.Element {
	var out []click.Element
	for _, el := range r.Elements() {
		if el.Class() == "ToNetfront" {
			out = append(out, el)
		}
	}
	return out
}

// entriesOf returns the FromNetfront elements in declaration order.
func entriesOf(r *click.Router) []click.Element {
	var out []click.Element
	for _, el := range r.Elements() {
		if inj, ok := el.(click.Injector); ok && inj.InjectionPoint() {
			out = append(out, el)
		}
	}
	return out
}
