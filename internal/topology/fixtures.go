package topology

import (
	"fmt"

	"github.com/in-net/innet/internal/packet"
)

// Address plan shared by the paper-figure fixtures.
const (
	// FixtureClientNet is the operator's residential client subnet.
	FixtureClientNet = "10.1.0.0/16"
	// FixturePlatform3Pool is the publicly-routable module pool of
	// Platform 3 (the only platform reachable from the Internet in
	// Fig. 3).
	FixturePlatform3Pool = "198.51.100.0/24"
	// FixturePlatform1Pool and FixturePlatform2Pool are internal-only
	// module pools.
	FixturePlatform1Pool = "10.200.1.0/24"
	FixturePlatform2Pool = "10.200.2.0/24"
)

// PaperFig1 builds the topology of the paper's Fig. 1: end-users
// behind a stateful firewall that allows only outgoing UDP (and
// related inbound traffic), an in-network processing platform, and a
// content-provider server S in the Internet.
//
//	client <-> firewall <-> r1 <-> internet
//	                        r1 <-> platform "p1"
func PaperFig1() (*Topology, error) {
	t := New("fig1", packet.MustParsePrefix(FixtureClientNet))
	var err error
	add := func(e error) {
		if err == nil {
			err = e
		}
	}
	add(t.AddEndpoint(NodeInternet))
	add(t.AddEndpoint(NodeClient))
	// The stateful firewall: interface 0 faces the clients (outbound
	// direction), interface 1 faces the core (inbound direction).
	add(t.AddMiddlebox("firewall", `
out_in :: FromNetfront(0);
in_in :: FromNetfront(1);
fw :: StatefulFirewall(allow udp);
out_out :: ToNetfront(0);
in_out :: ToNetfront(1);
out_in -> [0]fw;
in_in -> [1]fw;
fw[0] -> out_out;
fw[1] -> in_out;
`))
	add(t.AddRouter("r1",
		RouteTo(FixtureClientNet, 0),
		RouteTo(FixturePlatform3Pool, 2),
		RouteTo("0.0.0.0/0", 1),
	))
	add(t.AddPlatform("p1", packet.MustParsePrefix(FixturePlatform3Pool), "r1", 0))
	// Client -> firewall(outbound) -> r1.
	add(t.Connect(NodeClient, 0, "firewall", 0))
	add(t.Connect("firewall", 0, "r1", 0))
	// r1 default -> internet; internet -> r1.
	add(t.Connect("r1", 1, NodeInternet, 0))
	add(t.Connect(NodeInternet, 0, "r1", 1))
	// r1 -> firewall(inbound) -> client.
	add(t.Connect("r1", 0, "firewall", 1))
	add(t.Connect("firewall", 1, NodeClient, 0))
	// r1 <-> platform.
	add(t.Connect("r1", 2, "p1", 0))
	add(t.Connect("p1", 0, "r1", 2)) // pass-through back
	if err != nil {
		return nil, fmt.Errorf("PaperFig1: %v", err)
	}
	return t, nil
}

// PaperFig3 builds the In-Net architecture example of the paper's
// Fig. 3: an access operator with three platforms — Platforms 1 and 2
// on internal paths (behind a NAT&firewall and an HTTP optimizer
// respectively), Platform 3 reachable from the Internet — plus the
// operator middleboxes and a policy router steering HTTP responses
// through the HTTP optimizer.
func PaperFig3() (*Topology, error) {
	t := New("fig3", packet.MustParsePrefix(FixtureClientNet))
	var err error
	add := func(e error) {
		if err == nil {
			err = e
		}
	}
	add(t.AddEndpoint(NodeInternet))
	add(t.AddEndpoint(NodeClient))

	// Border router: client subnet via the access paths, Platform 3's
	// public pool to Platform 3, everything else back out.
	add(t.AddRouter("r1",
		RouteTo(FixtureClientNet, 1),
		RouteTo(FixturePlatform3Pool, 2),
		RouteTo("0.0.0.0/0", 0),
	))
	// Policy router: HTTP response traffic (tcp src port 80) takes the
	// bottom path through the HTTP optimizer, the rest the top path.
	add(t.AddMiddlebox("pbr", `
in :: FromNetfront();
cls :: IPClassifier(tcp src port 80, -);
http :: ToNetfront(0);
rest :: ToNetfront(1);
in -> cls;
cls[0] -> http;
cls[1] -> rest;
`))
	add(t.AddMiddlebox("HTTPOptimizer", `
in :: FromNetfront();
cnt :: Counter();
out :: ToNetfront();
in -> cnt -> out;
`))
	add(t.AddMiddlebox("natfw", `
in :: FromNetfront();
f :: IPFilter(allow all);
out :: ToNetfront();
in -> f -> out;
`))
	// Aggregation router toward the clients.
	add(t.AddRouter("r2",
		RouteTo(FixtureClientNet, 0),
		RouteTo("0.0.0.0/0", 1),
	))

	add(t.AddPlatform("Platform1", packet.MustParsePrefix(FixturePlatform1Pool), "r2", 0))
	add(t.AddPlatform("Platform2", packet.MustParsePrefix(FixturePlatform2Pool), "r2", 0))
	add(t.AddPlatform("Platform3", packet.MustParsePrefix(FixturePlatform3Pool), "r2", 0))

	// Ingress.
	add(t.Connect(NodeInternet, 0, "r1", 0))
	add(t.Connect(NodeClient, 0, "r1", 0))
	// Border routing.
	add(t.Connect("r1", 0, NodeInternet, 0))
	add(t.Connect("r1", 1, "pbr", 0))
	add(t.Connect("r1", 2, "Platform3", 0))
	// Bottom path: HTTP -> optimizer -> Platform2 -> r2.
	add(t.Connect("pbr", 0, "HTTPOptimizer", 0))
	add(t.Connect("HTTPOptimizer", 0, "Platform2", 0))
	add(t.Connect("Platform2", 0, "r2", 0))
	// Top path: rest -> nat&firewall -> Platform1 -> r2.
	add(t.Connect("pbr", 1, "natfw", 0))
	add(t.Connect("natfw", 0, "Platform1", 0))
	add(t.Connect("Platform1", 0, "r2", 0))
	// Platform3 pass-through joins the client-bound path.
	add(t.Connect("Platform3", 0, "r2", 0))
	// Delivery and default route.
	add(t.Connect("r2", 0, NodeClient, 0))
	add(t.Connect("r2", 1, "r1", 0))
	if err != nil {
		return nil, fmt.Errorf("PaperFig3: %v", err)
	}
	return t, nil
}

// Grown returns a copy of the Fig. 3 topology extended with extra
// router+middlebox pairs chained between pbr's top path and natfw —
// the synthetic growth used by the controller-scalability experiment
// (Fig. 10: "we randomly add more routers and platforms").
func Grown(extraMiddleboxes int) (*Topology, error) {
	t := New(fmt.Sprintf("grown-%d", extraMiddleboxes), packet.MustParsePrefix(FixtureClientNet))
	var err error
	add := func(e error) {
		if err == nil {
			err = e
		}
	}
	add(t.AddEndpoint(NodeInternet))
	add(t.AddEndpoint(NodeClient))
	add(t.AddRouter("r1",
		RouteTo(FixtureClientNet, 1),
		RouteTo(FixturePlatform3Pool, 2),
		RouteTo("0.0.0.0/0", 0),
	))
	add(t.AddRouter("r2",
		RouteTo(FixtureClientNet, 0),
		RouteTo("0.0.0.0/0", 1),
	))
	add(t.AddPlatform("Platform3", packet.MustParsePrefix(FixturePlatform3Pool), "r2", 0))
	add(t.Connect(NodeInternet, 0, "r1", 0))
	add(t.Connect(NodeClient, 0, "r1", 0))
	add(t.Connect("r1", 0, NodeInternet, 0))
	add(t.Connect("r1", 2, "Platform3", 0))
	add(t.Connect("Platform3", 0, "r2", 0))
	add(t.Connect("r2", 0, NodeClient, 0))
	add(t.Connect("r2", 1, "r1", 0))

	// Chain of pass-through middleboxes on the client path:
	// r1 -> mb0 -> mb1 -> ... -> r2.
	prev, prevPort := "r1", 1
	for i := 0; i < extraMiddleboxes; i++ {
		name := fmt.Sprintf("mb%d", i)
		add(t.AddMiddlebox(name, `
in :: FromNetfront();
f :: IPFilter(allow all);
out :: ToNetfront();
in -> f -> out;
`))
		add(t.Connect(prev, prevPort, name, 0))
		prev, prevPort = name, 0
	}
	add(t.Connect(prev, prevPort, "r2", 0))
	if err != nil {
		return nil, fmt.Errorf("Grown(%d): %v", extraMiddleboxes, err)
	}
	return t, nil
}
