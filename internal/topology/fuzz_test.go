package topology

import (
	"testing"

	_ "github.com/in-net/innet/internal/elements"
)

// FuzzParse hardens the topology description parser: no panics, and
// every accepted topology must compile into a symbolic network.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"client-net 10.0.0.0/8\nendpoint a",
		"client-net 10.0.0.0/8\nrouter r {\n route 0.0.0.0/0 0\n}",
		"client-net 10.0.0.0/8\nendpoint a\nendpoint b\nlink a:0 <-> b:0",
		"client-net 10.0.0.0/8\nplatform p {\n pool 1.0.0.0/24\n uplink x 0\n}",
		"client-net 10.0.0.0/8\nmiddlebox m {\n in :: FromNetfront();\n out :: ToNetfront();\n in -> out;\n}",
		"name x\nclient-net 0.0.0.0/0",
		"router r {",
		"link a:b -> c:d",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		topo, err := Parse(src)
		if err != nil {
			return
		}
		if _, _, err := topo.Compile(nil); err != nil {
			t.Fatalf("accepted topology does not compile: %v\n%s", err, src)
		}
	})
}
