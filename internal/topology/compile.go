package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

// Model content digests (symexec.Network.SetDigest). Each digest must
// determine the node model's Sym behaviour completely and exclude
// everything Sym cannot observe (node names, tenants, wiring), so
// that structurally identical elements — across modules, tenants, and
// even separate compilations — share per-element memo entries.

// digestOf hashes behaviour-relevant parts, length-prefixed.
func digestOf(kind string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", kind)
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return kind + ":" + hex.EncodeToString(h.Sum(nil))
}

// Endpoints and platform tx nodes are parameterless: one shared
// digest each.
const (
	endpointDigest = "endpoint/1"
	forwardDigest  = "forward/1"
)

func lpmDigest(routes []Route) string {
	parts := make([]string, 0, len(routes))
	for _, r := range routes {
		parts = append(parts, fmt.Sprintf("%s>%d", r.Prefix, r.Port))
	}
	return digestOf("lpm/1", parts...)
}

func demuxDigest(pool packet.Prefix, hosted []*HostedModule, passPort, base int) string {
	parts := []string{fmt.Sprintf("%s|%d|%d", pool, passPort, base)}
	for _, m := range hosted {
		parts = append(parts, fmt.Sprintf("%d", m.Addr))
	}
	return digestOf("demux/1", parts...)
}

// elementDigests caches element digests across compilations: the
// digest is a pure function of (class, raw args), Compile runs on
// every admission, and structurally shared elements (every tenant's
// firewall → nat prefix) repeat endlessly.
var elementDigests sync.Map // "class\x00rawArgs" -> digest string

func elementDigest(d *clicklang.Decl) string {
	ck := d.Class + "\x00" + d.RawArgs
	if v, ok := elementDigests.Load(ck); ok {
		return v.(string)
	}
	dg := digestOf("elem/1", clicklang.FragmentCanonical(d.Class, d.RawArgs))
	elementDigests.Store(ck, dg)
	return dg
}

// HostedModule is a processing module placed (or tentatively placed,
// during checking) on a platform.
type HostedModule struct {
	// ID is the module's client-unique identifier; module element
	// nodes are named "<ID>/<element>".
	ID string
	// Platform is the hosting platform node name.
	Platform string
	// Addr is the public IP address assigned by the controller.
	Addr uint32
	// Router is the built Click configuration.
	Router *click.Router
}

// NetMap translates topology/module references to compiled network
// node names.
type NetMap struct {
	entry map[string]string
	mods  map[string]*HostedModule
}

// EntryNode returns the symexec node where traffic *enters* the given
// topology node.
func (m *NetMap) EntryNode(topoName string) (string, bool) {
	n, ok := m.entry[topoName]
	return n, ok
}

// ModuleElem returns the symexec node of a module element.
func (m *NetMap) ModuleElem(moduleID, elem string) string {
	return moduleID + "/" + elem
}

// Module returns a hosted module by ID.
func (m *NetMap) Module(id string) *HostedModule { return m.mods[id] }

// platformTxNode names the egress-side node of a platform.
func platformTxNode(platform string) string { return platform + "/tx" }

// Compile builds the symbolic network snapshot for this topology plus
// the given hosted modules. This is the "compilation" step whose cost
// Fig. 10 measures separately from checking.
func (t *Topology) Compile(modules []HostedModule) (*symexec.Network, *NetMap, error) {
	net := symexec.NewNetwork()
	nm := &NetMap{entry: make(map[string]string), mods: make(map[string]*HostedModule)}

	byPlatform := make(map[string][]*HostedModule)
	for i := range modules {
		m := &modules[i]
		node := t.nodes[m.Platform]
		if node == nil || node.Kind != KindPlatform {
			return nil, nil, fmt.Errorf("topology: module %q: no platform %q", m.ID, m.Platform)
		}
		if _, dup := nm.mods[m.ID]; dup {
			return nil, nil, fmt.Errorf("topology: duplicate module id %q", m.ID)
		}
		nm.mods[m.ID] = m
		byPlatform[m.Platform] = append(byPlatform[m.Platform], m)
	}

	// Pass 1: create nodes.
	for _, name := range t.order {
		n := t.nodes[name]
		switch n.Kind {
		case KindEndpoint:
			if err := net.AddNode(name, endpointModel); err != nil {
				return nil, nil, err
			}
			_ = net.SetDigest(name, endpointDigest)
			nm.entry[name] = name
		case KindRouter:
			if err := net.AddNode(name, lpmModel(n.Routes)); err != nil {
				return nil, nil, err
			}
			_ = net.SetDigest(name, n.digest)
			nm.entry[name] = name
		case KindMiddlebox:
			entry, err := addClickNodes(net, name, n.router)
			if err != nil {
				return nil, nil, err
			}
			nm.entry[name] = entry
		case KindPlatform:
			hosted := byPlatform[name]
			base := t.maxFromPort(name) + 1
			if err := net.AddNode(name, demuxModel(n.Pool, hosted, t.passPort(name), base)); err != nil {
				return nil, nil, err
			}
			_ = net.SetDigest(name, demuxDigest(n.Pool, hosted, t.passPort(name), base))
			nm.entry[name] = name
			if err := net.AddNode(platformTxNode(name), symexec.Forward); err != nil {
				return nil, nil, err
			}
			_ = net.SetDigest(platformTxNode(name), forwardDigest)
			// Hosted module element graphs.
			for i, m := range hosted {
				entry, err := addClickNodes(net, m.ID, m.Router)
				if err != nil {
					return nil, nil, err
				}
				// Source-only modules receive no traffic: no demux
				// branch to wire.
				if entry != "" {
					if err := net.Connect(name, base+i, entry, 0); err != nil {
						return nil, nil, err
					}
				}
				// Every module exit feeds the platform's tx side.
				for _, exit := range exitNodes(m.ID, m.Router) {
					if err := net.Connect(exit, 0, platformTxNode(name), 0); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}

	// Pass 2: topology links.
	for _, l := range t.links {
		fromNode, fromPort, err := t.resolveOut(l.From, l.FromPort)
		if err != nil {
			return nil, nil, err
		}
		toNode, toPort, err := t.resolveIn(l.To, l.ToPort, nm)
		if err != nil {
			return nil, nil, err
		}
		if err := net.Connect(fromNode, fromPort, toNode, toPort); err != nil {
			return nil, nil, fmt.Errorf("topology: link %s[%d]->[%d]%s: %v",
				l.From, l.FromPort, l.ToPort, l.To, err)
		}
	}

	// Pass 3: platform tx uplinks.
	for _, name := range t.order {
		n := t.nodes[name]
		if n.Kind != KindPlatform {
			continue
		}
		if n.Uplink == "" {
			continue
		}
		toNode, toPort, err := t.resolveIn(n.Uplink, n.UplinkPort, nm)
		if err != nil {
			return nil, nil, fmt.Errorf("topology: platform %q uplink: %v", name, err)
		}
		if err := net.Connect(platformTxNode(name), 0, toNode, toPort); err != nil {
			return nil, nil, fmt.Errorf("topology: platform %q uplink: %v", name, err)
		}
	}
	return net, nm, nil
}

// maxFromPort returns the largest declared outgoing port of a node.
func (t *Topology) maxFromPort(name string) int {
	maxP := -1
	for _, l := range t.links {
		if l.From == name && l.FromPort > maxP {
			maxP = l.FromPort
		}
	}
	return maxP
}

// passPort returns the platform's pass-through port (the lowest
// declared outgoing port), or -1.
func (t *Topology) passPort(name string) int {
	p := -1
	for _, l := range t.links {
		if l.From == name && (p == -1 || l.FromPort < p) {
			p = l.FromPort
		}
	}
	return p
}

// resolveOut maps a topology (node, port) to the compiled node whose
// output carries traffic leaving it.
func (t *Topology) resolveOut(name string, port int) (string, int, error) {
	n := t.nodes[name]
	if n == nil {
		return "", 0, fmt.Errorf("topology: unknown node %q", name)
	}
	if n.Kind == KindMiddlebox {
		exits := exitsOf(n.router)
		if port >= len(exits) {
			return "", 0, fmt.Errorf("topology: middlebox %q has %d exits, port %d", name, len(exits), port)
		}
		return name + "/" + exits[port].Name(), 0, nil
	}
	return name, port, nil
}

// resolveIn maps a topology (node, port) to the compiled node where
// traffic enters it.
func (t *Topology) resolveIn(name string, port int, nm *NetMap) (string, int, error) {
	n := t.nodes[name]
	if n == nil {
		return "", 0, fmt.Errorf("topology: unknown node %q", name)
	}
	if n.Kind == KindMiddlebox {
		entries := entriesOf(n.router)
		if port >= len(entries) {
			return "", 0, fmt.Errorf("topology: middlebox %q has %d entries, port %d", name, len(entries), port)
		}
		return name + "/" + entries[port].Name(), 0, nil
	}
	if n.Kind == KindPlatform {
		return name, 0, nil
	}
	if n.Kind == KindEndpoint {
		// Arriving traffic terminates at endpoints; injected traffic
		// enters on port 0 (see endpointModel).
		return name, endpointArrivalPort, nil
	}
	return name, port, nil
}

// Endpoint port conventions: injections enter on port 0 and continue
// into the network; traffic delivered by the network enters on the
// arrival port and leaves through the (never-wired) terminal port,
// becoming an egress — otherwise delivered flows would loop back out
// through the endpoint's uplink.
const (
	endpointArrivalPort  = 1
	endpointTerminalPort = 99
)

var endpointModel = symexec.FuncModel(func(port int, s *symexec.State) []symexec.Transition {
	if port == endpointArrivalPort {
		return []symexec.Transition{{Port: endpointTerminalPort, S: s}}
	}
	return []symexec.Transition{{Port: 0, S: s}}
})

// CompileStandaloneModule builds a symbolic network containing just
// one module's element graph — the environment the security checker
// (§4.4) injects unconstrained packets into. It returns the network,
// every entry node (FromNetfront ingresses first, then zero-input
// traffic generators such as TimedSource) and the exit (ToNetfront)
// node names.
func CompileStandaloneModule(id string, r *click.Router) (net *symexec.Network, entries []string, exits []string, err error) {
	net = symexec.NewNetwork()
	if _, err = addClickNodes(net, id, r); err != nil {
		return nil, nil, nil, err
	}
	for _, el := range entriesOf(r) {
		entries = append(entries, id+"/"+el.Name())
	}
	for _, el := range r.Elements() {
		if el.InPorts() == 0 {
			entries = append(entries, id+"/"+el.Name())
		}
	}
	if len(entries) == 0 {
		return nil, nil, nil, fmt.Errorf("topology: %s: module has no ingress and no traffic source", id)
	}
	return net, entries, exitNodes(id, r), nil
}

// addClickNodes adds one symexec node per element of a built Click
// router, named "<prefix>/<element>", wiring them per the
// configuration, and returns the entry (first FromNetfront) node.
func addClickNodes(net *symexec.Network, prefix string, r *click.Router) (entry string, err error) {
	for _, el := range r.Elements() {
		m, ok := el.(symexec.Model)
		if !ok {
			return "", fmt.Errorf("topology: element %s :: %s has no symbolic model", el.Name(), el.Class())
		}
		if err := net.AddNode(prefix+"/"+el.Name(), m); err != nil {
			return "", err
		}
		if d := r.Config().Decl(el.Name()); d != nil {
			_ = net.SetDigest(prefix+"/"+el.Name(), elementDigest(d))
		}
		if entry == "" {
			if inj, ok := el.(click.Injector); ok && inj.InjectionPoint() {
				entry = prefix + "/" + el.Name()
			}
		}
	}
	// entry may be empty for source-only modules (e.g. a TimedSource
	// keepalive generator); callers that require ingress check it.
	for _, c := range r.Config().Conns {
		if err := net.Connect(prefix+"/"+c.From, c.FromPort, prefix+"/"+c.To, c.ToPort); err != nil {
			return "", err
		}
	}
	return entry, nil
}

// exitNodes names the compiled ToNetfront nodes of a module.
func exitNodes(prefix string, r *click.Router) []string {
	var out []string
	for _, el := range exitsOf(r) {
		out = append(out, prefix+"/"+el.Name())
	}
	return out
}

// lpmModel builds the symbolic longest-prefix-match model of a
// routing table (routes must be sorted by descending prefix length).
func lpmModel(routes []Route) symexec.Model {
	type compiled struct {
		in, notIn symexec.IntervalSet
		port      int
	}
	cs := make([]compiled, len(routes))
	for i, r := range routes {
		lo, hi := r.Prefix.Range()
		in := symexec.Span(uint64(lo), uint64(hi))
		cs[i] = compiled{in: in, notIn: in.Complement(32), port: r.Port}
	}
	return symexec.FuncModel(func(port int, s *symexec.State) []symexec.Transition {
		var out []symexec.Transition
		pending := []*symexec.State{s}
		for _, c := range cs {
			var next []*symexec.State
			for _, st := range pending {
				m := st.Clone()
				if m.Constrain(symexec.FieldDstIP, c.in) {
					out = append(out, symexec.Transition{Port: c.port, S: m})
				}
				if st.Constrain(symexec.FieldDstIP, c.notIn) {
					next = append(next, st)
				}
			}
			pending = next
			if len(pending) == 0 {
				break
			}
		}
		return out
	})
}

// demuxModel builds the platform's address demultiplexer: traffic to
// a hosted module's address goes to that module's branch port (base,
// base+1, ...); traffic to an *unassigned* pool address is dropped
// (no switch rule exists for it — and symbolically it would otherwise
// loop between the platform and its router); everything else follows
// the pass-through port. Module addresses shadow the pass-through,
// exactly like the OpenFlow rules the controller installs (§4.3).
func demuxModel(pool packet.Prefix, hosted []*HostedModule, passPort, base int) symexec.Model {
	addrs := make([]uint64, len(hosted))
	for i, m := range hosted {
		addrs[i] = uint64(m.Addr)
	}
	plo, phi := pool.Range()
	notPool := symexec.Span(uint64(plo), uint64(phi)).Complement(32)
	return symexec.FuncModel(func(port int, s *symexec.State) []symexec.Transition {
		var out []symexec.Transition
		rest := s
		for i, a := range addrs {
			m := rest.Clone()
			if m.Constrain(symexec.FieldDstIP, symexec.Single(a)) {
				out = append(out, symexec.Transition{Port: base + i, S: m})
			}
			if !rest.Constrain(symexec.FieldDstIP, symexec.Single(a).Complement(32)) {
				return out
			}
		}
		// Unassigned pool addresses die here.
		if passPort >= 0 && rest.Constrain(symexec.FieldDstIP, notPool) {
			out = append(out, symexec.Transition{Port: passPort, S: rest})
		}
		return out
	})
}

// RouteTo is a convenience Route constructor from CIDR text.
func RouteTo(cidr string, port int) Route {
	return Route{Prefix: packet.MustParsePrefix(cidr), Port: port}
}

// SortRoutes orders routes by descending prefix length (LPM order).
func SortRoutes(routes []Route) {
	sort.SliceStable(routes, func(i, j int) bool {
		return routes[i].Prefix.Bits > routes[j].Prefix.Bits
	})
}
