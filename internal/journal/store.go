package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/in-net/innet/internal/telemetry"
)

// SyncPolicy selects journal durability.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: a crash loses
	// nothing the caller was told succeeded.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS: faster, a crash may lose
	// the last few records (replay still recovers a clean prefix).
	SyncNone
)

// ParseSyncPolicy maps flag values to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always or none)", s)
	}
}

// Options shape a store.
type Options struct {
	// Sync is the journal fsync policy (default SyncAlways).
	Sync SyncPolicy
	// CompactEvery triggers a snapshot + journal truncation after
	// this many appended records (0 = 256; negative = never).
	CompactEvery int
}

// File names inside a state directory.
const (
	JournalFile  = "journal.log"
	SnapshotFile = "snapshot.json"
)

// Store is a journal plus its compacted snapshot. It keeps the folded
// State in memory: every Append both writes the frame and applies the
// record, so Snapshot is always self-contained.
type Store struct {
	dir       string
	opts      Options
	f         *os.File
	state     *State
	sinceSnap int
	// goodOff is the file offset just past the last fully written
	// frame. A failed append rolls the file back here so later frames
	// never land after torn bytes (replay truncates at the first torn
	// frame and would silently drop everything behind it).
	goodOff int64
	// wedged is set when that rollback itself failed: the file may end
	// in garbage, so the store refuses further appends rather than
	// write records a restart could never replay. Stored atomically so
	// a health scrape can read it without racing an in-flight append.
	wedged atomic.Pointer[wedgeCause]
	// baseSeq is the sequence number the snapshot covers: records with
	// Seq ≤ baseSeq are no longer in the journal file. RecordsAfter
	// uses it to tell a lagging reader it must resync from a snapshot
	// instead of catching up frame by frame.
	baseSeq uint64
	// testWrite, when set, replaces the journal write — tests use it
	// to inject partial (torn) writes.
	testWrite func(f *os.File, b []byte) (int, error)
	// testCrashAfterSnapshotRename, when set, aborts Compact right
	// after the snapshot rename (and directory fsync) but before the
	// journal truncation — the crash point where a restart sees a
	// snapshot at Seq N next to a journal still holding records ≤ N.
	testCrashAfterSnapshotRename func() error

	// ops counts journal activity. The store itself is single-threaded
	// (the controller serializes appends under its mutex), but a
	// telemetry scrape reads these from another goroutine, so they are
	// atomics rather than plain fields.
	ops struct {
		appends      atomic.Uint64
		appendErrors atomic.Uint64
		fsyncs       atomic.Uint64
		compactions  atomic.Uint64
		rollbacks    atomic.Uint64
	}
	// seq mirrors state.Seq for lock-free scraping.
	seq atomic.Uint64

	// rec, when set, receives flight-recorder events for rollbacks and
	// wedges — the two faults an operator wants a timeline for.
	rec *telemetry.Recorder
}

// SetRecorder attaches a flight recorder; journal rollbacks and wedge
// transitions are recorded as events from then on.
func (s *Store) SetRecorder(r *telemetry.Recorder) { s.rec = r }

func (s *Store) record(typ, detail string) {
	if s.rec != nil {
		s.rec.Record(typ, "journal", detail, s.dir)
	}
}

// Open loads (or initializes) a store in dir. The directory must
// exist. A torn or corrupt journal tail is truncated at the last
// valid record; a corrupt snapshot is an error (it was written
// atomically, so corruption means real damage, not a crash artifact).
func Open(dir string, opts Options) (*Store, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: state dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("journal: state dir %s is not a directory", dir)
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 256
	}
	s := &Store{dir: dir, opts: opts, state: NewState()}

	snapPath := filepath.Join(dir, SnapshotFile)
	if data, rerr := os.ReadFile(snapPath); rerr == nil {
		if err := json.Unmarshal(data, s.state); err != nil {
			return nil, fmt.Errorf("journal: corrupt snapshot %s: %v", snapPath, err)
		}
		if s.state.Deployments == nil {
			s.state.Deployments = make(map[string]*DeploymentRecord)
		}
		if s.state.PlatformDown == nil {
			s.state.PlatformDown = make(map[string]bool)
		}
		// Snapshots written before term-history tracking carry only the
		// current term; seed its entry so TermAt can answer for the
		// live term at least.
		if s.state.Term > 0 && s.state.TermStarts == nil {
			s.state.TermStarts = map[uint64]uint64{s.state.Term: s.state.TermStart}
		}
		s.baseSeq = s.state.Seq
	} else if !os.IsNotExist(rerr) {
		return nil, fmt.Errorf("journal: %w", rerr)
	}

	jpath := filepath.Join(dir, JournalFile)
	recs, valid, err := ReplayFile(jpath, s.state.Seq)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		s.state.Apply(r)
	}
	s.sinceSnap = len(recs)

	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail so new frames append after the last valid
	// record, not after garbage.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	s.goodOff = valid
	s.seq.Store(s.state.Seq)
	return s, nil
}

// wedgeCause wraps the wedging error for atomic storage.
type wedgeCause struct{ err error }

// Wedged reports whether the store has refused service after a failed
// rollback, and why. Nil means the store is healthy. Safe to call from
// any goroutine — the health endpoint polls it.
func (s *Store) Wedged() error {
	if c := s.wedged.Load(); c != nil {
		return c.err
	}
	return nil
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// Seq returns the last applied sequence number. It reads the atomic
// mirror, so concurrent observers (telemetry, replication lag probes,
// tests) never race with an in-flight append.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// State returns a deep copy of the folded state.
func (s *Store) State() *State { return s.state.Clone() }

// Append assigns the next sequence number, writes the frame (fsync
// per policy), folds the record into the state and compacts when the
// journal has grown past CompactEvery records. It implements the
// controller's Journal interface.
func (s *Store) Append(r Record) error {
	if s.f == nil {
		return fmt.Errorf("journal: store is closed")
	}
	if err := s.Wedged(); err != nil {
		return fmt.Errorf("journal: store failed: %w", err)
	}
	r.Seq = s.state.Seq + 1
	frame, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	return s.commitFrame(frame, r)
}

// IngestFrame appends an already-encoded frame verbatim — the
// follower-mode write path. A standby receives frames from the leader
// byte-identical to the leader's journal file, so ingesting them
// unmodified keeps the two files (and their CRCs) byte-identical too.
// The frame must decode to exactly one valid record carrying the next
// expected sequence number; anything else is rejected before touching
// the file.
func (s *Store) IngestFrame(frame []byte) (Record, error) {
	if s.f == nil {
		return Record{}, fmt.Errorf("journal: store is closed")
	}
	if err := s.Wedged(); err != nil {
		return Record{}, fmt.Errorf("journal: store failed: %w", err)
	}
	recs, valid := DecodeAll(frame, 0)
	if valid != int64(len(frame)) || len(recs) != 1 {
		return Record{}, fmt.Errorf("journal: ingest: corrupt or multi-record frame (%d bytes, %d records, %d valid)", len(frame), len(recs), valid)
	}
	r := recs[0]
	if want := s.state.Seq + 1; r.Seq != want {
		return Record{}, fmt.Errorf("journal: ingest: out-of-order frame seq %d (want %d)", r.Seq, want)
	}
	if err := s.commitFrame(frame, r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// commitFrame writes an encoded frame, fsyncs per policy, folds the
// record into the state and compacts when due. Shared by Append
// (leader/single) and IngestFrame (standby).
func (s *Store) commitFrame(frame []byte, r Record) error {
	if _, werr := s.write(frame); werr != nil {
		// A partial write leaves torn bytes at the offset; roll the
		// file back to the last good frame boundary so a later append
		// (or a stale-Seq duplicate of this one) never lands after
		// garbage, where replay would silently drop it.
		s.ops.appendErrors.Add(1)
		s.rollback(werr)
		return werr
	}
	if s.opts.Sync == SyncAlways {
		if serr := s.f.Sync(); serr != nil {
			// The frame may or may not be on disk; either way the file
			// cursor moved past it while state.Seq did not, so the next
			// append would write a duplicate Seq that replay rejects.
			// Roll back to the good boundary before reporting failure.
			s.ops.appendErrors.Add(1)
			s.rollback(serr)
			return serr
		}
		s.ops.fsyncs.Add(1)
	}
	s.goodOff += int64(len(frame))
	s.state.Apply(r)
	s.ops.appends.Add(1)
	s.seq.Store(r.Seq)
	s.sinceSnap++
	if s.opts.CompactEvery > 0 && s.sinceSnap >= s.opts.CompactEvery {
		return s.Compact()
	}
	return nil
}

// ErrCompacted reports that requested records have been folded into
// the snapshot and are no longer individually available; the reader
// must resync from a full snapshot instead.
var ErrCompacted = fmt.Errorf("journal: records compacted into snapshot")

// RecordsAfter returns the journal records with Seq > after, reading
// the journal file through an independent handle (the append cursor is
// untouched). Returns ErrCompacted when the requested range has been
// folded into the snapshot — the caller must ship a snapshot instead.
// The caller must hold the same serialization appends run under.
func (s *Store) RecordsAfter(after uint64) ([]Record, error) {
	if s.f == nil {
		return nil, fmt.Errorf("journal: store is closed")
	}
	if after < s.baseSeq {
		return nil, ErrCompacted
	}
	if after >= s.state.Seq {
		return nil, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, JournalFile))
	if err != nil {
		return nil, err
	}
	recs, _ := DecodeAll(data, after)
	return recs, nil
}

// ResetTo discards the store's state and journal, replacing them with
// the given folded state: the snapshot is rewritten atomically and the
// journal truncated. A standby uses this when the leader's history has
// been compacted past the standby's position (or the standby holds a
// forked suffix from a deposed term) and frame-by-frame catch-up is
// impossible.
func (s *Store) ResetTo(st *State) error {
	if s.f == nil {
		return fmt.Errorf("journal: store is closed")
	}
	if err := s.Wedged(); err != nil {
		return fmt.Errorf("journal: store failed: %w", err)
	}
	s.state = st.Clone()
	if s.state.Deployments == nil {
		s.state.Deployments = make(map[string]*DeploymentRecord)
	}
	if s.state.PlatformDown == nil {
		s.state.PlatformDown = make(map[string]bool)
	}
	s.seq.Store(s.state.Seq)
	return s.Compact()
}

// write appends raw bytes at the journal cursor. testWrite, when set,
// lets tests simulate a torn write (part of the buffer lands on disk,
// then an error).
func (s *Store) write(b []byte) (int, error) {
	if s.testWrite != nil {
		return s.testWrite(s.f, b)
	}
	return s.f.Write(b)
}

// rollback restores the journal file to the last good frame boundary
// after a failed append. If the truncate or seek itself fails the
// store wedges — it refuses further appends, because anything written
// past the leftover garbage would be unrecoverable on replay.
func (s *Store) rollback(cause error) {
	s.ops.rollbacks.Add(1)
	s.record("journal-rollback", cause.Error())
	if err := s.f.Truncate(s.goodOff); err != nil {
		c := &wedgeCause{err: fmt.Errorf("append failed (%v) and truncate to last good offset %d failed (%v)", cause, s.goodOff, err)}
		s.wedged.Store(c)
		s.record("journal-wedged", c.err.Error())
		return
	}
	if _, err := s.f.Seek(s.goodOff, 0); err != nil {
		c := &wedgeCause{err: fmt.Errorf("append failed (%v) and seek to last good offset %d failed (%v)", cause, s.goodOff, err)}
		s.wedged.Store(c)
		s.record("journal-wedged", c.err.Error())
	}
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Compact writes the folded state as a snapshot (atomic: temp file +
// fsync + rename + directory fsync) and truncates the journal. A
// crash between the two leaves a snapshot at Seq N plus journal
// records ≤ N, which replay skips; the directory fsync orders the
// rename before the truncation, so a crash can never pair the
// truncated journal with the pre-rename snapshot.
func (s *Store) Compact() error {
	if s.f == nil {
		return fmt.Errorf("journal: store is closed")
	}
	if err := s.Wedged(); err != nil {
		return fmt.Errorf("journal: store failed: %w", err)
	}
	data, err := json.MarshalIndent(s.state, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, SnapshotFile+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, SnapshotFile)); err != nil {
		os.Remove(tmpName)
		return err
	}
	if s.opts.Sync == SyncAlways {
		// The rename's directory entry must be durable before the
		// journal shrinks: otherwise a crash could surface the old (or
		// no) snapshot next to an already-truncated journal, losing the
		// compacted state.
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	if s.testCrashAfterSnapshotRename != nil {
		if err := s.testCrashAfterSnapshotRename(); err != nil {
			return err
		}
	}
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return err
	}
	if s.opts.Sync == SyncAlways {
		if err := s.f.Sync(); err != nil {
			return err
		}
		s.ops.fsyncs.Add(1)
	}
	s.goodOff = 0
	s.sinceSnap = 0
	s.baseSeq = s.state.Seq
	s.ops.compactions.Add(1)
	return nil
}

// Close releases the journal file handle. The store must not be used
// afterwards (a crashed controller's store is closed, then a fresh
// Open replays the directory).
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
