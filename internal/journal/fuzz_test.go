package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// validJournal builds a well-formed journal: two admits, a kill of
// pm-1 and a migration of pm-2 — the seed corpus the fuzzer mutates.
func validJournal(t interface{ Fatal(...any) }) []byte {
	var out []byte
	recs := []Record{
		{Seq: 1, Type: EvAdmit, Dep: &DeploymentRecord{ID: "pm-1", ModuleName: "a", Platform: "Platform1", Addr: 42, Status: StatusActive, Config: "x"}, NextID: 1},
		{Seq: 2, Type: EvAdmit, Dep: &DeploymentRecord{ID: "pm-2", ModuleName: "b", Platform: "Platform2", Addr: 43, Status: StatusActive, Config: "y"}, NextID: 2},
		{Seq: 3, Type: EvKill, ID: "pm-1"},
		{Seq: 4, Type: EvMigrate, Dep: &DeploymentRecord{ID: "pm-2", ModuleName: "b", Platform: "Platform3", Addr: 99, Status: StatusActive, Config: "y"}, NextID: 3},
	}
	for _, r := range recs {
		frame, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, frame...)
	}
	return out
}

// FuzzJournalReplay feeds arbitrary (truncated, bit-flipped, hostile)
// journal bytes through the full recovery path and asserts that
// recovery never panics, that the recovered state is exactly the fold
// of the records the replay accepted (so a killed deployment can only
// "come back" if its kill record was legitimately truncated away with
// everything after it — never skipped over), and that the store keeps
// accepting appends afterwards.
func FuzzJournalReplay(f *testing.F) {
	base := validJournal(f)
	f.Add(base)
	f.Add(base[:len(base)-3])            // torn final record
	f.Add(append([]byte{}, base[5:]...)) // decapitated
	flipped := append([]byte{}, base...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // absurd length claim

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
		if err != nil {
			t.Fatalf("Open must tolerate corrupt journals, got %v", err)
		}
		defer s.Close()

		// The recovered state must equal an independent fold of the
		// accepted records: replay truncates at corruption, it never
		// resurrects anything the accepted record stream killed.
		recs, _ := DecodeAll(data, 0)
		want := NewState()
		for _, r := range recs {
			want.Apply(r)
		}
		got := s.State()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("replayed state is not the fold of accepted records:\nwant %+v\ngot  %+v", want, got)
		}
		killed := map[string]bool{}
		for _, r := range recs {
			switch r.Type {
			case EvKill:
				killed[r.ID] = true
			case EvAdmit, EvMigrate:
				if r.Dep != nil {
					delete(killed, r.Dep.ID)
				}
			}
		}
		for id := range killed {
			if _, alive := got.Deployments[id]; alive {
				t.Fatalf("killed deployment %s resurrected", id)
			}
		}

		// Recovery must leave a writable journal behind.
		if err := s.Append(Record{Type: EvReject, ID: "probe", Reason: "fuzz"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if s.Seq() != got.Seq+1 {
			t.Fatalf("seq after recovery append = %d, want %d", s.Seq(), got.Seq+1)
		}
	})
}
