// Package journal is the controller's persistence layer: a
// length-prefixed, checksummed write-ahead journal of deployment
// lifecycle events plus periodic compacted snapshots. The paper's
// platform survives VM churn via ClickOS suspend/resume (§5); this
// package gives the controller — the single point of trust that
// admitted every module — the same story, so an `innetd` restart
// neither orphans running modules nor forgets admission decisions,
// and recovery never has to re-run the expensive symbolic-execution
// admission pipeline (§4.3) for modules whose platform still holds
// them.
//
// On-disk layout (one directory):
//
//	journal.log    frames appended per state transition
//	snapshot.json  compacted fold of every frame up to its Seq
//
// Frame format (see docs/FORMATS.md §7):
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32 (IEEE) of the payload
//	[]byte  payload: one JSON-encoded Record
//
// Replay reads frames until the first torn or corrupt one — short
// header, short payload, oversized length, checksum mismatch, invalid
// JSON, or a non-increasing sequence number — and truncates the file
// there: a crash mid-append loses at most the record being written,
// never the prefix.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// EventType tags one journal record.
type EventType string

// Journal record types: one per controller state transition.
const (
	// EvAdmit records a successful Deploy: the full request plus the
	// placement result, enough to rebuild the deployment without
	// re-running symbolic analysis.
	EvAdmit EventType = "admit"
	// EvReject records a refused Deploy (keeps the Rejections counter
	// truthful across restarts).
	EvReject EventType = "reject"
	// EvStatus records a bare lifecycle-status change.
	EvStatus EventType = "status"
	// EvMigrate records a verified failover or recovery re-placement:
	// the deployment (same ID) on its new platform and address.
	EvMigrate EventType = "migrate"
	// EvMigrateFailed records a failover that found no passing
	// alternate platform; the deployment turns failed.
	EvMigrateFailed EventType = "migrate-failed"
	// EvKill records an explicit module kill.
	EvKill EventType = "kill"
	// EvPlatformDown / EvPlatformUp record platform health flips,
	// including the implied active↔degraded status sweeps.
	EvPlatformDown EventType = "platform-down"
	EvPlatformUp   EventType = "platform-up"
	// EvTerm records a leadership term change (replicated controller
	// fencing): the first record a node writes when it becomes leader.
	// Terms are strictly monotonic; a node that observes a higher term
	// than its own is deposed and must refuse further appends.
	EvTerm EventType = "term"
)

// Deployment lifecycle status names as journaled (the controller's
// DeploymentStatus.String values).
const (
	StatusActive   = "active"
	StatusDegraded = "degraded"
	StatusFailed   = "failed"
)

// DeploymentRecord is everything needed to rebuild a deployment on
// restart without re-running the admission pipeline: the placement
// result plus the original request (retained so recovery can re-run
// only the placement step when the hosting platform vanished).
type DeploymentRecord struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant,omitempty"`
	ModuleName string `json:"module"`
	Platform   string `json:"platform"`
	Addr       uint32 `json:"addr"`
	Sandboxed  bool   `json:"sandboxed,omitempty"`
	// Verdict is the security check's verdict name (safe,
	// needs-sandbox); the full report is not persisted.
	Verdict string `json:"verdict,omitempty"`
	// Config is the deployed (possibly sandbox-wrapped,
	// $MODULE_IP-substituted) Click source.
	Config string `json:"config"`
	Status string `json:"status"`

	// The original request, for placement-only recovery.
	ReqConfig       string   `json:"req_config,omitempty"`
	ReqStock        string   `json:"req_stock,omitempty"`
	ReqRequirements string   `json:"req_requirements,omitempty"`
	Trust           int      `json:"trust,omitempty"`
	Whitelist       []string `json:"whitelist,omitempty"`
	Transparent     bool     `json:"transparent,omitempty"`
	ReqTraceEvery   int      `json:"req_trace_every,omitempty"`
}

// Clone returns a deep copy.
func (d *DeploymentRecord) Clone() *DeploymentRecord {
	if d == nil {
		return nil
	}
	c := *d
	c.Whitelist = append([]string(nil), d.Whitelist...)
	return &c
}

// Record is one journal frame's payload.
type Record struct {
	// Seq is assigned by Store.Append: strictly increasing, never
	// reset by compaction.
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	// Dep carries the full deployment for EvAdmit and EvMigrate.
	Dep *DeploymentRecord `json:"dep,omitempty"`
	// ID names the target deployment for EvStatus, EvMigrateFailed
	// and EvKill (and the refused module name for EvReject).
	ID       string `json:"id,omitempty"`
	Status   string `json:"status,omitempty"`
	Platform string `json:"platform,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// NextID is the controller's ID counter at emission time, so a
	// recovered controller never reissues a deployment ID.
	NextID int `json:"next_id,omitempty"`
	// Term carries the new leadership term for EvTerm records.
	Term uint64 `json:"term,omitempty"`
}

// State is the fold of a snapshot plus every journal record after it:
// exactly the controller state the recovery path rebuilds.
type State struct {
	// Seq is the last applied record's sequence number.
	Seq uint64 `json:"seq"`
	// NextID is the controller's deployment ID counter.
	NextID int `json:"next_id"`
	// Deployments maps deployment ID to its latest record.
	Deployments map[string]*DeploymentRecord `json:"deployments"`
	// PlatformDown marks platforms last known unhealthy.
	PlatformDown map[string]bool `json:"platform_down,omitempty"`
	// Term is the last applied leadership term (0 = never replicated).
	Term uint64 `json:"term,omitempty"`
	// TermStart is the sequence number of the record that started the
	// current term — the replication handshake uses it to decide
	// whether a standby may catch up incrementally or must resync.
	TermStart uint64 `json:"term_start,omitempty"`
	// TermStarts maps every applied leadership term to the sequence
	// number of its term record — the full term history, not just the
	// current term. Replication's log-matching check uses it: a
	// follower whose journal head (have, term) lands inside the same
	// term of the leader's history holds a byte-identical prefix and
	// may catch up frame by frame; anything else needs a snapshot
	// resync. Nil on states written before terms were tracked (the
	// handshake then falls back to the current-term-only check).
	TermStarts map[uint64]uint64 `json:"term_starts,omitempty"`
	// Controller decision counters (the accounting identity).
	Placed           int `json:"placed"`
	Rejections       int `json:"rejections"`
	Migrations       int `json:"migrations"`
	FailedMigrations int `json:"failed_migrations"`
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Deployments:  make(map[string]*DeploymentRecord),
		PlatformDown: make(map[string]bool),
	}
}

// Clone returns a deep copy.
func (st *State) Clone() *State {
	c := *st
	c.Deployments = make(map[string]*DeploymentRecord, len(st.Deployments))
	for id, d := range st.Deployments {
		c.Deployments[id] = d.Clone()
	}
	c.PlatformDown = make(map[string]bool, len(st.PlatformDown))
	for p, down := range st.PlatformDown {
		c.PlatformDown[p] = down
	}
	if st.TermStarts != nil {
		c.TermStarts = make(map[uint64]uint64, len(st.TermStarts))
		for t, s := range st.TermStarts {
			c.TermStarts[t] = s
		}
	}
	return &c
}

// TermAt reports which leadership term governed the record at seq in
// this state's history: the highest term whose term record sits at or
// before seq (0 for records before the first term record). ok is
// false when the state predates term-history tracking (no TermStarts)
// and the answer is unknowable.
func (st *State) TermAt(seq uint64) (term uint64, ok bool) {
	if len(st.TermStarts) == 0 {
		return 0, false
	}
	var bestStart uint64
	for t, s := range st.TermStarts {
		if s <= seq && (term == 0 || s > bestStart || (s == bestStart && t > term)) {
			term, bestStart = t, s
		}
	}
	return term, true
}

// IDs returns the deployment IDs in sorted order (recovery iterates
// deterministically).
func (st *State) IDs() []string {
	ids := make([]string, 0, len(st.Deployments))
	for id := range st.Deployments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// idNum extracts N from a "pm-N" deployment ID (0 if malformed).
func idNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "pm-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Apply folds one record into the state. Unknown or dangling records
// (e.g. a status for a killed deployment) are ignored rather than
// rejected: a journal that truncated differently than the writer
// expected must still replay.
func (st *State) Apply(r Record) {
	st.Seq = r.Seq
	if r.NextID > st.NextID {
		st.NextID = r.NextID
	}
	switch r.Type {
	case EvAdmit:
		if r.Dep == nil {
			return
		}
		st.Deployments[r.Dep.ID] = r.Dep.Clone()
		st.Placed++
		if n := idNum(r.Dep.ID); n > st.NextID {
			st.NextID = n
		}
	case EvReject:
		st.Rejections++
	case EvStatus:
		if d, ok := st.Deployments[r.ID]; ok {
			d.Status = r.Status
		}
	case EvMigrate:
		if r.Dep == nil {
			return
		}
		st.Deployments[r.Dep.ID] = r.Dep.Clone()
		st.Migrations++
		if n := idNum(r.Dep.ID); n > st.NextID {
			st.NextID = n
		}
	case EvMigrateFailed:
		if d, ok := st.Deployments[r.ID]; ok {
			d.Status = StatusFailed
		}
		st.FailedMigrations++
	case EvKill:
		delete(st.Deployments, r.ID)
	case EvPlatformDown:
		st.PlatformDown[r.Platform] = true
		for _, d := range st.Deployments {
			if d.Platform == r.Platform && d.Status == StatusActive {
				d.Status = StatusDegraded
			}
		}
	case EvPlatformUp:
		delete(st.PlatformDown, r.Platform)
		for _, d := range st.Deployments {
			if d.Platform == r.Platform && d.Status == StatusDegraded {
				d.Status = StatusActive
			}
		}
	case EvTerm:
		if r.Term > st.Term {
			st.Term = r.Term
			st.TermStart = r.Seq
			if st.TermStarts == nil {
				st.TermStarts = make(map[uint64]uint64)
			}
			st.TermStarts[r.Term] = r.Seq
		}
	}
}

// Canonical renders the state with the replication bookkeeping (Seq,
// Term, TermStart) zeroed and stable key order: two histories that
// admitted the same deployments produce identical bytes even when a
// failover shifted sequence numbers and bumped the term. The chaos
// differential tests compare these digests to prove a crashed or
// partitioned run converged to the uncrashed run's state — no lost,
// duplicated or forked deployments.
func (st *State) Canonical() []byte {
	c := st.Clone()
	c.Seq = 0
	c.Term = 0
	c.TermStart = 0
	c.TermStarts = nil
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		// State is plain maps and scalars; Marshal cannot fail.
		panic("journal: canonical marshal: " + err.Error())
	}
	return data
}

// ---- Frame encoding --------------------------------------------------

const (
	frameHeader = 8 // uint32 length + uint32 crc
	// MaxRecordSize bounds one frame's payload; replay treats a
	// larger claimed length as corruption.
	MaxRecordSize = 16 << 20
)

// appendFrame encodes one record as a frame.
func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// EncodeRecord renders one record as a journal frame (exported for
// tests that craft journals byte by byte).
func EncodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecordSize {
		return nil, fmt.Errorf("journal: record %d exceeds %d bytes", r.Seq, MaxRecordSize)
	}
	return appendFrame(nil, payload), nil
}

// DecodeAll replays journal bytes: it returns every valid record up
// to (not including) the first torn or corrupt frame, plus the byte
// length of that valid prefix. afterSeq skips records already covered
// by a snapshot. DecodeAll never fails: corruption truncates.
func DecodeAll(data []byte, afterSeq uint64) (recs []Record, valid int64) {
	off := 0
	prev := afterSeq
	for {
		if len(data)-off < frameHeader {
			return recs, int64(off) // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > MaxRecordSize || len(data)-off-frameHeader < int(n) {
			return recs, int64(off) // absurd length or torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, int64(off) // bit rot
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, int64(off)
		}
		if len(recs) > 0 || afterSeq > 0 {
			// Sequence numbers must strictly increase; a replayed
			// record at or below the snapshot's Seq is skippable
			// (crash between snapshot write and journal truncate).
			if r.Seq <= prev {
				if r.Seq <= afterSeq && len(recs) == 0 {
					off += frameHeader + int(n)
					continue // pre-snapshot record, still valid prefix
				}
				return recs, int64(off)
			}
		}
		prev = r.Seq
		recs = append(recs, r)
		off += frameHeader + int(n)
	}
}

// ReplayFile reads a journal file tolerantly: valid records plus the
// byte length of the valid prefix. A missing file is an empty journal.
func ReplayFile(path string, afterSeq uint64) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	recs, valid := DecodeAll(data, afterSeq)
	return recs, valid, nil
}

// writeFrame appends one frame to w.
func writeFrame(w io.Writer, r Record) error {
	frame, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}
