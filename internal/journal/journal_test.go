package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func dep(id, platform string, addr uint32, status string) *DeploymentRecord {
	return &DeploymentRecord{
		ID: id, ModuleName: "m-" + id, Platform: platform, Addr: addr,
		Status: status, Config: "in :: FromNetfront();",
	}
}

func mustAppend(t *testing.T, s *Store, r Record) {
	t.Helper()
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-2", "Platform2", 43, StatusActive), NextID: 2})
	mustAppend(t, s, Record{Type: EvKill, ID: "pm-2"})
	mustAppend(t, s, Record{Type: EvReject, ID: "evil", Reason: "security"})
	want := s.State()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.State()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("replayed state differs:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Placed != 2 || got.Rejections != 1 {
		t.Errorf("counters: placed=%d rejections=%d", got.Placed, got.Rejections)
	}
	if _, alive := got.Deployments["pm-2"]; alive {
		t.Error("killed pm-2 resurrected")
	}
	if got.NextID != 2 {
		t.Errorf("NextID = %d, want 2", got.NextID)
	}
	// The store must keep accepting appends after a replay.
	mustAppend(t, s2, Record{Type: EvAdmit, Dep: dep("pm-3", "Platform1", 44, StatusActive), NextID: 3})
	if s2.Seq() != want.Seq+1 {
		t.Errorf("seq after replayed append = %d, want %d", s2.Seq(), want.Seq+1)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-2", "Platform2", 43, StatusActive), NextID: 2})
	want := s.State()
	s.Close()

	// A crash mid-append: half a frame of a kill record.
	jpath := filepath.Join(dir, JournalFile)
	full, err := EncodeRecord(Record{Seq: 3, Type: EvKill, ID: "pm-1"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery from torn tail failed: %v", err)
	}
	defer s2.Close()
	if got := s2.State(); !reflect.DeepEqual(want, got) {
		t.Errorf("torn record not dropped:\nwant %+v\ngot  %+v", want, got)
	}
	// The torn bytes must be physically gone so appends don't land
	// after garbage.
	data, _ := os.ReadFile(jpath)
	if recs, valid := DecodeAll(data, 0); len(recs) != 2 || valid != int64(len(data)) {
		t.Errorf("journal still carries invalid bytes: %d records, %d/%d valid", len(recs), valid, len(data))
	}
}

func TestBitFlipTruncatesAtCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	afterFirst := s.State()
	mustAppend(t, s, Record{Type: EvKill, ID: "pm-1"})
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-2", "Platform2", 43, StatusActive), NextID: 2})
	s.Close()

	jpath := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the second frame's payload: everything from
	// the corruption on is dropped, so the kill and the later admit
	// both vanish — the journal never "skips over" damage.
	first, _ := EncodeRecord(Record{Seq: 1, Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	pos := len(first) + 12
	data[pos] ^= 0x40
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery from bit flip failed: %v", err)
	}
	defer s2.Close()
	if got := s2.State(); !reflect.DeepEqual(afterFirst, got) {
		t.Errorf("state after corruption:\nwant %+v\ngot  %+v", afterFirst, got)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		id := "pm-" + string(rune('0'+i%10))
		mustAppend(t, s, Record{Type: EvAdmit, Dep: dep(id, "Platform1", uint32(40+i), StatusActive), NextID: i})
	}
	want := s.State()
	s.Close()

	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Fatalf("no snapshot written after compaction threshold: %v", err)
	}
	// The journal holds only the records since the last snapshot.
	data, _ := os.ReadFile(filepath.Join(dir, JournalFile))
	if recs, _ := DecodeAll(data, 0); len(recs) >= 10 {
		t.Errorf("journal not compacted: %d records on disk", len(recs))
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.State(); !reflect.DeepEqual(want, got) {
		t.Errorf("snapshot+journal replay differs:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	// Simulate the compaction crash window: snapshot at Seq N on
	// disk, journal still holding records ≤ N. Replay must skip them.
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	mustAppend(t, s, Record{Type: EvKill, ID: "pm-1"})
	want := s.State()
	if err := writeSnapshotOnly(s); err != nil {
		t.Fatal(err)
	}
	s.Close() // journal NOT truncated: records 1..2 remain on disk

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.State()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("double-applied pre-snapshot records:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Placed != 1 {
		t.Errorf("Placed = %d (pre-snapshot admit replayed twice)", got.Placed)
	}
}

// writeSnapshotOnly writes the snapshot without truncating the
// journal, reproducing a crash inside Compact.
func writeSnapshotOnly(s *Store) error {
	data, err := json.Marshal(s.state)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.dir, SnapshotFile), data, 0o644)
}

// TestCompactCrashAfterRenameRecovers drives the REAL Compact path to
// its narrowest crash window — the snapshot rename (and directory
// fsync) succeeded, the journal truncate never ran — and proves a
// restart neither double-applies the snapshotted records nor burns a
// sequence number. TestCrashBetweenSnapshotAndTruncate fakes this
// window by hand; here the hook aborts Compact itself, so the test
// also covers the snapshot bytes Compact actually writes.
func TestCompactCrashAfterRenameRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-2", "Platform2", 43, StatusActive), NextID: 2})
	mustAppend(t, s, Record{Type: EvKill, ID: "pm-1"})
	want := s.State()

	crash := fmt.Errorf("injected crash after snapshot rename")
	s.testCrashAfterSnapshotRename = func() error { return crash }
	if err := s.Compact(); err != crash {
		t.Fatalf("Compact = %v, want injected crash", err)
	}
	s.Close()

	// The crash left both artifacts: a snapshot at Seq 3 AND a journal
	// still holding records 1..3.
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Fatalf("snapshot missing after crash point: %v", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, JournalFile))
	if recs, _ := DecodeAll(data, 0); len(recs) != 3 {
		t.Fatalf("journal holds %d records, want all 3 (truncate must not have run)", len(recs))
	}

	s2, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.State()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("state after crash-point recovery:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Placed != 2 {
		t.Errorf("Placed = %d, want 2 (pre-snapshot admits double-applied)", got.Placed)
	}
	// Appends resume at the exact next sequence number.
	mustAppend(t, s2, Record{Type: EvAdmit, Dep: dep("pm-3", "Platform1", 44, StatusActive), NextID: 3})
	if got := s2.Seq(); got != 4 {
		t.Errorf("next append Seq = %d, want 4", got)
	}
}

func TestPlatformDownUpFolding(t *testing.T) {
	st := NewState()
	st.Apply(Record{Seq: 1, Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	st.Apply(Record{Seq: 2, Type: EvAdmit, Dep: dep("pm-2", "Platform2", 43, StatusActive), NextID: 2})
	st.Apply(Record{Seq: 3, Type: EvPlatformDown, Platform: "Platform1"})
	if st.Deployments["pm-1"].Status != StatusDegraded {
		t.Errorf("pm-1 status = %s, want degraded", st.Deployments["pm-1"].Status)
	}
	if st.Deployments["pm-2"].Status != StatusActive {
		t.Errorf("pm-2 status = %s, want active", st.Deployments["pm-2"].Status)
	}
	if !st.PlatformDown["Platform1"] {
		t.Error("Platform1 not marked down")
	}
	st.Apply(Record{Seq: 4, Type: EvPlatformUp, Platform: "Platform1"})
	if st.Deployments["pm-1"].Status != StatusActive {
		t.Errorf("pm-1 status after recovery = %s", st.Deployments["pm-1"].Status)
	}
	if len(st.PlatformDown) != 0 {
		t.Error("PlatformDown not cleared")
	}
}

func TestAppendRollsBackTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})

	// Inject a torn write: half the frame lands, then the disk fills.
	s.testWrite = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, errors.New("disk full")
	}
	if err := s.Append(Record{Type: EvAdmit, Dep: dep("pm-2", "Platform2", 43, StatusActive), NextID: 2}); err == nil {
		t.Fatal("torn append reported success")
	}
	s.testWrite = nil

	// The store must roll the file back to the last good frame, so
	// this strict write-ahead kill lands at a clean boundary — not
	// after garbage that replay would truncate away along with it.
	mustAppend(t, s, Record{Type: EvKill, ID: "pm-1"})
	want := s.State()
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.State()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("state after torn write differs:\nwant %+v\ngot  %+v", want, got)
	}
	if _, alive := got.Deployments["pm-1"]; alive {
		t.Error("kill appended after a torn write was lost on replay")
	}
}

func TestAppendWedgesWhenRollbackFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Record{Type: EvAdmit, Dep: dep("pm-1", "Platform1", 42, StatusActive), NextID: 1})
	// Swap in a read-only handle: the append's write fails AND the
	// rollback truncate fails, so the store must wedge.
	rw := s.f
	ro, err := os.Open(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	s.f = ro
	if err := s.Append(Record{Type: EvKill, ID: "pm-1"}); err == nil {
		t.Fatal("append on a read-only journal succeeded")
	}
	ro.Close()
	s.f = rw
	// Even with the good handle back, a wedged store refuses appends:
	// the file may end in garbage it cannot account for.
	if err := s.Append(Record{Type: EvKill, ID: "pm-1"}); err == nil {
		t.Fatal("wedged store accepted an append")
	}
	s.Close()
}

func TestOpenRejectsMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Error("Open of a missing directory succeeded")
	}
}

// A reader resuming by sequence number must survive a Compact
// boundary: positions that predate the compaction are gone from disk
// (RecordsAfter says so explicitly), while DecodeAll's afterSeq filter
// resumes cleanly from any position against the post-compaction file —
// the replication catch-up path depends on both behaviors.
func TestDecodeAllAfterSeqAcrossCompactBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 3; i++ {
		mustAppend(t, s, Record{Type: EvAdmit, Dep: dep(fmt.Sprintf("pm-%d", i), "Platform1", uint32(40+i), StatusActive), NextID: i})
	}
	// Compact folds seqs 1..3 into the snapshot and truncates the log.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		mustAppend(t, s, Record{Type: EvAdmit, Dep: dep(fmt.Sprintf("pm-%d", i), "Platform2", uint32(40+i), StatusActive), NextID: i})
	}

	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	seqs := func(recs []Record) []uint64 {
		var out []uint64
		for _, r := range recs {
			out = append(out, r.Seq)
		}
		return out
	}

	// afterSeq pointing before the boundary: everything on disk is
	// newer, so the whole tail comes back.
	recs, valid := DecodeAll(data, 2)
	if valid != int64(len(data)) || !reflect.DeepEqual(seqs(recs), []uint64{4, 5, 6}) {
		t.Errorf("DecodeAll(after=2) = seqs %v, valid %d/%d; want [4 5 6], all valid", seqs(recs), valid, len(data))
	}
	// Mid-file resume within the post-compaction tail.
	recs, _ = DecodeAll(data, 5)
	if !reflect.DeepEqual(seqs(recs), []uint64{6}) {
		t.Errorf("DecodeAll(after=5) = seqs %v, want [6]", seqs(recs))
	}
	// At (and past) the head: nothing.
	if recs, _ = DecodeAll(data, 6); len(recs) != 0 {
		t.Errorf("DecodeAll(after=6) = seqs %v, want none", seqs(recs))
	}

	// RecordsAfter distinguishes "before the boundary" (the records no
	// longer exist as frames — callers must fall back to a snapshot)
	// from "at or after" (an incremental read works).
	if _, err := s.RecordsAfter(2); !errors.Is(err, ErrCompacted) {
		t.Errorf("RecordsAfter(2) err = %v, want ErrCompacted", err)
	}
	got, err := s.RecordsAfter(3)
	if err != nil || !reflect.DeepEqual(seqs(got), []uint64{4, 5, 6}) {
		t.Errorf("RecordsAfter(3) = seqs %v, err %v; want [4 5 6]", seqs(got), err)
	}
	got, err = s.RecordsAfter(5)
	if err != nil || !reflect.DeepEqual(seqs(got), []uint64{6}) {
		t.Errorf("RecordsAfter(5) = seqs %v, err %v; want [6]", seqs(got), err)
	}
	if got, err = s.RecordsAfter(6); err != nil || len(got) != 0 {
		t.Errorf("RecordsAfter(6) = %d recs, err %v; want none", len(got), err)
	}
}
