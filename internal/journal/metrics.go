package journal

import (
	"github.com/in-net/innet/internal/telemetry"
)

// Metrics is a point-in-time snapshot of the store's op counters.
// Safe to call from any goroutine.
type Metrics struct {
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	Fsyncs       uint64 `json:"fsyncs"`
	Compactions  uint64 `json:"compactions"`
	Rollbacks    uint64 `json:"rollbacks"`
	Seq          uint64 `json:"seq"`
}

// Metrics snapshots the journal op counters.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Appends:      s.ops.appends.Load(),
		AppendErrors: s.ops.appendErrors.Load(),
		Fsyncs:       s.ops.fsyncs.Load(),
		Compactions:  s.ops.compactions.Load(),
		Rollbacks:    s.ops.rollbacks.Load(),
		Seq:          s.seq.Load(),
	}
}

// RegisterMetrics folds the journal op counters into a telemetry
// registry under the innet_journal_* families. The callbacks read
// atomics, so scraping never contends with an in-flight append.
func (s *Store) RegisterMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("innet_journal_appends_total",
		"Records durably appended to the write-ahead journal.",
		func() float64 { return float64(s.ops.appends.Load()) })
	r.CounterFunc("innet_journal_append_errors_total",
		"Appends that failed (write or fsync error) and were rolled back.",
		func() float64 { return float64(s.ops.appendErrors.Load()) })
	r.CounterFunc("innet_journal_fsyncs_total",
		"fsync calls issued against the journal file.",
		func() float64 { return float64(s.ops.fsyncs.Load()) })
	r.CounterFunc("innet_journal_compactions_total",
		"Snapshot-and-truncate compactions completed.",
		func() float64 { return float64(s.ops.compactions.Load()) })
	r.CounterFunc("innet_journal_rollbacks_total",
		"File rollbacks to the last good frame after a failed append.",
		func() float64 { return float64(s.ops.rollbacks.Load()) })
	r.GaugeFunc("innet_journal_seq",
		"Last applied journal sequence number.",
		func() float64 { return float64(s.seq.Load()) })
	r.GaugeFunc("innet_journal_wedged",
		"1 when the store has wedged (rollback after a failed append itself failed) and refuses writes.",
		func() float64 {
			if s.Wedged() != nil {
				return 1
			}
			return 0
		})
}
