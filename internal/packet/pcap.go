package packet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// PcapWriter streams packets into the classic libpcap capture format
// (LINKTYPE_RAW: each record is a bare IPv4 packet), so dataplane and
// simulator traffic can be inspected with standard tools. Timestamps
// come from packet.Timestamp (nanoseconds).
type PcapWriter struct {
	w       io.Writer
	snaplen uint32
	buf     []byte
	// Packets counts written records.
	Packets uint64
}

const (
	pcapMagic       = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinktypeRaw = 101
)

// NewPcapWriter writes the global header and returns a writer.
// snaplen 0 means 65535.
func NewPcapWriter(w io.Writer, snaplen int) (*PcapWriter, error) {
	if snaplen <= 0 || snaplen > 65535 {
		snaplen = 65535
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], uint32(snaplen))
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinktypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: pcap header: %w", err)
	}
	return &PcapWriter{w: w, snaplen: uint32(snaplen)}, nil
}

// WritePacket serializes and records one packet.
func (pw *PcapWriter) WritePacket(p *Packet) error {
	pw.buf = p.Serialize(pw.buf[:0])
	return pw.WriteRaw(p.Timestamp, pw.buf)
}

// WriteRaw records pre-serialized IPv4 bytes with the given timestamp
// in nanoseconds.
func (pw *PcapWriter) WriteRaw(tsNanos int64, data []byte) error {
	incl := uint32(len(data))
	if incl > pw.snaplen {
		incl = pw.snaplen
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tsNanos%1e9/1e3))
	binary.LittleEndian.PutUint32(hdr[8:], incl)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("packet: pcap record: %w", err)
	}
	if _, err := pw.w.Write(data[:incl]); err != nil {
		return fmt.Errorf("packet: pcap record: %w", err)
	}
	pw.Packets++
	return nil
}

// PcapReader reads captures produced by PcapWriter (little-endian,
// LINKTYPE_RAW), for tests and tooling.
type PcapReader struct {
	r       io.Reader
	Snaplen uint32
}

// NewPcapReader validates the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("packet: not a (little-endian) pcap file")
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != pcapLinktypeRaw {
		return nil, fmt.Errorf("packet: unsupported linktype %d", lt)
	}
	return &PcapReader{r: r, Snaplen: binary.LittleEndian.Uint32(hdr[16:])}, nil
}

// Next returns the next record, or io.EOF.
func (pr *PcapReader) Next() (tsNanos int64, data []byte, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	usec := binary.LittleEndian.Uint32(hdr[4:])
	incl := binary.LittleEndian.Uint32(hdr[8:])
	if incl > 1<<20 {
		return 0, nil, fmt.Errorf("packet: implausible record length %d", incl)
	}
	data = make([]byte, incl)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return 0, nil, fmt.Errorf("packet: truncated record: %w", err)
	}
	return int64(sec)*1e9 + int64(usec)*1e3, data, nil
}
