package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format constants (IPv4, no options).
const (
	ipHeaderLen   = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 8
)

// Errors returned by Parse.
var (
	ErrTruncated  = errors.New("packet: truncated")
	ErrBadVersion = errors.New("packet: not IPv4")
	ErrBadHeader  = errors.New("packet: malformed header")
)

// Serialize renders the packet as IPv4 wire bytes into buf (reusing
// its capacity) and returns the result. The IP and transport checksums
// are computed. This is the slow path; simulators operate on the
// decoded struct directly.
func (p *Packet) Serialize(buf []byte) []byte {
	total := p.Len()
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]

	// IPv4 header.
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = p.TOS
	binary.BigEndian.PutUint16(buf[2:], uint16(total))
	binary.BigEndian.PutUint16(buf[4:], 0) // ident
	binary.BigEndian.PutUint16(buf[6:], 0) // flags/frag
	buf[8] = p.TTL
	buf[9] = uint8(p.Protocol)
	binary.BigEndian.PutUint16(buf[10:], 0) // checksum, below
	binary.BigEndian.PutUint32(buf[12:], p.SrcIP)
	binary.BigEndian.PutUint32(buf[16:], p.DstIP)
	binary.BigEndian.PutUint16(buf[10:], Checksum(buf[:ipHeaderLen]))

	t := buf[ipHeaderLen:]
	switch p.Protocol {
	case ProtoTCP:
		binary.BigEndian.PutUint16(t[0:], p.SrcPort)
		binary.BigEndian.PutUint16(t[2:], p.DstPort)
		binary.BigEndian.PutUint32(t[4:], p.Seq)
		binary.BigEndian.PutUint32(t[8:], p.Ack)
		t[12] = 5 << 4 // data offset
		t[13] = p.TCPFlags
		binary.BigEndian.PutUint16(t[14:], 65535) // window
		binary.BigEndian.PutUint16(t[16:], 0)     // checksum, below
		binary.BigEndian.PutUint16(t[18:], 0)     // urgent
		copy(t[tcpHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(t[16:], p.l4Checksum(t[:tcpHeaderLen+len(p.Payload)]))
	case ProtoUDP:
		binary.BigEndian.PutUint16(t[0:], p.SrcPort)
		binary.BigEndian.PutUint16(t[2:], p.DstPort)
		binary.BigEndian.PutUint16(t[4:], uint16(udpHeaderLen+len(p.Payload)))
		binary.BigEndian.PutUint16(t[6:], 0)
		copy(t[udpHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(t[6:], p.l4Checksum(t[:udpHeaderLen+len(p.Payload)]))
	case ProtoICMP:
		t[0] = 8 // echo request by default
		t[1] = 0
		binary.BigEndian.PutUint16(t[2:], 0)
		binary.BigEndian.PutUint16(t[4:], p.SrcPort) // ident
		binary.BigEndian.PutUint16(t[6:], p.DstPort) // seq
		copy(t[icmpHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(t[2:], Checksum(t[:icmpHeaderLen+len(p.Payload)]))
	default:
		copy(t, p.Payload)
	}
	p.wire = buf
	return buf
}

// l4Checksum computes the TCP/UDP checksum including the IPv4
// pseudo-header.
func (p *Packet) l4Checksum(seg []byte) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:], p.SrcIP)
	binary.BigEndian.PutUint32(pseudo[4:], p.DstIP)
	pseudo[9] = uint8(p.Protocol)
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)))
	s := sum(pseudo[:], 0)
	s = sum(seg, s)
	return fold(s)
}

// Parse decodes IPv4 wire bytes into p. Payload aliases buf.
func (p *Packet) Parse(buf []byte) error {
	if len(buf) < ipHeaderLen {
		return ErrTruncated
	}
	if buf[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < ipHeaderLen || len(buf) < ihl {
		return ErrBadHeader
	}
	total := int(binary.BigEndian.Uint16(buf[2:]))
	if total < ihl || total > len(buf) {
		return ErrTruncated
	}
	p.TOS = buf[1]
	p.TTL = buf[8]
	p.Protocol = Proto(buf[9])
	p.SrcIP = binary.BigEndian.Uint32(buf[12:])
	p.DstIP = binary.BigEndian.Uint32(buf[16:])
	t := buf[ihl:total]
	switch p.Protocol {
	case ProtoTCP:
		if len(t) < tcpHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(t[0:])
		p.DstPort = binary.BigEndian.Uint16(t[2:])
		p.Seq = binary.BigEndian.Uint32(t[4:])
		p.Ack = binary.BigEndian.Uint32(t[8:])
		off := int(t[12]>>4) * 4
		if off < tcpHeaderLen || off > len(t) {
			return ErrBadHeader
		}
		p.TCPFlags = t[13]
		p.Payload = t[off:]
	case ProtoUDP:
		if len(t) < udpHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(t[0:])
		p.DstPort = binary.BigEndian.Uint16(t[2:])
		ulen := int(binary.BigEndian.Uint16(t[4:]))
		if ulen < udpHeaderLen || ulen > len(t) {
			return ErrBadHeader
		}
		p.Payload = t[udpHeaderLen:ulen]
	case ProtoICMP:
		if len(t) < icmpHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(t[4:])
		p.DstPort = binary.BigEndian.Uint16(t[6:])
		p.Payload = t[icmpHeaderLen:]
	default:
		p.Payload = t
	}
	p.wire = buf[:total]
	return nil
}

// VerifyIPChecksum reports whether the IPv4 header checksum of wire
// bytes is valid.
func VerifyIPChecksum(buf []byte) bool {
	if len(buf) < ipHeaderLen {
		return false
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < ipHeaderLen || len(buf) < ihl {
		return false
	}
	return fold(sum(buf[:ihl], 0)) == 0
}

// Checksum computes the Internet checksum (RFC 1071) of b.
func Checksum(b []byte) uint16 {
	return fold(sum(b, 0))
}

func sum(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func fold(s uint32) uint16 {
	for s>>16 != 0 {
		s = (s & 0xffff) + s>>16
	}
	return ^uint16(s)
}

// Format implements a verbose dump for debugging dataplane traces.
func Format(p *Packet) string {
	return fmt.Sprintf("%v payload=%d paint=%d", p, len(p.Payload), p.Paint)
}
