// Package packet provides the packet model shared by the In-Net
// dataplane, the element framework and the simulators.
//
// A Packet carries both the raw wire bytes and a decoded header cache
// so that elements can read and mutate header fields without repeated
// parsing. Mutating accessors keep the wire bytes in sync lazily: the
// decoded view is authoritative until Serialize is called.
//
// Packets are pooled (see Pool) because the dataplane benchmarks push
// millions of packets per second and per-packet heap allocation would
// dominate the measurement with GC work — the exact concern the
// original system avoided by running inside ClickOS.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Proto is an IP protocol number.
type Proto uint8

// Well-known IP protocol numbers used throughout the system.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
	ProtoSCTP Proto = 132
)

// String returns the conventional lower-case protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoSCTP:
		return "sctp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// TCP header flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// Packet is a single network packet flowing through element graphs and
// simulators. The zero value is an empty packet ready for use.
type Packet struct {
	// SrcIP and DstIP are the IPv4 addresses, host byte order.
	SrcIP, DstIP uint32
	// SrcPort and DstPort are transport ports (0 for ICMP).
	SrcPort, DstPort uint16
	// Protocol is the IP protocol number.
	Protocol Proto
	// TTL is the IP time-to-live.
	TTL uint8
	// TOS is the IP type-of-service byte.
	TOS uint8
	// TCPFlags holds TCP flag bits when Protocol == ProtoTCP.
	TCPFlags uint8
	// Seq and Ack are TCP sequence numbers (used by the stateful
	// firewall and the tunnel simulator).
	Seq, Ack uint32
	// Payload is the transport payload.
	Payload []byte

	// Annotations, in the spirit of Click packet annotations.

	// Paint is the Paint/CheckPaint annotation.
	Paint uint8
	// Timestamp is a simulator timestamp in nanoseconds.
	Timestamp int64
	// FlowTag is scratch for stateful elements that push state into
	// the flow (e.g. the firewall tag of the paper's Fig. 2).
	FlowTag uint32
	// UserID identifies the tenant whose module produced or owns the
	// packet; set by platform demultiplexing.
	UserID uint32

	// wire holds serialized bytes when the packet was built from or
	// rendered to the wire format; nil otherwise.
	wire []byte

	pooled bool
}

// Len returns the total on-wire IPv4 length of the packet in bytes
// (IP header + transport header + payload). It does not include an
// Ethernet header.
func (p *Packet) Len() int {
	return ipHeaderLen + p.transportHeaderLen() + len(p.Payload)
}

func (p *Packet) transportHeaderLen() int {
	switch p.Protocol {
	case ProtoTCP:
		return tcpHeaderLen
	case ProtoUDP:
		return udpHeaderLen
	case ProtoICMP:
		return icmpHeaderLen
	default:
		return 0
	}
}

// Clone returns a deep copy of the packet. The clone is never pooled.
func (p *Packet) Clone() *Packet {
	c := *p
	c.pooled = false
	c.wire = nil
	if p.Payload != nil {
		c.Payload = append([]byte(nil), p.Payload...)
	}
	return &c
}

// Reset zeroes the packet for reuse, retaining payload capacity.
func (p *Packet) Reset() {
	payload := p.Payload[:0]
	wire := p.wire[:0]
	pooled := p.pooled
	*p = Packet{}
	p.Payload = payload
	p.wire = wire
	p.pooled = pooled
}

// FiveTuple identifies a flow.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Protocol         Proto
}

// Tuple returns the packet's five-tuple.
func (p *Packet) Tuple() FiveTuple {
	return FiveTuple{p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Protocol}
}

// Reverse returns the five-tuple of reply traffic.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{t.DstIP, t.SrcIP, t.DstPort, t.SrcPort, t.Protocol}
}

func (t FiveTuple) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d",
		t.Protocol, IPString(t.SrcIP), t.SrcPort, IPString(t.DstIP), t.DstPort)
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s ttl=%d len=%d", p.Tuple(), p.TTL, p.Len())
}

// IPString formats a host-order IPv4 address in dotted-quad form.
func IPString(ip uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], ip)
	return netip.AddrFrom4(b).String()
}

// ParseIP parses a dotted-quad IPv4 address into host byte order.
func ParseIP(s string) (uint32, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("packet: bad IPv4 address %q: %v", s, err)
	}
	if !a.Is4() {
		return 0, fmt.Errorf("packet: %q is not IPv4", s)
	}
	b := a.As4()
	return binary.BigEndian.Uint32(b[:]), nil
}

// MustParseIP is ParseIP that panics on error; for tests and tables of
// literals.
func MustParseIP(s string) uint32 {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is an IPv4 CIDR prefix in host byte order.
type Prefix struct {
	Addr uint32
	Bits int
}

// ParsePrefix parses "a.b.c.d/len" (or a bare address, meaning /32).
func ParsePrefix(s string) (Prefix, error) {
	if pfx, err := netip.ParsePrefix(s); err == nil {
		if !pfx.Addr().Is4() {
			return Prefix{}, fmt.Errorf("packet: %q is not an IPv4 prefix", s)
		}
		b := pfx.Addr().As4()
		return Prefix{Addr: binary.BigEndian.Uint32(b[:]), Bits: pfx.Bits()}, nil
	}
	ip, err := ParseIP(s)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Addr: ip, Bits: 32}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask of the prefix.
func (p Prefix) Mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	if p.Bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether ip is inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	m := p.Mask()
	return ip&m == p.Addr&m
}

// Range returns the inclusive [lo, hi] address range of the prefix.
func (p Prefix) Range() (lo, hi uint32) {
	m := p.Mask()
	lo = p.Addr & m
	hi = lo | ^m
	return lo, hi
}

func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", IPString(p.Addr), p.Bits)
}

// CopyFrom overwrites p with src's headers and payload, reusing p's
// payload buffer and keeping p's pool membership — the batched
// dataplane's allocation-free template stamp.
func (p *Packet) CopyFrom(src *Packet) {
	payload := append(p.Payload[:0], src.Payload...)
	wire := p.wire[:0]
	pooled := p.pooled
	*p = *src
	p.Payload = payload
	p.wire = wire
	p.pooled = pooled
}
