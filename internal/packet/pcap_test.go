package packet

import (
	"bytes"
	"io"
	"testing"
)

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*Packet{
		{Protocol: ProtoUDP, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, TTL: 64,
			Payload: []byte("one"), Timestamp: 1_500_000_000},
		{Protocol: ProtoTCP, SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8, TTL: 32,
			Payload: []byte("two"), Timestamp: 2_000_001_000},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 2 {
		t.Errorf("packets = %d", w.Packets)
	}

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		ts, data, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// Microsecond resolution on the wire.
		if ts/1e3 != want.Timestamp/1e3 {
			t.Errorf("record %d ts = %d want %d", i, ts, want.Timestamp)
		}
		var got Packet
		if err := got.Parse(data); err != nil {
			t.Fatalf("record %d parse: %v", i, err)
		}
		if got.Protocol != want.Protocol || got.SrcIP != want.SrcIP ||
			string(got.Payload) != string(want.Payload) {
			t.Errorf("record %d = %v want %v", i, &got, want)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestPcapSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, 30)
	if err != nil {
		t.Fatal(err)
	}
	p := &Packet{Protocol: ProtoUDP, TTL: 4, Payload: make([]byte, 500)}
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snaplen != 30 {
		t.Errorf("snaplen = %d", r.Snaplen)
	}
	_, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 30 {
		t.Errorf("record length = %d want 30", len(data))
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader([]byte("not a pcap file at all!!"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewPcapReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
}

func TestPcapWriterErrorPropagation(t *testing.T) {
	if _, err := NewPcapWriter(failingWriter{}, 0); err == nil {
		t.Error("header write error swallowed")
	}
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf, 0)
	w.w = failingWriter{}
	if err := w.WritePacket(&Packet{Protocol: ProtoUDP}); err == nil {
		t.Error("record write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
