package packet

import (
	"sync"
	"sync/atomic"
)

// Pool is a free list of packets. The dataplane benchmarks push
// millions of packets per second; allocating each packet on the heap
// would make the garbage collector the bottleneck (the repro
// environment has no unikernel dataplane, so this is the Go
// equivalent of ClickOS's packet pools). Pool is not safe for
// concurrent use: each dataplane core owns one.
type Pool struct {
	free []*Packet
	// Stats.
	allocs, gets, puts uint64
}

// NewPool returns a pool pre-populated with n packets whose payload
// buffers have the given capacity.
func NewPool(n, payloadCap int) *Pool {
	p := &Pool{free: make([]*Packet, 0, n)}
	for i := 0; i < n; i++ {
		pk := &Packet{Payload: make([]byte, 0, payloadCap), pooled: true}
		p.free = append(p.free, pk)
	}
	return p
}

// Get returns a reset packet, allocating if the pool is empty.
func (p *Pool) Get() *Packet {
	p.gets++
	if n := len(p.free); n > 0 {
		pk := p.free[n-1]
		p.free = p.free[:n-1]
		pk.Reset()
		return pk
	}
	p.allocs++
	return &Packet{pooled: true}
}

// Put returns a packet to the pool. Packets not obtained from a pool
// (e.g. Clone results) are dropped for the GC.
func (p *Pool) Put(pk *Packet) {
	if pk == nil || !pk.pooled {
		return
	}
	p.puts++
	p.free = append(p.free, pk)
}

// Stats reports pool activity: total Gets, Puts and packets allocated
// because the free list was empty.
func (p *Pool) Stats() (gets, puts, allocs uint64) {
	return p.gets, p.puts, p.allocs
}

// SyncPool is the concurrency-safe counterpart of Pool, backed by
// sync.Pool: the batched dataplane hands buffers between producer and
// consumer goroutines, so a single-owner free list no longer fits.
// Packets recycle through the garbage collector's per-P caches; the
// hot path (Get of a recently Put packet on the same core) is
// allocation-free.
type SyncPool struct {
	pool       sync.Pool
	payloadCap int
	// Stats (atomic: Get/Put race by design).
	gets, puts, allocs atomic.Uint64
}

// NewSyncPool returns a concurrent pool whose fresh packets carry
// payload buffers of the given capacity.
func NewSyncPool(payloadCap int) *SyncPool {
	p := &SyncPool{payloadCap: payloadCap}
	p.pool.New = func() any {
		p.allocs.Add(1)
		return &Packet{Payload: make([]byte, 0, payloadCap), pooled: true}
	}
	return p
}

// Get returns a reset packet, allocating if the pool is empty.
func (p *SyncPool) Get() *Packet {
	p.gets.Add(1)
	pk := p.pool.Get().(*Packet)
	pk.Reset()
	return pk
}

// Put recycles a packet. Non-pooled packets (Clone results) are left
// for the GC, as with Pool.Put.
func (p *SyncPool) Put(pk *Packet) {
	if pk == nil || !pk.pooled {
		return
	}
	p.puts.Add(1)
	p.pool.Put(pk)
}

// Stats reports pool activity: total Gets, Puts and packets allocated
// because no recycled packet was available.
func (p *SyncPool) Stats() (gets, puts, allocs uint64) {
	return p.gets.Load(), p.puts.Load(), p.allocs.Load()
}
