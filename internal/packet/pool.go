package packet

// Pool is a free list of packets. The dataplane benchmarks push
// millions of packets per second; allocating each packet on the heap
// would make the garbage collector the bottleneck (the repro
// environment has no unikernel dataplane, so this is the Go
// equivalent of ClickOS's packet pools). Pool is not safe for
// concurrent use: each dataplane core owns one.
type Pool struct {
	free []*Packet
	// Stats.
	allocs, gets, puts uint64
}

// NewPool returns a pool pre-populated with n packets whose payload
// buffers have the given capacity.
func NewPool(n, payloadCap int) *Pool {
	p := &Pool{free: make([]*Packet, 0, n)}
	for i := 0; i < n; i++ {
		pk := &Packet{Payload: make([]byte, 0, payloadCap), pooled: true}
		p.free = append(p.free, pk)
	}
	return p
}

// Get returns a reset packet, allocating if the pool is empty.
func (p *Pool) Get() *Packet {
	p.gets++
	if n := len(p.free); n > 0 {
		pk := p.free[n-1]
		p.free = p.free[:n-1]
		pk.Reset()
		return pk
	}
	p.allocs++
	return &Packet{pooled: true}
}

// Put returns a packet to the pool. Packets not obtained from a pool
// (e.g. Clone results) are dropped for the GC.
func (p *Pool) Put(pk *Packet) {
	if pk == nil || !pk.pooled {
		return
	}
	p.puts++
	p.free = append(p.free, pk)
}

// Stats reports pool activity: total Gets, Puts and packets allocated
// because the free list was empty.
func (p *Pool) Stats() (gets, puts, allocs uint64) {
	return p.gets, p.puts, p.allocs
}
