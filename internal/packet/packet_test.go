package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "172.16.15.133", "255.255.255.255", "192.168.1.254"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if got := IPString(ip); got != s {
			t.Errorf("IPString(ParseIP(%q)) = %q", s, got)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "::1", "hello", "300.1.1.1"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestPrefix(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseIP("10.1.255.3")) {
		t.Error("10.1.255.3 should be inside 10.1.0.0/16")
	}
	if p.Contains(MustParseIP("10.2.0.0")) {
		t.Error("10.2.0.0 should be outside 10.1.0.0/16")
	}
	lo, hi := p.Range()
	if lo != MustParseIP("10.1.0.0") || hi != MustParseIP("10.1.255.255") {
		t.Errorf("Range = %s..%s", IPString(lo), IPString(hi))
	}
	if got := p.String(); got != "10.1.0.0/16" {
		t.Errorf("String = %q", got)
	}
}

func TestPrefixEdges(t *testing.T) {
	all := Prefix{Addr: 0, Bits: 0}
	if !all.Contains(0) || !all.Contains(^uint32(0)) {
		t.Error("/0 must contain everything")
	}
	host := MustParsePrefix("1.2.3.4/32")
	if !host.Contains(MustParseIP("1.2.3.4")) || host.Contains(MustParseIP("1.2.3.5")) {
		t.Error("/32 must contain exactly its address")
	}
	if _, err := ParsePrefix("8.8.8.8"); err != nil {
		t.Errorf("bare address should parse as /32: %v", err)
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	protos := []Proto{ProtoTCP, ProtoUDP, ProtoICMP}
	for _, proto := range protos {
		orig := &Packet{
			SrcIP:    MustParseIP("192.0.2.1"),
			DstIP:    MustParseIP("198.51.100.7"),
			SrcPort:  4321,
			DstPort:  80,
			Protocol: proto,
			TTL:      64,
			TOS:      0x10,
			Payload:  []byte("hello, in-net"),
		}
		if proto == ProtoTCP {
			orig.Seq, orig.Ack, orig.TCPFlags = 1000, 2000, TCPSyn|TCPAck
		}
		wire := orig.Serialize(nil)
		if !VerifyIPChecksum(wire) {
			t.Fatalf("%v: bad IP checksum", proto)
		}
		var got Packet
		if err := got.Parse(wire); err != nil {
			t.Fatalf("%v: Parse: %v", proto, err)
		}
		if got.SrcIP != orig.SrcIP || got.DstIP != orig.DstIP ||
			got.SrcPort != orig.SrcPort || got.DstPort != orig.DstPort ||
			got.Protocol != orig.Protocol || got.TTL != orig.TTL || got.TOS != orig.TOS {
			t.Errorf("%v: header mismatch: got %+v want %+v", proto, got, orig)
		}
		if string(got.Payload) != string(orig.Payload) {
			t.Errorf("%v: payload %q want %q", proto, got.Payload, orig.Payload)
		}
		if proto == ProtoTCP && (got.Seq != 1000 || got.Ack != 2000 || got.TCPFlags != TCPSyn|TCPAck) {
			t.Errorf("tcp fields: %+v", got)
		}
	}
}

func TestSerializeParseQuick(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, ttl uint8, payload []byte) bool {
		orig := &Packet{
			SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp,
			Protocol: ProtoUDP, TTL: ttl, Payload: payload,
		}
		if len(payload) > 60000 {
			return true
		}
		var got Packet
		if err := got.Parse(orig.Serialize(nil)); err != nil {
			return false
		}
		if got.SrcIP != src || got.DstIP != dst || got.SrcPort != sp || got.DstPort != dp || got.TTL != ttl {
			return false
		}
		return string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	var p Packet
	if err := p.Parse(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if err := p.Parse(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, 40)
	buf[0] = 0x65 // IPv6
	if err := p.Parse(buf); err != ErrBadVersion {
		t.Errorf("v6: %v", err)
	}
	buf[0] = 0x43 // IHL 3 < 5
	if err := p.Parse(buf); err != ErrBadHeader {
		t.Errorf("bad ihl: %v", err)
	}
	// Total length exceeds buffer.
	q := &Packet{Protocol: ProtoUDP, TTL: 1}
	wire := q.Serialize(nil)
	wire[3] = 0xff
	if err := p.Parse(wire); err != ErrTruncated {
		t.Errorf("overlong total: %v", err)
	}
}

func TestParseTruncatedTransport(t *testing.T) {
	// Valid IP header claiming TCP but with no transport bytes.
	q := &Packet{Protocol: ProtoTCP, TTL: 64, Payload: nil}
	wire := append([]byte(nil), q.Serialize(nil)...)
	wire = wire[:ipHeaderLen+4]
	wire[2], wire[3] = 0, ipHeaderLen+4
	var p Packet
	if err := p.Parse(wire); err != ErrTruncated {
		t.Errorf("truncated tcp: %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#04x want 0x220d", got)
	}
	// Odd length handled.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#04x", got)
	}
}

func TestTupleReverse(t *testing.T) {
	p := &Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: ProtoTCP}
	r := p.Tuple().Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 4 || r.DstPort != 3 {
		t.Errorf("Reverse = %+v", r)
	}
	if r.Reverse() != p.Tuple() {
		t.Error("Reverse is not an involution")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{Payload: []byte("abc"), SrcIP: 7}
	c := p.Clone()
	c.Payload[0] = 'x'
	c.SrcIP = 9
	if p.Payload[0] != 'a' || p.SrcIP != 7 {
		t.Error("Clone shares state with original")
	}
}

func TestPoolReuse(t *testing.T) {
	pool := NewPool(2, 64)
	a := pool.Get()
	a.SrcIP = 42
	a.Payload = append(a.Payload, 1, 2, 3)
	pool.Put(a)
	b := pool.Get()
	if b != a {
		t.Fatal("pool did not reuse packet")
	}
	if b.SrcIP != 0 || len(b.Payload) != 0 {
		t.Error("pooled packet not reset")
	}
	gets, puts, allocs := pool.Stats()
	if gets != 2 || puts != 1 || allocs != 0 {
		t.Errorf("stats = %d %d %d", gets, puts, allocs)
	}
}

func TestPoolGrowsWhenEmpty(t *testing.T) {
	pool := NewPool(0, 0)
	p := pool.Get()
	if p == nil {
		t.Fatal("nil packet")
	}
	_, _, allocs := pool.Stats()
	if allocs != 1 {
		t.Errorf("allocs = %d want 1", allocs)
	}
	// Putting a non-pooled packet must be a no-op.
	pool.Put(&Packet{})
	pool.Put(nil)
}

func TestLen(t *testing.T) {
	cases := []struct {
		proto Proto
		pay   int
		want  int
	}{
		{ProtoUDP, 0, 28},
		{ProtoUDP, 100, 128},
		{ProtoTCP, 0, 40},
		{ProtoICMP, 8, 36},
		{ProtoSCTP, 10, 30},
	}
	for _, c := range cases {
		p := &Packet{Protocol: c.proto, Payload: make([]byte, c.pay)}
		if got := p.Len(); got != c.want {
			t.Errorf("Len(%v, %d) = %d want %d", c.proto, c.pay, got, c.want)
		}
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" ||
		ProtoICMP.String() != "icmp" || ProtoSCTP.String() != "sctp" {
		t.Error("proto names")
	}
	if Proto(99).String() != "proto-99" {
		t.Error("unknown proto name")
	}
}

func BenchmarkSerialize(b *testing.B) {
	p := &Packet{Protocol: ProtoUDP, TTL: 64, Payload: make([]byte, 1024)}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Serialize(buf[:0])
	}
}

func BenchmarkParse(b *testing.B) {
	p := &Packet{Protocol: ProtoTCP, TTL: 64, Payload: make([]byte, 1024)}
	wire := p.Serialize(nil)
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPool(b *testing.B) {
	pool := NewPool(64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		pool.Put(p)
	}
}

func TestParseRandomNeverPanics(t *testing.T) {
	// Hammer Parse with random bytes to check it never panics and
	// never claims a payload outside the buffer.
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 256)
	var p Packet
	for i := 0; i < 5000; i++ {
		n := rng.Intn(len(buf))
		rng.Read(buf[:n])
		if err := p.Parse(buf[:n]); err == nil && len(p.Payload) > n {
			t.Fatalf("payload longer than input: %d > %d", len(p.Payload), n)
		}
	}
}
