package tunnel

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
)

func TestNoLossBothNearLineRate(t *testing.T) {
	p := DefaultParams()
	udp := SCTPOverUDP(p)
	tcp := SCTPOverTCP(p)
	if udp < 85 || udp > 101 {
		t.Errorf("udp @0%% = %.1f Mb/s", udp)
	}
	if tcp < 85 || tcp > 101 {
		t.Errorf("tcp @0%% = %.1f Mb/s", tcp)
	}
}

func TestLossDegradesThroughput(t *testing.T) {
	p := DefaultParams()
	var prevUDP, prevTCP float64 = 1e9, 1e9
	for _, loss := range []float64{0.5, 1, 2, 5} {
		p.Loss = loss / 100
		udp := avg(func(seed int64) float64 { q := p; q.Seed = seed; return SCTPOverUDP(q) })
		tcp := avg(func(seed int64) float64 { q := p; q.Seed = seed; return SCTPOverTCP(q) })
		if udp >= prevUDP*1.05 {
			t.Errorf("udp not decreasing at %.1f%%: %.1f >= %.1f", loss, udp, prevUDP)
		}
		if tcp >= prevTCP*1.05 {
			t.Errorf("tcp not decreasing at %.1f%%: %.1f >= %.1f", loss, tcp, prevTCP)
		}
		prevUDP, prevTCP = udp, tcp
	}
}

func TestTCPTunnelTwoToFiveTimesWorse(t *testing.T) {
	// The paper's claim: "when loss rate varies from 1% to 5%,
	// running SCTP over a TCP tunnel gives two to five times less
	// throughput compared to running SCTP over a UDP tunnel."
	p := DefaultParams()
	for _, loss := range []float64{1, 2, 3, 4, 5} {
		p.Loss = loss / 100
		udp := avg(func(seed int64) float64 { q := p; q.Seed = seed; return SCTPOverUDP(q) })
		tcp := avg(func(seed int64) float64 { q := p; q.Seed = seed; return SCTPOverTCP(q) })
		ratio := udp / tcp
		if ratio < 1.8 || ratio > 6.5 {
			t.Errorf("loss %.0f%%: udp %.2f tcp %.2f ratio %.2f, want roughly 2-5x", loss, udp, tcp, ratio)
		}
	}
}

func avg(f func(seed int64) float64) float64 {
	const n = 8
	var s float64
	for i := int64(0); i < n; i++ {
		s += f(100 + i*7919)
	}
	return s / n
}

func TestDeterministicForSeed(t *testing.T) {
	p := DefaultParams()
	p.Loss = 0.02
	if SCTPOverUDP(p) != SCTPOverUDP(p) {
		t.Error("udp nondeterministic")
	}
	if SCTPOverTCP(p) != SCTPOverTCP(p) {
		t.Error("tcp nondeterministic")
	}
}

func TestSweepShape(t *testing.T) {
	rows := Sweep(DefaultParams(), []float64{0, 1, 5}, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != 0 || rows[2][0] != 5 {
		t.Error("loss column")
	}
	// At zero loss both are close; at 5% UDP clearly wins.
	if rows[0][1] < rows[0][2]*0.8 {
		t.Error("zero-loss rows should be comparable")
	}
	if rows[2][1] < rows[2][2]*1.5 {
		t.Errorf("5%% loss: udp %.1f tcp %.1f", rows[2][1], rows[2][2])
	}
}

func TestShorterRTTHigherThroughputUnderLoss(t *testing.T) {
	p := DefaultParams()
	p.Loss = 0.01
	short := p
	short.RTT = netsim.Millis(10)
	if SCTPOverUDP(short) <= SCTPOverUDP(p)*0.9 {
		t.Error("shorter RTT should not reduce AIMD throughput")
	}
}
