// Package tunnel simulates running SCTP over UDP and over TCP
// tunnels across a lossy wide-area link (paper Fig. 14: 100 Mb/s,
// 20 ms RTT, 0-5 % random loss). Over UDP the SCTP congestion loop
// sees the raw loss and behaves like a single AIMD flow. Over TCP the
// tunnel hides losses but adds head-of-line-blocking stalls and its
// own window halvings; the stacked control loops interact badly —
// stalls trigger spurious SCTP timeouts that collapse the upper
// window — which is why the paper measures 2-5x less throughput at
// 1-5 % loss.
package tunnel

import (
	"math/rand"

	"github.com/in-net/innet/internal/netsim"
)

// Params configures one emulated transfer.
type Params struct {
	// LinkBps is the bottleneck rate (paper: 100 Mb/s).
	LinkBps float64
	// RTT is the round-trip time (paper: 20 ms).
	RTT netsim.Time
	// Loss is the random loss probability per packet.
	Loss float64
	// Duration is the emulated transfer length.
	Duration netsim.Time
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultParams returns the paper's link setup.
func DefaultParams() Params {
	return Params{
		LinkBps:  100e6,
		RTT:      netsim.Millis(20),
		Loss:     0,
		Duration: netsim.Seconds(60),
		Seed:     1,
	}
}

const mss = 1460 // bytes per segment

// bdpSegments returns the link's bandwidth-delay product in segments.
func (p Params) bdpSegments() float64 {
	return p.LinkBps * float64(p.RTT) / 1e9 / 8 / mss
}

// SCTPOverUDP returns the achieved goodput in Mb/s when the SCTP
// association runs over a UDP tunnel: its AIMD loop sees the link's
// raw random loss.
func SCTPOverUDP(p Params) float64 {
	rng := rand.New(rand.NewSource(p.Seed))
	rounds := int(p.Duration / p.RTT)
	bdp := p.bdpSegments()
	maxW := bdp * 2 // window may fill one BDP of router buffer
	cwnd := 10.0
	ssthresh := maxW
	var delivered float64
	for r := 0; r < rounds; r++ {
		w := int(cwnd)
		if w < 1 {
			w = 1
		}
		lost := false
		good := 0.0
		for i := 0; i < w; i++ {
			if p.Loss > 0 && rng.Float64() < p.Loss {
				lost = true
			} else {
				good++
			}
		}
		// The wire drains at most one BDP per RTT; a window beyond
		// that sits in the router queue.
		delivered += min(good, bdp)
		if lost {
			// Fast retransmit: halve once per round.
			ssthresh = cwnd / 2
			if ssthresh < 2 {
				ssthresh = 2
			}
			cwnd = ssthresh
		} else if cwnd < ssthresh {
			cwnd *= 2 // slow start
			if cwnd > ssthresh {
				cwnd = ssthresh
			}
		} else {
			cwnd++ // congestion avoidance
		}
		if cwnd > maxW {
			cwnd = maxW
		}
	}
	seconds := float64(p.Duration) / 1e9
	return delivered * mss * 8 / seconds / 1e6
}

// SCTPOverTCP returns the achieved goodput in Mb/s when the SCTP
// association runs inside a TCP tunnel. The TCP loop absorbs the raw
// loss (halving its window and stalling delivery for in-order
// recovery); the SCTP loop above sees a loss-free but stall-prone
// pipe and resets its window on long stalls (spurious timeouts).
func SCTPOverTCP(p Params) float64 {
	rng := rand.New(rand.NewSource(p.Seed))
	bdp := p.bdpSegments()
	maxW := bdp * 2

	// Lower (tunnel) TCP state.
	tcpW := 10.0
	tcpSS := maxW
	// Upper SCTP state.
	sctpW := 10.0
	sctpSS := maxW

	// SCTP's retransmission timeout: stalls at least this long look
	// like loss to the upper loop (implementations floor the RTO near
	// 200 ms), triggering a spurious timeout.
	sctpRTO := netsim.Millis(200)
	tcpRTOStall := netsim.Millis(250) // tunnel timeout recovery stall
	frStall := 2 * p.RTT              // fast-retransmit HoL stall

	var delivered float64
	now := netsim.Time(0)
	for now < p.Duration {
		// One RTT round: the pipe carries min of the two windows —
		// SCTP cannot push more than its window, the tunnel cannot
		// drain more than its own — capped by the wire.
		w := int(min(tcpW, sctpW))
		if w < 1 {
			w = 1
		}
		lost := false
		for i := 0; i < w; i++ {
			if p.Loss > 0 && rng.Float64() < p.Loss {
				lost = true
			}
		}
		// The tunnel retransmits internally: all segments eventually
		// arrive, but a loss round stalls in-order delivery.
		delivered += min(float64(w), bdp)
		now += p.RTT
		if !lost {
			tcpW = grow(tcpW, tcpSS, maxW)
			sctpW = grow(sctpW, sctpSS, maxW)
			continue
		}
		// Tunnel reacts.
		tcpSS = tcpW / 2
		if tcpSS < 2 {
			tcpSS = 2
		}
		tcpW = tcpSS
		// Head-of-line stall: fast retransmit most of the time,
		// occasionally a full tunnel timeout.
		stall := frStall
		if rng.Float64() < 0.3 {
			stall = tcpRTOStall
		}
		now += stall
		// The upper loop interprets long stalls as loss: a spurious
		// timeout collapses its window to 1, re-enters slow start,
		// and needlessly retransmits in-flight data that the tunnel
		// will (again) deliver reliably — the pathological stacked-
		// control-loop interaction.
		if stall >= sctpRTO {
			duplicated := min(sctpW, bdp)
			delivered -= min(duplicated, delivered)
			sctpW = 1
			sctpSS = maxW / 2
		} else {
			// Delayed SACKs shrink the upper window too.
			sctpSS = sctpW / 2
			if sctpSS < 2 {
				sctpSS = 2
			}
			sctpW = sctpSS
		}
	}
	seconds := float64(p.Duration) / 1e9
	return delivered * mss * 8 / seconds / 1e6
}

func grow(w, ss, maxW float64) float64 {
	if w < ss {
		w *= 2
		if w > ss {
			w = ss
		}
	} else {
		w++
	}
	if w > maxW {
		w = maxW
	}
	return w
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Sweep runs both tunnels across the paper's loss range and returns
// (lossPct, udpMbps, tcpMbps) rows — the series of Fig. 14.
func Sweep(base Params, lossesPct []float64, trials int) [][3]float64 {
	var rows [][3]float64
	for _, lp := range lossesPct {
		var udpSum, tcpSum float64
		for tr := 0; tr < trials; tr++ {
			p := base
			p.Loss = lp / 100
			p.Seed = base.Seed + int64(tr)*7919
			udpSum += SCTPOverUDP(p)
			tcpSum += SCTPOverTCP(p)
		}
		rows = append(rows, [3]float64{lp, udpSum / float64(trials), tcpSum / float64(trials)})
	}
	return rows
}
