package platform

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
)

const statefulMeter = `
in :: FromNetfront();
m :: FlowMeter();
out :: ToNetfront();
in -> m -> out;
`

// ---- Crash & respawn -------------------------------------------------

func TestCrashRespawnsWithBackoff(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	got := 0
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	sim.Run()
	if !p.CrashVM(addr) {
		t.Fatal("crash of a resident VM reported no-op")
	}
	if p.VMFor(addr) != nil {
		t.Fatal("crashed VM still resident")
	}
	sim.Run() // respawn fires after RespawnBase
	if p.Crashes != 1 || p.Respawns != 1 {
		t.Errorf("crashes=%d respawns=%d", p.Crashes, p.Respawns)
	}
	vm := p.VMFor(addr)
	if vm == nil || vm.State != VMRunning {
		t.Fatalf("module not re-instantiated after crash: %v", vm)
	}
	// The replacement serves traffic.
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	sim.Run()
	if got != 2 {
		t.Errorf("delivered = %d", got)
	}
}

func TestCrashRedispatchesBufferedPackets(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	got := 0
	out := func(int, *packet.Packet) { got++ }
	// Two packets land during the boot window, then the VM crashes
	// mid-boot: the buffer must survive into the replacement guest.
	p.Deliver(udp("198.51.100.10"), out)
	p.Deliver(udp("198.51.100.10"), out)
	p.CrashVM(addr)
	// More traffic while the respawn backoff runs also queues.
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if got != 3 {
		t.Errorf("delivered = %d of 3; buffered packets lost across the crash", got)
	}
	if p.DroppedTotal() != 0 {
		t.Errorf("unexpected drops: %d", p.DroppedTotal())
	}
}

func TestBootFailureBacksOffExponentially(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	// Fail the next three boots; the fourth succeeds.
	p.FailNextBoot(addr)
	p.FailNextBoot(addr)
	p.FailNextBoot(addr)
	got := 0
	start := sim.Now()
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	sim.Run()
	if p.BootFailures != 3 {
		t.Errorf("boot failures = %d", p.BootFailures)
	}
	if got != 1 {
		t.Errorf("delivered = %d; packet lost across boot failures", got)
	}
	vm := p.VMFor(addr)
	if vm == nil || vm.State != VMRunning {
		t.Fatal("module never came up")
	}
	// Backoff doubles: boot + base + boot + 2*base + boot + 4*base + boot.
	minElapsed := 4*p.model.BootLatency(ClickOS, 0) + p.RespawnBase*(1+2+4)
	if elapsed := sim.Now() - start; elapsed < minElapsed {
		t.Errorf("elapsed %d < %d: backoff not applied", elapsed, minElapsed)
	}
}

func TestRespawnBackoffCapped(t *testing.T) {
	p := newPlatform(netsim.New(1))
	p.RespawnBase = netsim.Millis(10)
	p.RespawnMax = netsim.Millis(50)
	// After many consecutive failures the delay must not exceed the cap.
	addr := packet.MustParseIP("198.51.100.10")
	for i := 0; i < 10; i++ {
		p.respawn[addr] = i
		delay := p.RespawnBase
		for j := 0; j < i && delay < p.RespawnMax; j++ {
			delay *= 2
		}
		if delay > p.RespawnMax {
			delay = p.RespawnMax
		}
		if delay > netsim.Millis(50) {
			t.Fatalf("attempt %d: delay %d exceeds cap", i, delay)
		}
	}
}

// ---- Checkpoint & restore --------------------------------------------

func TestStatefulStateRestoredFromCheckpointAfterCrash(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: statefulMeter, Stateful: true})
	out := func(int, *packet.Packet) {}
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if n := p.Checkpoint(); n != 1 {
		t.Fatalf("checkpointed %d images, want 1", n)
	}
	p.CrashVM(addr)
	sim.Run()
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if p.Restores != 1 {
		t.Errorf("restores = %d; replacement did not load the suspend image", p.Restores)
	}
}

func TestCrashWithoutCheckpointLosesState(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: statefulMeter, Stateful: true})
	out := func(int, *packet.Packet) {}
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	p.CrashVM(addr)
	sim.Run()
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if p.Restores != 0 {
		t.Errorf("restores = %d without any checkpoint", p.Restores)
	}
}

func TestSuspendRecordsCheckpoint(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: statefulMeter, Stateful: true})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	p.Suspend(p.VMFor(addr))
	sim.Run()
	if p.Checkpoints != 1 {
		t.Errorf("checkpoints = %d; suspend image not recorded", p.Checkpoints)
	}
}

// ---- Boot buffer bound & timeout -------------------------------------

func TestBootBufferBounded(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.PendingLimit = 4
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	got := 0
	for i := 0; i < 10; i++ {
		p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	}
	if p.DroppedBufferFull != 6 {
		t.Errorf("DroppedBufferFull = %d, want 6", p.DroppedBufferFull)
	}
	sim.Run()
	if got != 4 {
		t.Errorf("delivered = %d, want the 4 buffered", got)
	}
}

func TestBootBufferTimeout(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.PendingTimeout = netsim.Millis(100)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	// Arm enough boot failures that the guest stays down past the
	// buffering timeout.
	for i := 0; i < 8; i++ {
		p.FailNextBoot(addr)
	}
	got := 0
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	sim.Run()
	if p.DroppedTimeout == 0 {
		t.Error("stale buffered packet was not timeout-dropped")
	}
	if got != 0 {
		t.Errorf("delivered = %d; timeout-dropped packet delivered anyway", got)
	}
}

// ---- Platform outage -------------------------------------------------

func TestPlatformOutageAndRecovery(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	got := 0
	out := func(int, *packet.Packet) { got++ }
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	p.Fail()
	if !p.Down() || p.ResidentVMs() != 0 || p.MemUsedMB != 0 {
		t.Fatalf("outage left residents: down=%v vms=%d mem=%d", p.Down(), p.ResidentVMs(), p.MemUsedMB)
	}
	// Traffic during the outage drops with an explicit counter.
	p.Deliver(udp("198.51.100.10"), out)
	if p.DroppedDown != 1 {
		t.Errorf("DroppedDown = %d", p.DroppedDown)
	}
	p.Recover()
	// After recovery, the module cold-boots on demand.
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if got != 2 {
		t.Errorf("delivered = %d", got)
	}
	if p.Outages != 1 {
		t.Errorf("outages = %d", p.Outages)
	}
}

func TestOutagePreservesCheckpointedState(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: statefulMeter, Stateful: true})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	// Fail checkpoints stateful guests on the way down (best effort —
	// a real power loss would rely on the last periodic sweep).
	p.Fail()
	p.Recover()
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	if p.Restores != 1 {
		t.Errorf("restores = %d after outage", p.Restores)
	}
}

// ---- Memory pressure -------------------------------------------------

func TestMemoryPressureEvictsIdleBeforeRejecting(t *testing.T) {
	sim := netsim.New(1)
	p := New(sim, DefaultModel(), 1024) // room for two 512 MB guests
	a1 := packet.MustParseIP("198.51.100.1")
	a2 := packet.MustParseIP("198.51.100.2")
	a3 := packet.MustParseIP("198.51.100.3")
	for _, a := range []uint32{a1, a2, a3} {
		if err := p.Register(ModuleSpec{Addr: a, Config: passthrough, Kind: LinuxVM}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	out := func(int, *packet.Packet) { got++ }
	pk := func(a uint32) *packet.Packet { q := udp("0.0.0.0"); q.DstIP = a; return q }
	p.Deliver(pk(a1), out)
	p.Deliver(pk(a2), out)
	sim.Run() // both running, now idle
	// A third guest does not fit — the LRU idle guest must be evicted
	// instead of dropping the packet.
	p.Deliver(pk(a3), out)
	sim.Run()
	if p.DroppedNoMemory != 0 {
		t.Errorf("DroppedNoMemory = %d; eviction should have made room", p.DroppedNoMemory)
	}
	if p.Evictions != 1 {
		t.Errorf("evictions = %d", p.Evictions)
	}
	if got != 3 {
		t.Errorf("delivered = %d", got)
	}
	if p.VMFor(a1) != nil {
		t.Error("LRU guest (a1) still resident")
	}
	// The evicted module still re-boots on demand.
	p.Deliver(pk(a1), out)
	sim.Run()
	if got != 4 {
		t.Errorf("delivered = %d after re-boot", got)
	}
}

func TestMemoryPressureEvictionCheckpointsStateful(t *testing.T) {
	sim := netsim.New(1)
	p := New(sim, DefaultModel(), 1024)
	a1 := packet.MustParseIP("198.51.100.1")
	a2 := packet.MustParseIP("198.51.100.2")
	p.Register(ModuleSpec{Addr: a1, Config: statefulMeter, Kind: LinuxVM, Stateful: true})
	p.Register(ModuleSpec{Addr: a2, Config: passthrough, Kind: LinuxVM})
	p.Register(ModuleSpec{Addr: a2 + 1, Config: passthrough, Kind: LinuxVM})
	out := func(int, *packet.Packet) {}
	pk := func(a uint32) *packet.Packet { q := udp("0.0.0.0"); q.DstIP = a; return q }
	p.Deliver(pk(a1), out)
	p.Deliver(pk(a2), out)
	sim.Run()
	p.Deliver(pk(a2+1), out) // forces eviction of a1 (LRU, stateful)
	sim.Run()
	if p.Checkpoints != 1 {
		t.Errorf("checkpoints = %d; stateful eviction must checkpoint", p.Checkpoints)
	}
	// Re-booting the stateful module restores the image.
	p.Deliver(pk(a1), out)
	sim.Run()
	if p.Restores != 1 {
		t.Errorf("restores = %d", p.Restores)
	}
}

// ---- Lifecycle edge cases (satellites) -------------------------------

func TestSuspendOfBootingVMRefused(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough, Stateful: true})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	vm := p.VMFor(addr)
	if vm.State != VMBooting {
		t.Fatalf("state = %v", vm.State)
	}
	if d := p.Suspend(vm); d != 0 {
		t.Error("suspend accepted on a booting VM")
	}
	sim.Run()
	if vm.State != VMRunning || p.Suspends != 0 {
		t.Errorf("state=%v suspends=%d; refused suspend must not wedge the boot", vm.State, p.Suspends)
	}
}

func TestReclaimIdleRacingDelivery(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	got := 0
	out := func(int, *packet.Packet) { got++ }
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	// A delivery is in flight (processing latency scheduled) when the
	// reclaimer fires: the VM looks idle by LastActive but the packet
	// must be accounted, not silently lost.
	p.Deliver(udp("198.51.100.10"), out)
	n := p.ReclaimIdle(0)
	sim.Run()
	if n != 1 {
		t.Fatalf("reclaimed = %d", n)
	}
	if got+int(p.DroppedInFlight) != 2 {
		t.Errorf("delivered=%d inflight-drops=%d; packet vanished", got, p.DroppedInFlight)
	}
}

func TestUnregisterCrashedVM(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	p.CrashVM(addr)
	// Unregister between crash and respawn: the respawn must cancel.
	p.Unregister(addr)
	sim.Run()
	if p.ResidentVMs() != 0 || p.Respawns != 0 {
		t.Errorf("vms=%d respawns=%d; respawn of an unregistered module", p.ResidentVMs(), p.Respawns)
	}
	if p.MemUsedMB != 0 {
		t.Errorf("leaked %d MB", p.MemUsedMB)
	}
}

func TestDoubleDestroyIsNoop(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	vm := p.VMFor(addr)
	p.destroy(vm)
	mem := p.MemUsedMB
	p.destroy(vm) // second destroy must not double-free memory
	if p.MemUsedMB != mem {
		t.Errorf("mem %d -> %d: double-destroy double-freed", mem, p.MemUsedMB)
	}
	if p.Destroys != 1 {
		t.Errorf("destroys = %d", p.Destroys)
	}
}

func TestCrashOfAbsentVMIsNoop(t *testing.T) {
	p := newPlatform(netsim.New(1))
	if p.CrashVM(packet.MustParseIP("198.51.100.99")) {
		t.Error("crash of a non-resident address reported success")
	}
	if p.Crashes != 0 {
		t.Errorf("crashes = %d", p.Crashes)
	}
}
