package platform

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
)

// Lifecycle race paths: traffic arriving while a VM is mid-boot,
// mid-suspend, or already gone must never be lost silently or crash
// the platform.

func TestDeliverWhileBootingBuffers(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	got := 0
	out := func(int, *packet.Packet) { got++ }
	// Three packets land during the boot window.
	p.Deliver(udp("198.51.100.10"), out)
	p.Deliver(udp("198.51.100.10"), out)
	p.Deliver(udp("198.51.100.10"), out)
	if p.Boots != 1 {
		t.Fatalf("boots = %d; mid-boot packets must not re-boot", p.Boots)
	}
	sim.Run()
	if got != 3 {
		t.Errorf("delivered = %d of 3 buffered packets", got)
	}
}

func TestDeliverWhileSuspendingBuffersAndResumes(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough, Stateful: true})
	got := 0
	out := func(int, *packet.Packet) { got++ }
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	vm := p.VMFor(addr)
	p.Suspend(vm)
	// A packet arrives while the checkpoint is in flight.
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if got != 2 {
		t.Errorf("delivered = %d; mid-suspend packet lost", got)
	}
	if vm.State != VMRunning {
		t.Errorf("state = %v; pending traffic should resume the VM", vm.State)
	}
	if p.Resumes != 1 {
		t.Errorf("resumes = %d", p.Resumes)
	}
}

func TestUnregisterWhileBootingDropsCleanly(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	delivered := false
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { delivered = true })
	p.Unregister(addr) // kill the module before its VM finishes booting
	sim.Run()          // the pending finishBoot event fires harmlessly
	if delivered {
		t.Error("packet processed by an unregistered module")
	}
	if p.ResidentVMs() != 0 || p.MemUsedMB != 0 {
		t.Errorf("resources leaked: vms=%d mem=%d", p.ResidentVMs(), p.MemUsedMB)
	}
}

func TestSuspendNonRunningIsNoop(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough, Stateful: true})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	vm := p.VMFor(addr)
	// Still booting: suspend must refuse.
	if d := p.Suspend(vm); d != 0 {
		t.Errorf("suspend of booting VM = %v", d)
	}
	sim.Run()
	// Double-suspend: second is a no-op.
	if d := p.Suspend(vm); d == 0 {
		t.Fatal("first suspend refused")
	}
	if d := p.Suspend(vm); d != 0 {
		t.Error("second suspend accepted while suspending")
	}
	sim.Run()
	if p.Suspends != 1 {
		t.Errorf("suspends = %d", p.Suspends)
	}
}

func TestBigBoxCapacityClaim(t *testing.T) {
	// §6: on a 64-core/128 GB server the authors ran ≈200
	// stripped-down Linux VMs but ≈10,000 ClickOS instances — "almost
	// two orders of magnitude" from the 8 MB vs 512 MB footprints.
	m := DefaultModel()
	const bigBoxMB = 128 * 1024
	linuxCap := bigBoxMB / m.MemMB(LinuxVM)
	clickCap := bigBoxMB / m.MemMB(ClickOS)
	if linuxCap < 200 || linuxCap > 300 {
		t.Errorf("linux capacity = %d, paper ran ≈200", linuxCap)
	}
	if clickCap < 10000 {
		t.Errorf("clickos capacity = %d, paper ran ≈10,000", clickCap)
	}
	if clickCap < 50*linuxCap {
		t.Errorf("footprint ratio %dx, want ~two orders of magnitude", clickCap/linuxCap)
	}
}

func TestStatefulFlowSurvivesSuspendResume(t *testing.T) {
	// The point of suspend/resume (§5): middlebox state must survive.
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: `
in :: FromNetfront();
m :: FlowMeter();
out :: ToNetfront();
in -> m -> out;
`, Stateful: true})
	out := func(int, *packet.Packet) {}
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	vm := p.VMFor(addr)
	p.Suspend(vm)
	sim.Run()
	p.Deliver(udp("198.51.100.10"), out)
	sim.Run()
	if vm.PacketsProcessed != 2 {
		t.Errorf("packets processed across suspend = %d", vm.PacketsProcessed)
	}
	// The same VM (and its routers map, i.e. flow state) served both.
	if p.VMFor(addr) != vm {
		t.Error("resume replaced the VM; state lost")
	}
}
