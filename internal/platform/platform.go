package platform

import (
	"fmt"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
)

// VMState is the lifecycle state of a guest.
type VMState int

// VM lifecycle states.
const (
	VMBooting VMState = iota
	VMRunning
	VMSuspending
	VMSuspended
	VMResuming
)

func (s VMState) String() string {
	switch s {
	case VMBooting:
		return "booting"
	case VMRunning:
		return "running"
	case VMSuspending:
		return "suspending"
	case VMSuspended:
		return "suspended"
	case VMResuming:
		return "resuming"
	default:
		return "unknown"
	}
}

// ModuleSpec is a processing module registered with the platform by
// the controller; its VM is only instantiated when traffic arrives
// (§5 "on-the-fly middleboxes").
type ModuleSpec struct {
	// Addr is the module's address: the switch steers matching
	// traffic to the module's VM.
	Addr uint32
	// Config is the Click source to boot.
	Config string
	// Kind selects the guest type.
	Kind VMKind
	// Stateful modules are suspended rather than destroyed when idle
	// (§5 "suspend and resume").
	Stateful bool
	// ExtraCycles adds middlebox-specific per-packet cost.
	ExtraCycles float64

	hasSource bool
}

// VM is one guest instance.
type VM struct {
	ID    int
	Kind  VMKind
	State VMState
	MemMB int
	// Specs lists the module configurations consolidated in this VM.
	Specs []*ModuleSpec
	// LastActive is the last packet-processing time.
	LastActive netsim.Time

	routers map[uint32]*click.Router
	pending []pendingPacket
	// PacketsProcessed counts packets pushed through the VM.
	PacketsProcessed uint64
}

type pendingPacket struct {
	pkt *packet.Packet
	out func(iface int, p *packet.Packet)
}

// Platform is the simulated In-Net host.
type Platform struct {
	sim   *netsim.Sim
	model Model
	// Transmit, when set, receives traffic originated by source
	// modules (generators emit without a triggering Deliver).
	Transmit func(iface int, p *packet.Packet)
	// MemTotalMB bounds resident guests (16 GB box by default).
	MemTotalMB int
	MemUsedMB  int

	nextID int
	vms    map[int]*VM
	byAddr map[uint32]*VM
	specs  map[uint32]*ModuleSpec

	// Consolidate makes the platform pack stateless ClickOS modules
	// into shared VMs, up to ConsolidatePerVM configurations each
	// (§5 "scalability via static checking"; safety was established
	// by the controller).
	Consolidate      bool
	ConsolidatePerVM int

	// Counters.
	Boots, Suspends, Resumes, Destroys uint64
	DroppedNoModule                    uint64
	DroppedNoMemory                    uint64
}

// New builds a platform attached to a simulator.
func New(sim *netsim.Sim, model Model, memTotalMB int) *Platform {
	return &Platform{
		sim:        sim,
		model:      model,
		MemTotalMB: memTotalMB,
		vms:        make(map[int]*VM),
		byAddr:     make(map[uint32]*VM),
		specs:      make(map[uint32]*ModuleSpec),
	}
}

// Model returns the platform's calibrated model.
func (p *Platform) Model() Model { return p.model }

// Register installs a module spec (the controller's OpenFlow rule +
// image). The VM boots lazily on the first packet — except for
// modules containing traffic generators (zero-input elements like
// TimedSource), which would otherwise never run and are booted
// immediately.
func (p *Platform) Register(spec ModuleSpec) error {
	if _, dup := p.specs[spec.Addr]; dup {
		return fmt.Errorf("platform: address %s already registered", packet.IPString(spec.Addr))
	}
	cfg, err := clicklang.Parse(spec.Config)
	if err != nil {
		return fmt.Errorf("platform: %v", err)
	}
	s := spec
	s.hasSource = configHasSource(cfg)
	p.specs[spec.Addr] = &s
	if s.hasSource {
		if vm := p.instantiate(&s); vm == nil {
			delete(p.specs, spec.Addr)
			return fmt.Errorf("platform: no memory for source module %s", packet.IPString(spec.Addr))
		}
	}
	return nil
}

// configHasSource reports whether a configuration contains a
// zero-input traffic generator.
func configHasSource(cfg *clicklang.Config) bool {
	for _, d := range cfg.Decls {
		f := click.Lookup(d.Class)
		if f == nil {
			continue
		}
		if el := f(); el.InPorts() == 0 {
			return true
		}
	}
	return false
}

// Unregister removes a module and destroys its VM if it was the only
// occupant.
func (p *Platform) Unregister(addr uint32) {
	delete(p.specs, addr)
	if vm := p.byAddr[addr]; vm != nil {
		delete(p.byAddr, addr)
		for i, s := range vm.Specs {
			if s.Addr == addr {
				vm.Specs = append(vm.Specs[:i], vm.Specs[i+1:]...)
				break
			}
		}
		if len(vm.Specs) == 0 {
			p.destroy(vm)
		}
	}
}

// ResidentVMs returns the number of instantiated guests.
func (p *Platform) ResidentVMs() int { return len(p.vms) }

// RegisteredModules returns the number of registered module specs.
func (p *Platform) RegisteredModules() int { return len(p.specs) }

// Deliver is the back-end switch datapath: a packet arriving for a
// module address is steered to its VM, booting or resuming it first
// if needed (the switch controller of §5). out is invoked, in virtual
// time, for every packet the module emits.
func (p *Platform) Deliver(pkt *packet.Packet, out func(iface int, pk *packet.Packet)) {
	vm := p.byAddr[pkt.DstIP]
	if vm == nil {
		spec := p.specs[pkt.DstIP]
		if spec == nil {
			p.DroppedNoModule++
			return
		}
		vm = p.instantiate(spec)
		if vm == nil {
			p.DroppedNoMemory++
			return
		}
	}
	switch vm.State {
	case VMBooting, VMResuming, VMSuspending:
		vm.pending = append(vm.pending, pendingPacket{pkt: pkt, out: out})
	case VMSuspended:
		vm.pending = append(vm.pending, pendingPacket{pkt: pkt, out: out})
		p.resume(vm)
	case VMRunning:
		p.process(vm, pkt, out)
	}
}

// instantiate places a spec into a VM: either consolidated into an
// existing stateless VM with room, or into a fresh booting guest.
func (p *Platform) instantiate(spec *ModuleSpec) *VM {
	if p.Consolidate && !spec.Stateful && spec.Kind == ClickOS {
		for _, vm := range p.vms {
			if vm.Kind != ClickOS || len(vm.Specs) >= p.consolidateLimit() {
				continue
			}
			if !vmIsStateless(vm) {
				continue
			}
			// Join this VM; no boot needed.
			vm.Specs = append(vm.Specs, spec)
			p.byAddr[spec.Addr] = vm
			return vm
		}
	}
	mem := p.model.MemMB(spec.Kind)
	if p.MemUsedMB+mem > p.MemTotalMB {
		return nil
	}
	p.MemUsedMB += mem
	p.nextID++
	vm := &VM{
		ID:    p.nextID,
		Kind:  spec.Kind,
		State: VMBooting,
		MemMB: mem,
		Specs: []*ModuleSpec{spec},
	}
	p.vms[vm.ID] = vm
	p.byAddr[spec.Addr] = vm
	p.Boots++
	boot := p.model.BootLatency(spec.Kind, len(p.vms)-1)
	p.sim.After(boot, func() { p.finishBoot(vm) })
	return vm
}

func (p *Platform) consolidateLimit() int {
	if p.ConsolidatePerVM > 0 {
		return p.ConsolidatePerVM
	}
	return 100
}

func vmIsStateless(vm *VM) bool {
	for _, s := range vm.Specs {
		if s.Stateful {
			return false
		}
	}
	return true
}

func (p *Platform) finishBoot(vm *VM) {
	if _, alive := p.vms[vm.ID]; !alive {
		return
	}
	vm.State = VMRunning
	p.flush(vm)
	// Source modules start ticking as soon as the guest is up.
	for _, spec := range vm.Specs {
		if !spec.hasSource {
			continue
		}
		r, err := p.routerFor(vm, spec.Addr)
		if err != nil || r == nil {
			continue
		}
		ctx := &click.Context{
			Now: func() int64 { return p.sim.Now() },
			Transmit: func(iface int, pk *packet.Packet) {
				if p.Transmit != nil {
					p.Transmit(iface, pk)
				}
			},
		}
		p.driveTickers(vm, r, ctx)
	}
}

// flush pushes buffered packets through the (now running) VM.
func (p *Platform) flush(vm *VM) {
	pend := vm.pending
	vm.pending = nil
	for _, pp := range pend {
		p.process(vm, pp.pkt, pp.out)
	}
}

// process runs one packet through the VM's Click graph after the
// modeled CPU latency.
func (p *Platform) process(vm *VM, pkt *packet.Packet, out func(iface int, pk *packet.Packet)) {
	vm.LastActive = p.sim.Now()
	vm.PacketsProcessed++
	spec := p.specs[pkt.DstIP]
	extra := 0.0
	if spec != nil {
		extra = spec.ExtraCycles
	}
	lat := p.model.ProcessingLatency(len(p.vms), len(vm.Specs), pkt.Len(), extra)
	p.sim.After(lat, func() {
		r, err := p.routerFor(vm, pkt.DstIP)
		if err != nil || r == nil {
			return
		}
		ctx := &click.Context{
			Now:      func() int64 { return p.sim.Now() },
			Transmit: out,
		}
		_ = r.Inject(ctx, 0, pkt)
		// Drive due timed elements (batchers etc.) immediately and
		// schedule their next tick.
		p.driveTickers(vm, r, ctx)
	})
}

// routerFor lazily builds (per spec) the Click router for the module
// addressed inside the VM. Consolidated VMs keep one router per
// config — the demultiplexing cost is accounted by the CPU model.
func (p *Platform) routerFor(vm *VM, addr uint32) (*click.Router, error) {
	spec := p.specs[addr]
	if spec == nil {
		return nil, fmt.Errorf("platform: no module for %s", packet.IPString(addr))
	}
	if vm.routers == nil {
		vm.routers = make(map[uint32]*click.Router)
	}
	if r := vm.routers[addr]; r != nil {
		return r, nil
	}
	cfg, err := clicklang.Parse(spec.Config)
	if err != nil {
		return nil, err
	}
	r, err := click.Build(cfg)
	if err != nil {
		return nil, err
	}
	vm.routers[addr] = r
	return r, nil
}

// driveTickers runs a router's schedulable elements, rescheduling as
// needed.
func (p *Platform) driveTickers(vm *VM, r *click.Router, ctx *click.Context) {
	next := r.Tick(ctx)
	if next < 0 {
		return
	}
	p.sim.After(next, func() {
		if _, alive := p.vms[vm.ID]; !alive {
			return
		}
		p.driveTickers(vm, r, ctx)
	})
}

// Suspend checkpoints a running VM (§5). Buffered/new traffic will
// resume it.
func (p *Platform) Suspend(vm *VM) netsim.Time {
	if vm.State != VMRunning {
		return 0
	}
	vm.State = VMSuspending
	d := p.model.SuspendLatency(len(p.vms))
	p.Suspends++
	p.sim.After(d, func() {
		if vm.State == VMSuspending {
			vm.State = VMSuspended
			if len(vm.pending) > 0 {
				p.resume(vm)
			}
		}
	})
	return d
}

func (p *Platform) resume(vm *VM) netsim.Time {
	if vm.State != VMSuspended {
		return 0
	}
	vm.State = VMResuming
	d := p.model.ResumeLatency(len(p.vms))
	p.Resumes++
	p.sim.After(d, func() {
		if vm.State == VMResuming {
			vm.State = VMRunning
			p.flush(vm)
		}
	})
	return d
}

// ReclaimIdle destroys stateless VMs and suspends stateful ones that
// have been idle for at least idleFor. It returns the number of VMs
// reclaimed.
func (p *Platform) ReclaimIdle(idleFor netsim.Time) int {
	now := p.sim.Now()
	n := 0
	for _, vm := range p.vms {
		if vm.State != VMRunning || now-vm.LastActive < idleFor || len(vm.pending) > 0 {
			continue
		}
		if vmIsStateless(vm) {
			p.destroy(vm)
		} else {
			p.Suspend(vm)
		}
		n++
	}
	return n
}

func (p *Platform) destroy(vm *VM) {
	delete(p.vms, vm.ID)
	for _, s := range vm.Specs {
		if p.byAddr[s.Addr] == vm {
			delete(p.byAddr, s.Addr)
		}
	}
	p.MemUsedMB -= vm.MemMB
	p.Destroys++
}

// VMFor returns the VM currently serving an address, or nil.
func (p *Platform) VMFor(addr uint32) *VM { return p.byAddr[addr] }
