package platform

import (
	"fmt"
	"sort"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
	"github.com/in-net/innet/internal/telemetry"
)

// VMState is the lifecycle state of a guest.
type VMState int

// VM lifecycle states.
const (
	VMBooting VMState = iota
	VMRunning
	VMSuspending
	VMSuspended
	VMResuming
	// VMFailed marks a guest that crashed or failed to boot; the
	// platform re-instantiates its modules with capped exponential
	// backoff.
	VMFailed
)

func (s VMState) String() string {
	switch s {
	case VMBooting:
		return "booting"
	case VMRunning:
		return "running"
	case VMSuspending:
		return "suspending"
	case VMSuspended:
		return "suspended"
	case VMResuming:
		return "resuming"
	case VMFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// ModuleSpec is a processing module registered with the platform by
// the controller; its VM is only instantiated when traffic arrives
// (§5 "on-the-fly middleboxes").
type ModuleSpec struct {
	// Addr is the module's address: the switch steers matching
	// traffic to the module's VM.
	Addr uint32
	// Config is the Click source to boot.
	Config string
	// Kind selects the guest type.
	Kind VMKind
	// Stateful modules are suspended rather than destroyed when idle
	// (§5 "suspend and resume").
	Stateful bool
	// ExtraCycles adds middlebox-specific per-packet cost.
	ExtraCycles float64
	// NoPipeline forces the graph-walk dataplane for this module even
	// when its configuration would flatten (operator escape hatch).
	NoPipeline bool
	// TraceEvery is the module's path-trace sampling rate: one flow in
	// every N flow-hash residues is traced. 0 uses the platform
	// default; negative disables tracing for this module.
	TraceEvery int

	hasSource bool
}

// VM is one guest instance.
type VM struct {
	ID    int
	Kind  VMKind
	State VMState
	MemMB int
	// Specs lists the module configurations consolidated in this VM.
	Specs []*ModuleSpec
	// LastActive is the last packet-processing time.
	LastActive netsim.Time

	routers map[uint32]*click.Router
	// progs caches the compiled run-to-completion program per module
	// address; noCompile records modules whose configuration did not
	// flatten so the compile is attempted only once.
	progs     map[uint32]*pipeline.Exec
	noCompile map[uint32]string
	pending   []pendingPacket
	// PacketsProcessed counts packets pushed through the VM.
	PacketsProcessed uint64
}

type pendingPacket struct {
	pkt *packet.Packet
	out func(iface int, p *packet.Packet)
	// enq is when the packet entered the boot buffer; packets older
	// than PendingTimeout are dropped instead of delivered late.
	enq netsim.Time
}

// Platform is the simulated In-Net host.
type Platform struct {
	sim   *netsim.Sim
	model Model
	// Transmit, when set, receives traffic originated by source
	// modules (generators emit without a triggering Deliver).
	Transmit func(iface int, p *packet.Packet)
	// MemTotalMB bounds resident guests (16 GB box by default).
	MemTotalMB int
	MemUsedMB  int

	nextID int
	vms    map[int]*VM
	byAddr map[uint32]*VM
	specs  map[uint32]*ModuleSpec

	// Consolidate makes the platform pack stateless ClickOS modules
	// into shared VMs, up to ConsolidatePerVM configurations each
	// (§5 "scalability via static checking"; safety was established
	// by the controller).
	Consolidate      bool
	ConsolidatePerVM int

	// Failure & recovery knobs (DESIGN.md "Failure model & recovery").
	//
	// PendingLimit bounds the per-VM boot buffer; overflow drops are
	// counted in DroppedBufferFull. PendingTimeout bounds how long a
	// packet may wait for a guest to come up before it is dropped
	// (DroppedTimeout). RespawnBase/RespawnMax shape the capped
	// exponential backoff used to re-instantiate crashed guests.
	PendingLimit   int
	PendingTimeout netsim.Time
	RespawnBase    netsim.Time
	RespawnMax     netsim.Time

	// TraceEvery is the platform-wide default path-trace sampling rate
	// (one flow in N); 0 means telemetry.DefaultTraceEvery, negative
	// disables tracing unless a module opts in. Rings live on the
	// platform keyed by module address so traces survive VM churn.
	TraceEvery int
	pathRings  map[uint32]*telemetry.PathRing
	// Rec, when set, receives flight-recorder events for VM crashes,
	// respawns, evictions, outages and compile fallbacks.
	Rec *telemetry.Recorder

	down bool
	// respawn tracks consecutive failures per module address (backoff
	// exponent); failBoots holds armed boot-failure injections;
	// checkpoints are the suspend images of stateful modules; orphans
	// are packets whose guest died and that await the replacement.
	respawn     map[uint32]int
	failBoots   map[uint32]int
	checkpoints map[uint32]*click.Router
	orphans     map[uint32][]pendingPacket

	// Counters.
	Boots, Suspends, Resumes, Destroys uint64
	DroppedNoModule                    uint64
	DroppedNoMemory                    uint64
	// Failure counters.
	Crashes, BootFailures, Respawns uint64
	Outages, Evictions              uint64
	Checkpoints, Restores           uint64
	DroppedBufferFull               uint64
	DroppedTimeout                  uint64
	DroppedDown                     uint64
	DroppedInFlight                 uint64
	// Pipeline dataplane counters: compiles, fallbacks to the graph
	// walk (with reasons), and packets run through compiled programs.
	PipelineCompiled uint64
	PipelineFallback uint64
	PipelinePackets  uint64
	pipelineReasons  map[string]uint64
	// pipelineRetired carries the packet/batch/drop totals of
	// destroyed VMs' programs so PipelineCounters stays monotonic;
	// pipelineRetiredBy does the same for the per-reason drop split.
	pipelineRetired   [3]uint64
	pipelineRetiredBy [pipeline.NumDropReasons]uint64
}

// New builds a platform attached to a simulator.
func New(sim *netsim.Sim, model Model, memTotalMB int) *Platform {
	return &Platform{
		sim:            sim,
		model:          model,
		MemTotalMB:     memTotalMB,
		vms:            make(map[int]*VM),
		byAddr:         make(map[uint32]*VM),
		specs:          make(map[uint32]*ModuleSpec),
		respawn:        make(map[uint32]int),
		failBoots:      make(map[uint32]int),
		checkpoints:    make(map[uint32]*click.Router),
		orphans:        make(map[uint32][]pendingPacket),
		PendingLimit:   256,
		PendingTimeout: 5 * netsim.Second,
		RespawnBase:    netsim.Millis(10),
		RespawnMax:     2 * netsim.Second,
	}
}

// Model returns the platform's calibrated model.
func (p *Platform) Model() Model { return p.model }

// Register installs a module spec (the controller's OpenFlow rule +
// image). The VM boots lazily on the first packet — except for
// modules containing traffic generators (zero-input elements like
// TimedSource), which would otherwise never run and are booted
// immediately.
func (p *Platform) Register(spec ModuleSpec) error {
	if _, dup := p.specs[spec.Addr]; dup {
		return fmt.Errorf("platform: address %s already registered", packet.IPString(spec.Addr))
	}
	cfg, err := clicklang.Parse(spec.Config)
	if err != nil {
		return fmt.Errorf("platform: %v", err)
	}
	s := spec
	s.hasSource = configHasSource(cfg)
	p.specs[spec.Addr] = &s
	if s.hasSource {
		if vm := p.instantiate(&s); vm == nil {
			delete(p.specs, spec.Addr)
			return fmt.Errorf("platform: no memory for source module %s", packet.IPString(spec.Addr))
		}
	}
	return nil
}

// configHasSource reports whether a configuration contains a
// zero-input traffic generator.
func configHasSource(cfg *clicklang.Config) bool {
	for _, d := range cfg.Decls {
		f := click.Lookup(d.Class)
		if f == nil {
			continue
		}
		if el := f(); el.InPorts() == 0 {
			return true
		}
	}
	return false
}

// Unregister removes a module and destroys its VM if it was the only
// occupant. Unregistering a crashed module cancels its pending
// respawn and discards its checkpoint and orphaned packets.
func (p *Platform) Unregister(addr uint32) {
	delete(p.specs, addr)
	delete(p.respawn, addr)
	delete(p.failBoots, addr)
	delete(p.checkpoints, addr)
	delete(p.orphans, addr)
	delete(p.pathRings, addr)
	if vm := p.byAddr[addr]; vm != nil {
		delete(p.byAddr, addr)
		for i, s := range vm.Specs {
			if s.Addr == addr {
				vm.Specs = append(vm.Specs[:i], vm.Specs[i+1:]...)
				break
			}
		}
		if len(vm.Specs) == 0 {
			p.destroy(vm)
		}
	}
}

// ResidentVMs returns the number of instantiated guests.
func (p *Platform) ResidentVMs() int { return len(p.vms) }

// RegisteredModules returns the number of registered module specs.
func (p *Platform) RegisteredModules() int { return len(p.specs) }

// HasModule reports whether a module spec is registered at addr — the
// controller's restart-recovery inventory probe.
func (p *Platform) HasModule(addr uint32) bool {
	_, ok := p.specs[addr]
	return ok
}

// Deliver is the back-end switch datapath: a packet arriving for a
// module address is steered to its VM, booting or resuming it first
// if needed (the switch controller of §5). out is invoked, in virtual
// time, for every packet the module emits.
func (p *Platform) Deliver(pkt *packet.Packet, out func(iface int, pk *packet.Packet)) {
	if p.down {
		p.DroppedDown++
		return
	}
	vm := p.byAddr[pkt.DstIP]
	if vm == nil {
		spec := p.specs[pkt.DstIP]
		if spec == nil {
			p.DroppedNoModule++
			return
		}
		if p.respawn[pkt.DstIP] > 0 {
			// A respawn is already scheduled with backoff; queue the
			// packet for the replacement guest instead of racing it.
			p.stashOrphan(pkt.DstIP, pendingPacket{pkt: pkt, out: out, enq: p.sim.Now()})
			return
		}
		vm = p.instantiate(spec)
		if vm == nil {
			p.DroppedNoMemory++
			return
		}
	}
	switch vm.State {
	case VMBooting, VMResuming, VMSuspending:
		p.buffer(vm, pendingPacket{pkt: pkt, out: out, enq: p.sim.Now()})
	case VMSuspended:
		p.buffer(vm, pendingPacket{pkt: pkt, out: out, enq: p.sim.Now()})
		p.resume(vm)
	case VMRunning:
		p.process(vm, pkt, out)
	}
}

// buffer appends to a VM's boot buffer, enforcing the bound and
// arming the staleness timeout.
func (p *Platform) buffer(vm *VM, pp pendingPacket) {
	if p.PendingLimit > 0 && len(vm.pending) >= p.PendingLimit {
		p.DroppedBufferFull++
		return
	}
	vm.pending = append(vm.pending, pp)
	if p.PendingTimeout > 0 {
		p.sim.After(p.PendingTimeout, func() { p.expirePending(vm) })
	}
}

// expirePending drops boot-buffered packets that waited longer than
// PendingTimeout on a VM that still is not running.
func (p *Platform) expirePending(vm *VM) {
	if _, alive := p.vms[vm.ID]; !alive || vm.State == VMRunning {
		return
	}
	deadline := p.sim.Now() - p.PendingTimeout
	kept := vm.pending[:0]
	for _, pp := range vm.pending {
		if pp.enq <= deadline {
			p.DroppedTimeout++
			continue
		}
		kept = append(kept, pp)
	}
	vm.pending = kept
}

// stashOrphan queues a packet whose guest died, bounded like the boot
// buffer.
func (p *Platform) stashOrphan(addr uint32, pp pendingPacket) {
	if p.PendingLimit > 0 && len(p.orphans[addr]) >= p.PendingLimit {
		p.DroppedBufferFull++
		return
	}
	p.orphans[addr] = append(p.orphans[addr], pp)
}

// instantiate places a spec into a VM: either consolidated into an
// existing stateless VM with room, or into a fresh booting guest.
// Under memory pressure it degrades gracefully by evicting idle
// guests (LRU) before rejecting the boot.
func (p *Platform) instantiate(spec *ModuleSpec) *VM {
	if p.down {
		return nil
	}
	if p.Consolidate && !spec.Stateful && spec.Kind == ClickOS {
		for _, vm := range p.vms {
			if vm.Kind != ClickOS || len(vm.Specs) >= p.consolidateLimit() {
				continue
			}
			if !vmIsStateless(vm) {
				continue
			}
			// Join this VM; no boot needed.
			vm.Specs = append(vm.Specs, spec)
			p.byAddr[spec.Addr] = vm
			p.adoptOrphans(vm, spec.Addr)
			return vm
		}
	}
	mem := p.model.MemMB(spec.Kind)
	if p.MemUsedMB+mem > p.MemTotalMB {
		p.evictForMemory(p.MemUsedMB + mem - p.MemTotalMB)
	}
	if p.MemUsedMB+mem > p.MemTotalMB {
		return nil
	}
	p.MemUsedMB += mem
	p.nextID++
	vm := &VM{
		ID:    p.nextID,
		Kind:  spec.Kind,
		State: VMBooting,
		MemMB: mem,
		Specs: []*ModuleSpec{spec},
	}
	p.vms[vm.ID] = vm
	p.byAddr[spec.Addr] = vm
	p.Boots++
	p.adoptOrphans(vm, spec.Addr)
	boot := p.model.BootLatency(spec.Kind, len(p.vms)-1)
	p.sim.After(boot, func() { p.finishBoot(vm) })
	return vm
}

// adoptOrphans moves packets stranded by a dead guest into the
// replacement's buffer (re-dispatch after recovery), dropping any
// that already exceeded the buffering timeout.
func (p *Platform) adoptOrphans(vm *VM, addr uint32) {
	pend := p.orphans[addr]
	if len(pend) == 0 {
		return
	}
	delete(p.orphans, addr)
	now := p.sim.Now()
	for _, pp := range pend {
		if p.PendingTimeout > 0 && now-pp.enq >= p.PendingTimeout {
			p.DroppedTimeout++
			continue
		}
		p.buffer(vm, pp)
	}
	if vm.State == VMRunning {
		p.flush(vm)
	}
}

// evictForMemory frees at least needMB by destroying idle guests,
// least-recently-active first. Stateless guests are simply destroyed
// (they reboot on demand); stateful guests are checkpointed first so
// their state is restored when traffic re-instantiates them — the
// suspend-to-disk degradation mode. Booting, resuming or
// packet-holding guests are never evicted.
func (p *Platform) evictForMemory(needMB int) {
	var idle []*VM
	for _, vm := range p.vms {
		if vm.State != VMRunning && vm.State != VMSuspended {
			continue
		}
		if len(vm.pending) > 0 {
			continue
		}
		idle = append(idle, vm)
	}
	sort.Slice(idle, func(i, j int) bool {
		if idle[i].LastActive != idle[j].LastActive {
			return idle[i].LastActive < idle[j].LastActive
		}
		return idle[i].ID < idle[j].ID
	})
	freed := 0
	for _, vm := range idle {
		if freed >= needMB {
			return
		}
		if !vmIsStateless(vm) {
			p.checkpointVM(vm)
		}
		freed += vm.MemMB
		p.record("vm-evicted", "memory pressure", vmRef(vm))
		p.destroy(vm)
		p.Evictions++
	}
}

func (p *Platform) consolidateLimit() int {
	if p.ConsolidatePerVM > 0 {
		return p.ConsolidatePerVM
	}
	return 100
}

func vmIsStateless(vm *VM) bool {
	for _, s := range vm.Specs {
		if s.Stateful {
			return false
		}
	}
	return true
}

func (p *Platform) finishBoot(vm *VM) {
	if _, alive := p.vms[vm.ID]; !alive {
		return
	}
	// An armed boot-failure injection fires here: the guest never
	// comes up, its buffered packets move to the orphan queue and the
	// modules are re-instantiated with backoff.
	for _, s := range vm.Specs {
		if p.failBoots[s.Addr] > 0 {
			p.failBoots[s.Addr]--
			if p.failBoots[s.Addr] == 0 {
				delete(p.failBoots, s.Addr)
			}
			p.BootFailures++
			p.failVM(vm, "boot failure")
			return
		}
	}
	vm.State = VMRunning
	for _, s := range vm.Specs {
		delete(p.respawn, s.Addr)
	}
	p.flush(vm)
	// Source modules start ticking as soon as the guest is up.
	for _, spec := range vm.Specs {
		if !spec.hasSource {
			continue
		}
		r, err := p.routerFor(vm, spec.Addr)
		if err != nil || r == nil {
			continue
		}
		ctx := &click.Context{
			Now: func() int64 { return p.sim.Now() },
			Transmit: func(iface int, pk *packet.Packet) {
				if p.Transmit != nil {
					p.Transmit(iface, pk)
				}
			},
		}
		p.driveTickers(vm, r, ctx)
	}
}

// flush pushes buffered packets through the (now running) VM.
func (p *Platform) flush(vm *VM) {
	pend := vm.pending
	vm.pending = nil
	for _, pp := range pend {
		p.process(vm, pp.pkt, pp.out)
	}
}

// process runs one packet through the VM's Click graph after the
// modeled CPU latency.
func (p *Platform) process(vm *VM, pkt *packet.Packet, out func(iface int, pk *packet.Packet)) {
	vm.LastActive = p.sim.Now()
	vm.PacketsProcessed++
	spec := p.specs[pkt.DstIP]
	extra := 0.0
	if spec != nil {
		extra = spec.ExtraCycles
	}
	lat := p.model.ProcessingLatency(len(p.vms), len(vm.Specs), pkt.Len(), extra)
	p.sim.After(lat, func() {
		if _, alive := p.vms[vm.ID]; !alive {
			// The guest died (crash, eviction, outage) with this
			// packet in flight.
			p.DroppedInFlight++
			return
		}
		r, err := p.routerFor(vm, pkt.DstIP)
		if err != nil || r == nil {
			return
		}
		ctx := &click.Context{
			Now:      func() int64 { return p.sim.Now() },
			Transmit: out,
		}
		if x := p.programFor(vm, pkt.DstIP, r); x != nil {
			// Compiled fast path: run to completion through the
			// flattened program. The program shares the router's
			// element instances, so ticker drains below stay coherent.
			// Path tracing, when armed, samples inside RunOne.
			x.Transmit = out
			_ = x.RunOne(0, pkt)
			p.PipelinePackets++
		} else if every := p.traceEveryFor(spec); every > 0 &&
			telemetry.Sampled(pipeline.AffinityHash(pkt.Tuple()), every) {
			p.injectTraced(r, ctx, pkt, p.pathRing(pkt.DstIP),
				pipeline.AffinityHash(pkt.Tuple()))
		} else {
			_ = r.Inject(ctx, 0, pkt)
		}
		// Drive due timed elements (batchers etc.) immediately and
		// schedule their next tick.
		p.driveTickers(vm, r, ctx)
	})
}

// routerFor lazily builds (per spec) the Click router for the module
// addressed inside the VM. Consolidated VMs keep one router per
// config — the demultiplexing cost is accounted by the CPU model.
func (p *Platform) routerFor(vm *VM, addr uint32) (*click.Router, error) {
	spec := p.specs[addr]
	if spec == nil {
		return nil, fmt.Errorf("platform: no module for %s", packet.IPString(addr))
	}
	if vm.routers == nil {
		vm.routers = make(map[uint32]*click.Router)
	}
	if r := vm.routers[addr]; r != nil {
		return r, nil
	}
	// A checkpointed suspend image restores the module's state instead
	// of booting a pristine graph (§5 suspend/resume as the recovery
	// primitive). Images are referenced, not copied: divergence between
	// the checkpoint instant and the crash is not modeled.
	if ck := p.checkpoints[addr]; ck != nil {
		vm.routers[addr] = ck
		p.Restores++
		return ck, nil
	}
	cfg, err := clicklang.Parse(spec.Config)
	if err != nil {
		return nil, err
	}
	r, err := click.Build(cfg)
	if err != nil {
		return nil, err
	}
	vm.routers[addr] = r
	return r, nil
}

// programFor returns the compiled pipeline for addr's router,
// compiling on first use. nil means the module runs on the graph walk:
// either the spec opts out, or the configuration does not flatten (the
// reason is recorded once and counted in PipelineFallback).
func (p *Platform) programFor(vm *VM, addr uint32, r *click.Router) *pipeline.Exec {
	spec := p.specs[addr]
	if spec == nil || spec.NoPipeline {
		return nil
	}
	if x := vm.progs[addr]; x != nil {
		return x
	}
	if _, bad := vm.noCompile[addr]; bad {
		return nil
	}
	prog, err := pipeline.Compile(r)
	if err != nil {
		if vm.noCompile == nil {
			vm.noCompile = make(map[uint32]string)
		}
		vm.noCompile[addr] = err.Error()
		p.PipelineFallback++
		if p.pipelineReasons == nil {
			p.pipelineReasons = make(map[string]uint64)
		}
		p.pipelineReasons[err.Error()]++
		p.record("compile-fallback", err.Error(), packet.IPString(addr))
		return nil
	}
	x := pipeline.NewExec(prog)
	x.Now = func() int64 { return p.sim.Now() }
	if every := p.traceEveryFor(spec); every > 0 {
		x.EnablePathTrace(p.pathRing(addr), every)
	}
	if vm.progs == nil {
		vm.progs = make(map[uint32]*pipeline.Exec)
	}
	vm.progs[addr] = x
	p.PipelineCompiled++
	return x
}

// PipelineCounters sums the packet/batch/drop counters of every
// compiled program on the platform: live programs of resident VMs
// plus the totals retired with destroyed VMs, so the sums are
// monotonic across evictions and crash/respawn cycles.
func (p *Platform) PipelineCounters() (packets, batches, drops uint64) {
	packets, batches, drops = p.pipelineRetired[0], p.pipelineRetired[1], p.pipelineRetired[2]
	for _, vm := range p.vms {
		for _, x := range vm.progs {
			packets += x.Packets
			batches += x.Batches
			drops += x.Drops
		}
	}
	return packets, batches, drops
}

// PipelineFallbackReasons snapshots why modules fell back to the
// graph-walk dataplane (compile-error text -> count).
func (p *Platform) PipelineFallbackReasons() map[string]uint64 {
	out := make(map[string]uint64, len(p.pipelineReasons))
	for k, v := range p.pipelineReasons {
		out[k] = v
	}
	return out
}

// DataplaneFor reports which dataplane addr's resident VM uses:
// "pipeline", "graph-walk", or "" when the module has no live router
// yet.
func (p *Platform) DataplaneFor(addr uint32) string {
	vm := p.byAddr[addr]
	if vm == nil {
		return ""
	}
	if vm.progs[addr] != nil {
		return "pipeline"
	}
	if _, bad := vm.noCompile[addr]; bad {
		return "graph-walk"
	}
	if spec := p.specs[addr]; spec != nil && spec.NoPipeline {
		return "graph-walk"
	}
	return ""
}

// driveTickers runs a router's schedulable elements, rescheduling as
// needed.
func (p *Platform) driveTickers(vm *VM, r *click.Router, ctx *click.Context) {
	next := r.Tick(ctx)
	if next < 0 {
		return
	}
	p.sim.After(next, func() {
		if _, alive := p.vms[vm.ID]; !alive {
			return
		}
		p.driveTickers(vm, r, ctx)
	})
}

// Suspend checkpoints a running VM (§5). Buffered/new traffic will
// resume it.
func (p *Platform) Suspend(vm *VM) netsim.Time {
	if vm.State != VMRunning {
		return 0
	}
	vm.State = VMSuspending
	d := p.model.SuspendLatency(len(p.vms))
	p.Suspends++
	p.sim.After(d, func() {
		if vm.State == VMSuspending {
			vm.State = VMSuspended
			// The finished suspend image doubles as a crash-recovery
			// checkpoint for stateful modules.
			p.checkpointVM(vm)
			if len(vm.pending) > 0 {
				p.resume(vm)
			}
		}
	})
	return d
}

func (p *Platform) resume(vm *VM) netsim.Time {
	if vm.State != VMSuspended {
		return 0
	}
	vm.State = VMResuming
	d := p.model.ResumeLatency(len(p.vms))
	p.Resumes++
	p.sim.After(d, func() {
		if vm.State == VMResuming {
			vm.State = VMRunning
			p.flush(vm)
		}
	})
	return d
}

// ReclaimIdle destroys stateless VMs and suspends stateful ones that
// have been idle for at least idleFor. It returns the number of VMs
// reclaimed.
func (p *Platform) ReclaimIdle(idleFor netsim.Time) int {
	now := p.sim.Now()
	n := 0
	for _, vm := range p.vms {
		if vm.State != VMRunning || now-vm.LastActive < idleFor || len(vm.pending) > 0 {
			continue
		}
		if vmIsStateless(vm) {
			p.destroy(vm)
		} else {
			p.Suspend(vm)
		}
		n++
	}
	return n
}

func (p *Platform) destroy(vm *VM) {
	if _, alive := p.vms[vm.ID]; !alive {
		return // double-destroy is a no-op
	}
	for _, x := range vm.progs {
		p.pipelineRetired[0] += x.Packets
		p.pipelineRetired[1] += x.Batches
		p.pipelineRetired[2] += x.Drops
		for i, n := range x.DropsBy {
			p.pipelineRetiredBy[i] += n
		}
	}
	delete(p.vms, vm.ID)
	for _, s := range vm.Specs {
		if p.byAddr[s.Addr] == vm {
			delete(p.byAddr, s.Addr)
		}
	}
	p.MemUsedMB -= vm.MemMB
	p.Destroys++
}

// VMFor returns the VM currently serving an address, or nil.
func (p *Platform) VMFor(addr uint32) *VM { return p.byAddr[addr] }

// ---- Failure injection & recovery ------------------------------------

// CrashVM kills the guest currently serving addr (fault injection: a
// guest panic, an OOM kill, a Xen domain failure). Buffered packets
// move to the orphan queue and every module hosted in the guest is
// re-instantiated with capped exponential backoff; stateful modules
// restore from their latest checkpoint. Reports whether a guest was
// actually resident.
func (p *Platform) CrashVM(addr uint32) bool {
	vm := p.byAddr[addr]
	if vm == nil {
		return false
	}
	p.Crashes++
	p.failVM(vm, "crash")
	return true
}

// failVM implements the shared crash/boot-failure path: tear the
// guest down, strand its buffered packets and schedule respawns.
func (p *Platform) failVM(vm *VM, cause string) {
	p.record("vm-crash", cause, vmRef(vm))
	pend := vm.pending
	vm.pending = nil
	vm.State = VMFailed
	vm.routers = nil
	p.destroy(vm)
	for _, pp := range pend {
		p.stashOrphan(pp.pkt.DstIP, pp)
	}
	for _, s := range vm.Specs {
		p.scheduleRespawn(s.Addr)
	}
}

// scheduleRespawn re-instantiates a module's guest after the current
// backoff delay, doubling up to RespawnMax on consecutive failures.
func (p *Platform) scheduleRespawn(addr uint32) {
	attempts := p.respawn[addr]
	p.respawn[addr] = attempts + 1
	delay := p.RespawnBase
	for i := 0; i < attempts && delay < p.RespawnMax; i++ {
		delay *= 2
	}
	if delay > p.RespawnMax {
		delay = p.RespawnMax
	}
	p.sim.After(delay, func() {
		if p.down {
			return // the whole platform died; Recover reboots lazily
		}
		spec := p.specs[addr]
		if spec == nil {
			return // unregistered while the respawn was pending
		}
		if p.byAddr[addr] != nil {
			return // traffic already re-instantiated it
		}
		p.Respawns++
		p.record("vm-respawn", "", packet.IPString(addr))
		if p.instantiate(spec) == nil {
			p.scheduleRespawn(addr) // no memory yet: keep backing off
		}
	})
}

// FailNextBoot arms a boot-failure injection: the next boot of addr's
// guest fails at the end of the boot window, exercising the backoff
// path. May be called repeatedly to fail several consecutive boots.
func (p *Platform) FailNextBoot(addr uint32) {
	p.failBoots[addr]++
}

// Fail takes the whole platform down (power loss, host kernel panic):
// every resident guest dies, in-flight and buffered packets are
// dropped (counted in DroppedDown), and Deliver drops until Recover.
// Module registrations survive — they live in the controller's
// database, not on the host.
func (p *Platform) Fail() {
	if p.down {
		return
	}
	p.down = true
	p.Outages++
	p.record("platform-outage", "", "")
	ids := make([]int, 0, len(p.vms))
	for id := range p.vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		vm := p.vms[id]
		if !vmIsStateless(vm) {
			p.checkpointVM(vm)
		}
		p.DroppedDown += uint64(len(vm.pending))
		vm.pending = nil
		vm.State = VMFailed
		vm.routers = nil
		p.destroy(vm)
	}
	for addr, pend := range p.orphans {
		p.DroppedDown += uint64(len(pend))
		delete(p.orphans, addr)
	}
}

// Recover brings a failed platform back up. Guests re-instantiate
// lazily when traffic arrives, exactly like a cold start; stateful
// modules restore from their checkpoints. Respawn backoff state is
// reset — pre-outage crash history is moot after a reboot.
func (p *Platform) Recover() {
	p.down = false
	p.respawn = make(map[uint32]int)
	p.record("platform-recover", "", "")
}

// Down reports whether the platform is in a simulated outage.
func (p *Platform) Down() bool { return p.down }

// Checkpoint snapshots the suspend image of every resident stateful
// module (the operator's periodic checkpoint sweep). Harnesses call
// this on their own schedule so the event heap stays finite.
func (p *Platform) Checkpoint() int {
	n := 0
	ids := make([]int, 0, len(p.vms))
	for id := range p.vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n += p.checkpointVM(p.vms[id])
	}
	return n
}

// checkpointVM records suspend images for a guest's stateful modules.
func (p *Platform) checkpointVM(vm *VM) int {
	n := 0
	for _, s := range vm.Specs {
		if !s.Stateful {
			continue
		}
		if r := vm.routers[s.Addr]; r != nil {
			p.checkpoints[s.Addr] = r
			p.Checkpoints++
			n++
		}
	}
	return n
}

// PendingBuffered returns the number of packets currently parked in
// boot buffers and orphan queues — traffic neither delivered nor
// dropped yet.
func (p *Platform) PendingBuffered() int {
	n := 0
	for _, vm := range p.vms {
		n += len(vm.pending)
	}
	for _, pend := range p.orphans {
		n += len(pend)
	}
	return n
}

// DroppedTotal sums every explicit drop counter: the invariant the
// chaos tests assert is sent == delivered + DroppedTotal + buffered.
func (p *Platform) DroppedTotal() uint64 {
	return p.DroppedNoModule + p.DroppedNoMemory + p.DroppedBufferFull +
		p.DroppedTimeout + p.DroppedDown + p.DroppedInFlight
}

// DeliverBatch steers a burst of packets, amortizing the per-packet
// datapath bookkeeping: consecutive packets for the same module
// address reuse the resolved guest instead of re-walking the address
// and spec tables. Side effects (boot, resume, processing) are
// scheduled in virtual time exactly as Deliver would — nothing inside
// the loop advances the simulation, so the memo cannot go stale
// mid-batch; it is re-validated against the guest's state anyway.
func (p *Platform) DeliverBatch(pkts []*packet.Packet, out func(iface int, pk *packet.Packet)) {
	var (
		lastAddr uint32
		lastVM   *VM
	)
	for _, pkt := range pkts {
		if lastVM != nil && pkt.DstIP == lastAddr && !p.down && lastVM.State == VMRunning {
			p.process(lastVM, pkt, out)
			continue
		}
		p.Deliver(pkt, out)
		if vm := p.byAddr[pkt.DstIP]; vm != nil && vm.State == VMRunning {
			lastAddr, lastVM = pkt.DstIP, vm
		} else {
			lastVM = nil
		}
	}
}
