package platform

import (
	"fmt"
	"testing"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
)

const statefulChain = `
in :: FromNetfront();
chk :: CheckIPHeader;
ttl :: DecIPTTL;
rl :: RateLimiter(3);
cnt :: Counter;
out :: ToNetfront();
d :: Discard;
in -> chk -> ttl -> rl -> cnt -> out;
chk[1] -> d;
ttl[1] -> d;
`

// runModule boots one module (optionally pinned to the graph walk),
// pushes pkts through it and returns every egress as iface/payload
// strings in arrival order.
func runModule(t *testing.T, noPipeline bool, pkts []*packet.Packet) ([]string, *Platform) {
	t.Helper()
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.77")
	err := p.Register(ModuleSpec{Addr: addr, Config: statefulChain, NoPipeline: noPipeline})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	out := func(iface int, pk *packet.Packet) {
		got = append(got, fmt.Sprintf("%d %s ttl=%d %q", iface, pk.Tuple(), pk.TTL, pk.Payload))
	}
	for _, pk := range pkts {
		p.Deliver(pk, out)
		sim.Run()
	}
	return got, p
}

// TestPipelineDifferentialInPlatform runs the same traffic through the
// compiled dataplane and the graph walk and requires identical egress.
func TestPipelineDifferentialInPlatform(t *testing.T) {
	mk := func() []*packet.Packet {
		var pkts []*packet.Packet
		for i := 0; i < 8; i++ {
			pk := udp("198.51.100.77")
			pk.SrcPort = uint16(1000 + i%3)
			pk.TTL = uint8(1 + i%4) // some expire in DecIPTTL
			pk.Payload = []byte(fmt.Sprintf("p%d", i))
			pkts = append(pkts, pk)
		}
		return pkts
	}
	graph, gp := runModule(t, true, mk())
	piped, pp := runModule(t, false, mk())
	if len(graph) != len(piped) {
		t.Fatalf("egress count: graph=%d pipeline=%d", len(graph), len(piped))
	}
	for i := range graph {
		if graph[i] != piped[i] {
			t.Errorf("egress %d: graph=%q pipeline=%q", i, graph[i], piped[i])
		}
	}
	if gp.PipelineCompiled != 0 || gp.DataplaneFor(packet.MustParseIP("198.51.100.77")) != "graph-walk" {
		t.Errorf("NoPipeline module compiled anyway (compiled=%d dataplane=%q)",
			gp.PipelineCompiled, gp.DataplaneFor(packet.MustParseIP("198.51.100.77")))
	}
	if pp.PipelineCompiled != 1 || pp.PipelinePackets == 0 {
		t.Errorf("pipeline module: compiled=%d packets=%d", pp.PipelineCompiled, pp.PipelinePackets)
	}
	if dp := pp.DataplaneFor(packet.MustParseIP("198.51.100.77")); dp != "pipeline" {
		t.Errorf("dataplane = %q, want pipeline", dp)
	}
}

// TestPipelineFallbackCounted registers a module whose config cannot
// flatten (RoundRobinSwitch) and checks it falls back, once, with a
// recorded reason — and still forwards traffic.
func TestPipelineFallbackCounted(t *testing.T) {
	const rr = `
in :: FromNetfront();
rrs :: RoundRobinSwitch(2);
o1 :: ToNetfront(1);
o2 :: ToNetfront(2);
in -> rrs;
rrs[0] -> o1;
rrs[1] -> o2;
`
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.88")
	if err := p.Register(ModuleSpec{Addr: addr, Config: rr}); err != nil {
		t.Fatal(err)
	}
	var n int
	out := func(iface int, pk *packet.Packet) { n++ }
	for i := 0; i < 4; i++ {
		p.Deliver(udp("198.51.100.88"), out)
		sim.Run()
	}
	if n != 4 {
		t.Fatalf("delivered %d, want 4", n)
	}
	if p.PipelineFallback != 1 || p.PipelineCompiled != 0 {
		t.Fatalf("fallback=%d compiled=%d, want 1/0", p.PipelineFallback, p.PipelineCompiled)
	}
	if len(p.PipelineFallbackReasons()) != 1 {
		t.Fatalf("reasons = %v", p.PipelineFallbackReasons())
	}
	if dp := p.DataplaneFor(addr); dp != "graph-walk" {
		t.Fatalf("dataplane = %q, want graph-walk", dp)
	}
}
