package platform

import (
	"testing"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
	"github.com/in-net/innet/internal/telemetry"
)

// TestPathTracesCompiledAndGraph samples every flow (TraceEvery=1)
// through both dataplanes of the same config and checks the captured
// traces name the stages and carry the dataplane tag.
func TestPathTracesCompiledAndGraph(t *testing.T) {
	for _, tc := range []struct {
		noPipeline bool
		dataplane  string
	}{
		{false, "pipeline"},
		{true, "graph"},
	} {
		sim := netsim.New(1)
		p := newPlatform(sim)
		p.TraceEvery = 1
		addr := packet.MustParseIP("198.51.100.77")
		err := p.Register(ModuleSpec{Addr: addr, Config: statefulChain, NoPipeline: tc.noPipeline})
		if err != nil {
			t.Fatal(err)
		}
		out := func(int, *packet.Packet) {}
		for i := 0; i < 3; i++ {
			p.Deliver(udp("198.51.100.77"), out)
			sim.Run()
		}
		traces := p.PathTraces(addr, 0)
		if len(traces) != 3 {
			t.Fatalf("noPipeline=%v: got %d traces, want 3", tc.noPipeline, len(traces))
		}
		tr := traces[0]
		if tr.Dataplane != tc.dataplane {
			t.Fatalf("dataplane = %q, want %q", tr.Dataplane, tc.dataplane)
		}
		elems := make(map[string]bool)
		for _, h := range tr.Hops {
			elems[h.Elem] = true
		}
		for _, want := range []string{"in", "chk", "ttl", "rl"} {
			if !elems[want] {
				t.Fatalf("noPipeline=%v: trace missing element %q: %+v", tc.noPipeline, want, tr.Hops)
			}
		}
		if last := tr.Hops[len(tr.Hops)-1]; last.Verdict != "tx:0" {
			t.Fatalf("noPipeline=%v: terminal verdict = %q, want tx:0", tc.noPipeline, last.Verdict)
		}
	}
}

// TestPathTraceKnobs: negative disables, module knob overrides the
// platform default.
func TestPathTraceKnobs(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.TraceEvery = -1 // platform-wide off
	offAddr := packet.MustParseIP("198.51.100.1")
	onAddr := packet.MustParseIP("198.51.100.2")
	if err := p.Register(ModuleSpec{Addr: offAddr, Config: passthrough}); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(ModuleSpec{Addr: onAddr, Config: passthrough, TraceEvery: 1}); err != nil {
		t.Fatal(err)
	}
	out := func(int, *packet.Packet) {}
	for i := 0; i < 2; i++ {
		p.Deliver(udp("198.51.100.1"), out)
		p.Deliver(udp("198.51.100.2"), out)
		sim.Run()
	}
	if got := p.PathTraces(offAddr, 0); len(got) != 0 {
		t.Fatalf("disabled module captured %d traces", len(got))
	}
	if got := p.PathTraces(onAddr, 0); len(got) != 2 {
		t.Fatalf("opted-in module captured %d traces, want 2", len(got))
	}
}

// TestPathRingSurvivesVMChurn: traces captured before a crash are
// still readable after the respawned guest captures more.
func TestPathRingSurvivesVMChurn(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.TraceEvery = 1
	rec := telemetry.NewRecorder(16)
	p.Rec = rec
	addr := packet.MustParseIP("198.51.100.77")
	if err := p.Register(ModuleSpec{Addr: addr, Config: statefulChain}); err != nil {
		t.Fatal(err)
	}
	out := func(int, *packet.Packet) {}
	p.Deliver(udp("198.51.100.77"), out)
	sim.Run()
	if !p.CrashVM(addr) {
		t.Fatal("no VM to crash")
	}
	sim.Run() // respawn fires
	p.Deliver(udp("198.51.100.77"), out)
	sim.Run()
	if got := len(p.PathTraces(addr, 0)); got != 2 {
		t.Fatalf("got %d traces across the crash, want 2", got)
	}
	// The flight recorder saw the crash and the respawn, in order.
	var crashSeq, respawnSeq uint64
	for _, ev := range rec.Recent(0) {
		switch ev.Type {
		case "vm-crash":
			crashSeq = ev.Seq
			if ev.Detail != "crash" || ev.Ref != "198.51.100.77" {
				t.Fatalf("crash event wrong: %+v", ev)
			}
		case "vm-respawn":
			respawnSeq = ev.Seq
		}
	}
	if crashSeq == 0 || respawnSeq == 0 || respawnSeq < crashSeq {
		t.Fatalf("event order: crash=%d respawn=%d", crashSeq, respawnSeq)
	}
}

// TestPlatformDropAttribution wires the platform into a Drops hub and
// checks pipeline filter drops and platform datapath drops both show
// up under their sites.
func TestPlatformDropAttribution(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	d := telemetry.NewDrops()
	p.RegisterDrops(d, nil)
	rec := telemetry.NewRecorder(16)
	p.Rec = rec
	addr := packet.MustParseIP("198.51.100.77")
	if err := p.Register(ModuleSpec{Addr: addr, Config: statefulChain}); err != nil {
		t.Fatal(err)
	}
	out := func(int, *packet.Packet) {}
	// RateLimiter(3) admits 3, then drops with reason "filter".
	for i := 0; i < 5; i++ {
		p.Deliver(udp("198.51.100.77"), out)
		sim.Run()
	}
	// And one packet for nobody at all.
	p.Deliver(udp("203.0.113.9"), out)
	sim.Run()
	snap := d.Snapshot()
	filtered := snap["pipeline"]["filter"]
	if filtered < 1 {
		t.Fatalf("pipeline/filter drops = %d, want >=1 (snapshot %v)", filtered, snap)
	}
	if got := snap["platform"]["no_module"]; got != 1 {
		t.Fatalf("platform/no_module drops = %d, want 1", got)
	}
	if by := p.PipelineDrops(); by[pipeline.DropFilter] != filtered {
		t.Fatalf("PipelineDrops = %v, hub saw %d", by, filtered)
	}
	// Retirement keeps the per-reason sums monotonic across a crash.
	p.CrashVM(addr)
	if by := p.PipelineDrops(); by[pipeline.DropFilter] != filtered {
		t.Fatalf("PipelineDrops after crash = %v, want %d", by, filtered)
	}
}
