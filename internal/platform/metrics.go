package platform

import (
	"sync"

	"github.com/in-net/innet/internal/telemetry"
)

// RegisterMetrics folds the platform's VM-lifecycle and drop counters
// into a telemetry registry under the innet_platform_* families,
// labeled with the platform name. The Platform itself is not
// goroutine-safe (it is driven single-threaded by its simulator), so
// the caller supplies the lock that guards it — every callback reads
// under that lock at scrape time; nothing is added to the packet
// path. lock may be nil when the platform is only touched by the
// scraping goroutine (tests).
func (p *Platform) RegisterMetrics(r *telemetry.Registry, name string, lock sync.Locker) {
	if r == nil {
		return
	}
	read := func(f func() float64) func() float64 {
		if lock == nil {
			return f
		}
		return func() float64 {
			lock.Lock()
			defer lock.Unlock()
			return f()
		}
	}
	counters := []struct {
		suffix string
		help   string
		v      *uint64
	}{
		{"boots", "Guest VMs booted.", &p.Boots},
		{"suspends", "Guest VMs suspended.", &p.Suspends},
		{"resumes", "Guest VMs resumed.", &p.Resumes},
		{"destroys", "Guest VMs destroyed.", &p.Destroys},
		{"crashes", "Guest VM crashes (injected or organic).", &p.Crashes},
		{"boot_failures", "Guest boots that failed at the end of the boot window.", &p.BootFailures},
		{"respawns", "Crashed guests re-instantiated by the backoff respawner.", &p.Respawns},
		{"outages", "Whole-platform outages.", &p.Outages},
		{"evictions", "Idle guests evicted under memory pressure.", &p.Evictions},
		{"checkpoints", "Suspend images recorded for stateful modules.", &p.Checkpoints},
		{"restores", "Module state restores from a checkpoint.", &p.Restores},
	}
	for _, c := range counters {
		v := c.v
		r.CounterFunc("innet_platform_"+c.suffix+"_total", c.help,
			read(func() float64 { return float64(*v) }), "platform", name)
	}
	drops := []struct {
		reason string
		v      *uint64
	}{
		{"no_module", &p.DroppedNoModule},
		{"no_memory", &p.DroppedNoMemory},
		{"buffer_full", &p.DroppedBufferFull},
		{"timeout", &p.DroppedTimeout},
		{"down", &p.DroppedDown},
		{"in_flight", &p.DroppedInFlight},
	}
	for _, d := range drops {
		v := d.v
		r.CounterFunc("innet_platform_dropped_total",
			"Packets dropped by the platform datapath, by reason.",
			read(func() float64 { return float64(*v) }), "platform", name, "reason", d.reason)
	}
	// Compiled-pipeline work on this platform's simulated dataplane.
	// Same families as Engine.RegisterMetrics, labeled by platform
	// instead of worker; sums stay monotonic across VM destroys.
	pipeCounters := []struct {
		suffix string
		help   string
		pick   func(pk, ba, dr uint64) uint64
	}{
		{"packets", "Packets run to completion by a pipeline worker.",
			func(pk, _, _ uint64) uint64 { return pk }},
		{"batches", "Batches run to completion by a pipeline worker.",
			func(_, ba, _ uint64) uint64 { return ba }},
		{"drops", "Packets dropped inside a pipeline worker's program.",
			func(_, _, dr uint64) uint64 { return dr }},
	}
	for _, c := range pipeCounters {
		pick := c.pick
		r.CounterFunc("innet_pipeline_"+c.suffix+"_total", c.help,
			read(func() float64 { return float64(pick(p.PipelineCounters())) }), "platform", name)
	}
	r.GaugeFunc("innet_platform_resident_vms", "Instantiated guest VMs.",
		read(func() float64 { return float64(p.ResidentVMs()) }), "platform", name)
	r.GaugeFunc("innet_platform_registered_modules", "Registered module specs.",
		read(func() float64 { return float64(p.RegisteredModules()) }), "platform", name)
	r.GaugeFunc("innet_platform_mem_used_mb", "Memory held by resident guests, MB.",
		read(func() float64 { return float64(p.MemUsedMB) }), "platform", name)
	r.GaugeFunc("innet_platform_pending_buffered", "Packets parked in boot buffers and orphan queues.",
		read(func() float64 { return float64(p.PendingBuffered()) }), "platform", name)
	r.GaugeFunc("innet_platform_down", "1 while the platform is in an outage, else 0.",
		read(func() float64 {
			if p.Down() {
				return 1
			}
			return 0
		}), "platform", name)
}
