package platform

import (
	"testing"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
)

const passthrough = `
in :: FromNetfront();
f :: IPFilter(allow all);
out :: ToNetfront();
in -> f -> out;
`

func newPlatform(sim *netsim.Sim) *Platform {
	return New(sim, DefaultModel(), 16*1024)
}

func udp(dst string) *packet.Packet {
	return &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("8.8.8.8"),
		DstIP:    packet.MustParseIP(dst),
		SrcPort:  1000, DstPort: 1500, TTL: 64,
		Payload: make([]byte, 100),
	}
}

func TestOnTheFlyBoot(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := "198.51.100.10"
	if err := p.Register(ModuleSpec{Addr: packet.MustParseIP(addr), Config: passthrough}); err != nil {
		t.Fatal(err)
	}
	if p.ResidentVMs() != 0 {
		t.Fatal("VM instantiated before traffic")
	}
	var outAt []netsim.Time
	out := func(iface int, pk *packet.Packet) { outAt = append(outAt, sim.Now()) }
	p.Deliver(udp(addr), out)
	if p.ResidentVMs() != 1 {
		t.Fatal("first packet did not trigger instantiation")
	}
	sim.Run()
	if len(outAt) != 1 {
		t.Fatalf("outputs = %d", len(outAt))
	}
	boot := DefaultModel().BootLatency(ClickOS, 0)
	if outAt[0] < boot {
		t.Errorf("first packet exited at %v, before boot (%v)", outAt[0], boot)
	}
	if outAt[0] > boot+netsim.Millisecond {
		t.Errorf("first packet exited at %v, far beyond boot (%v)", outAt[0], boot)
	}

	// A second packet is processed without boot latency.
	prev := sim.Now()
	p.Deliver(udp(addr), out)
	sim.Run()
	if len(outAt) != 2 {
		t.Fatalf("outputs = %d", len(outAt))
	}
	if d := outAt[1] - prev; d > netsim.Millis(1) {
		t.Errorf("warm packet latency = %v", d)
	}
}

func TestBootLatencyGrowsWithResidentVMs(t *testing.T) {
	m := DefaultModel()
	if m.BootLatency(ClickOS, 100) <= m.BootLatency(ClickOS, 0) {
		t.Error("boot latency must grow")
	}
	if m.BootLatency(LinuxVM, 0) < 10*m.BootLatency(ClickOS, 0) {
		t.Error("linux boot should be an order of magnitude slower (§6)")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.Deliver(udp("203.0.113.1"), func(int, *packet.Packet) { t.Fatal("no module should emit") })
	sim.Run()
	if p.DroppedNoModule != 1 {
		t.Errorf("DroppedNoModule = %d", p.DroppedNoModule)
	}
}

func TestMemoryLimit(t *testing.T) {
	sim := netsim.New(1)
	p := New(sim, DefaultModel(), 1024) // 1 GB: two 512 MB Linux VMs
	for i := 0; i < 3; i++ {
		addr := packet.MustParseIP("198.51.100.10") + uint32(i)
		if err := p.Register(ModuleSpec{Addr: addr, Config: passthrough, Kind: LinuxVM}); err != nil {
			t.Fatal(err)
		}
		pk := udp("198.51.100.10")
		pk.DstIP = addr
		p.Deliver(pk, func(int, *packet.Packet) {})
	}
	sim.Run()
	if p.ResidentVMs() != 2 {
		t.Errorf("resident = %d want 2", p.ResidentVMs())
	}
	if p.DroppedNoMemory != 1 {
		t.Errorf("DroppedNoMemory = %d", p.DroppedNoMemory)
	}
	// ClickOS fits ~128 VMs in the same GB.
	sim2 := netsim.New(1)
	p2 := New(sim2, DefaultModel(), 1024)
	for i := 0; i < 100; i++ {
		addr := packet.MustParseIP("198.51.101.1") + uint32(i)
		p2.Register(ModuleSpec{Addr: addr, Config: passthrough})
		pk := udp("198.51.101.1")
		pk.DstIP = addr
		p2.Deliver(pk, func(int, *packet.Packet) {})
	}
	sim2.Run()
	if p2.ResidentVMs() != 100 {
		t.Errorf("clickos resident = %d", p2.ResidentVMs())
	}
}

func TestConsolidation(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.Consolidate = true
	p.ConsolidatePerVM = 50
	for i := 0; i < 120; i++ {
		addr := packet.MustParseIP("198.51.100.1") + uint32(i)
		if err := p.Register(ModuleSpec{Addr: addr, Config: passthrough}); err != nil {
			t.Fatal(err)
		}
		pk := udp("198.51.100.1")
		pk.DstIP = addr
		p.Deliver(pk, func(int, *packet.Packet) {})
		sim.Run()
	}
	// 120 configs at 50 per VM -> 3 VMs.
	if p.ResidentVMs() != 3 {
		t.Errorf("resident = %d want 3", p.ResidentVMs())
	}
	if p.Boots != 3 {
		t.Errorf("boots = %d want 3", p.Boots)
	}
}

func TestStatefulNotConsolidated(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	p.Consolidate = true
	a1 := packet.MustParseIP("198.51.100.1")
	a2 := packet.MustParseIP("198.51.100.2")
	p.Register(ModuleSpec{Addr: a1, Config: passthrough, Stateful: true})
	p.Register(ModuleSpec{Addr: a2, Config: passthrough, Stateful: true})
	pk1 := udp("198.51.100.1")
	pk2 := udp("198.51.100.2")
	p.Deliver(pk1, func(int, *packet.Packet) {})
	sim.Run()
	p.Deliver(pk2, func(int, *packet.Packet) {})
	sim.Run()
	if p.ResidentVMs() != 2 {
		t.Errorf("stateful modules share a VM: %d", p.ResidentVMs())
	}
}

func TestSuspendResume(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough, Stateful: true})
	got := 0
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	sim.Run()
	vm := p.VMFor(addr)
	if vm == nil || vm.State != VMRunning {
		t.Fatal("vm not running")
	}
	d := p.Suspend(vm)
	if d <= 0 {
		t.Fatal("suspend latency")
	}
	sim.Run()
	if vm.State != VMSuspended {
		t.Fatalf("state = %v", vm.State)
	}
	// Traffic to a suspended VM resumes it and is then processed.
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) { got++ })
	sim.Run()
	if got != 2 {
		t.Errorf("outputs = %d", got)
	}
	if vm.State != VMRunning {
		t.Errorf("state after resume = %v", vm.State)
	}
	if p.Suspends != 1 || p.Resumes != 1 {
		t.Errorf("suspends=%d resumes=%d", p.Suspends, p.Resumes)
	}
}

func TestReclaimIdle(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	stateless := packet.MustParseIP("198.51.100.10")
	stateful := packet.MustParseIP("198.51.100.11")
	p.Register(ModuleSpec{Addr: stateless, Config: passthrough})
	p.Register(ModuleSpec{Addr: stateful, Config: passthrough, Stateful: true})
	pk := udp("198.51.100.10")
	p.Deliver(pk, func(int, *packet.Packet) {})
	pk2 := udp("198.51.100.11")
	p.Deliver(pk2, func(int, *packet.Packet) {})
	sim.Run()
	if p.ResidentVMs() != 2 {
		t.Fatalf("resident = %d", p.ResidentVMs())
	}
	sim.RunUntil(sim.Now() + netsim.Seconds(60))
	n := p.ReclaimIdle(netsim.Seconds(30))
	sim.Run()
	if n != 2 {
		t.Errorf("reclaimed = %d", n)
	}
	// Stateless destroyed, stateful suspended.
	if p.VMFor(stateless) != nil {
		t.Error("stateless VM not destroyed")
	}
	vm := p.VMFor(stateful)
	if vm == nil || vm.State != VMSuspended {
		t.Error("stateful VM not suspended")
	}
	if p.Destroys != 1 {
		t.Errorf("destroys = %d", p.Destroys)
	}
	// Destroyed module boots again on demand.
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	if p.VMFor(stateless) == nil {
		t.Error("module did not reboot")
	}
}

func TestUnregister(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	p.Unregister(addr)
	if p.RegisteredModules() != 0 || p.ResidentVMs() != 0 {
		t.Error("unregister did not clean up")
	}
	p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {})
	sim.Run()
	if p.DroppedNoModule != 1 {
		t.Error("traffic after unregister not dropped")
	}
}

func TestRegisterErrors(t *testing.T) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	if err := p.Register(ModuleSpec{Addr: addr, Config: "::bad::"}); err == nil {
		t.Error("bad config accepted")
	}
	if err := p.Register(ModuleSpec{Addr: addr, Config: passthrough}); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(ModuleSpec{Addr: addr, Config: passthrough}); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestTimedModuleBatches(t *testing.T) {
	// A batcher module inside a VM releases packets on its interval,
	// driven by the platform's ticker scheduling.
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	err := p.Register(ModuleSpec{Addr: addr, Config: `
in :: FromNetfront();
tu :: TimedUnqueue(2, 100);
out :: ToNetfront();
in -> tu -> out;
`, Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	var outAt []netsim.Time
	for i := 0; i < 3; i++ {
		p.Deliver(udp("198.51.100.10"), func(int, *packet.Packet) {
			outAt = append(outAt, sim.Now())
		})
	}
	sim.Run()
	if len(outAt) != 3 {
		t.Fatalf("outputs = %d", len(outAt))
	}
	// Batched release is >= 2 s after the packets entered.
	if outAt[0] < netsim.Seconds(2) {
		t.Errorf("batch released at %v", outAt[0])
	}
}

func TestSourceModuleBootsEagerlyAndTicks(t *testing.T) {
	// A keepalive generator has no ingress: it must boot at Register
	// time and emit via the platform's Transmit hook. (Drive the
	// clock with RunUntil — a generator ticks forever.)
	sim := netsim.New(1)
	p := newPlatform(sim)
	var got []*packet.Packet
	p.Transmit = func(iface int, pk *packet.Packet) { got = append(got, pk) }
	addr := packet.MustParseIP("198.51.100.10")
	err := p.Register(ModuleSpec{Addr: addr, Config: `
src :: TimedSource(5);
snat :: SetIPSrc(198.51.100.10);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
src -> snat -> fwd -> out;
`, Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.ResidentVMs() != 1 {
		t.Fatal("source module did not boot eagerly")
	}
	sim.RunUntil(netsim.Seconds(21))
	if len(got) < 3 || len(got) > 5 {
		t.Fatalf("keepalives in 21s at 5s interval = %d", len(got))
	}
	if packet.IPString(got[0].SrcIP) != "198.51.100.10" {
		t.Errorf("keepalive src = %s", packet.IPString(got[0].SrcIP))
	}
	// Memory exhaustion at Register is reported.
	p2 := New(netsim.New(1), DefaultModel(), 4) // 4 MB < ClickOS footprint
	err = p2.Register(ModuleSpec{Addr: addr, Config: `
src :: TimedSource(5);
out :: ToNetfront();
src -> out;
`})
	if err == nil {
		t.Error("register accepted without memory")
	}
	if p2.RegisteredModules() != 0 {
		t.Error("failed register left the spec behind")
	}
}

func TestThroughputModelShapes(t *testing.T) {
	m := DefaultModel()
	// Fig. 8 shape: ~10 Gb/s up to ~150 consolidated configs, then a
	// decline.
	at24 := m.ThroughputBps(1, 24, 1500, 0)
	at252 := m.ThroughputBps(1, 252, 1500, 0)
	line := m.LineRatePPS(1500) * 1500 * 8
	if at24 < 0.99*line {
		t.Errorf("throughput at 24 configs = %.2f Gb/s, want line rate", at24/1e9)
	}
	if at252 >= at24 || at252 > 0.92*line || at252 < 0.7*line {
		t.Errorf("throughput at 252 configs = %.2f Gb/s, want a visible but moderate decline", at252/1e9)
	}
	// Fig. 12 spread: nat is the most expensive, flowmeter cheapest.
	nat := m.ThroughputBps(50, 1, 1500, ExtraCycles("nat"))
	fw := m.ThroughputBps(50, 1, 1500, ExtraCycles("firewall"))
	fm := m.ThroughputBps(50, 1, 1500, ExtraCycles("flowmeter"))
	if !(nat < fw && fw <= fm) {
		t.Errorf("ordering: nat %.2f fw %.2f fm %.2f", nat/1e9, fw/1e9, fm/1e9)
	}
	if nat < 7e9 {
		t.Errorf("nat throughput = %.2f Gb/s, too low for Fig. 12", nat/1e9)
	}
	// Line-rate cap respected for tiny packets.
	if got := m.ThroughputBps(1, 1, 64, 0); got > m.LineRateBps {
		t.Errorf("throughput exceeds line rate: %f", got)
	}
}

func TestSuspendResumeLatencyBand(t *testing.T) {
	// Fig. 7: 30-100 ms across 0-200 resident VMs.
	m := DefaultModel()
	for _, n := range []int{0, 50, 100, 200} {
		s := m.SuspendLatency(n)
		r := m.ResumeLatency(n)
		if s < netsim.Millis(25) || s > netsim.Millis(100) {
			t.Errorf("suspend(%d) = %v out of band", n, s)
		}
		if r < netsim.Millis(40) || r > netsim.Millis(110) {
			t.Errorf("resume(%d) = %v out of band", n, r)
		}
		if r <= s {
			t.Errorf("resume should cost more than suspend at %d VMs", n)
		}
	}
}

func BenchmarkDeliverWarm(b *testing.B) {
	sim := netsim.New(1)
	p := newPlatform(sim)
	addr := packet.MustParseIP("198.51.100.10")
	p.Register(ModuleSpec{Addr: addr, Config: passthrough})
	pk := udp("198.51.100.10")
	sink := func(int, *packet.Packet) {}
	p.Deliver(pk, sink)
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Deliver(pk, sink)
		sim.Run()
	}
}
