// Package platform simulates an In-Net processing platform (paper
// §5-§6): a Xen/ClickOS-style host that boots tiny VMs on the fly
// when traffic for a registered module arrives, suspends and resumes
// stateful modules, consolidates many stateless tenant configurations
// into one VM behind a demultiplexer, and processes packets with the
// real Click element graphs under a calibrated CPU cost model.
//
// The latency and cycle constants below are calibrated so the shapes
// of the paper's Figures 5-9 and 12 hold on this substrate (the
// absolute numbers came from Xen on an Intel Xeon E3-1220; see
// DESIGN.md for the substitution rationale).
package platform

import (
	"github.com/in-net/innet/internal/netsim"
)

// VMKind distinguishes the two guest types of §6.
type VMKind int

// Guest kinds.
const (
	// ClickOS is the MiniOS+Click unikernel (≈8 MB, ≈tens of ms boot).
	ClickOS VMKind = iota
	// LinuxVM is a stripped-down Linux guest (≈512 MB, ≈700 ms boot).
	LinuxVM
)

func (k VMKind) String() string {
	if k == LinuxVM {
		return "linux"
	}
	return "clickos"
}

// Model holds the calibrated platform constants.
type Model struct {
	// CyclesPerSec is the per-core CPU budget (3.1 GHz Xeon E3-1220).
	CyclesPerSec float64
	// LineRateBps is the NIC line rate (10 GbE).
	LineRateBps float64
	// FrameOverheadBytes is the per-frame on-wire overhead (Ethernet
	// header+CRC+IFG+preamble) counted against line rate.
	FrameOverheadBytes int

	// Per-packet CPU cost components (cycles).
	BaseCycles      float64 // switch + netfront + base element path
	PerByteCycles   float64 // payload touching (copy/checksum)
	PerConfigCycles float64 // consolidation demultiplexer, per config
	PerVMCycles     float64 // VM switching, per resident VM

	// Boot latency: base + perVM * residentVMs.
	ClickOSBootBase, ClickOSBootPerVM netsim.Time
	LinuxBootBase, LinuxBootPerVM     netsim.Time
	// Suspend/resume latency (Fig. 7).
	SuspendBase, SuspendPerVM netsim.Time
	ResumeBase, ResumePerVM   netsim.Time

	// Memory footprints (§6: 8 MB vs 512 MB).
	ClickOSMemMB, LinuxMemMB int
}

// DefaultModel returns constants calibrated against the paper's
// evaluation hardware (single-socket Xeon E3-1220, 4×3.1 GHz, 16 GB,
// 10 GbE, Xen 4.2).
func DefaultModel() Model {
	return Model{
		CyclesPerSec:       3.1e9,
		LineRateBps:        10e9,
		FrameOverheadBytes: 24,

		BaseCycles:      2050,
		PerByteCycles:   0.45,
		PerConfigCycles: 7,
		PerVMCycles:     8,

		ClickOSBootBase:  netsim.Millis(20),
		ClickOSBootPerVM: netsim.Millis(0.6),
		LinuxBootBase:    netsim.Millis(700),
		LinuxBootPerVM:   netsim.Millis(2),

		SuspendBase:  netsim.Millis(32),
		SuspendPerVM: netsim.Millis(0.12),
		ResumeBase:   netsim.Millis(45),
		ResumePerVM:  netsim.Millis(0.25),

		ClickOSMemMB: 8,
		LinuxMemMB:   512,
	}
}

// ExtraCycles returns the additional per-packet processing cost of a
// middlebox class relative to the stateless-firewall baseline
// (Fig. 12's nat / iprouter / firewall / flowmeter spread).
func ExtraCycles(class string) float64 {
	switch class {
	case "nat":
		return 1200
	case "iprouter":
		return 500
	case "firewall":
		return 0
	case "flowmeter":
		return -100
	default:
		return 0
	}
}

// BootLatency returns the boot time of a new VM with n already
// resident.
func (m Model) BootLatency(kind VMKind, residentVMs int) netsim.Time {
	if kind == LinuxVM {
		return m.LinuxBootBase + netsim.Time(residentVMs)*m.LinuxBootPerVM
	}
	return m.ClickOSBootBase + netsim.Time(residentVMs)*m.ClickOSBootPerVM
}

// SuspendLatency returns the time to suspend one VM with n resident
// (Fig. 7's x-axis).
func (m Model) SuspendLatency(residentVMs int) netsim.Time {
	return m.SuspendBase + netsim.Time(residentVMs)*m.SuspendPerVM
}

// ResumeLatency returns the time to resume one VM with n resident.
func (m Model) ResumeLatency(residentVMs int) netsim.Time {
	return m.ResumeBase + netsim.Time(residentVMs)*m.ResumePerVM
}

// MemMB returns a guest's memory footprint.
func (m Model) MemMB(kind VMKind) int {
	if kind == LinuxVM {
		return m.LinuxMemMB
	}
	return m.ClickOSMemMB
}

// PacketCycles returns the per-packet CPU cost of one core running
// nVMs VMs with nConfigs consolidated configurations each, for
// packets of pktBytes, with extraCycles of middlebox-specific work.
func (m Model) PacketCycles(nVMs, nConfigs, pktBytes int, extraCycles float64) float64 {
	return m.BaseCycles +
		m.PerByteCycles*float64(pktBytes) +
		m.PerConfigCycles*float64(nConfigs) +
		m.PerVMCycles*float64(nVMs) +
		extraCycles
}

// LineRatePPS returns the 10 GbE packet rate cap for a frame size.
func (m Model) LineRatePPS(pktBytes int) float64 {
	wire := float64(pktBytes+m.FrameOverheadBytes) * 8
	return m.LineRateBps / wire
}

// CPUBoundPPS returns the CPU-limited packet rate of one core.
func (m Model) CPUBoundPPS(nVMs, nConfigs, pktBytes int, extraCycles float64) float64 {
	return m.CyclesPerSec / m.PacketCycles(nVMs, nConfigs, pktBytes, extraCycles)
}

// ThroughputBps returns the achievable goodput (payload bits/s) of
// one core: the CPU-bound rate capped by line rate.
func (m Model) ThroughputBps(nVMs, nConfigs, pktBytes int, extraCycles float64) float64 {
	pps := m.CPUBoundPPS(nVMs, nConfigs, pktBytes, extraCycles)
	if lr := m.LineRatePPS(pktBytes); pps > lr {
		pps = lr
	}
	return pps * float64(pktBytes) * 8
}

// ProcessingLatency converts the per-packet cost into time, used by
// the discrete-event datapath.
func (m Model) ProcessingLatency(nVMs, nConfigs, pktBytes int, extraCycles float64) netsim.Time {
	cycles := m.PacketCycles(nVMs, nConfigs, pktBytes, extraCycles)
	return netsim.Time(cycles / m.CyclesPerSec * 1e9)
}
