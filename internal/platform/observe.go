package platform

import (
	"strconv"
	"sync"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
	"github.com/in-net/innet/internal/telemetry"
)

// record emits a flight-recorder event when a recorder is attached.
func (p *Platform) record(typ, detail, ref string) {
	if p.Rec != nil {
		p.Rec.Record(typ, "platform", detail, ref)
	}
}

// vmRef names a guest for flight-recorder events: the first hosted
// module address, falling back to the VM id for empty guests.
func vmRef(vm *VM) string {
	if len(vm.Specs) > 0 {
		return packet.IPString(vm.Specs[0].Addr)
	}
	return "vm-" + strconv.Itoa(vm.ID)
}

// traceEveryFor resolves a module's path-trace sampling rate: the spec
// knob wins over the platform default, 0 means
// telemetry.DefaultTraceEvery, and a negative value (at either level)
// disables tracing, reported here as 0.
func (p *Platform) traceEveryFor(spec *ModuleSpec) int {
	e := p.TraceEvery
	if spec != nil && spec.TraceEvery != 0 {
		e = spec.TraceEvery
	}
	if e == 0 {
		e = telemetry.DefaultTraceEvery
	}
	if e < 0 {
		return 0
	}
	return e
}

// pathRing returns (creating on first use) the module's trace ring.
// Rings are keyed by module address on the platform, not on the VM, so
// captured paths survive crash/respawn and eviction churn.
func (p *Platform) pathRing(addr uint32) *telemetry.PathRing {
	if p.pathRings == nil {
		p.pathRings = make(map[uint32]*telemetry.PathRing)
	}
	r := p.pathRings[addr]
	if r == nil {
		r = telemetry.NewPathRing(telemetry.DefaultPathRing, nil)
		p.pathRings[addr] = r
	}
	return r
}

// PathTraces returns the most recent sampled path traces captured for
// a module, newest first (nil if nothing was sampled yet).
func (p *Platform) PathTraces(addr uint32, n int) []telemetry.PathTrace {
	if r := p.pathRings[addr]; r != nil {
		return r.Recent(n)
	}
	return nil
}

// injectTraced runs one sampled packet through the graph-walk
// dataplane with a per-hop observer armed, then records the assembled
// trace. The interior hops come from Context.PathHook (fired when an
// element forwards); the terminal verdict is synthesized from the
// transmit/drop hooks since the egress element never calls Out.
func (p *Platform) injectTraced(r *click.Router, base *click.Context, pkt *packet.Packet, ring *telemetry.PathRing, hash uint64) {
	var hops []telemetry.PathHop
	curIn := 0
	done := false
	ctx := &click.Context{
		Now:  base.Now,
		Pool: base.Pool,
		PathHook: func(elem string, outPort, inPort int, pk *packet.Packet) {
			if pk != pkt || done {
				return // a Tee clone, or post-verdict ticker traffic
			}
			hops = append(hops, telemetry.PathHop{
				Elem: elem, InPort: curIn, OutPort: outPort,
				Verdict: "forward", FusedRun: -1,
			})
			curIn = inPort
		},
		Transmit: func(iface int, pk *packet.Packet) {
			if pk == pkt && !done {
				hops = append(hops, telemetry.PathHop{
					InPort: curIn, OutPort: -1,
					Verdict: "tx:" + strconv.Itoa(iface), FusedRun: -1,
				})
				done = true
			}
			if base.Transmit != nil {
				base.Transmit(iface, pk)
			}
		},
		DropHook: func(pk *packet.Packet) {
			if pk == pkt && !done {
				hops = append(hops, telemetry.PathHop{
					InPort: curIn, OutPort: -1,
					Verdict: "drop:" + pipeline.DropOther.String(), FusedRun: -1,
				})
				done = true
			}
			if base.DropHook != nil {
				base.DropHook(pk)
			}
		},
	}
	_ = r.Inject(ctx, 0, pkt)
	if !done {
		// No terminal hook fired: the packet is parked in a Queue (or
		// equivalent) awaiting a scheduled drain.
		hops = append(hops, telemetry.PathHop{
			InPort: curIn, OutPort: -1, Verdict: "queued", FusedRun: -1,
		})
	}
	ring.Put(telemetry.PathTrace{FlowHash: hash, Dataplane: "graph", Hops: hops})
}

// PipelineDrops sums the per-reason drop counters of every compiled
// program on the platform (live plus retired), indexed by
// pipeline.DropReason; monotonic like PipelineCounters.
func (p *Platform) PipelineDrops() [pipeline.NumDropReasons]uint64 {
	out := p.pipelineRetiredBy
	for _, vm := range p.vms {
		for _, x := range vm.progs {
			for i, n := range x.DropsBy {
				out[i] += n
			}
		}
	}
	return out
}

// RegisterDrops wires the platform's drop counters into the unified
// drop-attribution hub: datapath drops under site "platform" (same
// reason names as innet_platform_dropped_total) and compiled-program
// drops under site "pipeline" split by pipeline.DropReason. Reads
// happen at scrape time under the supplied lock (nil when the caller
// guarantees exclusion). Multiple platforms may register; the hub sums
// them into one series per (site, reason).
func (p *Platform) RegisterDrops(d *telemetry.Drops, lock sync.Locker) {
	if d == nil {
		return
	}
	read := func(f func() uint64) func() uint64 {
		if lock == nil {
			return f
		}
		return func() uint64 {
			lock.Lock()
			defer lock.Unlock()
			return f()
		}
	}
	sources := []struct {
		reason string
		v      *uint64
	}{
		{"no_module", &p.DroppedNoModule},
		{"no_memory", &p.DroppedNoMemory},
		{"buffer_full", &p.DroppedBufferFull},
		{"timeout", &p.DroppedTimeout},
		{"down", &p.DroppedDown},
		{"in_flight", &p.DroppedInFlight},
	}
	for _, s := range sources {
		v := s.v
		d.Source("platform", s.reason, read(func() uint64 { return *v }))
	}
	for i, name := range pipeline.DropReasonNames() {
		i := i
		d.Source("pipeline", name, read(func() uint64 { return p.PipelineDrops()[i] }))
	}
}
