package netsim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*Millisecond, func() { got = append(got, 3) })
	s.After(10*Millisecond, func() { got = append(got, 1) })
	s.After(20*Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("now = %d", s.Now())
	}
	if s.Executed != 3 {
		t.Errorf("executed = %d", s.Executed)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(Second, func() {
		s.After(Second, func() {
			fired++
			if s.Now() != 2*Second {
				t.Errorf("nested time = %d", s.Now())
			}
		})
	})
	s.Run()
	if fired != 1 {
		t.Error("nested event did not fire")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(Second, func() { fired++ })
	s.After(3*Second, func() { fired++ })
	s.RunUntil(2 * Second)
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
	if s.Now() != 2*Second {
		t.Errorf("now = %d", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Error("remaining event lost")
	}
}

func TestPastEventClamped(t *testing.T) {
	s := New(1)
	s.After(Second, func() {
		s.At(0, func() {
			if s.Now() != Second {
				t.Errorf("past event ran at %d", s.Now())
			}
		})
	})
	s.Run()
}

func TestLinkLatencyAndSerialization(t *testing.T) {
	s := New(1)
	// 1 ms latency, 8 Mbit/s -> 1000-byte packet takes 1 ms to
	// serialize.
	l := NewLink(s, Millisecond, 8e6, 0)
	var arrivals []Time
	l.Send(1000, func() { arrivals = append(arrivals, s.Now()) })
	l.Send(1000, func() { arrivals = append(arrivals, s.Now()) })
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 2*Millisecond {
		t.Errorf("first arrival = %d want 2ms", arrivals[0])
	}
	// The second packet queues behind the first: 2 ms serialization +
	// 1 ms latency.
	if arrivals[1] != 3*Millisecond {
		t.Errorf("second arrival = %d want 3ms", arrivals[1])
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	s := New(1)
	l := NewLink(s, Millisecond, 0, 0)
	var at Time = -1
	l.Send(1_000_000, func() { at = s.Now() })
	s.Run()
	if at != Millisecond {
		t.Errorf("arrival = %d", at)
	}
}

func TestLinkLoss(t *testing.T) {
	s := New(42)
	l := NewLink(s, 0, 0, 0.5)
	delivered := 0
	for i := 0; i < 1000; i++ {
		l.Send(100, func() { delivered++ })
	}
	s.Run()
	if l.Sent != 1000 {
		t.Errorf("sent = %d", l.Sent)
	}
	if delivered < 400 || delivered > 600 {
		t.Errorf("delivered = %d, loss far from 50%%", delivered)
	}
	if int(l.Lost)+delivered != 1000 {
		t.Errorf("lost+delivered = %d", int(l.Lost)+delivered)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(7)
		l := NewLink(s, Millisecond, 1e6, 0.3)
		var out []Time
		for i := 0; i < 50; i++ {
			l.Send(500, func() { out = append(out, s.Now()) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic delivery times")
		}
	}
}

func TestFluidTransfer(t *testing.T) {
	// Large transfer at 25 Mb/s: dominated by size/rate.
	size := int64(50 << 20)
	got := FluidTransfer(size, 20*Millisecond, 25e6)
	ideal := Time(float64(size*8) / 25e6 * 1e9)
	if got < ideal || got > ideal+Second {
		t.Errorf("transfer = %v ideal %v", got, ideal)
	}
	// Small transfer: slow-start rounds dominate.
	small := FluidTransfer(100_000, 100*Millisecond, 1e9)
	if small < 100*Millisecond || small > 2*Second {
		t.Errorf("small transfer = %v", small)
	}
	if FluidTransfer(0, Millisecond, 1e6) != 0 {
		t.Error("zero-size transfer")
	}
	// Monotone in size.
	if FluidTransfer(1<<20, 20*Millisecond, 10e6) >= FluidTransfer(10<<20, 20*Millisecond, 10e6) {
		t.Error("not monotone in size")
	}
}

func TestLinkUtilization(t *testing.T) {
	s := New(1)
	l := NewLink(s, 0, 8e6, 0) // 1000 B takes 1 ms
	if l.Utilization() != 0 {
		t.Error("fresh link busy")
	}
	l.Send(1000, func() {})
	s.RunUntil(2 * Millisecond)
	u := l.Utilization()
	if u < 0.4 || u > 0.6 {
		t.Errorf("utilization = %f, want ≈0.5 (1 ms busy of 2 ms)", u)
	}
}

func TestSecondsMillis(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Error("Seconds")
	}
	if Millis(2.5) != 2500*Microsecond {
		t.Error("Millis")
	}
}

func BenchmarkEventLoop(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(Millisecond, func() {})
		if s.Pending() > 1024 {
			s.Run()
		}
	}
	s.Run()
}
