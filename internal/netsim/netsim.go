// Package netsim is a deterministic discrete-event network simulator.
// It stands in for the paper's physical testbeds (the lab machines of
// §6 and the wide-area deployment of §8): virtual time, an event
// heap, links with latency/bandwidth/loss, and a handful of transport
// helpers. Everything is seeded and single-threaded, so experiment
// harnesses are reproducible run to run.
package netsim

import (
	"container/heap"
	"math/rand"
)

// Time is virtual time in nanoseconds since simulation start.
type Time = int64

// Convenient time constructors.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Seconds converts (possibly fractional) seconds to Time.
func Seconds(s float64) Time { return Time(s * 1e9) }

// Millis converts milliseconds to Time.
func Millis(ms float64) Time { return Time(ms * 1e6) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is one simulation instance. Not safe for concurrent use — the
// simulated world is single-threaded by construction.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	// Executed counts dispatched events.
	Executed uint64
}

// New returns a simulator with a deterministic RNG.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation RNG.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after delay d.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run dispatches events until none remain.
func (s *Sim) Run() {
	for len(s.events) > 0 {
		s.step()
	}
}

// RunUntil dispatches events with timestamps <= t, then sets now = t.
func (s *Sim) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

func (s *Sim) step() {
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.Executed++
	e.fn()
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// Link models a serializing link: fixed propagation latency, a
// transmission rate, and optional random loss. Deliveries preserve
// FIFO order; back-to-back sends queue behind each other exactly as
// on a real wire.
type Link struct {
	sim *Sim
	// Latency is the propagation delay.
	Latency Time
	// RateBps is the transmission rate in bits/s (0 = infinite).
	RateBps float64
	// Loss is the packet loss probability in [0, 1).
	Loss float64

	nextFree Time
	// Sent and Lost count packets.
	Sent, Lost uint64
}

// NewLink attaches a link to a simulator.
func NewLink(sim *Sim, latency Time, rateBps float64, loss float64) *Link {
	return &Link{sim: sim, Latency: latency, RateBps: rateBps, Loss: loss}
}

// Send transmits size bytes; deliver runs at arrival time unless the
// packet is lost. Send returns the (virtual) departure completion
// time.
func (l *Link) Send(size int, deliver func()) Time {
	start := l.sim.Now()
	if l.nextFree > start {
		start = l.nextFree
	}
	var txTime Time
	if l.RateBps > 0 {
		txTime = Time(float64(size*8) / l.RateBps * 1e9)
	}
	done := start + txTime
	l.nextFree = done
	l.Sent++
	if l.Loss > 0 && l.sim.rng.Float64() < l.Loss {
		l.Lost++
		return done
	}
	arrive := done + l.Latency
	l.sim.At(arrive, deliver)
	return done
}

// Utilization returns the fraction of time the link has been busy up
// to now (approximate: transmission backlog vs elapsed).
func (l *Link) Utilization() float64 {
	if l.sim.now == 0 {
		return 0
	}
	busy := l.nextFree
	if busy > l.sim.now {
		busy = l.sim.now
	}
	return float64(busy) / float64(l.sim.now)
}

// FluidTransfer estimates the completion time of a TCP-like bulk
// transfer of size bytes over a path with the given RTT and
// bottleneck rate, including a slow-start ramp (initial window 10
// segments of 1460 B, doubling per RTT until the bandwidth-delay
// product is reached). It is the fluid model used by the HTTP-heavy
// experiments where per-packet simulation adds nothing.
func FluidTransfer(size int64, rtt Time, bottleneckBps float64) Time {
	if size <= 0 {
		return 0
	}
	const mss = 1460
	// Slow start: rounds of cwnd segments until the pipe is full.
	cwnd := int64(10)
	bdpSegs := int64(bottleneckBps*float64(rtt)/1e9/8/mss) + 1
	var elapsed Time
	var sent int64
	for sent < size && cwnd < bdpSegs {
		elapsed += rtt
		sent += cwnd * mss
		cwnd *= 2
	}
	if sent >= size {
		return elapsed
	}
	rest := size - sent
	elapsed += Time(float64(rest*8) / bottleneckBps * 1e9)
	return elapsed
}
