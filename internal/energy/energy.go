// Package energy models a 3G handset's radio energy (paper Fig. 13
// and the HTTP-vs-HTTPS measurement of §8). The radio is an RRC
// state machine — DCH (high power) while transferring, a DCH tail, a
// FACH tail, then idle — so delivering push notifications in batches
// amortizes the expensive tails, which is exactly the saving the
// In-Net batcher module buys (§4.5).
//
// Constants are calibrated against the paper's Monsoon measurements
// of a Samsung Galaxy Nexus: ≈240 mW average at a 30 s notification
// interval falling to ≈140 mW at 240 s, and 570 mW (HTTP) vs 650 mW
// (HTTPS) during an 8 Mb/s WiFi download.
package energy

import (
	"sort"

	"github.com/in-net/innet/internal/netsim"
)

// RadioModel holds the RRC power/timer constants.
type RadioModel struct {
	// DCHPowerMW is the power in the DCH (dedicated channel) state.
	DCHPowerMW float64
	// FACHPowerMW is the power in the FACH (shared channel) state.
	FACHPowerMW float64
	// IdlePowerMW is the device baseline with the radio idle.
	IdlePowerMW float64
	// DCHTail is how long the radio lingers in DCH after the last
	// packet; FACHTail how long it then lingers in FACH.
	DCHTail  netsim.Time
	FACHTail netsim.Time
}

// DefaultRadio returns constants calibrated to the paper's handset.
func DefaultRadio() RadioModel {
	return RadioModel{
		DCHPowerMW:  570,
		FACHPowerMW: 360,
		IdlePowerMW: 120,
		DCHTail:     netsim.Seconds(4),
		FACHTail:    netsim.Seconds(8),
	}
}

// AveragePowerMW computes the average power over [0, horizon] given
// packet arrival times. Each arrival (or burst of arrivals) holds the
// radio in DCH for the DCH tail, then FACH for the FACH tail, then
// idle. Arrivals inside a tail extend it (timers restart).
func (m RadioModel) AveragePowerMW(arrivals []netsim.Time, horizon netsim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	ts := append([]netsim.Time(nil), arrivals...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })

	energyMJ := 0.0 // mW * s = mJ
	cursor := netsim.Time(0)
	// dchUntil/fachUntil track tail expiry as arrivals extend them.
	var dchUntil, fachUntil netsim.Time
	account := func(until netsim.Time) {
		if until > horizon {
			until = horizon
		}
		for cursor < until {
			var p float64
			var segEnd netsim.Time
			switch {
			case cursor < dchUntil:
				p = m.DCHPowerMW
				segEnd = min64(dchUntil, until)
			case cursor < fachUntil:
				p = m.FACHPowerMW
				segEnd = min64(fachUntil, until)
			default:
				p = m.IdlePowerMW
				segEnd = until
			}
			energyMJ += p * float64(segEnd-cursor) / 1e9
			cursor = segEnd
		}
	}
	for _, t := range ts {
		if t > horizon {
			break
		}
		account(t)
		if t+m.DCHTail > dchUntil {
			dchUntil = t + m.DCHTail
		}
		if dchUntil+m.FACHTail > fachUntil {
			fachUntil = dchUntil + m.FACHTail
		}
	}
	account(horizon)
	return energyMJ / (float64(horizon) / 1e9)
}

// BatchedArrivals builds the arrival times seen by a handset when
// notifications generated every genInterval are released in batches
// every batchInterval over the horizon (the Fig. 13 workload: one
// 1 KB message every 30 s, batched at 30/60/120/240 s).
func BatchedArrivals(genInterval, batchInterval, horizon netsim.Time) []netsim.Time {
	var out []netsim.Time
	for t := batchInterval; t <= horizon; t += batchInterval {
		// Any notifications generated in (t-batchInterval, t] arrive
		// together at t.
		generated := false
		for g := genInterval; g <= horizon; g += genInterval {
			if g > t-batchInterval && g <= t {
				generated = true
				break
			}
		}
		if generated {
			out = append(out, t)
		}
	}
	return out
}

// DownloadModel covers the §8 HTTP-vs-HTTPS measurement: a WiFi bulk
// download's average power, with TLS adding CPU decryption cost.
type DownloadModel struct {
	// BasePowerMW is screen+system power during the download.
	BasePowerMW float64
	// WiFiPowerPerMbps is the radio cost per Mb/s of goodput.
	WiFiPowerPerMbps float64
	// TLSPowerPerMbps is the extra CPU cost of decryption per Mb/s.
	TLSPowerPerMbps float64
}

// DefaultDownload returns constants calibrated to the paper's
// 8 Mb/s WiFi download: 570 mW plain, 650 mW TLS (+15%, §8).
func DefaultDownload() DownloadModel {
	return DownloadModel{
		BasePowerMW:      410,
		WiFiPowerPerMbps: 20,
		TLSPowerPerMbps:  10,
	}
}

// AveragePowerMW returns the device's average power while downloading
// at rateMbps, optionally over TLS.
func (m DownloadModel) AveragePowerMW(rateMbps float64, tls bool) float64 {
	p := m.BasePowerMW + m.WiFiPowerPerMbps*rateMbps
	if tls {
		p += m.TLSPowerPerMbps * rateMbps
	}
	return p
}

func min64(a, b netsim.Time) netsim.Time {
	if a < b {
		return a
	}
	return b
}
