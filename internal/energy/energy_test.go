package energy

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
)

func TestIdleOnlyPower(t *testing.T) {
	m := DefaultRadio()
	got := m.AveragePowerMW(nil, netsim.Seconds(100))
	if got != m.IdlePowerMW {
		t.Errorf("idle power = %f", got)
	}
}

func TestSingleArrivalTails(t *testing.T) {
	m := RadioModel{
		DCHPowerMW: 600, FACHPowerMW: 300, IdlePowerMW: 100,
		DCHTail: netsim.Seconds(4), FACHTail: netsim.Seconds(8),
	}
	// One packet at t=0, horizon 100 s:
	// 4 s DCH + 8 s FACH + 88 s idle.
	want := (600*4 + 300*8 + 100*88) / 100.0
	got := m.AveragePowerMW([]netsim.Time{0}, netsim.Seconds(100))
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("avg = %f want %f", got, want)
	}
}

func TestArrivalsInsideTailExtendIt(t *testing.T) {
	m := DefaultRadio()
	// Two packets 1 s apart vs 1 packet: the second keeps the radio
	// in DCH, so the average must be higher but far less than double.
	one := m.AveragePowerMW([]netsim.Time{0}, netsim.Seconds(60))
	two := m.AveragePowerMW([]netsim.Time{0, netsim.Seconds(1)}, netsim.Seconds(60))
	if two <= one {
		t.Errorf("second arrival did not extend the tail: %f vs %f", two, one)
	}
	separate := m.AveragePowerMW([]netsim.Time{0, netsim.Seconds(30)}, netsim.Seconds(60))
	if separate <= two {
		t.Errorf("separated arrivals should cost more than back-to-back: %f vs %f", separate, two)
	}
}

func TestFig13Shape(t *testing.T) {
	// Batching push notifications (generated every 30 s) at larger
	// intervals must monotonically reduce average power, from ≈240 mW
	// at 30 s to ≈140 mW at 240 s (paper Fig. 13).
	m := DefaultRadio()
	horizon := netsim.Seconds(3600)
	var prev float64 = 1e9
	vals := map[int]float64{}
	for _, interval := range []int{30, 60, 120, 240} {
		arr := BatchedArrivals(netsim.Seconds(30), netsim.Seconds(float64(interval)), horizon)
		avg := m.AveragePowerMW(arr, horizon)
		vals[interval] = avg
		if avg >= prev {
			t.Errorf("batching %d s did not reduce power: %f >= %f", interval, avg, prev)
		}
		prev = avg
	}
	if vals[30] < 220 || vals[30] > 260 {
		t.Errorf("30 s average = %f, paper ≈240 mW", vals[30])
	}
	if vals[240] < 120 || vals[240] > 160 {
		t.Errorf("240 s average = %f, paper ≈140 mW", vals[240])
	}
}

func TestBatchedArrivals(t *testing.T) {
	// Generation every 30 s, batching every 60 s, horizon 300 s:
	// batches at 60,120,180,240,300.
	got := BatchedArrivals(netsim.Seconds(30), netsim.Seconds(60), netsim.Seconds(300))
	if len(got) != 5 {
		t.Fatalf("batches = %d (%v)", len(got), got)
	}
	if got[0] != netsim.Seconds(60) || got[4] != netsim.Seconds(300) {
		t.Errorf("batch times = %v", got)
	}
	// Batching slower than generation: every batch slot has data.
	same := BatchedArrivals(netsim.Seconds(30), netsim.Seconds(30), netsim.Seconds(120))
	if len(same) != 4 {
		t.Errorf("unbatched arrivals = %d", len(same))
	}
	// Generation slower than batching: empty slots are skipped.
	sparse := BatchedArrivals(netsim.Seconds(100), netsim.Seconds(30), netsim.Seconds(300))
	if len(sparse) != 3 {
		t.Errorf("sparse batches = %v", sparse)
	}
}

func TestZeroHorizon(t *testing.T) {
	if DefaultRadio().AveragePowerMW([]netsim.Time{0}, 0) != 0 {
		t.Error("zero horizon")
	}
}

func TestArrivalsBeyondHorizonIgnored(t *testing.T) {
	m := DefaultRadio()
	a := m.AveragePowerMW([]netsim.Time{netsim.Seconds(200)}, netsim.Seconds(100))
	if a != m.IdlePowerMW {
		t.Errorf("future arrival counted: %f", a)
	}
}

func TestHTTPvsHTTPS(t *testing.T) {
	m := DefaultDownload()
	http := m.AveragePowerMW(8, false)
	https := m.AveragePowerMW(8, true)
	if http < 550 || http > 590 {
		t.Errorf("http = %f, paper 570 mW", http)
	}
	if https < 630 || https > 670 {
		t.Errorf("https = %f, paper 650 mW", https)
	}
	ratio := https / http
	if ratio < 1.10 || ratio > 1.20 {
		t.Errorf("https overhead = %.0f%%, paper ≈15%%", (ratio-1)*100)
	}
}
