package pipeline

import (
	"testing"

	_ "github.com/in-net/innet/internal/elements"
)

// TestFuseLinearChain checks that a straight forwarding chain folds
// into one fused run (the differential suite proves semantics; this
// guards the optimization itself from silently regressing).
func TestFuseLinearChain(t *testing.T) {
	prog, err := CompileConfig(`
in :: FromNetfront();
chk :: CheckIPHeader;
pnt :: Paint(7);
ttl :: DecIPTTL;
cnt :: Counter;
out :: ToNetfront();
d :: Discard;
in -> chk -> pnt -> ttl -> cnt -> out;
chk[1] -> d;
ttl[1] -> d;
`)
	if err != nil {
		t.Fatal(err)
	}
	// chk, pnt, ttl, cnt, out all fold into the run headed by in; d
	// keeps its own stage (it has two wired inputs).
	if got := prog.NumFused(); got != 5 {
		t.Fatalf("NumFused = %d, want 5", got)
	}
	head := &prog.stages[0]
	if head.name != "in" || head.ops == nil || len(head.ops) != 5 {
		t.Fatalf("head %q ops=%d, want in with 5 ops", head.name, len(head.ops))
	}
}

// TestFuseStopsAtJoin checks a stage with two wired inputs is never
// folded: both branches must still reach it through its own buffer.
func TestFuseStopsAtJoin(t *testing.T) {
	prog, err := CompileConfig(`
in :: FromNetfront();
chk :: CheckIPHeader;
cnt :: Counter;
out :: ToNetfront();
in -> chk -> cnt -> out;
chk[1] -> cnt;
`)
	if err != nil {
		t.Fatal(err)
	}
	// cnt has indegree 2 (chk[0] and chk[1]), so the first run is
	// in+chk (folding chk) and stops there; cnt then heads a second
	// run folding out. Crucially cnt is a run HEAD, not an interior —
	// both branches still reach it through its own input buffer.
	if got := prog.NumFused(); got != 2 {
		t.Fatalf("NumFused = %d, want 2", got)
	}
	for i := range prog.stages {
		st := &prog.stages[i]
		if st.name == "cnt" && st.ops == nil {
			t.Fatalf("cnt should head its own fused run")
		}
	}
}

// TestFuseStopsAtStateful checks multi-input stateful elements
// (needPort) terminate a run: the firewall must see real arrival
// ports, which the fused fast path does not carry.
func TestFuseStopsAtStateful(t *testing.T) {
	prog, err := CompileConfig(`
a :: FromNetfront();
b :: FromNetfront(1);
fw :: StatefulFirewall(allow udp, timeout 5);
o0 :: ToNetfront();
o1 :: ToNetfront(1);
a -> fw;
b -> [1]fw;
fw[0] -> o0;
fw[1] -> o1;
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.NumFused(); got != 0 {
		t.Fatalf("NumFused = %d, want 0 (firewall needs arrival ports)", got)
	}
}
