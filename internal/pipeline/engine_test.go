package pipeline

import (
	"fmt"
	"sync"
	"testing"

	"github.com/in-net/innet/internal/packet"
)

func TestAffinityHashSymmetric(t *testing.T) {
	for i := 0; i < 1000; i++ {
		tup := packet.FiveTuple{
			SrcIP:    0x0a000000 + uint32(i*2654435761),
			DstIP:    0xc0000200 + uint32(i*40503),
			SrcPort:  uint16(1024 + i),
			DstPort:  uint16(80 + i%7),
			Protocol: packet.ProtoUDP,
		}
		if AffinityHash(tup) != AffinityHash(tup.Reverse()) {
			t.Fatalf("hash not symmetric for %v", tup)
		}
	}
}

func TestEngineRoundsWorkersToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8},
	} {
		e, err := NewEngineString("in :: FromNetfront(0); d :: Discard; in -> d;",
			Config{Workers: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if e.Workers() != tc.want {
			t.Errorf("workers %d: got %d want %d", tc.in, e.Workers(), tc.want)
		}
		e.Close()
	}
}

func TestEngineRejectsUnflattenable(t *testing.T) {
	_, err := NewEngineString("in :: FromNetfront(0); rr :: RoundRobinSwitch(2); d :: Discard; in -> rr -> d;",
		Config{Workers: 2})
	if err == nil {
		t.Fatal("expected compile error for RoundRobinSwitch config")
	}
}

// TestEnginePerFlowOrder drives many interleaved flows through a
// 4-worker engine and checks that each flow's packets egress in
// submission order, byte-identical, with forward and reply sharing a
// worker.
func TestEnginePerFlowOrder(t *testing.T) {
	const src = `
in :: FromNetfront(0);
ttl :: DecIPTTL;
out :: ToNetfront(1);
in -> ttl -> out;
dsc :: Discard;
ttl[1] -> dsc;
`
	var mu sync.Mutex
	got := make(map[uint32][]string) // flow -> sequence of payloads
	workerOf := make(map[uint32]int)
	eng, err := NewEngineString(src, Config{
		Workers: 4,
		Transmit: func(worker, iface int, pk *packet.Packet) {
			mu.Lock()
			defer mu.Unlock()
			got[pk.UserID] = append(got[pk.UserID], string(pk.Payload))
			if w, ok := workerOf[pk.UserID]; ok && w != worker {
				t.Errorf("flow %d migrated from worker %d to %d", pk.UserID, w, worker)
			}
			workerOf[pk.UserID] = worker
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const flows, perFlow = 37, 50
	want := make(map[uint32][]string)
	for i := 0; i < perFlow; i++ {
		batch := make([]*packet.Packet, 0, flows)
		for f := uint32(0); f < flows; f++ {
			pk := &packet.Packet{
				SrcIP: 0x0a000000 + f, DstIP: 0xc0000200 + f%5,
				SrcPort: uint16(1024 + f), DstPort: 80,
				Protocol: packet.ProtoUDP, TTL: 64,
				UserID:  f,
				Payload: []byte(fmt.Sprintf("f%d-p%d", f, i)),
			}
			want[f] = append(want[f], string(pk.Payload))
			batch = append(batch, pk)
		}
		eng.Dispatch(0, batch)
	}
	eng.Drain()

	for f := uint32(0); f < flows; f++ {
		if len(got[f]) != perFlow {
			t.Fatalf("flow %d: %d packets egressed, want %d", f, len(got[f]), perFlow)
		}
		for i := range got[f] {
			if got[f][i] != want[f][i] {
				t.Fatalf("flow %d packet %d: got %q want %q", f, i, got[f][i], want[f][i])
			}
		}
	}

	packets, batches, drops := eng.Totals()
	if packets != flows*perFlow {
		t.Errorf("totals: %d packets, want %d", packets, flows*perFlow)
	}
	if batches == 0 || drops != 0 {
		t.Errorf("totals: batches=%d drops=%d", batches, drops)
	}
	stats := eng.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats: %d workers, want 4", len(stats))
	}
	var sum uint64
	for _, s := range stats {
		sum += s.Packets
	}
	if sum != packets {
		t.Errorf("stats sum %d != totals %d", sum, packets)
	}
}

// TestEngineTick verifies the broadcast tick drains schedulable
// elements on every worker and reports the minimum next delay.
func TestEngineTick(t *testing.T) {
	const src = `
in :: FromNetfront(0);
tu :: TimedUnqueue(1);
out :: ToNetfront(1);
in -> tu -> out;
`
	var mu sync.Mutex
	var sent int
	var now int64 // mutated only while the engine is drained
	eng, err := NewEngineString(src, Config{
		Workers: 2,
		Now:     func() int64 { return now },
		Transmit: func(worker, iface int, pk *packet.Packet) {
			mu.Lock()
			sent++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	batch := make([]*packet.Packet, 0, 16)
	for f := uint32(0); f < 16; f++ {
		batch = append(batch, &packet.Packet{
			SrcIP: 0x0a000000 + f, DstIP: 0xc0000200, SrcPort: uint16(f),
			DstPort: 80, Protocol: packet.ProtoUDP, TTL: 64,
		})
	}
	eng.Dispatch(0, batch)
	eng.Drain()
	if sent != 0 {
		t.Fatalf("packets egressed before tick: %d", sent)
	}
	if d := eng.Tick(); d <= 0 {
		t.Fatalf("tick with queued packets returned %d, want positive delay", d)
	}
	now = 2_000_000_000
	eng.Tick()
	mu.Lock()
	got := sent
	mu.Unlock()
	if got != 16 {
		t.Fatalf("after due tick: %d egressed, want 16", got)
	}
	if d := eng.Tick(); d != -1 {
		t.Fatalf("idle tick returned %d, want -1", d)
	}
}

func TestEngineCloseIdempotent(t *testing.T) {
	eng, err := NewEngineString("in :: FromNetfront(0); d :: Discard; in -> d;",
		Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Dispatch(0, []*packet.Packet{{TTL: 64, Protocol: packet.ProtoUDP}})
	eng.Close()
	eng.Close()
}
