package pipeline

import (
	"strconv"

	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/telemetry"
)

// DropReason classifies why the pipeline discarded a packet — the
// pipeline's slice of the unified drop taxonomy (FORMATS.md §15).
// Kernels tag each drop site with a reason; Exec counts per reason in
// DropsBy so exporters can attribute drops without any extra hot-path
// work beyond one array increment.
type DropReason uint8

const (
	// DropUnwired: pushed to an unconnected output port (or a nil
	// Transmit hook) — the graph simply has nowhere to send it.
	DropUnwired DropReason = iota
	// DropDiscard: consumed by an explicit Discard element.
	DropDiscard
	// DropFilter: refused by a filtering decision (IPFilter,
	// RateLimiter, StatefulFirewall, ChangeEnforcer).
	DropFilter
	// DropNoRoute: no classifier/route/rewriter mapping matched
	// (IPClassifier, LookupIPRoute, IPRewriter).
	DropNoRoute
	// DropOverflow: a bounded Queue was full.
	DropOverflow
	// DropOther: dropped during a ticker-driven graph walk, where the
	// deciding element is not identified.
	DropOther

	// NumDropReasons sizes per-reason counter arrays.
	NumDropReasons = int(iota)
)

var dropReasonNames = [NumDropReasons]string{
	"unwired", "discard", "filter", "no_route", "overflow", "other",
}

// String returns the taxonomy name ("unwired", "filter", ...).
func (r DropReason) String() string { return dropReasonNames[r] }

// DropReasonNames returns the taxonomy names indexed like
// Exec.DropsBy.
func DropReasonNames() []string { return dropReasonNames[:] }

// EnablePathTrace arms flow-sampled path tracing: the head packet of
// each injected batch is hashed with AffinityHash, and a packet whose
// flow lands on the 1-in-every residue is run alone through a traced
// sweep that records one PathHop per stage (seeing through fused runs
// via their op names) into ring. every <= 0 selects
// telemetry.DefaultTraceEvery. Call before the first Run; the Exec's
// owner goroutine must not be running it concurrently.
//
// Hashing only the batch head keeps the attached-but-unsampled cost
// to one hash per batch instead of one per packet; flow-affinity
// dispatch rotates flows through the head slot, and per-packet
// delivery paths (RunOne) make every packet a head. Sampling stays
// deterministic per flow: a flow whose hash misses the residue is
// never traced, one that matches is traced whenever it heads a batch.
func (x *Exec) EnablePathTrace(ring *telemetry.PathRing, every int) {
	x.ptRing = ring
	if every <= 0 {
		every = telemetry.DefaultTraceEvery
	}
	x.ptEvery = every
}

// traceRun runs one sampled packet to completion with hop recording
// and commits the resulting trace. Splitting the batch around the
// sampled packet is a legal run-to-completion schedule (any batch
// split is), and the head-first order preserves per-flow order.
func (x *Exec) traceRun(si int32, pk *packet.Packet, hash uint64) {
	x.ptCur = pk
	x.ptHops = x.ptHops[:0]
	x.ptIn = 0
	st := &x.prog.stages[si]
	x.runStageTraced(st, pk, 0)
	x.traceSweepFrom(int(si) + 1)
	if x.ptCur != nil {
		// No terminal verdict fired: the packet is parked in a queueing
		// element, to leave on a later tick.
		if n := len(x.ptHops); n > 0 && x.ptHops[n-1].Verdict == "" {
			x.ptHops[n-1].Verdict = "queued"
		}
		x.ptCur = nil
	}
	x.ptRing.Put(telemetry.PathTrace{
		FlowHash:  hash,
		Dataplane: "pipeline",
		Hops:      append([]telemetry.PathHop(nil), x.ptHops...),
	})
}

// runStageTraced executes one stage for the traced packet alone,
// recording hops. Fused heads get a dedicated interpreter pass so the
// hot runFused needs no per-packet trace checks at all.
func (x *Exec) runStageTraced(st *stage, pk *packet.Packet, inPort int32) {
	if st.ops != nil {
		x.runFusedTraced(st, pk, inPort)
		return
	}
	x.ptHops = append(x.ptHops, telemetry.PathHop{
		Elem: st.name, InPort: int(inPort), OutPort: -1, FusedRun: -1,
	})
	x.ptOne[0] = pk
	x.ptPort[0] = inPort
	st.run(x, st, x.ptOne[:1], x.ptPort[:1])
	x.ptOne[0] = nil
}

// traceSweepFrom is sweepFrom with the traced packet isolated: each
// stage buffer runs in arrival order, but the traced packet passes
// through runStageTraced so its kernel pass records hops. Clones
// (Tee) and unrelated packets take the ordinary kernels.
func (x *Exec) traceSweepFrom(i int) {
	stages := x.prog.stages
	for ; i < len(stages); i++ {
		in := x.bufs[i]
		if len(in) == 0 {
			continue
		}
		st := &stages[i]
		ports := x.ports[i]
		ti := -1
		if x.ptCur != nil {
			for k, pk := range in {
				if pk == x.ptCur {
					ti = k
					break
				}
			}
		}
		if ti < 0 {
			st.run(x, st, in, ports)
		} else {
			if ti > 0 {
				sub := ports
				if sub != nil {
					sub = ports[:ti]
				}
				st.run(x, st, in[:ti], sub)
			}
			p := int32(x.ptIn)
			if ports != nil {
				p = ports[ti]
			}
			x.runStageTraced(st, in[ti], p)
			if ti+1 < len(in) {
				sub := ports
				if sub != nil {
					sub = ports[ti+1:]
				}
				st.run(x, st, in[ti+1:], sub)
			}
		}
		x.bufs[i] = in[:0]
		if pp := x.ports[i]; pp != nil {
			x.ports[i] = pp[:0]
		}
	}
}

// runFusedTraced mirrors runFused for a single traced packet,
// appending one hop per fused op (tagged with the run's stage index)
// — the "see through fusion without un-fusing" path. Element state
// updates are identical to runFused's.
func (x *Exec) runFusedTraced(st *stage, pk *packet.Packet, inPort int32) {
	fr := int(st.idx)
	in := int(inPort)
	if len(st.ops) > 0 && st.ops[0].name != st.name {
		// Passthrough head (FromNetfront) contributes no op; record it
		// so the trace starts at the packet's true entry element.
		x.ptHops = append(x.ptHops, telemetry.PathHop{
			Elem: st.name, InPort: in, OutPort: 0, Verdict: "forward", FusedRun: fr,
		})
		in = 0
	}
	for oi := range st.ops {
		op := &st.ops[oi]
		x.ptHops = append(x.ptHops, telemetry.PathHop{
			Elem: op.name, InPort: in, OutPort: -1, FusedRun: fr,
		})
		in = 0
		hop := &x.ptHops[len(x.ptHops)-1]
		switch op.code {
		case opMutate:
			op.fn(x, pk)
		case opCheckIP:
			if pk.TTL == 0 || pk.SrcIP == 0 || pk.DstIP == 0 {
				op.chk.Drops++
				hop.OutPort = 1
				hop.Verdict = "divert"
				x.emitTo(op.alt, pk)
				return
			}
		case opDecTTL:
			if pk.TTL <= 1 {
				op.ttl.Expired++
				hop.OutPort = 1
				hop.Verdict = "divert"
				x.emitTo(op.alt, pk)
				return
			}
			pk.TTL--
		case opCounter:
			op.cnt.Packets++
			op.cnt.Bytes += uint64(pk.Len())
		case opFilter:
			if !op.pred(x, pk) {
				x.dropAs(pk, DropFilter)
				return
			}
		case opPaint:
			pk.Paint = op.pnt.Color
		case opSetTOS:
			pk.TOS = op.tos.TOS
		case opSetTTL:
			pk.TTL = op.sttl.TTL
		case opTx:
			op.tx.TxCount++
			x.transmit(op.tx.Iface, pk)
			return
		case opDiscard:
			op.dsc.Count++
			x.dropAs(pk, DropDiscard)
			return
		}
		hop.OutPort = 0
		hop.Verdict = "forward"
	}
	x.emitTo(st.tail, pk)
}

// traceDropHop closes the traced packet's trace with a drop verdict:
// the open stage-entry hop is patched, or — for drops between stages
// (unwired refs) — a synthetic hop with an empty element name is
// appended. Ends the trace: the packet no longer exists.
func (x *Exec) traceDropHop(reason DropReason) {
	v := "drop:" + reason.String()
	if n := len(x.ptHops); n > 0 && x.ptHops[n-1].Verdict == "" {
		x.ptHops[n-1].Verdict = v
	} else {
		x.ptHops = append(x.ptHops, telemetry.PathHop{
			Elem: "", InPort: x.ptIn, OutPort: -1, Verdict: v, FusedRun: -1,
		})
	}
	x.ptCur = nil
}

// traceTxHop closes the trace with a transmit verdict: the packet
// left the module through iface.
func (x *Exec) traceTxHop(iface int) {
	v := "tx:" + strconv.Itoa(iface)
	if n := len(x.ptHops); n > 0 && x.ptHops[n-1].Verdict == "" {
		x.ptHops[n-1].Verdict = v
	} else {
		x.ptHops = append(x.ptHops, telemetry.PathHop{
			Elem: "", InPort: x.ptIn, OutPort: -1, Verdict: v, FusedRun: -1,
		})
	}
	x.ptCur = nil
}
