package pipeline

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

// The flow-affinity property: partitioning traffic across N pipeline
// workers by AffinityHash leaves every stateful element's per-flow
// state exactly as a sequential graph-walk over one router would,
// because each flow (and its reverse) is owned by a single worker and
// processed in submission order.
//
// The property is checked with testing/quick over a seeded generator:
// each sample is a random schedule of forward and reply packets over a
// random flow population, with time advancing past the firewall
// timeout often enough to exercise expiry.

const quickConfig = `
a :: FromNetfront(0);
b :: FromNetfront(1);
fw :: StatefulFirewall(allow udp, timeout 5);
fm :: FlowMeter;
o0 :: ToNetfront(0);
o1 :: ToNetfront(1);
a -> [0]fw;
b -> [1]fw;
fw[0] -> fm -> o0;
fw[1] -> o1;
`

type quickEvent struct {
	src int // 0 = outbound (policy side), 1 = inbound reply
	pk  *packet.Packet
	now int64
}

// genSchedule derives a deterministic traffic schedule from one seed.
func genSchedule(seed int64) []quickEvent {
	rng := rand.New(rand.NewSource(seed))
	nflows := 2 + rng.Intn(14)
	flows := make([]packet.FiveTuple, nflows)
	for i := range flows {
		proto := packet.ProtoUDP
		if rng.Intn(4) == 0 {
			proto = packet.ProtoTCP // violates the allow-udp policy
		}
		flows[i] = packet.FiveTuple{
			SrcIP:    0x0a000000 + uint32(rng.Intn(1<<16)),
			DstIP:    0xc0000200 + uint32(rng.Intn(8)),
			SrcPort:  uint16(1024 + rng.Intn(4096)),
			DstPort:  uint16(80 + rng.Intn(4)),
			Protocol: proto,
		}
	}
	n := 20 + rng.Intn(100)
	evs := make([]quickEvent, 0, n)
	now := int64(0)
	for i := 0; i < n; i++ {
		// Occasionally jump past the 5ns firewall timeout so replay
		// hits expired state.
		if rng.Intn(10) == 0 {
			now += 4 + int64(rng.Intn(8))
		} else {
			now += int64(rng.Intn(2))
		}
		f := flows[rng.Intn(nflows)]
		pk := &packet.Packet{TTL: 64, Payload: []byte("q")}
		src := 0
		if rng.Intn(3) == 0 { // a reply, under the reversed tuple
			src = 1
			f = f.Reverse()
		}
		pk.SrcIP, pk.DstIP = f.SrcIP, f.DstIP
		pk.SrcPort, pk.DstPort = f.SrcPort, f.DstPort
		pk.Protocol = f.Protocol
		evs = append(evs, quickEvent{src: src, pk: pk, now: now})
	}
	return evs
}

func cloneEvent(ev quickEvent) *packet.Packet {
	pk := ev.pk.Clone()
	return pk
}

func TestQuickFlowAffinityStateEquivalence(t *testing.T) {
	prop := func(seed int64, workerBits uint8) bool {
		evs := genSchedule(seed)
		workers := 1 << (workerBits % 4) // 1, 2, 4, 8

		// Sequential reference: one router, one goroutine, graph walk.
		gr := click.MustBuildString(quickConfig)
		var gnow int64
		gctx := &click.Context{Now: func() int64 { return gnow }}
		for _, ev := range evs {
			gnow = ev.now
			if err := gr.Inject(gctx, ev.src, cloneEvent(ev)); err != nil {
				t.Fatalf("inject: %v", err)
			}
		}

		// Engine: same schedule partitioned across workers. Drain after
		// every submission so virtual time advances identically for
		// every worker's kernels.
		var enow atomic.Int64
		eng, err := NewEngineString(quickConfig, Config{
			Workers: workers,
			Now:     func() int64 { return enow.Load() },
		})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		defer eng.Close()
		for _, ev := range evs {
			enow.Store(ev.now)
			eng.Dispatch(ev.src, []*packet.Packet{cloneEvent(ev)})
			eng.Drain()
		}

		gfw := gr.Element("fw").(*elements.StatefulFirewall)
		gfm := gr.Element("fm").(*elements.FlowMeter)

		// Per-flow state must match the worker that owns the flow.
		for _, ev := range evs {
			tup := ev.pk.Tuple()
			if ev.src == 1 {
				tup = tup.Reverse() // firewall state is keyed by the forward tuple
			}
			w := eng.WorkerOf(ev.pk)
			wfw := eng.Router(w).Element("fw").(*elements.StatefulFirewall)
			wfm := eng.Router(w).Element("fm").(*elements.FlowMeter)
			gls, gok := gfw.LastSeen(tup)
			wls, wok := wfw.LastSeen(tup)
			if gok != wok || gls != wls {
				t.Logf("seed=%d workers=%d flow=%v firewall last-seen: graph=(%d,%v) engine=(%d,%v)",
					seed, workers, tup, gls, gok, wls, wok)
				return false
			}
			gp, gb, gok := gfm.Stats(tup)
			wp, wb, wok := wfm.Stats(tup)
			if gok != wok || gp != wp || gb != wb {
				t.Logf("seed=%d workers=%d flow=%v meter: graph=(%d,%d,%v) engine=(%d,%d,%v)",
					seed, workers, tup, gp, gb, gok, wp, wb, wok)
				return false
			}
		}

		// Aggregates: flows partition disjointly across workers, so the
		// sums must equal the sequential totals.
		var active, metered int
		var blocked uint64
		for w := 0; w < eng.Workers(); w++ {
			active += eng.Router(w).Element("fw").(*elements.StatefulFirewall).ActiveFlows()
			metered += eng.Router(w).Element("fm").(*elements.FlowMeter).Flows()
			blocked += eng.Router(w).Element("fw").(*elements.StatefulFirewall).Blocked
		}
		if active != gfw.ActiveFlows() || metered != gfm.Flows() || blocked != gfw.Blocked {
			t.Logf("seed=%d workers=%d totals: graph active=%d metered=%d blocked=%d engine active=%d metered=%d blocked=%d",
				seed, workers, gfw.ActiveFlows(), gfm.Flows(), gfw.Blocked, active, metered, blocked)
			return false
		}
		return true
	}

	cfg := &quick.Config{
		MaxCount: 30,
		Rand:     rand.New(rand.NewSource(0x17e7)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
