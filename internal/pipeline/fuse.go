package pipeline

// Linear-run fusion. After stages are built, the compiler folds every
// maximal chain  s0 -[out0]-> s1 -[out0]-> ... -> sk  in which each
// interior stage has exactly one wired input and a per-packet
// "continue or leave" kernel into ONE stage: the head keeps its input
// buffer, and its kernel walks each packet through the whole chain as
// a flat op list (a small opcode switch over pre-extracted element
// state). A packet that survives every op lands at the run's tail ref;
// one that diverts (CheckIPHeader[1], DecIPTTL[1]) is queued at the
// target stage exactly as the unfused kernel would queue it. This
// removes the per-stage buffer write/read per hop — the dominant cost
// of the stage-wise sweep — while updating exactly the same element
// state in the same per-packet order as the graph walk.

import (
	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

type opcode uint8

const (
	opMutate  opcode = iota // fn(x, pk), continue
	opCheckIP               // header sanity; bad → Drops++, divert alt
	opDecTTL                // expired → Expired++, divert alt
	opCounter               // account, continue
	opFilter                // pred(x, pk); false → drop, consume
	opPaint                 // pk.Paint = Color, continue
	opSetTOS                // pk.TOS = TOS, continue
	opSetTTL                // pk.TTL = TTL, continue
	opTx                    // TxCount++, transmit, consume
	opDiscard               // Count++, drop, consume
)

// fop is one fused per-packet operation: an opcode plus the concrete
// element state it touches, pre-extracted at compile time so the hot
// loop never chases an interface.
type fop struct {
	code opcode
	name string // element instance name, for the path tracer
	cnt  *elements.Counter
	chk  *elements.CheckIPHeader
	ttl  *elements.DecIPTTL
	tx   *elements.ToNetfront
	dsc  *elements.Discard
	pnt  *elements.Paint
	tos  *elements.SetTOS
	sttl *elements.SetIPTTL
	fn   func(x *Exec, pk *packet.Packet)
	pred func(x *Exec, pk *packet.Packet) bool
	alt  ref // divert target (opCheckIP/opDecTTL port 1)
}

type fuseKind uint8

const (
	fuseNo   fuseKind = iota // not fusable; run stops before this stage
	fuseNop                  // passthrough head (FromNetfront): no op
	fuseMid                  // continue-or-leave op; run may extend past it
	fuseTerm                 // consumes every packet (ToNetfront, Discard)
)

// fuseOp classifies a stage for fusion and builds its op.
func fuseOp(st *stage) (fop, fuseKind) {
	alt1 := func() ref {
		if len(st.next) > 1 {
			return st.next[1]
		}
		return dropRef
	}
	switch e := st.el.(type) {
	case *elements.FromNetfront:
		return fop{}, fuseNop
	case *elements.Counter:
		return fop{code: opCounter, cnt: e}, fuseMid
	case *elements.CheckIPHeader:
		return fop{code: opCheckIP, chk: e, alt: alt1()}, fuseMid
	case *elements.DecIPTTL:
		return fop{code: opDecTTL, ttl: e, alt: alt1()}, fuseMid
	case *elements.IPFilter:
		return fop{code: opFilter, pred: func(_ *Exec, pk *packet.Packet) bool {
			return e.Decide(pk)
		}}, fuseMid
	case *elements.RateLimiter:
		return fop{code: opFilter, pred: func(x *Exec, pk *packet.Packet) bool {
			return e.Admit(x.now(), pk)
		}}, fuseMid
	case *elements.Paint:
		return fop{code: opPaint, pnt: e}, fuseMid
	case *elements.SetTOS:
		return fop{code: opSetTOS, tos: e}, fuseMid
	case *elements.SetIPTTL:
		return fop{code: opSetTTL, sttl: e}, fuseMid
	case *elements.SetIPField:
		if e.Class() == "SetIPSrc" {
			return mutate(func(_ *Exec, pk *packet.Packet) { pk.SrcIP = e.Addr })
		}
		return mutate(func(_ *Exec, pk *packet.Packet) { pk.DstIP = e.Addr })
	case *elements.SetPort:
		if e.Class() == "SetSrcPort" {
			return mutate(func(_ *Exec, pk *packet.Packet) { pk.SrcPort = e.Port })
		}
		return mutate(func(_ *Exec, pk *packet.Packet) { pk.DstPort = e.Port })
	case *elements.IPMirror:
		return mutate(func(_ *Exec, pk *packet.Packet) {
			pk.SrcIP, pk.DstIP = pk.DstIP, pk.SrcIP
			pk.SrcPort, pk.DstPort = pk.DstPort, pk.SrcPort
		})
	case *elements.FlowMeter:
		return mutate(func(x *Exec, pk *packet.Packet) { e.Record(x.now(), pk) })
	case *elements.ToNetfront:
		return fop{code: opTx, tx: e}, fuseTerm
	case *elements.Discard:
		return fop{code: opDiscard, dsc: e}, fuseTerm
	default:
		return fop{}, fuseNo
	}
}

func mutate(fn func(x *Exec, pk *packet.Packet)) (fop, fuseKind) {
	return fop{code: opMutate, fn: fn}, fuseMid
}

// fuse folds maximal linear runs in stage order. A stage joins the run
// after its predecessor when the predecessor continues on out0 to it
// on input port 0, it is that stage's only wired input, it is not an
// injection point, and it has a fusable op.
func (p *Program) fuse() {
	indeg := make([]int, len(p.stages))
	for i := range p.stages {
		for _, r := range p.stages[i].next {
			if r.idx >= 0 {
				indeg[r.idx]++
			}
		}
	}
	interior := make([]bool, len(p.stages))
	for i := range p.stages {
		if interior[i] {
			continue
		}
		head := &p.stages[i]
		op, kind := fuseOp(head)
		if kind == fuseNo || kind == fuseTerm {
			continue
		}
		var ops []fop
		if kind == fuseMid {
			op.name = head.name
			ops = append(ops, op)
		}
		cur := head
		tail := cur.out0
		var folded []int32
		for {
			j := cur.out0
			if j.idx < 0 || j.port != 0 || indeg[j.idx] != 1 {
				break
			}
			nst := &p.stages[j.idx]
			if nst.needPort || interior[j.idx] {
				break
			}
			if inj, ok := nst.el.(click.Injector); ok && inj.InjectionPoint() {
				break
			}
			nop, nkind := fuseOp(nst)
			if nkind == fuseNo || nkind == fuseNop {
				break
			}
			nop.name = nst.name
			ops = append(ops, nop)
			folded = append(folded, j.idx)
			if nkind == fuseTerm {
				tail = dropRef // every packet is consumed by the terminal op
				cur = nst
				break
			}
			cur = nst
			tail = cur.out0
		}
		if len(folded) == 0 {
			continue // nothing folded; keep the plain kernel
		}
		head.ops = ops
		head.tail = tail
		head.run = runFused
		for _, j := range folded {
			interior[j] = true
		}
		p.fused += len(folded)
	}
}

// runFused executes a fused run: each packet walks the op list while
// it is register-hot; only divergence (divert, drop, transmit) or the
// run's tail touches a stage buffer.
func runFused(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
	ops := st.ops
	txf := x.Transmit // hoisted: one nil check per batch, not per packet
pkts:
	for _, pk := range in {
		for oi := range ops {
			op := &ops[oi]
			switch op.code {
			case opMutate:
				op.fn(x, pk)
			case opCheckIP:
				if pk.TTL == 0 || pk.SrcIP == 0 || pk.DstIP == 0 {
					op.chk.Drops++
					x.emitTo(op.alt, pk)
					continue pkts
				}
			case opDecTTL:
				if pk.TTL <= 1 {
					op.ttl.Expired++
					x.emitTo(op.alt, pk)
					continue pkts
				}
				pk.TTL--
			case opCounter:
				op.cnt.Packets++
				op.cnt.Bytes += uint64(pk.Len())
			case opFilter:
				if !op.pred(x, pk) {
					x.dropAs(pk, DropFilter)
					continue pkts
				}
			case opPaint:
				pk.Paint = op.pnt.Color
			case opSetTOS:
				pk.TOS = op.tos.TOS
			case opSetTTL:
				pk.TTL = op.sttl.TTL
			case opTx:
				op.tx.TxCount++
				if txf != nil {
					txf(op.tx.Iface, pk)
				} else {
					x.drop(pk)
				}
				continue pkts
			case opDiscard:
				op.dsc.Count++
				x.dropAs(pk, DropDiscard)
				continue pkts
			}
		}
		x.emitTo(st.tail, pk)
	}
}
