package pipeline

import (
	"hash/crc32"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

// kernelFor returns the batch kernel for a concrete element instance,
// whether the element consumes the arrival port (needPort), or
// (nil, false, reason) when the class cannot be flattened. Each kernel
// is a closure over the concrete type — no interface dispatch per
// packet — and mirrors the element's Push exactly, including counters;
// where an element keeps unexported decision state, the kernel calls
// the same exported decision method Push uses.
func kernelFor(el click.Element) (kernel, bool, string) {
	switch e := el.(type) {
	case *elements.FromNetfront:
		return forward(nil), false, ""

	case *elements.ToNetfront:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				e.TxCount++
				x.transmit(e.Iface, pk)
			}
		}, false, ""

	case *elements.Discard:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				e.Count++
				x.dropAs(pk, DropDiscard)
			}
		}, false, ""

	case *elements.Counter:
		return forward(func(_ *Exec, pk *packet.Packet) {
			e.Packets++
			e.Bytes += uint64(pk.Len())
		}), false, ""

	case *elements.Tee:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				for i := 1; i < e.N; i++ {
					if i < len(st.next) && st.next[i].idx >= 0 {
						x.emit(st, i, pk.Clone())
					}
				}
				x.emit(st, 0, pk)
			}
		}, false, ""

	case *elements.Paint:
		return forward(func(_ *Exec, pk *packet.Packet) { pk.Paint = e.Color }), false, ""

	case *elements.CheckPaint:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if pk.Paint == e.Color {
					x.emit(st, 0, pk)
				} else {
					x.emit(st, 1, pk)
				}
			}
		}, false, ""

	case *elements.SetIPField:
		if e.Class() == "SetIPSrc" {
			return forward(func(_ *Exec, pk *packet.Packet) { pk.SrcIP = e.Addr }), false, ""
		}
		return forward(func(_ *Exec, pk *packet.Packet) { pk.DstIP = e.Addr }), false, ""

	case *elements.SetTOS:
		return forward(func(_ *Exec, pk *packet.Packet) { pk.TOS = e.TOS }), false, ""

	case *elements.SetCRC32:
		return forward(func(_ *Exec, pk *packet.Packet) {
			e.Last = crc32.ChecksumIEEE(pk.Payload)
			pk.FlowTag = e.Last
		}), false, ""

	case *elements.CheckIPHeader:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if pk.TTL == 0 || pk.SrcIP == 0 || pk.DstIP == 0 {
					e.Drops++
					x.emit(st, 1, pk)
					continue
				}
				x.emit(st, 0, pk)
			}
		}, false, ""

	case *elements.IPFilter:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if e.Decide(pk) {
					x.emit(st, 0, pk)
				} else {
					x.dropAs(pk, DropFilter)
				}
			}
		}, false, ""

	case *elements.IPClassifier:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if i := e.Route(pk); i >= 0 {
					x.emit(st, i, pk)
				} else {
					x.dropAs(pk, DropNoRoute)
				}
			}
		}, false, ""

	case *elements.DPI:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if e.Inspect(pk) {
					x.emit(st, 1, pk)
				} else {
					x.emit(st, 0, pk)
				}
			}
		}, false, ""

	case *elements.HashSwitch:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				x.emit(st, e.PortOf(pk), pk)
			}
		}, false, ""

	case *elements.ICMPPingResponder:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if pk.Protocol != packet.ProtoICMP {
					x.emit(st, 1, pk)
					continue
				}
				e.Replies++
				pk.SrcIP, pk.DstIP = pk.DstIP, pk.SrcIP
				x.emit(st, 0, pk)
			}
		}, false, ""

	case *elements.SetPort:
		if e.Class() == "SetSrcPort" {
			return forward(func(_ *Exec, pk *packet.Packet) { pk.SrcPort = e.Port }), false, ""
		}
		return forward(func(_ *Exec, pk *packet.Packet) { pk.DstPort = e.Port }), false, ""

	case *elements.SetIPTTL:
		return forward(func(_ *Exec, pk *packet.Packet) { pk.TTL = e.TTL }), false, ""

	case *elements.DecIPTTL:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if pk.TTL <= 1 {
					e.Expired++
					x.emit(st, 1, pk)
					continue
				}
				pk.TTL--
				x.emit(st, 0, pk)
			}
		}, false, ""

	case *elements.IPMirror:
		return forward(func(_ *Exec, pk *packet.Packet) {
			pk.SrcIP, pk.DstIP = pk.DstIP, pk.SrcIP
			pk.SrcPort, pk.DstPort = pk.DstPort, pk.SrcPort
		}), false, ""

	case *elements.IPRewriter:
		return portKernel(func(x *Exec, st *stage, pk *packet.Packet, port int32) {
			if out, ok := e.Rewrite(int(port), pk); ok {
				x.emit(st, out, pk)
			} else {
				x.dropAs(pk, DropNoRoute)
			}
		}), true, ""

	case *elements.LookupIPRoute:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if out := e.Lookup(pk); out >= 0 {
					x.emit(st, out, pk)
				} else {
					x.dropAs(pk, DropNoRoute)
				}
			}
		}, false, ""

	case *elements.StatefulFirewall:
		return portKernel(func(x *Exec, st *stage, pk *packet.Packet, port int32) {
			if out, ok := e.Admit(x.now(), int(port), pk); ok {
				x.emit(st, out, pk)
			} else {
				x.dropAs(pk, DropFilter)
			}
		}), true, ""

	case *elements.FlowMeter:
		return forward(func(x *Exec, pk *packet.Packet) {
			e.Record(x.now(), pk)
		}), false, ""

	case *elements.ChangeEnforcer:
		return portKernel(func(x *Exec, st *stage, pk *packet.Packet, port int32) {
			if e.Admit(x.now(), int(port), pk) {
				x.emit(st, int(port), pk)
			} else {
				x.dropAs(pk, DropFilter)
			}
		}), true, ""

	case *elements.Queue:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if !e.Enqueue(pk) {
					x.dropAs(pk, DropOverflow)
				}
			}
		}, false, ""

	case *elements.TimedUnqueue:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				e.Enqueue(x.now(), pk)
			}
		}, false, ""

	case *elements.RatedUnqueue:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				e.Enqueue(x.now(), pk)
			}
		}, false, ""

	case *elements.RateLimiter:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				if e.Admit(x.now(), pk) {
					x.emit(st, 0, pk)
				} else {
					x.dropAs(pk, DropFilter)
				}
			}
		}, false, ""

	case *elements.Meter:
		return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
			for _, pk := range in {
				x.emit(st, e.Classify(x.now(), pk), pk)
			}
		}, false, ""

	// Explicit fallbacks with a precise reason: these classes either
	// interleave packets in arrival order across outputs (which the
	// stage-wise sweep cannot reproduce packet-for-packet) or schedule
	// themselves.
	case *elements.RoundRobinSwitch:
		return nil, false, "output depends on packet arrival order"
	case *elements.RandomSample:
		return nil, false, "probabilistic branching"
	case *elements.TimedSource:
		return nil, false, "self-scheduled packet source"
	case *elements.Unqueue:
		return nil, false, "pull-input element"

	default:
		return nil, false, "no compiled kernel for class " + el.Class()
	}
}

// forward builds the single-output fast path: apply fn (may be nil)
// and emit on port 0. The destination buffer is hoisted out of the
// packet loop, so per packet it is one closure call and one append.
func forward(fn func(x *Exec, pk *packet.Packet)) kernel {
	return func(x *Exec, st *stage, in []*packet.Packet, _ []int32) {
		r := st.out0
		if r.idx < 0 {
			for _, pk := range in {
				if fn != nil {
					fn(x, pk)
				}
				x.drop(pk)
			}
			return
		}
		if fn == nil {
			// Pure passthrough (FromNetfront): bulk-copy the batch.
			if x.ptCur != nil {
				for _, pk := range in {
					if pk == x.ptCur {
						if n := len(x.ptHops); n > 0 && x.ptHops[n-1].Verdict == "" {
							x.ptHops[n-1].OutPort = 0
							x.ptHops[n-1].Verdict = "forward"
						}
						x.ptIn = int(r.port)
						break
					}
				}
			}
			x.bufs[r.idx] = append(x.bufs[r.idx], in...)
			if pp := x.ports[r.idx]; pp != nil {
				for range in {
					pp = append(pp, r.port)
				}
				x.ports[r.idx] = pp
			}
			return
		}
		dst := x.bufs[r.idx]
		for _, pk := range in {
			fn(x, pk)
			dst = append(dst, pk)
		}
		x.bufs[r.idx] = dst
		if pp := x.ports[r.idx]; pp != nil {
			for range in {
				pp = append(pp, r.port)
			}
			x.ports[r.idx] = pp
		}
	}
}

// portKernel adapts a per-packet body that consumes the arrival port.
// ports is nil when the batch was injected directly (source stages),
// in which case every packet arrived on port 0.
func portKernel(fn func(x *Exec, st *stage, pk *packet.Packet, port int32)) kernel {
	return func(x *Exec, st *stage, in []*packet.Packet, ports []int32) {
		for i, pk := range in {
			var p int32
			if ports != nil {
				p = ports[i]
			}
			fn(x, st, pk, p)
		}
	}
}
