package pipeline

import (
	"fmt"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/telemetry"
)

// Exec runs a Program to completion over packet batches. It owns the
// per-stage input buffers, so it is single-worker state: one goroutine
// per Exec, like packet.Pool. The hooks mirror click.Context; set them
// before the first Run.
type Exec struct {
	prog  *Program
	bufs  [][]*packet.Packet
	ports [][]int32 // parallel arrival ports; non-nil only for needPort stages
	ctx   click.Context
	one   [1]*packet.Packet

	// Now returns the current time in nanoseconds (virtual or wall).
	// Stateful kernels consult it per packet, exactly as Push does.
	Now func() int64
	// Transmit receives packets leaving through ToNetfront stages;
	// when nil they are dropped, as with a nil click.Context.Transmit.
	Transmit func(iface int, p *packet.Packet)
	// DropHook, if non-nil, observes every dropped packet.
	DropHook func(p *packet.Packet)
	// Pool recycles dropped packets when non-nil.
	Pool *packet.Pool

	// Drops counts packets dropped by the program (unwired ports and
	// element decisions); DropsBy splits the same total by taxonomy
	// reason (indexed by DropReason).
	Drops   uint64
	DropsBy [NumDropReasons]uint64
	// Packets and Batches count work pushed through Run.
	Packets uint64
	Batches uint64

	// Path-trace state (see trace.go). ptRing nil = tracing detached:
	// Run pays one nil check, the hooks one nil pointer compare.
	ptRing  *telemetry.PathRing
	ptEvery int
	ptCur   *packet.Packet // the in-flight traced packet, else nil
	ptHops  []telemetry.PathHop
	ptIn    int // arrival port of ptCur at its next stage
	ptOne   [1]*packet.Packet
	ptPort  [1]int32
}

// NewExec returns an execution context for prog.
func NewExec(prog *Program) *Exec {
	x := &Exec{
		prog:  prog,
		bufs:  make([][]*packet.Packet, len(prog.stages)),
		ports: make([][]int32, len(prog.stages)),
	}
	for i := range prog.stages {
		if prog.stages[i].needPort {
			x.ports[i] = make([]int32, 0, 8)
		}
	}
	// The graph-walk context used for ticker drains forwards to the
	// same hooks the kernels use, so both paths see identical time,
	// egress and drop behavior.
	x.ctx = click.Context{
		Now: x.now,
		Transmit: func(iface int, pk *packet.Packet) {
			x.transmit(iface, pk)
		},
		DropHook: func(pk *packet.Packet) {
			x.dropAs(pk, DropOther)
		},
	}
	return x
}

// Program returns the program this Exec runs.
func (x *Exec) Program() *Program { return x.prog }

// Run pushes a batch into the src'th injection point and executes the
// program to completion: every stage consumes its queued batch in
// topological order, so a packet traverses its whole path before Run
// returns. The input slice is not retained.
func (x *Exec) Run(src int, pkts []*packet.Packet) error {
	if src < 0 || src >= len(x.prog.srcs) {
		return fmt.Errorf("pipeline: no injection point %d (have %d)", src, len(x.prog.srcs))
	}
	x.Packets += uint64(len(pkts))
	x.Batches++
	si := x.prog.srcs[src]
	if x.ptRing != nil && len(pkts) > 0 {
		if h := AffinityHash(pkts[0].Tuple()); telemetry.Sampled(h, x.ptEvery) {
			x.traceRun(si, pkts[0], h)
			pkts = pkts[1:]
			if len(pkts) == 0 {
				return nil
			}
		}
	}
	// All stage buffers are empty between Runs (sweep drains them), so
	// the source stage's kernel can consume the caller's batch directly
	// — no copy through its input buffer — and the sweep can start at
	// the next stage.
	st := &x.prog.stages[si]
	st.run(x, st, pkts, nil)
	x.sweepFrom(int(si) + 1)
	return nil
}

// RunOne processes a single packet (the platform's per-packet delivery
// path) without allocating a batch.
func (x *Exec) RunOne(src int, pk *packet.Packet) error {
	x.one[0] = pk
	err := x.Run(src, x.one[:1])
	x.one[0] = nil
	return err
}

// sweepFrom executes stages from index i onward in topological order.
// Kernels only append to buffers of later stages (the compiler
// guarantees all edges point forward), so one pass drains everything.
func (x *Exec) sweepFrom(i int) {
	stages := x.prog.stages
	for ; i < len(stages); i++ {
		in := x.bufs[i]
		if len(in) == 0 {
			continue
		}
		st := &stages[i]
		st.run(x, st, in, x.ports[i])
		x.bufs[i] = in[:0]
		if pp := x.ports[i]; pp != nil {
			x.ports[i] = pp[:0]
		}
	}
}

// Tick drives the router's schedulable elements (Queue, TimedUnqueue,
// RatedUnqueue) through the ordinary graph walk, sharing the Exec's
// hooks. The drained packets traverse the same element instances the
// compiled stages mutate, so compiled and graph execution stay
// coherent. Returns the smallest delay until the next due tick, or -1
// when idle.
func (x *Exec) Tick() int64 {
	return x.prog.router.Tick(&x.ctx)
}

// emitTo queues a packet at a pre-resolved stage input, dropping it on
// an unwired ref — the exact contract of click.Base.Out.
func (x *Exec) emitTo(r ref, pk *packet.Packet) {
	if r.idx < 0 {
		x.drop(pk)
		return
	}
	if pk == x.ptCur {
		x.ptIn = int(r.port)
		if n := len(x.ptHops); n > 0 && x.ptHops[n-1].Verdict == "" {
			x.ptHops[n-1].Verdict = "forward"
		}
	}
	x.bufs[r.idx] = append(x.bufs[r.idx], pk)
	if pp := x.ports[r.idx]; pp != nil {
		x.ports[r.idx] = append(pp, r.port)
	}
}

// emit forwards a packet out of stage st on output port p.
func (x *Exec) emit(st *stage, p int, pk *packet.Packet) {
	if p >= 0 && p < len(st.next) {
		if pk == x.ptCur {
			if n := len(x.ptHops); n > 0 && x.ptHops[n-1].Verdict == "" {
				x.ptHops[n-1].OutPort = p
			}
		}
		x.emitTo(st.next[p], pk)
		return
	}
	x.drop(pk)
}

func (x *Exec) drop(pk *packet.Packet) {
	x.dropAs(pk, DropUnwired)
}

func (x *Exec) dropAs(pk *packet.Packet, reason DropReason) {
	x.Drops++
	x.DropsBy[reason]++
	if pk == x.ptCur {
		x.traceDropHop(reason)
	}
	if f := x.DropHook; f != nil {
		f(pk)
	}
	if x.Pool != nil {
		x.Pool.Put(pk)
	}
}

func (x *Exec) now() int64 {
	if f := x.Now; f != nil {
		return f()
	}
	return 0
}

func (x *Exec) transmit(iface int, pk *packet.Packet) {
	if f := x.Transmit; f != nil {
		if pk == x.ptCur {
			x.traceTxHop(iface)
		}
		f(iface, pk)
		return
	}
	x.drop(pk)
}
