package pipeline

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/telemetry"
)

// compileString compiles a config, failing the test on error.
func compileString(t *testing.T, src string) *Exec {
	t.Helper()
	r := click.MustBuildString(src)
	prog, err := Compile(r)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return NewExec(prog)
}

func TestPathTraceFusedRun(t *testing.T) {
	x := compileString(t, `
in :: FromNetfront();
chk :: CheckIPHeader();
cnt :: Counter();
ttl :: DecIPTTL();
out :: ToNetfront();
in -> chk -> cnt -> ttl -> out;
`)
	var tx int
	x.Transmit = func(iface int, _ *packet.Packet) { tx++ }
	ring := telemetry.NewPathRing(8, nil)
	x.EnablePathTrace(ring, 1) // every flow sampled

	if err := x.RunOne(0, mkPacket(1, 0)); err != nil {
		t.Fatal(err)
	}
	traces := ring.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Dataplane != "pipeline" || tr.FlowHash == 0 {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	wantElems := []string{"in", "chk", "cnt", "ttl", "out"}
	if len(tr.Hops) != len(wantElems) {
		t.Fatalf("got %d hops %+v, want %d", len(tr.Hops), tr.Hops, len(wantElems))
	}
	for i, h := range tr.Hops {
		if h.Elem != wantElems[i] {
			t.Fatalf("hop[%d].Elem = %q, want %q", i, h.Elem, wantElems[i])
		}
		if h.FusedRun < 0 {
			t.Fatalf("hop[%d] not tagged with fused run: %+v", i, h)
		}
	}
	if last := tr.Hops[len(tr.Hops)-1]; last.Verdict != "tx:0" {
		t.Fatalf("terminal verdict = %q, want tx:0", last.Verdict)
	}
	if tx != 1 {
		t.Fatalf("traced packet not transmitted (tx=%d)", tx)
	}
	// The traced packet updated element state exactly once.
	if x.Packets != 1 || x.Drops != 0 {
		t.Fatalf("counters: packets=%d drops=%d", x.Packets, x.Drops)
	}
}

func TestPathTraceDivertAndDropReasons(t *testing.T) {
	x := compileString(t, `
in :: FromNetfront();
ttl :: DecIPTTL();
out :: ToNetfront();
in -> ttl -> out;
`)
	ring := telemetry.NewPathRing(8, nil)
	x.EnablePathTrace(ring, 1)
	exp := mkPacket(3, 0)
	exp.TTL = 1 // expires at DecIPTTL; port 1 unwired → drop
	if err := x.RunOne(0, exp); err != nil {
		t.Fatal(err)
	}
	tr := ring.Recent(1)[0]
	n := len(tr.Hops)
	if n < 2 {
		t.Fatalf("hops: %+v", tr.Hops)
	}
	if h := tr.Hops[n-2]; h.Elem != "ttl" || h.Verdict != "divert" || h.OutPort != 1 {
		t.Fatalf("divert hop wrong: %+v", h)
	}
	if h := tr.Hops[n-1]; h.Verdict != "drop:unwired" {
		t.Fatalf("drop hop wrong: %+v", h)
	}
	if x.DropsBy[DropUnwired] != 1 || x.Drops != 1 {
		t.Fatalf("drop attribution: DropsBy=%v Drops=%d", x.DropsBy, x.Drops)
	}
}

func TestPathTraceDiscardAttribution(t *testing.T) {
	x := compileString(t, `
in :: FromNetfront();
dsc :: Discard();
in -> dsc;
`)
	ring := telemetry.NewPathRing(8, nil)
	x.EnablePathTrace(ring, 1)
	if err := x.RunOne(0, mkPacket(4, 0)); err != nil {
		t.Fatal(err)
	}
	tr := ring.Recent(1)[0]
	last := tr.Hops[len(tr.Hops)-1]
	if last.Elem != "dsc" || last.Verdict != "drop:discard" {
		t.Fatalf("discard hop wrong: %+v", last)
	}
	if x.DropsBy[DropDiscard] != 1 {
		t.Fatalf("DropsBy = %v, want one discard", x.DropsBy)
	}
}

func TestPathTraceUnfusedStages(t *testing.T) {
	x := compileString(t, `
in :: FromNetfront();
cls :: IPClassifier(udp dst port 80, -);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
in -> cls;
cls[0] -> out0;
cls[1] -> out1;
`)
	var lastIface int
	x.Transmit = func(iface int, _ *packet.Packet) { lastIface = iface }
	ring := telemetry.NewPathRing(8, nil)
	x.EnablePathTrace(ring, 1)
	pk := mkPacket(1, 0)
	pk.DstPort = 80
	if err := x.RunOne(0, pk); err != nil {
		t.Fatal(err)
	}
	tr := ring.Recent(1)[0]
	wantElems := []string{"in", "cls", "out0"}
	if len(tr.Hops) != len(wantElems) {
		t.Fatalf("hops: %+v", tr.Hops)
	}
	for i, h := range tr.Hops {
		if h.Elem != wantElems[i] {
			t.Fatalf("hop[%d] = %+v, want elem %q", i, h, wantElems[i])
		}
		if h.FusedRun != -1 {
			t.Fatalf("unfused hop tagged with fused run: %+v", h)
		}
	}
	if tr.Hops[1].OutPort != 0 || tr.Hops[1].Verdict != "forward" {
		t.Fatalf("classifier hop wrong: %+v", tr.Hops[1])
	}
	if tr.Hops[2].Verdict != "tx:0" || lastIface != 0 {
		t.Fatalf("egress hop wrong: %+v (iface %d)", tr.Hops[2], lastIface)
	}
}

func TestPathTraceSamplingDeterministic(t *testing.T) {
	src := `
in :: FromNetfront();
out :: ToNetfront();
in -> out;
`
	x := compileString(t, src)
	x.Transmit = func(int, *packet.Packet) {}
	ring := telemetry.NewPathRing(8, nil)

	// Find a rate the test flow's hash misses, then prove it is never
	// sampled; at a matching rate it always is.
	pk := mkPacket(7, 0)
	h := AffinityHash(pk.Tuple())
	miss := 0
	for e := 2; e < 64; e++ {
		if h%uint64(e) != 0 {
			miss = e
			break
		}
	}
	x.EnablePathTrace(ring, miss)
	for i := 0; i < 10; i++ {
		if err := x.RunOne(0, mkPacket(7, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ring.Recent(0)); got != 0 {
		t.Fatalf("unsampled flow produced %d traces", got)
	}
	x.EnablePathTrace(ring, 1)
	for i := 0; i < 3; i++ {
		if err := x.RunOne(0, mkPacket(7, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ring.Recent(0)); got != 3 {
		t.Fatalf("sampled flow produced %d traces, want 3", got)
	}
}

func TestEnginePathTraceMerge(t *testing.T) {
	e, err := NewEngineString(`
in :: FromNetfront();
cnt :: Counter();
out :: ToNetfront();
in -> cnt -> out;
`, Config{Workers: 4, Transmit: func(int, int, *packet.Packet) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rings := e.EnablePathTrace(32, 1)
	if len(rings) != 4 {
		t.Fatalf("got %d rings, want 4", len(rings))
	}
	for i := 0; i < 32; i++ {
		e.Dispatch(0, []*packet.Packet{mkPacket(uint32(i+1), 0)})
	}
	e.Drain()
	merged := telemetry.MergeRecent(0, rings...)
	if len(merged) != 32 {
		t.Fatalf("merged %d traces, want 32", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Seq <= merged[i].Seq {
			t.Fatalf("merge not newest-first at %d: %d then %d", i, merged[i-1].Seq, merged[i].Seq)
		}
	}
}
