package pipeline

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/telemetry"
)

// AffinityHash maps a five-tuple and its exact reverse to the same
// 64-bit hash: the two endpoints are order-normalized before mixing,
// then spread with the same Fibonacci multiplier the vswitch shard
// hash uses. Symmetry matters because stateful elements look up
// reply traffic under the reversed tuple (StatefulFirewall port 1,
// IPRewriter port 1): a flow and its replies must land on the same
// worker for that state to be visible without locks.
func AffinityHash(t packet.FiveTuple) uint64 {
	a := uint64(t.SrcIP)<<16 | uint64(t.SrcPort)
	b := uint64(t.DstIP)<<16 | uint64(t.DstPort)
	if a > b {
		a, b = b, a
	}
	h := a ^ bits.RotateLeft64(b, 23) ^ uint64(t.Protocol)<<56
	return h * 0x9e3779b97f4a7c15
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the worker count, rounded up to a power of two
	// (minimum 1) so worker selection is a shift of the affinity
	// hash's top bits.
	Workers int
	// Depth is the per-worker submission queue depth (batches), 16
	// when zero.
	Depth int
	// Now supplies the time every worker's stateful kernels see.
	// It may be called concurrently.
	Now func() int64
	// Transmit receives packets leaving any worker. It is called from
	// worker goroutines, potentially concurrently with itself.
	Transmit func(worker, iface int, p *packet.Packet)
	// DropHook, if non-nil, observes drops from any worker (same
	// concurrency caveat).
	DropHook func(worker int, p *packet.Packet)
}

type job struct {
	src  int
	pkts []*packet.Packet
	tick bool
}

type engineWorker struct {
	id       int
	x        *Exec
	ch       chan job
	done     chan struct{}
	packets  atomic.Uint64
	batches  atomic.Uint64
	drops    atomic.Uint64
	lastTick atomic.Int64
}

// Engine runs one compiled Program per worker, each worker a
// run-to-completion goroutine over its own element instances. Dispatch
// partitions batches by AffinityHash, so every flow (and its reverse)
// is processed by exactly one worker: stateful elements stay
// single-writer without locks, and per-flow packet order is the
// submission order.
type Engine struct {
	n       int
	shift   uint
	workers []*engineWorker
	wg      sync.WaitGroup
	closed  sync.Once
}

// NewEngine builds cfg once per worker (independent element instances)
// and compiles each into a Program. The configuration must flatten;
// the first compile error is returned.
func NewEngine(cfg *clicklang.Config, c Config) (*Engine, error) {
	n := c.Workers
	if n < 1 {
		n = 1
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	e := &Engine{n: n, shift: uint(64 - bits.TrailingZeros(uint(n)))}
	if n == 1 {
		e.shift = 64
	}
	depth := c.Depth
	if depth <= 0 {
		depth = 16
	}
	for i := 0; i < n; i++ {
		r, err := click.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("pipeline: worker %d: %v", i, err)
		}
		prog, err := Compile(r)
		if err != nil {
			return nil, err
		}
		w := &engineWorker{
			id:   i,
			x:    NewExec(prog),
			ch:   make(chan job, depth),
			done: make(chan struct{}),
		}
		w.x.Now = c.Now
		id := i
		if c.Transmit != nil {
			tx := c.Transmit
			w.x.Transmit = func(iface int, pk *packet.Packet) { tx(id, iface, pk) }
		}
		if c.DropHook != nil {
			dh := c.DropHook
			w.x.DropHook = func(pk *packet.Packet) { dh(id, pk) }
		}
		e.workers = append(e.workers, w)
		go w.loop(e)
	}
	return e, nil
}

// NewEngineString is NewEngine over configuration source text.
func NewEngineString(src string, c Config) (*Engine, error) {
	cfg, err := clicklang.Parse(src)
	if err != nil {
		return nil, err
	}
	return NewEngine(cfg, c)
}

func (w *engineWorker) loop(e *Engine) {
	defer close(w.done)
	for j := range w.ch {
		if j.tick {
			w.lastTick.Store(w.x.Tick())
		} else {
			w.x.Run(j.src, j.pkts)
			w.packets.Add(uint64(len(j.pkts)))
			w.batches.Add(1)
		}
		w.drops.Store(w.x.Drops)
		e.wg.Done()
	}
}

// Workers returns the (rounded) worker count.
func (e *Engine) Workers() int { return e.n }

// EnablePathTrace arms flow-sampled path tracing on every worker:
// each records into its own ring (no cross-worker synchronization),
// and the rings share a sequence counter so scrape-time MergeRecent
// interleaves them in capture order. Must be called before the first
// Dispatch. Returns the per-worker rings.
func (e *Engine) EnablePathTrace(perRing, every int) []*telemetry.PathRing {
	seq := new(atomic.Uint64)
	rings := make([]*telemetry.PathRing, len(e.workers))
	for i, w := range e.workers {
		rings[i] = telemetry.NewPathRing(perRing, seq)
		w.x.EnablePathTrace(rings[i], every)
	}
	return rings
}

// Router exposes worker w's private element graph for introspection
// (stats, tests). Workers mutate their graphs concurrently with
// dispatch; Drain before reading element state.
func (e *Engine) Router(w int) *click.Router { return e.workers[w].x.prog.router }

// WorkerOf returns the worker a packet's flow is pinned to.
func (e *Engine) WorkerOf(pk *packet.Packet) int {
	if e.n == 1 {
		return 0
	}
	return int(AffinityHash(pk.Tuple()) >> e.shift)
}

// Dispatch partitions a batch by flow affinity and submits each
// partition to its worker's queue (blocking when a queue is full).
// The input slice is not retained; per-flow order is preserved because
// a flow's packets always land on the same worker in batch order.
func (e *Engine) Dispatch(src int, pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	if e.n == 1 {
		e.submit(0, src, append(make([]*packet.Packet, 0, len(pkts)), pkts...))
		return
	}
	parts := make([][]*packet.Packet, e.n)
	for _, pk := range pkts {
		w := e.WorkerOf(pk)
		parts[w] = append(parts[w], pk)
	}
	for w, part := range parts {
		if len(part) > 0 {
			e.submit(w, src, part)
		}
	}
}

func (e *Engine) submit(w, src int, pkts []*packet.Packet) {
	e.wg.Add(1)
	e.workers[w].ch <- job{src: src, pkts: pkts}
}

// Drain blocks until every submitted batch (and tick) has run to
// completion.
func (e *Engine) Drain() {
	e.wg.Wait()
}

// Tick schedules a ticker pass on every worker, waits for all of them
// and returns the smallest positive delay until the next due tick, or
// -1 when all workers are idle.
func (e *Engine) Tick() int64 {
	for _, w := range e.workers {
		e.wg.Add(1)
		w.ch <- job{tick: true}
	}
	e.wg.Wait()
	next := int64(-1)
	for _, w := range e.workers {
		if d := w.lastTick.Load(); d >= 0 && (next < 0 || d < next) {
			next = d
		}
	}
	return next
}

// Close drains outstanding work and stops the workers. The engine
// must not be used afterwards.
func (e *Engine) Close() {
	e.closed.Do(func() {
		e.wg.Wait()
		for _, w := range e.workers {
			close(w.ch)
		}
		for _, w := range e.workers {
			<-w.done
		}
	})
}

// WorkerStats is one worker's counters.
type WorkerStats struct {
	Worker  int    `json:"worker"`
	Packets uint64 `json:"packets"`
	Batches uint64 `json:"batches"`
	Drops   uint64 `json:"drops"`
}

// Stats snapshots per-worker counters.
func (e *Engine) Stats() []WorkerStats {
	out := make([]WorkerStats, len(e.workers))
	for i, w := range e.workers {
		out[i] = WorkerStats{
			Worker:  w.id,
			Packets: w.packets.Load(),
			Batches: w.batches.Load(),
			Drops:   w.drops.Load(),
		}
	}
	return out
}

// Totals sums the per-worker counters.
func (e *Engine) Totals() (packets, batches, drops uint64) {
	for _, w := range e.workers {
		packets += w.packets.Load()
		batches += w.batches.Load()
		drops += w.drops.Load()
	}
	return
}
