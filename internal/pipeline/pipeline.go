// Package pipeline compiles an admitted click.Router into a flattened
// run-to-completion program: a topologically ordered stage array with
// pre-resolved next-stage indices, executed batch-in/batch-out. On the
// hot path there is no click.Target interface dispatch and no
// element-name map lookup — each stage is a monomorphic kernel closure
// over the concrete element instance, and forwarding is an index into
// the next stage's input buffer.
//
// The compiled program shares element instances with the router it was
// compiled from, so ticker-driven drains (Exec.Tick walks the ordinary
// graph) and checkpoint/restore observe exactly the state the compiled
// stages mutate. Configurations the compiler cannot flatten (pull-path
// wiring, cycles, order- or randomness-dependent branching, unknown
// classes) fail with an UnsupportedError and callers fall back to
// graph-walk dispatch.
package pipeline

import (
	"errors"
	"fmt"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/packet"
)

// ErrUnsupported marks configurations the compiler cannot flatten.
// Callers should treat it as "use graph-walk dispatch", not as a
// deployment failure.
var ErrUnsupported = errors.New("unsupported configuration")

// UnsupportedError explains why a configuration cannot be flattened.
type UnsupportedError struct {
	Element string // instance name ("" for whole-graph conditions)
	Class   string
	Reason  string
}

// Error implements error.
func (e *UnsupportedError) Error() string {
	if e.Element == "" {
		return "pipeline: " + e.Reason
	}
	return fmt.Sprintf("pipeline: %s :: %s: %s", e.Element, e.Class, e.Reason)
}

// Unwrap makes errors.Is(err, ErrUnsupported) work.
func (e *UnsupportedError) Unwrap() error { return ErrUnsupported }

// ref is a pre-resolved next-stage pointer: the stage a packet emitted
// on some output port goes to, and the input port it arrives on. A
// negative stage index means the output is unwired and the packet is
// dropped, mirroring click.Base.Out.
type ref struct {
	idx  int32
	port int32
}

var dropRef = ref{idx: -1, port: -1}

// kernel processes the batch queued at a stage. in holds the packets;
// ports holds the per-packet arrival port and is non-nil only for
// stages whose element consumes it (needPort), so the common
// single-input case moves 8 bytes per packet per hop, not 16.
type kernel func(x *Exec, st *stage, in []*packet.Packet, ports []int32)

// stage is one flattened element.
type stage struct {
	el       click.Element
	name     string
	class    string
	idx      int32 // own stage index (fused-run id in path traces)
	next     []ref // per output port; missing ports drop
	out0     ref   // next[0] (or drop), for single-output fast paths
	run      kernel
	needPort bool // element consumes the arrival port (multi-input)

	// Fused linear run (see fuse.go): when ops is non-nil this stage
	// is the head of a maximal single-successor chain and run is
	// runFused — each packet walks the whole op list register-hot,
	// with no intermediate stage buffers. Survivors land at tail.
	ops  []fop
	tail ref
}

// wiring is the slice of click.Base the compiler introspects.
type wiring interface {
	Target(p int) click.Target
	NumWiredOutputs() int
}

// Program is a compiled router. A Program itself is immutable; run it
// through an Exec (single worker) or an Engine (N workers with flow
// affinity).
type Program struct {
	router *click.Router
	stages []stage
	srcs   []int32 // stage index per injection point, in decl order
	fused  int     // stages folded into fused runs (diagnostics)
}

// Router returns the router the program was compiled from.
func (p *Program) Router() *click.Router { return p.router }

// NumStages returns the number of flattened stages.
func (p *Program) NumStages() int { return len(p.stages) }

// NumSources returns the number of injection points.
func (p *Program) NumSources() int { return len(p.srcs) }

// NumFused returns how many stages were folded into fused linear runs
// (they still appear in Stages but execute inside their run head).
func (p *Program) NumFused() int { return p.fused }

// Stages returns "name :: class" per stage in execution order, for
// diagnostics.
func (p *Program) Stages() []string {
	out := make([]string, len(p.stages))
	for i := range p.stages {
		out[i] = p.stages[i].name + " :: " + p.stages[i].class
	}
	return out
}

// Compile flattens a built router into a Program. It returns an
// UnsupportedError (unwrapping to ErrUnsupported) when the
// configuration cannot be flattened:
//
//   - pull-path wiring (a Puller output feeding a pull input),
//   - a cycle in the element graph,
//   - an element whose output interleaving depends on arrival order or
//     randomness (RoundRobinSwitch, RandomSample),
//   - self-scheduled sources (TimedSource),
//   - any class without a compiled kernel.
func Compile(r *click.Router) (*Program, error) {
	els := r.Elements()
	if len(els) == 0 {
		return nil, &UnsupportedError{Reason: "empty configuration"}
	}
	idx := make(map[click.Element]int32, len(els))
	for i, el := range els {
		idx[el] = int32(i)
	}

	// Reject pull-path wiring up front: those packets move on the
	// consumer's schedule, which run-to-completion cannot model.
	for _, el := range els {
		w, ok := el.(wiring)
		if !ok {
			return nil, &UnsupportedError{el.Name(), el.Class(), "element does not expose wiring"}
		}
		if _, isPuller := el.(click.Puller); !isPuller {
			continue
		}
		for p := 0; p < w.NumWiredOutputs(); p++ {
			if t := w.Target(p); t.Elem != nil {
				if _, pull := t.Elem.(click.UpstreamSetter); pull {
					return nil, &UnsupportedError{el.Name(), el.Class(), "pull-path wiring (output drained by a pull consumer)"}
				}
			}
		}
	}

	// Kahn topological sort, picking the lowest declaration index at
	// every step so stage order is deterministic. Because every edge
	// goes from an earlier stage to a later one, Exec can run stages
	// in a single forward sweep.
	indeg := make([]int, len(els))
	for _, el := range els {
		w := el.(wiring)
		for p := 0; p < w.NumWiredOutputs(); p++ {
			if t := w.Target(p); t.Elem != nil {
				indeg[idx[t.Elem]]++
			}
		}
	}
	placed := make([]bool, len(els))
	order := make([]int32, 0, len(els))
	for len(order) < len(els) {
		pick := int32(-1)
		for i := range els {
			if !placed[i] && indeg[i] == 0 {
				pick = int32(i)
				break
			}
		}
		if pick < 0 {
			return nil, &UnsupportedError{Reason: "cycle in element graph"}
		}
		placed[pick] = true
		order = append(order, pick)
		w := els[pick].(wiring)
		for p := 0; p < w.NumWiredOutputs(); p++ {
			if t := w.Target(p); t.Elem != nil {
				indeg[idx[t.Elem]]--
			}
		}
	}

	pos := make([]int32, len(els)) // declaration index -> stage index
	for si, di := range order {
		pos[di] = int32(si)
	}

	prog := &Program{router: r, stages: make([]stage, len(els))}
	for si, di := range order {
		el := els[di]
		st := &prog.stages[si]
		st.el = el
		st.idx = int32(si)
		st.name = el.Name()
		st.class = el.Class()
		w := el.(wiring)
		st.next = make([]ref, w.NumWiredOutputs())
		for p := range st.next {
			t := w.Target(p)
			if t.Elem == nil {
				st.next[p] = dropRef
				continue
			}
			st.next[p] = ref{idx: pos[idx[t.Elem]], port: int32(t.Port)}
		}
		st.out0 = dropRef
		if len(st.next) > 0 {
			st.out0 = st.next[0]
		}
		k, needPort, reason := kernelFor(el)
		if k == nil {
			return nil, &UnsupportedError{st.name, st.class, reason}
		}
		st.run = k
		st.needPort = needPort
	}
	prog.fuse()

	// Injection points, in declaration order (same order click.Build
	// collects them, so Exec.Run(i, ...) matches Router.Inject(i, ...)).
	for _, el := range els {
		if inj, ok := el.(click.Injector); ok && inj.InjectionPoint() {
			prog.srcs = append(prog.srcs, pos[idx[el]])
		}
	}
	if len(prog.srcs) == 0 {
		return nil, &UnsupportedError{Reason: "no injection point (FromNetfront)"}
	}
	return prog, nil
}

// CompileConfig parses, builds and compiles a configuration source.
func CompileConfig(src string) (*Program, error) {
	cfg, err := clicklang.Parse(src)
	if err != nil {
		return nil, err
	}
	r, err := click.Build(cfg)
	if err != nil {
		return nil, err
	}
	return Compile(r)
}

// Check reports whether a configuration source can be flattened,
// without keeping the compiled result. Admission uses it to decide
// compiled-vs-fallback before a module is placed.
func Check(src string) error {
	_, err := CompileConfig(src)
	return err
}
