package pipeline

import (
	"strconv"

	"github.com/in-net/innet/internal/telemetry"
)

// RegisterMetrics folds the engine's counters into a telemetry
// registry under the innet_pipeline_* families, one series per worker
// plus the label pairs the caller supplies. Like the vswitch metrics,
// registration costs nothing on the hot path: the callbacks read the
// atomics the workers already maintain.
func (e *Engine) RegisterMetrics(r *telemetry.Registry, labelPairs ...string) {
	if r == nil {
		return
	}
	r.GaugeFunc("innet_pipeline_workers",
		"Run-to-completion pipeline workers in this engine.",
		func() float64 { return float64(e.n) }, labelPairs...)
	for _, w := range e.workers {
		w := w
		labels := append(append([]string(nil), labelPairs...),
			"worker", strconv.Itoa(w.id))
		r.CounterFunc("innet_pipeline_packets_total",
			"Packets run to completion by a pipeline worker.",
			func() float64 { return float64(w.packets.Load()) }, labels...)
		r.CounterFunc("innet_pipeline_batches_total",
			"Batches run to completion by a pipeline worker.",
			func() float64 { return float64(w.batches.Load()) }, labels...)
		r.CounterFunc("innet_pipeline_drops_total",
			"Packets dropped inside a pipeline worker's program.",
			func() float64 { return float64(w.drops.Load()) }, labels...)
	}
}
