package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

// egress is one observed transmission or drop, with enough of the
// packet to detect any byte-level divergence.
type egress struct {
	iface int // -1 for drops
	snap  string
	flow  uint32 // the flow id stamped in UserID before injection
}

func snapPacket(pk *packet.Packet) string {
	return fmt.Sprintf("%s ttl=%d tos=%d paint=%d tag=%d seq=%d payload=%q",
		pk.Tuple(), pk.TTL, pk.TOS, pk.Paint, pk.FlowTag, pk.Seq, pk.Payload)
}

// step is one unit of differential input: a batch injected at a
// source, or a ticker pass, at a given virtual time.
type step struct {
	src  int
	pkts []*packet.Packet
	now  int64
	tick bool
}

func clones(pkts []*packet.Packet) []*packet.Packet {
	out := make([]*packet.Packet, len(pkts))
	for i, pk := range pkts {
		out[i] = pk.Clone()
	}
	return out
}

// runGraph replays steps through per-packet graph-walk dispatch.
func runGraph(t *testing.T, r *click.Router, steps []step) []egress {
	t.Helper()
	var log []egress
	var now int64
	ctx := &click.Context{
		Now: func() int64 { return now },
		Transmit: func(iface int, pk *packet.Packet) {
			log = append(log, egress{iface, snapPacket(pk), pk.UserID})
		},
		DropHook: func(pk *packet.Packet) {
			log = append(log, egress{-1, snapPacket(pk), pk.UserID})
		},
	}
	for _, s := range steps {
		now = s.now
		if s.tick {
			r.Tick(ctx)
			continue
		}
		for _, pk := range clones(s.pkts) {
			if err := r.Inject(ctx, s.src, pk); err != nil {
				t.Fatalf("inject: %v", err)
			}
		}
	}
	return log
}

// runCompiled replays steps through a compiled Exec.
func runCompiled(t *testing.T, prog *Program, steps []step) []egress {
	t.Helper()
	var log []egress
	var now int64
	x := NewExec(prog)
	x.Now = func() int64 { return now }
	x.Transmit = func(iface int, pk *packet.Packet) {
		log = append(log, egress{iface, snapPacket(pk), pk.UserID})
	}
	x.DropHook = func(pk *packet.Packet) {
		log = append(log, egress{-1, snapPacket(pk), pk.UserID})
	}
	for _, s := range steps {
		now = s.now
		if s.tick {
			x.Tick()
			continue
		}
		if err := x.Run(s.src, clones(s.pkts)); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	return log
}

type flowKey struct {
	flow  uint32
	iface int
}

// perFlow groups an egress log by (flow, egress interface), with
// drops under iface -1, preserving order within each group.
func perFlow(log []egress) map[flowKey][]string {
	out := make(map[flowKey][]string)
	for _, e := range log {
		k := flowKey{e.flow, e.iface}
		out[k] = append(out[k], e.snap)
	}
	return out
}

// diffLogs compares two egress logs per (flow, interface) sequence —
// the pipeline's ordering guarantee: a flow's packets reach each
// egress interface in the same order and with identical bytes, and
// its drops happen in the same order, though the global interleaving
// across flows (and between a flow's drops and deliveries) may follow
// stage order instead of depth-first graph order.
func diffLogs(t *testing.T, graph, compiled []egress) {
	t.Helper()
	if len(graph) != len(compiled) {
		t.Fatalf("egress count: graph=%d compiled=%d", len(graph), len(compiled))
	}
	g, c := perFlow(graph), perFlow(compiled)
	if len(g) != len(c) {
		t.Fatalf("flow/iface group count: graph=%d compiled=%d", len(g), len(c))
	}
	for k, gs := range g {
		cs := c[k]
		if len(gs) != len(cs) {
			t.Fatalf("flow %d iface %d egress count: graph=%d compiled=%d", k.flow, k.iface, len(gs), len(cs))
		}
		for i := range gs {
			if gs[i] != cs[i] {
				t.Fatalf("flow %d iface %d egress[%d]:\n graph:    %s\n compiled: %s", k.flow, k.iface, i, gs[i], cs[i])
			}
		}
	}
}

// differential builds the config twice (independent element state per
// mode), runs both modes over the same steps and compares.
func differential(t *testing.T, src string, steps []step) (*click.Router, *click.Router) {
	t.Helper()
	gr := click.MustBuildString(src)
	pr := click.MustBuildString(src)
	prog, err := Compile(pr)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	glog := runGraph(t, gr, steps)
	clog := runCompiled(t, prog, steps)
	if len(glog) == 0 {
		t.Fatalf("differential test saw no egress at all")
	}
	diffLogs(t, glog, clog)
	return gr, pr
}

// mkPacket builds a deterministic test packet for flow f, index i.
func mkPacket(f uint32, i int) *packet.Packet {
	return &packet.Packet{
		SrcIP:    0x0a000000 + f,       // 10.0.0.f
		DstIP:    0xc0000200 + (f % 7), // 192.0.2.x
		SrcPort:  uint16(1024 + f),
		DstPort:  uint16(80 + f%3),
		Protocol: packet.ProtoUDP,
		TTL:      uint8(2 + (i+int(f))%60),
		Payload:  []byte(fmt.Sprintf("f%d-p%d", f, i)),
		UserID:   f,
	}
}

func flowBatch(flows, perFlow int) []*packet.Packet {
	var out []*packet.Packet
	for i := 0; i < perFlow; i++ {
		for f := 0; f < flows; f++ {
			out = append(out, mkPacket(uint32(f+1), i))
		}
	}
	return out
}

func TestDifferentialLinear(t *testing.T) {
	src := `
in :: FromNetfront();
chk :: CheckIPHeader();
cnt :: Counter();
ttl :: DecIPTTL();
out :: ToNetfront();
in -> chk -> cnt -> ttl -> out;
`
	bad := mkPacket(99, 0)
	bad.TTL = 0 // CheckIPHeader drop
	exp := mkPacket(98, 0)
	exp.TTL = 1 // DecIPTTL expiry drop
	steps := []step{{src: 0, pkts: append(flowBatch(8, 16), bad, exp), now: 1000}}
	gr, cr := differential(t, src, steps)

	// Element state must match exactly too.
	gc := gr.Element("cnt").(*elements.Counter)
	cc := cr.Element("cnt").(*elements.Counter)
	if gc.Packets != cc.Packets || gc.Bytes != cc.Bytes {
		t.Errorf("counter: graph=%d/%d compiled=%d/%d", gc.Packets, gc.Bytes, cc.Packets, cc.Bytes)
	}
	gk := gr.Element("chk").(*elements.CheckIPHeader)
	ck := cr.Element("chk").(*elements.CheckIPHeader)
	if gk.Drops != ck.Drops {
		t.Errorf("checkipheader drops: graph=%d compiled=%d", gk.Drops, ck.Drops)
	}
	gt := gr.Element("ttl").(*elements.DecIPTTL)
	ct := cr.Element("ttl").(*elements.DecIPTTL)
	if gt.Expired != ct.Expired {
		t.Errorf("decipttl expired: graph=%d compiled=%d", gt.Expired, ct.Expired)
	}
}

func TestDifferentialClassifierFanout(t *testing.T) {
	src := `
in :: FromNetfront();
cls :: IPClassifier(udp dst port 80, udp dst port 81, -);
c0 :: Counter();
c1 :: Counter();
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
out2 :: ToNetfront(2);
in -> cls;
cls[0] -> c0 -> out0;
cls[1] -> c1 -> out1;
cls[2] -> out2;
`
	steps := []step{{src: 0, pkts: flowBatch(12, 8), now: 5}}
	differential(t, src, steps)
}

func TestDifferentialFirewallReplay(t *testing.T) {
	// One ingress; a classifier splits outbound (from 10/8) and
	// inbound traffic onto the firewall's two ports. Single
	// predecessor into the firewall keeps lane order identical to the
	// graph walk, so even intra-batch record-then-reply sequences
	// must match exactly.
	src := `
in :: FromNetfront();
dir :: IPClassifier(src net 10.0.0.0/8, -);
fw :: StatefulFirewall(allow udp, timeout 5);
out :: ToNetfront(0);
back :: ToNetfront(1);
in -> dir;
dir[0] -> [0]fw;
dir[1] -> [1]fw;
fw[0] -> out;
fw[1] -> back;
`
	var mixed []*packet.Packet
	for f := uint32(1); f <= 6; f++ {
		fwd := mkPacket(f, 0)
		mixed = append(mixed, fwd)
		rep := fwd.Clone()
		rep.SrcIP, rep.DstIP = fwd.DstIP, fwd.SrcIP
		rep.SrcPort, rep.DstPort = fwd.DstPort, fwd.SrcPort
		rep.Payload = []byte(fmt.Sprintf("rep-f%d", f))
		mixed = append(mixed, rep)
	}
	// An inbound packet with no recorded flow: must be blocked in
	// both modes.
	orphan := mkPacket(50, 0)
	orphan.SrcIP = 0xc0000299
	mixed = append(mixed, orphan)
	steps := []step{
		{src: 0, pkts: mixed, now: 1_000_000_000},
		// Replay the replies much later: the flow timeout (5s) must
		// expire state identically in both modes.
		{src: 0, pkts: mixed, now: 8_000_000_000},
	}
	gr, cr := differential(t, src, steps)
	gf := gr.Element("fw").(interface{ ActiveFlows() int }).ActiveFlows()
	cf := cr.Element("fw").(interface{ ActiveFlows() int }).ActiveFlows()
	if gf != cf {
		t.Errorf("firewall flows: graph=%d compiled=%d", gf, cf)
	}
}

func TestDifferentialNAT(t *testing.T) {
	src := `
in :: FromNetfront();
dir :: IPClassifier(dst host 172.16.0.1, -);
nat :: IPRewriter(pattern 172.16.0.1 4000 - - 0 1);
out :: ToNetfront(0);
back :: ToNetfront(1);
in -> dir;
dir[1] -> [0]nat;
dir[0] -> [1]nat;
nat[0] -> out;
nat[1] -> back;
`
	var pkts []*packet.Packet
	for f := uint32(1); f <= 5; f++ {
		fwd := mkPacket(f, 0)
		fwd.DstIP = packet.MustParseIP("198.51.100.7")
		pkts = append(pkts, fwd)
		// The reply the rewritten packet would generate.
		rep := &packet.Packet{
			SrcIP:    fwd.DstIP,
			DstIP:    packet.MustParseIP("172.16.0.1"),
			SrcPort:  fwd.DstPort,
			DstPort:  4000,
			Protocol: packet.ProtoUDP,
			TTL:      64,
			Payload:  []byte(fmt.Sprintf("natrep-f%d", f)),
			UserID:   100 + f,
		}
		pkts = append(pkts, rep)
	}
	steps := []step{{src: 0, pkts: pkts, now: 77}}
	differential(t, src, steps)
}

func TestDifferentialRateAndMeter(t *testing.T) {
	src := `
in :: FromNetfront();
rl :: RateLimiter(4, 4);
m :: Meter(2);
ok :: ToNetfront(0);
over :: ToNetfront(1);
in -> rl -> m;
m[0] -> ok;
m[1] -> over;
`
	steps := []step{
		{src: 0, pkts: flowBatch(3, 2), now: 1_000_000_000},
		{src: 0, pkts: flowBatch(3, 2), now: 1_500_000_000},
		{src: 0, pkts: flowBatch(3, 2), now: 4_000_000_000},
	}
	differential(t, src, steps)
}

func TestDifferentialTimedUnqueueTicks(t *testing.T) {
	src := `
in :: FromNetfront();
tu :: TimedUnqueue(1, 3);
cnt :: Counter();
out :: ToNetfront();
in -> tu -> cnt -> out;
`
	steps := []step{
		{src: 0, pkts: flowBatch(2, 3), now: 1_000_000_000},
		{tick: true, now: 1_500_000_000}, // before interval: nothing
		{tick: true, now: 2_100_000_000}, // release burst of 3
		{tick: true, now: 3_200_000_000}, // release rest
		{src: 0, pkts: flowBatch(1, 1), now: 3_300_000_000},
		{tick: true, now: 9_000_000_000},
	}
	differential(t, src, steps)
}

func TestDifferentialQueueTickDrain(t *testing.T) {
	src := `
in :: FromNetfront();
q :: Queue(4);
out :: ToNetfront();
in -> q -> out;
`
	steps := []step{
		{src: 0, pkts: flowBatch(3, 2), now: 10}, // 6 packets into cap-4 queue: 2 drop
		{tick: true, now: 20},
		{src: 0, pkts: flowBatch(1, 1), now: 30},
		{tick: true, now: 40},
	}
	gr, cr := differential(t, src, steps)
	for _, r := range []*click.Router{gr, cr} {
		if n := r.Element("q").(interface{ Len() int }).Len(); n != 0 {
			t.Errorf("queue not drained: %d", n)
		}
	}
}

func TestDifferentialTeeAndPaint(t *testing.T) {
	src := `
in :: FromNetfront();
tee :: Tee(3);
p1 :: Paint(7);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
out2 :: ToNetfront(2);
in -> tee;
tee[0] -> out0;
tee[1] -> p1 -> out1;
tee[2] -> out2;
`
	steps := []step{{src: 0, pkts: flowBatch(4, 4), now: 3}}
	differential(t, src, steps)
}

func TestDifferentialMirrorCRC(t *testing.T) {
	src := `
in :: FromNetfront();
f :: IPFilter(allow udp, deny all);
crc :: SetCRC32();
mir :: IPMirror();
out :: ToNetfront();
in -> f -> crc -> mir -> out;
`
	tcp := mkPacket(42, 0)
	tcp.Protocol = packet.ProtoTCP // denied by the filter
	steps := []step{{src: 0, pkts: append(flowBatch(6, 5), tcp), now: 9}}
	differential(t, src, steps)
}

func TestDifferentialHashSwitchRoute(t *testing.T) {
	src := `
in :: FromNetfront();
hs :: HashSwitch(4);
r0 :: LookupIPRoute(192.0.2.0/24 0, 0.0.0.0/0 1);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
out2 :: ToNetfront(2);
out3 :: ToNetfront(3);
outd :: ToNetfront(9);
in -> hs;
hs[0] -> r0;
r0[0] -> out0;
r0[1] -> outd;
hs[1] -> out1;
hs[2] -> out2;
hs[3] -> out3;
`
	steps := []step{{src: 0, pkts: flowBatch(16, 4), now: 1}}
	differential(t, src, steps)
}

func TestDifferentialChangeEnforcer(t *testing.T) {
	src := `
in :: FromNetfront(0);
ret :: FromNetfront(1);
ce :: ChangeEnforcer(whitelist 203.0.113.5, timeout 2);
toMod :: ToNetfront(0);
toWorld :: ToNetfront(1);
in -> [0]ce;
ret -> [1]ce;
ce[0] -> toMod;
ce[1] -> toWorld;
`
	inbound := flowBatch(4, 1)
	var outbound []*packet.Packet
	for _, pk := range inbound {
		rep := pk.Clone()
		rep.SrcIP, rep.DstIP = pk.DstIP, pk.SrcIP
		outbound = append(outbound, rep)
	}
	// One unauthorized destination and one whitelisted one.
	unauth := mkPacket(70, 0)
	unauth.DstIP = packet.MustParseIP("8.8.8.8")
	wl := mkPacket(71, 0)
	wl.DstIP = packet.MustParseIP("203.0.113.5")
	outbound = append(outbound, unauth, wl)
	steps := []step{
		{src: 0, pkts: inbound, now: 1_000_000_000},
		{src: 1, pkts: outbound, now: 2_000_000_000},
		// After the 2s timeout the implicit authorization must lapse
		// in both modes.
		{src: 1, pkts: outbound, now: 9_000_000_000},
	}
	differential(t, src, steps)
}

func TestCompileFallbacks(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"round-robin", `in :: FromNetfront(); rr :: RoundRobinSwitch(2); a :: ToNetfront(0); b :: ToNetfront(1); in -> rr; rr[0] -> a; rr[1] -> b;`},
		{"random-sample", `in :: FromNetfront(); rs :: RandomSample(0.5); a :: ToNetfront(); in -> rs; rs[0] -> a;`},
		{"timed-source", `ts :: TimedSource(1); in :: FromNetfront(); out :: ToNetfront(); ts -> out; in -> out;`},
		{"pull-wiring", `in :: FromNetfront(); q :: Queue(10); uq :: Unqueue(); out :: ToNetfront(); in -> q -> uq -> out;`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileConfig(tc.src)
			if err == nil {
				t.Fatalf("expected compile failure")
			}
			if !errors.Is(err, ErrUnsupported) {
				t.Fatalf("expected ErrUnsupported, got %v", err)
			}
			var ue *UnsupportedError
			if !errors.As(err, &ue) {
				t.Fatalf("expected UnsupportedError, got %T", err)
			}
		})
	}
}

func TestCompileRejectsCycle(t *testing.T) {
	src := `
in :: FromNetfront();
a :: Counter();
b :: Counter();
out :: ToNetfront();
in -> a;
a -> b;
b -> [0]a;
`
	// Wiring a into b and b back into a is a cycle; a's input port 0
	// has two upstreams which click allows, the loop does not break
	// at build time.
	_, err := CompileConfig(src)
	if err == nil || !errors.Is(err, ErrUnsupported) {
		t.Fatalf("expected cycle rejection, got %v", err)
	}
}

func TestCompileStageOrderAndIntrospection(t *testing.T) {
	prog, err := CompileConfig(`in :: FromNetfront(); c :: Counter(); out :: ToNetfront(); in -> c -> out;`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumStages() != 3 || prog.NumSources() != 1 {
		t.Fatalf("stages=%d sources=%d", prog.NumStages(), prog.NumSources())
	}
	want := []string{"in :: FromNetfront", "c :: Counter", "out :: ToNetfront"}
	got := prog.Stages()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestExecDropsCountAndPool(t *testing.T) {
	prog, err := CompileConfig(`in :: FromNetfront(); d :: Discard(); in -> d;`)
	if err != nil {
		t.Fatal(err)
	}
	x := NewExec(prog)
	pool := packet.NewPool(4, 64)
	x.Pool = pool
	pk := pool.Get()
	if err := x.RunOne(0, pk); err != nil {
		t.Fatal(err)
	}
	if x.Drops != 1 {
		t.Fatalf("drops = %d", x.Drops)
	}
	if _, puts, _ := pool.Stats(); puts != 1 {
		t.Fatalf("pool puts = %d", puts)
	}
	if err := x.Run(5, nil); err == nil {
		t.Fatal("expected bad source error")
	}
}
