package telemetry

import (
	"sync"
	"time"
)

// Event is one flight-recorder entry: a structured, timestamped
// record of a control-plane or fault-path transition (election won,
// leader fenced, VM crash, platform outage, journal rollback, ...).
// Events are for postmortems — "what sequence of things happened" —
// where metrics only say "how many".
type Event struct {
	// Seq is assigned by the recorder: strictly increasing for the
	// process lifetime, so consumers can order events and detect ring
	// overwrite gaps.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock emission time.
	Time time.Time `json:"time"`
	// Type names the transition: "election-won", "fenced", "vm-crash",
	// "vm-respawn", "platform-outage", "platform-recover",
	// "vm-evicted", "compile-fallback", "journal-rollback",
	// "journal-wedged", "platform-down", "platform-up",
	// "module-failover", "migration-failed", "cache-invalidate".
	Type string `json:"type"`
	// Source is the emitting subsystem: "replication", "platform",
	// "journal", "controller".
	Source string `json:"source"`
	// Detail is human-readable context (the fencing reason, the crash
	// cause, the compile error).
	Detail string `json:"detail,omitempty"`
	// Ref names the subject when one exists: a platform name, a
	// deployment ID, a module address.
	Ref string `json:"ref,omitempty"`
}

// Recorder is the flight recorder: a bounded mutex-guarded ring of
// the most recent events. Recording is a few words copied under a
// short critical section — events are rare (faults, elections,
// compile decisions), never per-packet, so a mutex is cheap and keeps
// Recent racefree. A nil *Recorder no-ops, matching the registry's
// nil-handle convention, so emission sites need no enabled branch.
type Recorder struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool
	seq  uint64
}

// DefaultEventRing is the ring capacity NewRecorder uses for n <= 0.
const DefaultEventRing = 512

// NewRecorder returns a recorder retaining the last n events.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultEventRing
	}
	return &Recorder{ring: make([]Event, n)}
}

// Record appends one event to the ring.
func (rec *Recorder) Record(typ, source, detail, ref string) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.seq++
	rec.ring[rec.next] = Event{
		Seq:    rec.seq,
		Time:   time.Now(),
		Type:   typ,
		Source: source,
		Detail: detail,
		Ref:    ref,
	}
	rec.next++
	if rec.next == len(rec.ring) {
		rec.next = 0
		rec.full = true
	}
	rec.mu.Unlock()
}

// Recent returns up to n events, newest first (n <= 0 means all
// retained). Returns nil on a nil recorder.
func (rec *Recorder) Recent(n int) []Event {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	size := rec.next
	if rec.full {
		size = len(rec.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := (rec.next - 1 - i + len(rec.ring)) % len(rec.ring)
		out = append(out, rec.ring[idx])
	}
	return out
}

// Len reports how many events the ring currently retains.
func (rec *Recorder) Len() int {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.full {
		return len(rec.ring)
	}
	return rec.next
}
