package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PathHop is one stage of a sampled packet's traversal: the element
// it entered, the ports it used, and what the stage decided. A fused
// opcode run (the compiled pipeline's linear-run interpreter) records
// one hop per constituent element, tagged with the fused run's stage
// id, so operators see through fusion without the hot path being
// un-fused.
type PathHop struct {
	// Elem is the element (or kernel) name from the Click config.
	Elem string `json:"elem"`
	// InPort / OutPort are the ports the packet arrived on and left
	// by. -1 when not applicable (terminal verdicts have no out port).
	InPort  int `json:"in_port"`
	OutPort int `json:"out_port"`
	// Verdict says what happened at this hop: "forward" (moved to the
	// next element), "tx:<iface>" (left the dataplane), "drop:<reason>"
	// (discarded, reason from the drop taxonomy), or "divert" (took a
	// non-default branch out of a fused run).
	Verdict string `json:"verdict"`
	// FusedRun is the compiled-pipeline stage index whose fused opcode
	// list produced this hop, or -1 for un-fused stages and the
	// graph-walk fallback.
	FusedRun int `json:"fused_run"`
}

// PathTrace is one sampled packet's complete journey through one
// module's dataplane.
type PathTrace struct {
	// Seq orders traces across the per-worker rings of one module
	// (shared counter), newest = highest.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock capture time.
	Time time.Time `json:"time"`
	// FlowHash is the symmetric flow-affinity hash the sampler keyed
	// on; both directions of a connection share it.
	FlowHash uint64 `json:"flow_hash"`
	// Dataplane says which engine produced the trace: "pipeline"
	// (compiled run-to-completion) or "graph" (element-walk fallback).
	Dataplane string `json:"dataplane"`
	// Hops is the stage-by-stage traversal, in execution order.
	Hops []PathHop `json:"hops"`
}

// PathRing retains the most recent path traces for one execution
// context (one pipeline worker, or one module's graph walker). Rings
// belonging to the same module share a *atomic.Uint64 sequence source
// so MergeRecent can interleave them in capture order. Writes take a
// short mutex — they happen at most once per sampled packet (1-in-N
// flows), never on the un-sampled fast path. A nil *PathRing no-ops.
type PathRing struct {
	mu   sync.Mutex
	ring []PathTrace
	next int
	full bool
	seq  *atomic.Uint64
}

// DefaultPathRing is the per-ring capacity NewPathRing uses for
// n <= 0.
const DefaultPathRing = 64

// DefaultTraceEvery is the default flow sampling rate: one traced
// flow in every N distinct flow-hash residues.
const DefaultTraceEvery = 64

// NewPathRing returns a ring retaining n traces, stamping them from
// seq (pass the module's shared counter; nil allocates a private
// one).
func NewPathRing(n int, seq *atomic.Uint64) *PathRing {
	if n <= 0 {
		n = DefaultPathRing
	}
	if seq == nil {
		seq = new(atomic.Uint64)
	}
	return &PathRing{ring: make([]PathTrace, n), seq: seq}
}

// Sampled reports whether a flow hash is selected at a 1-in-every
// rate. Deterministic: the same flow (and, with a symmetric hash, its
// reverse direction) is always either traced or not, so a sampled
// flow yields its complete path every time it appears.
func Sampled(hash uint64, every int) bool {
	return every > 0 && hash%uint64(every) == 0
}

// Put commits one trace, stamping Seq and Time.
func (r *PathRing) Put(t PathTrace) {
	if r == nil {
		return
	}
	t.Seq = r.seq.Add(1)
	t.Time = time.Now()
	r.mu.Lock()
	r.ring[r.next] = t
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Recent returns up to n traces, newest first (n <= 0 means all
// retained). Hops are deep-copied so callers never alias ring memory.
func (r *PathRing) Recent(n int) []PathTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]PathTrace, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		t := r.ring[idx]
		t.Hops = append([]PathHop(nil), t.Hops...)
		out = append(out, t)
	}
	return out
}

// MergeRecent interleaves the newest n traces across a module's
// per-worker rings, ordered by shared sequence number (newest first).
// This is the scrape-time merge: workers never synchronize while
// recording.
func MergeRecent(n int, rings ...*PathRing) []PathTrace {
	var all []PathTrace
	for _, r := range rings {
		all = append(all, r.Recent(0)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq > all[j].Seq })
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}
