// Package telemetry is the repo's dependency-free observability
// substrate: a metrics registry (atomic counters, gauges, fixed-bucket
// histograms) rendered in the Prometheus text exposition format
// v0.0.4, plus a lightweight admission-span tracer (tracer.go).
//
// Design constraints, in order:
//
//  1. Near-free when disabled. A nil *Registry hands out nil
//     instrument handles, and every handle method no-ops on a nil
//     receiver — instrumented code never branches on "is telemetry
//     on" and a disabled build pays one predictable nil check.
//  2. Near-free when enabled. Counters and gauges are single atomic
//     words; histograms are an atomic word per bucket. Exposition
//     (WritePrometheus) only reads atomics and user callbacks, so a
//     scrape never blocks a hot path.
//  3. No dependencies. Only the standard library; subsystems
//     (controller, vswitch, platform, journal, api) may import
//     telemetry without dragging anything else in.
//
// Metric naming convention: innet_<subsystem>_<name>, with _total
// suffixed on counters and base units of seconds — see DESIGN.md
// "Telemetry".
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency buckets, in seconds: wide enough
// to cover a cache-hit admission (~µs) through a budget-bounded
// symbolic execution (seconds).
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// atomic per bucket; Sum is kept as float bits under CAS. A nil
// *Histogram no-ops.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// The total is bumped before the bucket so a concurrent scrape can
	// never render a cumulative bucket above the +Inf count.
	h.count.Add(1)
	// Buckets are few (≈13); linear scan beats binary search in
	// practice and keeps the code branch-predictable.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// series is one labeled instance inside a family.
type series struct {
	labels string // canonical rendered label set, "" or `a="b",c="d"`
	c      *Counter
	g      *Gauge
	fn     func() float64 // counterfunc / gaugefunc
	h      *Histogram
}

// family groups all series of one metric name under a single
// HELP/TYPE header.
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	by   map[string]*series
}

// Registry holds metric families. A nil *Registry hands out nil
// handles, so instrumentation sites need no enabled/disabled branch.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// renderLabels canonicalizes k/v pairs (sorted by key, escaped).
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: label pairs must come in key,value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// getSeries finds or creates the series for name+labels, enforcing
// one type and help per family.
func (r *Registry) getSeries(name, help, typ string, labels []string) *series {
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, by: make(map[string]*series)}
		r.fam[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	ls := renderLabels(labels)
	s := f.by[ls]
	if s == nil {
		s = &series{labels: ls}
		f.by[ls] = s
	}
	return s
}

// Counter returns the counter for name with the given label pairs,
// registering it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "counter", labelPairs)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that already maintain
// their own monotonic counters (vswitch shards, platform lifecycle
// counters, the journal). fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "counter", labelPairs)
	s.fn = fn
}

// Gauge returns the settable gauge for name+labels. Nil on a nil
// registry.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "gauge", labelPairs)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "gauge", labelPairs)
	s.fn = fn
}

// Histogram returns the histogram for name+labels, with the given
// bucket upper bounds (nil = DefBuckets). Nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "histogram", labelPairs)
	if s.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		h := &Histogram{bounds: append([]float64(nil), buckets...)}
		sort.Float64s(h.bounds)
		h.counts = make([]atomic.Uint64, len(h.bounds))
		s.h = h
	}
	return s.h
}

// formatValue renders a sample value. Integral floats print without
// an exponent or trailing zeros so counter output is stable and
// diff-friendly.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// formatBound renders a bucket upper bound for the le label.
func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format v0.0.4: families sorted by name, series sorted by
// label set, histogram buckets cumulative and terminated by +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fam))
	for name := range r.fam {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; the sample
	// values are atomics (or callbacks) read lock-free below, so a
	// slow writer cannot hold the registry.
	type snap struct {
		f      *family
		series []*series
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.fam[name]
		keys := make([]string, 0, len(f.by))
		for k := range f.by {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]*series, len(keys))
		for i, k := range keys {
			ss[i] = f.by[k]
		}
		snaps = append(snaps, snap{f, ss})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, sn := range snaps {
		f := sn.f
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range sn.series {
			switch {
			case s.h != nil:
				writeHistogram(&b, f.name, s)
			default:
				var v float64
				switch {
				case s.fn != nil:
					v = s.fn()
				case s.c != nil:
					v = float64(s.c.Value())
				case s.g != nil:
					v = s.g.Value()
				}
				if s.labels == "" {
					fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(v))
				} else {
					fmt.Fprintf(&b, "%s{%s} %s\n", f.name, s.labels, formatValue(v))
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets,
// +Inf, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	prefix := s.labels
	if prefix != "" {
		prefix += ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=\"%s\"} %d\n", name, prefix, formatBound(bound), cum)
	}
	count := h.count.Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, count)
	sum := math.Float64frombits(h.sum.Load())
	if s.labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(sum))
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, s.labels, formatValue(sum))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, s.labels, count)
	}
}
