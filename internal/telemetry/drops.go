package telemetry

import (
	"sort"
	"sync"
)

// Drops is the unified drop-attribution hub: every subsystem that can
// discard a packet (or refuse work that loses one) registers a read
// callback here under a (site, reason) key, and the hub surfaces the
// union as one Prometheus family — innet_drops_total{site,reason} —
// plus a JSON rollup for /v1/health. The hub owns no counters of its
// own: subsystems keep whatever counter representation their hot path
// wants (plain uint64 under a lock, atomics, sharded sums) and the
// hub only reads them at scrape time, so attribution adds nothing to
// any packet path.
//
// Site names one subsystem (pipeline, vswitch, platform, admission,
// replication); reason is one value of the shared taxonomy documented
// in FORMATS.md §15. Multiple sources may register under the same
// (site, reason) — their reads are summed — so e.g. every vswitch
// instance contributes to one series.
//
// A nil *Drops no-ops on every method, matching the registry's
// nil-handle convention.
type Drops struct {
	mu      sync.Mutex
	sources map[string]map[string][]func() uint64 // site → reason → readers
	reg     *Registry                             // set by Attach; later Sources self-register
}

// NewDrops returns an empty hub.
func NewDrops() *Drops {
	return &Drops{sources: make(map[string]map[string][]func() uint64)}
}

// Source registers one drop counter under (site, reason). read must
// be safe to call from any goroutine and monotonic (it feeds a
// Prometheus counter). Sources registered after Attach are exported
// on the next scrape; sources sharing a (site, reason) are summed.
func (d *Drops) Source(site, reason string, read func() uint64) {
	if d == nil || read == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	byReason := d.sources[site]
	if byReason == nil {
		byReason = make(map[string][]func() uint64)
		d.sources[site] = byReason
	}
	first := len(byReason[reason]) == 0
	byReason[reason] = append(byReason[reason], read)
	if first && d.reg != nil {
		d.registerLocked(site, reason)
	}
}

// Attach exports every registered (site, reason) — present and future
// — as innet_drops_total{site,reason} counter series on r.
func (d *Drops) Attach(r *Registry) {
	if d == nil || r == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = r
	for site, byReason := range d.sources {
		for reason := range byReason {
			d.registerLocked(site, reason)
		}
	}
}

// registerLocked wires one (site, reason) series; d.mu held.
func (d *Drops) registerLocked(site, reason string) {
	d.reg.CounterFunc("innet_drops_total",
		"Packets dropped or refused anywhere in the system, by subsystem site and taxonomy reason.",
		func() float64 { return float64(d.read(site, reason)) },
		"site", site, "reason", reason)
}

// read sums the readers for one (site, reason).
func (d *Drops) read(site, reason string) uint64 {
	d.mu.Lock()
	reads := append([]func() uint64(nil), d.sources[site][reason]...)
	d.mu.Unlock()
	var sum uint64
	for _, f := range reads {
		sum += f()
	}
	return sum
}

// Snapshot returns the current site → reason → count rollup. Zero
// series are included so a registered site is visible before its
// first drop. Returns nil on a nil hub.
func (d *Drops) Snapshot() map[string]map[string]uint64 {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	keys := make(map[string][]string, len(d.sources))
	for site, byReason := range d.sources {
		for reason := range byReason {
			keys[site] = append(keys[site], reason)
		}
	}
	d.mu.Unlock()
	out := make(map[string]map[string]uint64, len(keys))
	for site, reasons := range keys {
		sort.Strings(reasons)
		m := make(map[string]uint64, len(reasons))
		for _, reason := range reasons {
			m[reason] = d.read(site, reason)
		}
		out[site] = m
	}
	return out
}

// Total sums every registered drop counter.
func (d *Drops) Total() uint64 {
	var sum uint64
	for _, byReason := range d.Snapshot() {
		for _, n := range byReason {
			sum += n
		}
	}
	return sum
}
