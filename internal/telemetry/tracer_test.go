package telemetry

import (
	"testing"
	"time"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		s := tr.Begin("deploy", string(rune('a'+i)))
		s.Stage("check", time.Millisecond, "")
		s.End("admitted")
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring retained %d traces, want 3", len(got))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if got[i].ID != want {
			t.Errorf("trace[%d].ID = %q, want %q", i, got[i].ID, want)
		}
	}
	if got[0].Verdict != "admitted" || len(got[0].Stages) != 1 {
		t.Errorf("trace = %+v", got[0])
	}
	if n := len(tr.Recent(2)); n != 2 {
		t.Errorf("Recent(2) returned %d", n)
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	s := tr.Begin("deploy", "only")
	s.SetRef("pm-1")
	s.End("admitted")
	got := tr.Recent(0)
	if len(got) != 1 || got[0].ID != "only" || got[0].Ref != "pm-1" {
		t.Fatalf("Recent = %+v", got)
	}
	if got[0].Total < 0 {
		t.Errorf("negative total %v", got[0].Total)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Begin("deploy", "x")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.Stage("a", time.Second, "")
	s.SetRef("r")
	s.End("admitted")
	if got := tr.Recent(10); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
}
