package telemetry

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exposition output byte for byte:
// families sorted by name, series sorted by label set, label values
// escaped, histogram buckets cumulative and capped by +Inf.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	// Registration order is deliberately scrambled relative to the
	// expected (sorted) output.
	r.Counter("innet_z_total", "last family", "shard", "1").Add(3)
	r.Counter("innet_z_total", "last family", "shard", "0").Add(2)
	r.Gauge("innet_m_gauge", "a middle gauge").Set(2.5)
	r.Counter("innet_a_total", "first family").Add(7)
	r.CounterFunc("innet_f_total", "callback counter", func() float64 { return 42 })
	r.Counter("innet_esc_total", `weird "help" with \slash`,
		"path", "a\\b\"c\nd").Inc()

	h := r.Histogram("innet_h_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05) // bucket 0.1
	h.Observe(0.5)  // bucket 1
	h.Observe(0.7)  // bucket 1
	h.Observe(5)    // bucket 10
	h.Observe(100)  // above all bounds: only +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP innet_a_total first family
# TYPE innet_a_total counter
innet_a_total 7
# HELP innet_esc_total weird "help" with \\slash
# TYPE innet_esc_total counter
innet_esc_total{path="a\\b\"c\nd"} 1
# HELP innet_f_total callback counter
# TYPE innet_f_total counter
innet_f_total 42
# HELP innet_h_seconds a histogram
# TYPE innet_h_seconds histogram
innet_h_seconds_bucket{le="0.1"} 1
innet_h_seconds_bucket{le="1"} 3
innet_h_seconds_bucket{le="10"} 4
innet_h_seconds_bucket{le="+Inf"} 5
innet_h_seconds_sum 106.25
innet_h_seconds_count 5
# HELP innet_m_gauge a middle gauge
# TYPE innet_m_gauge gauge
innet_m_gauge 2.5
# HELP innet_z_total last family
# TYPE innet_z_total counter
innet_z_total{shard="0"} 2
innet_z_total{shard="1"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramCumulativity checks the invariant a scraper relies on:
// every bucket count is <= the next one, and the +Inf bucket equals
// _count.
func TestHistogramCumulativity(t *testing.T) {
	r := New()
	h := r.Histogram("x_seconds", "x", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 250.0) // 0 .. 4
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var inf, count int64
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "x_seconds_bucket"):
			var v int64
			if _, err := parseSample(line, &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
			}
			prev = v
			inf = v
		case strings.HasPrefix(line, "x_seconds_count"):
			if _, err := parseSample(line, &count); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if inf != count || count != 1000 {
		t.Errorf("+Inf bucket %d, _count %d, want both 1000", inf, count)
	}
}

func parseSample(line string, v *int64) (string, error) {
	i := strings.LastIndexByte(line, ' ')
	name := line[:i]
	var err error
	*v, err = parseInt(line[i+1:])
	return name, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

// TestDisabledRegistryIsNoOp asserts the disabled path end to end: a
// nil registry hands out nil handles, every handle method is a true
// no-op (no panic, no allocation of state), and exposition writes
// nothing.
func TestDisabledRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "a")
	if c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g", "g")
	if g != nil {
		t.Fatalf("nil registry returned non-nil gauge")
	}
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("h_seconds", "h", nil)
	if h != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
	h.Observe(1)
	if h.Count() != 0 {
		t.Errorf("nil histogram count = %d", h.Count())
	}
	r.CounterFunc("cf", "cf", func() float64 { t.Error("callback registered on nil registry"); return 0 })
	r.GaugeFunc("gf", "gf", func() float64 { t.Error("callback registered on nil registry"); return 0 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
}

// TestRegistryReuse asserts that re-requesting the same name+labels
// returns the same underlying instrument.
func TestRegistryReuse(t *testing.T) {
	r := New()
	a := r.Counter("c_total", "c", "k", "v")
	b := r.Counter("c_total", "c", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter did not share state")
	}
}

// TestConcurrentScrape hammers counters and histograms from several
// goroutines while scraping — run under -race, this is the proof that
// a scrape never needs the writers to pause.
func TestConcurrentScrape(t *testing.T) {
	r := New()
	c := r.Counter("hot_total", "hot")
	h := r.Histogram("hot_seconds", "hot", nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
				}
			}
		}()
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
