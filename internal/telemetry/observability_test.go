package telemetry

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestDropsNilSafe(t *testing.T) {
	var d *Drops
	d.Source("x", "y", func() uint64 { return 1 })
	d.Attach(New())
	if d.Snapshot() != nil || d.Total() != 0 {
		t.Fatalf("nil Drops must no-op")
	}
}

func TestDropsSumsAndExports(t *testing.T) {
	d := NewDrops()
	var a, b atomic.Uint64
	d.Source("vswitch", "no_rule", a.Load)
	r := New()
	d.Attach(r)
	// Source added after Attach must still export.
	d.Source("vswitch", "no_rule", b.Load)
	d.Source("platform", "timeout", func() uint64 { return 7 })
	a.Store(3)
	b.Store(4)
	snap := d.Snapshot()
	if got := snap["vswitch"]["no_rule"]; got != 7 {
		t.Fatalf("summed source = %d, want 7", got)
	}
	if got := snap["platform"]["timeout"]; got != 7 {
		t.Fatalf("late source = %d, want 7", got)
	}
	if d.Total() != 14 {
		t.Fatalf("Total = %d, want 14", d.Total())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`innet_drops_total{reason="no_rule",site="vswitch"} 7`,
		`innet_drops_total{reason="timeout",site="platform"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderRingAndOrder(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record("x", "y", "", "")
	if nilRec.Recent(1) != nil || nilRec.Len() != 0 {
		t.Fatalf("nil Recorder must no-op")
	}

	rec := NewRecorder(4)
	for _, typ := range []string{"a", "b", "c", "d", "e", "f"} {
		rec.Record(typ, "test", "detail-"+typ, "ref")
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bounded ring)", rec.Len())
	}
	got := rec.Recent(0)
	want := []string{"f", "e", "d", "c"}
	if len(got) != len(want) {
		t.Fatalf("Recent len = %d, want %d", len(got), len(want))
	}
	for i, ev := range got {
		if ev.Type != want[i] {
			t.Fatalf("Recent[%d].Type = %q, want %q", i, ev.Type, want[i])
		}
	}
	// Seq strictly increases across overwrites.
	if got[0].Seq != 6 || got[3].Seq != 3 {
		t.Fatalf("Seq = %d..%d, want 6..3", got[0].Seq, got[3].Seq)
	}
	if rec.Recent(2)[0].Type != "f" || len(rec.Recent(2)) != 2 {
		t.Fatalf("Recent(2) wrong")
	}
}

func TestSampledDeterministic(t *testing.T) {
	if Sampled(128, 0) {
		t.Fatal("every=0 must disable sampling")
	}
	if !Sampled(128, 64) || Sampled(129, 64) {
		t.Fatal("Sampled must select exactly the zero residue")
	}
	for i := 0; i < 3; i++ {
		if !Sampled(640, 64) {
			t.Fatal("Sampled must be deterministic")
		}
	}
}

func TestPathRingMerge(t *testing.T) {
	var nilRing *PathRing
	nilRing.Put(PathTrace{})
	if nilRing.Recent(1) != nil {
		t.Fatal("nil PathRing must no-op")
	}

	var seq atomic.Uint64
	w0 := NewPathRing(4, &seq)
	w1 := NewPathRing(4, &seq)
	w0.Put(PathTrace{FlowHash: 1, Dataplane: "pipeline", Hops: []PathHop{{Elem: "a", Verdict: "forward"}}})
	w1.Put(PathTrace{FlowHash: 2, Dataplane: "pipeline"})
	w0.Put(PathTrace{FlowHash: 3, Dataplane: "pipeline"})
	merged := MergeRecent(0, w0, w1)
	if len(merged) != 3 {
		t.Fatalf("merged %d traces, want 3", len(merged))
	}
	for i, wantHash := range []uint64{3, 2, 1} {
		if merged[i].FlowHash != wantHash {
			t.Fatalf("merged[%d].FlowHash = %d, want %d", i, merged[i].FlowHash, wantHash)
		}
	}
	if top := MergeRecent(1, w0, w1); len(top) != 1 || top[0].FlowHash != 3 {
		t.Fatalf("MergeRecent(1) wrong: %+v", top)
	}
	// Deep copy: mutating a returned hop must not touch ring memory.
	merged[2].Hops[0].Elem = "mutated"
	if w0.Recent(0)[1].Hops[0].Elem != "a" {
		t.Fatal("Recent must deep-copy hops")
	}
}
