package telemetry

import (
	"sync"
	"time"
)

// Stage is one timed step inside a trace — for admission, one
// pipeline stage (canonicalize, cache lookup, security symexec,
// policy check, placement, journal append).
type Stage struct {
	// Name identifies the stage.
	Name string `json:"name"`
	// Duration is the stage's wall-clock cost.
	Duration time.Duration `json:"duration_ns"`
	// Detail is optional context (the platform tried, hit/miss, the
	// rejection reason).
	Detail string `json:"detail,omitempty"`
}

// Trace is one completed span: an operation (deploy, failover, query)
// with its stages and final verdict.
type Trace struct {
	// Kind is the operation: "deploy", "failover", "retry", ...
	Kind string `json:"kind"`
	// ID is the subject — for admissions, the module name.
	ID string `json:"id"`
	// Ref is a secondary identifier assigned mid-flight (the
	// deployment ID once placement succeeds).
	Ref string `json:"ref,omitempty"`
	// Verdict is the outcome: "admitted", "rejected: <reason>", ...
	Verdict string `json:"verdict"`
	// Start is the wall-clock begin time.
	Start time.Time `json:"start"`
	// Total is the end-to-end duration.
	Total time.Duration `json:"total_ns"`
	// Stages lists the timed steps in execution order.
	Stages []Stage `json:"stages"`
}

// Tracer keeps the most recent completed traces in a bounded ring
// buffer. A nil *Tracer hands out nil spans; every method no-ops on a
// nil receiver, so traced code needs no enabled/disabled branch.
type Tracer struct {
	mu   sync.Mutex
	ring []Trace
	next int
	full bool
}

// DefaultTraceRing is the ring capacity NewTracer uses for n <= 0.
const DefaultTraceRing = 256

// NewTracer returns a tracer retaining the last n traces.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceRing
	}
	return &Tracer{ring: make([]Trace, n)}
}

// Span is an in-flight trace. Not safe for concurrent use — one
// goroutine owns a span from Begin to End.
type Span struct {
	t  *Tracer
	tr Trace
}

// Begin opens a span. Returns nil on a nil tracer.
func (t *Tracer) Begin(kind, id string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, tr: Trace{Kind: kind, ID: id, Start: time.Now()}}
}

// Stage appends one timed stage.
func (s *Span) Stage(name string, d time.Duration, detail string) {
	if s == nil {
		return
	}
	s.tr.Stages = append(s.tr.Stages, Stage{Name: name, Duration: d, Detail: detail})
}

// SetRef records the secondary identifier (e.g. the deployment ID).
func (s *Span) SetRef(ref string) {
	if s == nil {
		return
	}
	s.tr.Ref = ref
}

// End completes the span with a verdict and commits it to the ring.
func (s *Span) End(verdict string) {
	if s == nil {
		return
	}
	s.tr.Verdict = verdict
	s.tr.Total = time.Since(s.tr.Start)
	t := s.t
	t.mu.Lock()
	t.ring[t.next] = s.tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns up to n completed traces, newest first (n <= 0 means
// all retained). Returns nil on a nil tracer.
func (t *Tracer) Recent(n int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		tr := t.ring[idx]
		// Deep-copy stages so callers can't alias ring memory that a
		// later End will overwrite.
		tr.Stages = append([]Stage(nil), tr.Stages...)
		out = append(out, tr)
	}
	return out
}
