// Package mawi generates synthetic backbone traffic traces shaped
// like the MAWI WIDE-backbone captures the paper analyzes (§6), and
// implements the paper's concurrency analysis: how many TCP
// connections and how many active clients (connection openers) are
// alive at any instant of a 15-minute window. The paper's takeaway —
// at most 1,600-4,000 active connections and 400-840 active clients —
// is what sized the 1,000-client platform target.
//
// The real traces are not redistributable (and unavailable offline),
// so Generate produces a statistically similar workload: Poisson
// connection arrivals modulated across the window, log-normal
// connection durations (heavy tail), and a Zipf-distributed client
// population. Analyze is independent of the generator and works on
// any connection list.
package mawi

import (
	"math"
	"math/rand"
	"sort"

	"github.com/in-net/innet/internal/netsim"
)

// Conn is one TCP connection observed in a trace (setup and teardown
// both inside the window, per the paper's filtering).
type Conn struct {
	Start, End netsim.Time
	// Client identifies the active opener.
	Client uint32
}

// GenConfig shapes the synthetic trace.
type GenConfig struct {
	// Window is the trace length (MAWI: 15 minutes).
	Window netsim.Time
	// MeanArrivalsPerSec is the average connection arrival rate.
	MeanArrivalsPerSec float64
	// Modulation is the ±fraction the arrival rate swings across the
	// window (captures the day-of-week/diurnal variability that makes
	// the paper report ranges, not points).
	Modulation float64
	// MeanDurationSec and SigmaDuration parameterize the log-normal
	// connection duration.
	MeanDurationSec float64
	SigmaDuration   float64
	// Clients is the client population size; popularity is Zipf.
	Clients int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig is calibrated so Analyze lands in the paper's bands.
func DefaultConfig() GenConfig {
	return GenConfig{
		Window:             netsim.Seconds(15 * 60),
		MeanArrivalsPerSec: 180,
		Modulation:         0.35,
		MeanDurationSec:    6.5,
		SigmaDuration:      1.1,
		Clients:            1500,
		Seed:               1,
	}
}

// Generate builds a synthetic trace.
func Generate(cfg GenConfig) []Conn {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Clients-1))
	winSec := float64(cfg.Window) / 1e9

	var conns []Conn
	t := 0.0
	for t < winSec {
		// Nonhomogeneous Poisson via thinning: rate swings
		// sinusoidally across the window.
		phase := 2 * math.Pi * t / winSec
		rate := cfg.MeanArrivalsPerSec * (1 + cfg.Modulation*math.Sin(phase))
		maxRate := cfg.MeanArrivalsPerSec * (1 + cfg.Modulation)
		t += rng.ExpFloat64() / maxRate
		if rng.Float64() > rate/maxRate {
			continue
		}
		if t >= winSec {
			break
		}
		// Log-normal duration with the configured median.
		mu := math.Log(cfg.MeanDurationSec)
		dur := math.Exp(mu + cfg.SigmaDuration*rng.NormFloat64())
		end := t + dur
		if end > winSec {
			// The paper drops connections without teardown inside the
			// window.
			continue
		}
		conns = append(conns, Conn{
			Start:  netsim.Seconds(t),
			End:    netsim.Seconds(end),
			Client: uint32(zipf.Uint64()),
		})
	}
	return conns
}

// Stats summarizes instantaneous concurrency over a trace.
type Stats struct {
	Connections int
	// MaxActiveConns and MinActiveConns bound the number of
	// simultaneously open connections (min taken over the interior of
	// the window, excluding warm-up/drain).
	MaxActiveConns int
	MinActiveConns int
	// MaxActiveClients and MinActiveClients bound the number of
	// distinct clients with at least one open connection.
	MaxActiveClients int
	MinActiveClients int
}

// Analyze sweeps the trace and computes instantaneous concurrency.
// The interior fraction (default 0.1..0.9 of the window) avoids the
// empty-start artifacts a finite window introduces.
func Analyze(conns []Conn, window netsim.Time) Stats {
	st := Stats{Connections: len(conns), MinActiveConns: math.MaxInt32, MinActiveClients: math.MaxInt32}
	if len(conns) == 0 {
		st.MinActiveConns, st.MinActiveClients = 0, 0
		return st
	}
	type ev struct {
		at     netsim.Time
		open   bool
		client uint32
	}
	evs := make([]ev, 0, 2*len(conns))
	for _, c := range conns {
		evs = append(evs, ev{at: c.Start, open: true, client: c.Client})
		evs = append(evs, ev{at: c.End, open: false, client: c.Client})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		// Closes before opens at identical times.
		return !evs[i].open && evs[j].open
	})
	lo := window / 10
	hi := window - window/10
	active := 0
	perClient := make(map[uint32]int)
	for _, e := range evs {
		if e.open {
			active++
			perClient[e.client]++
		} else {
			active--
			perClient[e.client]--
			if perClient[e.client] == 0 {
				delete(perClient, e.client)
			}
		}
		if e.at < lo || e.at > hi {
			continue
		}
		if active > st.MaxActiveConns {
			st.MaxActiveConns = active
		}
		if active < st.MinActiveConns {
			st.MinActiveConns = active
		}
		if n := len(perClient); n > st.MaxActiveClients {
			st.MaxActiveClients = n
		}
		if n := len(perClient); n < st.MinActiveClients {
			st.MinActiveClients = n
		}
	}
	if st.MinActiveConns == math.MaxInt32 {
		st.MinActiveConns, st.MinActiveClients = 0, 0
	}
	return st
}

// WeekOfTraces reproduces the paper's 13-17 January 2014 analysis:
// five daily 15-minute traces with day-to-day variation, returning
// per-day stats.
func WeekOfTraces(baseSeed int64) []Stats {
	out := make([]Stats, 0, 5)
	for day := 0; day < 5; day++ {
		cfg := DefaultConfig()
		cfg.Seed = baseSeed + int64(day)*104729
		// Day-of-week swing in offered load (±25%).
		cfg.MeanArrivalsPerSec *= 0.85 + 0.10*float64(day)
		conns := Generate(cfg)
		out = append(out, Analyze(conns, cfg.Window))
	}
	return out
}
