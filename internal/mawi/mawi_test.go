package mawi

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
)

func TestGenerateBasics(t *testing.T) {
	cfg := DefaultConfig()
	conns := Generate(cfg)
	if len(conns) < 10000 {
		t.Fatalf("connections = %d, trace too thin", len(conns))
	}
	for i, c := range conns[:100] {
		if c.End <= c.Start {
			t.Fatalf("conn %d: end before start", i)
		}
		if c.Start < 0 || c.End > cfg.Window {
			t.Fatalf("conn %d outside window", i)
		}
		if int(c.Client) >= cfg.Clients {
			t.Fatalf("conn %d: client %d out of range", i, c.Client)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic trace")
		}
	}
}

func TestAnalyzeSmallTrace(t *testing.T) {
	w := netsim.Seconds(100)
	conns := []Conn{
		{Start: netsim.Seconds(20), End: netsim.Seconds(80), Client: 1},
		{Start: netsim.Seconds(30), End: netsim.Seconds(70), Client: 1},
		{Start: netsim.Seconds(40), End: netsim.Seconds(60), Client: 2},
	}
	st := Analyze(conns, w)
	if st.Connections != 3 {
		t.Error("connections")
	}
	if st.MaxActiveConns != 3 {
		t.Errorf("max conns = %d", st.MaxActiveConns)
	}
	// Client 1 has two overlapping conns: max distinct clients is 2.
	if st.MaxActiveClients != 2 {
		t.Errorf("max clients = %d", st.MaxActiveClients)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil, netsim.Seconds(10))
	if st.MaxActiveConns != 0 || st.MinActiveConns != 0 || st.MaxActiveClients != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestPaperBands(t *testing.T) {
	// §6: "at any moment, there are at most 1,600 to 4,000 active TCP
	// connections, and between 400 to 840 active TCP clients".
	stats := WeekOfTraces(1)
	if len(stats) != 5 {
		t.Fatalf("days = %d", len(stats))
	}
	for day, st := range stats {
		if st.MaxActiveConns < 1200 || st.MaxActiveConns > 4500 {
			t.Errorf("day %d: max active conns = %d, outside the paper's regime", day, st.MaxActiveConns)
		}
		if st.MaxActiveClients < 300 || st.MaxActiveClients > 1000 {
			t.Errorf("day %d: max active clients = %d, outside the paper's regime", day, st.MaxActiveClients)
		}
		if st.MaxActiveClients > st.MaxActiveConns {
			t.Errorf("day %d: more clients than connections", day)
		}
		// The platform takeaway: a 1,000-user platform covers every
		// active source.
		if st.MaxActiveClients > 1000 {
			t.Errorf("day %d: active clients exceed the 1,000-user platform target", day)
		}
	}
}

func TestModulationCreatesSpread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Modulation = 0.5
	st := Analyze(Generate(cfg), cfg.Window)
	if st.MinActiveConns >= st.MaxActiveConns {
		t.Error("no concurrency spread")
	}
	// The modulated trace's min should be well below its max.
	if float64(st.MinActiveConns) > 0.8*float64(st.MaxActiveConns) {
		t.Errorf("min %d vs max %d: modulation invisible", st.MinActiveConns, st.MaxActiveConns)
	}
}

func BenchmarkGenerateAndAnalyze(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		conns := Generate(cfg)
		Analyze(conns, cfg.Window)
	}
}
