package traffic

import (
	"testing"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/platform"
)

func TestFig5PingShape(t *testing.T) {
	cfg := DefaultPingConfig()
	cfg.Flows = 40 // keep the test quick; shape is identical
	rtts := PingThroughPlatform(cfg)
	if len(rtts) != cfg.Flows || len(rtts[0]) != cfg.Probes {
		t.Fatal("shape")
	}
	for f := 0; f < cfg.Flows; f++ {
		first := rtts[f][0]
		if first < 15 {
			t.Errorf("flow %d first rtt = %.1f ms, lacks boot cost", f, first)
		}
		for pr := 1; pr < cfg.Probes; pr++ {
			if rtts[f][pr] <= 0 {
				t.Fatalf("flow %d probe %d missing", f, pr)
			}
			if rtts[f][pr] > 2 {
				t.Errorf("flow %d probe %d = %.2f ms, warm probe too slow", f, pr, rtts[f][pr])
			}
		}
	}
	// Boot cost grows with resident VMs: the last flow's first packet
	// is slower than the first flow's.
	if rtts[cfg.Flows-1][0] <= rtts[0][0] {
		t.Errorf("first-packet RTT did not grow: %.1f vs %.1f",
			rtts[cfg.Flows-1][0], rtts[0][0])
	}
}

func TestFig5LinuxOrderOfMagnitudeSlower(t *testing.T) {
	cfg := DefaultPingConfig()
	cfg.Flows, cfg.Probes = 10, 2
	clickos := PingThroughPlatform(cfg)
	cfg.Kind = platform.LinuxVM
	cfg.MemMB = 512 * 1024
	linux := PingThroughPlatform(cfg)
	avg := func(r [][]float64) float64 {
		var s float64
		for _, f := range r {
			s += f[0]
		}
		return s / float64(len(r))
	}
	a, b := avg(clickos), avg(linux)
	if b < 8*a {
		t.Errorf("linux first-packet %.1f ms vs clickos %.1f ms: want ~order of magnitude (paper: 700 vs 50)", b, a)
	}
	if b < 500 || b > 1200 {
		t.Errorf("linux first-packet = %.1f ms, paper ≈700 ms", b)
	}
}

func TestFig6HTTPShape(t *testing.T) {
	cfg := DefaultHTTPConfig()
	cfg.Clients = 30
	res := HTTPThroughPlatform(cfg)
	if len(res) != cfg.Clients {
		t.Fatal("results")
	}
	for _, r := range res {
		if r.ConnectMS < 15 || r.ConnectMS > 400 {
			t.Errorf("flow %d connect = %.1f ms, outside Fig. 6's band", r.Flow, r.ConnectMS)
		}
		// 50 MB at 25 Mb/s ≈ 16.8 s.
		if r.TransferS < 16 || r.TransferS > 18.5 {
			t.Errorf("flow %d transfer = %.1f s, want ≈16.8 s", r.Flow, r.TransferS)
		}
	}
	// Connection time grows with flow id (more resident VMs).
	if res[cfg.Clients-1].ConnectMS <= res[0].ConnectMS {
		t.Error("connection time did not grow with resident VMs")
	}
}

func TestFig15SlowlorisDefense(t *testing.T) {
	single := SlowlorisScenario(DefaultSlowlorisConfig(false))
	defended := SlowlorisScenario(DefaultSlowlorisConfig(true))
	window := func(s []float64, fromSec, toSec int) float64 {
		var sum float64
		for i := fromSec; i < toSec; i++ {
			sum += s[i]
		}
		return sum / float64(toSec-fromSec)
	}
	preAttack := window(single, 60, 170)
	underAttackSingle := window(single, 400, 600)
	underAttackDefended := window(defended, 400, 600)
	postAttack := window(single, 750, 890)
	if preAttack < 250 {
		t.Errorf("baseline rate = %.0f req/s, want ≈300", preAttack)
	}
	if underAttackSingle > preAttack/3 {
		t.Errorf("single server under attack = %.0f req/s, attack ineffective", underAttackSingle)
	}
	if underAttackDefended < preAttack*0.7 {
		t.Errorf("defended rate = %.0f req/s vs baseline %.0f: defense ineffective", underAttackDefended, preAttack)
	}
	if postAttack < preAttack*0.7 {
		t.Errorf("post-attack recovery = %.0f req/s", postAttack)
	}
}

func TestFig16CDNShape(t *testing.T) {
	res := CDNScenario(DefaultCDNConfig())
	if len(res.OriginMS) != len(res.CDNMS) || len(res.OriginMS) == 0 {
		t.Fatal("samples")
	}
	medO := Percentile(res.OriginMS, 50)
	medC := Percentile(res.CDNMS, 50)
	p90O := Percentile(res.OriginMS, 90)
	p90C := Percentile(res.CDNMS, 90)
	// Paper: "the median download time is halved, and the 90th
	// percentile is four times lower."
	if r := medO / medC; r < 1.5 || r > 3.5 {
		t.Errorf("median ratio = %.2f (origin %.0f ms, cdn %.0f ms), want ≈2", r, medO, medC)
	}
	if r := p90O / p90C; r < 2.5 || r > 6.5 {
		t.Errorf("p90 ratio = %.2f (origin %.0f ms, cdn %.0f ms), want ≈4", r, p90O, p90C)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if Percentile(s, 0) != 1 || Percentile(s, 100) != 5 || Percentile(s, 50) != 3 {
		t.Error("percentile basics")
	}
	if got := Percentile(s, 75); got != 4 {
		t.Errorf("p75 = %f", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Input must not be mutated.
	u := []float64{3, 1, 2}
	Percentile(u, 50)
	if u[0] != 3 {
		t.Error("input mutated")
	}
}

func TestDeterministicScenarios(t *testing.T) {
	a := SlowlorisScenario(DefaultSlowlorisConfig(true))
	b := SlowlorisScenario(DefaultSlowlorisConfig(true))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("slowloris nondeterministic")
		}
	}
	c1 := CDNScenario(DefaultCDNConfig())
	c2 := CDNScenario(DefaultCDNConfig())
	for i := range c1.CDNMS {
		if c1.CDNMS[i] != c2.CDNMS[i] {
			t.Fatal("cdn nondeterministic")
		}
	}
}

var _ = netsim.Second // keep import if cases change
