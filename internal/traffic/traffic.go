// Package traffic builds the evaluation workloads of the paper's §6
// and §8 on top of the platform and netsim substrates: ping trains
// through on-the-fly-booted VMs (Fig. 5), capped HTTP transfers
// (Fig. 6), a Slowloris attack with In-Net reverse-proxy defense
// (Fig. 15) and a mini-CDN download population (Fig. 16). Each
// scenario returns raw series; the bench package formats them as the
// paper's figures.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
	"github.com/in-net/innet/internal/stock"
)

// firewallModule is the stateless per-client firewall of §6's
// experiments.
const firewallModule = `
in :: FromNetfront();
fw :: IPFilter(allow all);
out :: ToNetfront();
in -> fw -> out;
`

// PingConfig shapes the Fig. 5 experiment.
type PingConfig struct {
	Flows  int
	Probes int
	// Gap between a flow's probes (the paper pings once per second).
	Gap netsim.Time
	// LinkLatency is the per-hop one-way latency of the three-box
	// row (client - platform - responder).
	LinkLatency netsim.Time
	// Kind selects ClickOS or Linux guests (the paper contrasts ≈50ms
	// vs ≈700ms first-packet RTTs).
	Kind platform.VMKind
	// MemMB bounds the platform.
	MemMB int
}

// DefaultPingConfig mirrors the paper: 100 concurrent flows x 15
// probes through ClickOS VMs booted on the fly.
func DefaultPingConfig() PingConfig {
	return PingConfig{
		Flows:       100,
		Probes:      15,
		Gap:         netsim.Seconds(1),
		LinkLatency: netsim.Millis(0.05),
		Kind:        platform.ClickOS,
		MemMB:       16 * 1024,
	}
}

// PingThroughPlatform runs Fig. 5: every flow's first packet triggers
// a VM boot; subsequent probes hit the warm VM. It returns rtts in
// milliseconds indexed [flow][probe].
func PingThroughPlatform(cfg PingConfig) [][]float64 {
	sim := netsim.New(1)
	p := platform.New(sim, platform.DefaultModel(), cfg.MemMB)
	base := packet.MustParseIP("198.51.100.0")
	for f := 0; f < cfg.Flows; f++ {
		err := p.Register(platform.ModuleSpec{
			Addr:   base + 1 + uint32(f),
			Config: firewallModule,
			Kind:   cfg.Kind,
		})
		if err != nil {
			panic(err)
		}
	}
	rtts := make([][]float64, cfg.Flows)
	for f := range rtts {
		rtts[f] = make([]float64, cfg.Probes)
	}
	for f := 0; f < cfg.Flows; f++ {
		f := f
		addr := base + 1 + uint32(f)
		for pr := 0; pr < cfg.Probes; pr++ {
			pr := pr
			sendAt := netsim.Time(pr) * cfg.Gap
			sim.At(sendAt, func() {
				pk := &packet.Packet{
					Protocol: packet.ProtoICMP,
					SrcIP:    packet.MustParseIP("10.1.0.2"),
					DstIP:    addr,
					SrcPort:  uint16(f), DstPort: uint16(pr),
					TTL: 64, Payload: make([]byte, 56),
				}
				// Client -> platform link.
				sim.After(cfg.LinkLatency, func() {
					p.Deliver(pk, func(iface int, out *packet.Packet) {
						// Platform -> responder -> echo -> back
						// through the row to the client.
						echoPath := 3 * cfg.LinkLatency
						sim.After(echoPath, func() {
							rtts[f][pr] = float64(sim.Now()-sendAt) / 1e6
						})
					})
				})
			})
		}
	}
	sim.Run()
	return rtts
}

// HTTPConfig shapes the Fig. 6 experiment.
type HTTPConfig struct {
	Clients int
	// FileBytes per transfer (paper: 50 MB) at RateBps each (25 Mb/s).
	FileBytes int64
	RateBps   float64
	// RTT of the client-server path (excluding VM boot).
	RTT netsim.Time
	// StaggerMS spreads client starts over a short window, as curl
	// process launches do.
	Stagger netsim.Time
}

// DefaultHTTPConfig mirrors the paper's Fig. 6.
func DefaultHTTPConfig() HTTPConfig {
	return HTTPConfig{
		Clients:   100,
		FileBytes: 50 << 20,
		RateBps:   25e6,
		RTT:       netsim.Millis(1),
		Stagger:   netsim.Millis(2),
	}
}

// HTTPResult is one client's outcome.
type HTTPResult struct {
	Flow int
	// ConnectMS includes the on-the-fly VM boot triggered by the SYN.
	ConnectMS float64
	// TransferS is the capped bulk-transfer time in seconds.
	TransferS float64
}

// HTTPThroughPlatform runs Fig. 6: each client's SYN boots its
// forwarding VM; the 50 MB response then streams at the per-client
// cap.
func HTTPThroughPlatform(cfg HTTPConfig) []HTTPResult {
	sim := netsim.New(2)
	p := platform.New(sim, platform.DefaultModel(), 16*1024)
	base := packet.MustParseIP("198.51.100.0")
	for f := 0; f < cfg.Clients; f++ {
		if err := p.Register(platform.ModuleSpec{
			Addr:   base + 1 + uint32(f),
			Config: firewallModule,
		}); err != nil {
			panic(err)
		}
	}
	results := make([]HTTPResult, cfg.Clients)
	for f := 0; f < cfg.Clients; f++ {
		f := f
		addr := base + 1 + uint32(f)
		start := netsim.Time(f) * cfg.Stagger
		sim.At(start, func() {
			syn := &packet.Packet{
				Protocol: packet.ProtoTCP,
				SrcIP:    packet.MustParseIP("10.1.0.2"),
				DstIP:    addr,
				SrcPort:  uint16(20000 + f), DstPort: 80,
				TCPFlags: packet.TCPSyn, TTL: 64,
			}
			sim.After(cfg.RTT/4, func() {
				p.Deliver(syn, func(iface int, out *packet.Packet) {
					// SYN reached the server through the booted VM;
					// SYNACK+ACK complete the handshake.
					sim.After(cfg.RTT*3/4, func() {
						results[f].Flow = f
						results[f].ConnectMS = float64(sim.Now()-start) / 1e6
						dl := netsim.FluidTransfer(cfg.FileBytes, cfg.RTT, cfg.RateBps)
						results[f].TransferS = float64(dl) / 1e9
					})
				})
			})
		})
	}
	sim.Run()
	return results
}

// SlowlorisConfig shapes Fig. 15.
type SlowlorisConfig struct {
	// Duration of the timeline; attack runs [AttackStart, AttackEnd).
	Duration    netsim.Time
	AttackStart netsim.Time
	AttackEnd   netsim.Time
	// DefenseAt is when the origin instantiates In-Net reverse
	// proxies (negative = no defense, the "single server" series).
	DefenseAt netsim.Time
	// Proxies is the number of remote reverse-proxy modules.
	Proxies int
	// ClientRate is the valid-request arrival rate (req/s).
	ClientRate float64
	// ServerSlots is the origin's connection-table size.
	ServerSlots int
	Seed        int64
}

// DefaultSlowlorisConfig mirrors Fig. 15's timeline.
func DefaultSlowlorisConfig(defend bool) SlowlorisConfig {
	cfg := SlowlorisConfig{
		Duration:    netsim.Seconds(900),
		AttackStart: netsim.Seconds(180),
		AttackEnd:   netsim.Seconds(630),
		DefenseAt:   -1,
		Proxies:     3,
		ClientRate:  300,
		ServerSlots: 400,
		Seed:        3,
	}
	if defend {
		cfg.DefenseAt = netsim.Seconds(240)
	}
	return cfg
}

// SlowlorisScenario runs Fig. 15 and returns valid requests served
// per second, one sample per second of the timeline.
func SlowlorisScenario(cfg SlowlorisConfig) []float64 {
	sim := netsim.New(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	origin := stock.NewServer(sim, cfg.ServerSlots, netsim.Millis(50))

	// Reverse proxies: large slot pools (they time out slow requests
	// aggressively and only forward complete requests), instantiated
	// on In-Net platforms at DefenseAt.
	var proxies []*stock.Server
	attack := stock.NewSlowloris(sim, origin, 200, netsim.Seconds(30))
	sim.At(cfg.AttackStart, attack.Start)
	sim.At(cfg.AttackEnd, attack.Stop)

	if cfg.DefenseAt >= 0 {
		sim.At(cfg.DefenseAt, func() {
			// ClickOS-scale instantiation is milliseconds; DNS
			// redirection takes effect for *new* connections.
			for i := 0; i < cfg.Proxies; i++ {
				proxy := stock.NewServer(sim, 4096, netsim.Millis(60))
				// Reverse proxies time slow requests out aggressively.
				proxy.SlowTimeout = netsim.Seconds(5)
				proxies = append(proxies, proxy)
			}
			// The attacker now hits a proxy; its trickled requests
			// never reach the origin.
			attack.Retarget(proxies[0])
		})
	}

	samples := make([]float64, cfg.Duration/netsim.Second)
	var lastServed uint64
	served := func() uint64 {
		s := origin.Served
		for _, p := range proxies {
			s += p.Served
		}
		return s
	}
	for sec := range samples {
		sec := sec
		sim.At(netsim.Time(sec+1)*netsim.Second, func() {
			cur := served()
			samples[sec] = float64(cur - lastServed)
			lastServed = cur
		})
	}

	// Valid clients: Poisson arrivals hitting whatever DNS currently
	// resolves to.
	var schedule func(at netsim.Time)
	schedule = func(at netsim.Time) {
		if at >= cfg.Duration {
			return
		}
		sim.At(at, func() {
			if len(proxies) > 0 {
				proxies[rng.Intn(len(proxies))].TryRequest()
			} else {
				origin.TryRequest()
			}
			gap := netsim.Time(rng.ExpFloat64() / cfg.ClientRate * 1e9)
			schedule(sim.Now() + gap)
		})
	}
	schedule(0)
	sim.RunUntil(cfg.Duration)
	return samples
}

// CDNConfig shapes Fig. 16.
type CDNConfig struct {
	Clients int
	// Caches is the number of In-Net cache replicas (paper: 3).
	Caches int
	// Downloads per client of the 1 KB object.
	Downloads int
	Seed      int64
}

// DefaultCDNConfig mirrors Fig. 16: 75 PlanetLab-style clients, 3
// sandboxed squid caches.
func DefaultCDNConfig() CDNConfig {
	return CDNConfig{Clients: 75, Caches: 3, Downloads: 20, Seed: 4}
}

// CDNResult holds both download-delay samples (ms).
type CDNResult struct {
	OriginMS []float64
	CDNMS    []float64
}

// CDNScenario runs Fig. 16: every client downloads a 1 KB file from
// the origin and from its geolocation-resolved nearest cache. A 1 KB
// response fits one segment, so the delay is handshake + request +
// response ≈ 2.5 RTT plus server time.
func CDNScenario(cfg CDNConfig) CDNResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Origin RTTs: log-normal across Europe-to-Italy paths (median
	// ≈80 ms, long tail).
	originRTT := make([]netsim.Time, cfg.Clients)
	for i := range originRTT {
		originRTT[i] = netsim.Time(80e6 * math.Exp(0.6*rng.NormFloat64()))
	}
	// Cache RTTs: each replica is near one client cluster.
	dns := stock.NewGeoDNS()
	for c := 0; c < cfg.Caches; c++ {
		rtts := make([]netsim.Time, cfg.Clients)
		for i := range rtts {
			if i%cfg.Caches == c {
				// Local cluster: tens of ms.
				rtts[i] = netsim.Time(18e6 + rng.Float64()*25e6)
			} else {
				rtts[i] = netsim.Time(90e6 + rng.Float64()*120e6)
			}
		}
		dns.AddReplica(fmt.Sprintf("cache-%d", c), rtts)
	}
	res := CDNResult{}
	serverTime := 4 * netsim.Millisecond
	for i := 0; i < cfg.Clients; i++ {
		_, cacheRTT := dns.Resolve(i)
		for d := 0; d < cfg.Downloads; d++ {
			jitter := func() float64 { return 1 + 0.08*rng.NormFloat64() }
			o := 2.5*float64(originRTT[i])*jitter() + float64(serverTime)
			c := 2.5*float64(cacheRTT)*jitter() + float64(serverTime)
			res.OriginMS = append(res.OriginMS, o/1e6)
			res.CDNMS = append(res.CDNMS, c/1e6)
		}
	}
	return res
}

// Percentile returns the p-th percentile (0-100) of samples.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := p / 100 * float64(len(s)-1)
	lo := int(idx)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}
