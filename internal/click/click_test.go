package click_test

import (
	"testing"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

func ctxCollecting(out *[]*packet.Packet) *click.Context {
	now := int64(0)
	return &click.Context{
		Now:      func() int64 { return now },
		Transmit: func(iface int, p *packet.Packet) { *out = append(*out, p) },
	}
}

func TestBuildAndRunPipeline(t *testing.T) {
	r := click.MustBuildString(`
in :: FromNetfront();
cnt :: Counter();
out :: ToNetfront();
in -> cnt -> out;
`)
	var got []*packet.Packet
	ctx := ctxCollecting(&got)
	p := &packet.Packet{Protocol: packet.ProtoUDP, TTL: 4}
	if err := r.Inject(ctx, 0, p); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != p {
		t.Fatalf("transmit got %d packets", len(got))
	}
	cnt := r.Element("cnt").(*elements.Counter)
	if cnt.Packets != 1 || cnt.Bytes != uint64(p.Len()) {
		t.Errorf("counter = %d pkts %d bytes", cnt.Packets, cnt.Bytes)
	}
}

func TestElementLookupAndClasses(t *testing.T) {
	if click.Lookup("IPFilter") == nil {
		t.Error("IPFilter not registered")
	}
	if click.Lookup("NoSuchElement") != nil {
		t.Error("bogus class found")
	}
	cs := click.Classes()
	if len(cs) < 20 {
		t.Errorf("only %d classes registered", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Error("Classes not sorted")
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown class", `a :: Frobnicator();`},
		{"bad config", `a :: Paint(not-a-number);`},
		{"bad out port", `a :: Counter(); b :: Discard(); a[3] -> b;`},
		{"bad in port", `a :: Counter(); b :: Counter(); a -> [5]b;`},
	}
	for _, c := range cases {
		cfg, err := clicklang.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := click.Build(cfg); err == nil {
			t.Errorf("%s: Build accepted %q", c.name, c.src)
		}
	}
}

func TestInjectErrors(t *testing.T) {
	r := click.MustBuildString(`d :: Discard();`)
	ctx := &click.Context{Now: func() int64 { return 0 }}
	if err := r.Inject(ctx, 0, &packet.Packet{}); err == nil {
		t.Error("inject into router with no sources should fail")
	}
	if r.NumSources() != 0 {
		t.Error("NumSources")
	}
}

func TestDropOnUnconnectedPort(t *testing.T) {
	r := click.MustBuildString(`in :: FromNetfront();`) // output unwired
	dropped := 0
	ctx := &click.Context{
		Now:      func() int64 { return 0 },
		DropHook: func(p *packet.Packet) { dropped++ },
	}
	if err := r.Inject(ctx, 0, &packet.Packet{}); err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestDropRecyclesToPool(t *testing.T) {
	pool := packet.NewPool(1, 0)
	ctx := &click.Context{Now: func() int64 { return 0 }, Pool: pool}
	p := pool.Get()
	ctx.Drop(p)
	_, puts, _ := pool.Stats()
	if puts != 1 {
		t.Errorf("pool puts = %d", puts)
	}
}

func TestTickDrivesTimedElements(t *testing.T) {
	r := click.MustBuildString(`
in :: FromNetfront();
tu :: TimedUnqueue(2, 10);
out :: ToNetfront();
in -> tu -> out;
`)
	var got []*packet.Packet
	now := int64(0)
	ctx := &click.Context{
		Now:      func() int64 { return now },
		Transmit: func(iface int, p *packet.Packet) { got = append(got, p) },
	}
	for i := 0; i < 3; i++ {
		r.Inject(ctx, 0, &packet.Packet{})
	}
	if len(got) != 0 {
		t.Fatal("packets released before interval")
	}
	d := r.Tick(ctx)
	if d <= 0 {
		t.Fatalf("tick delay = %d, want positive (pending batch)", d)
	}
	now += d
	r.Tick(ctx)
	if len(got) != 3 {
		t.Errorf("released %d packets want 3", len(got))
	}
	if d := r.Tick(ctx); d != -1 {
		t.Errorf("idle tick = %d want -1", d)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	click.Register("IPFilter", nil)
}

func TestRouterAccessors(t *testing.T) {
	r := click.MustBuildString(`a :: Counter(); b :: Discard(); a -> b;`)
	if r.Element("a") == nil || r.Element("b") == nil || r.Element("zz") != nil {
		t.Error("Element lookup")
	}
	if len(r.Elements()) != 2 {
		t.Error("Elements order")
	}
	if r.Config() == nil || len(r.Config().Conns) != 1 {
		t.Error("Config")
	}
}

func TestBaseSetOutputErrors(t *testing.T) {
	var b click.Base
	if err := b.SetOutput(-1, click.Target{}); err == nil {
		t.Error("negative port accepted")
	}
}
