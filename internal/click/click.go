// Package click implements a Click-modular-router-style element
// framework: packet-processing elements with numbered input and output
// ports, wired into configuration graphs parsed by clicklang.
//
// In-Net processing modules are Click configurations (paper §2, §4.1).
// The runtime here is push-based, as ClickOS dataplanes predominantly
// are: a packet enters through a FromNetfront element and flows
// synchronously through the graph until it is transmitted, queued or
// dropped. Elements that emit packets on their own schedule (queues
// drained by TimedUnqueue, rate limiters) implement Ticker and are
// driven by the owner of the router (dataplane loop or simulator).
package click

import (
	"fmt"
	"sort"
	"sync"

	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/packet"
)

// Context carries the runtime environment an element sees while
// processing a packet. It is provided by the dataplane or simulator
// driving the router; elements must not retain it across calls.
type Context struct {
	// Now returns the current time in nanoseconds (virtual or wall).
	Now func() int64
	// Transmit delivers a packet leaving the module through the
	// ToNetfront element with the given interface index.
	Transmit func(iface int, p *packet.Packet)
	// DropHook, if non-nil, observes every dropped packet (packets
	// pushed to an unconnected port or discarded by an element).
	DropHook func(p *packet.Packet)
	// PathHook, if non-nil, observes every hop a packet takes through
	// the graph walk: the element it leaves, the output port it used
	// and the input port it arrives on. The sampled path tracer arms
	// it per traced packet; when unset each hop pays one nil check.
	PathHook func(elem string, outPort, inPort int, p *packet.Packet)
	// Pool recycles dropped packets when non-nil.
	Pool *packet.Pool
}

// Drop disposes of a packet.
func (c *Context) Drop(p *packet.Packet) {
	if c.DropHook != nil {
		c.DropHook(p)
	}
	if c.Pool != nil {
		c.Pool.Put(p)
	}
}

// Element is a unit of packet processing.
type Element interface {
	// Class returns the Click class name (e.g. "IPFilter").
	Class() string
	// Configure applies the comma-separated configuration arguments.
	Configure(args []string) error
	// InPorts and OutPorts return the number of ports after
	// Configure; AnyPorts (-1) means any number is accepted.
	InPorts() int
	OutPorts() int
	// Push processes a packet arriving on an input port.
	Push(ctx *Context, port int, p *packet.Packet)

	// Name and wiring, implemented by embedding Base.
	Name() string
	SetName(string)
	SetOutput(port int, t Target) error
}

// AnyPorts marks a variable port count.
const AnyPorts = -1

// Target is the destination of an output port.
type Target struct {
	Elem Element
	Port int
}

// Ticker is implemented by elements that need periodic scheduling
// (e.g. TimedUnqueue, RatedUnqueue). Tick performs due work at the
// context's current time and returns the delay in nanoseconds until
// the next tick, or a negative value if the element is idle.
type Ticker interface {
	Tick(ctx *Context) int64
}

// Puller is implemented by elements whose outputs can be pulled from
// (Click's pull ports): Queue is the canonical example. Pull returns
// the next packet or nil.
type Puller interface {
	Pull(ctx *Context, port int) *packet.Packet
}

// UpstreamSetter is implemented by elements with pull *inputs*
// (Click's Unqueue): during Build, when a Puller's output is wired to
// such an element's input, the framework hands it the upstream so it
// can pull on its own schedule.
type UpstreamSetter interface {
	SetUpstream(port int, up Puller, upPort int) error
}

// Base provides naming and output wiring; every element embeds it.
type Base struct {
	name string
	outs []Target
}

// Name returns the element's instance name.
func (b *Base) Name() string { return b.name }

// SetName sets the element's instance name.
func (b *Base) SetName(s string) { b.name = s }

// SetOutput wires output port p to target t.
func (b *Base) SetOutput(p int, t Target) error {
	if p < 0 {
		return fmt.Errorf("click: negative output port %d", p)
	}
	for len(b.outs) <= p {
		b.outs = append(b.outs, Target{})
	}
	if b.outs[p].Elem != nil {
		return fmt.Errorf("click: output port %d already connected", p)
	}
	b.outs[p] = t
	return nil
}

// Out forwards a packet through output port p, dropping it if the
// port is unconnected.
func (b *Base) Out(ctx *Context, p int, pk *packet.Packet) {
	if p < len(b.outs) && b.outs[p].Elem != nil {
		t := b.outs[p]
		if ctx.PathHook != nil {
			ctx.PathHook(b.name, p, t.Port, pk)
		}
		t.Elem.Push(ctx, t.Port, pk)
		return
	}
	ctx.Drop(pk)
}

// Connected reports whether output port p is wired.
func (b *Base) Connected(p int) bool {
	return p < len(b.outs) && b.outs[p].Elem != nil
}

// Target returns the wiring of output port p (zero Target if
// unwired).
func (b *Base) Target(p int) Target {
	if p < len(b.outs) {
		return b.outs[p]
	}
	return Target{}
}

// NumWiredOutputs returns the number of output slots allocated by
// wiring (used to validate variable-port elements).
func (b *Base) NumWiredOutputs() int { return len(b.outs) }

// Factory creates an unconfigured element instance.
type Factory func() Element

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a class to the global element registry. It panics on
// duplicates, mirroring Click's link-time class table.
func Register(class string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[class]; dup {
		panic("click: duplicate element class " + class)
	}
	registry[class] = f
}

// Lookup returns the factory for class, or nil.
func Lookup(class string) Factory {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[class]
}

// Classes returns the sorted list of registered element classes.
func Classes() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Router is an instantiated Click configuration: the unit the paper
// calls a processing module.
type Router struct {
	cfg      *clicklang.Config
	elements map[string]Element
	order    []Element
	sources  []Element // FromNetfront-class entry points, in decl order
	tickers  []Ticker
}

// Injector is implemented by entry-point elements (FromNetfront).
type Injector interface {
	InjectionPoint() bool
}

// Build instantiates, configures and wires a parsed configuration.
func Build(cfg *clicklang.Config) (*Router, error) {
	r := &Router{cfg: cfg, elements: make(map[string]Element, len(cfg.Decls))}
	for _, d := range cfg.Decls {
		f := Lookup(d.Class)
		if f == nil {
			return nil, fmt.Errorf("click: %s: unknown element class %q", d.Name, d.Class)
		}
		el := f()
		el.SetName(d.Name)
		if err := el.Configure(d.Args); err != nil {
			return nil, fmt.Errorf("click: %s :: %s: %v", d.Name, d.Class, err)
		}
		r.elements[d.Name] = el
		r.order = append(r.order, el)
		if inj, ok := el.(Injector); ok && inj.InjectionPoint() {
			r.sources = append(r.sources, el)
		}
		if t, ok := el.(Ticker); ok {
			r.tickers = append(r.tickers, t)
		}
	}
	for _, c := range cfg.Conns {
		from := r.elements[c.From]
		to := r.elements[c.To]
		if n := from.OutPorts(); n != AnyPorts && c.FromPort >= n {
			return nil, fmt.Errorf("click: %s has %d output ports, connection uses [%d]", c.From, n, c.FromPort)
		}
		if n := to.InPorts(); n != AnyPorts && c.ToPort >= n {
			return nil, fmt.Errorf("click: %s has %d input ports, connection uses [%d]", c.To, n, c.ToPort)
		}
		if err := from.SetOutput(c.FromPort, Target{Elem: to, Port: c.ToPort}); err != nil {
			return nil, fmt.Errorf("click: %s[%d] -> [%d]%s: %v", c.From, c.FromPort, c.ToPort, c.To, err)
		}
		// Pull-path wiring: a Puller output feeding a pull input hands
		// the upstream reference over (Click's pull ports).
		if up, isPuller := from.(Puller); isPuller {
			if dn, wantsPull := to.(UpstreamSetter); wantsPull {
				if err := dn.SetUpstream(c.ToPort, up, c.FromPort); err != nil {
					return nil, fmt.Errorf("click: %s[%d] -> [%d]%s: %v", c.From, c.FromPort, c.ToPort, c.To, err)
				}
			}
		}
	}
	return r, nil
}

// MustBuildString parses and builds src, panicking on error; for
// tests and fixed stock configurations.
func MustBuildString(src string) *Router {
	cfg, err := clicklang.Parse(src)
	if err != nil {
		panic(err)
	}
	r, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the parsed configuration the router was built from.
func (r *Router) Config() *clicklang.Config { return r.cfg }

// Element returns the named element, or nil.
func (r *Router) Element(name string) Element { return r.elements[name] }

// Elements returns all elements in declaration order.
func (r *Router) Elements() []Element { return r.order }

// NumSources returns the number of injection points (FromNetfront).
func (r *Router) NumSources() int { return len(r.sources) }

// Inject pushes a packet into the i'th injection point.
func (r *Router) Inject(ctx *Context, i int, p *packet.Packet) error {
	if i < 0 || i >= len(r.sources) {
		return fmt.Errorf("click: no injection point %d (have %d)", i, len(r.sources))
	}
	r.sources[i].Push(ctx, 0, p)
	return nil
}

// Tick drives all schedulable elements once and returns the smallest
// positive delay until the next due tick, or -1 if all are idle.
func (r *Router) Tick(ctx *Context) int64 {
	next := int64(-1)
	for _, t := range r.tickers {
		d := t.Tick(ctx)
		if d >= 0 && (next < 0 || d < next) {
			next = d
		}
	}
	return next
}
