// Package policy implements the In-Net requirements language (paper
// §4.2) and its checker. Both clients and the operator express policy
// as reachability statements over the network:
//
//	reach from <node> [flow] {-> <node> [flow] [const <fields>]}+
//
// where a node is an IP address or subnet, the keyword "client"
// (the operator's residential clients), the keyword "internet", a
// topology node name, or a port of a Click element in a processing
// module ("module:element:port"). Flow specifications use tcpdump
// syntax; "const" lists header fields that must remain invariant on
// the hop into that node. The example from the paper's Fig. 4:
//
//	reach from internet udp
//	  -> Batcher:dst:0 dst 172.16.15.133
//	  -> client dst port 1500
//	  const proto && dst port && payload
package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/in-net/innet/internal/flowspec"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

// NodeRefKind classifies requirement node references.
type NodeRefKind int

// Node reference kinds.
const (
	RefInternet NodeRefKind = iota
	RefClient
	RefNamed      // topology node or processing module by name
	RefModuleElem // module:element[:port]
	RefAddr       // IP address or subnet
)

// NodeRef is one <node> in a requirement.
type NodeRef struct {
	Kind   NodeRefKind
	Name   string // RefNamed: node/module name; RefModuleElem: module
	Elem   string // RefModuleElem only
	Port   int    // RefModuleElem only (default 0)
	Prefix packet.Prefix
}

func (r NodeRef) String() string {
	switch r.Kind {
	case RefInternet:
		return "internet"
	case RefClient:
		return "client"
	case RefNamed:
		return r.Name
	case RefModuleElem:
		return fmt.Sprintf("%s:%s:%d", r.Name, r.Elem, r.Port)
	case RefAddr:
		if r.Prefix.Bits == 32 {
			return packet.IPString(r.Prefix.Addr)
		}
		return r.Prefix.String()
	}
	return "?"
}

// HopSpec is one hop of a requirement.
type HopSpec struct {
	Node NodeRef
	// Flow constrains the flow observed at (departing) this node;
	// nil means unconstrained.
	Flow *flowspec.Spec
	// Const lists fields that must not be modified on the hop
	// arriving at this node (empty on the first hop).
	Const []symexec.Field
}

// Requirement is one parsed reach statement.
type Requirement struct {
	Hops   []HopSpec
	Source string
}

func (r *Requirement) String() string { return r.Source }

// Parse parses a single reach statement.
func Parse(src string) (*Requirement, error) {
	reqs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(reqs) != 1 {
		return nil, fmt.Errorf("policy: want exactly one requirement, got %d", len(reqs))
	}
	return reqs[0], nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Requirement {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseAll parses a sequence of reach statements (one per "reach"
// keyword; statements may span lines).
func ParseAll(src string) ([]*Requirement, error) {
	var reqs []*Requirement
	text := strings.TrimSpace(src)
	if text == "" {
		return nil, fmt.Errorf("policy: empty requirement text")
	}
	// Split on the "reach" keyword.
	chunks := splitOnKeyword(text, "reach")
	if len(chunks) == 0 {
		return nil, fmt.Errorf("policy: no 'reach' statement found")
	}
	for _, c := range chunks {
		r, err := parseOne(c)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// splitOnKeyword splits text into chunks each beginning with the
// keyword (which is removed).
func splitOnKeyword(text, kw string) []string {
	fields := strings.Fields(text)
	var chunks []string
	var cur []string
	for _, f := range fields {
		if strings.EqualFold(f, kw) {
			if len(cur) > 0 {
				chunks = append(chunks, strings.Join(cur, " "))
			}
			cur = nil
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) > 0 {
		chunks = append(chunks, strings.Join(cur, " "))
	}
	// The text must begin with the keyword.
	if !strings.EqualFold(fields[0], kw) {
		return nil
	}
	return chunks
}

// parseOne parses the body of a reach statement (after "reach").
func parseOne(body string) (*Requirement, error) {
	fields := strings.Fields(body)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "from") {
		return nil, fmt.Errorf("policy: requirement must start with 'reach from': %q", body)
	}
	rest := strings.Join(fields[1:], " ")
	segments := strings.Split(rest, "->")
	if len(segments) < 2 {
		return nil, fmt.Errorf("policy: requirement needs at least one '->' hop: %q", body)
	}
	req := &Requirement{Source: "reach from " + strings.TrimSpace(rest)}
	for i, seg := range segments {
		hop, err := parseHop(seg, i == 0)
		if err != nil {
			return nil, fmt.Errorf("policy: hop %d: %v", i, err)
		}
		req.Hops = append(req.Hops, hop)
	}
	return req, nil
}

// parseHop parses "<node> [flow] [const <fields>]".
func parseHop(seg string, first bool) (HopSpec, error) {
	seg = strings.TrimSpace(seg)
	if seg == "" {
		return HopSpec{}, fmt.Errorf("empty hop")
	}
	// Extract a trailing const clause.
	var constFields []symexec.Field
	if idx := indexOfWord(seg, "const"); idx >= 0 {
		if first {
			return HopSpec{}, fmt.Errorf("const is not allowed on the source hop")
		}
		fl, err := flowspec.ParseFieldList(seg[idx+len("const"):])
		if err != nil {
			return HopSpec{}, err
		}
		constFields = fl
		seg = strings.TrimSpace(seg[:idx])
	}
	fields := strings.Fields(seg)
	if len(fields) == 0 {
		return HopSpec{}, fmt.Errorf("hop has a const clause but no node")
	}
	ref, err := parseNodeRef(fields[0])
	if err != nil {
		return HopSpec{}, err
	}
	var spec *flowspec.Spec
	if len(fields) > 1 {
		spec, err = flowspec.Parse(strings.Join(fields[1:], " "))
		if err != nil {
			return HopSpec{}, err
		}
	}
	return HopSpec{Node: ref, Flow: spec, Const: constFields}, nil
}

// indexOfWord finds a whitespace-delimited word, or -1.
func indexOfWord(s, word string) int {
	off := 0
	for _, f := range strings.Fields(s) {
		i := strings.Index(s[off:], f)
		pos := off + i
		if strings.EqualFold(f, word) {
			return pos
		}
		off = pos + len(f)
	}
	return -1
}

// parseNodeRef parses one node token.
func parseNodeRef(tok string) (NodeRef, error) {
	switch strings.ToLower(tok) {
	case "internet":
		return NodeRef{Kind: RefInternet}, nil
	case "client", "clients":
		return NodeRef{Kind: RefClient}, nil
	}
	// IP or subnet?
	if pfx, err := packet.ParsePrefix(tok); err == nil {
		return NodeRef{Kind: RefAddr, Prefix: pfx}, nil
	}
	// module:element[:port]
	if strings.Contains(tok, ":") {
		parts := strings.Split(tok, ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
			return NodeRef{}, fmt.Errorf("bad element reference %q", tok)
		}
		ref := NodeRef{Kind: RefModuleElem, Name: parts[0], Elem: parts[1]}
		if len(parts) == 3 {
			p, err := strconv.Atoi(parts[2])
			if err != nil || p < 0 {
				return NodeRef{}, fmt.Errorf("bad port in %q", tok)
			}
			ref.Port = p
		}
		return ref, nil
	}
	return NodeRef{Kind: RefNamed, Name: tok}, nil
}

// CheckEnv is everything a requirement check runs against: a compiled
// network snapshot plus naming and addressing context.
type CheckEnv struct {
	Net *symexec.Network
	Map *topology.NetMap
	// ClientNet is the operator's residential client subnet.
	ClientNet packet.Prefix
	// MaxHops bounds reachability runs (0 = default).
	MaxHops int
	// MaxSteps bounds the total symbolic steps one Check may spend
	// across all of its reachability runs (0 = symexec's per-run
	// default). Exhaustion surfaces as a symexec.ErrBudget error.
	MaxSteps int
	// Deadline aborts checking once the wall clock passes it (zero =
	// no deadline).
	Deadline time.Time
	// Workers / Memo are passed through to every reachability run
	// (see symexec.Injection); they never affect results.
	Workers int
	Memo    *symexec.Memo
	// Visited, when non-nil, accumulates the name of every compiled
	// node some reachability run of this environment executed. A
	// check's outcome is a function of the models of visited nodes
	// only — an unvisited node's model never ran, so changing it
	// cannot alter any flow the check observed — which makes Visited
	// the dependency footprint for epoch-delta cache invalidation.
	Visited map[string]bool
	// RefNames, when non-nil, accumulates requirement node references
	// resolved *by name* (modules, module elements, topology nodes):
	// an outcome can depend on a name's existence — "unknown element"
	// resolution errors, "no flow reaches" verdicts — even when no
	// flow ever executes the named node.
	RefNames map[string]bool
}

func (env *CheckEnv) noteVisited(run *symexec.Result) {
	if env.Visited == nil || run == nil {
		return
	}
	for node := range run.AtNode {
		env.Visited[node] = true
	}
}

func (env *CheckEnv) noteRef(name string) {
	if env.RefNames != nil && name != "" {
		env.RefNames[name] = true
	}
}

// HopReport records the verdict for one hop.
type HopReport struct {
	Node      string
	Arrived   int // states that arrived at the node (right port)
	Matched   int // states also satisfying the hop's flow spec
	Invariant bool
}

// CheckResult is the outcome of checking one requirement.
type CheckResult struct {
	Satisfied bool
	// Reason describes the first failure.
	Reason string
	Hops   []HopReport
	// Steps sums symbolic execution steps across hop runs.
	Steps int
}

// Check verifies the requirement against the environment (§4.3): a
// symbolic packet refined by the source flow definition is injected
// at the source node, reachability is run, and at every subsequent
// hop the resulting flows must (a) reach the hop's node/port, (b)
// satisfy the hop's flow specification, and (c) leave the hop's const
// fields unmodified since the previous hop. The requirement is
// satisfied if at least one symbolic flow conforms end to end.
func (r *Requirement) Check(env *CheckEnv) (*CheckResult, error) {
	res := &CheckResult{}
	if len(r.Hops) < 2 {
		return nil, fmt.Errorf("policy: requirement has no hops")
	}
	src := r.Hops[0]
	injNode, err := env.resolveNode(src.Node)
	if err != nil {
		return nil, err
	}

	// Build the injected states: an unconstrained packet refined by
	// the source flow definition (plus source-address constraints for
	// client/internet/addr sources).
	init := symexec.NewState()
	if err := env.constrainSource(src.Node, init); err != nil {
		return nil, err
	}
	states := []*symexec.State{init}
	if src.Flow != nil {
		states = src.Flow.Refine(init)
		if len(states) == 0 {
			res.Reason = "source flow specification is unsatisfiable"
			return res, nil
		}
	}

	// Walk the hop chain. After each leg we re-inject the surviving
	// (refined) flows at the hop's node to continue exploration.
	prevNodes := []string{injNode}
	for hi := 1; hi < len(r.Hops); hi++ {
		hop := r.Hops[hi]
		var arrivals []*symexec.State
		node, port, perr := env.resolveHop(hop.Node)
		if perr != nil {
			return nil, perr
		}
		for _, st := range states {
			// The step budget is shared across the whole check: each
			// run gets what the previous ones left over.
			budget := 0
			if env.MaxSteps > 0 {
				budget = env.MaxSteps - res.Steps
				if budget <= 0 {
					return nil, fmt.Errorf("policy: requirement %q: %d steps spent: %w", r, res.Steps, symexec.ErrBudget)
				}
			}
			run, rerr := env.Net.Run(symexec.Injection{
				Node: injNode, State: st, MaxHops: env.MaxHops,
				MaxSteps: budget, Deadline: env.Deadline,
				Workers: env.Workers, Memo: env.Memo,
			})
			if run != nil {
				res.Steps += run.Steps
				env.noteVisited(run)
			}
			if rerr != nil {
				return nil, rerr
			}
			for _, got := range run.AtNode[node] {
				if port >= 0 {
					if last, ok := got.LastHop(); !ok || last.Port != port {
						continue
					}
				}
				arrivals = append(arrivals, got)
			}
		}
		report := HopReport{Node: hop.Node.String(), Arrived: len(arrivals), Invariant: true}
		if len(arrivals) == 0 {
			res.Hops = append(res.Hops, report)
			res.Reason = fmt.Sprintf("no flow reaches %s", hop.Node)
			return res, nil
		}
		// Apply the hop's flow specification and destination
		// constraints.
		var matched []*symexec.State
		for _, a := range arrivals {
			cand := a
			if hop.Node.Kind == RefClient {
				lo, hi2 := env.ClientNet.Range()
				if !cand.Constrain(symexec.FieldDstIP, symexec.Span(uint64(lo), uint64(hi2))) {
					continue
				}
			}
			if hop.Node.Kind == RefAddr {
				lo, hi2 := hop.Node.Prefix.Range()
				if !cand.Constrain(symexec.FieldDstIP, symexec.Span(uint64(lo), uint64(hi2))) {
					continue
				}
			}
			if hop.Flow != nil {
				matched = append(matched, hop.Flow.Refine(cand)...)
			} else {
				matched = append(matched, cand)
			}
		}
		report.Matched = len(matched)
		if len(matched) == 0 {
			res.Hops = append(res.Hops, report)
			res.Reason = fmt.Sprintf("flows reach %s but none satisfies %q", hop.Node, hop.Flow)
			return res, nil
		}
		// Invariant check: const fields must not have been redefined
		// after the previous hop.
		if len(hop.Const) > 0 {
			var inv []*symexec.State
			for _, m := range matched {
				if fieldsInvariantSince(m, prevNodes, hop.Const) {
					inv = append(inv, m)
				}
			}
			if len(inv) == 0 {
				report.Invariant = false
				res.Hops = append(res.Hops, report)
				res.Reason = fmt.Sprintf("invariant %v violated on the hop into %s", hop.Const, hop.Node)
				return res, nil
			}
			matched = inv
		}
		res.Hops = append(res.Hops, report)
		states = matched
		injNode = node
		prevNodes = []string{node}
	}
	res.Satisfied = true
	return res, nil
}

// fieldsInvariantSince reports whether every field's last definition
// happened at or before the previous hop's node.
func fieldsInvariantSince(s *symexec.State, prevNodes []string, fields []symexec.Field) bool {
	prevIdx := -1
	for _, pn := range prevNodes {
		if i := s.HopIndex(pn, -1); i > prevIdx {
			prevIdx = i
		}
	}
	for _, f := range fields {
		if s.Binding(f).DefHop > prevIdx {
			return false
		}
	}
	return true
}

// resolveNode maps a source node reference to the injection node.
func (env *CheckEnv) resolveNode(ref NodeRef) (string, error) {
	switch ref.Kind {
	case RefInternet:
		return env.mustEntry(topology.NodeInternet)
	case RefClient:
		return env.mustEntry(topology.NodeClient)
	case RefAddr:
		// A raw address source originates in the Internet.
		return env.mustEntry(topology.NodeInternet)
	case RefNamed:
		env.noteRef(ref.Name)
		if n, ok := env.Map.EntryNode(ref.Name); ok {
			return n, nil
		}
		if m := env.Map.Module(ref.Name); m != nil {
			// Module as source: inject at its first element.
			return "", fmt.Errorf("policy: module %q cannot be a source; name an element port", ref.Name)
		}
		return "", fmt.Errorf("policy: unknown node %q", ref.Name)
	case RefModuleElem:
		env.noteRef(ref.Name)
		node := env.Map.ModuleElem(ref.Name, ref.Elem)
		if !env.Net.HasNode(node) {
			return "", fmt.Errorf("policy: unknown element %s", ref)
		}
		return node, nil
	}
	return "", fmt.Errorf("policy: unsupported source node %v", ref)
}

// resolveHop maps a non-source node reference to (node, portFilter).
// portFilter < 0 means any arrival port.
func (env *CheckEnv) resolveHop(ref NodeRef) (string, int, error) {
	switch ref.Kind {
	case RefInternet, RefAddr:
		n, err := env.mustEntry(topology.NodeInternet)
		return n, -1, err
	case RefClient:
		n, err := env.mustEntry(topology.NodeClient)
		return n, -1, err
	case RefNamed:
		env.noteRef(ref.Name)
		if n, ok := env.Map.EntryNode(ref.Name); ok {
			return n, -1, nil
		}
		return "", 0, fmt.Errorf("policy: unknown node %q", ref.Name)
	case RefModuleElem:
		env.noteRef(ref.Name)
		node := env.Map.ModuleElem(ref.Name, ref.Elem)
		if !env.Net.HasNode(node) {
			return "", 0, fmt.Errorf("policy: unknown element %s", ref)
		}
		return node, ref.Port, nil
	}
	return "", 0, fmt.Errorf("policy: unsupported node %v", ref)
}

func (env *CheckEnv) mustEntry(name string) (string, error) {
	n, ok := env.Map.EntryNode(name)
	if !ok {
		return "", fmt.Errorf("policy: topology has no %q endpoint", name)
	}
	return n, nil
}

// constrainSource applies source-address constraints implied by the
// source node kind.
func (env *CheckEnv) constrainSource(ref NodeRef, s *symexec.State) error {
	switch ref.Kind {
	case RefClient:
		lo, hi := env.ClientNet.Range()
		if !s.Constrain(symexec.FieldSrcIP, symexec.Span(uint64(lo), uint64(hi))) {
			return fmt.Errorf("policy: client subnet constraint unsatisfiable")
		}
	case RefAddr:
		lo, hi := ref.Prefix.Range()
		if !s.Constrain(symexec.FieldSrcIP, symexec.Span(uint64(lo), uint64(hi))) {
			return fmt.Errorf("policy: source address constraint unsatisfiable")
		}
	}
	return nil
}
