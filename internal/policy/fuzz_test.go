package policy

import "testing"

// FuzzParse: the requirements parser must never panic and must reject
// everything that does not start with "reach from".
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"reach from internet -> client",
		"reach from internet udp -> m:e:0 dst 1.2.3.4 -> client const payload",
		"reach from 10.0.0.0/8 -> client",
		"reach from internet -> client const proto && dst port",
		"reach reach reach",
		"from internet -> client",
		"reach from -> ->",
		"reach from internet const x -> client",
		"reach from internet \x00 -> client",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		reqs, err := ParseAll(src)
		if err != nil {
			return
		}
		for _, r := range reqs {
			if len(r.Hops) < 2 {
				t.Fatalf("accepted requirement with %d hops: %q", len(r.Hops), src)
			}
			// Accepted requirements re-parse from their rendering.
			if _, err := Parse(r.String()); err != nil {
				t.Fatalf("rendering %q of %q does not re-parse: %v", r.String(), src, err)
			}
		}
	})
}
