package policy

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/click"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

const fig4Requirement = `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`

const batcherModule = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

func TestParseFig4Requirement(t *testing.T) {
	r, err := Parse(fig4Requirement)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 3 {
		t.Fatalf("hops = %d", len(r.Hops))
	}
	if r.Hops[0].Node.Kind != RefInternet || r.Hops[0].Flow == nil {
		t.Errorf("hop0 = %+v", r.Hops[0])
	}
	h1 := r.Hops[1]
	if h1.Node.Kind != RefModuleElem || h1.Node.Name != "Batcher" || h1.Node.Elem != "dst" || h1.Node.Port != 0 {
		t.Errorf("hop1 node = %+v", h1.Node)
	}
	if h1.Flow == nil || !strings.Contains(h1.Flow.String(), "10.1.15.133") {
		t.Errorf("hop1 flow = %v", h1.Flow)
	}
	h2 := r.Hops[2]
	if h2.Node.Kind != RefClient {
		t.Errorf("hop2 node = %+v", h2.Node)
	}
	if len(h2.Const) != 3 {
		t.Errorf("const fields = %v", h2.Const)
	}
	if h2.Const[0] != symexec.FieldProto || h2.Const[2] != symexec.FieldPayload {
		t.Errorf("const fields = %v", h2.Const)
	}
}

func TestParseVariants(t *testing.T) {
	good := []string{
		"reach from internet -> client",
		"reach from client -> internet",
		"reach from internet tcp src port 80 -> HTTPOptimizer -> client",
		"reach from 8.8.8.0/24 udp -> client",
		"reach from internet -> mod:elem:2 udp -> client",
		"reach from internet -> mod:elem -> client",
		"reach from internet udp -> client dst port 99 const payload",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"from internet -> client",
		"reach internet -> client",
		"reach from internet",
		"reach from internet const payload -> client",
		"reach from internet -> client const",
		"reach from internet -> client const bogusfield",
		"reach from internet notaspec_xyz%% -> client",
		"reach from internet -> mod:elem:x",
		"reach from internet -> :elem",
		"reach from internet -> a:b:c:d",
		"reach from internet -> ",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseAllMultiple(t *testing.T) {
	src := `
reach from internet tcp src port 80 -> HTTPOptimizer -> client
reach from client -> internet
`
	reqs, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("reqs = %d", len(reqs))
	}
}

func TestNodeRefString(t *testing.T) {
	cases := map[string]string{
		"internet":   "internet",
		"client":     "client",
		"HTTPOpt":    "HTTPOpt",
		"m:e:3":      "m:e:3",
		"10.0.0.0/8": "10.0.0.0/8",
		"1.2.3.4":    "1.2.3.4",
	}
	for in, want := range cases {
		ref, err := parseNodeRef(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := ref.String(); got != want {
			t.Errorf("%q -> %q want %q", in, got, want)
		}
	}
}

// fig3Env compiles the Fig. 3 fixture with the batcher hosted on the
// given platform.
func fig3Env(t *testing.T, platform string, addr string) *CheckEnv {
	t.Helper()
	tp, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	var mods []topology.HostedModule
	if platform != "" {
		mods = append(mods, topology.HostedModule{
			ID: "Batcher", Platform: platform,
			Addr:   packet.MustParseIP(addr),
			Router: click.MustBuildString(batcherModule),
		})
	}
	net, nm, err := tp.Compile(mods)
	if err != nil {
		t.Fatal(err)
	}
	return &CheckEnv{Net: net, Map: nm, ClientNet: tp.ClientNet}
}

func TestCheckFig4OnPlatform3(t *testing.T) {
	env := fig3Env(t, "Platform3", "198.51.100.10")
	res, err := MustParse(fig4Requirement).Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("requirement not satisfied: %s (hops: %+v)", res.Reason, res.Hops)
	}
	if len(res.Hops) != 2 {
		t.Errorf("hop reports = %d", len(res.Hops))
	}
	if res.Steps == 0 {
		t.Error("no steps recorded")
	}
}

func TestCheckFig4FailsOnInternalPlatform(t *testing.T) {
	// Platforms 1 and 2 are not reachable from the Internet (§4.5:
	// "only Platform 3 applies").
	for _, pl := range []struct{ name, addr string }{
		{"Platform1", "10.200.1.10"},
		{"Platform2", "10.200.2.10"},
	} {
		env := fig3Env(t, pl.name, pl.addr)
		res, err := MustParse(fig4Requirement).Check(env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfied {
			t.Errorf("%s: requirement satisfied but the platform is internal", pl.name)
		}
	}
}

func TestCheckOperatorHTTPPolicy(t *testing.T) {
	// The operator policy of §4.2: HTTP traffic reaching clients goes
	// through the HTTP optimizer.
	env := fig3Env(t, "", "")
	res, err := MustParse(
		"reach from internet tcp src port 80 -> HTTPOptimizer -> client").Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("operator policy unsatisfied: %s", res.Reason)
	}
	// And UDP traffic cannot be forced through the optimizer.
	res2, err := MustParse(
		"reach from internet udp -> HTTPOptimizer -> client").Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Satisfied {
		t.Error("udp through the HTTP optimizer should be unreachable")
	}
}

func TestCheckInvariantViolation(t *testing.T) {
	// Require the destination port to be invariant across a module
	// that rewrites it: must fail.
	tp, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	mod := click.MustBuildString(`
FromNetfront() ->
IPRewriter(pattern - - 10.1.15.133 99 0 0)
-> dst::ToNetfront()
`)
	net, nm, err := tp.Compile([]topology.HostedModule{{
		ID: "rewr", Platform: "Platform3",
		Addr: packet.MustParseIP("198.51.100.11"), Router: mod,
	}})
	if err != nil {
		t.Fatal(err)
	}
	env := &CheckEnv{Net: net, Map: nm, ClientNet: tp.ClientNet}
	// The rewrite happens inside the module, i.e. on the hop from the
	// internet INTO the module's dst element — so the invariant is
	// attached there (per §4.2, const covers the hop into the node).
	res, err := MustParse(`
reach from internet udp
-> rewr:dst:0 const dst port
-> client
`).Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("dst-port invariant should be violated by the rewriter")
	}
	if !strings.Contains(res.Reason, "invariant") {
		t.Errorf("reason = %q", res.Reason)
	}
	// The same requirement without the invariant succeeds.
	res2, err := MustParse(`
reach from internet udp -> rewr:dst:0 -> client
`).Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Satisfied {
		t.Errorf("plain reachability should hold: %s", res2.Reason)
	}
	// Payload IS invariant across this module.
	res3, err := MustParse(`
reach from internet udp -> rewr:dst:0 const payload -> client const payload
`).Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Satisfied {
		t.Errorf("payload invariant should hold: %s", res3.Reason)
	}
}

func TestCheckFlowSpecMismatch(t *testing.T) {
	env := fig3Env(t, "Platform3", "198.51.100.10")
	// The module filters to udp port 1500; requiring tcp at the
	// client cannot be satisfied.
	res, err := MustParse(
		"reach from internet tcp -> Batcher:dst:0 -> client").Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("tcp through the udp-only batcher should fail")
	}
}

func TestCheckUnknownNodes(t *testing.T) {
	env := fig3Env(t, "", "")
	if _, err := MustParse("reach from internet -> NoSuchBox -> client").Check(env); err == nil {
		t.Error("unknown hop node accepted")
	}
	if _, err := MustParse("reach from internet -> NoMod:elem:0").Check(env); err == nil {
		t.Error("unknown module element accepted")
	}
}

func TestCheckPortFilter(t *testing.T) {
	// The batcher's dst element is entered on port 0; requiring
	// arrival on port 3 must fail.
	env := fig3Env(t, "Platform3", "198.51.100.10")
	res, err := MustParse(
		"reach from internet udp -> Batcher:dst:3 -> client").Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("wrong-port arrival accepted")
	}
}

func BenchmarkCheckFig4(b *testing.B) {
	tp, err := topology.PaperFig3()
	if err != nil {
		b.Fatal(err)
	}
	net, nm, err := tp.Compile([]topology.HostedModule{{
		ID: "Batcher", Platform: "Platform3",
		Addr:   packet.MustParseIP("198.51.100.10"),
		Router: click.MustBuildString(batcherModule),
	}})
	if err != nil {
		b.Fatal(err)
	}
	env := &CheckEnv{Net: net, Map: nm, ClientNet: tp.ClientNet}
	req := MustParse(fig4Requirement)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := req.Check(env)
		if err != nil || !res.Satisfied {
			b.Fatalf("check failed: %v %v", err, res)
		}
	}
}
