package stock

import (
	"testing"

	"github.com/in-net/innet/internal/netsim"
)

func TestServerSlots(t *testing.T) {
	sim := netsim.New(1)
	s := NewServer(sim, 2, netsim.Seconds(1))
	if !s.TryRequest() || !s.TryRequest() {
		t.Fatal("slots should be free")
	}
	if s.TryRequest() {
		t.Fatal("third request should be refused")
	}
	if s.InUse() != 2 || s.Refused != 1 {
		t.Errorf("inUse=%d refused=%d", s.InUse(), s.Refused)
	}
	sim.Run()
	if s.InUse() != 0 || s.Served != 2 {
		t.Errorf("after drain: inUse=%d served=%d", s.InUse(), s.Served)
	}
}

func TestInvalidHoldsNotServed(t *testing.T) {
	sim := netsim.New(1)
	s := NewServer(sim, 5, netsim.Seconds(1))
	s.TryHold(netsim.Seconds(2), false)
	sim.Run()
	if s.Served != 0 {
		t.Error("attack connection counted as served")
	}
}

func TestSlowlorisExhaustsServer(t *testing.T) {
	sim := netsim.New(1)
	s := NewServer(sim, 100, netsim.Millis(50))
	a := NewSlowloris(sim, s, 50, netsim.Seconds(60))
	a.Start()
	sim.RunUntil(netsim.Seconds(10))
	// 50 conns/s for 10 s against 100 slots: saturated.
	if s.InUse() != 100 {
		t.Errorf("inUse = %d, attack did not saturate", s.InUse())
	}
	if !sVictim(s) {
		t.Error("valid request should now be refused")
	}
	a.Stop()
	// Holds drain after 60 s.
	sim.RunUntil(netsim.Seconds(120))
	if s.InUse() != 0 {
		t.Errorf("slots not drained: %d", s.InUse())
	}
}

func sVictim(s *Server) bool { return !s.TryRequest() }

func TestSlowlorisRetarget(t *testing.T) {
	sim := netsim.New(1)
	origin := NewServer(sim, 10, netsim.Millis(50))
	proxy := NewServer(sim, 1000, netsim.Millis(50))
	a := NewSlowloris(sim, origin, 100, netsim.Seconds(60))
	a.Start()
	sim.RunUntil(netsim.Seconds(1))
	a.Retarget(proxy)
	before := origin.Refused
	sim.RunUntil(netsim.Seconds(5))
	// New attack conns land on the proxy now.
	if proxy.InUse() == 0 {
		t.Error("retarget ineffective")
	}
	if origin.Refused != before {
		t.Error("origin still being hit after retarget")
	}
	// Double start is a no-op.
	a.Start()
	sim.RunUntil(netsim.Seconds(6))
}

func TestGeoDNSPicksNearest(t *testing.T) {
	g := NewGeoDNS()
	g.AddReplica("ro", []netsim.Time{10, 300, 300})
	g.AddReplica("de", []netsim.Time{300, 20, 300})
	g.AddReplica("it", []netsim.Time{300, 300, 30})
	for i, want := range []string{"ro", "de", "it"} {
		name, rtt := g.Resolve(i)
		if name != want {
			t.Errorf("client %d -> %s want %s", i, name, want)
		}
		if rtt > 30 {
			t.Errorf("client %d rtt = %d", i, rtt)
		}
	}
	// Out-of-range client: no replica has data.
	if name, _ := g.Resolve(99); name != "" {
		t.Errorf("missing client resolved to %s", name)
	}
}
