// Package stock implements the application-level behaviour of the
// stock processing modules (paper §4.1): an HTTP-style origin server
// with finite connection slots, a reverse proxy that shields the
// origin from slow clients, and a geolocation DNS that spreads
// clients to their nearest replica. These run inside the netsim
// discrete-event world and power the DoS-protection and CDN use
// cases (§8, Figs. 15-16).
package stock

import (
	"math"
	"sort"

	"github.com/in-net/innet/internal/netsim"
)

// Server is an origin (or proxy) with a bounded connection table —
// the resource a Slowloris attack exhausts.
type Server struct {
	sim *netsim.Sim
	// MaxConns is the connection-slot pool (Apache-style).
	MaxConns int
	// ServiceTime is how long a *well-formed* request holds a slot.
	ServiceTime netsim.Time
	// SlowTimeout, when positive, bounds how long an *invalid*
	// (trickled) request may hold a slot — the aggressive
	// slow-request timeout a reverse proxy applies, which is what
	// makes it an effective Slowloris shield.
	SlowTimeout netsim.Time

	inUse int
	// Served counts completed valid requests; Refused counts
	// connection attempts that found no free slot.
	Served  uint64
	Refused uint64
}

// NewServer creates a server.
func NewServer(sim *netsim.Sim, maxConns int, serviceTime netsim.Time) *Server {
	return &Server{sim: sim, MaxConns: maxConns, ServiceTime: serviceTime}
}

// InUse returns the currently held slots.
func (s *Server) InUse() int { return s.inUse }

// TryRequest attempts a valid request: it occupies a slot for
// ServiceTime, then completes. Returns false when refused.
func (s *Server) TryRequest() bool {
	return s.TryHold(s.ServiceTime, true)
}

// TryHold occupies a slot for the given duration; counted as a served
// request only when valid (an attacker's trickled request is not).
func (s *Server) TryHold(d netsim.Time, valid bool) bool {
	if !valid && s.SlowTimeout > 0 && d > s.SlowTimeout {
		d = s.SlowTimeout
	}
	if s.inUse >= s.MaxConns {
		s.Refused++
		return false
	}
	s.inUse++
	s.sim.After(d, func() {
		s.inUse--
		if valid {
			s.Served++
		}
	})
	return true
}

// Slowloris is the attack of §8: it opens as many connections as
// possible and trickles request bytes so the server cannot time them
// out, starving valid clients of slots.
type Slowloris struct {
	sim    *netsim.Sim
	target *Server
	// ConnsPerSec is the attacker's connection-opening rate.
	ConnsPerSec float64
	// HoldTime is how long each trickled connection survives before
	// the server finally drops it and the attacker reopens.
	HoldTime netsim.Time

	active bool
	// Opened counts attack connections that got a slot.
	Opened uint64
}

// NewSlowloris aims an attacker at a target.
func NewSlowloris(sim *netsim.Sim, target *Server, connsPerSec float64, holdTime netsim.Time) *Slowloris {
	return &Slowloris{sim: sim, target: target, ConnsPerSec: connsPerSec, HoldTime: holdTime}
}

// Start begins the attack; Stop ends it (held slots drain as their
// hold time expires).
func (a *Slowloris) Start() {
	if a.active {
		return
	}
	a.active = true
	a.tick()
}

// Stop halts new attack connections.
func (a *Slowloris) Stop() { a.active = false }

func (a *Slowloris) tick() {
	if !a.active {
		return
	}
	if a.target.TryHold(a.HoldTime, false) {
		a.Opened++
	}
	gap := netsim.Time(1e9 / a.ConnsPerSec)
	a.sim.After(gap, func() { a.tick() })
}

// Retarget switches the attacker to a new victim (it keeps attacking
// whatever DNS hands out, like a real botnet would).
func (a *Slowloris) Retarget(s *Server) { a.target = s }

// GeoDNS spreads clients to the replica with the lowest RTT — the
// geolocation resolution of the stock DNS module (§4.1, §8).
type GeoDNS struct {
	// Replicas maps replica name to per-client RTTs.
	replicas map[string][]netsim.Time
}

// NewGeoDNS builds a resolver for nClients.
func NewGeoDNS() *GeoDNS {
	return &GeoDNS{replicas: make(map[string][]netsim.Time)}
}

// AddReplica registers a replica with per-client RTTs.
func (g *GeoDNS) AddReplica(name string, rtts []netsim.Time) {
	g.replicas[name] = rtts
}

// Resolve returns the replica with the lowest RTT for the client and
// that RTT.
func (g *GeoDNS) Resolve(client int) (string, netsim.Time) {
	bestName := ""
	best := netsim.Time(math.MaxInt64)
	// Deterministic order.
	names := make([]string, 0, len(g.replicas))
	for n := range g.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rtts := g.replicas[n]
		if client < len(rtts) && rtts[client] < best {
			best = rtts[client]
			bestName = n
		}
	}
	return bestName, best
}
