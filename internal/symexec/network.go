package symexec

import (
	"errors"
	"fmt"
	"time"
)

// ErrBudget is wrapped by Run when exploration exhausts its step or
// wall-clock budget; callers detect it with errors.Is and turn it
// into an admission rejection rather than hanging on a pathological
// configuration.
var ErrBudget = errors.New("symexec: exploration budget exceeded")

// DefaultMaxSteps bounds total model executions per Run when the
// injection does not set its own budget.
const DefaultMaxSteps = 1 << 20

// deadlineCheckEvery is how many steps pass between wall-clock
// deadline checks (time.Now per step would dominate small runs).
const deadlineCheckEvery = 256

// Transition is one outcome of symbolically executing a model: the
// state continues out of the given output port. A model returning no
// transitions drops the flow (e.g. a filter's deny rule).
type Transition struct {
	Port int
	S    *State
}

// Model is the abstract, statically-checkable description of a
// network element (paper §4.3). Sym consumes the state (it may mutate
// or clone it) and returns the resulting flows. Models must not loop
// and must not allocate unbounded state; stateful behaviour is pushed
// into the flow's synthetic fields.
type Model interface {
	Sym(port int, s *State) []Transition
}

// FuncModel adapts a function to the Model interface.
type FuncModel func(port int, s *State) []Transition

// Sym implements Model.
func (f FuncModel) Sym(port int, s *State) []Transition { return f(port, s) }

// Forward is a model that passes every state through unchanged to
// output port 0 (a wire).
var Forward = FuncModel(func(port int, s *State) []Transition {
	return []Transition{{Port: 0, S: s}}
})

// PortRef names an input port of a node.
type PortRef struct {
	Node string
	Port int
}

// Network is a graph of named models, compiled from the operator's
// topology snapshot plus any candidate processing modules. It is what
// the controller runs reachability over.
type Network struct {
	models map[string]Model
	wires  map[string]map[int]PortRef
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		models: make(map[string]Model),
		wires:  make(map[string]map[int]PortRef),
	}
}

// AddNode registers a named model.
func (n *Network) AddNode(name string, m Model) error {
	if _, dup := n.models[name]; dup {
		return fmt.Errorf("symexec: node %q already exists", name)
	}
	if m == nil {
		return fmt.Errorf("symexec: node %q has nil model", name)
	}
	n.models[name] = m
	return nil
}

// HasNode reports whether a node exists.
func (n *Network) HasNode(name string) bool {
	_, ok := n.models[name]
	return ok
}

// Connect wires from:fromPort to to:toPort. Each output port has at
// most one target.
func (n *Network) Connect(from string, fromPort int, to string, toPort int) error {
	if _, ok := n.models[from]; !ok {
		return fmt.Errorf("symexec: unknown node %q", from)
	}
	if _, ok := n.models[to]; !ok {
		return fmt.Errorf("symexec: unknown node %q", to)
	}
	w := n.wires[from]
	if w == nil {
		w = make(map[int]PortRef)
		n.wires[from] = w
	}
	if prev, dup := w[fromPort]; dup {
		return fmt.Errorf("symexec: %s:%d already wired to %s:%d", from, fromPort, prev.Node, prev.Port)
	}
	w[fromPort] = PortRef{Node: to, Port: toPort}
	return nil
}

// Target returns the wiring of an output port.
func (n *Network) Target(from string, port int) (PortRef, bool) {
	w, ok := n.wires[from]
	if !ok {
		return PortRef{}, false
	}
	t, ok := w[port]
	return t, ok
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.models) }

// Egress is a state that left the network through an unwired output
// port.
type Egress struct {
	Node string
	Port int
	S    *State
}

// Result collects everything reachability produced for one injection.
type Result struct {
	// AtNode records, per node name, the states as they *arrived* at
	// the node (before its model ran). This is "the flow reachable at
	// every node" of §4.3.
	AtNode map[string][]*State
	// Egress lists states that exited the network.
	Egress []Egress
	// Dropped counts flows terminated by models, per node.
	Dropped map[string]int
	// Truncated is set when the hop bound stopped exploration.
	Truncated bool
	// Steps is the total number of model executions.
	Steps int
}

// Injection describes a reachability run.
type Injection struct {
	// Node and Port locate the entry input port.
	Node string
	Port int
	// State is the symbolic packet to inject; NewState() if nil.
	State *State
	// MaxHops bounds any single flow's path length (default 8192).
	MaxHops int
	// MaxStates bounds the total number of in-flight flows to guard
	// against pathological branching (default 65536).
	MaxStates int
	// MaxSteps bounds total model executions across the whole run
	// (default DefaultMaxSteps). Exceeding it aborts with ErrBudget —
	// unlike MaxHops/MaxStates, which merely truncate — because a
	// config that needs this many steps is hostile or broken, and an
	// admission verdict computed from a partial exploration would be
	// unsound.
	MaxSteps int
	// Deadline aborts exploration (with ErrBudget) once the wall
	// clock passes it; the zero value means no deadline.
	Deadline time.Time
}

type workItem struct {
	node string
	port int
	s    *State
}

// Run performs symbolic reachability from the injection point,
// breadth-first, splitting flows at every branching model.
func (n *Network) Run(inj Injection) (*Result, error) {
	if _, ok := n.models[inj.Node]; !ok {
		return nil, fmt.Errorf("symexec: injection node %q unknown", inj.Node)
	}
	st := inj.State
	if st == nil {
		st = NewState()
	}
	maxHops := inj.MaxHops
	if maxHops <= 0 {
		maxHops = 8192
	}
	maxStates := inj.MaxStates
	if maxStates <= 0 {
		maxStates = 65536
	}
	maxSteps := inj.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	res := &Result{
		AtNode:  make(map[string][]*State),
		Dropped: make(map[string]int),
	}
	queue := []workItem{{node: inj.Node, port: inj.Port, s: st}}
	produced := 1
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.s.PathLen() >= maxHops {
			res.Truncated = true
			continue
		}
		// Record the hop, snapshot the arrival state (pre-model), then
		// run the model.
		it.s.PushHop(it.node, it.port)
		res.AtNode[it.node] = append(res.AtNode[it.node], it.s.Clone())
		outs := n.models[it.node].Sym(it.port, it.s)
		res.Steps++
		if res.Steps > maxSteps {
			return res, fmt.Errorf("symexec: %d model executions (last at %s): %w", res.Steps, it.node, ErrBudget)
		}
		if !inj.Deadline.IsZero() && res.Steps%deadlineCheckEvery == 0 && time.Now().After(inj.Deadline) {
			return res, fmt.Errorf("symexec: deadline passed after %d model executions (last at %s): %w", res.Steps, it.node, ErrBudget)
		}
		if len(outs) == 0 {
			res.Dropped[it.node]++
			continue
		}
		for _, tr := range outs {
			if tr.S == nil {
				continue
			}
			tgt, wired := n.Target(it.node, tr.Port)
			if !wired {
				res.Egress = append(res.Egress, Egress{Node: it.node, Port: tr.Port, S: tr.S})
				continue
			}
			produced++
			if produced > maxStates {
				res.Truncated = true
				return res, nil
			}
			queue = append(queue, workItem{node: tgt.Node, port: tgt.Port, s: tr.S})
		}
	}
	return res, nil
}
