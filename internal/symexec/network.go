package symexec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBudget is wrapped by Run when exploration exhausts its step or
// wall-clock budget; callers detect it with errors.Is and turn it
// into an admission rejection rather than hanging on a pathological
// configuration.
var ErrBudget = errors.New("symexec: exploration budget exceeded")

// DefaultMaxSteps bounds total model executions per Run when the
// injection does not set its own budget.
const DefaultMaxSteps = 1 << 20

// deadlineCheckEvery is how many steps pass between wall-clock
// deadline checks (time.Now per step would dominate small runs).
const deadlineCheckEvery = 256

// Transition is one outcome of symbolically executing a model: the
// state continues out of the given output port. A model returning no
// transitions drops the flow (e.g. a filter's deny rule).
type Transition struct {
	Port int
	S    *State
}

// Model is the abstract, statically-checkable description of a
// network element (paper §4.3). Sym consumes the state (it may mutate
// or clone it) and returns the resulting flows. Models must not loop
// and must not allocate unbounded state; stateful behaviour is pushed
// into the flow's synthetic fields.
type Model interface {
	Sym(port int, s *State) []Transition
}

// FuncModel adapts a function to the Model interface.
type FuncModel func(port int, s *State) []Transition

// Sym implements Model.
func (f FuncModel) Sym(port int, s *State) []Transition { return f(port, s) }

// Forward is a model that passes every state through unchanged to
// output port 0 (a wire).
var Forward = FuncModel(func(port int, s *State) []Transition {
	return []Transition{{Port: 0, S: s}}
})

// PortRef names an input port of a node.
type PortRef struct {
	Node string
	Port int
}

// Network is a graph of named models, compiled from the operator's
// topology snapshot plus any candidate processing modules. It is what
// the controller runs reachability over.
type Network struct {
	models  map[string]Model
	wires   map[string]map[int]PortRef
	digests map[string]string
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		models:  make(map[string]Model),
		wires:   make(map[string]map[int]PortRef),
		digests: make(map[string]string),
	}
}

// AddNode registers a named model.
func (n *Network) AddNode(name string, m Model) error {
	if _, dup := n.models[name]; dup {
		return fmt.Errorf("symexec: node %q already exists", name)
	}
	if m == nil {
		return fmt.Errorf("symexec: node %q has nil model", name)
	}
	n.models[name] = m
	return nil
}

// HasNode reports whether a node exists.
func (n *Network) HasNode(name string) bool {
	_, ok := n.models[name]
	return ok
}

// SetDigest registers a content digest for a node's model, making it
// eligible for per-element memoization. The digest must determine the
// model's behaviour completely: two nodes carrying the same digest
// share memo entries, so anything Sym can observe (element class,
// configuration arguments, route tables, demux branch set) must be
// folded in, while identity that Sym cannot observe (node name,
// tenant, wiring) must be left out — that exclusion is what lets
// structurally identical sub-chains of different tenants share work.
// Nodes without a digest are simply never memoized.
func (n *Network) SetDigest(name, digest string) error {
	if _, ok := n.models[name]; !ok {
		return fmt.Errorf("symexec: unknown node %q", name)
	}
	if digest == "" {
		return fmt.Errorf("symexec: empty digest for node %q", name)
	}
	n.digests[name] = digest
	return nil
}

// Digest returns the content digest registered for a node, if any.
func (n *Network) Digest(name string) (string, bool) {
	d, ok := n.digests[name]
	return d, ok
}

// Connect wires from:fromPort to to:toPort. Each output port has at
// most one target.
func (n *Network) Connect(from string, fromPort int, to string, toPort int) error {
	if _, ok := n.models[from]; !ok {
		return fmt.Errorf("symexec: unknown node %q", from)
	}
	if _, ok := n.models[to]; !ok {
		return fmt.Errorf("symexec: unknown node %q", to)
	}
	w := n.wires[from]
	if w == nil {
		w = make(map[int]PortRef)
		n.wires[from] = w
	}
	if prev, dup := w[fromPort]; dup {
		return fmt.Errorf("symexec: %s:%d already wired to %s:%d", from, fromPort, prev.Node, prev.Port)
	}
	w[fromPort] = PortRef{Node: to, Port: toPort}
	return nil
}

// Target returns the wiring of an output port.
func (n *Network) Target(from string, port int) (PortRef, bool) {
	w, ok := n.wires[from]
	if !ok {
		return PortRef{}, false
	}
	t, ok := w[port]
	return t, ok
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.models) }

// Egress is a state that left the network through an unwired output
// port.
type Egress struct {
	Node string
	Port int
	S    *State
}

// Result collects everything reachability produced for one injection.
type Result struct {
	// AtNode records, per node name, the states as they *arrived* at
	// the node (before its model ran). This is "the flow reachable at
	// every node" of §4.3.
	AtNode map[string][]*State
	// Egress lists states that exited the network.
	Egress []Egress
	// Dropped counts flows terminated by models, per node.
	Dropped map[string]int
	// Truncated is set when the hop bound stopped exploration.
	Truncated bool
	// Steps is the total number of model executions.
	Steps int
}

// Injection describes a reachability run.
type Injection struct {
	// Node and Port locate the entry input port.
	Node string
	Port int
	// State is the symbolic packet to inject; NewState() if nil.
	State *State
	// MaxHops bounds any single flow's path length (default 8192).
	MaxHops int
	// MaxStates bounds the total number of in-flight flows to guard
	// against pathological branching (default 65536).
	MaxStates int
	// MaxSteps bounds total model executions across the whole run
	// (default DefaultMaxSteps). Exceeding it aborts with ErrBudget —
	// unlike MaxHops/MaxStates, which merely truncate — because a
	// config that needs this many steps is hostile or broken, and an
	// admission verdict computed from a partial exploration would be
	// unsound.
	MaxSteps int
	// Deadline aborts exploration (with ErrBudget) once the wall
	// clock passes it; the zero value means no deadline.
	Deadline time.Time
	// Workers fans the exploration of each breadth-first frontier
	// wave across a bounded worker pool. Results are merged back in
	// frontier order, so every Result field — AtNode/Egress ordering,
	// Steps, truncation, budget errors — is byte-identical to a
	// sequential run. Values <= 1 run sequentially.
	Workers int
	// Memo, when non-nil, short-circuits model executions at nodes
	// with a registered content digest (see Network.SetDigest and
	// Memo).
	Memo *Memo
}

type workItem struct {
	node string
	port int
	s    *State
}

// parallelThreshold is the minimum wave width worth fanning out; a
// narrow chain graph stays on the caller's goroutine.
const parallelThreshold = 4

// Run performs symbolic reachability from the injection point,
// breadth-first, splitting flows at every branching model.
//
// Exploration is wave-synchronized: the frontier of each BFS level is
// executed (in parallel when inj.Workers > 1), then merged strictly
// in frontier order. Because the sequential loop is itself FIFO, the
// per-level frontier order equals the sequential dequeue order, so
// merging in that order reproduces the sequential Result exactly —
// including the step at which a budget abort or MaxStates truncation
// fires. Model executions that a sequential run would never have
// reached (items after an abort point) may run speculatively, but
// their side effects live only in private states and are discarded.
func (n *Network) Run(inj Injection) (*Result, error) {
	if _, ok := n.models[inj.Node]; !ok {
		return nil, fmt.Errorf("symexec: injection node %q unknown", inj.Node)
	}
	st := inj.State
	if st == nil {
		st = NewState()
	}
	maxHops := inj.MaxHops
	if maxHops <= 0 {
		maxHops = 8192
	}
	maxStates := inj.MaxStates
	if maxStates <= 0 {
		maxStates = 65536
	}
	maxSteps := inj.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	workers := inj.Workers
	if workers <= 0 {
		workers = 1
	}
	res := &Result{
		AtNode:  make(map[string][]*State),
		Dropped: make(map[string]int),
	}
	wave := []workItem{{node: inj.Node, port: inj.Port, s: st}}
	var next []workItem
	produced := 1
	var execIdx []int
	var outs []execOut
	for len(wave) > 0 {
		// Select the wave items that will execute: those within the
		// hop bound, trimmed to the step budget. A sequential run
		// aborts on the (maxSteps - res.Steps + 1)-th further
		// execution, so items past that point are never merged and
		// need not run.
		execIdx = execIdx[:0]
		budgetRoom := maxSteps - res.Steps + 1
		for i := range wave {
			if wave[i].s.PathLen() >= maxHops {
				continue
			}
			if len(execIdx) < budgetRoom {
				execIdx = append(execIdx, i)
			}
		}
		if cap(outs) < len(execIdx) {
			outs = make([]execOut, len(execIdx))
		}
		outs = outs[:len(execIdx)]
		run := func(k int) {
			it := &wave[execIdx[k]]
			it.s.PushHop(it.node, it.port)
			arrived := it.s.Clone()
			outs[k] = execOut{
				arrived: arrived,
				trs:     n.symExec(it.node, it.port, it.s, arrived, inj.Memo),
			}
		}
		if workers > 1 && len(execIdx) >= parallelThreshold {
			parallelFor(workers, len(execIdx), run)
		} else {
			for k := range execIdx {
				run(k)
			}
		}
		// Merge in frontier order, replaying the sequential loop's
		// bookkeeping exactly.
		next = next[:0]
		k := 0
		for i := range wave {
			it := &wave[i]
			if k >= len(execIdx) || execIdx[k] != i {
				if it.s.PathLen() >= maxHops {
					res.Truncated = true
					continue
				}
				// Beyond the step-budget trim: the abort below fires
				// before merge reaches an untrimmed item, so this is
				// unreachable; guard anyway.
				continue
			}
			eo := &outs[k]
			k++
			res.AtNode[it.node] = append(res.AtNode[it.node], eo.arrived)
			res.Steps++
			if res.Steps > maxSteps {
				return res, fmt.Errorf("symexec: %d model executions (last at %s): %w", res.Steps, it.node, ErrBudget)
			}
			if !inj.Deadline.IsZero() && res.Steps%deadlineCheckEvery == 0 && time.Now().After(inj.Deadline) {
				return res, fmt.Errorf("symexec: deadline passed after %d model executions (last at %s): %w", res.Steps, it.node, ErrBudget)
			}
			if len(eo.trs) == 0 {
				res.Dropped[it.node]++
				continue
			}
			for _, tr := range eo.trs {
				if tr.S == nil {
					continue
				}
				tgt, wired := n.Target(it.node, tr.Port)
				if !wired {
					res.Egress = append(res.Egress, Egress{Node: it.node, Port: tr.Port, S: tr.S})
					continue
				}
				produced++
				if produced > maxStates {
					res.Truncated = true
					return res, nil
				}
				next = append(next, workItem{node: tgt.Node, port: tgt.Port, s: tr.S})
			}
		}
		wave, next = next, wave
	}
	return res, nil
}

type execOut struct {
	arrived *State
	trs     []Transition
}

// symExec runs one model execution, consulting the memo when the node
// has a registered digest. arrived is a clone taken after PushHop and
// before the model runs — exactly the snapshot recipe capture needs.
func (n *Network) symExec(node string, port int, s *State, arrived *State, memo *Memo) []Transition {
	m := n.models[node]
	if memo == nil {
		return m.Sym(port, s)
	}
	digest, ok := n.digests[node]
	if !ok || memo.skipped(digest) {
		return m.Sym(port, s)
	}
	keyStart := time.Now()
	ctx := memoContext(digest, port, s)
	keyCost := time.Since(keyStart)
	if rec, hit := memo.get(ctx.key); hit {
		return rec.replay(s, ctx)
	}
	execStart := time.Now()
	trs := m.Sym(port, s)
	execCost := time.Since(execStart)
	// Cost gate: replay pays the key construction plus roughly the
	// same cloning the model itself does, so memoizing only wins when
	// the execution costs comfortably more than the key. Both sides
	// are sampled on this very miss (same state, same machine), making
	// the gate self-calibrating; one noisy sample can only mis-tune
	// throughput for that digest, never change results.
	if execCost < memoSkipFactor*keyCost && memo.costGated() {
		memo.noteSkip(digest)
		return trs
	}
	if rec, supported := captureRecipe(ctx, arrived, trs); supported {
		memo.put(ctx.key, rec)
	} else {
		memo.noteUnsupported()
	}
	return trs
}

// memoSkipFactor is the cost gate's margin: a model execution must
// cost at least this many times its memo-key construction before the
// digest is memoized.
const memoSkipFactor = 3

// parallelFor runs fn(0..n-1) across up to workers goroutines pulling
// indices from a shared atomic counter (work-stealing by grab, so a
// slow item does not leave siblings idle behind a static partition).
func parallelFor(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	var nextIdx atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
