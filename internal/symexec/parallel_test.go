package symexec

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// canonState renders a state up to variable renaming: fields in
// sorted order with canonical variable indices (first appearance),
// value sets, and definition hops, plus the traversal path. Parallel
// scheduling and memo replay may allocate different numeric VarIDs
// for the same symbolic structure; nothing downstream (reports,
// policy checks) can observe raw ids, so this is the right equality
// for differential runs. Bindings indistinguishable from the lazy
// Get default (Const(0), DefHop -1) are skipped: a model-run state
// may have materialized them where a memo replay has not.
func canonState(s *State) string {
	var b strings.Builder
	canon := make(map[VarID]int)
	for _, f := range s.Fields() {
		bind := s.Binding(f)
		if c, isConst := bind.E.IsConst(); isConst && c == 0 && bind.DefHop == -1 {
			continue
		}
		fmt.Fprintf(&b, "%s=", f)
		if c, isConst := bind.E.IsConst(); isConst {
			fmt.Fprintf(&b, "c%d", c)
		} else {
			id, _ := bind.E.IsVar()
			ci, seen := canon[id]
			if !seen {
				ci = len(canon)
				canon[id] = ci
			}
			fmt.Fprintf(&b, "x%d%s", ci, s.Values(f))
		}
		fmt.Fprintf(&b, "@%d;", bind.DefHop)
	}
	fmt.Fprintf(&b, " path=%v tag=%q", s.Path(), s.Tag)
	return b.String()
}

// canonResult renders everything a caller can observe from a Result.
func canonResult(res *Result, err error) string {
	var b strings.Builder
	if err != nil {
		fmt.Fprintf(&b, "err=%q budget=%v\n", err, errors.Is(err, ErrBudget))
	}
	if res == nil {
		return b.String()
	}
	nodes := make([]string, 0, len(res.AtNode))
	for n := range res.AtNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&b, "at %s:\n", n)
		for _, s := range res.AtNode[n] {
			fmt.Fprintf(&b, "  %s\n", canonState(s))
		}
	}
	for _, e := range res.Egress {
		fmt.Fprintf(&b, "egress %s:%d %s\n", e.Node, e.Port, canonState(e.S))
	}
	drops := make([]string, 0, len(res.Dropped))
	for n := range res.Dropped {
		drops = append(drops, n)
	}
	sort.Strings(drops)
	for _, n := range drops {
		fmt.Fprintf(&b, "dropped %s=%d\n", n, res.Dropped[n])
	}
	fmt.Fprintf(&b, "truncated=%v steps=%d\n", res.Truncated, res.Steps)
	return b.String()
}

// genNetwork builds a seeded random layered network out of pure
// parametric models (filters, NAT-style rewrites, branchers, tunnel
// decaps), every node digest-registered so the memo engages.
func genNetwork(t *testing.T, rng *rand.Rand) *Network {
	t.Helper()
	n := NewNetwork()
	layers := 2 + rng.Intn(4)
	width := 1 + rng.Intn(4)
	var names [][]string
	for l := 0; l < layers; l++ {
		var layer []string
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("n%d_%d", l, w)
			kind := rng.Intn(5)
			var m Model
			var digest string
			switch kind {
			case 0: // proto filter
				lo := uint64(rng.Intn(100))
				hi := lo + uint64(rng.Intn(100))
				m = FuncModel(func(port int, s *State) []Transition {
					if !s.Constrain(FieldProto, Span(lo, hi)) {
						return nil
					}
					return []Transition{{Port: 0, S: s}}
				})
				digest = fmt.Sprintf("filter/%d-%d", lo, hi)
			case 1: // NAT: rewrite source, fresh source port
				ip := uint64(rng.Uint32())
				m = FuncModel(func(port int, s *State) []Transition {
					s.Assign(FieldSrcIP, Const(ip))
					s.AssignFresh(FieldSrcPort)
					return []Transition{{Port: 0, S: s}}
				})
				digest = fmt.Sprintf("nat/%d", ip)
			case 2: // two-way brancher on dst port
				split := uint64(1 + rng.Intn(60000))
				m = FuncModel(func(port int, s *State) []Transition {
					lo := s.Clone()
					var out []Transition
					if lo.Constrain(FieldDstPort, Span(0, split-1)) {
						out = append(out, Transition{Port: 0, S: lo})
					}
					if s.Constrain(FieldDstPort, Span(split, 65535)) {
						out = append(out, Transition{Port: 1, S: s})
					}
					return out
				})
				digest = fmt.Sprintf("branch/%d", split)
			case 3: // tag writer (middlebox state into the flow)
				tag := uint64(1 + rng.Intn(200))
				m = FuncModel(func(port int, s *State) []Transition {
					s.Assign(FieldFWTag, Const(tag))
					return []Transition{{Port: 0, S: s}}
				})
				digest = fmt.Sprintf("tag/%d", tag)
			default: // fan-out duplicator (round-robin style may-branch)
				ways := 2 + rng.Intn(2)
				m = FuncModel(func(port int, s *State) []Transition {
					out := make([]Transition, 0, ways)
					for i := 0; i < ways; i++ {
						out = append(out, Transition{Port: i, S: s.Clone()})
					}
					return out
				})
				digest = fmt.Sprintf("fan/%d", ways)
			}
			if err := n.AddNode(name, m); err != nil {
				t.Fatal(err)
			}
			if err := n.SetDigest(name, digest); err != nil {
				t.Fatal(err)
			}
			layer = append(layer, name)
		}
		names = append(names, layer)
	}
	// Wire each node's ports 0..2 forward to random nodes of the next
	// layer; last layer's ports stay unwired (egress).
	for l := 0; l+1 < layers; l++ {
		for _, from := range names[l] {
			for p := 0; p < 3; p++ {
				to := names[l+1][rng.Intn(len(names[l+1]))]
				if err := n.Connect(from, p, to, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return n
}

func genInjection(net *Network, rng *rand.Rand) Injection {
	s := NewState()
	s.Constrain(FieldProto, Span(0, 150))
	s.Tag = "diff"
	return Injection{Node: "n0_0", Port: 0, State: s}
}

// TestRunParallelMemoDifferential: sequential == parallel(2,8) ==
// memoized == memoized+parallel, for seeded random networks, up to
// variable renaming. The memo is reused across the two memoized runs
// so replay (hit) paths are exercised, not just capture.
func TestRunParallelMemoDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := genNetwork(t, rng)
			base := genInjection(net, rand.New(rand.NewSource(seed)))
			run := func(workers int, memo *Memo) string {
				inj := base
				inj.State = genInjection(net, rand.New(rand.NewSource(seed))).State
				inj.Workers = workers
				inj.Memo = memo
				res, err := net.Run(inj)
				return canonResult(res, err)
			}
			want := run(1, nil)
			memo := NewMemo(4096)
			// The cost gate is timing-dependent; this test asserts
			// exact memo counters, so force full memoization.
			memo.SetCostGate(false)
			for name, got := range map[string]string{
				"workers2":      run(2, nil),
				"workers8":      run(8, nil),
				"memo-cold":     run(1, memo),
				"memo-warm":     run(1, memo),
				"memo-parallel": run(8, memo),
			} {
				if got != want {
					t.Fatalf("%s diverged from sequential\n--- sequential:\n%s\n--- %s:\n%s", name, want, name, got)
				}
			}
			st := memo.Stats()
			if st.Unsupported != 0 {
				t.Fatalf("unexpected unsupported recipes: %+v", st)
			}
			if st.Hits == 0 {
				t.Fatalf("memo never hit across warm runs: %+v", st)
			}
		})
	}
}

// TestRunParallelBudgetAbort: step-budget aborts must fire at the
// same step with the same error text regardless of worker count.
func TestRunParallelBudgetAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := genNetwork(t, rng)
	for _, maxSteps := range []int{1, 2, 3, 5, 8} {
		inj := genInjection(net, rand.New(rand.NewSource(42)))
		inj.MaxSteps = maxSteps
		seqRes, seqErr := net.Run(inj)
		for _, workers := range []int{2, 8} {
			inj := genInjection(net, rand.New(rand.NewSource(42)))
			inj.MaxSteps = maxSteps
			inj.Workers = workers
			parRes, parErr := net.Run(inj)
			if canonResult(seqRes, seqErr) != canonResult(parRes, parErr) {
				t.Fatalf("maxSteps=%d workers=%d: abort diverged\nseq: %v\npar: %v",
					maxSteps, workers, seqErr, parErr)
			}
		}
	}
}

// TestRunParallelMaxStates: MaxStates truncation must trigger at the
// same produced-state count in parallel runs.
func TestRunParallelMaxStates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := genNetwork(t, rng)
	for _, maxStates := range []int{1, 2, 4, 9} {
		inj := genInjection(net, rand.New(rand.NewSource(7)))
		inj.MaxStates = maxStates
		want := func() string { r, e := net.Run(inj); return canonResult(r, e) }()
		for _, workers := range []int{2, 8} {
			inj := genInjection(net, rand.New(rand.NewSource(7)))
			inj.MaxStates = maxStates
			inj.Workers = workers
			got := func() string { r, e := net.Run(inj); return canonResult(r, e) }()
			if got != want {
				t.Fatalf("maxStates=%d workers=%d truncation diverged\n%s\nvs\n%s", maxStates, workers, want, got)
			}
		}
	}
}

// TestMemoKeyDistinguishes: states that differ in anything a model
// can observe must produce different memo keys; states differing only
// in unobservables (path, VarID numbering, tag) must collide.
func TestMemoKeyDistinguishes(t *testing.T) {
	base := func() *State {
		s := NewState()
		s.Constrain(FieldProto, Span(6, 6))
		return s
	}
	k := func(s *State) string { return memoContext("d", 0, s).key }

	a, b := base(), base()
	if k(a) != k(b) {
		t.Fatal("identical states produced different keys")
	}
	b.PushHop("x", 1)
	if k(a) != k(b) {
		t.Fatal("path must not affect the memo key")
	}
	b.Tag = "other"
	if k(a) != k(b) {
		t.Fatal("tag must not affect the memo key")
	}
	c := base()
	c.Constrain(FieldProto, Span(6, 7))
	_ = c.Constrain(FieldProto, Span(6, 6))
	if k(a) != k(c) {
		t.Fatal("equal constraint sets reached differently must collide")
	}

	d := NewState()
	d.Constrain(FieldProto, Span(6, 7))
	if k(a) == k(d) {
		t.Fatal("different constraint sets must not collide")
	}
	e := base()
	e.Assign(FieldDstIP, Const(99))
	if k(a) == k(e) {
		t.Fatal("different field bindings must not collide")
	}
	f := base()
	f.Assign(FieldDstIP, f.Get(FieldSrcIP)) // alias dst to src
	g := base()
	g.AssignFresh(FieldDstIP)
	if k(f) == k(g) {
		t.Fatal("aliased vs independent variables must not collide")
	}
	if memoContext("d1", 0, a).key == memoContext("d2", 0, a).key {
		t.Fatal("different element digests must not collide")
	}
	if memoContext("d", 0, a).key == memoContext("d", 1, a).key {
		t.Fatal("different entry ports must not collide")
	}
}
