package symexec

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Memo is a concurrency-safe LRU memo of per-element symbolic
// executions, the layer *below* the controller's whole-config cache:
// where that cache only hits on an identical resubmitted config, the
// memo hits on any structurally shared sub-chain (every tenant's
// "firewall → nat" prefix) because entries are keyed on the element's
// content digest plus the canonicalized entry state — nothing about
// the tenant, node name, or surrounding wiring.
//
// An entry stores a replayable "recipe": the diff each output
// transition applies to the entry state (fields assigned, input
// variables narrowed, fresh variables allocated). Replaying the
// recipe against a new state with an equal canonical key produces
// states semantically identical to running the model, because a
// Model's behaviour is a pure function of (digest, port, field
// expressions, variable constraint sets) — the exact key. Executions
// whose effect cannot be expressed as such a diff (none of the
// in-tree models) are counted as Unsupported and simply not memoized.
//
// A nil *Memo is a valid always-miss memo.
type Memo struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *memoEntry
	idx map[string]*list.Element

	// skip records node digests whose model execution measured too
	// cheap to beat replay (see symExec's cost gate); reads are
	// lock-free on the hot path. Purely a performance decision — a
	// digest mis-classified by one noisy timing sample costs
	// throughput, never correctness. gateOff disables the gate so
	// every supported execution memoizes regardless of timing (the
	// differential battery uses this to keep hit assertions
	// deterministic).
	skip    sync.Map
	gateOff atomic.Bool

	hits, misses, unsupported, evictions uint64
}

type memoEntry struct {
	key string
	r   *memoRecipe
}

// DefaultMemoEntries sizes the per-element memo when a caller enables
// it without choosing a capacity.
const DefaultMemoEntries = 8192

// NewMemo returns an LRU memo bounded to capacity entries
// (capacity <= 0 returns nil: memoization disabled).
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		return nil
	}
	return &Memo{
		cap: capacity,
		lru: list.New(),
		idx: make(map[string]*list.Element),
	}
}

func (m *Memo) get(key string) (*memoRecipe, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.idx[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.lru.MoveToFront(el)
	m.hits++
	return el.Value.(*memoEntry).r, true
}

func (m *Memo) put(key string, r *memoRecipe) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		el.Value.(*memoEntry).r = r
		m.lru.MoveToFront(el)
		return
	}
	for m.lru.Len() >= m.cap {
		back := m.lru.Back()
		m.lru.Remove(back)
		delete(m.idx, back.Value.(*memoEntry).key)
		m.evictions++
	}
	m.idx[key] = m.lru.PushFront(&memoEntry{key: key, r: r})
}

func (m *Memo) noteUnsupported() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.unsupported++
	m.mu.Unlock()
}

// skipped reports whether the digest is cost-gated out of the memo.
func (m *Memo) skipped(digest string) bool {
	if m.gateOff.Load() {
		return false
	}
	_, ok := m.skip.Load(digest)
	return ok
}

// costGated reports whether the execution-cost gate is active.
func (m *Memo) costGated() bool { return !m.gateOff.Load() }

// noteSkip cost-gates the digest: later executions bypass the memo
// entirely (no key construction, no lookup).
func (m *Memo) noteSkip(digest string) {
	m.skip.Store(digest, struct{}{})
	m.mu.Lock()
	m.unsupported++
	m.mu.Unlock()
}

// SetCostGate enables (default) or disables the execution-cost gate.
// With the gate off every supported execution is memoized, making
// memo-hit counts deterministic — what the differential test battery
// needs; the gate's on/off state never changes verification results.
func (m *Memo) SetCostGate(on bool) {
	if m == nil {
		return
	}
	m.gateOff.Store(!on)
}

// MemoStats is a point-in-time counter snapshot.
type MemoStats struct {
	// Hits and Misses count lookups against nodes that have a content
	// digest registered (undigested nodes bypass the memo entirely).
	Hits, Misses uint64
	// Unsupported counts executions that were not memoized: the state
	// diff could not be captured as a recipe, or the execution
	// measured too cheap for replay to pay off (cost gate).
	Unsupported uint64
	// Evictions counts capacity evictions; Entries is the resident
	// count.
	Evictions uint64
	Entries   int
}

// Stats snapshots the memo counters.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Hits: m.hits, Misses: m.misses,
		Unsupported: m.unsupported, Evictions: m.evictions,
		Entries: m.lru.Len(),
	}
}

// memoCtx is the canonicalization of one (digest, port, entry state)
// triple: the memo key plus the variable numbering needed to
// translate between the state's actual VarIDs and the canonical ids
// stored in recipes.
type memoCtx struct {
	key       string
	varActual []VarID // canonical index -> actual VarID
	depth     int     // PathLen at entry (after PushHop)
}

// canonOf maps an actual VarID to its canonical index. The entry
// states in play reference a handful of variables, so a linear scan
// beats allocating a map per memoContext call.
func (c *memoCtx) canonOf(id VarID) (int, bool) {
	for i, v := range c.varActual {
		if v == id {
			return i, true
		}
	}
	return 0, false
}

// memoKeyPool recycles the scratch buffer memo keys are built from;
// memoContext runs once per (node, state) on the admission hot path.
var memoKeyPool = sync.Pool{New: func() any { return new([]byte) }}

// memoContext encodes the canonical form of an entry state. Canonical
// form: the node's content digest (itself a SHA-256 of the canonical
// config fragment), the entry port, then fields in sorted order, each
// rendered as either its constant value or a variable index assigned
// by first appearance; then, for each canonical variable in order,
// its interval-set constraint. Every component is length- or
// tag-prefixed, so the encoding is injective and used directly as the
// map key — canonically equal states collide by construction and
// distinct ones never do. VarID numbering, DefHop provenance, the
// traversal path, and the node's name are all excluded — a Model can
// observe none of them — so two tenants' states that differ only in
// those share the memo entry. See docs/FORMATS.md §"Memo keys".
func memoContext(digest string, port int, s *State) memoCtx {
	le := binary.LittleEndian
	bp := memoKeyPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, "innet-memo/1"...)
	b = le.AppendUint64(b, uint64(len(digest)))
	b = append(b, digest...)
	b = le.AppendUint64(b, uint64(port))
	ctx := memoCtx{depth: s.PathLen()}
	b = le.AppendUint64(b, uint64(len(s.fields)))
	for i := range s.fields {
		f, fb := s.fields[i].F, s.fields[i].B
		b = le.AppendUint64(b, uint64(len(f)))
		b = append(b, f...)
		if c, isConst := fb.E.IsConst(); isConst {
			b = append(b, 0)
			b = le.AppendUint64(b, c)
			continue
		}
		id, _ := fb.E.IsVar()
		ci, seen := ctx.canonOf(id)
		if !seen {
			ci = len(ctx.varActual)
			ctx.varActual = append(ctx.varActual, id)
		}
		b = append(b, 1)
		b = le.AppendUint64(b, uint64(ci))
	}
	for _, id := range ctx.varActual {
		iv, ok := s.peekVar(id)
		if !ok {
			b = append(b, 0)
			continue
		}
		spans := iv.Intervals()
		b = append(b, 1)
		b = le.AppendUint64(b, uint64(len(spans)))
		for _, sp := range spans {
			b = le.AppendUint64(b, sp.Lo)
			b = le.AppendUint64(b, sp.Hi)
		}
	}
	ctx.key = string(b)
	*bp = b
	memoKeyPool.Put(bp)
	return ctx
}

// Recipe encoding: each transition is a diff against the entry state.
const (
	memoExprConst = iota // constant value
	memoExprInVar        // reference to canonical input variable idx
	memoExprFresh        // reference to fresh variable idx of this transition
)

type memoAssign struct {
	field Field
	kind  uint8
	c     uint64 // memoExprConst
	idx   int    // memoExprInVar / memoExprFresh
}

type memoNarrow struct {
	idx int // canonical input variable index
	iv  IntervalSet
}

type memoFresh struct {
	name string
	iv   IntervalSet
	has  bool // whether the variable has a constraint entry
}

type memoTransition struct {
	port    int
	nilS    bool // model emitted a nil state (skipped by Run)
	fresh   []memoFresh
	narrows []memoNarrow
	assigns []memoAssign
}

type memoRecipe struct {
	trs []memoTransition
}

// captureRecipe diffs each output transition against the entry-state
// snapshot (a clone taken after PushHop, before the model ran). It
// returns ok=false — caller must not memoize — whenever the effect is
// not expressible as assign/narrow/fresh steps, e.g. a field bound to
// a pre-existing variable the entry state did not reference, or a
// DefHop that is neither inherited nor the current hop. In-tree
// models never trip these; the guards keep third-party models sound.
func captureRecipe(ctx memoCtx, snap *State, outs []Transition) (*memoRecipe, bool) {
	rec := &memoRecipe{trs: make([]memoTransition, 0, len(outs))}
	for _, tr := range outs {
		if tr.S == nil {
			rec.trs = append(rec.trs, memoTransition{port: tr.Port, nilS: true})
			continue
		}
		mt, ok := captureTransition(ctx, snap, tr)
		if !ok {
			return nil, false
		}
		rec.trs = append(rec.trs, mt)
	}
	return rec, true
}

func captureTransition(ctx memoCtx, snap *State, tr Transition) (memoTransition, bool) {
	out := tr.S
	mt := memoTransition{port: tr.Port}
	// Pass 1: discover fresh variables (referenced by an output field
	// but absent from the entry state's canonical numbering), in
	// sorted-field first-appearance order so replay allocates them
	// deterministically.
	freshIdx := make(map[VarID]int)
	for i := range out.fields {
		id, isVar := out.fields[i].B.E.IsVar()
		if !isVar {
			continue
		}
		if _, inInput := ctx.canonOf(id); inInput {
			continue
		}
		if _, seen := freshIdx[id]; seen {
			continue
		}
		if _, preexisting := snap.peekVar(id); preexisting {
			// The model re-bound a field to a variable that existed
			// before it ran but was not visible through any entry
			// field. Replay cannot reproduce that identity.
			return mt, false
		}
		fi := len(mt.fresh)
		freshIdx[id] = fi
		iv, has := out.peekVar(id)
		mt.fresh = append(mt.fresh, memoFresh{name: out.env.nameOf(id), iv: iv, has: has})
	}
	// Pass 2: field assignments. Fields are never deleted and out
	// descends from the entry state, so out's field set is a superset
	// of the snapshot's.
	for i := range out.fields {
		f, outB := out.fields[i].F, out.fields[i].B
		inB, had := snap.peekField(f)
		if !had {
			inB = Binding{E: Const(0), DefHop: -1}
			if outB == inB {
				// Get() materialized the default; replay can let it
				// re-materialize lazily.
				continue
			}
		}
		if outB == inB {
			continue
		}
		if outB.DefHop != ctx.depth-1 {
			// Changed, but not via Assign at this hop.
			return mt, false
		}
		a := memoAssign{field: f}
		if c, isConst := outB.E.IsConst(); isConst {
			a.kind = memoExprConst
			a.c = c
		} else {
			id, _ := outB.E.IsVar()
			if ci, inInput := ctx.canonOf(id); inInput {
				a.kind = memoExprInVar
				a.idx = ci
			} else {
				a.kind = memoExprFresh
				a.idx = freshIdx[id]
			}
		}
		mt.assigns = append(mt.assigns, a)
	}
	// Pass 3: constraint narrowing of input variables.
	for ci, id := range ctx.varActual {
		inIv, inHas := snap.peekVar(id)
		outIv, outHas := out.peekVar(id)
		if inHas && !outHas {
			return mt, false // constraint deleted: not expressible
		}
		if inHas == outHas && (!inHas || inIv.Equal(outIv)) {
			continue
		}
		mt.narrows = append(mt.narrows, memoNarrow{idx: ci, iv: outIv})
	}
	return mt, true
}

// replay applies the recipe to a fresh entry state with the same
// canonical key, producing transitions semantically identical to
// running the model.
func (r *memoRecipe) replay(s *State, ctx memoCtx) []Transition {
	outs := make([]Transition, 0, len(r.trs))
	for i := range r.trs {
		mt := &r.trs[i]
		if mt.nilS {
			outs = append(outs, Transition{Port: mt.port, S: nil})
			continue
		}
		o := s.Clone()
		var freshIDs []VarID
		if len(mt.fresh) > 0 {
			freshIDs = make([]VarID, len(mt.fresh))
			for j := range mt.fresh {
				fv := &mt.fresh[j]
				id := o.env.fresh(fv.name)
				if fv.has {
					o.setVar(id, fv.iv)
				}
				freshIDs[j] = id
			}
		}
		for _, nw := range mt.narrows {
			o.setVar(ctx.varActual[nw.idx], nw.iv)
		}
		for _, a := range mt.assigns {
			var e Expr
			switch a.kind {
			case memoExprConst:
				e = Const(a.c)
			case memoExprInVar:
				e = Var(ctx.varActual[a.idx])
			default:
				e = Var(freshIDs[a.idx])
			}
			o.Assign(a.field, e)
		}
		outs = append(outs, Transition{Port: mt.port, S: o})
	}
	return outs
}
