package symexec

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU memo for symbolic-execution
// verdicts. The controller's admission pipeline re-runs the same
// analyses constantly — re-deploys of an identical tenant config,
// failovers that re-verify a module on an alternate platform, rejected
// requests retried verbatim — and each run is pure: the verdict is a
// function of the canonicalized inputs. Entries are therefore
// content-addressed (the caller hashes the inputs into the key) and
// tagged with an epoch:
//
//   - AnyEpoch entries hold placement-independent results (the
//     security check of a standalone module) and hit regardless of
//     what else is deployed.
//   - Epoch-tagged entries hold results computed against a specific
//     network snapshot (requirement/policy checks over the compiled
//     topology). A Get with a different epoch is a miss AND evicts the
//     stale entry — epoch invalidation is lazy, paid on lookup, so a
//     deployment-set change is O(1) no matter how full the cache is.
//
// The zero value is unusable; NewCache sizes the LRU. A nil *Cache is
// a valid always-miss cache, so callers can disable caching without
// branching.
type Cache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *cacheEntry
	idx map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

// AnyEpoch marks an entry as placement-independent: it hits at every
// epoch.
const AnyEpoch = ""

type cacheEntry struct {
	key   string
	epoch string
	// deps, when non-nil, makes validity dependency-driven instead of
	// epoch-driven: the entry is valid while every recorded token
	// still digests to the recorded value (see GetValidated). This is
	// the epoch-delta alternative to wholesale epoch tagging — a
	// topology change only invalidates entries whose dependency set
	// it actually touches.
	deps  map[string]string
	value any
}

// NewCache returns an LRU cache bounded to capacity entries
// (capacity <= 0 returns nil: caching disabled).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		cap: capacity,
		lru: list.New(),
		idx: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key if present and valid at epoch.
// An entry stored under a different (non-AnyEpoch) epoch is deleted
// and reported as a miss.
func (c *Cache) Get(key, epoch string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.deps != nil || (e.epoch != AnyEpoch && e.epoch != epoch) {
		c.lru.Remove(el)
		delete(c.idx, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.value, true
}

// GetValidated returns the cached value for key if present and its
// dependency set is still current: valid is called with the entry's
// recorded token→digest map and must report whether every token still
// digests to the recorded value. A stale entry is deleted and
// reported as a miss (like epoch invalidation, the cost is paid
// lazily on lookup). Entries stored with Put (epoch-tagged, nil deps)
// hit unconditionally — AnyEpoch semantics.
func (c *Cache) GetValidated(key string, valid func(deps map[string]string) bool) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.deps != nil && !valid(e.deps) {
		c.lru.Remove(el)
		delete(c.idx, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.value, true
}

// PutDeps stores value under key with a dependency set for
// GetValidated. The deps map is retained; callers must not mutate it
// afterwards.
func (c *Cache) PutDeps(key string, deps map[string]string, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch = AnyEpoch
		e.deps = deps
		e.value = value
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.idx, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.idx[key] = c.lru.PushFront(&cacheEntry{key: key, deps: deps, value: value})
}

// Put stores value under key, tagged with epoch (AnyEpoch for
// placement-independent results). The least-recently-used entry is
// evicted once the cache is full.
func (c *Cache) Put(key, epoch string, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch = epoch
		e.value = value
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.idx, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.idx[key] = c.lru.PushFront(&cacheEntry{key: key, epoch: epoch, value: value})
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	// Hits and Misses count Get outcomes (an epoch-invalidated lookup
	// counts as both a miss and an invalidation).
	Hits, Misses uint64
	// Evictions counts capacity evictions; Invalidations counts
	// entries dropped because their epoch went stale.
	Evictions, Invalidations uint64
	// Entries is the current resident count.
	Entries int
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Entries: c.lru.Len(),
	}
}
