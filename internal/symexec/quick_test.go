package symexec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestConstrainMonotoneQuick: constraining a field can only shrink
// its value set, never grow it — the soundness backbone of
// refinement-based checking.
func TestConstrainMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8) bool {
		s := NewState()
		field := []Field{FieldSrcIP, FieldDstPort, FieldProto, FieldTTL}[int(n)%4]
		prev := s.Values(field)
		for i := 0; i < 6; i++ {
			lo := uint64(rng.Intn(200))
			hi := lo + uint64(rng.Intn(60))
			ok := s.Constrain(field, Span(lo, hi))
			cur := s.Values(field)
			if !cur.SubsetOf(prev) {
				return false
			}
			if !ok {
				// Unsatisfiable: the reported failure must mean the
				// intersection really is empty.
				return !prev.Overlaps(Span(lo, hi))
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIsolationQuick: arbitrary interleavings of operations on a
// clone never affect the original.
func TestCloneIsolationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		_ = seed
		s := NewState()
		s.Constrain(FieldProto, Span(0, 100))
		s.PushHop("a", 0)
		before := s.String()
		c := s.Clone()
		for i := 0; i < 8; i++ {
			switch rng.Intn(4) {
			case 0:
				c.Assign(FieldDstIP, Const(uint64(rng.Uint32())))
			case 1:
				c.Constrain(FieldProto, Span(uint64(rng.Intn(50)), 100))
			case 2:
				c.PushHop("b", rng.Intn(3))
			case 3:
				c.AssignFresh(FieldPayload)
			}
		}
		return s.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPathSharingCorrectQuick: the linked-list path gives every clone
// exactly the hops it saw, in order, regardless of interleaving.
func TestPathSharingCorrectQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		_ = seed
		s := NewState()
		var want []Hop
		push := func(st *State, ref *[]Hop, node string) {
			port := rng.Intn(4)
			st.PushHop(node, port)
			*ref = append(*ref, Hop{Node: node, Port: port})
		}
		for i := 0; i < 5; i++ {
			push(s, &want, "shared")
		}
		c := s.Clone()
		wantC := append([]Hop(nil), want...)
		for i := 0; i < 4; i++ {
			push(s, &want, "orig")
			push(c, &wantC, "clone")
		}
		return hopsEqual(s.Path(), want) && hopsEqual(c.Path(), wantC) &&
			s.PathLen() == len(want) && c.PathLen() == len(wantC)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func hopsEqual(a, b []Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
