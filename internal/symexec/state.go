package symexec

import (
	"fmt"
	"slices"
	"strings"
	"sync"
)

// Field names a symbolic packet header field. The standard fields
// mirror the paper's examples plus the synthetic fields used to push
// middlebox state into the flow.
type Field string

// Standard symbolic packet fields.
const (
	FieldSrcIP   Field = "ip_src"
	FieldDstIP   Field = "ip_dst"
	FieldProto   Field = "proto"
	FieldSrcPort Field = "src_port"
	FieldDstPort Field = "dst_port"
	FieldTTL     Field = "ttl"
	FieldTOS     Field = "tos"
	FieldPayload Field = "payload"
	// FieldFWTag is the stateful-firewall tag of the paper's Fig. 2:
	// middlebox state pushed into the flow.
	FieldFWTag Field = "fw_tag"
	// FieldPaint is the Click Paint annotation.
	FieldPaint Field = "paint"
)

// Width returns the bit width of a field.
func (f Field) Width() int {
	switch f {
	case FieldSrcIP, FieldDstIP:
		return 32
	case FieldSrcPort, FieldDstPort:
		return 16
	case FieldProto, FieldTTL, FieldTOS, FieldPaint:
		return 8
	case FieldPayload:
		return 64
	case FieldFWTag:
		return 8
	default:
		return 64
	}
}

// standardFields are initialized as fresh free variables in every new
// symbolic packet.
var standardFields = []Field{
	FieldSrcIP, FieldDstIP, FieldProto, FieldSrcPort, FieldDstPort,
	FieldTTL, FieldTOS, FieldPayload,
}

// VarID identifies a symbolic variable.
type VarID int32

// Expr is a symbolic value: either a constant or a reference to a
// variable. The zero value is Const(0).
type Expr struct {
	isVar bool
	c     uint64
	v     VarID
}

// Const returns a constant expression.
func Const(v uint64) Expr { return Expr{c: v} }

// Var returns a variable reference expression.
func Var(id VarID) Expr { return Expr{isVar: true, v: id} }

// IsConst reports whether e is a constant, returning its value.
func (e Expr) IsConst() (uint64, bool) { return e.c, !e.isVar }

// IsVar reports whether e is a variable reference, returning its id.
func (e Expr) IsVar() (VarID, bool) { return e.v, e.isVar }

func (e Expr) String() string {
	if e.isVar {
		return fmt.Sprintf("v%d", e.v)
	}
	return fmt.Sprintf("%d", e.c)
}

// Binding is a field's current expression plus the path index of the
// hop that last assigned it (-1 when never assigned since injection).
// DefHop is what invariant checking inspects: a field is invariant on
// the hop A→B iff its DefHop is not greater than the index of A.
type Binding struct {
	E      Expr
	DefHop int
}

// env is shared by all states split from one injected packet: it
// allocates fresh variable ids. The mutex makes allocation safe when
// Run fans a frontier wave across workers; the numeric order of ids
// then depends on scheduling, which is fine because no report output
// ever prints or compares raw VarID values — only identity against
// other ids captured from the same state matters.
type env struct {
	mu      sync.Mutex
	nextVar VarID
	names   map[VarID]string
}

func (e *env) fresh(name string) VarID {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextVar
	e.nextVar++
	if name != "" {
		if e.names == nil {
			e.names = make(map[VarID]string)
		}
		e.names[id] = name
	}
	return id
}

func (e *env) nameOf(id VarID) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.names[id]
}

// Hop records one node traversal in a state's path.
type Hop struct {
	Node string
	Port int
}

func (h Hop) String() string { return fmt.Sprintf("%s:%d", h.Node, h.Port) }

// pathNode is one link of the immutable traversal path. Clones share
// path tails, so recording a hop is O(1) and cloning is independent
// of path length — this is what keeps whole-network reachability
// linear in topology size (the paper's Fig. 10 claim).
type pathNode struct {
	hop   Hop
	prev  *pathNode
	depth int
}

// fieldBinding is one entry of a state's sorted field table.
type fieldBinding struct {
	F Field
	B Binding
}

// varBinding is one entry of a state's sorted constraint table.
type varBinding struct {
	ID VarID
	IV IntervalSet
}

// State is one symbolic flow: field bindings, variable constraints
// and the path traversed so far. Both tables are small sorted slices
// rather than maps: a symbolic packet carries ~10 fields and a
// similar number of live variables, so binary/linear probes win and —
// decisive for admission throughput, where Clone dominated profiles —
// cloning is two memmoves instead of two map rebuilds. IntervalSets
// and path tails are immutable and shared.
type State struct {
	env    *env
	fields []fieldBinding // sorted by F
	vars   []varBinding   // sorted by ID
	path   *pathNode
	// Tag carries harness-specific context (e.g. requirement id).
	Tag string
}

// findField returns the index of f in the sorted field table and
// whether it is present; absent, the index is f's insertion point.
func (s *State) findField(f Field) (int, bool) {
	lo, hi := 0, len(s.fields)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.fields[mid].F < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.fields) && s.fields[lo].F == f
}

// setField replaces or sort-inserts a binding.
func (s *State) setField(f Field, b Binding) {
	if i, ok := s.findField(f); ok {
		s.fields[i].B = b
	} else {
		s.fields = slices.Insert(s.fields, i, fieldBinding{F: f, B: b})
	}
}

// peekField reads a binding without materializing the lazy default.
func (s *State) peekField(f Field) (Binding, bool) {
	if i, ok := s.findField(f); ok {
		return s.fields[i].B, true
	}
	return Binding{}, false
}

// findVar mirrors findField for the constraint table.
func (s *State) findVar(id VarID) (int, bool) {
	lo, hi := 0, len(s.vars)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.vars[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.vars) && s.vars[lo].ID == id
}

// setVar replaces or sort-inserts a constraint. Fresh ids come from a
// monotonic allocator, so the common insert is an append.
func (s *State) setVar(id VarID, iv IntervalSet) {
	if n := len(s.vars); n == 0 || s.vars[n-1].ID < id {
		s.vars = append(s.vars, varBinding{ID: id, IV: iv})
		return
	}
	if i, ok := s.findVar(id); ok {
		s.vars[i].IV = iv
	} else {
		s.vars = slices.Insert(s.vars, i, varBinding{ID: id, IV: iv})
	}
}

// peekVar reads a constraint entry.
func (s *State) peekVar(id VarID) (IntervalSet, bool) {
	if i, ok := s.findVar(id); ok {
		return s.vars[i].IV, true
	}
	return IntervalSet{}, false
}

// NewState returns a fully unconstrained symbolic packet: every
// standard field is a fresh free variable, exactly like the symbolic
// packet of the paper's Fig. 2 before any constraint applies.
func NewState() *State {
	s := &State{
		env:    &env{},
		fields: make([]fieldBinding, 0, len(standardFields)+2),
		vars:   make([]varBinding, 0, len(standardFields)+2),
	}
	for _, f := range standardFields {
		id := s.env.fresh(string(f))
		s.setVar(id, Full(f.Width()))
		s.setField(f, Binding{E: Var(id), DefHop: -1})
	}
	return s
}

// Clone returns an independent copy sharing the variable allocator.
func (s *State) Clone() *State {
	return &State{
		env:    s.env,
		fields: slices.Clone(s.fields),
		vars:   slices.Clone(s.vars),
		path:   s.path,
		Tag:    s.Tag,
	}
}

// Get returns the expression bound to field f. Standard header
// fields are initialized by NewState; synthetic state fields (e.g.
// fw_tag) default to the constant 0, reflecting "no middlebox state
// yet" — a free variable there would let an untagged flow
// spuriously satisfy a state check.
func (s *State) Get(f Field) Expr {
	if i, ok := s.findField(f); ok {
		return s.fields[i].B.E
	}
	e := Const(0)
	s.setField(f, Binding{E: e, DefHop: -1})
	return e
}

// Binding returns the full binding of field f (see Get).
func (s *State) Binding(f Field) Binding {
	if b, ok := s.peekField(f); ok {
		return b
	}
	b := Binding{E: Const(0), DefHop: -1}
	s.setField(f, b)
	return b
}

// Assign binds field f to expression e, recording the current hop as
// the definition site.
func (s *State) Assign(f Field, e Expr) {
	s.setField(f, Binding{E: e, DefHop: s.PathLen() - 1})
}

// AssignFresh binds field f to a brand-new free variable (used by
// models whose output value is unknown, e.g. tunnel decapsulation).
func (s *State) AssignFresh(f Field) Expr {
	id := s.env.fresh(string(f) + "'")
	s.setVar(id, Full(f.Width()))
	e := Var(id)
	s.Assign(f, e)
	return e
}

// Values returns the set of concrete values field f may take under
// the current constraints.
func (s *State) Values(f Field) IntervalSet {
	e := s.Get(f)
	if c, ok := e.IsConst(); ok {
		return Single(c)
	}
	id, _ := e.IsVar()
	if iv, ok := s.peekVar(id); ok {
		return iv
	}
	return Full(f.Width())
}

// Constrain intersects field f's possible values with allowed,
// returning false (and leaving s unusable) if the result is empty.
// Constraining a variable narrows it for every field aliasing it —
// that is what makes "ip_dst := ip_src" style aliasing sound.
func (s *State) Constrain(f Field, allowed IntervalSet) bool {
	e := s.Get(f)
	if c, ok := e.IsConst(); ok {
		return allowed.Contains(c)
	}
	id, _ := e.IsVar()
	cur, ok := s.peekVar(id)
	if !ok {
		cur = Full(f.Width())
	}
	next := cur.Intersect(allowed)
	if next.IsEmpty() {
		return false
	}
	s.setVar(id, next)
	return true
}

// VarValues returns the constraint set of a variable id.
func (s *State) VarValues(id VarID) IntervalSet {
	if iv, ok := s.peekVar(id); ok {
		return iv
	}
	return Full(64)
}

// SameVar reports whether fields a and b are bound to the same
// symbolic variable (aliased).
func (s *State) SameVar(a, b Field) bool {
	va, aok := s.Get(a).IsVar()
	vb, bok := s.Get(b).IsVar()
	return aok && bok && va == vb
}

// PushHop appends a hop to the path (O(1); clones sharing the old
// tail are unaffected).
func (s *State) PushHop(node string, port int) {
	depth := 1
	if s.path != nil {
		depth = s.path.depth + 1
	}
	s.path = &pathNode{hop: Hop{Node: node, Port: port}, prev: s.path, depth: depth}
}

// PathLen returns the number of hops traversed.
func (s *State) PathLen() int {
	if s.path == nil {
		return 0
	}
	return s.path.depth
}

// LastHop returns the most recent hop; ok is false before the first.
func (s *State) LastHop() (Hop, bool) {
	if s.path == nil {
		return Hop{}, false
	}
	return s.path.hop, true
}

// Path materializes the traversal in order (for diagnostics/tests).
func (s *State) Path() []Hop {
	out := make([]Hop, s.PathLen())
	for n := s.path; n != nil; n = n.prev {
		out[n.depth-1] = n.hop
	}
	return out
}

// HopIndex returns the index of the last traversal of node (optionally
// filtering by port when port >= 0), or -1.
func (s *State) HopIndex(node string, port int) int {
	for n := s.path; n != nil; n = n.prev {
		if n.hop.Node == node && (port < 0 || n.hop.Port == port) {
			return n.depth - 1
		}
	}
	return -1
}

// Fields returns the sorted list of fields with explicit bindings.
func (s *State) Fields() []Field {
	out := make([]Field, len(s.fields))
	for i := range s.fields {
		out[i] = s.fields[i].F
	}
	return out
}

// String renders the state compactly for diagnostics, in the spirit
// of the paper's Fig. 2 trace table.
func (s *State) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i := range s.fields {
		f, bind := s.fields[i].F, s.fields[i].B
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s", f, bind.E)
		if id, ok := bind.E.IsVar(); ok {
			if iv, have := s.peekVar(id); have && !iv.Equal(Full(f.Width())) {
				fmt.Fprintf(&b, "%s", iv)
			}
		}
	}
	fmt.Fprintf(&b, " path=%v}", s.Path())
	return b.String()
}
