package symexec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpanAndSingle(t *testing.T) {
	s := Span(10, 20)
	if s.IsEmpty() || !s.Contains(10) || !s.Contains(20) || s.Contains(21) || s.Contains(9) {
		t.Errorf("Span(10,20) misbehaves: %v", s)
	}
	if v, ok := Single(7).IsSingle(); !ok || v != 7 {
		t.Error("Single(7) not single")
	}
	if !Span(5, 4).IsEmpty() {
		t.Error("inverted span should be empty")
	}
	if _, ok := Span(1, 2).IsSingle(); ok {
		t.Error("span of 2 reported single")
	}
}

func TestFull(t *testing.T) {
	f8 := Full(8)
	if !f8.Contains(0) || !f8.Contains(255) || f8.Contains(256) {
		t.Errorf("Full(8) = %v", f8)
	}
	if got := f8.Count(); got != 256 {
		t.Errorf("Count(Full(8)) = %d", got)
	}
	f64 := Full(64)
	if !f64.Contains(^uint64(0)) {
		t.Error("Full(64) must contain max")
	}
	if f64.Count() != ^uint64(0) {
		t.Error("Full(64) count saturates")
	}
}

func TestUnionMerges(t *testing.T) {
	s := Span(1, 5).Union(Span(6, 10)) // adjacent: must merge
	if len(s.Intervals()) != 1 {
		t.Errorf("adjacent union = %v", s)
	}
	s = Span(1, 5).Union(Span(3, 12))
	if !s.Equal(Span(1, 12)) {
		t.Errorf("overlap union = %v", s)
	}
	s = Span(1, 2).Union(Span(10, 12))
	if len(s.Intervals()) != 2 || s.Contains(5) {
		t.Errorf("disjoint union = %v", s)
	}
	if !Empty.Union(Span(3, 4)).Equal(Span(3, 4)) {
		t.Error("union with empty")
	}
}

func TestIntersect(t *testing.T) {
	a := FromIntervals(Interval{0, 10}, Interval{20, 30})
	b := FromIntervals(Interval{5, 25})
	got := a.Intersect(b)
	want := FromIntervals(Interval{5, 10}, Interval{20, 25})
	if !got.Equal(want) {
		t.Errorf("Intersect = %v want %v", got, want)
	}
	if !a.Intersect(Empty).IsEmpty() {
		t.Error("intersect with empty")
	}
}

func TestComplement(t *testing.T) {
	c := Span(10, 20).Complement(8)
	want := FromIntervals(Interval{0, 9}, Interval{21, 255})
	if !c.Equal(want) {
		t.Errorf("Complement = %v want %v", c, want)
	}
	if !Full(16).Complement(16).IsEmpty() {
		t.Error("complement of full should be empty")
	}
	if !Empty.Complement(8).Equal(Full(8)) {
		t.Error("complement of empty should be full")
	}
	// Edges touching 0 and max.
	c = FromIntervals(Interval{0, 3}, Interval{250, 255}).Complement(8)
	if !c.Equal(Span(4, 249)) {
		t.Errorf("edge complement = %v", c)
	}
}

func TestMinusSubsetOverlap(t *testing.T) {
	a := Span(0, 100)
	b := Span(40, 60)
	if !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf")
	}
	if !a.Overlaps(b) || a.Overlaps(Span(200, 300)) {
		t.Error("Overlaps")
	}
	d := a.Minus(b, 16)
	if d.Contains(50) || !d.Contains(39) || !d.Contains(61) || !d.Contains(100) || d.Contains(101) {
		t.Errorf("Minus = %v", d)
	}
}

func TestMinCount(t *testing.T) {
	s := FromIntervals(Interval{7, 9}, Interval{2, 3})
	if m, ok := s.Min(); !ok || m != 2 {
		t.Errorf("Min = %d %v", m, ok)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
	if _, ok := Empty.Min(); ok {
		t.Error("empty Min ok")
	}
}

func TestStringer(t *testing.T) {
	if Empty.String() != "∅" {
		t.Error("empty string")
	}
	s := FromIntervals(Interval{1, 1}, Interval{5, 9})
	if s.String() != "{1,5-9}" {
		t.Errorf("String = %q", s.String())
	}
}

// randSet builds a small random interval set over [0, 255].
func randSet(r *rand.Rand) IntervalSet {
	s := Empty
	for i, n := 0, r.Intn(4); i < n; i++ {
		lo := uint64(r.Intn(256))
		hi := lo + uint64(r.Intn(32))
		if hi > 255 {
			hi = 255
		}
		s = s.Union(Span(lo, hi))
	}
	return s
}

func TestIntervalAlgebraQuick(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64, probe uint8) bool {
		_ = seed
		a, b := randSet(r), randSet(r)
		v := uint64(probe)
		// Membership homomorphisms.
		if a.Union(b).Contains(v) != (a.Contains(v) || b.Contains(v)) {
			return false
		}
		if a.Intersect(b).Contains(v) != (a.Contains(v) && b.Contains(v)) {
			return false
		}
		if a.Complement(8).Contains(v) == a.Contains(v) {
			return false
		}
		// De Morgan.
		lhs := a.Union(b).Complement(8)
		rhs := a.Complement(8).Intersect(b.Complement(8))
		if !lhs.Equal(rhs) {
			return false
		}
		// Involution.
		if !a.Complement(8).Complement(8).Equal(a) {
			return false
		}
		// Union/intersect symmetry and idempotence.
		if !a.Union(b).Equal(b.Union(a)) || !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(a).Equal(a) || !a.Intersect(a).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalization(t *testing.T) {
	// FromIntervals must sort and merge.
	s := FromIntervals(Interval{10, 20}, Interval{0, 5}, Interval{6, 9})
	if !s.Equal(Span(0, 20)) {
		t.Errorf("normalize = %v", s)
	}
	ivs := s.Intervals()
	ivs[0] = Interval{99, 99} // mutation must not affect s
	if !s.Equal(Span(0, 20)) {
		t.Error("Intervals leaked internal slice")
	}
}

func BenchmarkIntersect(b *testing.B) {
	x := FromIntervals(Interval{0, 10}, Interval{20, 30}, Interval{50, 90})
	y := FromIntervals(Interval{5, 25}, Interval{60, 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}
